package trussdiv

import "trussdiv/internal/store"

// The persistent index store (internal/store) serializes the search
// accelerators — the truss decomposition, the TSD and GCT indexes, and
// the hybrid rankings — into one versioned binary file, so servers warm
// start instead of rebuilding on every boot. A DB connects to a store
// with Open(g, WithIndexDir(dir)); cmd/tsdindex builds the file offline.
// These sentinels surface the store's typed rejections through
// DB.StoreStatus, matchable with errors.Is.
var (
	// ErrStaleIndex reports an index file built from a different graph
	// than the one the DB serves; the DB rebuilt instead of loading. The
	// concrete error carries both fingerprints.
	ErrStaleIndex = store.ErrStaleIndex
	// ErrIndexVersion reports an index file from an unsupported format
	// version.
	ErrIndexVersion = store.ErrVersion
	// ErrIndexCorrupt reports a truncated, checksum-failing, or otherwise
	// structurally damaged index file.
	ErrIndexCorrupt = store.ErrCorrupt
	// ErrNotIndexFile reports a file that is not a trussdiv index at all.
	ErrNotIndexFile = store.ErrNotIndexFile
)

// IndexFileName is the file WithIndexDir reads and writes inside the
// configured directory.
const IndexFileName = store.FileName
