#!/usr/bin/env bash
# Cluster smoke test: boots a single-node tsdserve and a 2-shard cluster
# (two workers + coordinator) on the same dataset, runs the same top-r
# query against both through tsdsearch -server for every measure, and
# fails unless the ranked answers are identical line for line. Finishes
# by shutting everything down with SIGTERM, exercising the graceful
# drain path.
#
# Usage: scripts/cluster_smoke.sh [dataset]   (default: wiki-sim)
set -euo pipefail

DATASET="${1:-wiki-sim}"
SINGLE_PORT=18080
SHARD0_PORT=18081
SHARD1_PORT=18082
COORD_PORT=18083

tmp="$(mktemp -d)"
pids=()
cleanup() {
    # SIGTERM first: the graceful drain path is part of what we smoke.
    for pid in "${pids[@]:-}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${pids[@]:-}"; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "building binaries..."
go build -o "$tmp/tsdserve" ./cmd/tsdserve
go build -o "$tmp/tsdsearch" ./cmd/tsdsearch

wait_healthy() {
    local url="$1" name="$2"
    for _ in $(seq 1 120); do
        if curl -fsS "$url" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.25
    done
    echo "FAIL: $name never became healthy at $url" >&2
    exit 1
}

echo "starting single node on :$SINGLE_PORT..."
"$tmp/tsdserve" -dataset "$DATASET" -addr "127.0.0.1:$SINGLE_PORT" >"$tmp/single.log" 2>&1 &
pids+=($!)
wait_healthy "http://127.0.0.1:$SINGLE_PORT/healthz" "single node"

vertices="$(curl -fsS "http://127.0.0.1:$SINGLE_PORT/stats" | sed -n 's/.*"vertices":\([0-9]*\).*/\1/p')"
if [ -z "$vertices" ]; then
    echo "FAIL: could not read the vertex count from /stats" >&2
    exit 1
fi
mid=$((vertices / 2))
echo "graph has $vertices vertices; shard split at $mid"

echo "starting shard workers on :$SHARD0_PORT and :$SHARD1_PORT..."
"$tmp/tsdserve" -shard -dataset "$DATASET" -range "0:$mid" -addr "127.0.0.1:$SHARD0_PORT" >"$tmp/shard0.log" 2>&1 &
pids+=($!)
"$tmp/tsdserve" -shard -dataset "$DATASET" -range "$mid:$vertices" -addr "127.0.0.1:$SHARD1_PORT" >"$tmp/shard1.log" 2>&1 &
pids+=($!)
wait_healthy "http://127.0.0.1:$SHARD0_PORT/shard/health" "shard 0"
wait_healthy "http://127.0.0.1:$SHARD1_PORT/shard/health" "shard 1"

echo "starting coordinator on :$COORD_PORT..."
"$tmp/tsdserve" -coordinator \
    -shards "127.0.0.1:$SHARD0_PORT,127.0.0.1:$SHARD1_PORT" \
    -addr "127.0.0.1:$COORD_PORT" >"$tmp/coord.log" 2>&1 &
pids+=($!)
wait_healthy "http://127.0.0.1:$COORD_PORT/healthz" "coordinator"

# Ranked answers only: the timing line legitimately differs.
answers() {
    "$tmp/tsdsearch" -server "http://127.0.0.1:$1" -k 4 -r 10 -measure "$2" -contexts |
        grep -E '^\s*[0-9]+\. vertex|^\s+context '
}

# Parameter-free leg: -algo pfree sends a k-less query; every shard must
# route it to its pfree engine and the merge must stay byte-identical.
pfree_answers() {
    "$tmp/tsdsearch" -server "http://127.0.0.1:$1" -algo pfree -r 10 -measure "$2" -contexts |
        grep -E '^\s*[0-9]+\. vertex|^\s+context '
}

status=0
for measure in truss component core; do
    single_out="$(answers "$SINGLE_PORT" "$measure")"
    cluster_out="$(answers "$COORD_PORT" "$measure")"
    if [ "$single_out" != "$cluster_out" ]; then
        echo "FAIL: measure=$measure: cluster answer differs from single node" >&2
        diff <(echo "$single_out") <(echo "$cluster_out") >&2 || true
        status=1
    else
        echo "OK: measure=$measure: cluster answer matches single node ($(echo "$single_out" | grep -c 'vertex') rows)"
    fi

    single_pf="$(pfree_answers "$SINGLE_PORT" "$measure")"
    cluster_pf="$(pfree_answers "$COORD_PORT" "$measure")"
    if [ "$single_pf" != "$cluster_pf" ]; then
        echo "FAIL: measure=$measure engine=pfree: cluster answer differs from single node" >&2
        diff <(echo "$single_pf") <(echo "$cluster_pf") >&2 || true
        status=1
    else
        echo "OK: measure=$measure engine=pfree: cluster answer matches single node ($(echo "$single_pf" | grep -c 'vertex') rows)"
    fi
done

curl -fsS "http://127.0.0.1:$COORD_PORT/cluster" >"$tmp/cluster.json"
if ! grep -q '"shards"' "$tmp/cluster.json"; then
    echo "FAIL: /cluster status missing shard list" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "cluster smoke: PASS"
else
    echo "cluster smoke: FAIL" >&2
fi
exit "$status"
