#!/usr/bin/env bash
# Per-replica memory cost of the two index-store read modes: boots N
# tsdserve replicas of the same dataset against one prebuilt index store,
# first with -storemode decode (every replica decodes its own heap copy
# of the index arrays), then with -storemode mmap (replicas map the same
# file and share its pages), and reports each replica's VmRSS and PSS
# plus the per-mode totals. RSS counts every shared page once per
# replica; PSS splits shared pages across the replicas mapping them, so
# the decode-vs-mmap PSS gap is the real physical saving of serving one
# mapped copy of the index arrays instead of N heap copies.
#
# Usage: scripts/store_rss.sh [dataset] [replicas]   (defaults: gowalla-sim 3)
#
# Linux-only (reads /proc). Ports 18190.. are assumed free.
set -euo pipefail

DATASET="${1:-gowalla-sim}"
REPLICAS="${2:-3}"
BASE_PORT=18190

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${pids[@]:-}"; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

if [ ! -r /proc/self/status ]; then
    echo "store_rss.sh needs /proc (Linux); aborting" >&2
    exit 1
fi

echo "building binaries..."
go build -o "$tmp/tsdserve" ./cmd/tsdserve
go build -o "$tmp/tsdindex" ./cmd/tsdindex

echo "building index store for $DATASET..."
"$tmp/tsdindex" -dataset "$DATASET" -out "$tmp/idx" -measures >/dev/null

wait_healthy() {
    local url="$1"
    for _ in $(seq 1 120); do
        if curl -fsS "$url" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.25
    done
    echo "replica at $url never became healthy" >&2
    exit 1
}

rss_kb() { awk '/^VmRSS:/ {print $2}' "/proc/$1/status"; }

# PSS divides each shared page's cost across the processes mapping it, so
# it is the honest per-replica footprint when replicas share mmap'd pages;
# falls back to RSS where smaps_rollup is unavailable.
pss_kb() {
    if [ -r "/proc/$1/smaps_rollup" ]; then
        awk '/^Pss:/ {print $2}' "/proc/$1/smaps_rollup"
    else
        rss_kb "$1"
    fi
}

measure_mode() {
    local mode="$1"
    local mode_pids=()
    for i in $(seq 0 $((REPLICAS - 1))); do
        port=$((BASE_PORT + i))
        "$tmp/tsdserve" -dataset "$DATASET" -indexdir "$tmp/idx" \
            -storemode "$mode" -readonly -addr "127.0.0.1:$port" \
            >"$tmp/$mode-$i.log" 2>&1 &
        pids+=($!)
        mode_pids+=($!)
    done
    for i in $(seq 0 $((REPLICAS - 1))); do
        wait_healthy "http://127.0.0.1:$((BASE_PORT + i))/healthz"
        # One real query per replica so lazily-faulted index pages are
        # actually touched before we read RSS.
        curl -fsS "http://127.0.0.1:$((BASE_PORT + i))/topr?k=4&r=100" >/dev/null
    done
    local total=0 ptotal=0
    for i in $(seq 0 $((REPLICAS - 1))); do
        kb=$(rss_kb "${mode_pids[$i]}")
        pkb=$(pss_kb "${mode_pids[$i]}")
        printf '  %s replica %d: %6d KB RSS  %6d KB PSS\n' "$mode" "$i" "$kb" "$pkb"
        total=$((total + kb))
        ptotal=$((ptotal + pkb))
    done
    printf '  %s total (%d replicas): %d KB RSS, %d KB PSS\n' "$mode" "$REPLICAS" "$total" "$ptotal"
    for pid in "${mode_pids[@]}"; do
        kill -TERM "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    done
}

echo "== decode mode =="
measure_mode decode
echo "== mmap mode =="
measure_mode mmap
echo "done: compare the per-replica RSS columns; mmap replicas share the store's pages."
