#!/usr/bin/env bash
# Fails when a BENCH_parallel.json was recorded on a single core: its
# speedups are noise around 1.0x and must never be committed (or uploaded
# by CI) as the parallel layer's perf baseline. exp_parallel stamps such
# runs with "single_core_warning": true; this guard makes the stamp fatal
# where a baseline is about to be published.
#
# Usage: check_parallel_baseline.sh [path/to/BENCH_parallel.json]
set -euo pipefail

file="${1:-bench-out/BENCH_parallel.json}"
if [ ! -f "$file" ]; then
    echo "check_parallel_baseline: $file not found" >&2
    exit 1
fi

if grep -q '"single_core_warning": true' "$file"; then
    echo "check_parallel_baseline: $file was recorded at GOMAXPROCS=1 —" >&2
    echo "its parallel speedups are noise. Re-run 'make bench-artifacts' on a" >&2
    echo "multicore machine (CI pins GOMAXPROCS=\$(nproc)) before publishing." >&2
    exit 1
fi

echo "check_parallel_baseline: $file is a multicore run"
