package trussdiv_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"trussdiv"
)

// TestResultCacheHitReturnsIdenticalResult: the second identical query
// is a cache hit that returns the exact answer of the first — same
// bytes, same stats — without re-entering the engine.
func TestResultCacheHitReturnsIdenticalResult(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(3, 10, trussdiv.WithContexts())

	first, stats1, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rc := db.ResultCacheStats()
	if !rc.Enabled || rc.Misses != 1 || rc.Hits != 0 || rc.Size != 1 {
		t.Fatalf("after one query: %+v", rc)
	}
	second, stats2, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rc = db.ResultCacheStats()
	if rc.Hits != 1 || rc.Misses != 1 {
		t.Fatalf("second identical query was not a hit: %+v", rc)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer differs from the computed one:\n got %+v\nwant %+v", second, first)
	}
	if !reflect.DeepEqual(stats1, stats2) {
		t.Fatalf("cached stats differ: got %+v want %+v", stats2, stats1)
	}

	// A different query shape is its own entry, not a collision.
	other, _, err := db.TopR(ctx, trussdiv.NewQuery(4, 10, trussdiv.WithContexts()))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first.TopR, other.TopR) && first.TopR[0].Score == other.TopR[0].Score {
		t.Log("k=3 and k=4 coincide on this graph; key separation still verified by counters")
	}
	if rc := db.ResultCacheStats(); rc.Size != 2 || rc.Misses != 2 {
		t.Fatalf("distinct query did not get its own entry: %+v", rc)
	}
}

// TestResultCacheCandidateSetsAreExact: candidate-restricted queries hit
// only on the exact same candidate set — a set with the same length (and
// potentially the same hash) never serves another set's answer.
func TestResultCacheCandidateSetsAreExact(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	candsA := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	candsB := []int32{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}

	qA := trussdiv.NewQuery(3, 5, trussdiv.WithCandidates(candsA...))
	qB := trussdiv.NewQuery(3, 5, trussdiv.WithCandidates(candsB...))
	resA, _, err := db.TopR(ctx, qA)
	if err != nil {
		t.Fatal(err)
	}
	resB, _, err := db.TopR(ctx, qB)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range resA.TopR {
		if e.V >= 10 {
			t.Fatalf("candidate set A answered with vertex %d outside the set", e.V)
		}
	}
	for _, e := range resB.TopR {
		if e.V < 10 {
			t.Fatalf("candidate set B answered with vertex %d outside the set", e.V)
		}
	}
	// Replays hit their own entries.
	againA, _, err := db.TopR(ctx, qA)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, againA) {
		t.Fatal("candidate-set replay returned a different answer")
	}
	if rc := db.ResultCacheStats(); rc.Hits != 1 || rc.Misses != 2 {
		t.Fatalf("candidate-set caching counters: %+v", rc)
	}
}

// TestApplyInvalidatesResultCache: the epoch bump of an Apply means a
// post-update repeat of a cached query recomputes against the new graph
// instead of serving the retired epoch's answer.
func TestApplyInvalidatesResultCache(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(3, 10, trussdiv.WithContexts())
	if _, _, err := db.TopR(ctx, q); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	if _, err := db.Apply(ctx, randomUpdates(t, g, rng, 3, 3)); err != nil {
		t.Fatal(err)
	}
	rc := db.ResultCacheStats()
	if rc.Invalidated == 0 || rc.Size != 0 {
		t.Fatalf("Apply did not purge the retired epoch's entries: %+v", rc)
	}
	res, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != uint64(db.Epoch()) {
		t.Fatalf("post-Apply answer carries epoch %d, want %d", res.Epoch, db.Epoch())
	}
	if rc := db.ResultCacheStats(); rc.Misses != 2 {
		t.Fatalf("post-Apply repeat should recompute, not hit: %+v", rc)
	}
	// And match a cold DB over the edited graph exactly.
	cold, err := trussdiv.Open(db.Graph())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cold.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "post-apply vs cold", res, want)
}

// TestPinnedSnapshotBypassesNewerEpochCache: a reader holding a pinned
// pre-update Snapshot keeps answering from its own graph version — the
// cache entries the live DB writes for the new epoch can never serve it.
func TestPinnedSnapshotBypassesNewerEpochCache(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(3, 10, trussdiv.WithContexts())

	pinned := db.Snapshot()
	before, _, err := pinned.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	if _, err := db.Apply(ctx, randomUpdates(t, g, rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	// Prime the cache with the NEW epoch's answer for the same query.
	live, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if live.Epoch != uint64(db.Epoch()) || live.Epoch == before.Epoch {
		t.Fatalf("live answer epoch %d, pinned %d, current %d", live.Epoch, before.Epoch, db.Epoch())
	}
	// The pinned reader recomputes (its epoch's entries were purged) and
	// must reproduce its own graph's answer — never the newer entry.
	after, _, err := pinned.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch {
		t.Fatalf("pinned reader served epoch %d, want its own %d", after.Epoch, before.Epoch)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("pinned reader's answer changed after an Apply it should not observe")
	}
}

// TestWithResultCacheDisabled: WithResultCache(0) turns the cache off —
// queries work, counters stay zero.
func TestWithResultCacheDisabled(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t), trussdiv.WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(3, 10)
	for i := 0; i < 2; i++ {
		if _, _, err := db.TopR(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if rc := db.ResultCacheStats(); rc.Enabled || rc.Hits != 0 || rc.Misses != 0 {
		t.Fatalf("disabled cache reports activity: %+v", rc)
	}
}

// TestResultCacheNoKKeying is the k = 0 collision regression: a
// parameter-free query (k absent, i.e. 0) and fixed-k queries at small
// k must occupy distinct cache entries — the key carries an explicit
// noK bit, so "no threshold" can never alias a real threshold. k = 1
// fails validation and must leave the cache untouched entirely.
func TestResultCacheNoKKeying(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := []trussdiv.Query{
		trussdiv.NewQuery(0, 10), // parameter-free, routes to pfree
		trussdiv.NewQuery(2, 10),
		trussdiv.NewQuery(3, 10),
	}
	first := make([]*trussdiv.Result, len(qs))
	for i, q := range qs {
		res, _, err := db.TopR(ctx, q)
		if err != nil {
			t.Fatalf("k=%d: %v", q.K, err)
		}
		first[i] = res
	}
	if rc := db.ResultCacheStats(); rc.Size != len(qs) || rc.Misses != uint64(len(qs)) || rc.Hits != 0 {
		t.Fatalf("the three k shapes did not get three distinct entries: %+v", rc)
	}
	// Replaying each query hits its own entry and returns its own bytes.
	for i, q := range qs {
		res, _, err := db.TopR(ctx, q)
		if err != nil {
			t.Fatalf("k=%d replay: %v", q.K, err)
		}
		if !reflect.DeepEqual(res, first[i]) {
			t.Fatalf("k=%d replay returned another entry's answer", q.K)
		}
	}
	if rc := db.ResultCacheStats(); rc.Hits != uint64(len(qs)) || rc.Misses != uint64(len(qs)) {
		t.Fatalf("replays were not all hits: %+v", rc)
	}
	// k = 1 is invalid for every engine: rejected before the cache.
	if _, _, err := db.TopR(ctx, trussdiv.NewQuery(1, 10)); err == nil {
		t.Fatal("k=1 query succeeded")
	}
	if rc := db.ResultCacheStats(); rc.Misses != uint64(len(qs)) || rc.Size != len(qs) {
		t.Fatalf("invalid k=1 query touched the cache: %+v", rc)
	}
}

// TestResultCachePerEngineStats: ResultCacheStats splits hits and
// misses by the engine each query resolved to, so a mixed workload's
// cache behavior is attributable per engine.
func TestResultCachePerEngineStats(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pf := trussdiv.NewQuery(0, 8)                               // routes to pfree
	fixed := trussdiv.NewQuery(4, 8, trussdiv.ViaEngine("gct")) // pinned fixed-k
	for i := 0; i < 3; i++ {                                    // 1 miss + 2 hits each
		if _, _, err := db.TopR(ctx, pf); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.TopR(ctx, fixed); err != nil {
			t.Fatal(err)
		}
	}
	rc := db.ResultCacheStats()
	if rc.Hits != 4 || rc.Misses != 2 {
		t.Fatalf("totals: %+v", rc)
	}
	for engine, wantMiss := range map[string]uint64{"pfree": 1, "gct": 1} {
		if got := rc.MissesByEngine[engine]; got != wantMiss {
			t.Fatalf("MissesByEngine[%q] = %d, want %d (%+v)", engine, got, wantMiss, rc.MissesByEngine)
		}
		if got := rc.HitsByEngine[engine]; got != 2 {
			t.Fatalf("HitsByEngine[%q] = %d, want 2 (%+v)", engine, got, rc.HitsByEngine)
		}
	}
	// The per-engine split always sums to the totals.
	var hits, misses uint64
	for _, n := range rc.HitsByEngine {
		hits += n
	}
	for _, n := range rc.MissesByEngine {
		misses += n
	}
	if hits != rc.Hits || misses != rc.Misses {
		t.Fatalf("per-engine split does not sum to totals: %+v", rc)
	}
}
