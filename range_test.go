package trussdiv_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"trussdiv"
)

// TestTopRRangeFullSpanMatchesTopR: the whole-graph range is the same
// query as no range at all.
func TestTopRRangeFullSpanMatchesTopR(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts())
	want, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := db.TopRRange(ctx, q, 0, int32(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopRRange(0,N) differs from TopR:\n got %+v\nwant %+v", got, want)
	}
}

// TestTopRRangePartitionCoversTopR: the global top-r is contained in the
// union of the per-range answers — the property the cluster merge rests
// on.
func TestTopRRangePartitionCoversTopR(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(4, 8)
	global, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	mid := int32(g.N() / 2)
	union := make(map[int32]int)
	for _, span := range [][2]int32{{0, mid}, {mid, int32(g.N())}} {
		part, _, err := db.TopRRange(ctx, q, span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range part.TopR {
			if e.V < span[0] || e.V >= span[1] {
				t.Fatalf("range [%d,%d) answered vertex %d outside it", span[0], span[1], e.V)
			}
			union[e.V] = e.Score
		}
	}
	for _, e := range global.TopR {
		score, ok := union[e.V]
		if !ok {
			t.Fatalf("global answer vertex %d missing from the per-range union", e.V)
		}
		if score != e.Score {
			t.Fatalf("vertex %d: range score %d, global score %d", e.V, score, e.Score)
		}
	}
}

func TestTopRRangeRejectsBadSpans(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(4, 3)
	for _, span := range [][2]int32{{-1, 5}, {0, 1000}, {9, 3}} {
		if _, _, err := db.TopRRange(ctx, q, span[0], span[1]); err == nil {
			t.Fatalf("TopRRange(%d,%d) accepted an invalid span", span[0], span[1])
		}
	}
	q.Candidates = []int32{1, 2, 3}
	if _, _, err := db.TopRRange(ctx, q, 0, 5); err == nil {
		t.Fatal("TopRRange accepted a query that already carries candidates")
	}
}

func TestWaitEpoch(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 60, Attach: 2, Cliques: 10, MinSize: 4, MaxSize: 6, Seed: 7,
	})
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Already-reached targets return without blocking.
	snap, err := db.WaitEpoch(ctx, db.Epoch())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != db.Epoch() {
		t.Fatalf("WaitEpoch returned epoch %d, current is %d", snap.Epoch(), db.Epoch())
	}

	// A waiter parked on the next epoch wakes when Apply installs it.
	target := db.Epoch() + 1
	type wake struct {
		snap *trussdiv.Snapshot
		err  error
	}
	done := make(chan wake, 1)
	go func() {
		s, err := db.WaitEpoch(ctx, target)
		done <- wake{s, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	u := trussdiv.Updates{Insert: []trussdiv.Edge{{U: 0, V: int32(g.N() - 1)}}}
	if !g.HasEdge(0, int32(g.N()-1)) {
		if _, err := db.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	} else {
		u = trussdiv.Updates{Delete: u.Insert}
		if _, err := db.Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case w := <-done:
		if w.err != nil {
			t.Fatal(w.err)
		}
		if w.snap.Epoch() < target {
			t.Fatalf("woke at epoch %d, want >= %d", w.snap.Epoch(), target)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitEpoch never woke after Apply")
	}

	// A context deadline unparks the waiter with the context's error.
	cctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := db.WaitEpoch(cctx, db.Epoch()+10); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitEpoch past-the-horizon err = %v, want deadline exceeded", err)
	}
}
