// Command tsdsearch runs top-r truss-based structural diversity search
// over a graph, with every engine from the paper available.
//
// Usage:
//
//	tsdsearch -input graph.txt -algo gct -k 4 -r 10 -contexts
//	tsdsearch -dataset wiki-sim -algo tsd -k 3 -r 100
//
// Algorithms: online (Alg. 3), bound (Alg. 4), tsd (Alg. 5-6),
// gct (Alg. 7-8), hybrid, comp (Comp-Div), kcore (Core-Div).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"trussdiv/internal/baseline"
	"trussdiv/internal/bench"
	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset  = flag.String("dataset", "", "built-in synthetic dataset name")
		algo     = flag.String("algo", "gct", "online|bound|tsd|gct|hybrid|comp|kcore")
		k        = flag.Int("k", 4, "trussness threshold (>= 2)")
		r        = flag.Int("r", 10, "result count")
		contexts = flag.Bool("contexts", false, "print the social contexts of each answer")
	)
	flag.Parse()
	if err := run(*input, *dataset, *algo, int32(*k), *r, *contexts); err != nil {
		fmt.Fprintln(os.Stderr, "tsdsearch:", err)
		os.Exit(1)
	}
}

func run(input, dataset, algo string, k int32, r int, showContexts bool) error {
	g, err := loadGraph(input, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	if algo == "comp" || algo == "kcore" {
		return runBaseline(g, algo, k, r, showContexts)
	}

	var searcher interface {
		TopR(int32, int) (*core.Result, *core.Stats, error)
	}
	buildStart := time.Now()
	switch algo {
	case "online":
		searcher = core.NewOnline(g)
	case "bound":
		searcher = core.NewBound(g)
	case "tsd":
		searcher = core.NewTSD(core.BuildTSDIndex(g))
	case "gct":
		searcher = core.NewGCT(core.BuildGCTIndex(g))
	case "hybrid":
		searcher = core.BuildHybrid(core.BuildGCTIndex(g))
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	buildTime := time.Since(buildStart)

	queryStart := time.Now()
	res, stats, err := searcher.TopR(k, r)
	if err != nil {
		return err
	}
	queryTime := time.Since(queryStart)

	fmt.Printf("algo=%s k=%d r=%d  setup=%v query=%v  search-space=%d\n",
		algo, k, r, buildTime.Round(time.Microsecond),
		queryTime.Round(time.Microsecond), stats.ScoreComputations)
	for rank, e := range res.TopR {
		fmt.Printf("%3d. vertex %-8d score %d\n", rank+1, e.V, e.Score)
		if showContexts {
			for i, ctx := range res.Contexts[e.V] {
				fmt.Printf("      context %d (%d members): %v\n", i+1, len(ctx), ctx)
			}
		}
	}
	return nil
}

func runBaseline(g *graph.Graph, algo string, k int32, r int, showContexts bool) error {
	var model baseline.Model
	if algo == "comp" {
		model = baseline.NewCompDiv(g)
	} else {
		model = baseline.NewCoreDiv(g)
	}
	start := time.Now()
	top, err := baseline.TopR(model, g.N(), k, r)
	if err != nil {
		return err
	}
	fmt.Printf("algo=%s (%s) k=%d r=%d  query=%v\n",
		algo, model.Name(), k, r, time.Since(start).Round(time.Microsecond))
	for rank, e := range top {
		fmt.Printf("%3d. vertex %-8d score %d\n", rank+1, e.V, e.Score)
		if showContexts {
			for i, ctx := range model.Contexts(e.V, k) {
				fmt.Printf("      context %d (%d members): %v\n", i+1, len(ctx), ctx)
			}
		}
	}
	return nil
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
