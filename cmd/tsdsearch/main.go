// Command tsdsearch runs top-r truss-based structural diversity search
// over a graph through the trussdiv.DB facade: every engine from the
// paper is reachable by name, and omitting -algo lets the DB route the
// query to the cheapest engine.
//
// Usage:
//
//	tsdsearch -input graph.txt -algo gct -k 4 -r 10 -contexts
//	tsdsearch -dataset wiki-sim -algo tsd -k 3 -r 100
//	tsdsearch -dataset wiki-sim -k 3 -r 100                 # cost-routed
//	tsdsearch -dataset wiki-sim -measure component -k 3 -r 10  # alternative model
//
// Engines: online (Alg. 3), bound (Alg. 4), tsd (Alg. 5-6),
// gct (Alg. 7-8), hybrid, comp (Comp-Div), kcore (Core-Div).
//
// -measure selects the diversity definition (truss, the default;
// component; core): the query routes to the cheapest engine serving that
// measure, and -algo pins one engine inside the measure's row of the
// routing matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"trussdiv"
	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset  = flag.String("dataset", "", "built-in synthetic dataset name")
		algo     = flag.String("algo", "", "engine name (empty = cost-routed); online|bound|tsd|gct|hybrid|comp|kcore")
		k        = flag.Int("k", 4, "trussness threshold (>= 2)")
		r        = flag.Int("r", 10, "result count")
		contexts = flag.Bool("contexts", false, "print the social contexts of each answer")
		measure  = flag.String("measure", "", "diversity measure: truss (default) | component | core")
		timeout  = flag.Duration("timeout", 0, "abort the search after this long (0 = none)")
	)
	flag.Parse()
	if err := run(*input, *dataset, *algo, *measure, int32(*k), *r, *contexts, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "tsdsearch:", err)
		os.Exit(1)
	}
}

func run(input, dataset, algo, measure string, k int32, r int, showContexts bool, timeout time.Duration) error {
	g, err := loadGraph(input, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	db, err := trussdiv.Open(g)
	if err != nil {
		return err
	}
	opts := []trussdiv.QueryOption{}
	if showContexts {
		opts = append(opts, trussdiv.WithContexts())
	}
	if measure != "" {
		m, err := trussdiv.ParseMeasure(measure)
		if err != nil {
			return err
		}
		opts = append(opts, trussdiv.WithMeasure(m))
	}
	q := trussdiv.NewQuery(k, r, opts...)
	q.Engine = algo

	// Resolve through the snapshot so a pinned engine is checked against
	// the measure (tsd cannot answer -measure component).
	engine, err := db.Snapshot().ResolveEngine(q)
	if err != nil {
		return err
	}

	// Setup (index builds happen inside the first TopR) and query time
	// are reported together with the paper's search-space metric.
	start := time.Now()
	res, stats, err := engine.TopR(ctx, q)
	if err != nil {
		return err
	}
	took := time.Since(start)

	searched := "-"
	if stats != nil {
		searched = fmt.Sprintf("%d", stats.ScoreComputations)
	}
	fmt.Printf("engine=%s measure=%s k=%d r=%d  total=%v  search-space=%s\n",
		engine.Name(), trussdiv.EffectiveMeasure(q, engine), k, r,
		took.Round(time.Microsecond), searched)
	for rank, e := range res.TopR {
		fmt.Printf("%3d. vertex %-8d score %d\n", rank+1, e.V, e.Score)
		if showContexts {
			for i, ctxMembers := range res.Contexts[e.V] {
				fmt.Printf("      context %d (%d members): %v\n", i+1, len(ctxMembers), ctxMembers)
			}
		}
	}
	return nil
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
