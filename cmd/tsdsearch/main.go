// Command tsdsearch runs top-r truss-based structural diversity search
// over a graph through the trussdiv.DB facade: every engine from the
// paper is reachable by name, and omitting -algo lets the DB route the
// query to the cheapest engine.
//
// Usage:
//
//	tsdsearch -input graph.txt -algo gct -k 4 -r 10 -contexts
//	tsdsearch -dataset wiki-sim -algo tsd -k 3 -r 100
//	tsdsearch -dataset wiki-sim -k 3 -r 100                 # cost-routed
//	tsdsearch -dataset wiki-sim -measure component -k 3 -r 10  # alternative model
//
// Engines: online (Alg. 3), bound (Alg. 4), tsd (Alg. 5-6),
// gct (Alg. 7-8), hybrid, comp (Comp-Div), kcore (Core-Div),
// pfree (parameter-free).
//
// -measure selects the diversity definition (truss, the default;
// component; core): the query routes to the cheapest engine serving that
// measure, and -algo pins one engine inside the measure's row of the
// routing matrix.
//
// The pfree engine takes no threshold — it scores every vertex at its
// own discriminating level. -algo pfree leaves k unset automatically
// (pairing it with an explicit -k fails), and -k 0 without -algo routes
// the query to pfree:
//
//	tsdsearch -dataset wiki-sim -algo pfree -r 10
//	tsdsearch -dataset wiki-sim -k 0 -r 10   # same: k-less queries route to pfree
//
// With -server the query runs against a running tsdserve instance —
// single-node or cluster coordinator, both speak the same /topr shape —
// instead of loading a graph locally:
//
//	tsdsearch -server http://localhost:8080 -k 4 -r 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"trussdiv"
	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset  = flag.String("dataset", "", "built-in synthetic dataset name")
		algo     = flag.String("algo", "", "engine name (empty = cost-routed); online|bound|tsd|gct|hybrid|comp|kcore|pfree")
		k        = flag.Int("k", 4, "trussness threshold (>= 2); 0 = parameter-free (the pfree engine)")
		r        = flag.Int("r", 10, "result count")
		contexts = flag.Bool("contexts", false, "print the social contexts of each answer")
		measure  = flag.String("measure", "", "diversity measure: truss (default) | component | core")
		timeout  = flag.Duration("timeout", 0, "abort the search after this long (0 = none)")
		serverTo = flag.String("server", "", "query a running tsdserve at this URL instead of loading a graph")
	)
	flag.Parse()
	// -algo pfree implies a parameter-free query: drop the -k default so
	// the user need not spell -k 0; an explicit -k is kept and rejected
	// downstream with the library's bad-query error.
	if *algo == "pfree" {
		kSet := false
		flag.Visit(func(f *flag.Flag) { kSet = kSet || f.Name == "k" })
		if !kSet {
			*k = 0
		}
	}
	var err error
	if *serverTo != "" {
		err = runRemote(*serverTo, *algo, *measure, *k, *r, *contexts, *timeout)
	} else {
		err = run(*input, *dataset, *algo, *measure, int32(*k), *r, *contexts, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdsearch:", err)
		os.Exit(1)
	}
}

// remoteResponse covers the fields shared by the single-node and cluster
// /topr response shapes.
type remoteResponse struct {
	Engine  string `json:"engine"`
	Measure string `json:"measure"`
	Epoch   uint64 `json:"epoch"`
	TookUS  int64  `json:"took_us"`
	Error   string `json:"error"`
	Results []struct {
		Vertex   int32     `json:"vertex"`
		Score    int       `json:"score"`
		Contexts [][]int32 `json:"contexts"`
	} `json:"results"`
}

// runRemote answers the query through a running tsdserve (single node or
// cluster coordinator — the /topr shapes agree on everything printed).
func runRemote(base, algo, measure string, k, r int, showContexts bool, timeout time.Duration) error {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	params := url.Values{}
	if k != 0 {
		params.Set("k", fmt.Sprint(k)) // absent k = parameter-free on the wire
	}
	params.Set("r", fmt.Sprint(r))
	if algo != "" {
		params.Set("engine", algo)
	}
	if measure != "" {
		params.Set("measure", measure)
	}
	if showContexts {
		params.Set("contexts", "true")
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/topr?"+params.Encode(), nil)
	if err != nil {
		return err
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	var body remoteResponse
	if err := json.Unmarshal(blob, &body); err != nil {
		return fmt.Errorf("%s: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(blob)))
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return fmt.Errorf("%s: HTTP %d: %s", base, resp.StatusCode, body.Error)
	}
	if resp.StatusCode == http.StatusPartialContent {
		fmt.Fprintf(os.Stderr, "tsdsearch: WARNING: partial result: %s\n", body.Error)
	}
	fmt.Printf("engine=%s measure=%s k=%d r=%d epoch=%d  total=%v (server %v)\n",
		body.Engine, body.Measure, k, r, body.Epoch,
		time.Since(start).Round(time.Microsecond),
		(time.Duration(body.TookUS) * time.Microsecond).Round(time.Microsecond))
	for rank, e := range body.Results {
		fmt.Printf("%3d. vertex %-8d score %d\n", rank+1, e.Vertex, e.Score)
		if showContexts {
			for i, members := range e.Contexts {
				fmt.Printf("      context %d (%d members): %v\n", i+1, len(members), members)
			}
		}
	}
	return nil
}

func run(input, dataset, algo, measure string, k int32, r int, showContexts bool, timeout time.Duration) error {
	g, err := loadGraph(input, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	db, err := trussdiv.Open(g)
	if err != nil {
		return err
	}
	opts := []trussdiv.QueryOption{}
	if showContexts {
		opts = append(opts, trussdiv.WithContexts())
	}
	if measure != "" {
		m, err := trussdiv.ParseMeasure(measure)
		if err != nil {
			return err
		}
		opts = append(opts, trussdiv.WithMeasure(m))
	}
	q := trussdiv.NewQuery(k, r, opts...)
	q.Engine = algo

	// Resolve through the snapshot so a pinned engine is checked against
	// the measure (tsd cannot answer -measure component).
	engine, err := db.Snapshot().ResolveEngine(q)
	if err != nil {
		return err
	}

	// Setup (index builds happen inside the first TopR) and query time
	// are reported together with the paper's search-space metric.
	start := time.Now()
	res, stats, err := engine.TopR(ctx, q)
	if err != nil {
		return err
	}
	took := time.Since(start)

	searched := "-"
	if stats != nil {
		searched = fmt.Sprintf("%d", stats.ScoreComputations)
	}
	fmt.Printf("engine=%s measure=%s k=%d r=%d  total=%v  search-space=%s\n",
		engine.Name(), trussdiv.EffectiveMeasure(q, engine), k, r,
		took.Round(time.Microsecond), searched)
	for rank, e := range res.TopR {
		fmt.Printf("%3d. vertex %-8d score %d\n", rank+1, e.V, e.Score)
		if showContexts {
			for i, ctxMembers := range res.Contexts[e.V] {
				fmt.Printf("      context %d (%d members): %v\n", i+1, len(ctxMembers), ctxMembers)
			}
		}
	}
	return nil
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
