// Command tsdgen writes synthetic graphs in SNAP edge-list format: the
// generators that substitute for the paper's datasets (see DESIGN.md §3).
//
// Usage:
//
//	tsdgen -type ba -n 100000 -attach 5 -out ba.txt
//	tsdgen -type overlay -n 25000 -cliques 3000 -out social.txt
//	tsdgen -type collab -out dblp-sim.txt
//	tsdgen -type fig1 -out example.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

func main() {
	var (
		typ     = flag.String("type", "ba", "ba|er|rmat|overlay|collab|fig1")
		n       = flag.Int("n", 10000, "vertex count (ba/er/overlay)")
		m       = flag.Int("m", 50000, "edge count (er)")
		attach  = flag.Int("attach", 5, "attachment degree (ba/overlay)")
		scale   = flag.Int("scale", 14, "log2 vertex count (rmat)")
		factor  = flag.Int("factor", 8, "edge factor (rmat)")
		cliques = flag.Int("cliques", 2000, "planted cliques (overlay)")
		minSize = flag.Int("minclique", 4, "min clique size (overlay)")
		maxSize = flag.Int("maxclique", 14, "max clique size (overlay)")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *typ {
	case "ba":
		g = gen.BarabasiAlbert(*n, *attach, *seed)
	case "er":
		g = gen.ErdosRenyiGNM(*n, *m, *seed)
	case "rmat":
		g = gen.RMAT(*scale, *factor, *seed)
	case "overlay":
		g = gen.CommunityOverlay(gen.OverlayConfig{
			N: *n, Attach: *attach, Cliques: *cliques,
			MinSize: *minSize, MaxSize: *maxSize, Seed: *seed,
		})
	case "collab":
		cfg := gen.DefaultCollabConfig()
		cfg.Seed = *seed
		g = gen.Collaboration(cfg)
	case "fig1":
		g = gen.Fig1Graph()
	default:
		fmt.Fprintf(os.Stderr, "tsdgen: unknown type %q\n", *typ)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tsdgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintln(os.Stderr, "tsdgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tsdgen: wrote %d vertices, %d edges\n", g.N(), g.M())
}
