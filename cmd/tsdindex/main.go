// Command tsdindex builds the search indexes of a graph offline and
// persists them to a versioned index store, so serving processes
// (tsdserve -indexdir, or any DB opened with WithIndexDir) warm start
// from disk instead of paying the truss-decomposition build cost on
// every boot.
//
// The store file (<out>/indexes.tdx) holds the global truss
// decomposition, the TSD and GCT indexes, and the hybrid engine's per-k
// rankings, fingerprinted against the exact graph they were built from;
// a reader refuses the file for any other graph and rebuilds instead.
// With -measures the file additionally carries the per-k rankings of the
// component and core diversity measures (format v2 measure-tagged
// sections) and the parameter-free pfree rankings of all three measures,
// so a warm server answers every measure's top-r — fixed-k and k-less —
// in O(r).
//
// Usage:
//
//	tsdindex -dataset gowalla-sim -out idx/
//	tsdindex -input graph.txt -out /var/lib/tsd/indexes
//	tsdindex -input graph.txt -out idx/ -measures  # include component/core rankings
//	tsdindex -input graph.txt -out idx/ -verify    # validate an existing store
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"trussdiv"
	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
	"trussdiv/internal/store"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset  = flag.String("dataset", "", "built-in synthetic dataset name")
		out      = flag.String("out", ".", "directory the index store is written to")
		verify   = flag.Bool("verify", false, "validate the existing store against the graph instead of building")
		measures = flag.Bool("measures", false, "also build the component/core and parameter-free rankings into the store")
	)
	flag.Parse()

	if err := run(*input, *dataset, *out, *verify, *measures); err != nil {
		fmt.Fprintln(os.Stderr, "tsdindex:", err)
		os.Exit(1)
	}
}

func run(input, dataset, out string, verify, measures bool) error {
	g, err := loadGraph(input, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	if verify {
		return verifyStore(store.PathIn(out), g)
	}

	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(out))
	if err != nil {
		return err
	}
	if st := db.StoreStatus(); st.Warm {
		fmt.Printf("existing store %s is valid (sections: %v); refreshing\n", st.Path, st.Sections)
	} else if st.LoadErr != nil {
		fmt.Printf("existing store rejected (%v); rebuilding\n", st.LoadErr)
	}

	// One Prepare call builds everything inside a single deferred persist,
	// so the store file is serialized once, not once per Prepare.
	names := []string(nil) // default set: bound, tsd, gct, hybrid
	if measures {
		// Plus the native measure engines' per-k rankings and the
		// parameter-free rankings, landing in the same file as
		// measure-tagged sections.
		names = []string{"bound", "tsd", "gct", "hybrid", "comp", "kcore", "pfree"}
	}
	start := time.Now()
	if err := db.Prepare(context.Background(), names...); err != nil {
		return err
	}
	prepared := time.Since(start)
	path, err := db.SaveIndexes()
	if err != nil {
		return err
	}

	st := db.StoreStatus()
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	idx := db.IndexStats()
	fmt.Printf("prepared in %v (build %v, load %v)\n",
		prepared.Round(time.Millisecond), idx.BuildTime.Round(time.Millisecond),
		idx.LoadTime.Round(time.Millisecond))
	fmt.Printf("wrote %s (format v%d): %d bytes, sections %v\n", path, st.FormatVersion, info.Size(), st.Sections)
	return nil
}

// verifyStore checks an existing index file end to end: header (magic,
// version, fingerprint), the full per-section CRC pass mmap mode defers at
// open (VerifySections, run over the mapping when the platform supports
// it), and a checksummed decode of every section.
func verifyStore(path string, g *graph.Graph) error {
	f, err := store.OpenFile(path, g)
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	mode, sections := f.Mode(), f.Sections()
	crcErr := f.VerifySections()
	f.Close()
	if crcErr != nil {
		return fmt.Errorf("verify %s: %w", path, crcErr)
	}
	if _, err := store.ReadAll(path, g); err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fmt.Printf("%s: valid (mode %s, sections: %v)\n", path, mode, sections)
	return nil
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
