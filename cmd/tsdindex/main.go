// Command tsdindex builds the search indexes of a graph offline and
// persists them to a versioned index store, so serving processes
// (tsdserve -indexdir, or any DB opened with WithIndexDir) warm start
// from disk instead of paying the truss-decomposition build cost on
// every boot.
//
// The store file (<out>/indexes.tdx) holds the global truss
// decomposition, the TSD and GCT indexes, and the hybrid engine's per-k
// rankings, fingerprinted against the exact graph they were built from;
// a reader refuses the file for any other graph and rebuilds instead.
//
// Usage:
//
//	tsdindex -dataset gowalla-sim -out idx/
//	tsdindex -input graph.txt -out /var/lib/tsd/indexes
//	tsdindex -input graph.txt -out idx/ -verify    # validate an existing store
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"trussdiv"
	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
	"trussdiv/internal/store"
)

func main() {
	var (
		input   = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset = flag.String("dataset", "", "built-in synthetic dataset name")
		out     = flag.String("out", ".", "directory the index store is written to")
		verify  = flag.Bool("verify", false, "validate the existing store against the graph instead of building")
	)
	flag.Parse()

	if err := run(*input, *dataset, *out, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "tsdindex:", err)
		os.Exit(1)
	}
}

func run(input, dataset, out string, verify bool) error {
	g, err := loadGraph(input, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	if verify {
		return verifyStore(store.PathIn(out), g)
	}

	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(out))
	if err != nil {
		return err
	}
	if st := db.StoreStatus(); st.Warm {
		fmt.Printf("existing store %s is valid (sections: %v); refreshing\n", st.Path, st.Sections)
	} else if st.LoadErr != nil {
		fmt.Printf("existing store rejected (%v); rebuilding\n", st.LoadErr)
	}

	start := time.Now()
	if err := db.Prepare(context.Background()); err != nil {
		return err
	}
	prepared := time.Since(start)
	if err := db.SaveIndexes(); err != nil {
		return err
	}

	st := db.StoreStatus()
	info, err := os.Stat(st.Path)
	if err != nil {
		return err
	}
	idx := db.IndexStats()
	fmt.Printf("prepared in %v (build %v, load %v)\n",
		prepared.Round(time.Millisecond), idx.BuildTime.Round(time.Millisecond),
		idx.LoadTime.Round(time.Millisecond))
	fmt.Printf("wrote %s: %d bytes, sections %v\n", st.Path, info.Size(), st.Sections)
	return nil
}

// verifyStore checks an existing index file end to end: header (magic,
// version, fingerprint) plus a checksummed read of every section.
func verifyStore(path string, g *graph.Graph) error {
	f, err := store.Open(path, g)
	if err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	if _, err := store.ReadAll(path, g); err != nil {
		return fmt.Errorf("verify %s: %w", path, err)
	}
	fmt.Printf("%s: valid (sections: %v)\n", path, f.Sections())
	return nil
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
