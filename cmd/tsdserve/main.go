// Command tsdserve serves truss-based structural diversity queries over
// HTTP: it loads a graph, builds the TSD/GCT/Hybrid indexes once, and
// answers any (k, r) query as JSON. Queries without an engine parameter
// are cost-routed to the cheapest engine; each request runs under its own
// context, bounded by -timeout.
//
// Usage:
//
//	tsdserve -dataset gowalla-sim -addr :8080
//	tsdserve -input graph.txt -addr 127.0.0.1:9000 -timeout 2s
//
// Endpoints: /healthz, /stats, /engines,
// /topr?k=&r=&engine=&contexts=&candidates=, /score?v=&k=,
// /contexts?v=&k=.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
	"trussdiv/internal/server"
)

func main() {
	var (
		input   = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset = flag.String("dataset", "", "built-in synthetic dataset name")
		addr    = flag.String("addr", ":8080", "listen address")
		timeout = flag.Duration("timeout", 0, "per-request search deadline (0 = none)")
	)
	flag.Parse()

	g, err := loadGraph(*input, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdserve:", err)
		os.Exit(1)
	}
	log.Printf("graph loaded: %d vertices, %d edges; building indexes...", g.N(), g.M())
	start := time.Now()
	srv := server.New(g, server.WithTimeout(*timeout))
	log.Printf("indexes ready in %v; engines %v; serving on %s",
		time.Since(start).Round(time.Millisecond), srv.DB().Engines(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
