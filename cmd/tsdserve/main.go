// Command tsdserve serves truss-based structural diversity queries over
// HTTP: it loads a graph, builds the TSD/GCT/Hybrid indexes once, and
// answers any (k, r) query as JSON. Queries without an engine parameter
// are cost-routed to the cheapest engine; each request runs under its own
// context, bounded by -timeout.
//
// With -indexdir the server warm starts from a persistent index store:
// indexes prebuilt by cmd/tsdindex load from dir/indexes.tdx instead of
// being rebuilt, and a cold start persists what it builds so the next
// boot is warm. A stale or damaged index file is rebuilt around.
//
// Usage:
//
//	tsdserve -dataset gowalla-sim -addr :8080
//	tsdserve -input graph.txt -addr 127.0.0.1:9000 -timeout 2s
//	tsdindex -dataset gowalla-sim -out idx/ && tsdserve -dataset gowalla-sim -indexdir idx/
//
// The served graph is live by default: POST /edges applies an atomic
// batch of edge insertions/deletions (incremental index repair, epoch
// bump, in-flight queries unaffected); -readonly disables it.
//
// The diversity measure is a query axis: measure=truss|component|core on
// /topr, /score, and /contexts (and a "measure" field per /batch query)
// selects the model, with GET /measures listing which engines serve
// which measure. An index store built with tsdindex -measures warm
// starts the component/core rankings too.
//
// Endpoints: /healthz, /stats, /engines, /measures,
// /topr?k=&r=&engine=&measure=&contexts=&candidates=, POST /batch,
// POST /edges, /score?v=&k=&measure=, /contexts?v=&k=&measure=.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"trussdiv/internal/bench"
	"trussdiv/internal/graph"
	"trussdiv/internal/server"
)

func main() {
	var (
		input    = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset  = flag.String("dataset", "", "built-in synthetic dataset name")
		addr     = flag.String("addr", ":8080", "listen address")
		timeout  = flag.Duration("timeout", 0, "per-request search deadline (0 = none)")
		indexDir = flag.String("indexdir", "", "persistent index store directory for warm starts (see cmd/tsdindex)")
		readOnly = flag.Bool("readonly", false, "disable POST /edges live updates")
	)
	flag.Parse()

	g, err := loadGraph(*input, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdserve:", err)
		os.Exit(1)
	}
	log.Printf("graph loaded: %d vertices, %d edges; preparing indexes...", g.N(), g.M())
	start := time.Now()
	opts := []server.Option{server.WithTimeout(*timeout)}
	if *indexDir != "" {
		opts = append(opts, server.WithIndexDir(*indexDir))
	}
	if *readOnly {
		opts = append(opts, server.WithReadOnly())
	}
	srv := server.New(g, opts...)
	if st := srv.DB().StoreStatus(); st.Dir != "" {
		switch {
		case st.SaveErr != nil:
			log.Printf("index store %s not writable (%v); every boot will be cold", st.Path, st.SaveErr)
		case st.LoadErr != nil:
			log.Printf("index store %s rejected (%v); rebuilt from the graph", st.Path, st.LoadErr)
		case st.Warm && srv.DB().IndexStats().LoadTime > 0:
			log.Printf("warm start from %s (sections: %v)", st.Path, st.Sections)
		case st.Warm:
			log.Printf("index store written to %s (sections: %v)", st.Path, st.Sections)
		}
	}
	mode := "live updates on POST /edges"
	if *readOnly {
		mode = "read-only"
	}
	log.Printf("indexes ready in %v; engines %v; epoch %d (%s); serving on %s",
		time.Since(start).Round(time.Millisecond), srv.DB().Engines(), srv.DB().Epoch(), mode, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
