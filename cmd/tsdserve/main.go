// Command tsdserve serves truss-based structural diversity queries over
// HTTP: it loads a graph, builds the TSD/GCT/Hybrid indexes once, and
// answers any (k, r) query as JSON. Queries without an engine parameter
// are cost-routed to the cheapest engine; each request runs under its own
// context, bounded by -timeout.
//
// With -indexdir the server warm starts from a persistent index store:
// indexes prebuilt by cmd/tsdindex load from dir/indexes.tdx instead of
// being rebuilt, and a cold start persists what it builds so the next
// boot is warm. A stale or damaged index file is rebuilt around. Format
// v3 stores are memory-mapped by default, so N replicas of one graph
// share a single physical copy of the index arrays; -storemode decode
// forces the classic read-and-decode path.
//
// Usage:
//
//	tsdserve -dataset gowalla-sim -addr :8080
//	tsdserve -input graph.txt -addr 127.0.0.1:9000 -timeout 2s
//	tsdindex -dataset gowalla-sim -out idx/ && tsdserve -dataset gowalla-sim -indexdir idx/
//
// The served graph is live by default: POST /edges applies an atomic
// batch of edge insertions/deletions (incremental index repair, epoch
// bump, in-flight queries unaffected); -readonly disables it.
//
// The diversity measure is a query axis: measure=truss|component|core on
// /topr, /score, and /contexts (and a "measure" field per /batch query)
// selects the model, with GET /measures listing which engines serve
// which measure. An index store built with tsdindex -measures warm
// starts the component/core rankings too.
//
// k is optional on every query endpoint: a /topr request without k (or
// with k=0, including per /batch query) is parameter-free and routes to
// the pfree engine, which scores each vertex at its own discriminating
// level; /score and /contexts without k answer the parameter-free point
// query. This holds in cluster mode too — the coordinator forwards
// k-less queries and merges the shards' pfree answers byte-identically
// to a single node.
//
// # Cluster modes
//
// The same binary runs the distributed serving tier. A shard worker owns
// one contiguous vertex id range of the shared graph and answers partial
// queries; a coordinator fans queries out to the shards and merges their
// answers byte-identically to a single node (see internal/cluster):
//
//	tsdserve -shard -dataset gowalla-sim -range 0:500 -addr :7001
//	tsdserve -shard -dataset gowalla-sim -range 500:1000 -addr :7002
//	tsdserve -coordinator -shards localhost:7001,localhost:7002 -addr :8080
//
// Shard groups in -shards are comma-separated; replicas of one shard are
// separated by '|' ("a:7001|a:7101,b:7002" = two shards, the first
// replicated). The coordinator serves /topr, /score, /contexts, /edges
// with the single-node shapes plus GET /cluster for shard health.
//
// All modes shut down gracefully: SIGINT/SIGTERM stops accepting
// connections and drains in-flight requests for up to -drain. In every
// mode -pprof additionally exposes Go's net/http/pprof endpoints under
// /debug/pprof/ on the serving mux (off by default).
//
// Endpoints (single node): /healthz, /stats, /metrics, /engines,
// /measures, /topr?k=&r=&engine=&measure=&contexts=&candidates=,
// POST /batch, POST /edges, /score?v=&k=&measure=, /contexts?v=&k=&measure=.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trussdiv"
	"trussdiv/internal/bench"
	"trussdiv/internal/cluster"
	"trussdiv/internal/graph"
	"trussdiv/internal/server"
)

func main() {
	var (
		input     = flag.String("input", "", "edge-list file (SNAP text format)")
		dataset   = flag.String("dataset", "", "built-in synthetic dataset name")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 0, "per-request search deadline (0 = none)")
		indexDir  = flag.String("indexdir", "", "persistent index store directory for warm starts (see cmd/tsdindex)")
		storeMode = flag.String("storemode", "mmap", "index store read mode: mmap (zero-copy views, replicas share pages) or decode")
		readOnly  = flag.Bool("readonly", false, "disable POST /edges live updates")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the serving mux")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")

		coordMode = flag.Bool("coordinator", false, "run as cluster coordinator (requires -shards)")
		shardsArg = flag.String("shards", "", "coordinator: shard groups, comma-separated; replicas '|'-separated (host:port|host:port,...)")
		shardMode = flag.Bool("shard", false, "run as shard worker (requires -range)")
		rangeArg  = flag.String("range", "", "shard: owned vertex id range lo:hi (hi exclusive)")
	)
	flag.Parse()

	mode, err := parseStoreMode(*storeMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdserve:", err)
		os.Exit(1)
	}

	if err := run(options{
		input: *input, dataset: *dataset, addr: *addr, timeout: *timeout,
		indexDir: *indexDir, storeMode: mode, readOnly: *readOnly, drain: *drain,
		pprof:     *pprofOn,
		coordMode: *coordMode, shards: *shardsArg,
		shardMode: *shardMode, rangeSpec: *rangeArg,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tsdserve:", err)
		os.Exit(1)
	}
}

type options struct {
	input, dataset, addr string
	timeout, drain       time.Duration
	indexDir             string
	storeMode            trussdiv.StoreMode
	readOnly             bool
	pprof                bool
	coordMode            bool
	shards               string
	shardMode            bool
	rangeSpec            string
}

func parseStoreMode(s string) (trussdiv.StoreMode, error) {
	switch s {
	case "mmap":
		return trussdiv.StoreMmap, nil
	case "decode":
		return trussdiv.StoreDecode, nil
	}
	return 0, fmt.Errorf("-storemode %q: want mmap or decode", s)
}

func run(o options) error {
	switch {
	case o.coordMode && o.shardMode:
		return errors.New("give either -coordinator or -shard, not both")
	case o.coordMode:
		return runCoordinator(o)
	case o.shardMode:
		return runShard(o)
	default:
		return runSingle(o)
	}
}

// withPprof mounts the net/http/pprof handlers in front of h for the
// cluster modes, whose handlers come from internal/cluster rather than
// the single-node server (which registers pprof on its own mux).
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// serve runs handler on addr until SIGINT/SIGTERM, then drains in-flight
// requests for up to the drain deadline before returning.
func serve(addr string, handler http.Handler, drain time.Duration) error {
	srv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err // bind failure or similar — never got to serving
	case <-ctx.Done():
	}
	stop() // second signal kills immediately instead of waiting for drain
	log.Printf("shutdown signal received; draining in-flight requests (up to %v)", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain deadline expired: %w", err)
	}
	log.Printf("drained cleanly")
	return nil
}

func runSingle(o options) error {
	g, err := loadGraph(o.input, o.dataset)
	if err != nil {
		return err
	}
	log.Printf("graph loaded: %d vertices, %d edges; preparing indexes...", g.N(), g.M())
	start := time.Now()
	opts := []server.Option{server.WithTimeout(o.timeout)}
	if o.indexDir != "" {
		opts = append(opts, server.WithIndexDir(o.indexDir),
			server.WithStoreMode(o.storeMode))
	}
	if o.readOnly {
		opts = append(opts, server.WithReadOnly())
	}
	if o.pprof {
		opts = append(opts, server.WithPprof())
	}
	srv := server.New(g, opts...)
	if st := srv.DB().StoreStatus(); st.Dir != "" {
		switch {
		case st.SaveErr != nil:
			log.Printf("index store %s not writable (%v); every boot will be cold", st.Path, st.SaveErr)
		case st.LoadErr != nil:
			log.Printf("index store %s rejected (%v); rebuilt from the graph", st.Path, st.LoadErr)
		case st.Warm && srv.DB().IndexStats().LoadTime > 0:
			log.Printf("warm start from %s (format v%d, %s mode, sections: %v)",
				st.Path, st.FormatVersion, st.Mode, st.Sections)
		case st.Warm:
			log.Printf("index store written to %s (sections: %v)", st.Path, st.Sections)
		}
	}
	mode := "live updates on POST /edges"
	if o.readOnly {
		mode = "read-only"
	}
	log.Printf("indexes ready in %v; engines %v; epoch %d (%s); serving on %s",
		time.Since(start).Round(time.Millisecond), srv.DB().Engines(), srv.DB().Epoch(), mode, o.addr)
	return serve(o.addr, srv.Handler(), o.drain)
}

func runShard(o options) error {
	if o.rangeSpec == "" {
		return errors.New("-shard requires -range lo:hi")
	}
	lo, hi, err := cluster.ParseRange(o.rangeSpec)
	if err != nil {
		return err
	}
	g, err := loadGraph(o.input, o.dataset)
	if err != nil {
		return err
	}
	log.Printf("shard graph loaded: %d vertices, %d edges; preparing indexes...", g.N(), g.M())
	start := time.Now()
	var dbOpts []trussdiv.Option
	if o.indexDir != "" {
		dbOpts = append(dbOpts, trussdiv.WithIndexDir(o.indexDir),
			trussdiv.WithStoreMode(o.storeMode))
	}
	db, err := trussdiv.Open(g, dbOpts...)
	if err != nil {
		return err
	}
	if err := db.Prepare(context.Background()); err != nil {
		return err
	}
	w, err := cluster.NewWorker(db, lo, hi)
	if err != nil {
		return err
	}
	log.Printf("shard ready in %v: range [%d,%d) of %d vertices, epoch %d; serving on %s",
		time.Since(start).Round(time.Millisecond), lo, hi, g.N(), db.Epoch(), o.addr)
	h := http.Handler(w.Handler())
	if o.pprof {
		h = withPprof(h)
	}
	return serve(o.addr, h, o.drain)
}

func runCoordinator(o options) error {
	if o.input != "" || o.dataset != "" {
		return errors.New("-coordinator takes no graph: the shard workers own it")
	}
	groups, err := cluster.ParseShards(o.shards)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	coord, err := cluster.NewCoordinator(context.Background(), groups)
	if err != nil {
		return err
	}
	srv := cluster.NewCoordinatorServer(coord, o.timeout)
	log.Printf("coordinator ready: %d shards, epoch %d; serving on %s",
		coord.Shards(), coord.Epoch(), o.addr)
	h := http.Handler(srv.Handler())
	if o.pprof {
		h = withPprof(h)
	}
	return serve(o.addr, h, o.drain)
}

func loadGraph(input, dataset string) (*graph.Graph, error) {
	switch {
	case input != "" && dataset != "":
		return nil, fmt.Errorf("give either -input or -dataset, not both")
	case input != "":
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		return g, err
	case dataset != "":
		return bench.Load(dataset)
	default:
		return nil, fmt.Errorf("need -input FILE or -dataset NAME (known: %v)", bench.DatasetNames())
	}
}
