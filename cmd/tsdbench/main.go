// Command tsdbench regenerates the tables and figures of the paper's
// evaluation (§7) on the synthetic dataset substitutes.
//
// Usage:
//
//	tsdbench -exp table2          # one experiment
//	tsdbench -exp all -quick      # everything, small datasets
//	tsdbench -list                # show available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"trussdiv/internal/bench"
)

func main() {
	var (
		expID = flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
		quick = flag.Bool("quick", false, "small datasets and fewer Monte-Carlo runs")
		seed  = flag.Int64("seed", 1, "base RNG seed for simulations")
		runs  = flag.Int("mcruns", 0, "Monte-Carlo cascade count (0 = default)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	cfg := bench.Config{Quick: *quick, Seed: *seed, MCRuns: *runs}
	if *expID == "all" {
		if err := bench.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "tsdbench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := bench.ByID(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "tsdbench: unknown experiment %q; known: %v\n", *expID, bench.IDs())
		os.Exit(1)
	}
	fmt.Printf("### %s (%s): %s\n\n", e.ID, e.Paper, e.Description)
	if err := e.Run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "tsdbench:", err)
		os.Exit(1)
	}
}
