// Command tsdbench regenerates the tables and figures of the paper's
// evaluation (§7) on the synthetic dataset substitutes.
//
// Usage:
//
//	tsdbench -exp table2                  # one experiment
//	tsdbench -exp all -quick              # everything, small datasets
//	tsdbench -exp all -timeout 5m         # bound the whole run
//	tsdbench -exp parallel -workers 8     # serial vs parallel engine timings
//	tsdbench -exp dynamic -updates 32     # incremental Apply vs cold rebuild
//	tsdbench -exp measures                # per-measure serving cost (BENCH_measures.json)
//	tsdbench -exp measures -measure core  # one measure only
//	tsdbench -list                        # show available experiment IDs
//
// The parallel experiment writes BENCH_parallel.json (serial vs -workers
// wall times per engine) into -outdir, recording the perf trajectory of
// the worker-pool search layer; the dynamic experiment likewise writes
// BENCH_dynamic.json (DB.Apply vs rebuild under -updates-edge batches),
// recording the perf trajectory of the mutable-graph write path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"trussdiv/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
		quick   = flag.Bool("quick", false, "small datasets and fewer Monte-Carlo runs")
		seed    = flag.Int64("seed", 1, "base RNG seed for simulations")
		runs    = flag.Int("mcruns", 0, "Monte-Carlo cascade count (0 = default)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (0 = none)")
		workers = flag.Int("workers", 0, "worker-pool size for parallel search experiments (0 = GOMAXPROCS)")
		updates = flag.Int("updates", 0, "edits per Apply batch for the dynamic experiment (0 = default of 16)")
		measure = flag.String("measure", "", "restrict the measures experiment to one diversity measure: truss|component|core (default: all)")
		outDir  = flag.String("outdir", "", "directory for machine-readable artifacts like BENCH_parallel.json (default: working dir)")
		force   = flag.Bool("force", false, "overwrite guarded baselines (a GOMAXPROCS=1 run refuses to replace an existing BENCH_parallel.json without this)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	// A missing -outdir is created by the artifact writer (bench.writeArtifact)
	// at first use, so a fresh checkout or CI workspace needs no mkdir.
	cfg := bench.Config{Quick: *quick, Seed: *seed, MCRuns: *runs, Workers: *workers, Updates: *updates, Measure: *measure, OutDir: *outDir, Force: *force}
	if err := runWithDeadline(*timeout, func() error { return run(*expID, cfg) }); err != nil {
		fmt.Fprintln(os.Stderr, "tsdbench:", err)
		os.Exit(1)
	}
}

func run(expID string, cfg bench.Config) error {
	if expID == "all" {
		return bench.RunAll(os.Stdout, cfg)
	}
	e, ok := bench.ByID(expID)
	if !ok {
		return fmt.Errorf("unknown experiment %q; known: %v", expID, bench.IDs())
	}
	fmt.Printf("### %s (%s): %s\n\n", e.ID, e.Paper, e.Description)
	return e.Run(os.Stdout, cfg)
}

// runWithDeadline bounds f by the -timeout flag. The experiment harness
// predates context plumbing, so the bound is process-level: when the
// deadline passes the run is abandoned and the process exits non-zero.
func runWithDeadline(timeout time.Duration, f func() error) error {
	if timeout <= 0 {
		return f()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("run exceeded -timeout %v: %w", timeout, ctx.Err())
	}
}
