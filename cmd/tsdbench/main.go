// Command tsdbench regenerates the tables and figures of the paper's
// evaluation (§7) on the synthetic dataset substitutes.
//
// Usage:
//
//	tsdbench -exp table2                  # one experiment
//	tsdbench -exp all -quick              # everything, small datasets
//	tsdbench -exp all -timeout 5m         # bound the whole run
//	tsdbench -exp parallel -workers 8     # serial vs parallel engine timings
//	tsdbench -exp dynamic -updates 32     # incremental Apply vs cold rebuild
//	tsdbench -exp measures                # per-measure serving cost (BENCH_measures.json)
//	tsdbench -exp measures -measure core  # one measure only
//	tsdbench -list                        # show available experiment IDs
//	tsdbench -exp measures -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//
// The parallel experiment writes BENCH_parallel.json (serial vs -workers
// wall times per engine) into -outdir, recording the perf trajectory of
// the worker-pool search layer; the dynamic experiment likewise writes
// BENCH_dynamic.json (DB.Apply vs rebuild under -updates-edge batches),
// recording the perf trajectory of the mutable-graph write path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"trussdiv/internal/bench"
)

func main() {
	var (
		expID   = flag.String("exp", "all", "experiment ID to run (see -list), or 'all'")
		quick   = flag.Bool("quick", false, "small datasets and fewer Monte-Carlo runs")
		seed    = flag.Int64("seed", 1, "base RNG seed for simulations")
		runs    = flag.Int("mcruns", 0, "Monte-Carlo cascade count (0 = default)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (0 = none)")
		workers = flag.Int("workers", 0, "worker-pool size for parallel search experiments (0 = GOMAXPROCS)")
		updates = flag.Int("updates", 0, "edits per Apply batch for the dynamic experiment (0 = default of 16)")
		measure = flag.String("measure", "", "restrict the measures experiment to one diversity measure: truss|component|core (default: all)")
		outDir  = flag.String("outdir", "", "directory for machine-readable artifacts like BENCH_parallel.json (default: working dir)")
		force   = flag.Bool("force", false, "overwrite guarded baselines (a GOMAXPROCS=1 run refuses to replace an existing BENCH_parallel.json without this)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the run, post-GC) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %-9s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdbench:", err)
		os.Exit(1)
	}
	// A missing -outdir is created by the artifact writer (bench.writeArtifact)
	// at first use, so a fresh checkout or CI workspace needs no mkdir.
	cfg := bench.Config{Quick: *quick, Seed: *seed, MCRuns: *runs, Workers: *workers, Updates: *updates, Measure: *measure, OutDir: *outDir, Force: *force}
	err = runWithDeadline(*timeout, func() error { return run(*expID, cfg) })
	stopProfiles() // flush before any exit path: os.Exit skips defers
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsdbench:", err)
		os.Exit(1)
	}
}

// startProfiles wires the optional -cpuprofile / -memprofile outputs.
// The returned stop function ends CPU sampling and snapshots the heap
// (post-GC, so the profile shows retention rather than churn).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tsdbench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tsdbench: -memprofile:", err)
			}
		}
	}, nil
}

func run(expID string, cfg bench.Config) error {
	if expID == "all" {
		return bench.RunAll(os.Stdout, cfg)
	}
	e, ok := bench.ByID(expID)
	if !ok {
		return fmt.Errorf("unknown experiment %q; known: %v", expID, bench.IDs())
	}
	fmt.Printf("### %s (%s): %s\n\n", e.ID, e.Paper, e.Description)
	return e.Run(os.Stdout, cfg)
}

// runWithDeadline bounds f by the -timeout flag. The experiment harness
// predates context plumbing, so the bound is process-level: when the
// deadline passes the run is abandoned and the process exits non-zero.
func runWithDeadline(timeout time.Duration, f func() error) error {
	if timeout <= 0 {
		return f()
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("run exceeded -timeout %v: %w", timeout, ctx.Err())
	}
}
