package trussdiv

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/truss"
)

// streamUpdates builds one random batch: nIns absent edges and nDel
// present ones, disjoint. (bench.RandomUpdates does the same but lives
// in a package that imports trussdiv, off limits to an internal test.)
func streamUpdates(g *Graph, rng *rand.Rand, nIns, nDel int) Updates {
	n := int32(g.N())
	var u Updates
	chosen := map[Edge]bool{}
	for len(u.Insert) < nIns {
		a, b := rng.Int31n(n), rng.Int31n(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := Edge{U: a, V: b}
		if g.HasEdge(a, b) || chosen[e] {
			continue
		}
		chosen[e] = true
		u.Insert = append(u.Insert, e)
	}
	edges := g.Edges()
	for len(u.Delete) < nDel && len(u.Delete) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		u.Delete = append(u.Delete, e)
	}
	return u
}

// TestApplyStreamRepairMatchesColdRebuild drives a randomized update
// stream through a fully prepared DB and, after every batch, pins the
// incremental repair byte-equal to a cold rebuild: the repaired tau and
// support arrays match a fresh decomposition of the edited graph, and
// every (engine, measure) cell of the routing matrix answers exactly
// like a cold DB opened on that graph. The DB never falls back to a full
// rebuild for these small batches — the whole point of the repair path.
func TestApplyStreamRepairMatchesColdRebuild(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 240, Attach: 3, Cliques: 48, MinSize: 4, MaxSize: 7, Seed: 77,
	})
	ctx := context.Background()
	db, err := Open(g, WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(ctx, "comp", "kcore"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))

	batches := []struct{ ins, del int }{
		{1, 0}, {0, 1}, {3, 2}, {0, 4}, {5, 0}, {4, 4},
	}
	for step, b := range batches {
		u := streamUpdates(db.Graph(), rng, b.ins, b.del)
		if _, err := db.Apply(ctx, u); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		ast := db.Snapshot().ApplyStats()
		if ast == nil || !ast.TrussRepaired {
			t.Fatalf("step %d (+%d/-%d): repair fell back to a rebuild: %+v",
				step, b.ins, b.del, ast)
		}

		// The repaired decomposition is byte-equal to a cold one.
		cache := db.Snapshot().cache
		cache.mu.Lock()
		tau := append([]int32(nil), cache.tau...)
		sup := append([]int32(nil), cache.sup...)
		cache.mu.Unlock()
		if want := truss.Decompose(db.Graph()); !reflect.DeepEqual(tau, want) {
			t.Fatalf("step %d: repaired tau diverges from cold decomposition", step)
		}
		if want := db.Graph().Supports(); !reflect.DeepEqual(sup, want) {
			t.Fatalf("step %d: repaired supports diverge from a fresh count", step)
		}

		// Every engine × measure cell answers like a cold DB on this graph.
		cold, err := Open(db.Graph())
		if err != nil {
			t.Fatal(err)
		}
		for _, mi := range db.Measures() {
			for _, name := range mi.Engines {
				k := int32(3)
				if name == "pfree" {
					k = 0 // the parameter-free engine forbids a threshold
				}
				q := NewQuery(k, 12, ViaEngine(name), WithMeasure(mi.Measure), WithContexts())
				got, _, err := db.TopR(ctx, q)
				if err != nil {
					t.Fatalf("step %d %s/%s: %v", step, name, mi.Measure, err)
				}
				want, _, err := cold.TopR(ctx, q)
				if err != nil {
					t.Fatalf("step %d %s/%s (cold): %v", step, name, mi.Measure, err)
				}
				if !reflect.DeepEqual(got.TopR, want.TopR) {
					t.Fatalf("step %d %s/%s: repaired answer diverges from cold rebuild\n got %v\nwant %v",
						step, name, mi.Measure, got.TopR, want.TopR)
				}
				if !reflect.DeepEqual(got.Contexts, want.Contexts) {
					t.Fatalf("step %d %s/%s: contexts diverge from cold rebuild", step, name, mi.Measure)
				}
			}
		}
	}
}
