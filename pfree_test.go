package trussdiv_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"trussdiv"
)

// Parameter-free parity: the pfree engine — prepared or online, serial
// or parallel, routed or pinned, single query or Batch — must be
// byte-identical to a brute-force aggregator that restates the
// definition through the fixed-k point API. The brute force never
// touches internal/pfree: it probes db.ScoreMeasure level by level and
// applies pfree(v) = max{h >= 1 : s_m(v, max(h, 2)) >= h} by hand.

// naivePFreeScore computes the parameter-free score of one vertex from
// the definition. s_m(v, k) = 0 for every k > deg(v) under all three
// measures (a context at level k has at least k vertices and lives
// inside the ego network), so probing stops at the degree.
func naivePFreeScore(t *testing.T, db *trussdiv.DB, v int32, m trussdiv.Measure) int {
	t.Helper()
	ctx := context.Background()
	s2, err := db.ScoreMeasure(ctx, v, 2, m)
	if err != nil {
		t.Fatalf("ScoreMeasure(%d, 2, %s): %v", v, m, err)
	}
	best := 0
	switch {
	case s2 >= 2:
		best = 2
	case s2 >= 1:
		best = 1
	}
	for k := 3; k <= db.Graph().Degree(v); k++ {
		s, err := db.ScoreMeasure(ctx, v, int32(k), m)
		if err != nil {
			t.Fatalf("ScoreMeasure(%d, %d, %s): %v", v, k, m, err)
		}
		if s >= k {
			best = k
		}
	}
	return best
}

// naivePFreeTopR ranks every vertex by its brute-force score under the
// canonical total order (score descending, id ascending — which a
// stable ascending scan already produces) and returns the top r.
func naivePFreeTopR(t *testing.T, db *trussdiv.DB, m trussdiv.Measure, r int) []trussdiv.VertexScore {
	t.Helper()
	byScore := map[int][]trussdiv.VertexScore{}
	max := 0
	for v := int32(0); int(v) < db.Graph().N(); v++ {
		if s := naivePFreeScore(t, db, v, m); s > 0 {
			byScore[s] = append(byScore[s], trussdiv.VertexScore{V: v, Score: s})
			if s > max {
				max = s
			}
		}
	}
	out := make([]trussdiv.VertexScore, 0, r)
	for s := max; s >= 1 && len(out) < r; s-- {
		out = append(out, byScore[s]...)
	}
	if len(out) > r {
		out = out[:r]
	}
	return out
}

func TestPFreeParityRandomized(t *testing.T) {
	configs := []trussdiv.OverlayConfig{
		{N: 120, Attach: 2, Cliques: 30, MinSize: 3, MaxSize: 6, Seed: 101},
		{N: 200, Attach: 3, Cliques: 40, MinSize: 4, MaxSize: 8, Seed: 202},
		{N: 260, Attach: 4, Cliques: 50, MinSize: 4, MaxSize: 9, Seed: 303},
	}
	ctx := context.Background()
	const r = 15
	for _, cfg := range configs {
		g := trussdiv.CommunityOverlay(cfg)
		// The brute-force probe runs on its own cold DB so point queries
		// go through each measure's native engine, not the pfree path.
		probe, err := trussdiv.Open(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range trussdiv.AllMeasures() {
			want := naivePFreeTopR(t, probe, m, r)
			for _, prepared := range []bool{false, true} {
				db, err := trussdiv.Open(g)
				if err != nil {
					t.Fatal(err)
				}
				if prepared {
					if err := db.Prepare(ctx, "pfree"); err != nil {
						t.Fatal(err)
					}
				}
				var queries []trussdiv.Query
				for _, engine := range []string{"", "pfree"} {
					for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
						label := fmt.Sprintf("seed=%d measure=%s prepared=%v engine=%q workers=%d",
							cfg.Seed, m, prepared, engine, workers)
						q := trussdiv.NewQuery(0, r, trussdiv.WithMeasure(m),
							trussdiv.WithContexts(), trussdiv.WithWorkers(workers))
						if engine != "" {
							q.Engine = engine
						}
						queries = append(queries, q)
						res, stats, err := db.TopR(ctx, q)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if stats.Engine != "pfree" {
							t.Fatalf("%s: k-less query answered by %q, want pfree", label, stats.Engine)
						}
						if !reflect.DeepEqual(res.TopR, want) {
							t.Fatalf("%s: diverged from brute force\n got %v\nwant %v",
								label, res.TopR, want)
						}
						for _, e := range res.TopR {
							cs, err := db.ContextsPFree(ctx, e.V, m)
							if err != nil {
								t.Fatalf("%s: ContextsPFree(%d): %v", label, e.V, err)
							}
							if !reflect.DeepEqual(res.Contexts[e.V], cs) {
								t.Fatalf("%s: contexts of %d diverge from the point query", label, e.V)
							}
							// The contexts live at the discriminating level
							// k* = max(score, 2) under the fixed-k measure API.
							lvl := int32(e.Score)
							if lvl < 2 {
								lvl = 2
							}
							fixed, err := probe.ContextsMeasure(ctx, e.V, lvl, m)
							if err != nil {
								t.Fatalf("%s: ContextsMeasure(%d, %d): %v", label, e.V, lvl, err)
							}
							if !reflect.DeepEqual(cs, fixed) {
								t.Fatalf("%s: contexts of %d are not the measure contexts at k* = %d",
									label, e.V, lvl)
							}
						}
					}
				}
				// Batch execution of the same queries is byte-identical too.
				batched, err := db.Batch(ctx, queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, res := range batched {
					if !reflect.DeepEqual(res.TopR, want) {
						t.Fatalf("seed=%d measure=%s prepared=%v: Batch[%d] diverged from brute force",
							cfg.Seed, m, prepared, i)
					}
				}
			}
		}
	}
}

// TestPFreePointParity: ScorePFree agrees with the brute-force score on
// every vertex, and vertices scoring 0 have no pfree contexts.
func TestPFreePointParity(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 150, Attach: 3, Cliques: 30, MinSize: 4, MaxSize: 7, Seed: 404,
	})
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, m := range trussdiv.AllMeasures() {
		for v := int32(0); int(v) < g.N(); v++ {
			want := naivePFreeScore(t, db, v, m)
			got, err := db.ScorePFree(ctx, v, m)
			if err != nil {
				t.Fatalf("ScorePFree(%d, %s): %v", v, m, err)
			}
			if got != want {
				t.Fatalf("ScorePFree(%d, %s) = %d, brute force says %d", v, m, got, want)
			}
			cs, err := db.ContextsPFree(ctx, v, m)
			if err != nil {
				t.Fatalf("ContextsPFree(%d, %s): %v", v, m, err)
			}
			if want == 0 && len(cs) != 0 {
				t.Fatalf("vertex %d scores 0 under %s but has %d contexts", v, m, len(cs))
			}
			if want > 0 && len(cs) == 0 {
				t.Fatalf("vertex %d scores %d under %s but has no contexts", v, want, m)
			}
		}
	}
}

// TestPFreeBadQueryContract pins the engine-aware K validation at the
// root API: every violation is a typed *BadQueryError matching
// ErrBadQuery, naming the engine whose contract was broken.
func TestPFreeBadQueryContract(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		name   string
		q      trussdiv.Query
		engine string // expected BadQueryError.Engine ("" = any)
	}{
		{"fixed-k engine pinned without k", trussdiv.NewQuery(0, 5, trussdiv.ViaEngine("gct")), "gct"},
		{"pfree pinned with k", trussdiv.NewQuery(4, 5, trussdiv.ViaEngine("pfree")), "pfree"},
		{"k=1 is valid for no engine", trussdiv.NewQuery(1, 5), ""},
		{"k=1 pinned", trussdiv.NewQuery(1, 5, trussdiv.ViaEngine("hybrid")), "hybrid"},
	}
	for _, tc := range cases {
		_, _, err := db.TopR(ctx, tc.q)
		if err == nil {
			t.Fatalf("%s: query succeeded, want *BadQueryError", tc.name)
		}
		if !errors.Is(err, trussdiv.ErrBadQuery) {
			t.Fatalf("%s: errors.Is(err, ErrBadQuery) = false for %v", tc.name, err)
		}
		var bq *trussdiv.BadQueryError
		if !errors.As(err, &bq) {
			t.Fatalf("%s: err %T is not *BadQueryError", tc.name, err)
		}
		if bq.K != tc.q.K {
			t.Fatalf("%s: BadQueryError.K = %d, want %d", tc.name, bq.K, tc.q.K)
		}
		if tc.engine != "" && bq.Engine != tc.engine {
			t.Fatalf("%s: BadQueryError.Engine = %q, want %q", tc.name, bq.Engine, tc.engine)
		}
		// A failed validation never reaches an engine or the cache.
		if rc := db.ResultCacheStats(); rc.Misses != 0 || rc.Hits != 0 {
			t.Fatalf("%s: invalid query touched the result cache: %+v", tc.name, rc)
		}
	}
	// Batch surfaces the same typed error.
	if _, err := db.Batch(ctx, []trussdiv.Query{trussdiv.NewQuery(0, 5), trussdiv.NewQuery(1, 5)}); !errors.Is(err, trussdiv.ErrBadQuery) {
		t.Fatalf("Batch with a k=1 member: err = %v, want ErrBadQuery", err)
	}
}
