package trussdiv

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sort"
	"sync"
	"time"

	"trussdiv/internal/baseline"
	"trussdiv/internal/core"
	"trussdiv/internal/pfree"
	"trussdiv/internal/store"
	"trussdiv/internal/truss"
)

// indexCache lazily provides and shares the search accelerators — the
// global truss decomposition and the TSD/GCT/Hybrid structures — among
// the engine adapters of one DB, so e.g. the gct and hybrid engines reuse
// one GCT index. With an index directory configured (WithIndexDir), a
// cache miss first tries the on-disk store and only then builds from the
// graph; every from-scratch build is persisted back, so the next process
// warm starts. All accessors are safe for concurrent use; builds are not
// interruptible, so cancellation is observed before a build starts.
type indexCache struct {
	g *Graph

	mu        sync.Mutex
	epoch     Epoch   // the snapshot this cache belongs to; recorded on persist
	tau       []int32 // global truss decomposition, indexed by edge ID
	sup       []int32 // pristine edge supports matching tau (nil when tau was store-loaded)
	tsd       *core.TSDIndex
	gct       *core.GCTIndex
	hybrid    *core.Hybrid
	mrank     map[core.Measure][][]core.VertexScore // per-measure per-k rankings (non-truss)
	pfrank    map[core.Measure][]core.VertexScore   // parameter-free rankings (all measures)
	buildTime time.Duration
	loadTime  time.Duration

	// Persistence state. file is the validated warm-start file (nil on a
	// cold start); bad marks sections whose payload failed its checksum
	// (decode mode) or structural validation (mmap mode) — sections fail
	// independently, so one damaged section does not discredit the rest of
	// the file. loadErr records why
	// an on-disk index (or section) was rejected, saveErr the last persist
	// failure. deferPersist batches the per-build writes of a Prepare into
	// one (dirty remembers that something was built meanwhile).
	dir          string
	mode         store.Mode
	file         *store.File
	bad          map[store.SectionRef]bool
	loadErr      error
	saveErr      error
	deferPersist bool
	dirty        bool

	// retained pins every mmap-backed store.File whose views this cache's
	// structures may alias — including files inherited through advance,
	// because incremental repair shares untouched per-vertex slices with
	// the previous generation. Each entry owns one File reference, released
	// by a GC cleanup when the cache itself becomes unreachable, so a
	// superseded snapshot chain unmaps once its last reader lets go.
	retained []*store.File

	// Build entry points, swappable by tests that assert a warm open
	// never builds; builds counts the from-scratch constructions. buildTau
	// returns the supports alongside the decomposition — the incremental
	// repair consumes them on the next Apply. buildAllIdx is the
	// single-pass multi-structure driver Prepare routes through when two
	// or more ego-derived structures are missing at once.
	buildTau    func(*Graph) (tau, sup []int32)
	buildTSD    func(*Graph) *core.TSDIndex
	buildGCT    func(*Graph) *core.GCTIndex
	buildHybrid func(*core.GCTIndex) *core.Hybrid
	buildMRank  func(*Graph, core.Measure) [][]core.VertexScore
	buildAllIdx func(*Graph, core.BuildTargets) *core.BuildProducts
	builds      int
}

// trussSec addresses a truss-tagged section of the index store (the only
// kind that existed before format v2).
func trussSec(s store.Section) store.SectionRef {
	return store.SectionRef{Section: s, Measure: core.MeasureTruss}
}

// newIndexCache wires a cache to its builders and, when cfg names an
// index directory, validates any index file found there. A missing file
// is a normal cold start; a file that fails validation (stale
// fingerprint, wrong version, corruption) is recorded in loadErr — the
// typed error StoreStatus exposes — and the cache falls back to building.
func newIndexCache(g *Graph, cfg dbConfig) *indexCache {
	workers := cfg.buildWorkers
	c := &indexCache{
		g:   g,
		tsd: cfg.tsdIdx,
		gct: cfg.gctIdx,
		dir: cfg.indexDir,
		// Cold decompositions run the parallel h-index peeling; the tau
		// array is byte-identical to the serial Decompose, and the supports
		// come back pristine so the next Apply can repair incrementally.
		buildTau: func(g *Graph) ([]int32, []int32) {
			return truss.DecomposeFull(g, workers)
		},
		buildTSD:    core.BuildTSDIndex,
		buildGCT:    core.BuildGCTIndex,
		buildHybrid: core.BuildHybrid,
		buildMRank:  core.BuildMeasureRankings,
		buildAllIdx: func(g *Graph, t core.BuildTargets) *core.BuildProducts {
			return core.BuildAll(g, t, workers)
		},
	}
	if cfg.storeMode == StoreDecode {
		c.mode = store.ModeDecode
	}
	if c.dir != "" {
		f, err := store.OpenFile(store.PathIn(c.dir), g, store.WithMode(c.mode))
		switch {
		case err == nil:
			c.file = f
			c.adoptFile(f)
		case errors.Is(err, fs.ErrNotExist):
			// Cold start: nothing persisted yet.
		default:
			c.loadErr = err
		}
	}
	return c
}

// adoptFile takes ownership of one reference to a mapped store file: the
// cache's structures may serve zero-copy views into it, so the mapping
// must outlive the cache. The reference is released by a GC cleanup when
// the cache becomes unreachable — never earlier, never while a snapshot
// (or a repaired descendant holding shared slices) can still read the
// views. Decode-mode files hold no mapping and need no lifecycle.
func (c *indexCache) adoptFile(f *store.File) {
	if f.Mode() != store.ModeMmap {
		return
	}
	c.retained = append(c.retained, f)
	runtime.AddCleanup(c, func(f *store.File) { f.Close() }, f)
}

// setEpoch aligns the cache with the snapshot it serves, so a persist
// records which graph version the file describes.
func (c *indexCache) setEpoch(e Epoch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = e
}

// storedEpoch reads the epoch a warm index file recorded (0 when cold,
// absent, or unreadable) — Open resumes the counter from it so epochs
// keep increasing across redeploys.
func (c *indexCache) storedEpoch() Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	ep := loadSection(c, trussSec(store.SecEpoch), (*store.File).Epoch)
	return Epoch(ep)
}

// advance derives the next snapshot's cache from this one after an update
// batch: every index in memory is repaired incrementally against the
// shared edited graph (copy-on-write, so this cache keeps answering for
// in-flight readers). The TSD and GCT indexes rebuild only the affected
// ego-networks; the global truss decomposition is repaired by the bounded
// region descent of truss.Repair (falling back to invalidation — and a
// lazy parallel rebuild — when the affected region exceeds its budget or
// the supports were not retained); the hybrid and per-measure rankings
// are patched in place by re-scoring only the affected vertices. The
// repairs run outside the lock (they only read the old, now-immutable
// structures) so readers of this snapshot never block on an Apply. The
// index store connection moves to the new cache: its next persist
// re-derives the fingerprint from the edited graph. This cache stops
// persisting — a late lazy build on a superseded snapshot must not
// clobber newer state.
func (c *indexCache) advance(newG *Graph, ins, del []Edge) (*indexCache, *core.UpdateStats) {
	c.mu.Lock()
	oldG := c.g
	tsd, gct := c.tsd, c.gct
	tau, sup := c.tau, c.sup
	hybrid := c.hybrid
	var mrank map[core.Measure][][]core.VertexScore
	if len(c.mrank) > 0 {
		mrank = make(map[core.Measure][][]core.VertexScore, len(c.mrank))
		for m, perK := range c.mrank {
			mrank[m] = perK
		}
	}
	var pfrank map[core.Measure][]core.VertexScore
	if len(c.pfrank) > 0 {
		pfrank = make(map[core.Measure][]core.VertexScore, len(c.pfrank))
		for m, ranked := range c.pfrank {
			pfrank[m] = ranked
		}
	}
	next := &indexCache{
		g:           newG,
		dir:         c.dir,
		mode:        c.mode,
		buildTau:    c.buildTau,
		buildTSD:    c.buildTSD,
		buildGCT:    c.buildGCT,
		buildHybrid: c.buildHybrid,
		buildMRank:  c.buildMRank,
		buildAllIdx: c.buildAllIdx,
	}
	// The repaired indexes below share every untouched per-vertex slice
	// with this cache's structures — which may be zero-copy views into a
	// mapped store file — so the next generation must pin the same
	// mappings. (The repairs themselves never write into shared storage:
	// they are copy-on-write by contract, and the mappings are PROT_READ,
	// so a regression faults loudly instead of corrupting live readers.)
	for _, f := range c.retained {
		next.adoptFile(f.Retain())
	}
	c.dir = ""
	c.mu.Unlock()

	var stats *core.UpdateStats
	if tsd != nil {
		next.tsd, stats = tsd.UpdateOnto(newG, ins, del)
	}
	if gct != nil {
		next.gct, stats = gct.UpdateOnto(newG, ins, del)
	}

	ensureStats := func() *core.UpdateStats {
		if stats == nil {
			stats = &core.UpdateStats{Inserted: len(ins), Removed: len(del)}
		}
		return stats
	}

	// Global truss decomposition: bounded incremental repair. Repair
	// declines (and the decomposition is invalidated, to be rebuilt by the
	// parallel peeling on next use) when the region the batch can influence
	// exceeds the size cutoff — the cost router then prices the rebuild
	// back into the bound engine's estimate.
	if tau != nil && sup != nil {
		if rr, ok := truss.Repair(oldG, newG, tau, sup, ins, del, 0); ok {
			next.tau, next.sup = rr.Tau, rr.Sup
			st := ensureStats()
			st.TrussRepaired = true
			st.TrussRegion = rr.Region
		}
	}

	// Ranking tables: patch in place by re-scoring only the vertices whose
	// ego-networks the batch touched. The hybrid patch re-scores against
	// the repaired GCT index, so it needs one in memory; a hybrid that was
	// reconstructed from persisted rankings without its GCT falls back to
	// invalidation.
	if (hybrid != nil && next.gct != nil) || len(mrank) > 0 || len(pfrank) > 0 {
		affected := core.AffectedVertices(oldG, newG, ins, del)
		st := ensureStats()
		if hybrid != nil && next.gct != nil {
			next.hybrid = core.PatchHybrid(hybrid, next.gct, affected)
			st.RankingsPatched++
		}
		for m, perK := range mrank {
			// next is not shared yet: no lock needed.
			next.setMeasureRankLocked(m, core.PatchMeasureRankings(newG, m, perK, affected))
			st.RankingsPatched++
		}
		for m, ranked := range pfrank {
			// The parameter-free ranking splices the same affected set:
			// re-score only those vertices' all-k vectors, merge canonically.
			next.setPFreeRankLocked(m, pfree.PatchRanking(newG, m, ranked, affected))
			st.RankingsPatched++
		}
	}
	return next, stats
}

// loadSection reads one section instance (section kind + measure tag)
// from the warm-start file, or returns the zero value when the file is
// absent or lacks the section. A damaged section records the typed error
// and is marked bad so later misses rebuild (and re-persist) instead of
// retrying a broken read; the file's other sections stay trusted — damage
// is detected and handled per section. Callers must hold c.mu.
func loadSection[T any](c *indexCache, ref store.SectionRef, read func(*store.File) (T, error)) T {
	var zero T
	if c.file == nil || !c.file.HasMeasure(ref.Section, ref.Measure) || c.bad[ref] {
		return zero
	}
	start := time.Now()
	v, err := read(c.file)
	if err != nil {
		c.loadErr = err
		if c.bad == nil {
			c.bad = make(map[store.SectionRef]bool)
		}
		c.bad[ref] = true
		return zero
	}
	c.loadTime += time.Since(start)
	return v
}

// trussTau returns the global truss decomposition, loading or computing
// (and then persisting) it on first use. The bound engine's searches read
// it through this cache, so sparsification costs one edge filter instead
// of a fresh decomposition per query.
func (c *indexCache) trussTau() []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trussTauLocked()
}

func (c *indexCache) trussTauLocked() []int32 {
	if c.tau != nil {
		return c.tau
	}
	if tau := loadSection(c, trussSec(store.SecTruss), (*store.File).Tau); tau != nil {
		// Format v3 persists the supports next to the decomposition, so a
		// warm start repairs incrementally on the very first Apply. Older
		// files lack the section (sup stays nil) and the first Apply
		// rebuilds; the rebuild re-derives both and repair resumes.
		c.tau = tau
		c.sup = loadSection(c, trussSec(store.SecSupports), (*store.File).Sup)
		return c.tau
	}
	start := time.Now()
	c.tau, c.sup = c.buildTau(c.g)
	c.buildTime += time.Since(start)
	c.builds++
	c.persistAfterBuildLocked()
	return c.tau
}

func (c *indexCache) tsdIndex() *core.TSDIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tsdIndexLocked()
}

func (c *indexCache) tsdIndexLocked() *core.TSDIndex {
	if c.tsd != nil {
		return c.tsd
	}
	if idx := loadSection(c, trussSec(store.SecTSD), (*store.File).TSD); idx != nil {
		c.tsd = idx
		return c.tsd
	}
	start := time.Now()
	c.tsd = c.buildTSD(c.g)
	c.buildTime += time.Since(start)
	c.builds++
	c.persistAfterBuildLocked()
	return c.tsd
}

func (c *indexCache) gctIndex() *core.GCTIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gctIndexLocked()
}

func (c *indexCache) gctIndexLocked() *core.GCTIndex {
	if c.gct != nil {
		return c.gct
	}
	if idx := loadSection(c, trussSec(store.SecGCT), (*store.File).GCT); idx != nil {
		c.gct = idx
		return c.gct
	}
	start := time.Now()
	c.gct = c.buildGCT(c.g)
	c.buildTime += time.Since(start)
	c.builds++
	c.persistAfterBuildLocked()
	return c.gct
}

func (c *indexCache) hybridEngine() *core.Hybrid {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hybridLocked()
}

func (c *indexCache) hybridLocked() *core.Hybrid {
	if c.hybrid != nil {
		return c.hybrid
	}
	// Persisted rankings rebuild the hybrid without touching the GCT
	// index: NewHybridFromRankings only allocates a scorer.
	if perK := loadSection(c, trussSec(store.SecRankings), (*store.File).Rankings); perK != nil {
		c.hybrid = core.NewHybridFromRankings(c.g, perK)
		return c.hybrid
	}
	idx := c.gctIndexLocked()
	start := time.Now()
	c.hybrid = c.buildHybrid(idx)
	c.buildTime += time.Since(start)
	c.builds++
	c.persistAfterBuildLocked()
	return c.hybrid
}

// measureRankings returns measure m's per-k rankings: from memory, else
// loaded from a v2 index store section, else — only when build is set —
// built from the graph (one ego decomposition per vertex) and persisted.
// Without build, a cold cache returns nil and the caller falls back to
// scanning; Prepare("comp"/"kcore") is the build path.
func (c *indexCache) measureRankings(m Measure, build bool) [][]core.VertexScore {
	m = m.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.measureRankingsLocked(m, build)
}

func (c *indexCache) measureRankingsLocked(m Measure, build bool) [][]core.VertexScore {
	if perK := c.mrank[m]; perK != nil {
		return perK
	}
	ref := store.SectionRef{Section: store.SecRankings, Measure: m}
	if perK := loadSection(c, ref, func(f *store.File) ([][]core.VertexScore, error) {
		return f.MeasureRankings(m)
	}); perK != nil {
		c.setMeasureRankLocked(m, perK)
		return perK
	}
	if !build {
		return nil
	}
	start := time.Now()
	perK := c.buildMRank(c.g, m)
	c.buildTime += time.Since(start)
	c.builds++
	c.setMeasureRankLocked(m, perK)
	c.persistAfterBuildLocked()
	return perK
}

func (c *indexCache) setMeasureRankLocked(m Measure, perK [][]core.VertexScore) {
	if c.mrank == nil {
		c.mrank = make(map[core.Measure][][]core.VertexScore, 2)
	}
	c.mrank[m] = perK
}

func (c *indexCache) hasMeasureRank(m Measure) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mrank[m.Normalize()] != nil
}

// pfreeRanking returns the parameter-free engine's canonical ranking for
// measure m: from memory, else loaded from the store's measure-tagged
// pfree slab, else derived in O(table) from per-k rankings that are
// already at hand (the hybrid's truss tables, or a measure-rankings
// section in memory or on disk). Only when build is set does a fully
// cold cache pay for the per-k source (one ego decomposition per
// vertex); without it the caller falls back to the online scan.
// Derivations and builds persist, so the next boot warm-starts the slab.
func (c *indexCache) pfreeRanking(m Measure, build bool) []core.VertexScore {
	m = m.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pfreeRankingLocked(m, build)
}

func (c *indexCache) pfreeRankingLocked(m Measure, build bool) []core.VertexScore {
	if ranked := c.pfrank[m]; ranked != nil {
		return ranked
	}
	ref := store.SectionRef{Section: store.SecPFree, Measure: m}
	if ranked := loadSection(c, ref, func(f *store.File) ([]core.VertexScore, error) {
		return f.PFreeRanking(m)
	}); ranked != nil {
		c.setPFreeRankLocked(m, ranked)
		return ranked
	}
	if perK := c.perKForPFreeLocked(m, false); perK != nil {
		// O(table) slice surgery, cheap enough for the query path; persist
		// so the next boot loads the slab instead of re-deriving.
		ranked := pfree.RankingFromPerK(perK)
		c.setPFreeRankLocked(m, ranked)
		c.persistAfterBuildLocked()
		return ranked
	}
	if !build {
		return nil
	}
	start := time.Now()
	ranked := pfree.RankingFromPerK(c.perKForPFreeLocked(m, true))
	c.buildTime += time.Since(start)
	c.builds++
	c.setPFreeRankLocked(m, ranked)
	c.persistAfterBuildLocked()
	return ranked
}

// perKForPFreeLocked resolves the per-k ranking table the pfree
// derivation consumes: truss tables live in the hybrid engine (memory,
// then the persisted rankings section), non-truss ones in the measure
// rankings. Without build, only sources that are already in memory or
// loadable from the store qualify — never a from-scratch ego pass.
func (c *indexCache) perKForPFreeLocked(m Measure, build bool) [][]core.VertexScore {
	if m == MeasureTruss {
		if c.hybrid != nil {
			return c.hybrid.Rankings()
		}
		if perK := loadSection(c, trussSec(store.SecRankings), (*store.File).Rankings); perK != nil {
			c.hybrid = core.NewHybridFromRankings(c.g, perK)
			return perK
		}
		if !build {
			return nil
		}
		return c.hybridLocked().Rankings()
	}
	return c.measureRankingsLocked(m, build)
}

func (c *indexCache) setPFreeRankLocked(m Measure, ranked []core.VertexScore) {
	if c.pfrank == nil {
		c.pfrank = make(map[core.Measure][]core.VertexScore, 3)
	}
	c.pfrank[m] = ranked
}

func (c *indexCache) hasPFreeRank(m Measure) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pfrank[m.Normalize()] != nil
}

// onDiskPFreeRank reports whether measure m's pfree ranking can be
// loaded from the warm-start file.
func (c *indexCache) onDiskPFreeRank(m Measure) bool {
	m = m.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := store.SectionRef{Section: store.SecPFree, Measure: m}
	return c.file != nil && c.file.HasMeasure(store.SecPFree, m) && !c.bad[ref]
}

// hasPerKForPFree reports whether the pfree ranking for m is derivable
// in O(table) right now (per-k source in memory or on disk), which the
// cost model prices far below a cold ego pass.
func (c *indexCache) hasPerKForPFree(m Measure) bool {
	m = m.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	if m == MeasureTruss {
		if c.hybrid != nil {
			return true
		}
		ref := trussSec(store.SecRankings)
		return c.file != nil && c.file.HasMeasure(store.SecRankings, m) && !c.bad[ref]
	}
	if c.mrank[m] != nil {
		return true
	}
	ref := store.SectionRef{Section: store.SecRankings, Measure: m}
	return c.file != nil && c.file.HasMeasure(store.SecRankings, m) && !c.bad[ref]
}

// onDiskMeasureRank reports whether measure m's rankings can be loaded
// from the warm-start file (a v2 store with the measure-tagged section).
func (c *indexCache) onDiskMeasureRank(m Measure) bool {
	m = m.Normalize()
	c.mu.Lock()
	defer c.mu.Unlock()
	ref := store.SectionRef{Section: store.SecRankings, Measure: m}
	return c.file != nil && c.file.HasMeasure(store.SecRankings, m) && !c.bad[ref]
}

// prepareShared is Prepare's fast path: it collects every ego-derived
// structure the requested names will need that is in neither memory nor
// the warm-start file, and — when two or more would each pay their own
// per-vertex extraction pass — builds them all in one BuildAll sweep
// (one ego extraction and one truss decomposition per vertex, shared by
// every consumer). Structures found in memory or on disk are left for
// the per-name loaders, so the warm-open contract (builds == 0) and the
// per-section damage accounting are untouched. With fewer than two
// missing structures it does nothing: the dedicated builders (and their
// test tripwires) keep handling the singleton case.
func (c *indexCache) prepareShared(names []string) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	avail := func(ref store.SectionRef) bool {
		return c.file != nil && c.file.HasMeasure(ref.Section, ref.Measure) && !c.bad[ref]
	}
	// pfree rankings derive in O(table) from per-k tables, so "pfree"
	// needs a from-scratch build only for measures whose pfree slab AND
	// per-k source are both missing everywhere.
	pfreeNeeds := func(m core.Measure) bool {
		return want["pfree"] && c.pfrank[m] == nil &&
			!avail(store.SectionRef{Section: store.SecPFree, Measure: m})
	}
	var t core.BuildTargets
	if want["tsd"] && c.tsd == nil && !avail(trussSec(store.SecTSD)) {
		t.TSD = true
	}
	if want["gct"] && c.gct == nil && !avail(trussSec(store.SecGCT)) {
		t.GCT = true
	}
	if (want["hybrid"] || pfreeNeeds(MeasureTruss)) &&
		c.hybrid == nil && c.gct == nil && !avail(trussSec(store.SecRankings)) {
		// With a GCT index in memory the hybrid build is a cheap index
		// read, not an extraction pass — leave it to buildHybrid.
		t.TrussRanks = true
	}
	for _, mc := range []struct {
		name string
		m    core.Measure
	}{{"comp", MeasureComponent}, {"kcore", MeasureCore}} {
		if (want[mc.name] || pfreeNeeds(mc.m)) && c.mrank[mc.m] == nil &&
			!avail(store.SectionRef{Section: store.SecRankings, Measure: mc.m}) {
			t.Measures = append(t.Measures, mc.m)
		}
	}
	missing := len(t.Measures)
	for _, b := range []bool{t.TSD, t.GCT, t.TrussRanks} {
		if b {
			missing++
		}
	}
	if missing < 2 {
		return
	}
	start := time.Now()
	p := c.buildAllIdx(c.g, t)
	c.buildTime += time.Since(start)
	c.builds += missing
	if t.TSD {
		c.tsd = p.TSD
	}
	if t.GCT {
		c.gct = p.GCT
	}
	if t.TrussRanks {
		c.hybrid = core.NewHybridFromRankings(c.g, p.TrussRanks)
	}
	for _, m := range t.Measures {
		c.setMeasureRankLocked(m, p.MeasureRanks[m])
	}
	c.persistAfterBuildLocked()
}

// persistAfterBuildLocked is the write path of every from-scratch build:
// it persists immediately, unless a surrounding Prepare deferred the
// writes to batch them into one file rewrite at its end.
func (c *indexCache) persistAfterBuildLocked() {
	if c.deferPersist {
		c.dirty = true
		return
	}
	c.persistLocked()
}

// beginDeferredPersist suspends the per-build persists (Prepare builds up
// to four accelerators; rewriting the file after each would serialize the
// whole store four times); endDeferredPersist flushes once if anything
// was built in between.
func (c *indexCache) beginDeferredPersist() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deferPersist = true
	c.dirty = false
}

func (c *indexCache) endDeferredPersist() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deferPersist = false
	if c.dirty {
		c.dirty = false
		c.persistLocked()
	}
}

// persistLocked rewrites the index file with every section currently in
// memory, first hydrating sections that exist only on disk so a partial
// rebuild never sheds them. Persist failures are recorded for StoreStatus
// but do not fail the query whose build triggered the write. Callers must
// hold c.mu.
func (c *indexCache) persistLocked() {
	if c.dir == "" {
		return
	}
	if c.file != nil {
		if c.tau == nil {
			c.tau = loadSection(c, trussSec(store.SecTruss), (*store.File).Tau)
			if c.sup == nil {
				c.sup = loadSection(c, trussSec(store.SecSupports), (*store.File).Sup)
			}
		}
		if c.tsd == nil {
			c.tsd = loadSection(c, trussSec(store.SecTSD), (*store.File).TSD)
		}
		if c.gct == nil {
			c.gct = loadSection(c, trussSec(store.SecGCT), (*store.File).GCT)
		}
		if c.hybrid == nil {
			if perK := loadSection(c, trussSec(store.SecRankings), (*store.File).Rankings); perK != nil {
				c.hybrid = core.NewHybridFromRankings(c.g, perK)
			}
		}
		for _, m := range core.AllMeasures() {
			if m == MeasureTruss || c.mrank[m] != nil {
				continue
			}
			ref := store.SectionRef{Section: store.SecRankings, Measure: m}
			if perK := loadSection(c, ref, func(f *store.File) ([][]core.VertexScore, error) {
				return f.MeasureRankings(m)
			}); perK != nil {
				c.setMeasureRankLocked(m, perK)
			}
		}
		for _, m := range core.AllMeasures() {
			if c.pfrank[m] != nil {
				continue
			}
			ref := store.SectionRef{Section: store.SecPFree, Measure: m}
			if ranked := loadSection(c, ref, func(f *store.File) ([]core.VertexScore, error) {
				return f.PFreeRanking(m)
			}); ranked != nil {
				c.setPFreeRankLocked(m, ranked)
			}
		}
	}
	ix := store.Indexes{Tau: c.tau, Sup: c.sup, TSD: c.tsd, GCT: c.gct, Epoch: uint64(c.epoch)}
	if c.hybrid != nil {
		ix.Rankings = c.hybrid.Rankings()
	}
	if len(c.mrank) > 0 {
		ix.MeasureRankings = c.mrank
	}
	if len(c.pfrank) > 0 {
		ix.PFree = c.pfrank
	}
	path := store.PathIn(c.dir)
	if err := store.Save(path, c.g, ix); err != nil {
		c.saveErr = err
		return
	}
	c.saveErr = nil
	if f, err := store.OpenFile(path, c.g, store.WithMode(c.mode)); err == nil {
		c.file = f
		c.adoptFile(f)
		c.bad = nil // the rewrite replaced any damaged section
	}
}

func (c *indexCache) hasTau() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tau != nil
}

func (c *indexCache) hasTSD() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tsd != nil
}

func (c *indexCache) hasGCT() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gct != nil
}

func (c *indexCache) hasHybrid() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hybrid != nil
}

// onDisk reports whether truss section s can be loaded from the
// warm-start file — the "cheap to have" signal the cost estimates use. A
// section that failed to load is not cheap: it will be rebuilt.
func (c *indexCache) onDisk(s store.Section) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file != nil && c.file.Has(s) && !c.bad[trussSec(s)]
}

// storeMmap reports whether the warm-start file serves zero-copy views; a
// "load" is then O(n) slice-header surgery over the mapping instead of an
// O(m) read-and-decode, and the cost estimates price it accordingly.
func (c *indexCache) storeMmap() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.file != nil && c.file.Mode() == store.ModeMmap
}

// --- online (Algorithm 3) ---

type onlineEngine struct {
	eng    *core.Online
	scorer *core.Scorer
	w      workload
}

func newOnlineEngine(g *Graph, w workload) *onlineEngine {
	return &onlineEngine{eng: core.NewOnline(g), scorer: core.NewScorer(g), w: w}
}

func (e *onlineEngine) Name() string { return "online" }

// Measures: the online scan is measure-generic — it plugs in whichever
// scorer the query's measure names.
func (e *onlineEngine) Measures() []Measure { return AllMeasures() }

func (e *onlineEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	return e.eng.Search(ctx, q.params())
}

func (e *onlineEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.scorer.Graph(), v, k); err != nil {
		return 0, err
	}
	return e.scorer.Score(v, k), nil
}

func (e *onlineEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.scorer.Graph(), v, k); err != nil {
		return nil, err
	}
	return e.scorer.Contexts(v, k), nil
}

func (e *onlineEngine) Cost(q Query) Estimate {
	return Estimate{Query: e.w.searchWork(e.w.egoWork, q) + e.w.contextWork(q)}
}

// --- bound (Algorithm 4) ---

type boundEngine struct {
	eng    *core.Bound
	scorer *core.Scorer
	cache  *indexCache
	w      workload
}

func newBoundEngine(g *Graph, w workload, cache *indexCache) *boundEngine {
	// The searcher reads the global truss decomposition through the DB
	// cache, so the per-query sparsification cost is one edge filter once
	// the decomposition is cached (or loaded from the index store).
	return &boundEngine{
		eng:    core.NewBoundWithTau(g, cache.trussTau),
		scorer: core.NewScorer(g),
		cache:  cache,
		w:      w,
	}
}

func (e *boundEngine) Name() string { return "bound" }

// Measures: the bound framework serves every measure — each supplies its
// own upper bound (core.MeasureUpperBound) to the same ranked scan.
func (e *boundEngine) Measures() []Measure { return AllMeasures() }

func (e *boundEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	return e.eng.Search(ctx, q.params())
}

func (e *boundEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.eng.Graph(), v, k); err != nil {
		return 0, err
	}
	return e.scorer.Score(v, k), nil
}

func (e *boundEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.eng.Graph(), v, k); err != nil {
		return nil, err
	}
	return e.scorer.Contexts(v, k), nil
}

func (e *boundEngine) Cost(q Query) Estimate {
	if m := q.Measure.Normalize(); m != MeasureTruss {
		// The non-truss bound pass replaces sparsification with one
		// triangle count over the full graph (the per-vertex ego-edge
		// input of the measure's upper bound), then prunes the same way.
		triangles := e.w.m * e.w.avgDeg / 2
		return Estimate{Query: triangles + e.w.searchWork(e.w.egoWork, q)/8 + e.w.contextWork(q)}
	}
	// Sparsification needs the global truss decomposition: a fresh
	// decomposition when nothing is cached, a sequential O(m) load when
	// the index store has it, and only the edge filter once in memory.
	sparsify := e.w.m * e.w.avgDeg / 2
	if e.cache.hasTau() {
		sparsify = e.w.m
	} else if e.cache.onDisk(store.SecTruss) {
		sparsify = 2 * e.w.m
		if e.cache.storeMmap() {
			// The decomposition is an O(1) view into the mapping; only the
			// per-query edge filter remains.
			sparsify = e.w.m
		}
	}
	return Estimate{Query: sparsify + e.w.searchWork(e.w.egoWork, q)/8 + e.w.contextWork(q)}
}

// --- tsd (Algorithms 5-6) ---

type tsdEngine struct {
	cache *indexCache
	w     workload
}

func (e *tsdEngine) Name() string { return "tsd" }

// Measures: the TSD forest encodes trussness weights — truss only.
func (e *tsdEngine) Measures() []Measure { return []Measure{MeasureTruss} }

func (e *tsdEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// TSD.Search scores through goroutine-private TSDScorers, so
	// concurrent searches over the shared index need no serialization.
	return core.NewTSD(e.cache.tsdIndex()).Search(ctx, q.params())
}

func (e *tsdEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	// A fresh scorer per point query keeps this path concurrency-safe
	// (TSDIndex.Score itself shares scratch across calls).
	return e.cache.tsdIndex().Scorer().Score(v, k), nil
}

func (e *tsdEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.tsdIndex().Contexts(v, k), nil
}

func (e *tsdEngine) Cost(q Query) Estimate {
	est := Estimate{Query: e.w.searchWork(e.w.m, q)}
	if q.IncludeContexts {
		est.Query += float64(q.R) * e.w.avgDeg
	}
	if !e.cache.hasTSD() {
		if e.cache.onDisk(store.SecTSD) {
			// Deserializing is a sequential O(m) read — or O(n) slice-header
			// surgery under mmap — far below the Σd² build, so routing
			// treats a persisted index as nearly ready.
			est.Build = e.w.m
			if e.cache.storeMmap() {
				est.Build = e.w.n
			}
		} else {
			est.Build = e.w.egoWork
		}
	}
	return est
}

// --- gct (Algorithms 7-8) ---

type gctEngine struct {
	cache *indexCache
	w     workload
}

func (e *gctEngine) Name() string { return "gct" }

// Measures: the supernode compression encodes trussness — truss only.
func (e *gctEngine) Measures() []Measure { return []Measure{MeasureTruss} }

func (e *gctEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return core.NewGCT(e.cache.gctIndex()).Search(ctx, q.params())
}

func (e *gctEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	return e.cache.gctIndex().Score(v, k), nil
}

func (e *gctEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.gctIndex().Contexts(v, k), nil
}

func (e *gctEngine) Cost(q Query) Estimate {
	// Exact scores are O(log d(v)) reads, so a query is ~n work.
	est := Estimate{Query: e.w.searchWork(e.w.n, q)}
	if q.IncludeContexts {
		est.Query += float64(q.R) * e.w.avgDeg
	}
	if !e.cache.hasGCT() {
		if e.cache.onDisk(store.SecGCT) {
			// A persisted index loads in one O(m) sequential read, or O(n)
			// view construction under mmap.
			est.Build = e.w.m
			if e.cache.storeMmap() {
				est.Build = e.w.n
			}
		} else {
			// The GCT build does slightly more work than TSD's
			// (compression on top of the same per-ego decompositions).
			est.Build = 1.2 * e.w.egoWork
		}
	}
	return est
}

// --- hybrid (paper Exp-4) ---

type hybridEngine struct {
	cache *indexCache
	w     workload
}

func (e *hybridEngine) Name() string { return "hybrid" }

// Measures: the hybrid rankings are truss-scored — truss only (the
// native measure engines hold the other measures' rankings).
func (e *hybridEngine) Measures() []Measure { return []Measure{MeasureTruss} }

func (e *hybridEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return e.cache.hybridEngine().Search(ctx, q.params())
}

func (e *hybridEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	return e.cache.gctIndex().Score(v, k), nil
}

func (e *hybridEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.gctIndex().Contexts(v, k), nil
}

func (e *hybridEngine) Cost(q Query) Estimate {
	// Reading the precomputed ranking is nearly free; recovering contexts
	// online is one ego decomposition per answer vertex.
	est := Estimate{Query: float64(q.R) + e.w.contextWork(q)}
	if !e.cache.hasHybrid() {
		if e.cache.onDisk(store.SecRankings) {
			// Persisted rankings skip both the ranking pass and the GCT
			// build: reconstruction is an O(n) read.
			est.Build = e.w.n
		} else {
			est.Build = float64(8) * e.w.n
			if !e.cache.hasGCT() {
				if e.cache.onDisk(store.SecGCT) {
					est.Build += e.w.m
				} else {
					est.Build += 1.2 * e.w.egoWork
				}
			}
		}
	}
	return est
}

// --- comp / kcore native measure engines ---

// baselineEngine adapts a baseline.Model (Comp-Div or Core-Div) into the
// native engine of its measure. It is routable for that measure only —
// truss queries never see it — and it is the measure's fast path: once
// the per-k rankings are prepared (Prepare("comp"/"kcore"), a Batch that
// routes to it, or a v2 index store holding the measure's section), a
// top-r query is an O(r) prefix read instead of a full ego-network scan.
type baselineEngine struct {
	name    string
	measure Measure
	model   baseline.Model
	g       *Graph
	w       workload
	cache   *indexCache
}

func (e *baselineEngine) Name() string { return e.name }

// Measures: exactly the one diversity definition the model computes.
func (e *baselineEngine) Measures() []Measure { return []Measure{e.measure} }

func (e *baselineEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if m := q.Measure.Normalize(); q.Measure != "" && m != e.measure {
		return nil, nil, &UnsupportedMeasureError{Engine: e.name, Measure: m}
	}
	// Rankings fast path: serve from the prepared (or store-loaded) per-k
	// ranking, the same strategy the hybrid engine uses for truss. The
	// answer is byte-identical to the scan below — same scores, same
	// canonical order, same contexts — only cheaper.
	if perK := e.cache.measureRankings(e.measure, false); perK != nil {
		p := q.params()
		p.Measure = e.measure
		return core.NewRanked(e.g, e.measure, perK).Search(ctx, p)
	}
	n := e.g.N()
	// Same preconditions as the truss engines (core.Params.normalized),
	// applied identically with and without a candidate subset.
	if q.K < 2 {
		return nil, nil, fmt.Errorf("trussdiv: k = %d, must be >= 2", q.K)
	}
	if q.R < 1 {
		return nil, nil, fmt.Errorf("trussdiv: r = %d, must be >= 1", q.R)
	}
	var scored []baseline.VertexScore
	computed := n
	if q.Candidates == nil {
		if q.R > n {
			q.R = n
		}
		top, err := baseline.Search(ctx, e.model, n, q.K, q.R)
		if err != nil {
			return nil, nil, err
		}
		scored = top
	} else {
		seen := make(map[int32]bool, len(q.Candidates))
		scored = make([]baseline.VertexScore, 0, len(q.Candidates))
		for _, v := range q.Candidates {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			if v < 0 || int(v) >= n {
				return nil, nil, fmt.Errorf("trussdiv: candidate vertex %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			scored = append(scored, baseline.VertexScore{V: v, Score: e.model.Score(v, q.K)})
		}
		sort.Slice(scored, func(i, j int) bool {
			if scored[i].Score != scored[j].Score {
				return scored[i].Score > scored[j].Score
			}
			return scored[i].V < scored[j].V
		})
		computed = len(scored)
		if q.R < len(scored) {
			scored = scored[:q.R]
		}
	}
	res := &Result{TopR: make([]VertexScore, len(scored))}
	for i, e := range scored {
		res.TopR[i] = VertexScore{V: e.V, Score: e.Score}
	}
	if q.IncludeContexts {
		res.Contexts = make(map[int32][][]int32, len(res.TopR))
		for _, vs := range res.TopR {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			res.Contexts[vs.V] = e.model.Contexts(vs.V, q.K)
		}
	}
	var stats *Stats
	if !q.SkipStats {
		stats = &Stats{ScoreComputations: computed, Candidates: computed}
	}
	return res, stats, nil
}

func (e *baselineEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.g, v, k); err != nil {
		return 0, err
	}
	return e.model.Score(v, k), nil
}

func (e *baselineEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.g, v, k); err != nil {
		return nil, err
	}
	return e.model.Contexts(v, k), nil
}

func (e *baselineEngine) Cost(q Query) Estimate {
	// With the per-k rankings ready the query is an O(r) prefix read plus
	// per-answer context recovery; on disk they are one cheap sequential
	// load. Cold, the rankings build costs slightly more than one online
	// scan (it scores every k, not one), so a single cold query routes to
	// online/bound while batches amortize the build here — Batch prepares
	// the rankings before running when it picks this engine.
	est := Estimate{Query: float64(q.R) + e.w.contextWork(q)}
	switch {
	case e.cache.hasMeasureRank(e.measure):
		// ready: nothing to build
	case e.cache.onDiskMeasureRank(e.measure):
		est.Build = e.w.n
	default:
		factor := 1.25
		if e.measure == MeasureCore {
			// The core rankings need one component count per k.
			factor = 1.5
		}
		est.Build = factor * e.w.egoWork
	}
	return est
}

// singleVertexErr folds the context check into single-vertex validation.
func singleVertexErr(ctx context.Context, g *Graph, v, k int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return checkVertex(g, v, k)
}

// --- pfree (parameter-free diversity, arXiv:1908.11612) ---

// pfreeEngine adapts internal/pfree into the registry: the only engine
// that serves queries without a K, and the only one k-less queries route
// to. It serves every measure (it declares all three via MeasureLister),
// and it is prepared per measure: once the pfree ranking is derived
// (Prepare("pfree"), a Batch that routes to it, a query that finds the
// per-k tables already built, or a store holding the pfree slab), a
// k-less top-r query is an O(r) prefix read; cold, it falls back to the
// online all-k scan.
type pfreeEngine struct {
	g     *Graph
	w     workload
	cache *indexCache
}

func (e *pfreeEngine) Name() string { return "pfree" }

// Measures: the parameter-free objective aggregates any measure's per-k
// score vector, so all three qualify.
func (e *pfreeEngine) Measures() []Measure { return AllMeasures() }

// ParameterFree declares the k-less contract to the router and
// validators.
func (e *pfreeEngine) ParameterFree() bool { return true }

func (e *pfreeEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if q.K != 0 {
		return nil, nil, &BadQueryError{Engine: "pfree", K: q.K,
			Reason: "engine is parameter-free: leave k unset (0)"}
	}
	m := q.Measure.Normalize()
	p := q.params()
	p.Measure = m
	// The prepared/online split lives in the Searcher; both paths answer
	// byte-identically, the ranking only removes the scan.
	ranked := e.cache.pfreeRanking(m, false)
	return pfree.NewSearcher(e.g, m, ranked).Search(ctx, p)
}

// pointErr validates a single-vertex pfree query: the vertex must be in
// range and k must be left at 0 — the objective chooses the level.
func (e *pfreeEngine) pointErr(ctx context.Context, v, k int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if v < 0 || int(v) >= e.g.N() {
		return fmt.Errorf("trussdiv: vertex %d out of range [0,%d)", v, e.g.N())
	}
	if k != 0 {
		return &BadQueryError{Engine: "pfree", K: k,
			Reason: "engine is parameter-free: leave k unset (0)"}
	}
	return nil
}

// Score returns the parameter-free diversity of one vertex under the
// truss measure (the default measure, as on every point path); k must
// be 0.
func (e *pfreeEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := e.pointErr(ctx, v, k); err != nil {
		return 0, err
	}
	return pfree.ScoreAt(e.g, v, MeasureTruss), nil
}

// Contexts returns the vertex's contexts at its discriminating level
// k* = max(score, 2) under the truss measure; k must be 0.
func (e *pfreeEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := e.pointErr(ctx, v, k); err != nil {
		return nil, err
	}
	return pfree.ContextsAt(e.g, v, MeasureTruss), nil
}

func (e *pfreeEngine) Cost(q Query) Estimate {
	// Ready: an O(r) prefix read plus context recovery — contexts cost two
	// ego decompositions per answer vertex (level probe + recovery). On
	// disk: one cheap sequential slab load. Derivable from per-k tables
	// that already exist: O(table) surgery, priced like a store load. Cold:
	// the per-k source must be built first (all-k scoring, slightly above
	// one online scan), amortized by Batch exactly like comp/kcore.
	m := q.Measure.Normalize()
	est := Estimate{Query: float64(q.R) + 2*e.w.contextWork(q)}
	switch {
	case e.cache.hasPFreeRank(m):
		// ready: nothing to build
	case e.cache.onDiskPFreeRank(m):
		est.Build = e.w.n
	case e.cache.hasPerKForPFree(m):
		est.Build = 2 * e.w.n
	default:
		factor := 1.25
		if m == MeasureCore {
			factor = 1.5
		}
		est.Build = factor * e.w.egoWork
	}
	return est
}
