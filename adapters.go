package trussdiv

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"trussdiv/internal/baseline"
	"trussdiv/internal/core"
)

// indexCache lazily builds and shares the TSD/GCT/Hybrid structures among
// the engine adapters of one DB, so e.g. the gct and hybrid engines reuse
// one GCT index. All accessors are safe for concurrent use; builds are
// not interruptible, so cancellation is observed before a build starts.
type indexCache struct {
	g *Graph

	mu        sync.Mutex
	tsd       *core.TSDIndex
	gct       *core.GCTIndex
	hybrid    *core.Hybrid
	buildTime time.Duration
}

func (c *indexCache) tsdIndex() *core.TSDIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tsd == nil {
		start := time.Now()
		c.tsd = core.BuildTSDIndex(c.g)
		c.buildTime += time.Since(start)
	}
	return c.tsd
}

func (c *indexCache) gctIndex() *core.GCTIndex {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gctIndexLocked()
}

func (c *indexCache) gctIndexLocked() *core.GCTIndex {
	if c.gct == nil {
		start := time.Now()
		c.gct = core.BuildGCTIndex(c.g)
		c.buildTime += time.Since(start)
	}
	return c.gct
}

func (c *indexCache) hybridEngine() *core.Hybrid {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.hybrid == nil {
		idx := c.gctIndexLocked()
		start := time.Now()
		c.hybrid = core.BuildHybrid(idx)
		c.buildTime += time.Since(start)
	}
	return c.hybrid
}

func (c *indexCache) hasTSD() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tsd != nil
}

func (c *indexCache) hasGCT() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gct != nil
}

func (c *indexCache) hasHybrid() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hybrid != nil
}

// --- online (Algorithm 3) ---

type onlineEngine struct {
	eng    *core.Online
	scorer *core.Scorer
	w      workload
}

func newOnlineEngine(g *Graph, w workload) *onlineEngine {
	return &onlineEngine{eng: core.NewOnline(g), scorer: core.NewScorer(g), w: w}
}

func (e *onlineEngine) Name() string { return "online" }

func (e *onlineEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	return e.eng.Search(ctx, q.params())
}

func (e *onlineEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.scorer.Graph(), v, k); err != nil {
		return 0, err
	}
	return e.scorer.Score(v, k), nil
}

func (e *onlineEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.scorer.Graph(), v, k); err != nil {
		return nil, err
	}
	return e.scorer.Contexts(v, k), nil
}

func (e *onlineEngine) Cost(q Query) Estimate {
	return Estimate{Query: e.w.searchWork(e.w.egoWork, q) + e.w.contextWork(q)}
}

// --- bound (Algorithm 4) ---

type boundEngine struct {
	eng    *core.Bound
	scorer *core.Scorer
	w      workload
}

func newBoundEngine(g *Graph, w workload) *boundEngine {
	return &boundEngine{eng: core.NewBound(g), scorer: core.NewScorer(g), w: w}
}

func (e *boundEngine) Name() string { return "bound" }

func (e *boundEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	return e.eng.Search(ctx, q.params())
}

func (e *boundEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.eng.Graph(), v, k); err != nil {
		return 0, err
	}
	return e.scorer.Score(v, k), nil
}

func (e *boundEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.eng.Graph(), v, k); err != nil {
		return nil, err
	}
	return e.scorer.Contexts(v, k), nil
}

func (e *boundEngine) Cost(q Query) Estimate {
	// Every query pays a global truss decomposition (the sparsification),
	// then scores the fraction of candidates that survive pruning.
	sparsify := e.w.m * e.w.avgDeg / 2
	return Estimate{Query: sparsify + e.w.searchWork(e.w.egoWork, q)/8 + e.w.contextWork(q)}
}

// --- tsd (Algorithms 5-6) ---

type tsdEngine struct {
	cache *indexCache
	w     workload
}

func (e *tsdEngine) Name() string { return "tsd" }

func (e *tsdEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// TSD.Search scores through goroutine-private TSDScorers, so
	// concurrent searches over the shared index need no serialization.
	return core.NewTSD(e.cache.tsdIndex()).Search(ctx, q.params())
}

func (e *tsdEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	// A fresh scorer per point query keeps this path concurrency-safe
	// (TSDIndex.Score itself shares scratch across calls).
	return e.cache.tsdIndex().Scorer().Score(v, k), nil
}

func (e *tsdEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.tsdIndex().Contexts(v, k), nil
}

func (e *tsdEngine) Cost(q Query) Estimate {
	est := Estimate{Query: e.w.searchWork(e.w.m, q)}
	if q.IncludeContexts {
		est.Query += float64(q.R) * e.w.avgDeg
	}
	if !e.cache.hasTSD() {
		est.Build = e.w.egoWork
	}
	return est
}

// --- gct (Algorithms 7-8) ---

type gctEngine struct {
	cache *indexCache
	w     workload
}

func (e *gctEngine) Name() string { return "gct" }

func (e *gctEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return core.NewGCT(e.cache.gctIndex()).Search(ctx, q.params())
}

func (e *gctEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	return e.cache.gctIndex().Score(v, k), nil
}

func (e *gctEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.gctIndex().Contexts(v, k), nil
}

func (e *gctEngine) Cost(q Query) Estimate {
	// Exact scores are O(log d(v)) reads, so a query is ~n work.
	est := Estimate{Query: e.w.searchWork(e.w.n, q)}
	if q.IncludeContexts {
		est.Query += float64(q.R) * e.w.avgDeg
	}
	if !e.cache.hasGCT() {
		// The GCT build does slightly more work than TSD's (compression
		// on top of the same per-ego decompositions).
		est.Build = 1.2 * e.w.egoWork
	}
	return est
}

// --- hybrid (paper Exp-4) ---

type hybridEngine struct {
	cache *indexCache
	w     workload
}

func (e *hybridEngine) Name() string { return "hybrid" }

func (e *hybridEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return e.cache.hybridEngine().Search(ctx, q.params())
}

func (e *hybridEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return 0, err
	}
	return e.cache.gctIndex().Score(v, k), nil
}

func (e *hybridEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.cache.g, v, k); err != nil {
		return nil, err
	}
	return e.cache.gctIndex().Contexts(v, k), nil
}

func (e *hybridEngine) Cost(q Query) Estimate {
	// Reading the precomputed ranking is nearly free; recovering contexts
	// online is one ego decomposition per answer vertex.
	est := Estimate{Query: float64(q.R) + e.w.contextWork(q)}
	if !e.cache.hasHybrid() {
		est.Build = float64(8) * e.w.n
		if !e.cache.hasGCT() {
			est.Build += 1.2 * e.w.egoWork
		}
	}
	return est
}

// --- comp / kcore baselines ---

// baselineEngine adapts a baseline.Model (Comp-Div or Core-Div). These
// compute a different diversity definition than the truss engines, so
// they are registered as non-routable: reachable only by explicit name.
type baselineEngine struct {
	name  string
	model baseline.Model
	g     *Graph
	w     workload
}

func (e *baselineEngine) Name() string { return e.name }

func (e *baselineEngine) TopR(ctx context.Context, q Query) (*Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	n := e.g.N()
	// Same preconditions as the truss engines (core.Params.normalized),
	// applied identically with and without a candidate subset.
	if q.K < 2 {
		return nil, nil, fmt.Errorf("trussdiv: k = %d, must be >= 2", q.K)
	}
	if q.R < 1 {
		return nil, nil, fmt.Errorf("trussdiv: r = %d, must be >= 1", q.R)
	}
	var scored []baseline.VertexScore
	computed := n
	if q.Candidates == nil {
		if q.R > n {
			q.R = n
		}
		top, err := baseline.Search(ctx, e.model, n, q.K, q.R)
		if err != nil {
			return nil, nil, err
		}
		scored = top
	} else {
		seen := make(map[int32]bool, len(q.Candidates))
		scored = make([]baseline.VertexScore, 0, len(q.Candidates))
		for _, v := range q.Candidates {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			if v < 0 || int(v) >= n {
				return nil, nil, fmt.Errorf("trussdiv: candidate vertex %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			scored = append(scored, baseline.VertexScore{V: v, Score: e.model.Score(v, q.K)})
		}
		sort.Slice(scored, func(i, j int) bool {
			if scored[i].Score != scored[j].Score {
				return scored[i].Score > scored[j].Score
			}
			return scored[i].V < scored[j].V
		})
		computed = len(scored)
		if q.R < len(scored) {
			scored = scored[:q.R]
		}
	}
	res := &Result{TopR: make([]VertexScore, len(scored))}
	for i, e := range scored {
		res.TopR[i] = VertexScore{V: e.V, Score: e.Score}
	}
	if q.IncludeContexts {
		res.Contexts = make(map[int32][][]int32, len(res.TopR))
		for _, vs := range res.TopR {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			res.Contexts[vs.V] = e.model.Contexts(vs.V, q.K)
		}
	}
	var stats *Stats
	if !q.SkipStats {
		stats = &Stats{ScoreComputations: computed, Candidates: computed}
	}
	return res, stats, nil
}

func (e *baselineEngine) Score(ctx context.Context, v, k int32) (int, error) {
	if err := singleVertexErr(ctx, e.g, v, k); err != nil {
		return 0, err
	}
	return e.model.Score(v, k), nil
}

func (e *baselineEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	if err := singleVertexErr(ctx, e.g, v, k); err != nil {
		return nil, err
	}
	return e.model.Contexts(v, k), nil
}

func (e *baselineEngine) Cost(q Query) Estimate {
	return Estimate{Query: e.w.searchWork(e.w.egoWork, q) + e.w.contextWork(q)}
}

// singleVertexErr folds the context check into single-vertex validation.
func singleVertexErr(ctx context.Context, g *Graph, v, k int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return checkVertex(g, v, k)
}
