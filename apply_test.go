package trussdiv_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"trussdiv"
	"trussdiv/internal/bench"
)

// randomUpdates picks a valid update batch for g: insertions among
// absent vertex pairs, deletions among present edges, no overlaps.
// The sampling logic lives in internal/bench (the dynamic experiment
// uses the same batches).
func randomUpdates(tb testing.TB, g *trussdiv.Graph, rng *rand.Rand, nIns, nDel int) trussdiv.Updates {
	tb.Helper()
	return bench.RandomUpdates(g, rng, nIns, nDel)
}

// sameResult compares two Results up to the epoch stamp (an applied DB
// and a freshly opened one legitimately disagree on epochs; everything
// else must be byte-identical).
func sameResult(tb testing.TB, label string, got, want *trussdiv.Result) {
	tb.Helper()
	g, w := *got, *want
	g.Epoch, w.Epoch = 0, 0
	if !reflect.DeepEqual(g.TopR, w.TopR) {
		tb.Fatalf("%s: answers differ:\n got %v\nwant %v", label, g.TopR, w.TopR)
	}
	if !reflect.DeepEqual(g.Contexts, w.Contexts) {
		tb.Fatalf("%s: contexts differ", label)
	}
}

var allEngines = []string{"online", "bound", "tsd", "gct", "hybrid"}

// TestApplyMatchesRebuildAllEngines is the correctness bar of the
// mutable-graph API: a randomized insert/delete stream is applied batch
// by batch, and after every Apply each of the five engines must answer
// exactly like a DB built cold on the mutated graph — whether the DB had
// every index warm (the incremental-repair path) or none (the
// invalidate-and-lazily-rebuild path).
func TestApplyMatchesRebuildAllEngines(t *testing.T) {
	for _, tc := range []struct {
		name    string
		prepare bool
	}{
		{"warm-indexes", true},
		{"cold-indexes", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
				N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 31,
			})
			var opts []trussdiv.Option
			if tc.prepare {
				opts = append(opts, trussdiv.WithPreparedIndexes())
			}
			db, err := trussdiv.Open(g, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			rng := rand.New(rand.NewSource(7))
			for batch := 0; batch < 3; batch++ {
				u := randomUpdates(t, db.Graph(), rng, 6, 6)
				epoch, err := db.Apply(ctx, u)
				if err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				if want := trussdiv.Epoch(2 + batch); epoch != want {
					t.Fatalf("batch %d: epoch = %d, want %d", batch, epoch, want)
				}
				fresh, err := trussdiv.Open(db.Graph())
				if err != nil {
					t.Fatal(err)
				}
				for _, engine := range allEngines {
					for _, k := range []int32{3, 4} {
						q := trussdiv.NewQuery(k, 10,
							trussdiv.WithContexts(), trussdiv.ViaEngine(engine))
						got, _, err := db.TopR(ctx, q)
						if err != nil {
							t.Fatalf("%s k=%d: %v", engine, k, err)
						}
						if got.Epoch != uint64(epoch) {
							t.Fatalf("%s: result epoch %d, want %d", engine, got.Epoch, epoch)
						}
						want, _, err := fresh.TopR(ctx, q)
						if err != nil {
							t.Fatal(err)
						}
						sameResult(t, engine, got, want)
					}
				}
			}
		})
	}
}

// TestSnapshotPinning checks the reader guarantee: a snapshot grabbed
// before an Apply keeps its epoch, its graph, and its answers, while the
// DB moves on — and the pinned answers still match a cold DB on the old
// graph (the copy-on-write repair never mutates superseded state).
func TestSnapshotPinning(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 32,
	})
	db, err := trussdiv.Open(g, trussdiv.WithPreparedIndexes("tsd", "gct"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts(), trussdiv.ViaEngine("tsd"))
	pinned := db.Snapshot()
	before, _, err := pinned.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	for batch := 0; batch < 3; batch++ {
		if _, err := db.Apply(ctx, randomUpdates(t, db.Graph(), rng, 5, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if pinned.Epoch() != 1 {
		t.Fatalf("pinned epoch = %d, want 1", pinned.Epoch())
	}
	if db.Epoch() != 4 {
		t.Fatalf("db epoch = %d, want 4", db.Epoch())
	}
	if pinned.Graph() != g {
		t.Fatal("pinned snapshot swapped its graph")
	}
	if db.Graph() == g {
		t.Fatal("db graph did not advance")
	}

	after, _, err := pinned.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pinned pre/post", after, before)

	// The pinned answers equal a cold DB over the original graph: the
	// applies never leaked into superseded snapshots.
	coldOld, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := coldOld.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pinned vs cold-old", after, want)
}

// TestApplyValidation rejects malformed batches atomically: typed error,
// no epoch advance, graph untouched.
func TestApplyValidation(t *testing.T) {
	g := trussdiv.PaperExampleGraph()
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	edges := g.Edges()
	present := edges[0]
	var absent trussdiv.Edge
	for a := int32(0); a < int32(g.N()) && absent == (trussdiv.Edge{}); a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				absent = trussdiv.Edge{U: a, V: b}
				break
			}
		}
	}

	for _, tc := range []struct {
		name string
		u    trussdiv.Updates
	}{
		{"insert-present", trussdiv.Updates{Insert: []trussdiv.Edge{present}}},
		{"delete-absent", trussdiv.Updates{Delete: []trussdiv.Edge{absent}}},
		{"duplicate-insert", trussdiv.Updates{Insert: []trussdiv.Edge{absent, {U: absent.V, V: absent.U}}}},
		{"insert-and-delete", trussdiv.Updates{Insert: []trussdiv.Edge{present}, Delete: []trussdiv.Edge{present}}},
		{"self-loop", trussdiv.Updates{Insert: []trussdiv.Edge{{U: 3, V: 3}}}},
		{"out-of-range", trussdiv.Updates{Insert: []trussdiv.Edge{{U: 0, V: int32(g.N())}}}},
		{"negative", trussdiv.Updates{Delete: []trussdiv.Edge{{U: -1, V: 2}}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := db.Apply(ctx, tc.u)
			if err == nil {
				t.Fatal("want error")
			}
			if !errors.Is(err, trussdiv.ErrBadUpdate) {
				t.Fatalf("errors.Is(err, ErrBadUpdate) = false for %v", err)
			}
			var ue *trussdiv.UpdateError
			if !errors.As(err, &ue) {
				t.Fatalf("err %T is not *UpdateError", err)
			}
			if db.Epoch() != 1 {
				t.Fatalf("epoch advanced to %d on a rejected batch", db.Epoch())
			}
			if db.Graph() != g {
				t.Fatal("graph swapped on a rejected batch")
			}
		})
	}

	// An empty batch is a no-op returning the current epoch.
	epoch, err := db.Apply(ctx, trussdiv.Updates{})
	if err != nil || epoch != 1 {
		t.Fatalf("empty batch = (%d, %v), want (1, nil)", epoch, err)
	}

	// A cancelled context aborts before anything happens.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Apply(cancelled, trussdiv.Updates{Insert: []trussdiv.Edge{absent}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled apply err = %v, want context.Canceled", err)
	}
}

// TestInjectedIndexValidation pins the WithTSDIndex/WithGCTIndex
// contract: structural validation at Open, typed error on mismatch, and
// acceptance of an index over an equal-but-distinct graph (the
// deserialize-elsewhere case pointer identity used to reject).
func TestInjectedIndexValidation(t *testing.T) {
	mk := func() *trussdiv.Graph {
		return trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
			N: 200, Attach: 3, Cliques: 40, MinSize: 4, MaxSize: 7, Seed: 33,
		})
	}
	g, twin := mk(), mk()
	other := trussdiv.PaperExampleGraph()

	tsdIdx := trussdiv.BuildTSDIndex(g)
	gctIdx := trussdiv.BuildGCTIndex(g)

	// Same structure, different pointer: accepted.
	if _, err := trussdiv.Open(twin, trussdiv.WithTSDIndex(tsdIdx), trussdiv.WithGCTIndex(gctIdx)); err != nil {
		t.Fatalf("structurally equal graph rejected: %v", err)
	}

	// Different graph: typed rejection at Open, for each injector.
	for _, tc := range []struct {
		name string
		opt  trussdiv.Option
	}{
		{"tsd", trussdiv.WithTSDIndex(tsdIdx)},
		{"gct", trussdiv.WithGCTIndex(gctIdx)},
	} {
		_, err := trussdiv.Open(other, tc.opt)
		if err == nil {
			t.Fatalf("%s: want error for index over a different graph", tc.name)
		}
		if !errors.Is(err, trussdiv.ErrIndexMismatch) {
			t.Fatalf("%s: errors.Is(err, ErrIndexMismatch) = false for %v", tc.name, err)
		}
		var me *trussdiv.IndexMismatchError
		if !errors.As(err, &me) {
			t.Fatalf("%s: err %T is not *IndexMismatchError", tc.name, err)
		}
		if me.Index != tc.name {
			t.Fatalf("mismatch names index %q, want %q", me.Index, tc.name)
		}
	}

	// Same vertex count and edge count but different wiring is still
	// caught (the fingerprint check behind the cheap count checks).
	b1 := trussdiv.NewBuilder(4)
	b1.AddEdge(0, 1)
	b1.AddEdge(2, 3)
	gA := b1.Build()
	b2 := trussdiv.NewBuilder(4)
	b2.AddEdge(0, 2)
	b2.AddEdge(1, 3)
	gB := b2.Build()
	if _, err := trussdiv.Open(gB, trussdiv.WithTSDIndex(trussdiv.BuildTSDIndex(gA))); !errors.Is(err, trussdiv.ErrIndexMismatch) {
		t.Fatalf("rewired graph not caught: %v", err)
	}
}

// reboundEngine is a Register'd backend that implements Rebinder: each
// Apply hands it the edited graph.
type reboundEngine struct {
	name    string
	g       *trussdiv.Graph
	rebinds *atomic.Int32
}

func (e *reboundEngine) Name() string { return e.name }
func (e *reboundEngine) TopR(ctx context.Context, q trussdiv.Query) (*trussdiv.Result, *trussdiv.Stats, error) {
	return &trussdiv.Result{}, nil, nil
}
func (e *reboundEngine) Score(ctx context.Context, v, k int32) (int, error) { return e.g.M(), nil }
func (e *reboundEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	return nil, nil
}
func (e *reboundEngine) Cost(q trussdiv.Query) trussdiv.Estimate {
	return trussdiv.Estimate{Query: 1e18}
}
func (e *reboundEngine) Rebind(g *trussdiv.Graph) (trussdiv.Engine, error) {
	e.rebinds.Add(1)
	return &reboundEngine{name: e.name, g: g, rebinds: e.rebinds}, nil
}

// TestRegisterSurvivesApply: custom engines are carried into every
// snapshot an Apply produces, rebound to the edited graph when they
// implement Rebinder.
func TestRegisterSurvivesApply(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 150, Attach: 3, Cliques: 30, MinSize: 4, MaxSize: 6, Seed: 34,
	})
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	var rebinds atomic.Int32
	if err := db.Register(&reboundEngine{name: "custom", g: g, rebinds: &rebinds}, false); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	if _, err := db.Apply(ctx, randomUpdates(t, db.Graph(), rng, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if rebinds.Load() != 1 {
		t.Fatalf("rebinds = %d, want 1", rebinds.Load())
	}
	eng, err := db.Engine("custom")
	if err != nil {
		t.Fatalf("custom engine lost across Apply: %v", err)
	}
	// The rebound engine sees the edited graph (3 more edges).
	m, err := eng.Score(ctx, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m != db.Graph().M() || m != g.M()+3 {
		t.Fatalf("rebound engine sees %d edges, want %d", m, g.M()+3)
	}
}

// TestConcurrentReadersDuringApply is the -race target of the snapshot
// transition: readers hammer TopR (and a pinned snapshot) while Apply
// streams update batches. Every result must carry an epoch the DB
// actually served, the pinned reader must stay at its epoch, and nothing
// may fault or race.
func TestConcurrentReadersDuringApply(t *testing.T) {
	t.Run("memory", func(t *testing.T) { concurrentReadersDuringApply(t, nil) })
	// The same hammer against a mmap-backed DB: queries serve from
	// zero-copy views over the store mapping while Apply repairs
	// copy-on-write and persists new epochs, so -race also patrols the
	// mapping-retention chain.
	t.Run("mmap", func(t *testing.T) {
		// Seed the store first so the DB under test warm starts from the
		// mapping instead of building in memory.
		dir := t.TempDir()
		seed, err := trussdiv.Open(trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
			N: 250, Attach: 3, Cliques: 50, MinSize: 4, MaxSize: 6, Seed: 35,
		}), trussdiv.WithIndexDir(dir), trussdiv.WithPreparedIndexes("tsd", "gct"))
		if err != nil {
			t.Fatal(err)
		}
		if st := seed.StoreStatus(); st.SaveErr != nil {
			t.Fatal(st.SaveErr)
		}
		concurrentReadersDuringApply(t, []trussdiv.Option{trussdiv.WithIndexDir(dir)})
	})
}

func concurrentReadersDuringApply(t *testing.T, extra []trussdiv.Option) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 250, Attach: 3, Cliques: 50, MinSize: 4, MaxSize: 6, Seed: 35,
	})
	opts := append([]trussdiv.Option{trussdiv.WithPreparedIndexes("tsd", "gct")}, extra...)
	db, err := trussdiv.Open(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if extra != nil {
		st := db.StoreStatus()
		if !st.Warm {
			t.Fatalf("store-backed variant did not warm start: %+v", st)
		}
		t.Logf("store mode: %v", st.Mode)
	}
	ctx := context.Background()
	const batches = 4
	pinned := db.Snapshot()
	pinnedWant, _, err := pinned.TopR(ctx, trussdiv.NewQuery(4, 5, trussdiv.ViaEngine("tsd"), trussdiv.WithoutStats()))
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engine := allEngines[w%len(allEngines)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, _, err := db.TopR(ctx, trussdiv.NewQuery(3, 5,
					trussdiv.ViaEngine(engine), trussdiv.WithoutStats()))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if res.Epoch < 1 || res.Epoch > batches+1 {
					t.Errorf("reader saw epoch %d outside [1,%d]", res.Epoch, batches+1)
					return
				}
			}
		}(w)
	}
	// A parameter-free reader: the k-less cell of the matrix, hammering
	// the pfree ranking while Apply patches it copy-on-write.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, _, err := db.TopR(ctx, trussdiv.NewQuery(0, 5,
				trussdiv.ViaEngine("pfree"), trussdiv.WithoutStats()))
			if err != nil {
				t.Errorf("pfree reader: %v", err)
				return
			}
			if res.Epoch < 1 || res.Epoch > batches+1 {
				t.Errorf("pfree reader saw epoch %d outside [1,%d]", res.Epoch, batches+1)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, _, err := pinned.TopR(ctx, trussdiv.NewQuery(4, 5,
				trussdiv.ViaEngine("tsd"), trussdiv.WithoutStats()))
			if err != nil {
				t.Errorf("pinned reader: %v", err)
				return
			}
			if res.Epoch != 1 {
				t.Errorf("pinned reader drifted to epoch %d", res.Epoch)
				return
			}
			if !reflect.DeepEqual(res.TopR, pinnedWant.TopR) {
				t.Errorf("pinned reader's answer changed under Apply")
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(10))
	for batch := 0; batch < batches; batch++ {
		if _, err := db.Apply(ctx, randomUpdates(t, db.Graph(), rng, 4, 4)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if db.Epoch() != batches+1 {
		t.Fatalf("final epoch = %d, want %d", db.Epoch(), batches+1)
	}
}

// TestStoreEpochAcrossApply: the persistent index store is epoch-aware.
// SaveIndexes after an Apply persists the post-update state under the new
// graph's fingerprint and records the epoch; a warm reopen of the mutated
// graph resumes the epoch counter, while the pre-update graph correctly
// rejects the file as stale.
func TestStoreEpochAcrossApply(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 200, Attach: 3, Cliques: 40, MinSize: 4, MaxSize: 6, Seed: 37,
	})
	dir := t.TempDir()
	ctx := context.Background()
	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	epoch, err := db.Apply(ctx, randomUpdates(t, db.Graph(), rng, 5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	// Re-prepare the invalidated structures against the new graph, then
	// persist the post-update state.
	if err := db.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveIndexes(); err != nil {
		t.Fatal(err)
	}

	// Warm reopen of the mutated graph: store trusted, epoch resumed.
	warm, err := trussdiv.Open(db.Graph(), trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StoreStatus(); !st.Warm || st.LoadErr != nil {
		t.Fatalf("warm reopen rejected the post-update store: %+v", st)
	}
	if warm.Epoch() != 2 {
		t.Fatalf("warm reopen epoch = %d, want 2 (resumed from the store)", warm.Epoch())
	}
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts(), trussdiv.ViaEngine("tsd"))
	got, _, err := warm.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "warm vs applied", got, want)

	// The epoch keeps counting up from the resumed value.
	if next, err := warm.Apply(ctx, randomUpdates(t, warm.Graph(), rng, 2, 2)); err != nil || next != 3 {
		t.Fatalf("apply on warm DB = (%d, %v), want (3, nil)", next, err)
	}

	// The pre-update graph no longer matches the file: typed stale
	// rejection, rebuild fallback.
	stale, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st := stale.StoreStatus(); !errors.Is(st.LoadErr, trussdiv.ErrStaleIndex) {
		t.Fatalf("old graph against post-update store: LoadErr = %v, want ErrStaleIndex", st.LoadErr)
	}
	if stale.Epoch() != 1 {
		t.Fatalf("stale open epoch = %d, want 1", stale.Epoch())
	}
}

// TestApplyStatsAndIndexSurvival: the snapshot after an Apply reports the
// repair stats, and every prepared structure survives — the TSD/GCT
// indexes via ego-network repair, the truss decomposition via the
// incremental locality-bounded repair, and the hybrid rankings via the
// affected-vertex patch.
func TestApplyStatsAndIndexSurvival(t *testing.T) {
	g := trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 200, Attach: 3, Cliques: 40, MinSize: 4, MaxSize: 6, Seed: 36,
	})
	db, err := trussdiv.Open(g, trussdiv.WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	st := db.IndexStats()
	if !st.TSDReady || !st.GCTReady || !st.HybridReady || !st.TauReady {
		t.Fatalf("prepare left indexes unready: %+v", st)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	if _, err := db.Apply(ctx, randomUpdates(t, db.Graph(), rng, 4, 4)); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	ast := snap.ApplyStats()
	if ast == nil || ast.Inserted != 4 || ast.Removed != 4 || ast.Affected == 0 {
		t.Fatalf("ApplyStats = %+v", ast)
	}
	if !ast.TrussRepaired || ast.TrussRegion <= 0 {
		t.Fatalf("truss decomposition was not repaired incrementally: %+v", ast)
	}
	if ast.RankingsPatched == 0 {
		t.Fatalf("hybrid rankings were not patched: %+v", ast)
	}
	st = snap.IndexStats()
	if !st.TSDReady || !st.GCTReady || !st.TauReady || !st.HybridReady {
		t.Fatalf("prepared structures did not survive the apply repaired: %+v", st)
	}
	// A snapshot of a cold DB reports no apply stats.
	cold, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	if ast := cold.Snapshot().ApplyStats(); ast != nil {
		t.Fatalf("cold snapshot ApplyStats = %+v, want nil", ast)
	}
}
