module trussdiv

go 1.24
