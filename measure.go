package trussdiv

import (
	"context"
	"fmt"

	"trussdiv/internal/core"
	"trussdiv/internal/pfree"
)

// Measure names one structural diversity definition — the axis the DB
// can vary independently of the engine. The library ships three:
//
//   - MeasureTruss (the default): maximal connected k-trusses of the
//     ego-network, the paper's model.
//   - MeasureComponent: connected components with at least k vertices
//     (Huang et al. / Chang et al.).
//   - MeasureCore: maximal connected k-cores (Huang et al.).
//
// Queries select a measure with Query.Measure / WithMeasure; the DB
// routes them to the cheapest engine that serves that measure (see
// DB.Measures for the routing matrix). An empty Measure means truss, so
// unqualified queries behave exactly as before the measure axis existed.
type Measure = core.Measure

const (
	// MeasureTruss is the paper's truss-based diversity (the default).
	MeasureTruss = core.MeasureTruss
	// MeasureComponent is the component-based diversity of [7, 21].
	MeasureComponent = core.MeasureComponent
	// MeasureCore is the core-based diversity of [20].
	MeasureCore = core.MeasureCore
)

// AllMeasures lists every supported measure, default first.
func AllMeasures() []Measure { return core.AllMeasures() }

// ParseMeasure resolves a user-supplied measure name; the empty string
// is the truss default. Unknown names error.
func ParseMeasure(s string) (Measure, error) { return core.ParseMeasure(s) }

// ErrUnsupportedMeasure is the sentinel matched by errors.Is when a
// query pairs an engine with a measure that engine cannot compute (for
// example engine=tsd with measure=component: the TSD forest encodes
// truss decompositions only). The concrete error is an
// *UnsupportedMeasureError naming both sides of the mismatch.
var ErrUnsupportedMeasure = core.ErrUnsupportedMeasure

// UnsupportedMeasureError reports an (engine, measure) pair outside the
// routing matrix.
type UnsupportedMeasureError = core.UnsupportedMeasureError

// MeasureLister is the optional interface an Engine implements to
// declare which measures it serves. Engines without it are assumed to
// compute the truss measure only — the right default for pre-measure
// custom backends registered through DB.Register.
type MeasureLister interface {
	Measures() []Measure
}

// MeasureInfo describes one measure the DB serves: the engines that can
// answer queries under it (in registration order) and whether it is the
// default for unqualified queries.
type MeasureInfo struct {
	Measure Measure  `json:"measure"`
	Engines []string `json:"engines"`
	Default bool     `json:"default,omitempty"`
}

// Measures reports the DB's measure axis: every supported measure with
// the engines that serve it. With the built-in registry that is truss →
// {online, bound, tsd, gct, hybrid}, component → {online, bound, comp},
// core → {online, bound, kcore}; engines added through DB.Register
// appear under the measures their MeasureLister declares (truss only
// when they do not implement it).
func (db *DB) Measures() []MeasureInfo { return db.Snapshot().Measures() }

// Measures reports the measure axis of this snapshot; see DB.Measures.
func (s *Snapshot) Measures() []MeasureInfo {
	out := make([]MeasureInfo, 0, len(core.AllMeasures()))
	for _, m := range core.AllMeasures() {
		out = append(out, MeasureInfo{
			Measure: m,
			Engines: s.reg.enginesFor(m),
			Default: m == MeasureTruss,
		})
	}
	return out
}

// EffectiveMeasure reports the measure a query's answer was computed
// under: the query's own Measure when set, else the engine's native
// definition — the single measure a MeasureLister declares, or truss
// (the multi-measure engines' default and the assumption for engines
// predating the measure axis). Response labelers (the HTTP server,
// tsdsearch) use it so an explicitly pinned comp/kcore engine is not
// reported as answering with truss semantics.
func EffectiveMeasure(q Query, e Engine) Measure {
	if q.Measure != "" {
		return q.Measure.Normalize()
	}
	if ml, ok := e.(MeasureLister); ok {
		if ms := ml.Measures(); len(ms) == 1 {
			return ms[0].Normalize()
		}
	}
	return MeasureTruss
}

// nativeMeasureEngine names the engine that computes measure m directly
// (the point-query backend for the non-truss measures).
func nativeMeasureEngine(m Measure) string {
	switch m.Normalize() {
	case MeasureComponent:
		return "comp"
	case MeasureCore:
		return "kcore"
	}
	return ""
}

// ScoreMeasure returns score(v) at threshold k under measure m on the
// current snapshot. MeasureTruss (and the empty measure) behaves exactly
// like Score; the other measures answer through their native models.
func (db *DB) ScoreMeasure(ctx context.Context, v, k int32, m Measure) (int, error) {
	return db.Snapshot().ScoreMeasure(ctx, v, k, m)
}

// ContextsMeasure returns the social contexts SC(v) at threshold k under
// measure m on the current snapshot.
func (db *DB) ContextsMeasure(ctx context.Context, v, k int32, m Measure) ([][]int32, error) {
	return db.Snapshot().ContextsMeasure(ctx, v, k, m)
}

// ScorePFree returns the parameter-free diversity score of v under
// measure m on the current snapshot: the largest h with
// score_m(v, max(h,2)) >= h, and 0 for vertices with no contexts. No
// threshold is taken — the objective chooses the discriminating level
// itself (the point-query twin of engine=pfree top-r search).
func (db *DB) ScorePFree(ctx context.Context, v int32, m Measure) (int, error) {
	return db.Snapshot().ScorePFree(ctx, v, m)
}

// ContextsPFree returns SC(v) at v's discriminating level
// k* = max(ScorePFree(v), 2) under measure m; nil when the score is 0.
func (db *DB) ContextsPFree(ctx context.Context, v int32, m Measure) ([][]int32, error) {
	return db.Snapshot().ContextsPFree(ctx, v, m)
}

// ScorePFree returns the parameter-free score of v under measure m; see
// DB.ScorePFree.
func (s *Snapshot) ScorePFree(ctx context.Context, v int32, m Measure) (int, error) {
	if err := s.pfreePointErr(ctx, v, &m); err != nil {
		return 0, err
	}
	return pfree.ScoreAt(s.g, v, m), nil
}

// ContextsPFree returns SC(v) at v's discriminating level under measure
// m; see DB.ContextsPFree.
func (s *Snapshot) ContextsPFree(ctx context.Context, v int32, m Measure) ([][]int32, error) {
	if err := s.pfreePointErr(ctx, v, &m); err != nil {
		return nil, err
	}
	return pfree.ContextsAt(s.g, v, m), nil
}

// pfreePointErr validates a parameter-free point query and normalizes
// the measure in place.
func (s *Snapshot) pfreePointErr(ctx context.Context, v int32, m *Measure) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !m.Valid() {
		_, err := ParseMeasure(string(*m))
		return err
	}
	*m = m.Normalize()
	if v < 0 || int(v) >= s.g.N() {
		return fmt.Errorf("trussdiv: vertex %d out of range [0,%d)", v, s.g.N())
	}
	return nil
}

// ScoreMeasure returns score(v) at threshold k under measure m; see
// DB.ScoreMeasure.
func (s *Snapshot) ScoreMeasure(ctx context.Context, v, k int32, m Measure) (int, error) {
	if !m.Valid() {
		_, err := ParseMeasure(string(m))
		return 0, err
	}
	if name := nativeMeasureEngine(m); name != "" {
		e, err := s.reg.lookup(name)
		if err != nil {
			return 0, err
		}
		return e.Score(ctx, v, k)
	}
	return s.Score(ctx, v, k)
}

// ContextsMeasure returns SC(v) at threshold k under measure m; see
// DB.ContextsMeasure.
func (s *Snapshot) ContextsMeasure(ctx context.Context, v, k int32, m Measure) ([][]int32, error) {
	if !m.Valid() {
		_, err := ParseMeasure(string(m))
		return nil, err
	}
	if name := nativeMeasureEngine(m); name != "" {
		e, err := s.reg.lookup(name)
		if err != nil {
			return nil, err
		}
		return e.Contexts(ctx, v, k)
	}
	return s.Contexts(ctx, v, k)
}
