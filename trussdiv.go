// Package trussdiv is the public API of the truss-based structural
// diversity library, a from-scratch Go implementation of Huang, Huang &
// Xu, "Truss-based Structural Diversity Search in Large Graphs" (ICDE
// 2021 / arXiv:2007.05437).
//
// The structural diversity of a vertex v is the number of maximal
// connected k-trusses (social contexts) in v's ego-network; top-r search
// returns the r vertices with the highest diversity together with their
// contexts. Build a Graph, Open it as a DB, and query — the DB builds
// indexes lazily and routes each query to the cheapest engine:
//
//	b := trussdiv.NewBuilder(0)
//	b.AddEdge(0, 1) // ...
//	g := b.Build()
//
//	db, _ := trussdiv.Open(g)
//	res, stats, _ := db.TopR(ctx, trussdiv.NewQuery(4, 10, trussdiv.WithContexts()))
//
// The graph is mutable after Open: db.Apply installs an atomic batch of
// edge insertions/deletions as the next epoch-numbered snapshot, with
// the TSD and GCT indexes repaired incrementally (paper §5.3). Queries
// always run against one consistent snapshot — Result.Epoch names it,
// and db.Snapshot() pins one across applies:
//
//	epoch, _ := db.Apply(ctx, trussdiv.Updates{Insert: []trussdiv.Edge{{U: 1, V: 9}}})
//
// A specific engine can be pinned with Open(g, WithEngine("gct")) or
// fetched by name with db.Engine("tsd"); every engine satisfies the
// context-aware Engine interface. The direct constructors further down
// (NewOnline, NewBound, NewTSD, NewGCT, BuildHybrid) remain as deprecated
// shims over the same internal implementations.
//
// The diversity definition itself is a query axis: WithMeasure selects
// the paper's truss-based model (the default), the component-based
// model, or the core-based model, and the DB routes to the cheapest
// engine serving that measure — db.Measures() reports the matrix:
//
//	res, _, _ = db.TopR(ctx, trussdiv.NewQuery(4, 10,
//		trussdiv.WithMeasure(trussdiv.MeasureComponent)))
//
// See README.md for the engine catalogue and migration table and
// DESIGN.md for the paper-to-code mapping.
package trussdiv

import (
	"io"

	"trussdiv/internal/baseline"
	"trussdiv/internal/cascade"
	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// Graph is an immutable undirected simple graph with dense int32 vertex
// IDs and stable edge IDs.
type Graph = graph.Graph

// Edge is an undirected edge with canonical orientation U < V.
type Edge = graph.Edge

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a SNAP-format edge list, relabeling vertices to
// dense IDs; the returned slice maps dense ID back to the original label.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) { return graph.ReadEdgeList(r) }

// ReadBinaryGraph reads a graph written by Graph.WriteBinary.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// --- Scoring and search engines (the paper's contribution) ---

// VertexScore pairs a vertex with its structural diversity score.
type VertexScore = core.VertexScore

// Result is a top-r answer with the social contexts of each vertex.
type Result = core.Result

// Stats reports search effort (the paper's "search space" metric).
type Stats = core.Stats

// Scorer computes scores and social contexts online (Algorithm 2).
type Scorer = core.Scorer

// NewScorer returns a Scorer over g.
func NewScorer(g *Graph) *Scorer { return core.NewScorer(g) }

// Online is the compute-everything baseline searcher (Algorithm 3).
type Online = core.Online

// NewOnline returns an Online searcher over g.
//
// Deprecated: use Open(g, WithEngine("online")) — or plain Open(g) for
// cost routing. The direct constructor remains for one-off searches; its
// TopR delegates to the same context-aware search the Engine interface
// uses.
func NewOnline(g *Graph) *Online { return core.NewOnline(g) }

// Bound is the sparsification + upper-bound searcher (Algorithm 4).
type Bound = core.Bound

// NewBound returns a Bound searcher over g.
//
// Deprecated: use Open(g, WithEngine("bound")) — or plain Open(g) for
// cost routing.
func NewBound(g *Graph) *Bound { return core.NewBound(g) }

// TSDIndex is the truss-based structural diversity index (Algorithm 5).
type TSDIndex = core.TSDIndex

// BuildTSDIndex constructs the TSD-index of g.
func BuildTSDIndex(g *Graph) *TSDIndex { return core.BuildTSDIndex(g) }

// BuildTSDIndexParallel constructs the TSD-index with worker goroutines
// (0 = GOMAXPROCS).
func BuildTSDIndexParallel(g *Graph, workers int) *TSDIndex {
	return core.BuildTSDIndexParallel(g, workers)
}

// ReadTSDIndex deserializes a TSD-index previously written with WriteTo,
// binding it to the graph it was built from.
func ReadTSDIndex(r io.Reader, g *Graph) (*TSDIndex, error) { return core.ReadTSDIndex(r, g) }

// TSD is the TSD-index-based searcher (Algorithm 6 + s̃core pruning).
type TSD = core.TSD

// NewTSD returns a TSD searcher over a built index.
//
// Deprecated: use Open(g, WithTSDIndex(idx), WithEngine("tsd")) — the DB
// additionally serializes TSD searches, whose scratch space is not safe
// for concurrent use.
func NewTSD(idx *TSDIndex) *TSD { return core.NewTSD(idx) }

// GCTIndex is the compressed supernode/superedge index (Algorithms 7-8).
type GCTIndex = core.GCTIndex

// BuildGCTIndex constructs the GCT-index of g.
func BuildGCTIndex(g *Graph) *GCTIndex { return core.BuildGCTIndex(g) }

// BuildGCTIndexParallel constructs the GCT-index with worker goroutines
// (0 = GOMAXPROCS).
func BuildGCTIndexParallel(g *Graph, workers int) *GCTIndex {
	return core.BuildGCTIndexParallel(g, workers)
}

// ReadGCTIndex deserializes a GCT-index previously written with WriteTo.
func ReadGCTIndex(r io.Reader, g *Graph) (*GCTIndex, error) { return core.ReadGCTIndex(r, g) }

// GCT is the GCT-index-based searcher (score(v) = N_k - M_k, Lemma 3).
type GCT = core.GCT

// NewGCT returns a GCT searcher over a built index.
//
// Deprecated: use Open(g, WithGCTIndex(idx), WithEngine("gct")) — or
// plain Open(g), which routes to gct whenever its index is ready.
func NewGCT(idx *GCTIndex) *GCT { return core.NewGCT(idx) }

// Hybrid precomputes per-k rankings but recovers contexts online.
type Hybrid = core.Hybrid

// BuildHybrid precomputes the per-k rankings from a GCT index.
//
// Deprecated: use Open(g, WithGCTIndex(idx), WithEngine("hybrid")); the
// DB builds the per-k rankings lazily from its cached GCT index.
func BuildHybrid(idx *GCTIndex) *Hybrid { return core.BuildHybrid(idx) }

// UpdateStats reports the work of an incremental index update.
type UpdateStats = core.UpdateStats

// --- Truss decomposition substrate ---

// TrussDecompose returns tau[e], the trussness of every edge of g.
func TrussDecompose(g *Graph) []int32 { return truss.Decompose(g) }

// KTrussComponents returns the vertex sets of the maximal connected
// k-trusses of g.
func KTrussComponents(g *Graph, tau []int32, k int32) [][]int32 {
	return truss.Components(g, tau, k)
}

// --- Baseline diversity models ---

// DiversityModel is a per-vertex structural diversity definition.
type DiversityModel = baseline.Model

// NewCompDiv returns the component-based diversity model [7, 21].
func NewCompDiv(g *Graph) DiversityModel { return baseline.NewCompDiv(g) }

// NewCoreDiv returns the core-based diversity model [20].
func NewCoreDiv(g *Graph) DiversityModel { return baseline.NewCoreDiv(g) }

// --- Social contagion ---

// IC is an Independent Cascade process.
type IC = cascade.IC

// NewIC returns an Independent Cascade model with uniform arc
// probability p.
func NewIC(g *Graph, p float64) *IC { return cascade.NewIC(g, p) }

// LT is a Linear Threshold diffusion process.
type LT = cascade.LT

// NewLT returns a Linear Threshold model over g.
func NewLT(g *Graph) *LT { return cascade.NewLT(g) }

// MaxInfluenceRIS selects influential seed vertices by reverse influence
// sampling.
func MaxInfluenceRIS(g *Graph, p float64, count, samples int, seed int64) []int32 {
	return cascade.MaxInfluenceRIS(g, p, count, samples, seed)
}

// --- Synthetic graphs ---

// BarabasiAlbert returns a preferential-attachment power-law graph.
func BarabasiAlbert(n, attach int, seed int64) *Graph {
	return gen.BarabasiAlbert(n, attach, seed)
}

// OverlayConfig parameterizes CommunityOverlay.
type OverlayConfig = gen.OverlayConfig

// CommunityOverlay returns a power-law backbone overlaid with planted
// communities — the library's stand-in for real social networks.
func CommunityOverlay(cfg OverlayConfig) *Graph { return gen.CommunityOverlay(cfg) }

// PaperExampleGraph returns the 17-vertex running example of the paper's
// Figure 1 (the query vertex is PaperExampleV).
func PaperExampleGraph() *Graph { return gen.Fig1Graph() }

// PaperExampleV is the query vertex of the paper's running example.
const PaperExampleV = int32(0)
