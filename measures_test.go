package trussdiv_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"trussdiv"
)

// End-to-end measure axis: the component and core measures must be
// servable through every public layer — DB routing, engine pins, Batch,
// the index store — with answers byte-identical to the naive baseline
// models, while unqualified (truss) queries keep their pre-measure
// behavior exactly.

// measureReference computes the naive reference answer for measure m:
// a cold DB's native engine with no rankings prepared, which is the
// pre-measure baselineEngine scan over baseline.Search.
func measureReference(t *testing.T, g *trussdiv.Graph, m trussdiv.Measure, k int32, r int) *trussdiv.Result {
	t.Helper()
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	name := "comp"
	if m == trussdiv.MeasureCore {
		name = "kcore"
	}
	res, _, err := db.TopR(context.Background(), trussdiv.NewQuery(k, r,
		trussdiv.ViaEngine(name), trussdiv.WithContexts()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMeasuresServedEndToEnd(t *testing.T) {
	g := overlayGraph(t)
	ctx := context.Background()
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(ctx, "comp", "kcore"); err != nil {
		t.Fatal(err)
	}
	const k, r = int32(3), 25
	for _, m := range []trussdiv.Measure{trussdiv.MeasureComponent, trussdiv.MeasureCore} {
		want := measureReference(t, g, m, k, r)
		native := "comp"
		if m == trussdiv.MeasureCore {
			native = "kcore"
		}
		// Every engine serving the measure, routed and pinned, serial and
		// parallel, must match the naive reference byte for byte.
		for _, engine := range []string{"", "online", "bound", native} {
			for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
				q := trussdiv.NewQuery(k, r, trussdiv.WithMeasure(m),
					trussdiv.WithContexts(), trussdiv.WithWorkers(workers))
				if engine != "" {
					q.Engine = engine
				}
				res, stats, err := db.TopR(ctx, q)
				if err != nil {
					t.Fatalf("measure %s engine %q: %v", m, engine, err)
				}
				if !reflect.DeepEqual(res.TopR, want.TopR) {
					t.Fatalf("measure %s engine %q workers %d: answer diverged\n got %v\nwant %v",
						m, engine, workers, res.TopR, want.TopR)
				}
				if !reflect.DeepEqual(res.Contexts, want.Contexts) {
					t.Fatalf("measure %s engine %q: contexts diverged", m, engine)
				}
				if engine == "" && stats.Engine == "" {
					t.Fatalf("measure %s: routed stats missing engine name", m)
				}
			}
		}
	}
}

func TestMeasureBatchMixes(t *testing.T) {
	g := overlayGraph(t)
	ctx := context.Background()
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	const k, r = int32(3), 15
	qs := []trussdiv.Query{
		trussdiv.NewQuery(k, r),
		trussdiv.NewQuery(k, r, trussdiv.WithMeasure(trussdiv.MeasureComponent)),
		trussdiv.NewQuery(k, r, trussdiv.WithMeasure(trussdiv.MeasureCore)),
		trussdiv.NewQuery(k, r, trussdiv.WithMeasure(trussdiv.MeasureComponent), trussdiv.ViaEngine("bound")),
		trussdiv.NewQuery(k, r, trussdiv.WithMeasure(trussdiv.MeasureTruss), trussdiv.ViaEngine("tsd")),
	}
	results, err := db.Batch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		single, _, err := db.TopR(ctx, qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.TopR, single.TopR) {
			t.Fatalf("batch query %d diverged from single-query answer", i)
		}
	}
	// Batch-aware routing labels must name engines serving each measure.
	names, err := db.BatchEngines(qs)
	if err != nil {
		t.Fatal(err)
	}
	matrix := map[trussdiv.Measure]map[string]bool{}
	for _, info := range db.Measures() {
		matrix[info.Measure] = map[string]bool{}
		for _, e := range info.Engines {
			matrix[info.Measure][e] = true
		}
	}
	for i, q := range qs {
		if !matrix[q.Measure.Normalize()][names[i]] {
			t.Fatalf("batch query %d (measure %s) routed to %q, outside the measure's engines %v",
				i, q.Measure.Normalize(), names[i], matrix[q.Measure.Normalize()])
		}
	}
}

func TestMeasuresListing(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	infos := db.Measures()
	if len(infos) != 3 {
		t.Fatalf("Measures() = %v, want 3 entries", infos)
	}
	want := map[trussdiv.Measure][]string{
		trussdiv.MeasureTruss:     {"online", "bound", "tsd", "gct", "hybrid", "pfree"},
		trussdiv.MeasureComponent: {"online", "bound", "comp", "pfree"},
		trussdiv.MeasureCore:      {"online", "bound", "kcore", "pfree"},
	}
	for _, info := range infos {
		if !reflect.DeepEqual(info.Engines, want[info.Measure]) {
			t.Fatalf("measure %s serves %v, want %v", info.Measure, info.Engines, want[info.Measure])
		}
		if info.Default != (info.Measure == trussdiv.MeasureTruss) {
			t.Fatalf("measure %s default flag wrong", info.Measure)
		}
	}
}

func TestMeasureEnginePinMismatch(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []trussdiv.Query{
		trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("tsd"), trussdiv.WithMeasure(trussdiv.MeasureComponent)),
		trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("hybrid"), trussdiv.WithMeasure(trussdiv.MeasureCore)),
		trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("comp"), trussdiv.WithMeasure(trussdiv.MeasureCore)),
		trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("kcore"), trussdiv.WithMeasure(trussdiv.MeasureTruss)),
	}
	for i, q := range cases {
		_, _, err := db.TopR(ctx, q)
		if !errors.Is(err, trussdiv.ErrUnsupportedMeasure) {
			t.Fatalf("case %d: err = %v, want ErrUnsupportedMeasure", i, err)
		}
		var ue *trussdiv.UnsupportedMeasureError
		if !errors.As(err, &ue) || ue.Engine != q.Engine {
			t.Fatalf("case %d: error %v does not name engine %q", i, err, q.Engine)
		}
	}
	// An explicit engine with an empty measure keeps its native semantics
	// (the pre-measure contract for engine=comp).
	if _, _, err := db.TopR(ctx, trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("comp"))); err != nil {
		t.Fatalf("engine pin without measure: %v", err)
	}
	// Unknown measure names are rejected on routed queries too.
	if _, _, err := db.TopR(ctx, trussdiv.NewQuery(3, 5, trussdiv.WithMeasure("bogus"))); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

// TestMeasureRankingsStoreRoundTrip: Prepare builds the per-measure
// rankings, SaveIndexes persists them as v2 measure-tagged sections, and
// a fresh DB over the same directory serves the measures from disk
// without rebuilding anything.
func TestMeasureRankingsStoreRoundTrip(t *testing.T) {
	g := overlayGraph(t)
	dir := t.TempDir()
	ctx := context.Background()
	const k, r = int32(3), 20

	seed, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Prepare(ctx, "comp", "kcore"); err != nil {
		t.Fatal(err)
	}
	if st := seed.IndexStats(); len(st.MeasureRankings) != 2 {
		t.Fatalf("prepared measure rankings = %v, want component+core", st.MeasureRankings)
	}
	answers := map[trussdiv.Measure]*trussdiv.Result{}
	for _, m := range []trussdiv.Measure{trussdiv.MeasureComponent, trussdiv.MeasureCore} {
		res, _, err := seed.TopR(ctx, trussdiv.NewQuery(k, r, trussdiv.WithMeasure(m), trussdiv.WithContexts()))
		if err != nil {
			t.Fatal(err)
		}
		answers[m] = res
	}

	warm, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := warm.StoreStatus()
	if !st.Warm {
		t.Fatalf("store not warm after Prepare: %+v", st)
	}
	hasTagged := false
	for _, sec := range st.Sections {
		if sec == "rankings@component" {
			hasTagged = true
		}
	}
	if !hasTagged {
		t.Fatalf("persisted sections %v lack the measure-tagged rankings", st.Sections)
	}
	for _, m := range []trussdiv.Measure{trussdiv.MeasureComponent, trussdiv.MeasureCore} {
		native := "comp"
		if m == trussdiv.MeasureCore {
			native = "kcore"
		}
		// The warm DB must answer from the loaded rankings: identical
		// result, no rebuild (IndexStats shows the rankings ready right
		// after the first query touches them).
		res, _, err := warm.TopR(ctx, trussdiv.NewQuery(k, r, trussdiv.WithMeasure(m),
			trussdiv.WithContexts(), trussdiv.ViaEngine(native)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, answers[m]) {
			t.Fatalf("measure %s: warm answer diverged from the pre-persist answer", m)
		}
	}
	idx := warm.IndexStats()
	if len(idx.MeasureRankings) != 2 {
		t.Fatalf("warm DB measure rankings = %v, want both loaded", idx.MeasureRankings)
	}
	if idx.BuildTime != 0 {
		t.Fatalf("warm DB built for %v; wanted pure loads", idx.BuildTime)
	}
}

// TestV1IndexFileStillWarmLoads: a file written by the version-1 store
// (the checked-in golden) must still warm-start a DB — the acceptance
// gate for the v2 format bump.
func TestV1IndexFileStillWarmLoads(t *testing.T) {
	blob, err := os.ReadFile(filepath.Join("internal", "store", "testdata", "golden_fig1.tdx"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, trussdiv.IndexFileName), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	g := trussdiv.PaperExampleGraph()
	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := db.StoreStatus()
	if !st.Warm || st.LoadErr != nil {
		t.Fatalf("v1 file did not warm-load: %+v", st)
	}
	ctx := context.Background()
	if err := db.Prepare(ctx, "tsd", "gct", "hybrid"); err != nil {
		t.Fatal(err)
	}
	idx := db.IndexStats()
	if idx.BuildTime != 0 {
		t.Fatalf("v1 warm start built for %v; wanted pure loads", idx.BuildTime)
	}
	if _, _, err := db.TopR(ctx, trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("tsd"))); err != nil {
		t.Fatal(err)
	}
}

// TestApplyPatchesMeasureRankings: an edge update no longer invalidates
// the per-measure rankings — they survive the Apply patched in place
// (only vertices in the edit's triangle neighborhoods re-score) and the
// very next query, without a re-Prepare, matches a cold DB over the
// edited graph.
func TestApplyPatchesMeasureRankings(t *testing.T) {
	g := overlayGraph(t)
	ctx := context.Background()
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(ctx, "comp"); err != nil {
		t.Fatal(err)
	}
	if len(db.IndexStats().MeasureRankings) != 1 {
		t.Fatal("component rankings not prepared")
	}
	if _, err := db.Apply(ctx, trussdiv.Updates{Insert: []trussdiv.Edge{{U: 0, V: int32(g.N() - 1)}}}); err != nil {
		t.Fatal(err)
	}
	if got := db.IndexStats().MeasureRankings; len(got) != 1 {
		t.Fatalf("measure rankings did not survive Apply patched: %v", got)
	}
	if ast := db.Snapshot().ApplyStats(); ast == nil || ast.RankingsPatched == 0 {
		t.Fatalf("ApplyStats does not record the ranking patch: %+v", ast)
	}
	want := measureReference(t, db.Graph(), trussdiv.MeasureComponent, 3, 20)
	res, _, err := db.TopR(ctx, trussdiv.NewQuery(3, 20,
		trussdiv.WithMeasure(trussdiv.MeasureComponent), trussdiv.WithContexts(), trussdiv.ViaEngine("comp")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.TopR, want.TopR) || !reflect.DeepEqual(res.Contexts, want.Contexts) {
		t.Fatal("patched rankings diverged from a cold DB over the edited graph")
	}
}

// TestDefaultRoutingIgnoresMeasureEngines pins the PR-4 contract:
// unqualified queries route within the truss engine set — the native
// measure engines are reachable only through their measure or an
// explicit pin.
func TestDefaultRoutingIgnoresMeasureEngines(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []trussdiv.Query{
		trussdiv.NewQuery(3, 10),
		trussdiv.NewQuery(3, 10, trussdiv.WithContexts()),
		trussdiv.NewQuery(3, 10, trussdiv.WithMeasure(trussdiv.MeasureTruss)),
	} {
		eng := db.Route(q)
		if eng == nil {
			t.Fatal("no route")
		}
		switch eng.Name() {
		case "online", "bound", "tsd", "gct", "hybrid":
		default:
			t.Fatalf("truss query routed to %q", eng.Name())
		}
		if _, _, err := db.TopR(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnknownMeasureErrorCategory: an unknown measure name is a parse
// error everywhere — with or without an engine pin — never an
// ErrUnsupportedMeasure (that category is reserved for real measures
// outside an engine's row). The unchecked Route preview returns nil for
// it, as documented; ResolveEngine is the checked path.
func TestUnknownMeasureErrorCategory(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	for _, q := range []trussdiv.Query{
		{K: 3, R: 5, Measure: "comp"}, // typo for "component"
		{K: 3, R: 5, Measure: "comp", Engine: "online"},
	} {
		_, rerr := snap.ResolveEngine(q)
		if rerr == nil || errors.Is(rerr, trussdiv.ErrUnsupportedMeasure) {
			t.Fatalf("query %+v: err = %v, want a plain unknown-measure parse error", q, rerr)
		}
		if !strings.Contains(rerr.Error(), "unknown measure") {
			t.Fatalf("query %+v: err = %v, want it to name the unknown measure", q, rerr)
		}
	}
	if eng := db.Route(trussdiv.Query{K: 3, R: 5, Measure: "comp"}); eng != nil {
		t.Fatalf("Route with unknown measure = %v, want nil", eng.Name())
	}
}
