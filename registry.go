package trussdiv

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrUnknownEngine is the sentinel matched by errors.Is when an engine
// name is not registered; the concrete error is *UnknownEngineError.
var ErrUnknownEngine = errors.New("trussdiv: unknown engine")

// UnknownEngineError reports a registry lookup for a name that is not
// registered, together with the names that are.
type UnknownEngineError struct {
	Name  string
	Known []string
}

func (e *UnknownEngineError) Error() string {
	return fmt.Sprintf("trussdiv: unknown engine %q (known: %s)",
		e.Name, strings.Join(e.Known, "|"))
}

// Is makes errors.Is(err, ErrUnknownEngine) match.
func (e *UnknownEngineError) Is(target error) bool { return target == ErrUnknownEngine }

// registration pairs an engine with its routing eligibility and the
// measures it serves. The registry is effectively keyed by (engine,
// measure): lookups that carry a measure verify support, and routing
// considers only the engines declaring the query's measure. Engines
// without a MeasureLister serve the truss measure only — so a routable
// pre-measure custom backend keeps exactly its old routing behavior.
type registration struct {
	engine   Engine
	routable bool
	measures map[Measure]bool
}

// registry is the name-keyed engine catalogue of one DB. Lookups and
// registrations may race (a server answering queries while the embedding
// app plugs in a backend), so all access is mutex-guarded.
type registry struct {
	mu     sync.RWMutex
	byName map[string]registration
	order  []string // registration order, for stable listings and tie-breaks
}

func newRegistry() *registry {
	return &registry{byName: make(map[string]registration)}
}

func (r *registry) add(e Engine, routable bool) error {
	name := e.Name()
	if name == "" {
		return errors.New("trussdiv: engine name must not be empty")
	}
	measures := map[Measure]bool{MeasureTruss: true}
	if ml, ok := e.(MeasureLister); ok {
		measures = make(map[Measure]bool, len(ml.Measures()))
		for _, m := range ml.Measures() {
			measures[m.Normalize()] = true
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("trussdiv: engine %q already registered", name)
	}
	r.byName[name] = registration{engine: e, routable: routable, measures: measures}
	r.order = append(r.order, name)
	return nil
}

func (r *registry) lookup(name string) (Engine, error) {
	r.mu.RLock()
	reg, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, &UnknownEngineError{Name: name, Known: r.names()}
	}
	return reg.engine, nil
}

func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// lookupFor is the (engine, measure)-keyed lookup: the named engine must
// exist and, when a measure is given explicitly, declare it. An empty
// measure imposes no constraint — an explicitly pinned engine then
// answers under its native definition, which is what pre-measure callers
// of engine=comp/kcore meant. A measure name that does not exist at all
// is a parse error, not an *UnsupportedMeasureError — the same category
// the unpinned routing path reports.
func (r *registry) lookupFor(name string, m Measure) (Engine, error) {
	if !m.Valid() {
		_, err := ParseMeasure(string(m))
		return nil, err
	}
	r.mu.RLock()
	reg, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, &UnknownEngineError{Name: name, Known: r.names()}
	}
	if m != "" && !reg.measures[m.Normalize()] {
		return nil, &UnsupportedMeasureError{Engine: name, Measure: m.Normalize()}
	}
	return reg.engine, nil
}

// routableFor lists the routable engines serving measure m, in
// registration order.
func (r *registry) routableFor(m Measure) []Engine {
	m = m.Normalize()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Engine
	for _, name := range r.order {
		if reg := r.byName[name]; reg.routable && reg.measures[m] {
			out = append(out, reg.engine)
		}
	}
	return out
}

// enginesFor lists every engine (routable or not) serving measure m, in
// registration order.
func (r *registry) enginesFor(m Measure) []string {
	m = m.Normalize()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, name := range r.order {
		if r.byName[name].measures[m] {
			out = append(out, name)
		}
	}
	return out
}
