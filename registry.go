package trussdiv

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ErrUnknownEngine is the sentinel matched by errors.Is when an engine
// name is not registered; the concrete error is *UnknownEngineError.
var ErrUnknownEngine = errors.New("trussdiv: unknown engine")

// UnknownEngineError reports a registry lookup for a name that is not
// registered, together with the names that are.
type UnknownEngineError struct {
	Name  string
	Known []string
}

func (e *UnknownEngineError) Error() string {
	return fmt.Sprintf("trussdiv: unknown engine %q (known: %s)",
		e.Name, strings.Join(e.Known, "|"))
}

// Is makes errors.Is(err, ErrUnknownEngine) match.
func (e *UnknownEngineError) Is(target error) bool { return target == ErrUnknownEngine }

// registration pairs an engine with its routing eligibility. Engines
// computing a diversity definition other than the paper's truss-based one
// (the comp/kcore baselines) are registered non-routable: they answer
// only explicit WithEngine / DB.Engine requests, never cost routing.
type registration struct {
	engine   Engine
	routable bool
}

// registry is the name-keyed engine catalogue of one DB. Lookups and
// registrations may race (a server answering queries while the embedding
// app plugs in a backend), so all access is mutex-guarded.
type registry struct {
	mu     sync.RWMutex
	byName map[string]registration
	order  []string // registration order, for stable listings and tie-breaks
}

func newRegistry() *registry {
	return &registry{byName: make(map[string]registration)}
}

func (r *registry) add(e Engine, routable bool) error {
	name := e.Name()
	if name == "" {
		return errors.New("trussdiv: engine name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("trussdiv: engine %q already registered", name)
	}
	r.byName[name] = registration{engine: e, routable: routable}
	r.order = append(r.order, name)
	return nil
}

func (r *registry) lookup(name string) (Engine, error) {
	r.mu.RLock()
	reg, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		return nil, &UnknownEngineError{Name: name, Known: r.names()}
	}
	return reg.engine, nil
}

func (r *registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

func (r *registry) routable() []Engine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Engine
	for _, name := range r.order {
		if reg := r.byName[name]; reg.routable {
			out = append(out, reg.engine)
		}
	}
	return out
}
