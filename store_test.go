package trussdiv_test

import (
	"context"
	"errors"
	"os"
	"reflect"
	"testing"

	"trussdiv"
)

// storeTestGraph is a community-overlay graph big enough that every
// engine has non-trivial work but small enough for fast tests.
func storeTestGraph(tb testing.TB, seed int64) *trussdiv.Graph {
	tb.Helper()
	return trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 600, Attach: 3, Cliques: 120, MinSize: 4, MaxSize: 8, Seed: seed,
	})
}

// TestLoadedIndexesMatchRebuilt is the round-trip property the index
// store promises: for every engine, a DB that loaded its indexes from
// disk returns byte-identical TopR results (scores, order, contexts, and
// padding) to a DB that built them from the raw graph.
func TestLoadedIndexesMatchRebuilt(t *testing.T) {
	g := storeTestGraph(t, 1)
	dir := t.TempDir()
	ctx := context.Background()

	cold, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	path, err := cold.SaveIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if want := cold.StoreStatus().Path; path != want {
		t.Fatalf("SaveIndexes path = %q, want %q", path, want)
	}

	warm, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st := warm.StoreStatus(); !st.Warm || st.LoadErr != nil {
		t.Fatalf("warm open not trusted: %+v", st)
	}

	for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
		for _, q := range []trussdiv.Query{
			trussdiv.NewQuery(3, 10, trussdiv.ViaEngine(engine), trussdiv.WithContexts()),
			trussdiv.NewQuery(4, 25, trussdiv.ViaEngine(engine)),
			trussdiv.NewQuery(5, 1, trussdiv.ViaEngine(engine), trussdiv.WithContexts(),
				trussdiv.WithCandidates(0, 1, 2, 3, 4, 50, 51, 52)),
		} {
			coldRes, _, err := cold.TopR(ctx, q)
			if err != nil {
				t.Fatalf("%s cold: %v", engine, err)
			}
			warmRes, _, err := warm.TopR(ctx, q)
			if err != nil {
				t.Fatalf("%s warm: %v", engine, err)
			}
			if !reflect.DeepEqual(coldRes, warmRes) {
				t.Errorf("%s k=%d r=%d: loaded-index result differs from rebuilt-index result",
					engine, q.K, q.R)
			}
		}
	}
}

// TestStaleIndexFallsBackToRebuild serves an index file built from a
// different graph: the DB must refuse it with a typed error (errors.Is
// ErrStaleIndex), rebuild from the graph it actually has, and still
// answer correctly.
func TestStaleIndexFallsBackToRebuild(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	oldGraph := storeTestGraph(t, 1)
	oldDB, err := trussdiv.Open(oldGraph, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := oldDB.Prepare(ctx, "tsd"); err != nil {
		t.Fatal(err)
	}

	// The "redeployed with new data" scenario: same index dir, new graph.
	newGraph := storeTestGraph(t, 2)
	db, err := trussdiv.Open(newGraph, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := db.StoreStatus()
	if st.Warm {
		t.Fatal("DB trusted an index file built from a different graph")
	}
	if !errors.Is(st.LoadErr, trussdiv.ErrStaleIndex) {
		t.Fatalf("LoadErr = %v, want errors.Is(_, ErrStaleIndex)", st.LoadErr)
	}

	// The fallback rebuild must answer, and with the new graph's indexes.
	fresh, err := trussdiv.Open(newGraph)
	if err != nil {
		t.Fatal(err)
	}
	q := trussdiv.NewQuery(3, 10, trussdiv.ViaEngine("tsd"), trussdiv.WithContexts())
	got, _, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback rebuild answered differently from a fresh build")
	}
	// The rebuild also re-persisted: a third open on the same dir is warm.
	again, err := trussdiv.Open(newGraph, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if st := again.StoreStatus(); !st.Warm {
		t.Fatalf("rebuild did not refresh the store: %+v", st)
	}
}

// TestCorruptIndexFallsBackToRebuild damages the persisted file and
// checks the DB degrades to building with a typed, matchable error.
func TestCorruptIndexFallsBackToRebuild(t *testing.T) {
	g := storeTestGraph(t, 1)
	dir := t.TempDir()
	ctx := context.Background()

	db, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Prepare(ctx, "tsd"); err != nil {
		t.Fatal(err)
	}
	path := db.StoreStatus().Path
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	hurt, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := hurt.StoreStatus()
	if st.Warm {
		t.Fatal("DB trusted a truncated index file")
	}
	if !errors.Is(st.LoadErr, trussdiv.ErrIndexCorrupt) {
		t.Fatalf("LoadErr = %v, want errors.Is(_, ErrIndexCorrupt)", st.LoadErr)
	}
	if _, _, err := hurt.TopR(ctx, trussdiv.NewQuery(3, 5, trussdiv.ViaEngine("tsd"))); err != nil {
		t.Fatalf("fallback query failed: %v", err)
	}
}

// TestSaveIndexesRequiresDir pins the error contract of SaveIndexes on a
// DB opened without a store.
func TestSaveIndexesRequiresDir(t *testing.T) {
	db, err := trussdiv.Open(storeTestGraph(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SaveIndexes(); err == nil {
		t.Fatal("SaveIndexes succeeded without an index directory")
	}
}

// TestRoutingPrefersPersistedIndex checks the cost model treats an
// on-disk index as cheap: a cold DB routes the first contexts-free query
// to an index-free engine, while the same DB warm-started from a store
// routes to an index engine because only the load cost remains.
func TestRoutingPrefersPersistedIndex(t *testing.T) {
	g := storeTestGraph(t, 1)
	dir := t.TempDir()
	ctx := context.Background()

	seeded, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := seeded.Prepare(ctx); err != nil {
		t.Fatal(err)
	}

	q := trussdiv.NewQuery(3, 10)
	coldDB, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	coldEngine := coldDB.Route(q).Name()

	warmDB, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	warmEngine := warmDB.Route(q).Name()

	switch coldEngine {
	case "tsd", "gct", "hybrid":
		t.Fatalf("cold DB routed to index engine %q before any build", coldEngine)
	}
	switch warmEngine {
	case "tsd", "gct", "hybrid":
		// Routing saw the persisted index: load cost beat online search.
	default:
		t.Fatalf("warm DB routed to %q; want an index engine, since the "+
			"store makes indexes cheap to have", warmEngine)
	}
	// And the routed warm query must actually work.
	if _, _, err := warmDB.TopR(ctx, q); err != nil {
		t.Fatal(err)
	}
}

// TestStoreModesAnswerIdentically is the mode-equivalence gate at the
// query layer: a DB warm-started through the mmap path and one through
// the decode path must return byte-identical results for every
// (engine, measure) cell the store can serve.
func TestStoreModesAnswerIdentically(t *testing.T) {
	g := storeTestGraph(t, 3)
	dir := t.TempDir()
	ctx := context.Background()

	seed, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Prepare(ctx, "bound", "tsd", "gct", "hybrid", "comp", "kcore"); err != nil {
		t.Fatal(err)
	}
	if st := seed.StoreStatus(); st.SaveErr != nil {
		t.Fatal(st.SaveErr)
	}

	mm, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := trussdiv.Open(g, trussdiv.WithIndexDir(dir), trussdiv.WithStoreMode(trussdiv.StoreDecode))
	if err != nil {
		t.Fatal(err)
	}
	if st := dec.StoreStatus(); !st.Warm || st.Mode != trussdiv.StoreDecode {
		t.Fatalf("decode DB store status = %+v", st)
	}
	if st := mm.StoreStatus(); !st.Warm {
		t.Fatalf("mmap DB store status = %+v", st)
	}
	t.Logf("mmap DB effective mode: %v", mm.StoreStatus().Mode)

	cells := []struct {
		measure trussdiv.Measure
		engines []string
	}{
		{trussdiv.MeasureTruss, []string{"online", "bound", "tsd", "gct", "hybrid"}},
		{trussdiv.MeasureComponent, []string{"online", "bound", "comp"}},
		{trussdiv.MeasureCore, []string{"online", "bound", "kcore"}},
	}
	for _, cell := range cells {
		for _, engine := range cell.engines {
			for _, q := range []trussdiv.Query{
				trussdiv.NewQuery(3, 10, trussdiv.WithMeasure(cell.measure), trussdiv.ViaEngine(engine), trussdiv.WithContexts()),
				trussdiv.NewQuery(4, 25, trussdiv.WithMeasure(cell.measure), trussdiv.ViaEngine(engine)),
			} {
				mmRes, _, err := mm.TopR(ctx, q)
				if err != nil {
					t.Fatalf("%s/%s mmap: %v", cell.measure, engine, err)
				}
				decRes, _, err := dec.TopR(ctx, q)
				if err != nil {
					t.Fatalf("%s/%s decode: %v", cell.measure, engine, err)
				}
				if !reflect.DeepEqual(mmRes, decRes) {
					t.Fatalf("%s/%s: results differ between store modes", cell.measure, engine)
				}
			}
		}
	}
}
