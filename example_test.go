package trussdiv_test

import (
	"context"
	"fmt"

	"trussdiv"
)

// Example reproduces the paper's running example: the query vertex of
// Figure 1 has structural diversity 3 at k = 4.
func Example() {
	g := trussdiv.PaperExampleGraph()
	scorer := trussdiv.NewScorer(g)
	fmt.Println(scorer.Score(trussdiv.PaperExampleV, 4))
	// Output: 3
}

// ExampleGCT shows the index-once, query-many workflow: the GCT index is
// built during Open and every query is answered from it.
func ExampleGCT() {
	g := trussdiv.PaperExampleGraph()
	db, err := trussdiv.Open(g, trussdiv.WithEngine("gct"), trussdiv.WithPreparedIndexes("gct"))
	if err != nil {
		panic(err)
	}
	for _, k := range []int32{3, 4, 5} {
		res, _, err := db.TopR(context.Background(), trussdiv.NewQuery(k, 1))
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%d: vertex %d, score %d\n", k, res.TopR[0].V, res.TopR[0].Score)
	}
	// Output:
	// k=3: vertex 0, score 2
	// k=4: vertex 0, score 3
	// k=5: vertex 0, score 0
}

// ExampleScorer_Contexts retrieves the social contexts themselves.
func ExampleScorer_Contexts() {
	g := trussdiv.PaperExampleGraph()
	scorer := trussdiv.NewScorer(g)
	for i, ctx := range scorer.Contexts(trussdiv.PaperExampleV, 4) {
		fmt.Printf("context %d has %d members\n", i+1, len(ctx))
	}
	// Output:
	// context 1 has 4 members
	// context 2 has 4 members
	// context 3 has 6 members
}

// ExampleBuilder builds a graph by hand: a hub inside two tetrahedra.
// The hub's ego-network contains one triangle per tetrahedron, so the hub
// sees two 3-truss social contexts.
func ExampleBuilder() {
	b := trussdiv.NewBuilder(0)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4 {0,1,2,3}
		{0, 4}, {0, 5}, {0, 6}, {4, 5}, {4, 6}, {5, 6}, // K4 {0,4,5,6}
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	scorer := trussdiv.NewScorer(g)
	fmt.Println(scorer.Score(0, 3))
	// Output: 2
}

// ExampleTrussDecompose exposes the underlying decomposition.
func ExampleTrussDecompose() {
	g := trussdiv.PaperExampleGraph()
	tau := trussdiv.TrussDecompose(g)
	max := int32(0)
	for _, t := range tau {
		if t > max {
			max = t
		}
	}
	fmt.Println(max)
	// Output: 5
}

// ExampleOpen shows the DB facade: one Open, engines resolved by name or
// by cost routing, queries built with functional options.
func ExampleOpen() {
	g := trussdiv.PaperExampleGraph()
	db, err := trussdiv.Open(g, trussdiv.WithEngine("gct"))
	if err != nil {
		panic(err)
	}
	q := trussdiv.NewQuery(4, 1, trussdiv.WithContexts())
	res, stats, err := db.TopR(context.Background(), q)
	if err != nil {
		panic(err)
	}
	top := res.TopR[0]
	fmt.Printf("engine=%s vertex=%d score=%d contexts=%d\n",
		stats.Engine, top.V, top.Score, len(res.Contexts[top.V]))
	// Output: engine=gct vertex=0 score=3 contexts=3
}
