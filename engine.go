package trussdiv

import (
	"context"
	"fmt"
)

// Engine is the uniform face of every top-r structural diversity
// searcher. The library ships eight implementations — online (Alg. 3),
// bound (Alg. 4), tsd (Alg. 5-6), gct (Alg. 7-8), hybrid (Exp-4), the
// comp/kcore native measure engines, and the parameter-free pfree
// engine — and new backends plug in through DB.Register without
// touching the callers.
//
// An engine serves one or more diversity measures: implement the
// optional MeasureLister interface to declare them (engines without it
// are treated as truss-only). A query whose Measure falls outside the
// engine's set fails with an *UnsupportedMeasureError.
//
// All methods honor context cancellation: a search observes ctx inside
// its hot loops and returns ctx.Err() promptly, including when ctx is
// already cancelled on entry.
type Engine interface {
	// Name is the registry key ("online", "bound", "tsd", "gct",
	// "hybrid", "comp", "kcore", ...).
	Name() string
	// TopR answers a top-r query.
	TopR(ctx context.Context, q Query) (*Result, *Stats, error)
	// Score returns the structural diversity of one vertex at threshold
	// k, under this engine's diversity model.
	Score(ctx context.Context, v, k int32) (int, error)
	// Contexts returns the social contexts of one vertex at threshold k.
	Contexts(ctx context.Context, v, k int32) ([][]int32, error)
	// Cost estimates the work q requires, for routing. Estimates are
	// relative, not wall-clock: only comparisons between engines over the
	// same graph are meaningful.
	Cost(q Query) Estimate
}

// ParameterFree is the optional interface an Engine implements to
// declare that it takes no trussness threshold: queries routed to it
// must leave Query.K at 0, and a query with K == 0 can only be served
// by such an engine. For parameter-free engines the k argument of
// Score/Contexts must be 0 as well. Engines without the interface (or
// returning false) keep the classic contract: K >= 2 required.
type ParameterFree interface {
	ParameterFree() bool
}

// isParameterFree reports whether eng declares the parameter-free
// contract.
func isParameterFree(eng Engine) bool {
	pf, ok := eng.(ParameterFree)
	return ok && pf.ParameterFree()
}

// Estimate is an engine's predicted effort for one query, in abstract
// work units (roughly: edge visits). Build is the one-time cost to make
// the engine ready — zero once its index is built — and Query is the
// per-query cost afterwards.
type Estimate struct {
	Build float64
	Query float64
}

// Total is the effort to answer one query starting from the engine's
// current state; DB routing minimizes it.
func (e Estimate) Total() float64 { return e.Build + e.Query }

// workload caches the graph quantities the cost model needs. egoWork is
// Σ_v d(v)², a proxy for the total cost of decomposing every ego-network
// (the dominant term of both the online search and an index build).
type workload struct {
	n, m    float64
	avgDeg  float64
	egoWork float64
}

func measure(g *Graph) workload {
	w := workload{n: float64(g.N()), m: float64(g.M())}
	for v := int32(0); int(v) < g.N(); v++ {
		d := float64(g.Degree(v))
		w.egoWork += d * d
	}
	if w.n > 0 {
		w.avgDeg = 2 * w.m / w.n
	}
	return w
}

// searchWork scales a whole-graph effort estimate down to the candidate
// subset of q, if one is given.
func (w workload) searchWork(full float64, q Query) float64 {
	if q.Candidates == nil || w.n == 0 {
		return full
	}
	return full * float64(len(q.Candidates)) / w.n
}

// contextWork estimates the per-answer online context recovery cost that
// the online and hybrid engines pay when contexts are requested.
func (w workload) contextWork(q Query) float64 {
	if !q.IncludeContexts {
		return 0
	}
	return float64(q.R) * w.avgDeg * w.avgDeg
}

// checkVertex validates the (v, k) pair of a single-vertex query.
func checkVertex(g *Graph, v, k int32) error {
	if v < 0 || int(v) >= g.N() {
		return fmt.Errorf("trussdiv: vertex %d out of range [0,%d)", v, g.N())
	}
	if k < 2 {
		return fmt.Errorf("trussdiv: k = %d, must be >= 2", k)
	}
	return nil
}
