package trussdiv

import (
	"context"
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
)

// TestPrepareMultiUsesSharedPass pins the multi-structure Prepare
// contract: when several ego-derived structures are missing at once,
// Prepare builds them through one BuildAll sweep — the dedicated
// per-structure builders are never entered — and the prepared engines
// answer byte-identically to a DB prepared one structure at a time.
func TestPrepareMultiUsesSharedPass(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 17,
	})
	ctx := context.Background()

	db, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	cache := db.Snapshot().cache
	cache.buildTSD = func(*Graph) *core.TSDIndex {
		t.Error("multi-name Prepare entered the dedicated TSD builder")
		return core.BuildTSDIndex(g)
	}
	cache.buildGCT = func(*Graph) *core.GCTIndex {
		t.Error("multi-name Prepare entered the dedicated GCT builder")
		return core.BuildGCTIndex(g)
	}
	cache.buildHybrid = func(idx *core.GCTIndex) *core.Hybrid {
		t.Error("multi-name Prepare entered the dedicated hybrid builder")
		return core.BuildHybrid(idx)
	}
	cache.buildMRank = func(g *Graph, m core.Measure) [][]core.VertexScore {
		t.Errorf("multi-name Prepare entered the dedicated %s rankings builder", m)
		return core.BuildMeasureRankings(g, m)
	}
	names := []string{"tsd", "gct", "hybrid", "comp", "kcore", "pfree"}
	if err := db.Prepare(ctx, names...); err != nil {
		t.Fatal(err)
	}
	// One shared pass built all five ego-derived structures (the pfree
	// rankings then derive in O(table), uncounted like any derivation).
	if cache.builds != 5 {
		t.Fatalf("builds = %d after multi-name Prepare, want 5", cache.builds)
	}

	// Answers match a DB prepared one name at a time.
	control, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := control.Prepare(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	for _, engine := range []string{"tsd", "gct", "hybrid", "comp", "kcore"} {
		q := NewQuery(3, 10, ViaEngine(engine), WithContexts())
		if engine == "comp" {
			q = NewQuery(3, 10, ViaEngine(engine), WithContexts(), WithMeasure(MeasureComponent))
		}
		if engine == "kcore" {
			q = NewQuery(3, 10, ViaEngine(engine), WithContexts(), WithMeasure(MeasureCore))
		}
		got, _, err := db.TopR(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		want, _, err := control.TopR(ctx, q)
		if err != nil {
			t.Fatalf("%s (control): %v", engine, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: shared-pass answer diverges from per-name Prepare", engine)
		}
	}
	for _, m := range AllMeasures() {
		q := NewQuery(0, 10, ViaEngine("pfree"), WithMeasure(m), WithContexts())
		got, _, err := db.TopR(ctx, q)
		if err != nil {
			t.Fatalf("pfree/%s: %v", m, err)
		}
		want, _, err := control.TopR(ctx, q)
		if err != nil {
			t.Fatalf("pfree/%s (control): %v", m, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pfree/%s: shared-pass answer diverges from per-name Prepare", m)
		}
	}
}

// TestPrepareSingleKeepsDedicatedBuilder pins the complement: a Prepare
// that needs only one structure never pays the multi-build driver — the
// dedicated builder (and its damage-accounting semantics) still owns
// the singleton case.
func TestPrepareSingleKeepsDedicatedBuilder(t *testing.T) {
	g := gen.Fig1Graph()
	ctx := context.Background()
	db, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	cache := db.Snapshot().cache
	cache.buildAllIdx = func(*Graph, core.BuildTargets) *core.BuildProducts {
		t.Error("single-name Prepare entered the shared multi-build driver")
		return &core.BuildProducts{}
	}
	if err := db.Prepare(ctx, "tsd"); err != nil {
		t.Fatal(err)
	}
	if cache.builds != 1 {
		t.Fatalf("builds = %d after Prepare(tsd), want 1", cache.builds)
	}
	// A second multi-name Prepare with everything but one structure in
	// memory is still a singleton build.
	if err := db.Prepare(ctx, "tsd", "gct"); err != nil {
		t.Fatal(err)
	}
	if cache.builds != 2 {
		t.Fatalf("builds = %d after Prepare(tsd, gct), want 2", cache.builds)
	}
}
