# Tier-1 verification is `make check`: vet, build, and test everything.
# `make check-race` re-runs the suite under the race detector — required
# for changes touching the parallel search layer or DB.Batch.
GO ?= go

.PHONY: check check-race vet build test bench bench-parallel cover fuzz

check: vet build test

check-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick-mode paper benchmarks (full versions: go run ./cmd/tsdbench).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Serial-vs-parallel engine timings; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/tsdbench -exp parallel -quick

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test ./internal/graph -fuzz FuzzLoadEdgeList -fuzztime 30s
