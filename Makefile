# Tier-1 verification is `make check`: vet, build, and test everything.
GO ?= go

.PHONY: check vet build test bench cover

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick-mode paper benchmarks (full versions: go run ./cmd/tsdbench).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

cover:
	$(GO) test -cover ./...
