# Tier-1 verification is `make check`: vet, build, and test everything.
# `make check-race` re-runs the suite under the race detector — required
# for changes touching the parallel search layer, DB.Batch, or the
# mutable-graph write path (the root-package apply/snapshot tests,
# e.g. TestConcurrentReadersDuringApply, run under it).
# `make ci` is the umbrella the GitHub workflow runs: formatting gate
# plus the tier-1 checks.
GO ?= go

.PHONY: ci check check-race fmt-check lint vet build test bench bench-allocs bench-parallel bench-artifacts check-parallel-baseline cluster-smoke cover fuzz

ci: fmt-check lint check

check: vet build test

# Static analysis beyond vet. staticcheck is optional locally (the CI
# workflow installs it); when absent the target degrades to vet alone
# with a notice rather than failing offline checkouts.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, ran vet only" \
			"(go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Fails (listing the offenders) when any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Includes internal/cluster: the coordinator's hedged/retried fan-out and
# the worker's epoch catch-up are concurrency-heavy by design.
check-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick-mode paper benchmarks (full versions: go run ./cmd/tsdbench).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Allocation regression gate: the AllocsPerRun suites pin the scoring hot
# path — ego extraction and per-vertex scoring under every measure — at
# zero steady-state allocations. Fast enough to run on every change.
bench-allocs:
	$(GO) test -run 'AllocFree' -count=1 -v ./internal/ego ./internal/core

# Serial-vs-parallel engine timings; writes BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/tsdbench -exp parallel -quick

# Quick-mode machine-readable benchmarks; CI uploads bench-out/BENCH_*.json
# as a build artifact so the perf trajectory is tracked per commit.
bench-artifacts:
	$(GO) run ./cmd/tsdbench -exp parallel -quick -outdir bench-out
	$(GO) run ./cmd/tsdbench -exp store -quick -outdir bench-out
	$(GO) run ./cmd/tsdbench -exp dynamic -quick -outdir bench-out
	$(GO) run ./cmd/tsdbench -exp measures -quick -outdir bench-out
	$(GO) run ./cmd/tsdbench -exp cluster -quick -outdir bench-out
	$(GO) run ./cmd/tsdbench -exp pfree -quick -outdir bench-out

# Fails when bench-out/BENCH_parallel.json came from a GOMAXPROCS=1 run —
# CI runs this right after bench-artifacts so a single-core parallel
# baseline can never be published as the perf trajectory.
check-parallel-baseline:
	bash scripts/check_parallel_baseline.sh bench-out/BENCH_parallel.json

# End-to-end cluster parity: 2 shard workers + coordinator vs a single
# node on the same dataset, answers diffed through tsdsearch -server.
cluster-smoke:
	bash scripts/cluster_smoke.sh

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test ./internal/graph -fuzz FuzzLoadEdgeList -fuzztime 30s
