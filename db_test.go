package trussdiv_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"trussdiv"
)

func overlayGraph(tb testing.TB) *trussdiv.Graph {
	tb.Helper()
	return trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 500, Attach: 3, Cliques: 100, MinSize: 4, MaxSize: 8, Seed: 11,
	})
}

func TestEngineRegistryUnknownName(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Engine("nope")
	if err == nil {
		t.Fatal("want error for unknown engine")
	}
	if !errors.Is(err, trussdiv.ErrUnknownEngine) {
		t.Fatalf("errors.Is(err, ErrUnknownEngine) = false for %v", err)
	}
	var ue *trussdiv.UnknownEngineError
	if !errors.As(err, &ue) {
		t.Fatalf("err %T is not *UnknownEngineError", err)
	}
	if ue.Name != "nope" || len(ue.Known) == 0 {
		t.Fatalf("UnknownEngineError = %+v", ue)
	}
	if !strings.Contains(err.Error(), "gct") {
		t.Fatalf("error does not list known engines: %v", err)
	}

	// The same typed error surfaces at Open time for a pinned engine.
	_, err = trussdiv.Open(trussdiv.PaperExampleGraph(), trussdiv.WithEngine("nope"))
	if !errors.Is(err, trussdiv.ErrUnknownEngine) {
		t.Fatalf("Open(WithEngine) err = %v, want ErrUnknownEngine", err)
	}
}

func TestEnginesCatalogue(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"online", "bound", "tsd", "gct", "hybrid", "comp", "kcore", "pfree"}
	if got := db.Engines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Engines() = %v, want %v", got, want)
	}
	ctx := context.Background()
	for _, name := range want {
		e, err := db.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != name {
			t.Fatalf("Engine(%q).Name() = %q", name, e.Name())
		}
		k := int32(4)
		if name == "pfree" {
			k = 0 // the parameter-free engine forbids a threshold
		}
		q := trussdiv.NewQuery(k, 1, trussdiv.WithContexts())
		res, _, err := e.TopR(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.TopR) != 1 {
			t.Fatalf("%s: answer size %d", name, len(res.TopR))
		}
	}
}

func TestRoutingIndexAbsentVsPresent(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	q := trussdiv.NewQuery(4, 10)

	// No index built: an index-free engine must win (its cost carries no
	// build term, and a one-off query never amortizes an index build).
	cold := db.Route(q)
	if name := cold.Name(); name != "bound" {
		t.Fatalf("cold route = %q, want bound", name)
	}
	if est := cold.Cost(q); est.Build != 0 {
		t.Fatalf("cold-routed engine has build cost %v", est.Build)
	}

	// GCT index present: routing must move to it for context queries.
	ctx := context.Background()
	if err := db.Prepare(ctx, "gct"); err != nil {
		t.Fatal(err)
	}
	warm := db.Route(trussdiv.NewQuery(4, 100, trussdiv.WithContexts()))
	if name := warm.Name(); name != "gct" {
		t.Fatalf("warm route = %q, want gct", name)
	}

	// With the hybrid rankings also built, a ranking-only query routes to
	// hybrid (the paper's Exp-4: it only loses once contexts are needed).
	if err := db.Prepare(ctx, "hybrid"); err != nil {
		t.Fatal(err)
	}
	if name := db.Route(trussdiv.NewQuery(4, 10)).Name(); name != "hybrid" {
		t.Fatalf("ranking-only route = %q, want hybrid", name)
	}
}

func TestDBTopRReportsEngineAndAgreesWithPinned(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g, trussdiv.WithPreparedIndexes("gct"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts())
	res, stats, err := db.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Engine != db.Route(q).Name() {
		t.Fatalf("stats = %+v, want routed engine name", stats)
	}
	gct, err := db.Engine("gct")
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := gct.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ScoreMultiset(), want.ScoreMultiset()) {
		t.Fatalf("routed scores %v != gct scores %v", res.ScoreMultiset(), want.ScoreMultiset())
	}
}

func TestWithEnginePinsRouting(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t), trussdiv.WithEngine("online"))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := db.TopR(context.Background(), trussdiv.NewQuery(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine != "online" {
		t.Fatalf("engine = %q, want online (pinned)", stats.Engine)
	}
}

func TestCancelledContextAbortsTopR(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := trussdiv.NewQuery(4, 10, trussdiv.WithContexts())
	for _, name := range db.Engines() {
		e, err := db.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		res, stats, err := e.TopR(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil || stats != nil {
			t.Fatalf("%s: non-nil result after cancellation", name)
		}
		if _, err := e.Score(ctx, 0, 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Score err = %v, want context.Canceled", name, err)
		}
	}
	if _, _, err := db.TopR(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("DB.TopR err = %v, want context.Canceled", err)
	}
	// The cancelled queries must not have triggered any index build.
	if st := db.IndexStats(); st.TSDReady || st.GCTReady || st.HybridReady {
		t.Fatalf("index built despite cancelled context: %+v", st)
	}
}

func TestQueryOptionsOnDB(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Stats opt-out.
	res, stats, err := db.TopR(ctx, trussdiv.NewQuery(4, 1, trussdiv.WithoutStats()))
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		t.Fatalf("stats = %+v, want nil", stats)
	}
	if res.Contexts != nil {
		t.Fatal("contexts present without WithContexts")
	}

	// Candidate subsets restrict the answer.
	sub := []int32{1, 2, 3, 4}
	res, _, err = db.TopR(ctx, trussdiv.NewQuery(4, 4, trussdiv.WithCandidates(sub...)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.TopR {
		if e.V < 1 || e.V > 4 {
			t.Fatalf("answer vertex %d outside candidates", e.V)
		}
	}
}

func TestDBScoreAndContexts(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	score, err := db.Score(ctx, trussdiv.PaperExampleV, 4)
	if err != nil {
		t.Fatal(err)
	}
	if score != 3 {
		t.Fatalf("score = %d, want 3", score)
	}
	contexts, err := db.Contexts(ctx, trussdiv.PaperExampleV, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(contexts) != 3 {
		t.Fatalf("contexts = %d, want 3", len(contexts))
	}
	if _, err := db.Score(ctx, 999, 4); err == nil {
		t.Fatal("want error for out-of-range vertex")
	}
	if _, err := db.Score(ctx, 0, 1); err == nil {
		t.Fatal("want error for k < 2")
	}
}

func TestBaselineEnginesValidateUniformly(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"comp", "kcore"} {
		e, err := db.Engine(name)
		if err != nil {
			t.Fatal(err)
		}
		// k < 2 is rejected with and without a candidate subset.
		if _, _, err := e.TopR(ctx, trussdiv.Query{K: 1, R: 5}); err == nil {
			t.Fatalf("%s: k=1 accepted without candidates", name)
		}
		if _, _, err := e.TopR(ctx, trussdiv.Query{K: 1, R: 5, Candidates: []int32{1}}); err == nil {
			t.Fatalf("%s: k=1 accepted with candidates", name)
		}
		// Duplicate candidates collapse to one answer slot.
		res, _, err := e.TopR(ctx, trussdiv.Query{K: 4, R: 2, Candidates: []int32{1, 1}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TopR) != 1 {
			t.Fatalf("%s: duplicate candidate answer = %v", name, res.TopR)
		}
	}
}

// staticEngine is a minimal custom backend for registry tests.
type staticEngine struct{ name string }

func (e *staticEngine) Name() string { return e.name }
func (e *staticEngine) TopR(ctx context.Context, q trussdiv.Query) (*trussdiv.Result, *trussdiv.Stats, error) {
	return &trussdiv.Result{TopR: []trussdiv.VertexScore{{V: 0, Score: 42}}}, nil, nil
}
func (e *staticEngine) Score(ctx context.Context, v, k int32) (int, error) { return 42, nil }
func (e *staticEngine) Contexts(ctx context.Context, v, k int32) ([][]int32, error) {
	return nil, nil
}
func (e *staticEngine) Cost(q trussdiv.Query) trussdiv.Estimate { return trussdiv.Estimate{} }

func TestRegisterCustomEngine(t *testing.T) {
	db, err := trussdiv.Open(trussdiv.PaperExampleGraph())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register(&staticEngine{name: "static"}, false); err != nil {
		t.Fatal(err)
	}
	e, err := db.Engine("static")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := e.TopR(context.Background(), trussdiv.NewQuery(4, 1))
	if err != nil || res.TopR[0].Score != 42 {
		t.Fatalf("custom engine answer = %+v, %v", res, err)
	}
	// Duplicate names are rejected.
	if err := db.Register(&staticEngine{name: "gct"}, false); err == nil {
		t.Fatal("want error registering duplicate name")
	}
}

func TestBatchMatchesIndividualQueries(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := []trussdiv.Query{
		trussdiv.NewQuery(3, 5),
		trussdiv.NewQuery(4, 10, trussdiv.WithContexts(), trussdiv.WithWorkers(4)),
		trussdiv.NewQuery(4, 3, trussdiv.WithCandidates(1, 2, 3, 4, 5)),
		trussdiv.NewQuery(5, 8, trussdiv.ViaEngine("online")),
		trussdiv.NewQuery(2, 1, trussdiv.ViaEngine("gct")),
	}
	results, err := db.Batch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("Batch returned %d results for %d queries", len(results), len(qs))
	}
	for i, q := range qs {
		want, _, err := db.TopR(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i].TopR, want.TopR) {
			t.Fatalf("query %d: batch answer %v, individual answer %v", i, results[i].TopR, want.TopR)
		}
		if !reflect.DeepEqual(results[i].Contexts, want.Contexts) {
			t.Fatalf("query %d: batch contexts differ from individual query", i)
		}
	}

	// Empty batch is a no-op.
	if res, err := db.Batch(ctx, nil); res != nil || err != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", res, err)
	}
}

func TestBatchAmortizesIndexBuilds(t *testing.T) {
	g := overlayGraph(t)
	db, err := trussdiv.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	// One ranking-only query cost-routes to an index-free engine; a large
	// batch of them amortizes the index build, so Batch must prepare an
	// index up front and the post-batch IndexStats must show it.
	if name := db.Route(trussdiv.NewQuery(4, 10)).Name(); name != "bound" {
		t.Fatalf("single-query route = %q, want bound", name)
	}
	qs := make([]trussdiv.Query, 64)
	for i := range qs {
		qs[i] = trussdiv.NewQuery(4, 10)
	}
	if _, err := db.Batch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	st := db.IndexStats()
	if !st.GCTReady && !st.TSDReady && !st.HybridReady {
		t.Fatalf("no index built by a 64-query batch: %+v", st)
	}
}

func TestBatchErrors(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Unknown pinned engine fails before any query runs.
	_, err = db.Batch(ctx, []trussdiv.Query{trussdiv.NewQuery(3, 1, trussdiv.ViaEngine("nope"))})
	if !errors.Is(err, trussdiv.ErrUnknownEngine) {
		t.Fatalf("err = %v, want ErrUnknownEngine", err)
	}

	// An invalid query anywhere in the batch fails the whole batch.
	res, err := db.Batch(ctx, []trussdiv.Query{
		trussdiv.NewQuery(3, 5),
		{K: 1, R: 5},
	})
	if err == nil || res != nil {
		t.Fatalf("batch with invalid query = (%v, %v), want error", res, err)
	}

	// Cancellation aborts the batch.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := db.Batch(cancelled, []trussdiv.Query{trussdiv.NewQuery(3, 5)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch err = %v, want context.Canceled", err)
	}
}

// TestBatchConcurrentWithQueries exercises Batch under load while other
// goroutines issue individual queries — the race-detector target for the
// facade's fan-out path.
func TestBatchConcurrentWithQueries(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t), trussdiv.WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qs := make([]trussdiv.Query, 16)
	for i := range qs {
		qs[i] = trussdiv.NewQuery(int32(2+i%4), 5, trussdiv.WithWorkers(2))
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.Batch(ctx, qs); err != nil {
				t.Errorf("batch: %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range qs {
				if _, _, err := db.TopR(ctx, q); err != nil {
					t.Errorf("topr: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestViaEngineOverridesDBPin(t *testing.T) {
	db, err := trussdiv.Open(overlayGraph(t), trussdiv.WithEngine("online"))
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := db.TopR(context.Background(), trussdiv.NewQuery(4, 5, trussdiv.ViaEngine("gct")))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Engine != "gct" {
		t.Fatalf("engine = %q, want gct (per-query pin wins)", stats.Engine)
	}
}

func TestOpenWithPrebuiltIndexes(t *testing.T) {
	g := overlayGraph(t)
	tsdIdx := trussdiv.BuildTSDIndex(g)
	gctIdx := trussdiv.BuildGCTIndex(g)
	db, err := trussdiv.Open(g, trussdiv.WithTSDIndex(tsdIdx), trussdiv.WithGCTIndex(gctIdx))
	if err != nil {
		t.Fatal(err)
	}
	st := db.IndexStats()
	if !st.TSDReady || !st.GCTReady {
		t.Fatalf("IndexStats = %+v, want both indexes ready", st)
	}
	if st.TSDBytes <= 0 || st.GCTBytes <= 0 {
		t.Fatalf("IndexStats sizes = %+v", st)
	}
	// An index from a different graph is rejected.
	other := trussdiv.PaperExampleGraph()
	if _, err := trussdiv.Open(other, trussdiv.WithTSDIndex(tsdIdx)); err == nil {
		t.Fatal("want error for index over a different graph")
	}
}
