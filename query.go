package trussdiv

import "trussdiv/internal/core"

// Query describes one top-r structural diversity search. Construct it
// with NewQuery plus functional options, or fill the fields directly —
// the zero value of the optional fields is the default behavior.
type Query struct {
	// K is the trussness threshold of the social contexts (>= 2) for the
	// fixed-k engines. Left at 0 the query is parameter-free: it routes
	// to the pfree engine, which aggregates every threshold into one
	// score and forbids a K. K = 1 (or a K given to a parameter-free
	// engine, or a missing K on a fixed-k pin) fails with a
	// *BadQueryError matching errors.Is(err, ErrBadQuery).
	K int32
	// R is the answer size (>= 1; capped at the candidate count).
	R int
	// IncludeContexts requests the social contexts of every answer
	// vertex. Context recovery is the dominant per-answer cost for the
	// online and hybrid engines, so it is off by default.
	IncludeContexts bool
	// Candidates restricts the search to a vertex subset; nil searches
	// every vertex. Out-of-range IDs are an error.
	Candidates []int32
	// SkipStats suppresses the *Stats return (it will be nil).
	SkipStats bool
	// Workers is the number of goroutines the engine may use to score
	// candidates and recover contexts: 0 or negative means GOMAXPROCS,
	// 1 forces serial execution. The answer is byte-identical for every
	// worker count (ties resolve by vertex ID).
	Workers int
	// Engine pins this query to the named engine, overriding cost routing
	// and the DB-level WithEngine default. Empty means no pin. Unknown
	// names fail with a *UnknownEngineError.
	Engine string
	// Measure selects the structural diversity definition: MeasureTruss
	// (the default; "" means the same), MeasureComponent, or MeasureCore.
	// Routing considers only engines that serve the measure; a query that
	// pins an Engine outside the measure's row of the routing matrix fails
	// with an *UnsupportedMeasureError. An empty Measure combined with a
	// pinned Engine means that engine's native definition, so pre-measure
	// callers of engine=comp/kcore keep their behavior.
	Measure Measure
}

// QueryOption customizes a Query built by NewQuery.
type QueryOption func(*Query)

// NewQuery returns a Query for the top r vertices under trussness
// threshold k, customized by opts. k = 0 builds a parameter-free query
// (served by the pfree engine).
func NewQuery(k int32, r int, opts ...QueryOption) Query {
	q := Query{K: k, R: r}
	for _, opt := range opts {
		opt(&q)
	}
	return q
}

// WithContexts requests the social contexts of every answer vertex.
func WithContexts() QueryOption {
	return func(q *Query) { q.IncludeContexts = true }
}

// WithCandidates restricts the search to the given vertices (e.g. the
// members of one community, or the result of an upstream filter).
func WithCandidates(vs ...int32) QueryOption {
	return func(q *Query) { q.Candidates = vs }
}

// WithoutStats opts out of search-effort accounting; TopR returns a nil
// *Stats.
func WithoutStats() QueryOption {
	return func(q *Query) { q.SkipStats = true }
}

// WithWorkers sets the worker-pool size for this query: candidates are
// sharded across n goroutines (0 or negative = GOMAXPROCS, 1 = serial).
// Results are byte-identical to serial execution for every n.
func WithWorkers(n int) QueryOption {
	return func(q *Query) { q.Workers = n }
}

// ViaEngine pins the query to the named engine, bypassing cost routing.
// It also overrides a DB-level WithEngine default, so one batch can mix
// pinned and routed queries.
func ViaEngine(name string) QueryOption {
	return func(q *Query) { q.Engine = name }
}

// WithMeasure selects the structural diversity definition the query is
// answered under (MeasureTruss, MeasureComponent, MeasureCore); omitted,
// the query uses the paper's truss-based default.
func WithMeasure(m Measure) QueryOption {
	return func(q *Query) { q.Measure = m }
}

// params translates the public Query into the internal search parameters.
func (q Query) params() core.Params {
	return core.Params{
		K:            q.K,
		R:            q.R,
		Candidates:   q.Candidates,
		SkipContexts: !q.IncludeContexts,
		SkipStats:    q.SkipStats,
		Workers:      q.Workers,
		Measure:      q.Measure,
	}
}
