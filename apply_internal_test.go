package trussdiv

import (
	"context"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
)

// TestApplyRepairsWithoutRebuilding pins the incremental-maintenance
// contract of the snapshot transition: after an Apply, the tsd and gct
// engines answer from the repaired indexes — their builders are never
// re-entered — while the invalidated truss decomposition and hybrid
// rankings rebuild lazily, exactly once each, on first use.
func TestApplyRepairsWithoutRebuilding(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 38,
	})
	ctx := context.Background()
	db, err := Open(g, WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	// One insertion between existing non-adjacent vertices.
	var u Updates
	for a := int32(0); a < int32(g.N()) && u.Insert == nil; a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				u.Insert = []Edge{{U: a, V: b}}
				break
			}
		}
	}
	if _, err := db.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}

	cache := db.Snapshot().cache
	cache.buildTSD = func(*Graph) *core.TSDIndex {
		t.Error("apply-repaired TSD index was rebuilt from scratch")
		return core.BuildTSDIndex(db.Graph())
	}
	cache.buildGCT = func(*Graph) *core.GCTIndex {
		t.Error("apply-repaired GCT index was rebuilt from scratch")
		return core.BuildGCTIndex(db.Graph())
	}
	for _, engine := range []string{"tsd", "gct"} {
		if _, _, err := db.TopR(ctx, NewQuery(4, 5, ViaEngine(engine))); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	if cache.builds != 0 {
		t.Fatalf("builds = %d after repaired-engine queries, want 0", cache.builds)
	}

	// The invalidated structures rebuild lazily: bound re-derives the
	// truss decomposition, hybrid re-ranks (reusing the repaired GCT).
	for _, engine := range []string{"bound", "hybrid"} {
		if _, _, err := db.TopR(ctx, NewQuery(4, 5, ViaEngine(engine))); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	if cache.builds != 2 {
		t.Fatalf("builds = %d after bound+hybrid queries, want exactly the 2 invalidated structures", cache.builds)
	}
}
