package trussdiv

import (
	"context"
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/truss"
)

// TestApplyRepairsWithoutRebuilding pins the incremental-maintenance
// contract of the snapshot transition: after an Apply, EVERY prepared
// structure survives repaired in place — the ego-network indexes via
// UpdateOnto, the truss decomposition via truss.Repair, and the hybrid
// rankings via the affected-vertex patch. No builder is ever re-entered;
// a small edit batch must not pay O(graph) anywhere.
func TestApplyRepairsWithoutRebuilding(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 38,
	})
	ctx := context.Background()
	db, err := Open(g, WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	// One insertion between existing non-adjacent vertices.
	var u Updates
	for a := int32(0); a < int32(g.N()) && u.Insert == nil; a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				u.Insert = []Edge{{U: a, V: b}}
				break
			}
		}
	}
	if _, err := db.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	stats := db.Snapshot().ApplyStats()
	if stats == nil {
		t.Fatal("Apply onto a prepared DB recorded no repair stats")
	}
	if !stats.TrussRepaired {
		t.Fatalf("single-edge Apply fell back to a full decomposition: %+v", stats)
	}
	if stats.TrussRegion <= 0 || stats.TrussRegion >= db.Graph().M()/2 {
		t.Fatalf("repair region %d edges is not local (m = %d)", stats.TrussRegion, db.Graph().M())
	}
	if stats.RankingsPatched == 0 {
		t.Fatalf("hybrid rankings were not patched: %+v", stats)
	}

	// Tripwire every builder: any engine that re-derives a global
	// structure after the repair fails loudly.
	cache := db.Snapshot().cache
	cache.buildTau = func(g *Graph) ([]int32, []int32) {
		t.Error("apply-repaired truss decomposition was rebuilt from scratch")
		return truss.DecomposeFull(g, 1)
	}
	cache.buildTSD = func(*Graph) *core.TSDIndex {
		t.Error("apply-repaired TSD index was rebuilt from scratch")
		return core.BuildTSDIndex(db.Graph())
	}
	cache.buildGCT = func(*Graph) *core.GCTIndex {
		t.Error("apply-repaired GCT index was rebuilt from scratch")
		return core.BuildGCTIndex(db.Graph())
	}
	cache.buildHybrid = func(idx *core.GCTIndex) *core.Hybrid {
		t.Error("apply-patched hybrid rankings were rebuilt from scratch")
		return core.BuildHybrid(idx)
	}
	for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
		if _, _, err := db.TopR(ctx, NewQuery(4, 5, ViaEngine(engine))); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	if cache.builds != 0 {
		t.Fatalf("builds = %d after querying every engine post-Apply, want 0", cache.builds)
	}
}

// TestApplyPatchesPFreeRankings pins the parameter-free repair
// contract: prepared pfree rankings survive a small Apply patched in
// place — they are present in the new epoch's cache before any query
// touches them, ApplyStats counts exactly one extra patch per measure
// relative to an otherwise-identical DB without pfree, and the patched
// answers are byte-equal to a cold DB on the edited graph.
func TestApplyPatchesPFreeRankings(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 7, Seed: 39,
	})
	ctx := context.Background()
	withPFree, err := Open(g, WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	if err := withPFree.Prepare(ctx, "comp", "kcore", "pfree"); err != nil {
		t.Fatal(err)
	}
	// The control DB holds the same per-k tables but no pfree rankings,
	// so the RankingsPatched delta isolates the pfree patches.
	control, err := Open(g, WithPreparedIndexes())
	if err != nil {
		t.Fatal(err)
	}
	if err := control.Prepare(ctx, "comp", "kcore"); err != nil {
		t.Fatal(err)
	}

	var u Updates
	for a := int32(0); a < int32(g.N()) && u.Insert == nil; a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				u.Insert = []Edge{{U: a, V: b}}
				break
			}
		}
	}
	if _, err := withPFree.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	st, ctl := withPFree.Snapshot().ApplyStats(), control.Snapshot().ApplyStats()
	if st == nil || !st.TrussRepaired {
		t.Fatalf("Apply fell back to a rebuild: %+v", st)
	}
	if want := ctl.RankingsPatched + len(AllMeasures()); st.RankingsPatched != want {
		t.Fatalf("RankingsPatched = %d, want %d (control %d + one pfree patch per measure)",
			st.RankingsPatched, want, ctl.RankingsPatched)
	}
	// The patched rankings are already in the new cache — Apply carried
	// them forward; a query must not have to re-derive them.
	cache := withPFree.Snapshot().cache
	cache.mu.Lock()
	for _, m := range AllMeasures() {
		if cache.pfrank[m] == nil {
			cache.mu.Unlock()
			t.Fatalf("pfree ranking for %s missing after Apply; patch dropped it", m)
		}
	}
	cache.mu.Unlock()

	cold, err := Open(withPFree.Graph())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMeasures() {
		q := NewQuery(0, 12, ViaEngine("pfree"), WithMeasure(m), WithContexts())
		got, _, err := withPFree.TopR(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want, _, err := cold.TopR(ctx, q)
		if err != nil {
			t.Fatalf("%s (cold): %v", m, err)
		}
		if !reflect.DeepEqual(got.TopR, want.TopR) || !reflect.DeepEqual(got.Contexts, want.Contexts) {
			t.Fatalf("%s: patched pfree answer diverges from a cold rebuild\n got %v\nwant %v",
				m, got.TopR, want.TopR)
		}
	}
	if cache.builds != 0 {
		t.Fatalf("builds = %d after post-Apply pfree queries, want 0", cache.builds)
	}
}
