package bitset

import (
	"testing"
	"testing/quick"

	"trussdiv/internal/testutil"
)

func TestSetGetClear(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestAndCountMatchesNaive(t *testing.T) {
	rng := testutil.Rand(t, 1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		inA := make([]bool, n)
		inB := make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				inA[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Set(i)
				inB[i] = true
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if inA[i] && inB[i] {
				want++
			}
		}
		if got := a.AndCount(b); got != want {
			t.Fatalf("n=%d AndCount = %d, want %d", n, got, want)
		}
		var iterated []int
		a.ForEachAnd(b, func(i int) bool { iterated = append(iterated, i); return true })
		if len(iterated) != want {
			t.Fatalf("ForEachAnd visited %d bits, want %d", len(iterated), want)
		}
		for j := 1; j < len(iterated); j++ {
			if iterated[j-1] >= iterated[j] {
				t.Fatalf("ForEachAnd not ascending: %v", iterated)
			}
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
	count = 0
	s.ForEachAnd(s, func(i int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("ForEachAnd early stop visited %d, want 3", count)
	}
}

func TestClone(t *testing.T) {
	s := New(70)
	s.Set(5)
	s.Set(69)
	c := s.Clone()
	c.Clear(5)
	if !s.Get(5) {
		t.Fatal("Clone is not independent")
	}
	if !c.Get(69) || c.Get(5) {
		t.Fatal("Clone content wrong")
	}
}

// Property: AndCount is symmetric and bounded by both counts.
func TestAndCountProperties(t *testing.T) {
	f := func(bitsA, bitsB []uint16) bool {
		n := 512
		a, b := New(n), New(n)
		for _, i := range bitsA {
			a.Set(int(i) % n)
		}
		for _, i := range bitsB {
			b.Set(int(i) % n)
		}
		ab, ba := a.AndCount(b), b.AndCount(a)
		if ab != ba {
			return false
		}
		return ab <= a.Count() && ab <= b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolReuse(t *testing.T) {
	var p Pool
	s := p.Get(100)
	s.Set(3)
	p.Put(s)
	s2 := p.Get(50)
	if s2.Len() != 50 {
		t.Fatalf("recycled Len = %d, want 50", s2.Len())
	}
	if s2.Count() != 0 {
		t.Fatal("recycled bitmap not zeroed")
	}
	s3 := p.Get(4096) // larger than recycled capacity
	if s3.Len() != 4096 || s3.Count() != 0 {
		t.Fatal("grown bitmap wrong")
	}
}
