// Package bitset provides dense, fixed-width bitmaps used as the adjacency
// representation in bitmap-based truss decomposition (paper §6.2).
//
// A Set holds n bits packed into 64-bit words. The operations required by
// the decomposition are bit set/clear/test, popcount of the intersection of
// two sets (edge support = |N(u) AND N(v)|), and iteration over the
// intersection (enumerating the common neighbors of an edge's endpoints).
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-size bitmap of n bits. The zero value is an empty bitmap
// of zero bits; use New to create a sized one.
type Set struct {
	words []uint64
	n     int
}

// New returns a bitmap able to hold n bits, all initially zero.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the number of bits the set can hold.
func (s *Set) Len() int { return s.n }

// Set sets bit i to 1.
func (s *Set) Set(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear sets bit i to 0.
func (s *Set) Clear(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Get reports whether bit i is 1.
func (s *Set) Get(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of 1 bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset zeroes every bit, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// AndCount returns |s AND t|, the popcount of the intersection. The two sets
// must have the same length. This is the bitmap edge-support primitive:
// sup(u,v) = Bits_u AndCount Bits_v.
func (s *Set) AndCount(t *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & t.words[i])
	}
	return c
}

// ForEachAnd calls fn for every bit index set in both s and t, in ascending
// order. Returning false from fn stops the iteration.
func (s *Set) ForEachAnd(t *Set, fn func(i int) bool) {
	for wi, w := range s.words {
		w &= t.words[wi]
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEach calls fn for every set bit in ascending order. Returning false
// from fn stops the iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(base + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Pool amortizes bitmap allocation across many ego-network decompositions.
// Get hands out zeroed sets of the requested width; Put recycles them.
// It is not safe for concurrent use.
type Pool struct {
	free []*Set
}

// Get returns a zeroed bitmap with at least n bits of capacity and a logical
// length of exactly n bits.
func (p *Pool) Get(n int) *Set {
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		need := (n + wordBits - 1) / wordBits
		if cap(s.words) < need {
			s.words = make([]uint64, need)
		} else {
			s.words = s.words[:need]
			for i := range s.words {
				s.words[i] = 0
			}
		}
		s.n = n
		return s
	}
	return New(n)
}

// Put recycles a bitmap for later reuse.
func (p *Pool) Put(s *Set) {
	if s != nil {
		p.free = append(p.free, s)
	}
}
