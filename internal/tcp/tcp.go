// Package tcp implements the TCP-index (Triangle Connectivity Preserving
// index) of Huang et al., SIGMOD 2014 — the state-of-the-art k-truss
// community index the paper compares its TSD-index against in §8.2 and
// Figure 18.
//
// A k-truss community is a maximal connected k-truss whose edges are
// pairwise reachable through adjacent triangles (triangle connectivity).
// The TCP-index keeps, per vertex v, a maximum spanning forest of v's
// neighborhood where an edge (u,w) with u,w ∈ N(v) is weighted by
// w(u,w) = min{τ(u,v), τ(v,w), τ(u,w)} — the highest k for which the
// triangle △uvw survives inside a k-truss. The contrast with TSD
// (paper Fig. 18): TCP weights speak about *global* truss communities,
// TSD weights about trussness *local to the ego-network*.
package tcp

import (
	"sort"

	"trussdiv/internal/dsu"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// ForestEdge is one edge of a vertex's TCP forest. U and W are global
// vertex IDs (both neighbors of the index vertex); Wt is the triangle
// weight min{τ(uv), τ(vw), τ(uw)}.
type ForestEdge struct {
	U, W int32
	Wt   int32
}

// Index is the TCP-index of a graph: per-vertex maximum spanning forests
// over triangle weights, plus the global edge trussness used for
// community reconstruction.
type Index struct {
	g      *graph.Graph
	tau    []int32        // global edge trussness
	forest [][]ForestEdge // per vertex, weight-descending
}

// Build constructs the TCP-index: one global truss decomposition, then a
// Kruskal maximum spanning forest per neighborhood over triangle weights.
func Build(g *graph.Graph) *Index {
	tau := truss.Decompose(g)
	idx := &Index{g: g, tau: tau, forest: make([][]ForestEdge, g.N())}

	// Collect the weighted neighborhood edges of every vertex in one
	// global triangle pass: triangle (u,v,w) contributes edge (v,w) to
	// u's forest graph, (u,w) to v's, and (u,v) to w's, all with weight
	// min of the three trussnesses.
	counts := make([]int32, g.N())
	g.ForEachTriangle(func(t graph.Triangle) bool {
		counts[t.U]++
		counts[t.V]++
		counts[t.W]++
		return true
	})
	off := make([]int64, g.N()+1)
	for v := 0; v < g.N(); v++ {
		off[v+1] = off[v] + int64(counts[v])
	}
	edges := make([]ForestEdge, off[g.N()])
	cursor := make([]int64, g.N())
	copy(cursor, off[:g.N()])
	g.ForEachTriangle(func(t graph.Triangle) bool {
		wt := t3min(idx.tau[t.EUV], idx.tau[t.EUW], idx.tau[t.EVW])
		put := func(center, a, b int32) {
			edges[cursor[center]] = ForestEdge{U: a, W: b, Wt: wt}
			cursor[center]++
		}
		put(t.U, t.V, t.W)
		put(t.V, t.U, t.W)
		put(t.W, t.U, t.V)
		return true
	})

	for v := int32(0); int(v) < g.N(); v++ {
		idx.forest[v] = maxSpanningForest(g, v, edges[off[v]:off[v+1]])
	}
	return idx
}

func t3min(a, b, c int32) int32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// maxSpanningForest runs Kruskal over v's weighted neighborhood edges.
// Neighbor IDs are mapped to local slots via the sorted neighbor list.
func maxSpanningForest(g *graph.Graph, v int32, edges []ForestEdge) []ForestEdge {
	if len(edges) == 0 {
		return nil
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Wt > edges[j].Wt })
	nbr := g.Neighbors(v)
	local := func(global int32) int32 {
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= global })
		return int32(i)
	}
	d := dsu.New(len(nbr))
	out := make([]ForestEdge, 0, len(nbr)-1)
	for _, e := range edges {
		if d.Union(local(e.U), local(e.W)) {
			out = append(out, e)
			if len(out) == len(nbr)-1 {
				break
			}
		}
	}
	return out
}

// Graph returns the indexed graph.
func (idx *Index) Graph() *graph.Graph { return idx.g }

// Trussness returns the global trussness of edge (u,v), 0 when absent.
func (idx *Index) Trussness(u, v int32) int32 {
	id := idx.g.EdgeID(u, v)
	if id < 0 {
		return 0
	}
	return idx.tau[id]
}

// Forest returns v's TCP forest (weight-descending). Aliases storage.
func (idx *Index) Forest(v int32) []ForestEdge { return idx.forest[v] }

// CommunityCount returns the number of distinct k-truss communities that
// contain vertex v. Forest components at level k seed the communities,
// but two components can belong to ONE community when its triangle
// connectivity routes through triangles outside N(v), so — exactly as in
// Huang et al.'s query algorithm — seeds already covered by a
// reconstructed community are skipped.
func (idx *Index) CommunityCount(v int32, k int32) int {
	return len(idx.CommunitiesOf(v, k))
}

// CommunitiesOf reconstructs the k-truss communities containing v as
// sorted vertex sets: one triangle-connected BFS per still-uncovered
// forest component seed.
func (idx *Index) CommunitiesOf(v int32, k int32) [][]int32 {
	forest := idx.forest[v]
	p := sort.Search(len(forest), func(i int) bool { return forest[i].Wt < k })
	if p == 0 {
		return nil
	}
	nbr := idx.g.Neighbors(v)
	local := func(global int32) int32 {
		i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= global })
		return int32(i)
	}
	d := dsu.New(len(nbr))
	for _, e := range forest[:p] {
		d.Union(local(e.U), local(e.W))
	}
	seeds := map[int32]graph.Edge{} // component root -> a seed edge (v,u)
	for _, e := range forest[:p] {
		root := d.Find(local(e.U))
		if _, ok := seeds[root]; !ok {
			// (v, e.U) is an edge of the community: its trussness is >= k
			// because the triangle weight through v is >= k.
			seeds[root] = graph.Edge{U: v, V: e.U}
		}
	}
	covered := map[int32]bool{} // edge IDs already claimed by a community
	out := make([][]int32, 0, len(seeds))
	for _, seed := range seeds {
		seedID := idx.g.EdgeID(seed.U, seed.V)
		if covered[seedID] {
			continue // same community as an earlier seed
		}
		verts, edges := idx.communityFrom(seedID, k)
		for _, id := range edges {
			covered[id] = true
		}
		out = append(out, verts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// TriangleConnectedCommunity returns the sorted vertex set of the k-truss
// community containing the given edge: BFS over edges of trussness >= k
// through shared triangles whose third edge also has trussness >= k.
func (idx *Index) TriangleConnectedCommunity(seed graph.Edge, k int32) []int32 {
	startID := idx.g.EdgeID(seed.U, seed.V)
	if startID < 0 || idx.tau[startID] < k {
		return nil
	}
	verts, _ := idx.communityFrom(startID, k)
	return verts
}

// communityFrom runs the triangle-connectivity BFS from an edge known to
// have trussness >= k, returning the community's sorted vertex set and
// its member edge IDs.
func (idx *Index) communityFrom(startID int32, k int32) ([]int32, []int32) {
	g, tau := idx.g, idx.tau
	visited := map[int32]bool{startID: true}
	queue := []int32{startID}
	edges := []int32{startID}
	verts := map[int32]struct{}{}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		e := g.Edge(id)
		verts[e.U] = struct{}{}
		verts[e.V] = struct{}{}
		// Expand through every triangle on this edge whose other two
		// edges also sit in the k-truss.
		an, ai := g.Arcs(e.U)
		bn, bi := g.Arcs(e.V)
		i, j := 0, 0
		for i < len(an) && j < len(bn) {
			switch {
			case an[i] < bn[j]:
				i++
			case an[i] > bn[j]:
				j++
			default:
				e1, e2 := ai[i], bi[j]
				if tau[e1] >= k && tau[e2] >= k {
					for _, y := range [2]int32{e1, e2} {
						if !visited[y] {
							visited[y] = true
							queue = append(queue, y)
							edges = append(edges, y)
						}
					}
				}
				i++
				j++
			}
		}
	}
	out := make([]int32, 0, len(verts))
	for v := range verts {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, edges
}
