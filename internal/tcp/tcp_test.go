package tcp

import (
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

func TestFig18Contrast(t *testing.T) {
	// The paper's Figure 18: for the same vertex q1, TCP forest weights
	// are all 4 (every ego edge lives in a global 4-truss community),
	// while TSD forest weights are {3,3,3,3,2} (local ego trussness).
	g := gen.Fig18Graph()
	tcpIdx := Build(g)
	tsdIdx := core.BuildTSDIndex(g)

	tcpForest := tcpIdx.Forest(gen.Fig18Q1)
	if len(tcpForest) != 5 {
		t.Fatalf("TCP forest has %d edges, want 5", len(tcpForest))
	}
	for _, e := range tcpForest {
		if e.Wt != 4 {
			t.Fatalf("TCP forest edge (%d,%d) weight = %d, want 4", e.U, e.W, e.Wt)
		}
	}

	tsdForest := tsdIdx.Forest(gen.Fig18Q1)
	if len(tsdForest) != 5 {
		t.Fatalf("TSD forest has %d edges, want 5", len(tsdForest))
	}
	weights := map[int32]int{}
	for _, e := range tsdForest {
		weights[e.T]++
	}
	if weights[3] != 4 || weights[2] != 1 {
		t.Fatalf("TSD forest weights = %v, want four 3s and one 2 (paper Fig. 18c)", weights)
	}

	// The headline contrast on edge (q2,q3): globally a 4-truss edge
	// (via z5,z6), locally trussness 2 in the ego of q1.
	if got := tcpIdx.Trussness(gen.Fig18Q2, gen.Fig18Q3); got != 4 {
		t.Fatalf("global tau(q2,q3) = %d, want 4", got)
	}
	scorer := core.NewScorer(g)
	if got := scorer.EgoTrussness(gen.Fig18Q1, gen.Fig18Q2, gen.Fig18Q3); got != 2 {
		t.Fatalf("tau_ego(q1)(q2,q3) = %d, want 2", got)
	}
}

func TestFig18Communities(t *testing.T) {
	g := gen.Fig18Graph()
	idx := Build(g)
	// At k=4, q1 belongs to ONE triangle-connected 4-truss community
	// (the two K4s through q1 share edge (q1,q2)-(q1,q3)? they connect
	// through q2-q3? Verify against the reconstruction.)
	count := idx.CommunityCount(gen.Fig18Q1, 4)
	comms := idx.CommunitiesOf(gen.Fig18Q1, 4)
	if count != len(comms) {
		t.Fatalf("CommunityCount %d != reconstructed %d", count, len(comms))
	}
	for _, c := range comms {
		if len(c) < 4 {
			t.Fatalf("4-truss community too small: %v", c)
		}
	}
	// k above the max trussness: nothing.
	if idx.CommunityCount(gen.Fig18Q1, 9) != 0 {
		t.Fatal("no 9-truss community should exist")
	}
	if idx.CommunitiesOf(gen.Fig18Q1, 9) != nil {
		t.Fatal("CommunitiesOf should be nil above max trussness")
	}
}

func TestDisjointCliqueCommunities(t *testing.T) {
	// A hub joined to three disjoint K5s: at k=5... each K5+hub gives a
	// dense block; use k=4 so each block is one community through the hub.
	b := graph.NewBuilder(1)
	next := int32(1)
	for c := 0; c < 3; c++ {
		members := make([]int32, 4)
		for i := range members {
			members[i] = next
			next++
			b.AddEdge(0, members[i])
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	g := b.Build()
	idx := Build(g)
	// Each block {hub, m1..m4} is a K5: trussness 5 edges, and the three
	// blocks only meet at the hub, so they are triangle-disconnected.
	if got := idx.CommunityCount(0, 5); got != 3 {
		t.Fatalf("hub 5-truss communities = %d, want 3", got)
	}
	comms := idx.CommunitiesOf(0, 5)
	if len(comms) != 3 {
		t.Fatalf("reconstructed %d communities, want 3", len(comms))
	}
	for _, c := range comms {
		if len(c) != 5 {
			t.Fatalf("community size = %d, want 5 (K5 incl. hub)", len(c))
		}
		if c[0] != 0 {
			t.Fatalf("community %v should contain the hub", c)
		}
	}
}

// naiveCommunity computes the triangle-connected k-truss community of an
// edge by brute force, as an oracle for the BFS reconstruction.
func naiveCommunity(g *graph.Graph, tau []int32, seed graph.Edge, k int32) []int32 {
	id := g.EdgeID(seed.U, seed.V)
	if id < 0 || tau[id] < k {
		return nil
	}
	inSet := map[int32]bool{id: true}
	for changed := true; changed; {
		changed = false
		for eid := int32(0); int(eid) < g.M(); eid++ {
			if inSet[eid] || tau[eid] < k {
				continue
			}
			e := g.Edge(eid)
			// eid joins if it shares a qualifying triangle with a member.
			cn := g.CommonNeighbors(nil, e.U, e.V)
			for _, w := range cn {
				e1, e2 := g.EdgeID(e.U, w), g.EdgeID(e.V, w)
				if tau[e1] < k || tau[e2] < k {
					continue
				}
				if inSet[e1] || inSet[e2] {
					inSet[eid] = true
					changed = true
					break
				}
			}
		}
	}
	verts := map[int32]struct{}{}
	for eid := range inSet {
		e := g.Edge(eid)
		verts[e.U] = struct{}{}
		verts[e.V] = struct{}{}
	}
	out := make([]int32, 0, len(verts))
	for v := range verts {
		out = append(out, v)
	}
	sortInt32s(out)
	return out
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func TestCommunityMatchesNaive(t *testing.T) {
	rng := testutil.Rand(t, 3)
	for trial := 0; trial < 12; trial++ {
		n := 18 + trial
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		idx := Build(g)
		for _, k := range []int32{3, 4} {
			for id := int32(0); int(id) < g.M(); id += 3 {
				e := g.Edge(id)
				got := idx.TriangleConnectedCommunity(e, k)
				want := naiveCommunity(g, idx.tau, e, k)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d k=%d edge (%d,%d): got %v, want %v",
						trial, k, e.U, e.V, got, want)
				}
			}
		}
	}
}

func TestCommunityCountMatchesReconstruction(t *testing.T) {
	rng := testutil.Rand(t, 8)
	for trial := 0; trial < 8; trial++ {
		n := 20 + trial*2
		b := graph.NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		idx := Build(g)
		for v := int32(0); int(v) < g.N(); v++ {
			for k := int32(3); k <= 5; k++ {
				if idx.CommunityCount(v, k) != len(idx.CommunitiesOf(v, k)) {
					t.Fatalf("trial %d v=%d k=%d: count/reconstruction mismatch", trial, v, k)
				}
			}
		}
	}
}
