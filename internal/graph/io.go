package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list (the SNAP text
// format): one "u v" pair per line, '#' or '%' lines are comments. Vertex
// labels are arbitrary non-negative integers; they are relabeled to dense
// IDs 0..n-1 in ascending label order. The returned slice maps dense ID
// back to the original label.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct{ u, v int64 }
	var raw []rawEdge
	labelSet := map[int64]struct{}{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		raw = append(raw, rawEdge{u, v})
		labelSet[u] = struct{}{}
		labelSet[v] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: read: %w", err)
	}
	labels := make([]int64, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	dense := make(map[int64]int32, len(labels))
	for i, l := range labels {
		dense[l] = int32(i)
	}
	b := NewBuilder(len(labels))
	for _, e := range raw {
		b.AddEdge(dense[e.u], dense[e.v])
	}
	return b.Build(), labels, nil
}

// WriteEdgeList writes g in SNAP text format, one canonical "u v" line per
// edge, preceded by a comment header.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# undirected simple graph: %d vertices, %d edges\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const binaryMagic = uint32(0x54535147) // "TSQG"

// WriteBinary writes g in a compact little-endian binary format:
// magic, n, m, then m (u,v) int32 pairs.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := [3]uint32{binaryMagic, uint32(g.N()), uint32(g.M())}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.edges); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	// Read edges in bounded chunks so a corrupt header's edge count fails
	// at EOF instead of forcing one giant up-front allocation.
	const chunk = 1 << 16
	edges := make([]Edge, 0, min(int(hdr[2]), chunk))
	remaining := int(hdr[2])
	buf := make([]Edge, 0, chunk)
	for remaining > 0 {
		n := min(remaining, chunk)
		buf = buf[:n]
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: binary edges: %w", err)
		}
		edges = append(edges, buf...)
		remaining -= n
	}
	return FromEdges(int(hdr[1]), edges)
}
