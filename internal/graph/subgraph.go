package graph

import "sort"

// InducedSubgraph returns the subgraph of g induced by the given vertex set
// (paper Def. 1 uses this to form ego-networks). The result relabels
// vertices to 0..len(verts)-1 following the sorted order of verts;
// local2global maps the new IDs back to g's IDs. Duplicate input vertices
// are collapsed.
func (g *Graph) InducedSubgraph(verts []int32) (sub *Graph, local2global []int32) {
	vs := make([]int32, len(verts))
	copy(vs, verts)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	vs = dedupInt32(vs)

	b := NewBuilder(len(vs))
	for local, v := range vs {
		for _, w := range g.Neighbors(v) {
			if w <= v { // each edge once, from its lower endpoint
				continue
			}
			if lw := indexOf(vs, w); lw >= 0 {
				b.AddEdge(int32(local), lw)
			}
		}
	}
	return b.Build(), vs
}

// FilterEdges returns the subgraph of g keeping only edges for which
// keep(edgeID) is true. Vertex IDs are preserved (no relabeling), so
// vertices may become isolated.
func (g *Graph) FilterEdges(keep func(id int32) bool) *Graph {
	kept := make([]Edge, 0, g.M())
	for id, e := range g.edges {
		if keep(int32(id)) {
			kept = append(kept, e)
		}
	}
	return fromCanonicalEdges(g.N(), kept)
}

func dedupInt32(s []int32) []int32 {
	out := s[:0]
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// indexOf binary-searches a sorted slice and returns the index of v or -1.
func indexOf(sorted []int32, v int32) int32 {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	if i < len(sorted) && sorted[i] == v {
		return int32(i)
	}
	return -1
}
