package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Self-loops are
// rejected and duplicate edges (in either orientation) are collapsed, so the
// result is always a simple undirected graph.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a Builder for a graph with at least n vertices.
// Vertices are implicit: AddEdge grows the vertex count as needed.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: int32(n)}
}

// Reset discards the accumulated edges and re-targets the builder at a
// graph with at least n vertices, keeping the edge slab for reuse. The
// zero Builder is valid, so Reset also initializes one for scratch use.
func (b *Builder) Reset(n int) {
	if n < 0 {
		n = 0
	}
	b.n = int32(n)
	b.edges = b.edges[:0]
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build finalizes the graph: deduplicates edges, assigns edge IDs in sorted
// (U,V) order, and lays out the CSR arrays.
func (b *Builder) Build() *Graph {
	b.canonicalize()
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	return fromCanonicalEdges(int(b.n), edges)
}

// canonicalize sorts b.edges by (U,V) and drops duplicates in place. The
// common producers (ego extraction, canonical readers) append edges
// already strictly ordered, so a linear pre-check skips the sort.
func (b *Builder) canonicalize() {
	if edgesCanonical(b.edges) {
		return
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup
}

// edgesCanonical reports whether edges are strictly (U,V)-sorted, i.e.
// already deduplicated and in ID order.
func edgesCanonical(edges []Edge) bool {
	for i := 1; i < len(edges); i++ {
		p, e := edges[i-1], edges[i]
		if p.U > e.U || (p.U == e.U && p.V >= e.V) {
			return false
		}
	}
	return true
}

// Scratch owns the recycled slabs BuildInto lays a Graph out into. The
// zero value is ready to use. A Scratch must not be copied after first
// use, and the Graph returned by BuildInto aliases it: both are valid
// only until the next BuildInto on the same Scratch.
type Scratch struct {
	off    []int64
	cursor []int64
	adj    []int32
	eid    []int32
	edges  []Edge
	g      Graph
}

// BuildInto finalizes the graph like Build but into s's recycled slabs
// instead of fresh allocations, so a steady-state caller (per-vertex ego
// extraction) allocates nothing once the slabs have grown to the working
// size. The returned *Graph — and every slice it hands out (Neighbors,
// Arcs, Edges, CSR) — is a view over s, invalidated by the next
// BuildInto on s. Callers that need the graph to escape use Build.
func (b *Builder) BuildInto(s *Scratch) *Graph {
	b.canonicalize()
	n := int(b.n)
	s.edges = append(s.edges[:0], b.edges...)
	m := len(s.edges)
	s.off = growInt64(s.off, n+1)
	s.cursor = growInt64(s.cursor, n)
	s.adj = growInt32(s.adj, 2*m)
	s.eid = growInt32(s.eid, 2*m)
	layoutCSR(n, s.edges, s.off, s.adj, s.eid, s.cursor)
	s.g.off = s.off
	s.g.adj = s.adj
	s.g.eid = s.eid
	s.g.edges = s.edges
	s.g.fp.Store(nil) // the previous occupant's digest no longer applies
	return &s.g
}

func growInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// FromEdges builds a graph with n vertices from the given edge list.
// Edges may appear in any orientation and may contain duplicates or
// self-loops; the result is a simple graph. Endpoints must be < n.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if e.U >= int32(n) || e.V >= int32(n) || e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// fromCanonicalEdges lays out the CSR arrays from a deduplicated edge list
// already sorted by (U,V) with U < V. Edge i gets ID i.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	off := make([]int64, n+1)
	adj := make([]int32, 2*len(edges))
	eid := make([]int32, 2*len(edges))
	cursor := make([]int64, n)
	layoutCSR(n, edges, off, adj, eid, cursor)
	return &Graph{off: off, adj: adj, eid: eid, edges: edges}
}

// layoutCSR fills the CSR arrays from a canonical edge list. Each
// vertex's arc range is written as two ascending runs by two passes over
// the ID-ordered edges: the first pass lays down lower neighbors (for a
// fixed V the U values arrive ascending because the list is U-major),
// the second upper neighbors (for a fixed U the V values are ascending
// within U's contiguous block). Every lower neighbor precedes every
// upper one, so adjacency comes out fully sorted with no per-vertex
// sort and no allocation. cursor is caller-owned scratch of length n.
func layoutCSR(n int, edges []Edge, off []int64, adj, eid []int32, cursor []int64) {
	for i := 0; i <= n; i++ {
		off[i] = 0
	}
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	copy(cursor, off[:n])
	for id, e := range edges {
		adj[cursor[e.V]] = e.U
		eid[cursor[e.V]] = int32(id)
		cursor[e.V]++
	}
	// After the first pass cursor[v] sits exactly past v's lower run,
	// i.e. at the start of its upper run.
	for id, e := range edges {
		adj[cursor[e.U]] = e.V
		eid[cursor[e.U]] = int32(id)
		cursor[e.U]++
	}
}
