package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Self-loops are
// rejected and duplicate edges (in either orientation) are collapsed, so the
// result is always a simple undirected graph.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a Builder for a graph with at least n vertices.
// Vertices are implicit: AddEdge grows the vertex count as needed.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: int32(n)}
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
func (b *Builder) AddEdge(u, v int32) {
	if u == v || u < 0 || v < 0 {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build finalizes the graph: deduplicates edges, assigns edge IDs in sorted
// (U,V) order, and lays out the CSR arrays.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	edges := make([]Edge, len(dedup))
	copy(edges, dedup)
	return fromCanonicalEdges(int(b.n), edges)
}

// FromEdges builds a graph with n vertices from the given edge list.
// Edges may appear in any orientation and may contain duplicates or
// self-loops; the result is a simple graph. Endpoints must be < n.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if e.U >= int32(n) || e.V >= int32(n) || e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// fromCanonicalEdges lays out the CSR arrays from a deduplicated edge list
// already sorted by (U,V) with U < V. Edge i gets ID i.
func fromCanonicalEdges(n int, edges []Edge) *Graph {
	off := make([]int64, n+1)
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	adj := make([]int32, 2*len(edges))
	eid := make([]int32, 2*len(edges))
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for id, e := range edges {
		adj[cursor[e.U]] = e.V
		eid[cursor[e.U]] = int32(id)
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		eid[cursor[e.V]] = int32(id)
		cursor[e.V]++
	}
	// Neighbor lists of U are filled in increasing V because the edge list is
	// sorted, but the lists of V accumulate U values out of order; sort each
	// adjacency slice (with its parallel eid slice) to restore the invariant.
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if hi-lo > 1 && !int32sSorted(adj[lo:hi]) {
			sortArcs(adj[lo:hi], eid[lo:hi])
		}
	}
	return &Graph{off: off, adj: adj, eid: eid, edges: edges}
}

func int32sSorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			return false
		}
	}
	return true
}

// sortArcs sorts a neighbor slice and keeps the edge-ID slice parallel.
func sortArcs(nbr, ids []int32) {
	type arc struct{ n, id int32 }
	arcs := make([]arc, len(nbr))
	for i := range nbr {
		arcs[i] = arc{nbr[i], ids[i]}
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].n < arcs[j].n })
	for i, a := range arcs {
		nbr[i], ids[i] = a.n, a.id
	}
}
