package graph

import (
	"bytes"
	"strings"
	"testing"

	"trussdiv/internal/testutil"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment
10 20
20 30

30 10
10 20
`
	g, labels, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3,3", g.N(), g.M())
	}
	want := []int64{10, 20, 30}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("want error for one-field line")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("want error for non-integer field")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := testutil.Rand(t, 3)
	b := NewBuilder(30)
	for i := 0; i < 120; i++ {
		b.AddEdge(int32(rng.Intn(30)), int32(rng.Intn(30)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("round trip M = %d, want %d", g2.M(), g.M())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := testutil.Rand(t, 4)
	b := NewBuilder(25)
	for i := 0; i < 80; i++ {
		b.AddEdge(int32(rng.Intn(25)), int32(rng.Intn(25)))
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip N,M = %d,%d want %d,%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for id := int32(0); int(id) < g.M(); id++ {
		if g.Edge(id) != g2.Edge(id) {
			t.Fatalf("edge %d differs after round trip", id)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("want error for bad magic")
	}
}

func TestReadBinaryCorruptEdgeCount(t *testing.T) {
	g := gen(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Lie about the edge count: reading must fail at EOF, not OOM.
	for i := 8; i < 12; i++ {
		data[i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt edge count accepted")
	}
}

// gen builds a small graph for the corrupt-input tests.
func gen(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	return b.Build()
}
