package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList hardens the text edge-list loader that sits on the
// server's graph-loading path: arbitrary input must either parse into a
// structurally valid graph or return an error — never panic, and never
// produce a graph that violates the simple-graph invariants the engines
// rely on.
func FuzzLoadEdgeList(f *testing.F) {
	for _, seed := range []string{
		"",
		"# comment only\n",
		"% matrix-market comment\n1 2\n",
		"0 1\n1 2\n2 0\n",
		"10 20\n20 30\n",
		"1 1\n",                    // self-loop: dropped by the builder
		"3 4\n4 3\n3 4\n",          // duplicates in both orientations
		"-5 7\n",                   // negative labels are relabeled, not rejected
		"9999999999999 0\n",        // labels near int64 range
		"1 2 3 extra fields\n",     // trailing fields are ignored
		"1\n",                      // too few fields: error
		"a b\n",                    // non-integer: error
		"1 99999999999999999999\n", // overflows int64: error
		"\x00\x01\x02",
		strings.Repeat("7 8\n", 100),
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, labels, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			if g != nil || labels != nil {
				t.Fatalf("non-nil results alongside error %v", err)
			}
			return
		}
		if g.N() != len(labels) {
			t.Fatalf("graph has %d vertices but %d labels", g.N(), len(labels))
		}
		for i := 1; i < len(labels); i++ {
			if labels[i-1] >= labels[i] {
				t.Fatalf("labels not strictly ascending at %d: %v", i, labels[i-1:i+1])
			}
		}
		// Simple-graph invariants: no self-loops, canonical orientation,
		// endpoints in range.
		seen := make(map[[2]int32]bool, g.M())
		for id := int32(0); int(id) < g.M(); id++ {
			e := g.Edge(id)
			if e.U >= e.V {
				t.Fatalf("edge %d = (%d,%d) not canonical", id, e.U, e.V)
			}
			if e.U < 0 || int(e.V) >= g.N() {
				t.Fatalf("edge %d = (%d,%d) out of range [0,%d)", id, e.U, e.V, g.N())
			}
			key := [2]int32{e.U, e.V}
			if seen[key] {
				t.Fatalf("duplicate edge (%d,%d)", e.U, e.V)
			}
			seen[key] = true
		}
		// Round-trip: writing and re-reading preserves the structure.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		back, _, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if back.M() != g.M() {
			t.Fatalf("round-trip edges %d, want %d", back.M(), g.M())
		}
	})
}
