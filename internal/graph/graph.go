// Package graph provides the undirected simple-graph substrate the paper's
// algorithms run on (paper §2): a CSR-style adjacency structure with sorted
// neighbor lists, stable edge identifiers, triangle listing, connected
// components, induced subgraphs, and edge-list I/O.
//
// Vertices are dense int32 identifiers 0..N()-1. Every undirected edge
// {u,v} has a single edge ID in 0..M()-1; both directed arcs carry that ID,
// which lets per-edge algorithms (support counting, truss peeling) index
// flat arrays.
package graph

import "sort"

// Edge is an undirected edge with canonical orientation U < V.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected simple graph in CSR form.
// Build one with a Builder, FromEdges, or the readers in this package.
type Graph struct {
	off   []int   // len N()+1; arc range of vertex v is adj[off[v]:off[v+1]]
	adj   []int32 // len 2*M(); sorted neighbors per vertex
	eid   []int32 // len 2*M(); edge ID parallel to adj
	edges []Edge  // len M(); edges[id] is the canonical endpoint pair
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return g.off[v+1] - g.off[v] }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// Arcs returns the sorted neighbor list of v together with the parallel
// slice of edge IDs. Both slices alias internal storage.
func (g *Graph) Arcs(v int32) (neighbors, edgeIDs []int32) {
	return g.adj[g.off[v]:g.off[v+1]], g.eid[g.off[v]:g.off[v+1]]
}

// Edge returns the canonical endpoints of edge id.
func (g *Graph) Edge(id int32) Edge { return g.edges[id] }

// Edges returns the full edge list indexed by edge ID. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int32) bool { return g.EdgeID(u, v) >= 0 }

// EdgeID returns the ID of edge {u,v}, or -1 when absent. It binary-searches
// the shorter adjacency list, so it costs O(log min(d(u), d(v))).
func (g *Graph) EdgeID(u, v int32) int32 {
	if u == v {
		return -1
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbr, ids := g.Arcs(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	if i < len(nbr) && nbr[i] == v {
		return ids[i]
	}
	return -1
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(int32(v)); d > best {
			best = d
		}
	}
	return best
}

// DegreeOrder returns the vertices sorted by (degree, id) ascending, along
// with rank[v] giving each vertex's position in that order. This "degeneracy
// style" ordering orients triangle listing so each triangle is enumerated
// exactly once.
func (g *Graph) DegreeOrder() (order []int32, rank []int32) {
	n := g.N()
	order = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank = make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	return order, rank
}

// ArboricityBound returns the classical upper bound on the arboricity used
// in the paper's complexity statements: ρ ≤ min{⌊√m⌋, d_max}.
func (g *Graph) ArboricityBound() int {
	m := g.M()
	s := 0
	for (s+1)*(s+1) <= m {
		s++
	}
	if d := g.MaxDegree(); d < s {
		return d
	}
	return s
}
