// Package graph provides the undirected simple-graph substrate the paper's
// algorithms run on (paper §2): a CSR-style adjacency structure with sorted
// neighbor lists, stable edge identifiers, triangle listing, connected
// components, induced subgraphs, and edge-list I/O.
//
// Vertices are dense int32 identifiers 0..N()-1. Every undirected edge
// {u,v} has a single edge ID in 0..M()-1; both directed arcs carry that ID,
// which lets per-edge algorithms (support counting, truss peeling) index
// flat arrays.
package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
)

// Edge is an undirected edge with canonical orientation U < V.
type Edge struct {
	U, V int32
}

// Graph is an immutable undirected simple graph in CSR form.
// Build one with a Builder, FromEdges, FromCSR, or the readers in this
// package. All four CSR arrays use fixed-width element types so the layout
// is identical on 32- and 64-bit builds and can be serialized (or mmap'd
// back) as raw little-endian slabs.
type Graph struct {
	off   []int64 // len N()+1; arc range of vertex v is adj[off[v]:off[v+1]]
	adj   []int32 // len 2*M(); sorted neighbors per vertex
	eid   []int32 // len 2*M(); edge ID parallel to adj
	edges []Edge  // len M(); edges[id] is the canonical endpoint pair

	// fp memoizes Fingerprint. An atomic pointer rather than a sync.Once
	// so Builder.BuildInto can reset it when a Scratch-owned Graph is
	// relaid over recycled slabs; racing recomputations store identical
	// digests, so last-write-wins is safe.
	fp atomic.Pointer[[32]byte]
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.off) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// Arcs returns the sorted neighbor list of v together with the parallel
// slice of edge IDs. Both slices alias internal storage.
func (g *Graph) Arcs(v int32) (neighbors, edgeIDs []int32) {
	return g.adj[g.off[v]:g.off[v+1]], g.eid[g.off[v]:g.off[v+1]]
}

// Edge returns the canonical endpoints of edge id.
func (g *Graph) Edge(id int32) Edge { return g.edges[id] }

// Edges returns the full edge list indexed by edge ID. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Fingerprint returns the SHA-256 identity of the graph: a domain string,
// the vertex and edge counts, and every canonical edge in ID order, all
// little-endian. Two graphs with the same structure hash identically on any
// platform. The digest is computed once per Graph and memoized — the graph
// is immutable — so repeated callers (index persistence, store validation)
// pay the hash exactly once per process.
func (g *Graph) Fingerprint() [32]byte {
	if p := g.fp.Load(); p != nil {
		return *p
	}
	h := sha256.New()
	h.Write([]byte("trussdiv-graph-v1"))
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(g.N()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.M()))
	h.Write(hdr[:])
	// Encode edges by hand in bounded chunks: reflection-based encoding
	// of the whole edge list would dominate the hash itself.
	const chunk = 1 << 13
	buf := make([]byte, 0, 8*chunk)
	edges := g.edges
	for len(edges) > 0 {
		n := min(len(edges), chunk)
		buf = buf[:0]
		for _, e := range edges[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
		}
		h.Write(buf)
		edges = edges[n:]
	}
	var fp [32]byte
	h.Sum(fp[:0])
	g.fp.Store(&fp)
	return fp
}

// CSR returns the four raw CSR arrays: the arc offset table (len N()+1),
// the sorted neighbor list and parallel edge-ID list (len 2*M() each), and
// the canonical edge list (len M()). All returned slices alias internal
// storage and must not be modified; they are exactly the slabs FromCSR
// accepts, which is what lets a serialized graph round-trip with zero
// re-encoding.
func (g *Graph) CSR() (off []int64, adj, eid []int32, edges []Edge) {
	return g.off, g.adj, g.eid, g.edges
}

// FromCSR adopts pre-built CSR arrays without copying them — the caller
// promises the slices stay immutable for the life of the graph (they may be
// views into a read-only mmap). The layout is validated structurally
// (lengths, offset monotonicity, neighbor sort order, ID ranges) in O(n+m)
// but edge IDs are trusted to match the canonical (U,V)-sorted assignment;
// use Fingerprint-style checks upstream when the source is untrusted.
func FromCSR(off []int64, adj, eid []int32, edges []Edge) (*Graph, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("graph: FromCSR: empty offset table")
	}
	n, m := len(off)-1, len(edges)
	if len(adj) != 2*m || len(eid) != 2*m {
		return nil, fmt.Errorf("graph: FromCSR: adj/eid length %d/%d, want %d", len(adj), len(eid), 2*m)
	}
	if off[0] != 0 || off[n] != int64(2*m) {
		return nil, fmt.Errorf("graph: FromCSR: offset table spans [%d,%d], want [0,%d]", off[0], off[n], 2*m)
	}
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: FromCSR: offsets decrease at vertex %d", v)
		}
		for i := lo; i < hi; i++ {
			if w := adj[i]; w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: FromCSR: neighbor %d of vertex %d out of range", w, v)
			} else if i > lo && adj[i-1] >= w {
				return nil, fmt.Errorf("graph: FromCSR: neighbors of vertex %d not strictly sorted", v)
			}
			if id := eid[i]; id < 0 || int(id) >= m {
				return nil, fmt.Errorf("graph: FromCSR: edge ID %d at vertex %d out of range", id, v)
			}
		}
	}
	for id, e := range edges {
		if e.U >= e.V || e.U < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("graph: FromCSR: edge %d (%d,%d) not canonical for %d vertices", id, e.U, e.V, n)
		}
	}
	return &Graph{off: off, adj: adj, eid: eid, edges: edges}, nil
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (g *Graph) HasEdge(u, v int32) bool { return g.EdgeID(u, v) >= 0 }

// EdgeID returns the ID of edge {u,v}, or -1 when absent. It binary-searches
// the shorter adjacency list, so it costs O(log min(d(u), d(v))).
func (g *Graph) EdgeID(u, v int32) int32 {
	if u == v {
		return -1
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nbr, ids := g.Arcs(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	if i < len(nbr) && nbr[i] == v {
		return ids[i]
	}
	return -1
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(int32(v)); d > best {
			best = d
		}
	}
	return best
}

// DegreeOrder returns the vertices sorted by (degree, id) ascending, along
// with rank[v] giving each vertex's position in that order. This "degeneracy
// style" ordering orients triangle listing so each triangle is enumerated
// exactly once.
func (g *Graph) DegreeOrder() (order []int32, rank []int32) {
	n := g.N()
	order = make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	rank = make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	return order, rank
}

// ArboricityBound returns the classical upper bound on the arboricity used
// in the paper's complexity statements: ρ ≤ min{⌊√m⌋, d_max}.
func (g *Graph) ArboricityBound() int {
	m := g.M()
	s := 0
	for (s+1)*(s+1) <= m {
		s++
	}
	if d := g.MaxDegree(); d < s {
		return d
	}
	return s
}
