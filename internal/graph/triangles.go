package graph

// Triangle listing and per-edge support computation. This is the substrate
// for truss decomposition (paper §3.1) and for one-shot ego-network
// extraction (paper §6.2). The "forward" algorithm orients every edge from
// the lower-(degree, id) endpoint to the higher one and intersects oriented
// out-neighborhoods, so each triangle is enumerated exactly once in
// O(ρ·m) time, where ρ is the arboricity (Chiba–Nishizeki [9]).

// Triangle is one triangle: vertices U < V < W in the (degree, id) order
// used for orientation, plus the IDs of its three edges.
type Triangle struct {
	U, V, W       int32
	EUV, EUW, EVW int32
}

// ForEachTriangle calls fn once per triangle in g. Returning false from fn
// stops the enumeration early.
func (g *Graph) ForEachTriangle(fn func(t Triangle) bool) {
	_, rank := g.DegreeOrder()
	n := g.N()
	// out[v] holds the neighbors of v that rank above v, with edge IDs.
	type arc struct{ to, id int32 }
	outOff := make([]int, n+1)
	for v := 0; v < n; v++ {
		nbr := g.Neighbors(int32(v))
		c := 0
		for _, w := range nbr {
			if rank[w] > rank[v] {
				c++
			}
		}
		outOff[v+1] = outOff[v] + c
	}
	out := make([]arc, outOff[n])
	cursor := make([]int, n)
	copy(cursor, outOff[:n])
	for v := 0; v < n; v++ {
		nbr, ids := g.Arcs(int32(v))
		for i, w := range nbr {
			if rank[w] > rank[int32(v)] {
				out[cursor[v]] = arc{w, ids[i]}
				cursor[v]++
			}
		}
	}
	// Out-neighbor lists inherit sortedness by vertex ID from the CSR order,
	// which is what the merge intersection below requires.
	for v := 0; v < n; v++ {
		a := out[outOff[v]:outOff[v+1]]
		for i := range a {
			// For each oriented edge v->w, intersect out[v] and out[w].
			w := a[i].to
			bw := out[outOff[w]:outOff[w+1]]
			ai, bi := 0, 0
			for ai < len(a) && bi < len(bw) {
				switch {
				case a[ai].to < bw[bi].to:
					ai++
				case a[ai].to > bw[bi].to:
					bi++
				default:
					if !fn(Triangle{
						U: int32(v), V: w, W: a[ai].to,
						EUV: a[i].id, EUW: a[ai].id, EVW: bw[bi].id,
					}) {
						return
					}
					ai++
					bi++
				}
			}
		}
	}
}

// CountTriangles returns the total number of triangles in g.
func (g *Graph) CountTriangles() int64 {
	var t int64
	g.ForEachTriangle(func(Triangle) bool { t++; return true })
	return t
}

// Supports returns sup[e] = the number of triangles containing edge e,
// indexed by edge ID (paper §2.2).
func (g *Graph) Supports() []int32 {
	sup := make([]int32, g.M())
	g.ForEachTriangle(func(t Triangle) bool {
		sup[t.EUV]++
		sup[t.EUW]++
		sup[t.EVW]++
		return true
	})
	return sup
}

// TrianglesPerVertex returns tv[v] = the number of triangles containing v.
// tv[v] equals m_v, the edge count of v's ego-network (paper Lemma 2).
func (g *Graph) TrianglesPerVertex() []int32 {
	tv := make([]int32, g.N())
	g.ForEachTriangle(func(t Triangle) bool {
		tv[t.U]++
		tv[t.V]++
		tv[t.W]++
		return true
	})
	return tv
}

// CommonNeighbors appends to dst every vertex adjacent to both u and v,
// using a merge over the two sorted adjacency lists, and returns dst.
func (g *Graph) CommonNeighbors(dst []int32, u, v int32) []int32 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
