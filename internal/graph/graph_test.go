package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trussdiv/internal/testutil"
)

// k4 returns the complete graph on 4 vertices.
func k4(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	for u := int32(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 2) // self loop, dropped
	b.AddEdge(1, 3)
	g := b.Build()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 1) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 3) {
		t.Fatal("unexpected edges present")
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0", g.Degree(2))
	}
}

func TestEdgeIDsConsistent(t *testing.T) {
	g := k4(t)
	seen := map[int32]bool{}
	for u := int32(0); u < 4; u++ {
		nbr, ids := g.Arcs(u)
		for i, v := range nbr {
			id := ids[i]
			e := g.Edge(id)
			if !(e.U == u && e.V == v || e.U == v && e.V == u) {
				t.Fatalf("edge %d endpoints %v, arc (%d,%d)", id, e, u, v)
			}
			if g.EdgeID(u, v) != id || g.EdgeID(v, u) != id {
				t.Fatalf("EdgeID(%d,%d) inconsistent with arc id %d", u, v, id)
			}
			seen[id] = true
		}
	}
	if len(seen) != g.M() {
		t.Fatalf("saw %d distinct edge IDs, want %d", len(seen), g.M())
	}
}

func TestNeighborsSortedAndDegreeSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		sum := 0
		for v := 0; v < g.N(); v++ {
			nbr := g.Neighbors(int32(v))
			for i := 1; i < len(nbr); i++ {
				if nbr[i-1] >= nbr[i] {
					return false // not strictly sorted => dup or disorder
				}
			}
			sum += len(nbr)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrianglesK4(t *testing.T) {
	g := k4(t)
	if got := g.CountTriangles(); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
	for _, s := range g.Supports() {
		if s != 2 {
			t.Fatalf("K4 edge support = %d, want 2", s)
		}
	}
	for _, c := range g.TrianglesPerVertex() {
		if c != 3 {
			t.Fatalf("K4 vertex triangle count = %d, want 3", c)
		}
	}
}

// naiveTriangles counts triangles by checking all vertex triples.
func naiveTriangles(g *Graph) int64 {
	var c int64
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				continue
			}
			for w := v + 1; w < n; w++ {
				if g.HasEdge(u, w) && g.HasEdge(v, w) {
					c++
				}
			}
		}
	}
	return c
}

func TestTrianglesMatchNaive(t *testing.T) {
	rng := testutil.Rand(t, 7)
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < n*n/3; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		want := naiveTriangles(g)
		if got := g.CountTriangles(); got != want {
			t.Fatalf("trial %d: CountTriangles = %d, naive = %d", trial, got, want)
		}
		// Sum of supports equals 3T.
		var supSum int64
		for _, s := range g.Supports() {
			supSum += int64(s)
		}
		if supSum != 3*want {
			t.Fatalf("trial %d: support sum %d != 3T=%d", trial, supSum, 3*want)
		}
		// Sum of per-vertex counts equals 3T as well.
		var tvSum int64
		for _, c := range g.TrianglesPerVertex() {
			tvSum += int64(c)
		}
		if tvSum != 3*want {
			t.Fatalf("trial %d: vertex triangle sum %d != 3T=%d", trial, tvSum, 3*want)
		}
	}
}

func TestTriangleEdgeIDsValid(t *testing.T) {
	rng := testutil.Rand(t, 11)
	n := 40
	b := NewBuilder(n)
	for i := 0; i < 300; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	g := b.Build()
	g.ForEachTriangle(func(tr Triangle) bool {
		if g.EdgeID(tr.U, tr.V) != tr.EUV || g.EdgeID(tr.U, tr.W) != tr.EUW || g.EdgeID(tr.V, tr.W) != tr.EVW {
			t.Fatalf("triangle %+v has wrong edge IDs", tr)
		}
		return true
	})
}

func TestCommonNeighbors(t *testing.T) {
	b := NewBuilder(6)
	// 0-1, 0-2, 0-3, 1-2, 1-3, 4-5
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(4, 5)
	g := b.Build()
	got := g.CommonNeighbors(nil, 0, 1)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("CommonNeighbors(0,1) = %v, want [2 3]", got)
	}
	if cn := g.CommonNeighbors(nil, 0, 4); len(cn) != 0 {
		t.Fatalf("CommonNeighbors(0,4) = %v, want empty", cn)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build() // {0,1,2}, {3,4}, {5}, {6}
	labels, count := g.ConnectedComponents()
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if labels[0] != labels[2] || labels[3] != labels[4] {
		t.Fatal("same-component vertices got different labels")
	}
	if labels[0] == labels[3] || labels[5] == labels[6] {
		t.Fatal("different components share a label")
	}
}

func TestBFSOrder(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	order := g.BFSOrder(0)
	if len(order) != 3 || order[0] != 0 {
		t.Fatalf("BFSOrder(0) = %v", order)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := k4(t)
	sub, l2g := g.InducedSubgraph([]int32{3, 1, 2, 2})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: N=%d M=%d", sub.N(), sub.M())
	}
	want := []int32{1, 2, 3}
	for i, v := range l2g {
		if v != want[i] {
			t.Fatalf("local2global = %v, want %v", l2g, want)
		}
	}
}

func TestFilterEdges(t *testing.T) {
	g := k4(t)
	sub := g.FilterEdges(func(id int32) bool { return g.Edge(id).U == 0 })
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("filtered star: N=%d M=%d", sub.N(), sub.M())
	}
	if sub.Degree(0) != 3 || sub.Degree(1) != 1 {
		t.Fatal("filtered degrees wrong")
	}
}

func TestDegreeOrder(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 2)
	g := b.Build() // degrees: 0:3, 1:2, 2:2, 3:1
	order, rank := g.DegreeOrder()
	wantOrder := []int32{3, 1, 2, 0}
	for i := range wantOrder {
		if order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", order, wantOrder)
		}
		if rank[order[i]] != int32(i) {
			t.Fatal("rank inconsistent with order")
		}
	}
}

func TestArboricityBound(t *testing.T) {
	g := k4(t)
	// m=6 => floor(sqrt 6)=2; dmax=3 => bound 2
	if got := g.ArboricityBound(); got != 2 {
		t.Fatalf("ArboricityBound = %d, want 2", got)
	}
}

func TestFromEdgesValidation(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	g, err := FromEdges(5, []Edge{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 1 {
		t.Fatalf("N=%d M=%d, want 5,1", g.N(), g.M())
	}
}
