package graph

import (
	"reflect"
	"testing"
)

func csrTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(0)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5}, {4, 6}, {5, 6}, {2, 6},
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestCSRFixedWidth pins the serialization contract the index store
// depends on: the CSR offset array is []int64 — not platform-width int —
// so a file written on a 32-bit host is byte-identical to one written on
// a 64-bit host. The assignments below stop compiling if a field drifts
// back to a platform-width type.
func TestCSRFixedWidth(t *testing.T) {
	g := csrTestGraph(t)
	off, adj, eid, edges := g.CSR()
	var _ []int64 = off
	var _ []int32 = adj
	var _ []int32 = eid
	var _ []Edge = edges
	if len(off) != g.N()+1 {
		t.Fatalf("len(off) = %d, want n+1 = %d", len(off), g.N()+1)
	}
	if off[0] != 0 || off[g.N()] != int64(2*g.M()) {
		t.Fatalf("off bounds = [%d, %d], want [0, %d]", off[0], off[g.N()], 2*g.M())
	}
}

// TestFromCSRRoundTrip rebuilds a graph from its own CSR arrays (the way
// a mmap reader materializes the store's graph section) and checks the
// adopted graph behaves identically.
func TestFromCSRRoundTrip(t *testing.T) {
	g := csrTestGraph(t)
	back, err := FromCSR(g.CSR())
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("size changed: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	if !reflect.DeepEqual(back.Edges(), g.Edges()) {
		t.Fatal("edge list changed across the CSR round trip")
	}
	for v := int32(0); int(v) < g.N(); v++ {
		if back.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d) = %d, want %d", v, back.Degree(v), g.Degree(v))
		}
		if !reflect.DeepEqual(back.Neighbors(v), g.Neighbors(v)) {
			t.Fatalf("neighbors(%d) changed across the round trip", v)
		}
	}
}

// TestFromCSRValidates rejects structurally impossible CSR arrays instead
// of adopting them: a mmap reader feeds this constructor bytes from disk,
// so every invariant the rest of the library assumes must be checked here.
func TestFromCSRValidates(t *testing.T) {
	g := csrTestGraph(t)
	off, adj, eid, edges := g.CSR()

	clone := func(off []int64) []int64 { return append([]int64(nil), off...) }

	bad := clone(off)
	bad[0] = 1
	if _, err := FromCSR(bad, adj, eid, edges); err == nil {
		t.Error("off[0] != 0 accepted")
	}
	bad = clone(off)
	bad[len(bad)-1]++
	if _, err := FromCSR(bad, adj, eid, edges); err == nil {
		t.Error("off[n] != 2m accepted")
	}
	bad = clone(off)
	if len(bad) > 2 {
		bad[1], bad[2] = bad[2], bad[1]
		if bad[1] != bad[2] {
			if _, err := FromCSR(bad, adj, eid, edges); err == nil {
				t.Error("non-monotone off accepted")
			}
		}
	}
	badAdj := append([]int32(nil), adj...)
	badAdj[0] = int32(g.N()) + 5
	if _, err := FromCSR(off, badAdj, eid, edges); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	badEid := append([]int32(nil), eid...)
	badEid[0] = int32(g.M()) + 5
	if _, err := FromCSR(off, adj, badEid, edges); err == nil {
		t.Error("out-of-range edge ID accepted")
	}
	badEdges := append([]Edge(nil), edges...)
	badEdges[0].U, badEdges[0].V = badEdges[0].V, badEdges[0].U
	if _, err := FromCSR(off, adj, eid, badEdges); err == nil {
		t.Error("non-canonical edge (U > V) accepted")
	}
}
