package graph

// ConnectedComponents labels every vertex with a component ID in
// 0..count-1 and returns (labels, count). Isolated vertices form their own
// components.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, 64)
	for s := int32(0); s < int32(n); s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				if labels[w] < 0 {
					labels[w] = int32(count)
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// BFSOrder returns the vertices reachable from src in breadth-first order
// (including src).
func (g *Graph) BFSOrder(src int32) []int32 {
	seen := make([]bool, g.N())
	order := make([]int32, 0, 64)
	seen[src] = true
	order = append(order, src)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				order = append(order, w)
			}
		}
	}
	return order
}
