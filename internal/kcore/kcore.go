// Package kcore implements k-core decomposition, the substrate of the
// core-based structural diversity baseline (Core-Div, paper §7 and [20]).
// A k-core is the largest subgraph in which every vertex has degree at
// least k; the core number of a vertex is the largest k such that a k-core
// contains it. Decomposition is the classic O(n+m) bin-sort peeling of
// Batagelj–Zaveršnik.
package kcore

import (
	"trussdiv/internal/graph"
)

// Decompose returns core[v] = the core number of every vertex of g.
func Decompose(g *graph.Graph) []int32 {
	n := g.N()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bin sort vertices by degree.
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		c := binStart[d]
		binStart[d] = start
		start += c
	}
	binStart[maxDeg+1] = start
	sorted := make([]int32, n)
	pos := make([]int32, n)
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := int32(0); int(v) < n; v++ {
		d := deg[v]
		sorted[cursor[d]] = v
		pos[v] = cursor[d]
		cursor[d]++
	}
	for i := 0; i < n; i++ {
		v := sorted[i]
		core[v] = deg[v]
		for _, w := range g.Neighbors(v) {
			if deg[w] <= deg[v] {
				continue // already peeled or at the current level
			}
			d := deg[w]
			p, q := pos[w], binStart[d]
			if p != q {
				other := sorted[q]
				sorted[p], sorted[q] = other, w
				pos[w], pos[other] = q, p
			}
			binStart[d]++
			deg[w] = d - 1
		}
	}
	return core
}

// Components returns the vertex sets of the maximal connected k-cores of
// g: connected components of the subgraph induced by vertices with core
// number >= k, each sorted, ordered by first vertex. For k >= 1 vertices
// with no qualifying neighbor still form singleton components only if
// their core number qualifies (which for k >= 1 implies an edge, so
// singletons appear only for k = 0). All groups share one flat backing
// array; loops should reuse a Scratch via Scratch.Components instead.
func Components(g *graph.Graph, core []int32, k int32) [][]int32 {
	return new(Scratch).Components(g, core, k)
}

// CountComponents returns the number of maximal connected k-cores without
// materializing them. Loops should reuse a Scratch via
// Scratch.CountComponents instead.
func CountComponents(g *graph.Graph, core []int32, k int32) int {
	return new(Scratch).CountComponents(g, core, k)
}

// Degeneracy returns the maximum core number, a classical upper bound on
// graph arboricity minus one and a common density measure.
func Degeneracy(core []int32) int32 {
	best := int32(0)
	for _, c := range core {
		if c > best {
			best = c
		}
	}
	return best
}
