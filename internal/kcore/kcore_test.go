package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

// naiveCore computes core numbers by repeated peeling with full rescans.
func naiveCore(g *graph.Graph) []int32 {
	n := g.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	core := make([]int32, n)
	remaining := n
	k := int32(0)
	degOf := func(v int32) int32 {
		d := int32(0)
		for _, w := range g.Neighbors(v) {
			if alive[w] {
				d++
			}
		}
		return d
	}
	for remaining > 0 {
		for {
			peeled := false
			for v := int32(0); int(v) < n; v++ {
				if alive[v] && degOf(v) <= k {
					alive[v] = false
					core[v] = k
					remaining--
					peeled = true
				}
			}
			if !peeled {
				break
			}
		}
		k++
	}
	return core
}

func randGraph(n, extra int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < extra; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestDecomposeClique(t *testing.T) {
	g := gen.Clique(6)
	for v, c := range Decompose(g) {
		if c != 5 {
			t.Fatalf("K6 core(%d) = %d, want 5", v, c)
		}
	}
}

func TestDecomposeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		want := naiveCore(g)
		got := Decompose(g)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComponents(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(4), gen.Clique(5), gen.Cycle(6))
	core := Decompose(g)
	// k=3: the two cliques qualify (core 3 and 4), the cycle (core 2) does not.
	comps := Components(g, core, 3)
	if len(comps) != 2 {
		t.Fatalf("3-core components = %d, want 2", len(comps))
	}
	if CountComponents(g, core, 3) != 2 {
		t.Fatal("CountComponents mismatch")
	}
	// k=2: all three.
	if CountComponents(g, core, 2) != 3 {
		t.Fatal("2-core components should be 3")
	}
	if Degeneracy(core) != 4 {
		t.Fatalf("degeneracy = %d, want 4", Degeneracy(core))
	}
}

// Property: core number <= degree, and the k-core subgraph has min degree k.
func TestCoreInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(25)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		core := Decompose(g)
		for v := 0; v < n; v++ {
			if core[v] > int32(g.Degree(int32(v))) {
				return false
			}
		}
		k := Degeneracy(core)
		// Within the k-core induced subgraph every member has >= k members
		// as neighbors.
		member := make([]bool, n)
		for v := 0; v < n; v++ {
			member[v] = core[v] >= k
		}
		for v := 0; v < n; v++ {
			if !member[v] {
				continue
			}
			d := 0
			for _, w := range g.Neighbors(int32(v)) {
				if member[w] {
					d++
				}
			}
			if int32(d) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchMatchesAllocatePath pins the reusable-Scratch contract for
// the core-based measure: one Scratch reused across many graphs matches
// the allocate-path Decompose/Components/CountComponents exactly.
func TestScratchMatchesAllocatePath(t *testing.T) {
	var s Scratch
	graphs := []*graph.Graph{
		gen.Fig1Graph(),
		randGraph(40, 300, 41),
		randGraph(12, 40, 42),
		randGraph(60, 500, 43),
		randGraph(5, 0, 44),
	}
	for gi, g := range graphs {
		wantCore := Decompose(g)
		gotCore := s.DecomposeInto(g)
		for v := range wantCore {
			if gotCore[v] != wantCore[v] {
				t.Fatalf("graph %d: core[%d] = %d, want %d", gi, v, gotCore[v], wantCore[v])
			}
		}
		maxC := int32(0)
		for _, c := range wantCore {
			if c > maxC {
				maxC = c
			}
		}
		for k := int32(1); k <= maxC+1; k++ {
			want := new(Scratch).Components(g, wantCore, k)
			got := s.Components(g, gotCore, k)
			if len(got) != len(want) {
				t.Fatalf("graph %d k=%d: %d components, want %d", gi, k, len(got), len(want))
			}
			for ci := range want {
				if len(got[ci]) != len(want[ci]) {
					t.Fatalf("graph %d k=%d comp %d: size mismatch", gi, k, ci)
				}
				for vi := range want[ci] {
					if got[ci][vi] != want[ci][vi] {
						t.Fatalf("graph %d k=%d comp %d[%d]: %d want %d",
							gi, k, ci, vi, got[ci][vi], want[ci][vi])
					}
				}
			}
			if n := s.CountComponents(g, gotCore, k); n != len(want) {
				t.Fatalf("graph %d k=%d: CountComponents = %d, want %d", gi, k, n, len(want))
			}
		}
	}
}
