package kcore

import (
	"math"

	"trussdiv/internal/dsu"
	"trussdiv/internal/graph"
)

// Scratch owns the reusable peeling and counting state one worker needs
// to core-decompose and score ego-network-sized graphs without
// allocating in steady state. The zero value is ready to use. A Scratch
// is not safe for concurrent use — each worker owns exactly one — and
// the slice returned by DecomposeInto is a view over the Scratch, valid
// only until its next use. See DESIGN.md "Scratch ownership contract".
type Scratch struct {
	core     []int32
	deg      []int32
	binStart []int32
	sorted   []int32
	pos      []int32
	cursor   []int32

	d         dsu.DSU
	rootGroup []int32
	rootStamp []int32
	groupLen  []int32
	stamp     int32
}

// DecomposeInto is Decompose over s's recycled storage. The returned
// core numbers are owned by s and valid only until the next
// DecomposeInto.
func (s *Scratch) DecomposeInto(g *graph.Graph) []int32 {
	n := g.N()
	s.core = growI32(s.core, n)
	if n == 0 {
		return s.core
	}
	s.deg = growI32(s.deg, n)
	core, deg := s.core, s.deg
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bin sort vertices by degree.
	s.binStart = growI32(s.binStart, int(maxDeg)+2)
	binStart := s.binStart
	for i := range binStart {
		binStart[i] = 0
	}
	for _, d := range deg {
		binStart[d]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		c := binStart[d]
		binStart[d] = start
		start += c
	}
	binStart[maxDeg+1] = start
	s.sorted = growI32(s.sorted, n)
	s.pos = growI32(s.pos, n)
	s.cursor = growI32(s.cursor, int(maxDeg)+1)
	sorted, pos, cursor := s.sorted, s.pos, s.cursor
	copy(cursor, binStart[:maxDeg+1])
	for v := int32(0); int(v) < n; v++ {
		d := deg[v]
		sorted[cursor[d]] = v
		pos[v] = cursor[d]
		cursor[d]++
	}
	for i := 0; i < n; i++ {
		v := sorted[i]
		core[v] = deg[v]
		for _, w := range g.Neighbors(v) {
			if deg[w] <= deg[v] {
				continue // already peeled or at the current level
			}
			d := deg[w]
			p, q := pos[w], binStart[d]
			if p != q {
				other := sorted[q]
				sorted[p], sorted[q] = other, w
				pos[w], pos[other] = q, p
			}
			binStart[d]++
			deg[w] = d - 1
		}
	}
	return core
}

// CountComponents is the package-level CountComponents over scratch
// storage: zero allocations in steady state.
func (s *Scratch) CountComponents(g *graph.Graph, core []int32, k int32) int {
	n := g.N()
	s.d.Init(n)
	count := 0
	for v := 0; v < n; v++ {
		if core[v] >= k {
			count++
		}
	}
	for _, e := range g.Edges() {
		if core[e.U] >= k && core[e.V] >= k && s.d.Union(e.U, e.V) {
			count--
		}
	}
	return count
}

// Components is the package-level Components with scratch-backed
// transients: only the returned groups (one flat member array plus the
// group headers) are allocated. Groups come out sorted by first member
// with ascending members, identical to Components.
func (s *Scratch) Components(g *graph.Graph, core []int32, k int32) [][]int32 {
	n := g.N()
	s.d.Init(n)
	members := 0
	for v := 0; v < n; v++ {
		if core[v] >= k {
			members++
		}
	}
	for _, e := range g.Edges() {
		if core[e.U] >= k && core[e.V] >= k {
			s.d.Union(e.U, e.V)
		}
	}
	stamp := s.nextStamp(n)
	s.rootGroup = growI32(s.rootGroup, n)
	s.groupLen = s.groupLen[:0]
	for v := int32(0); int(v) < n; v++ {
		if core[v] < k {
			continue
		}
		r := s.d.Find(v)
		if s.rootStamp[r] != stamp {
			s.rootStamp[r] = stamp
			s.rootGroup[r] = int32(len(s.groupLen))
			s.groupLen = append(s.groupLen, 0)
		}
		s.groupLen[s.rootGroup[r]]++
	}
	flat := make([]int32, 0, members)
	out := make([][]int32, 0, len(s.groupLen))
	for _, l := range s.groupLen {
		start := len(flat)
		out = append(out, flat[start:start:start+int(l)])
		flat = flat[:start+int(l)]
	}
	for v := int32(0); int(v) < n; v++ {
		if core[v] < k {
			continue
		}
		gi := s.rootGroup[s.d.Find(v)]
		out[gi] = append(out[gi], v)
	}
	return out
}

// nextStamp sizes the stamped root-mark array for n vertices and returns
// a fresh stamp; on (astronomically rare) wraparound the marks are
// cleared for real.
func (s *Scratch) nextStamp(n int) int32 {
	if cap(s.rootStamp) < n {
		s.rootStamp = make([]int32, n)
	}
	s.rootStamp = s.rootStamp[:n]
	if s.stamp == math.MaxInt32 {
		for i := range s.rootStamp {
			s.rootStamp[i] = 0
		}
		s.stamp = 0
	}
	s.stamp++
	return s.stamp
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
