package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"trussdiv"
)

// randomUpdates builds a valid edge batch: nIns fresh edges plus nDel
// existing ones, never overlapping. (Local copy of the bench package's
// helper — importing internal/bench here would create an import cycle,
// since its cluster experiment imports this package.)
func randomUpdates(g *trussdiv.Graph, rng *rand.Rand, nIns, nDel int) trussdiv.Updates {
	n := int32(g.N())
	var u trussdiv.Updates
	chosen := map[trussdiv.Edge]bool{}
	for len(u.Insert) < nIns {
		a, b := rng.Int31n(n), rng.Int31n(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := trussdiv.Edge{U: a, V: b}
		if g.HasEdge(a, b) || chosen[e] {
			continue
		}
		chosen[e] = true
		u.Insert = append(u.Insert, e)
	}
	edges := g.Edges()
	for len(u.Delete) < nDel && len(u.Delete) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		u.Delete = append(u.Delete, e)
	}
	return u
}

// testGraph is the shared cluster fixture: small enough that every shard
// DB prepares in milliseconds, structured enough that every engine and
// measure has real work to do.
func testGraph(tb testing.TB) *trussdiv.Graph {
	tb.Helper()
	return trussdiv.CommunityOverlay(trussdiv.OverlayConfig{
		N: 240, Attach: 3, Cliques: 48, MinSize: 4, MaxSize: 7, Seed: 17,
	})
}

func openDB(tb testing.TB, g *trussdiv.Graph) *trussdiv.DB {
	tb.Helper()
	db, err := trussdiv.Open(g)
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.Prepare(context.Background()); err != nil {
		tb.Fatal(err)
	}
	return db
}

// testShard is one worker process with an outage switch: while down, every
// request fails 503 before reaching the worker.
type testShard struct {
	worker *Worker
	srv    *httptest.Server
	down   atomic.Bool
}

func (s *testShard) addr() string { return strings.TrimPrefix(s.srv.URL, "http://") }

func startShard(tb testing.TB, g *trussdiv.Graph, lo, hi int32, opts ...WorkerOption) *testShard {
	tb.Helper()
	w, err := NewWorker(openDB(tb, g), lo, hi, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	sh := &testShard{worker: w}
	h := w.Handler()
	sh.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if sh.down.Load() {
			http.Error(rw, "injected outage", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(rw, r)
	}))
	tb.Cleanup(sh.srv.Close)
	return sh
}

// evenRanges splits [0, n) into count contiguous ranges.
func evenRanges(n, count int) [][2]int32 {
	out := make([][2]int32, count)
	for i := 0; i < count; i++ {
		out[i] = [2]int32{int32(i * n / count), int32((i + 1) * n / count)}
	}
	return out
}

// fastOpts keeps the robustness machinery snappy under test.
func fastOpts(extra ...CoordinatorOption) []CoordinatorOption {
	return append([]CoordinatorOption{
		WithShardTimeout(10 * time.Second),
		WithHedgeDelay(50 * time.Millisecond),
		WithRetries(1),
		WithBackoff(5 * time.Millisecond),
	}, extra...)
}

func startCluster(tb testing.TB, g *trussdiv.Graph, count int, opts ...CoordinatorOption) (*Coordinator, []*testShard) {
	tb.Helper()
	var shards []*testShard
	var groups [][]string
	for _, span := range evenRanges(g.N(), count) {
		sh := startShard(tb, g, span[0], span[1])
		shards = append(shards, sh)
		groups = append(groups, []string{sh.addr()})
	}
	coord, err := NewCoordinator(context.Background(), groups, fastOpts(opts...)...)
	if err != nil {
		tb.Fatal(err)
	}
	return coord, shards
}

// sameAnswer compares a cluster answer to a single-node one up to the
// epoch stamp.
func sameAnswer(tb testing.TB, label string, got, want *trussdiv.Result) {
	tb.Helper()
	if got == nil || want == nil {
		tb.Fatalf("%s: nil result (got %v, want %v)", label, got, want)
	}
	g, w := *got, *want
	g.Epoch, w.Epoch = 0, 0
	if !reflect.DeepEqual(g.TopR, w.TopR) {
		tb.Fatalf("%s: answers differ:\n got %v\nwant %v", label, g.TopR, w.TopR)
	}
	if !reflect.DeepEqual(g.Contexts, w.Contexts) {
		tb.Fatalf("%s: contexts differ:\n got %v\nwant %v", label, g.Contexts, w.Contexts)
	}
}

// TestCoordinatorByteEqualSingleNode is the acceptance bar of the
// cluster tier: for 1, 2, and 4 shards, every routable (engine, measure)
// pair — plus cost routing — answers byte-identically to a single node,
// contexts included, at several worker counts.
func TestCoordinatorByteEqualSingleNode(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	ctx := context.Background()

	type pair struct {
		engine  string
		measure trussdiv.Measure
	}
	pairs := []pair{}
	for _, mi := range single.Measures() {
		pairs = append(pairs, pair{"", mi.Measure}) // cost-routed
		for _, eng := range mi.Engines {
			pairs = append(pairs, pair{eng, mi.Measure})
		}
	}

	for _, count := range []int{1, 2, 4} {
		coord, _ := startCluster(t, g, count)
		for _, p := range pairs {
			for _, workers := range []int{0, 2} {
				label := fmt.Sprintf("shards=%d engine=%q measure=%s workers=%d",
					count, p.engine, p.measure, workers)
				k := int32(4)
				if p.engine == "pfree" {
					k = 0 // the parameter-free cell queries without a threshold
				}
				q := trussdiv.Query{
					K: k, R: 12, IncludeContexts: true,
					Engine: p.engine, Measure: p.measure, Workers: workers,
				}
				want, _, err := single.TopR(ctx, q)
				if err != nil {
					t.Fatalf("%s: single node: %v", label, err)
				}
				got, stats, err := coord.TopR(ctx, q)
				if err != nil {
					t.Fatalf("%s: cluster: %v", label, err)
				}
				if len(stats.Answered) != count {
					t.Fatalf("%s: %d/%d shards answered", label, len(stats.Answered), count)
				}
				sameAnswer(t, label, got, want)
			}
		}
	}
}

// TestClusterApplyEpochBarrier: an update batch streamed through the
// coordinator advances every worker to the same epoch, queries carry the
// new tag, and post-update answers still match a single node that
// applied the same batch.
func TestClusterApplyEpochBarrier(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	coord, shards := startCluster(t, g, 2)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(41))
	u := randomUpdates(g, rng, 6, 3)
	epoch, err := coord.Apply(ctx, u.Insert, u.Delete)
	if err != nil {
		t.Fatal(err)
	}
	if coord.Epoch() != epoch {
		t.Fatalf("cluster epoch %d, apply reported %d", coord.Epoch(), epoch)
	}
	for i, sh := range shards {
		if got := uint64(sh.worker.DB().Epoch()); got != epoch {
			t.Fatalf("shard %d at epoch %d after barrier, want %d", i, got, epoch)
		}
	}
	if _, err := single.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	if uint64(single.Epoch()) != epoch {
		t.Fatalf("single-node epoch %d, cluster %d", single.Epoch(), epoch)
	}

	q := trussdiv.Query{K: 4, R: 10, IncludeContexts: true}
	want, _, err := single.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := coord.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epoch != epoch {
		t.Fatalf("query ran at epoch %d, want %d", stats.Epoch, epoch)
	}
	sameAnswer(t, "post-apply", got, want)

	// A batch every worker rejects leaves the cluster untouched: same
	// epoch, no partial-apply error.
	present := u.Insert[0]
	if _, err := coord.Apply(ctx, []trussdiv.Edge{present}, nil); err == nil {
		t.Fatal("re-inserting a present edge succeeded")
	} else if errors.Is(err, ErrPartialApply) {
		t.Fatalf("uniform rejection reported as partial apply: %v", err)
	}
	if coord.Epoch() != epoch {
		t.Fatalf("rejected batch moved the cluster epoch to %d", coord.Epoch())
	}
}

// TestKilledShardDegradedModeAndRecovery: with every replica of one
// shard down, TopR returns the merged answer of the survivors plus a
// typed *PartialResultError naming the dead shard; once the shard is
// back, answers are complete and exact again.
func TestKilledShardDegradedModeAndRecovery(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	coord, shards := startCluster(t, g, 2, WithShardTimeout(2*time.Second), WithBackoff(time.Millisecond))
	ctx := context.Background()
	q := trussdiv.Query{K: 4, R: 8, IncludeContexts: true}

	shards[1].down.Store(true)
	res, stats, err := coord.TopR(ctx, q)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("err = %v, want ErrPartialResult", err)
	}
	var perr *PartialResultError
	if !errors.As(err, &perr) {
		t.Fatalf("err %T is not *PartialResultError", err)
	}
	if _, failed := perr.Failed[1]; !failed || len(perr.Failed) != 1 {
		t.Fatalf("Failed = %v, want exactly shard 1", perr.Failed)
	}
	if !reflect.DeepEqual(stats.Answered, []int{0}) {
		t.Fatalf("Answered = %v, want [0]", stats.Answered)
	}
	// The degraded answer is exactly the surviving shard's range answer.
	mid := int32(g.N() / 2)
	want, _, err := single.TopRRange(ctx, q, 0, mid)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "degraded", res, want)

	shards[1].down.Store(false)
	res, stats, err = coord.TopR(ctx, q)
	if err != nil {
		t.Fatalf("after recovery: %v", err)
	}
	if len(stats.Answered) != 2 {
		t.Fatalf("after recovery only %v answered", stats.Answered)
	}
	full, _, err := single.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "recovered", res, full)
}

// TestHedgedReadFiresByteExact: a slow primary makes the hedge timer
// fire the same request at the replica; the answer arrives from the fast
// copy and is still byte-exact.
func TestHedgedReadFiresByteExact(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	mid := int32(g.N() / 2)
	slow := startShard(t, g, 0, mid, WithDelay(2*time.Second))
	fast := startShard(t, g, 0, mid)
	other := startShard(t, g, mid, int32(g.N()))
	groups := [][]string{{slow.addr(), fast.addr()}, {other.addr()}}
	coord, err := NewCoordinator(context.Background(), groups,
		fastOpts(WithHedgeDelay(30*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := trussdiv.Query{K: 4, R: 10, IncludeContexts: true}
	start := time.Now()
	res, _, err := coord.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 1500*time.Millisecond {
		t.Fatalf("query took %v: the hedge never fired (slow primary delay is 2s)", took)
	}
	want, _, err := single.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "hedged", res, want)
	if hedges := coord.FanoutStats()[0].Hedges; hedges == 0 {
		t.Fatal("hedge counter never moved")
	}
}

// TestStaleEpochRaisesAndRetries: workers that advanced past the
// coordinator (their Apply landed out of band) fail the first fan-out
// typed; the coordinator adopts the higher epoch and the retried fan-out
// succeeds at it.
func TestStaleEpochRaisesAndRetries(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	coord, shards := startCluster(t, g, 2)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(43))
	u := randomUpdates(g, rng, 5, 2)
	for _, sh := range shards {
		if _, err := sh.worker.DB().Apply(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := single.Apply(ctx, u); err != nil {
		t.Fatal(err)
	}
	before := coord.Epoch()
	q := trussdiv.Query{K: 4, R: 10, IncludeContexts: true}
	res, stats, err := coord.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Retried {
		t.Fatal("fan-out was not retried despite stale coordinator epoch")
	}
	if stats.Epoch <= before || stats.Epoch != uint64(single.Epoch()) {
		t.Fatalf("retried query ran at epoch %d (coordinator had %d, workers %d)",
			stats.Epoch, before, single.Epoch())
	}
	want, _, err := single.TopR(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswer(t, "after epoch retry", res, want)
}

// TestWorkerEpochCatchup: a query tagged one epoch ahead parks on the
// worker until the replicated Apply lands, then answers from exactly the
// requested epoch; a tag past the catch-up window fails typed.
func TestWorkerEpochCatchup(t *testing.T) {
	g := testGraph(t)
	sh := startShard(t, g, 0, int32(g.N()))
	client := NewClient(sh.addr())
	ctx := context.Background()
	db := sh.worker.DB()

	target := uint64(db.Epoch()) + 1
	type reply struct {
		resp *shardTopRResponse
		err  error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := client.TopR(ctx, shardTopRRequest{K: 4, R: 5, Epoch: target})
		done <- reply{resp, err}
	}()
	time.Sleep(100 * time.Millisecond) // let the request park on WaitEpoch
	rng := rand.New(rand.NewSource(47))
	if _, err := db.Apply(ctx, randomUpdates(g, rng, 3, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.resp.Epoch != target {
			t.Fatalf("answered from epoch %d, want %d", r.resp.Epoch, target)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked query never answered after the apply landed")
	}

	// Beyond the catch-up window: typed stale failure with both epochs.
	impatient := startShard(t, g, 0, int32(g.N()), WithCatchup(50*time.Millisecond))
	ic := NewClient(impatient.addr())
	have := uint64(impatient.worker.DB().Epoch())
	_, err := ic.TopR(ctx, shardTopRRequest{K: 4, R: 5, Epoch: have + 7})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	var se *StaleEpochError
	if !errors.As(err, &se) || se.Want != have+7 || se.Have != have {
		t.Fatalf("stale error = %+v, want Want=%d Have=%d", se, have+7, have)
	}
}

// TestCoordinatorServerHTTP pins the coordinator's HTTP surface: the
// single-node /topr shape, /cluster status, point-query routing, apply,
// and the 206 degraded answer naming the failed shards.
func TestCoordinatorServerHTTP(t *testing.T) {
	g := testGraph(t)
	single := openDB(t, g)
	coord, shards := startCluster(t, g, 2, WithShardTimeout(2*time.Second), WithBackoff(time.Millisecond))
	srv := httptest.NewServer(NewCoordinatorServer(coord, 0).Handler())
	t.Cleanup(srv.Close)
	ctx := context.Background()

	getJSON := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := jsonDecode(resp, out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode
	}

	var health struct {
		Status string `json:"status"`
		Role   string `json:"role"`
		Shards int    `json:"shards"`
	}
	if code := getJSON("/healthz", &health); code != 200 || health.Role != "coordinator" || health.Shards != 2 {
		t.Fatalf("/healthz = %d %+v", code, health)
	}

	var status ClusterStatus
	if code := getJSON("/cluster", &status); code != 200 {
		t.Fatalf("/cluster = %d", code)
	}
	if len(status.Shards) != 2 || status.Vertices != g.N() {
		t.Fatalf("/cluster = %+v", status)
	}
	for _, sh := range status.Shards {
		for _, rep := range sh.Replicas {
			if !rep.Healthy {
				t.Fatalf("replica %s unhealthy in fresh cluster: %+v", rep.Addr, rep)
			}
		}
	}

	var topr struct {
		Engine   string `json:"engine"`
		Epoch    uint64 `json:"epoch"`
		Answered []int  `json:"answered_shards"`
		Failed   []int  `json:"failed_shards"`
		Results  []struct {
			Vertex int32 `json:"vertex"`
			Score  int   `json:"score"`
		} `json:"results"`
	}
	if code := getJSON("/topr?k=4&r=6", &topr); code != 200 {
		t.Fatalf("/topr = %d", code)
	}
	want, _, err := single.TopR(ctx, trussdiv.Query{K: 4, R: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(topr.Results) != len(want.TopR) {
		t.Fatalf("/topr returned %d rows, want %d", len(topr.Results), len(want.TopR))
	}
	for i, row := range topr.Results {
		if row.Vertex != want.TopR[i].V || row.Score != want.TopR[i].Score {
			t.Fatalf("/topr row %d = %+v, want %+v", i, row, want.TopR[i])
		}
	}

	// Point queries route to the owning shard and agree with a single node.
	v := want.TopR[0].V
	wantScore, err := single.ScoreMeasure(ctx, v, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	var score struct {
		Score int `json:"score"`
	}
	if code := getJSON(fmt.Sprintf("/score?v=%d&k=4", v), &score); code != 200 || score.Score != wantScore {
		t.Fatalf("/score = %d %+v, want score %d", code, score, wantScore)
	}

	// Degraded mode over HTTP: 206 with the failed shards named.
	shards[1].down.Store(true)
	if code := getJSON("/topr?k=4&r=6", &topr); code != http.StatusPartialContent {
		t.Fatalf("/topr with a dead shard = %d, want 206", code)
	}
	if !reflect.DeepEqual(topr.Failed, []int{1}) {
		t.Fatalf("failed_shards = %v, want [1]", topr.Failed)
	}
	shards[1].down.Store(false)

	// Caller errors stay 400s.
	var errBody struct {
		Error string `json:"error"`
	}
	if code := getJSON("/topr?k=4&r=6&engine=nope", &errBody); code != 400 || errBody.Error == "" {
		t.Fatalf("unknown engine = %d %+v", code, errBody)
	}
	if code := getJSON("/topr?k=4&r=6&candidates=1,2", &errBody); code != 400 {
		t.Fatalf("candidates param = %d, want 400", code)
	}

	// /metrics carries both endpoint histograms and fan-out stats.
	var m struct {
		Endpoints map[string]any `json:"endpoints"`
		Shards    []ShardStatus  `json:"shards"`
	}
	if code := getJSON("/metrics", &m); code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if len(m.Shards) != 2 || m.Endpoints["endpoints"] == nil || m.Endpoints["requests"] == nil {
		t.Fatalf("/metrics = %+v", m)
	}
	if m.Shards[0].Requests == 0 {
		t.Fatal("fan-out counters never moved")
	}
}

func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestParseShards(t *testing.T) {
	got, err := ParseShards("a:7001,b:7002|c:7003")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"a:7001"}, {"b:7002", "c:7003"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseShards = %v, want %v", got, want)
	}
	for _, bad := range []string{"", " ", "a:1,,b:2", "a:1||b:2"} {
		if _, err := ParseShards(bad); err == nil {
			t.Fatalf("ParseShards(%q) accepted", bad)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := ParseRange("10:250")
	if err != nil || lo != 10 || hi != 250 {
		t.Fatalf("ParseRange = %d,%d,%v", lo, hi, err)
	}
	for _, bad := range []string{"", "10", "a:b", ":5"} {
		if _, _, err := ParseRange(bad); err == nil {
			t.Fatalf("ParseRange(%q) accepted", bad)
		}
	}
}

// TestCoordinatorRejectsBrokenTopologies: overlapping, gapped, or
// range-disagreeing shard sets fail at construction, not at query time.
func TestCoordinatorRejectsBrokenTopologies(t *testing.T) {
	g := testGraph(t)
	n := int32(g.N())
	mid := n / 2
	a := startShard(t, g, 0, mid)
	b := startShard(t, g, mid, n)
	overlap := startShard(t, g, mid-10, n)
	short := startShard(t, g, mid, n-5)
	ctx := context.Background()

	cases := map[string][][]string{
		"gap":              {{a.addr()}},
		"overlap":          {{a.addr()}, {overlap.addr()}},
		"short":            {{a.addr()}, {short.addr()}},
		"replica-disagree": {{a.addr(), b.addr()}},
	}
	for name, groups := range cases {
		if _, err := NewCoordinator(ctx, groups, fastOpts()...); err == nil {
			t.Fatalf("%s topology accepted", name)
		}
	}
	if _, err := NewCoordinator(ctx, [][]string{{a.addr()}, {b.addr()}}, fastOpts()...); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

// TestReplicaOutcomeRecording pins the per-replica fan-out bookkeeping:
// a dead primary records a failure for EVERY attempt that hit it (not
// just silence), the replica that actually answered records successes
// tagged as hedged wins (it was not the attempt's first hop), and an
// untroubled shard's replica accumulates plain successes.
func TestReplicaOutcomeRecording(t *testing.T) {
	g := testGraph(t)
	mid := int32(g.N() / 2)
	primary := startShard(t, g, 0, mid)
	secondary := startShard(t, g, 0, mid)
	other := startShard(t, g, mid, int32(g.N()))
	groups := [][]string{{primary.addr(), secondary.addr()}, {other.addr()}}
	coord, err := NewCoordinator(context.Background(), groups, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	primary.down.Store(true)

	ctx := context.Background()
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if _, _, err := coord.TopR(ctx, trussdiv.Query{K: 4, R: 6}); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}

	fs := coord.FanoutStats()
	p, s := fs[0].Replicas[0], fs[0].Replicas[1]
	if p.Failures < rounds {
		t.Fatalf("dead primary recorded %d failures, want >= %d (%+v)", p.Failures, rounds, p)
	}
	if p.Healthy || p.Error == "" {
		t.Fatalf("dead primary reads healthy: %+v", p)
	}
	if s.Successes < rounds {
		t.Fatalf("answering secondary recorded %d successes, want >= %d (%+v)", s.Successes, rounds, s)
	}
	if s.HedgedWins < rounds {
		t.Fatalf("secondary's wins were not tagged hedged: %+v", s)
	}
	if s.LatencyUS <= 0 || s.LastUS <= 0 {
		t.Fatalf("secondary's successes did not feed its latency EWMA: %+v", s)
	}
	o := fs[1].Replicas[0]
	if o.Successes < rounds || o.Failures != 0 || o.HedgedWins != 0 {
		t.Fatalf("untroubled shard's replica outcomes: %+v", o)
	}
}

// TestFailedAttemptUpdatesReplicaLatency: a replica that burns the whole
// shard timeout before failing must show that latency in its EWMA — a
// failure is an observation, not a gap in the record.
func TestFailedAttemptUpdatesReplicaLatency(t *testing.T) {
	g := testGraph(t)
	stuck := startShard(t, g, 0, int32(g.N()), WithDelay(2*time.Second))
	coord, err := NewCoordinator(context.Background(), [][]string{{stuck.addr()}},
		WithShardTimeout(150*time.Millisecond), WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.TopR(context.Background(), trussdiv.Query{K: 4, R: 6}); err == nil {
		t.Fatal("query against a stuck single-replica shard succeeded")
	}
	// Outcome recording happens in the request goroutine, which may land a
	// beat after the coordinator gives up on the attempt — poll briefly.
	var rep ReplicaStatus
	deadline := time.Now().Add(2 * time.Second)
	for {
		rep = coord.FanoutStats()[0].Replicas[0]
		if rep.Failures > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Failures == 0 {
		t.Fatalf("timed-out attempt recorded no failure: %+v", rep)
	}
	if rep.LatencyUS < 100_000 {
		t.Fatalf("timed-out attempt's latency (%dus) missing from the EWMA, want >= the ~150ms timeout", rep.LatencyUS)
	}
}
