// Package cluster is the distributed serving tier: top-r structural
// diversity search sharded across processes, with answers byte-identical
// to a single node.
//
// The partition axis is the vertex id space. A shard Worker owns one
// contiguous id range [lo, hi) of the shared graph — it holds the whole
// graph (and its indexes) but only ever scores its own vertices — and a
// Coordinator fans each query out to every shard, then merges the
// per-shard top-r answers under the canonical total order (score desc,
// id asc). Exactness is inherited, not re-proven: every engine's
// per-shard answer is its range's true top-r under that total order
// (including zero-score padding from the smallest unused ids, PR 2's
// guarantee), the ranges partition the candidate set, so the global
// top-r is contained in the union of per-shard answers and the k-way
// merge reproduces the single-node answer byte for byte.
//
// Consistency across replicas rides on PR 4's epochs. The coordinator
// tracks a cluster epoch, tags every scatter with it, and streams Apply
// batches to all workers behind an epoch barrier (all replicas must
// acknowledge the new epoch before it becomes the query tag). A worker
// that receives a query tagged ahead of its state parks on DB.WaitEpoch
// until the apply lands (bounded catch-up window) and answers from the
// exact requested epoch; a worker that cannot catch up — or that has
// raced ahead — fails with a typed stale-epoch error, which the
// coordinator resolves by re-reading the cluster epoch and retrying the
// fan-out once.
//
// The tier degrades the way an inference gateway does rather than
// falling over: per-shard timeouts with bounded retry + exponential
// backoff, hedged reads to a replica when a shard is slow, and — when
// every replica of a shard is down — a typed *PartialResultError that
// still carries the merged answer of the shards that responded.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// --- Typed failures ---

// ErrStaleEpoch is the sentinel matched by errors.Is when a worker could
// not serve the epoch a query was tagged with; the concrete error is a
// *StaleEpochError.
var ErrStaleEpoch = errors.New("cluster: worker cannot serve the requested epoch")

// StaleEpochError reports an epoch-consistency failure: the worker's
// current epoch (Have) differs from the query tag (Want) and the bounded
// catch-up wait did not close the gap. Have > Want means the worker has
// applied updates the coordinator has not seen yet — the coordinator
// reacts by raising its cluster epoch and retrying the fan-out once.
type StaleEpochError struct {
	Addr string // worker that failed ("" when raised locally)
	Want uint64
	Have uint64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("cluster: worker %s at epoch %d cannot serve epoch %d", e.Addr, e.Have, e.Want)
}

// Is makes errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// ErrPartialResult is the sentinel matched by errors.Is when one or more
// shards were down and the answer covers only the shards that responded;
// the concrete error is a *PartialResultError.
var ErrPartialResult = errors.New("cluster: partial result: not every shard answered")

// PartialResultError is the degraded-mode answer: every replica of at
// least one shard failed (after retries and hedging), so the merged
// result covers only the vertex ranges of the shards that answered.
// Coordinator.TopR returns it together with that partial merged Result —
// callers that prefer availability over completeness can use the answer;
// callers that need exactness treat it as the failure it is.
type PartialResultError struct {
	Answered []int         // shard ids that answered, ascending
	Failed   map[int]error // shard id → final error after retries
}

func (e *PartialResultError) Error() string {
	ids := make([]int, 0, len(e.Failed))
	for id := range e.Failed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("shard %d: %v", id, e.Failed[id])
	}
	return fmt.Sprintf("cluster: %d/%d shards answered (%s)",
		len(e.Answered), len(e.Answered)+len(e.Failed), strings.Join(parts, "; "))
}

// Is makes errors.Is(err, ErrPartialResult) match.
func (e *PartialResultError) Is(target error) bool { return target == ErrPartialResult }

// ErrPartialApply is the sentinel matched by errors.Is when an update
// batch landed on some replicas but not all; the concrete error is a
// *PartialApplyError.
var ErrPartialApply = errors.New("cluster: update batch did not reach every replica")

// PartialApplyError reports a torn epoch barrier: the batch applied on
// the replicas absent from Failed (which now serve Epoch) but not on the
// ones listed. The coordinator raises its cluster epoch to Epoch anyway —
// healthy shards keep serving consistent post-update answers, and queries
// touching a torn replica fail with a typed stale-epoch error until it is
// restarted or repaired.
type PartialApplyError struct {
	Epoch  uint64 // the epoch the successful replicas reached
	Failed map[string]error
}

func (e *PartialApplyError) Error() string {
	addrs := make([]string, 0, len(e.Failed))
	for addr := range e.Failed {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	parts := make([]string, len(addrs))
	for i, addr := range addrs {
		parts[i] = fmt.Sprintf("%s: %v", addr, e.Failed[addr])
	}
	return fmt.Sprintf("cluster: apply reached epoch %d but failed on %d replica(s): %s",
		e.Epoch, len(e.Failed), strings.Join(parts, "; "))
}

// Is makes errors.Is(err, ErrPartialApply) match.
func (e *PartialApplyError) Is(target error) bool { return target == ErrPartialApply }

// RemoteError is a non-2xx answer from a worker that is not an epoch
// problem: a caller error the worker rejected (Status 4xx — bad k,
// unknown engine, invalid update batch...) or a worker-side failure
// (5xx). 4xx remote errors abort the fan-out without retries — every
// replica would reject the same request the same way.
type RemoteError struct {
	Addr   string
	Status int
	Code   string // machine-readable: "bad_update", "stale_epoch", ...
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: %s: HTTP %d: %s", e.Addr, e.Status, e.Msg)
}

// --- Wire protocol ---
// Every worker endpoint speaks JSON. The shapes live here so the client,
// worker, and coordinator cannot drift apart.

// shardHealth is GET /shard/health: the worker's identity card.
type shardHealth struct {
	Lo       int32  `json:"lo"`
	Hi       int32  `json:"hi"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
}

// shardTopRRequest is POST /shard/topr. Epoch 0 means "whatever you
// have" (used by direct debugging; the coordinator always tags).
type shardTopRRequest struct {
	K        int32  `json:"k"`
	R        int    `json:"r"`
	Contexts bool   `json:"contexts,omitempty"`
	Engine   string `json:"engine,omitempty"`
	Measure  string `json:"measure,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Epoch    uint64 `json:"epoch,omitempty"`
}

// shardEntry is one answer row; Contexts is present only when requested
// and non-empty (core normalizes empty context sets to nil).
type shardEntry struct {
	V        int32     `json:"v"`
	Score    int       `json:"score"`
	Contexts [][]int32 `json:"contexts,omitempty"`
}

// shardTopRResponse carries the worker's canonical-order partial answer.
type shardTopRResponse struct {
	Epoch   uint64       `json:"epoch"`
	Engine  string       `json:"engine"`
	Entries []shardEntry `json:"entries"`
}

type wireEdge struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// shardApplyRequest is POST /shard/apply: one atomic edge batch.
type shardApplyRequest struct {
	Insert []wireEdge `json:"insert,omitempty"`
	Delete []wireEdge `json:"delete,omitempty"`
}

type shardApplyResponse struct {
	Epoch uint64 `json:"epoch"`
}

// shardScoreResponse answers /shard/score.
type shardScoreResponse struct {
	V       int32  `json:"v"`
	K       int32  `json:"k"`
	Measure string `json:"measure"`
	Score   int    `json:"score"`
	Epoch   uint64 `json:"epoch"`
}

type shardContextsResponse struct {
	V        int32     `json:"v"`
	K        int32     `json:"k"`
	Measure  string    `json:"measure"`
	Score    int       `json:"score"`
	Epoch    uint64    `json:"epoch"`
	Contexts [][]int32 `json:"contexts"`
}

// wireError is the JSON error body every worker endpoint writes. Code
// distinguishes machine-actionable failures; Epoch/Want carry the
// stale-epoch details.
type wireError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
	Want  uint64 `json:"want,omitempty"`
}

// ParseShards parses the -shards flag grammar: comma-separated shard
// groups, each group one or more replica addresses separated by '|'.
// "a:7001,b:7002|c:7003" is two shards, the second replicated twice.
func ParseShards(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("cluster: empty shard list")
	}
	var groups [][]string
	for _, g := range strings.Split(spec, ",") {
		var replicas []string
		for _, addr := range strings.Split(g, "|") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				return nil, fmt.Errorf("cluster: empty replica address in shard group %q", g)
			}
			replicas = append(replicas, addr)
		}
		groups = append(groups, replicas)
	}
	return groups, nil
}

// ParseRange parses the -range flag grammar "lo:hi" (hi exclusive).
func ParseRange(spec string) (lo, hi int32, err error) {
	var l, h int
	if _, err := fmt.Sscanf(spec, "%d:%d", &l, &h); err != nil {
		return 0, 0, fmt.Errorf("cluster: range %q not in lo:hi form", spec)
	}
	return int32(l), int32(h), nil
}
