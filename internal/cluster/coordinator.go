package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trussdiv"
	"trussdiv/internal/metrics"
)

// replica is one worker process serving a shard's range.
type replica struct {
	client *Client

	mu      sync.Mutex
	healthy bool
	lastErr string
	epoch   uint64
	// Per-replica fan-out outcomes. successes/failures count completed
	// query attempts (hedge losers cancelled because a sibling already won
	// are neither); hedgedWins counts successes by a replica that was not
	// the attempt's first hop — the hedged or failed-over winner. ewmaNS
	// includes FAILED attempts: a replica that burns the full shard
	// timeout before erroring must look slow, not invisible, or the
	// health picture stays rosy while every request hedges away from it.
	successes  uint64
	failures   uint64
	hedgedWins uint64
	ewmaNS     float64
	lastNS     int64
}

func (r *replica) note(healthy bool, epoch uint64, err error) {
	r.mu.Lock()
	r.healthy = healthy
	if epoch != 0 {
		r.epoch = epoch
	}
	if err != nil {
		r.lastErr = err.Error()
	} else {
		r.lastErr = ""
	}
	r.mu.Unlock()
}

// observe records one completed query attempt against this replica —
// success or failure — with its wall latency.
func (r *replica) observe(d time.Duration, epoch uint64, err error, hedged bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastNS = d.Nanoseconds()
	if r.ewmaNS == 0 {
		r.ewmaNS = float64(d.Nanoseconds())
	} else {
		const alpha = 0.3
		r.ewmaNS = alpha*float64(d.Nanoseconds()) + (1-alpha)*r.ewmaNS
	}
	if err == nil {
		r.healthy = true
		r.successes++
		if hedged {
			r.hedgedWins++
		}
		if epoch != 0 {
			r.epoch = epoch
		}
		r.lastErr = ""
		return
	}
	r.healthy = false
	r.failures++
	r.lastErr = err.Error()
}

// shard is one vertex partition plus its replica set and fan-out stats.
type shard struct {
	id       int
	lo, hi   int32
	replicas []*replica

	mu        sync.Mutex
	requests  uint64
	failures  uint64
	hedges    uint64
	retries   uint64
	staleHits uint64
	ewmaNS    float64 // latency EWMA of successful calls
	lastNS    int64
}

func (s *shard) noteLatency(d time.Duration) {
	s.mu.Lock()
	s.lastNS = d.Nanoseconds()
	if s.ewmaNS == 0 {
		s.ewmaNS = float64(d.Nanoseconds())
	} else {
		const alpha = 0.3
		s.ewmaNS = alpha*float64(d.Nanoseconds()) + (1-alpha)*s.ewmaNS
	}
	s.mu.Unlock()
}

func (s *shard) bump(field *uint64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// config is the coordinator's robustness policy.
type config struct {
	shardTimeout time.Duration // budget per fan-out attempt per shard
	hedgeDelay   time.Duration // silence before a hedged read fires at the next replica
	retries      int           // extra attempts per shard after the first
	backoff      time.Duration // base backoff before a retry (doubles per attempt)
	probeTimeout time.Duration // health-probe budget
}

// CoordinatorOption configures NewCoordinator.
type CoordinatorOption func(*config)

// WithShardTimeout bounds every per-shard attempt (default 10s).
func WithShardTimeout(d time.Duration) CoordinatorOption {
	return func(c *config) { c.shardTimeout = d }
}

// WithHedgeDelay sets how long a shard may stay silent before the same
// request is hedged to its next replica (default 100ms; hedging needs
// more than one replica in the shard group).
func WithHedgeDelay(d time.Duration) CoordinatorOption {
	return func(c *config) { c.hedgeDelay = d }
}

// WithRetries sets how many extra attempts a failing shard gets after
// its first (default 1). Each retry backs off exponentially and starts
// from the shard's next replica.
func WithRetries(n int) CoordinatorOption {
	return func(c *config) { c.retries = max(n, 0) }
}

// WithBackoff sets the base backoff before the first retry (default
// 25ms, doubling per attempt).
func WithBackoff(d time.Duration) CoordinatorOption {
	return func(c *config) { c.backoff = d }
}

// Coordinator fans queries out to the shard workers, merges their
// canonical-order partial answers into the exact global answer, and
// streams updates to every replica behind an epoch barrier. Safe for
// concurrent use; Apply calls serialize with each other (the epoch
// barrier is the serialization point) but never block queries.
type Coordinator struct {
	shards   []*shard // sorted by lo; ranges tile [0, vertices)
	vertices int
	epoch    atomic.Uint64
	applyMu  sync.Mutex
	cfg      config
	metrics  *metrics.Registry
	started  time.Time
}

// NewCoordinator probes every replica of every shard group, validates
// that the shard ranges tile the vertex space [0, N) with no gaps or
// overlaps and that all workers describe the same graph, and adopts the
// highest epoch any worker reports as the cluster epoch. Each group must
// have at least one reachable replica, and every reachable replica of a
// group must agree on its range.
func NewCoordinator(ctx context.Context, groups [][]string, opts ...CoordinatorOption) (*Coordinator, error) {
	if len(groups) == 0 {
		return nil, errors.New("cluster: NewCoordinator: no shards")
	}
	cfg := config{
		shardTimeout: 10 * time.Second,
		hedgeDelay:   100 * time.Millisecond,
		retries:      1,
		backoff:      25 * time.Millisecond,
		probeTimeout: 3 * time.Second,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Coordinator{cfg: cfg, metrics: metrics.New(), started: time.Now()}

	type probe struct {
		health shardHealth
		ok     bool
	}
	var maxEpoch uint64
	edges := -1
	for id, group := range groups {
		sh := &shard{id: id}
		var ref *shardHealth
		for _, addr := range group {
			rep := &replica{client: NewClient(addr)}
			pctx, cancel := context.WithTimeout(ctx, cfg.probeTimeout)
			h, err := rep.client.Health(pctx)
			cancel()
			rep.note(err == nil, h.Epoch, err)
			if err == nil {
				if ref == nil {
					ref = &h
				} else if h.Lo != ref.Lo || h.Hi != ref.Hi || h.Vertices != ref.Vertices {
					return nil, fmt.Errorf("cluster: shard %d: replica %s serves [%d,%d)/%d vertices, expected [%d,%d)/%d",
						id, addr, h.Lo, h.Hi, h.Vertices, ref.Lo, ref.Hi, ref.Vertices)
				}
				maxEpoch = max(maxEpoch, h.Epoch)
			}
			sh.replicas = append(sh.replicas, rep)
		}
		if ref == nil {
			return nil, fmt.Errorf("cluster: shard %d: no reachable replica among %v", id, group)
		}
		sh.lo, sh.hi = ref.Lo, ref.Hi
		if c.vertices == 0 {
			c.vertices = ref.Vertices
			edges = ref.Edges
		} else if ref.Vertices != c.vertices || ref.Edges != edges {
			return nil, fmt.Errorf("cluster: shard %d describes a different graph (%d vertices / %d edges, cluster has %d / %d)",
				id, ref.Vertices, ref.Edges, c.vertices, edges)
		}
		c.shards = append(c.shards, sh)
	}
	sort.Slice(c.shards, func(i, j int) bool { return c.shards[i].lo < c.shards[j].lo })
	want := int32(0)
	for _, sh := range c.shards {
		if sh.lo != want {
			return nil, fmt.Errorf("cluster: shard ranges do not tile the vertex space: gap or overlap at vertex %d (shard %d starts at %d)",
				want, sh.id, sh.lo)
		}
		want = sh.hi
	}
	if int(want) != c.vertices {
		return nil, fmt.Errorf("cluster: shard ranges cover [0,%d) but the graph has %d vertices", want, c.vertices)
	}
	c.epoch.Store(maxEpoch)
	return c, nil
}

// Epoch reports the coordinator's cluster epoch: the epoch every query
// is currently tagged with.
func (c *Coordinator) Epoch() uint64 { return c.epoch.Load() }

// Shards reports the number of shard groups.
func (c *Coordinator) Shards() int { return len(c.shards) }

// raiseEpoch lifts the cluster epoch to at least target.
func (c *Coordinator) raiseEpoch(target uint64) {
	for {
		cur := c.epoch.Load()
		if cur >= target || c.epoch.CompareAndSwap(cur, target) {
			return
		}
	}
}

// QueryStats describes one scatter-gather: which epoch it ran at, who
// answered with which engine, and whether the stale-epoch retry fired.
type QueryStats struct {
	Epoch    uint64
	Answered []int          // shard ids, ascending
	Engines  map[int]string // shard id → engine that answered
	Retried  bool           // second fan-out after a stale-epoch bump
}

// TopR answers one top-r query across the cluster. The fan-out tags
// every shard with the cluster epoch, merges the per-shard canonical
// answers, and returns a Result byte-identical to the single-node answer
// at that epoch. If a worker reports it is already past the tag, the
// coordinator adopts the higher epoch and retries the fan-out once. If
// every replica of some shard is down, the error is a
// *PartialResultError and the returned Result covers the shards that
// answered (nil Result only when no shard answered at all).
func (c *Coordinator) TopR(ctx context.Context, q trussdiv.Query) (*trussdiv.Result, *QueryStats, error) {
	if q.Candidates != nil {
		return nil, nil, errors.New("cluster: candidate subsets are not supported by the cluster tier (the shard ranges are the candidate partition)")
	}
	req := shardTopRRequest{
		K: q.K, R: q.R, Contexts: q.IncludeContexts,
		Engine: q.Engine, Measure: string(q.Measure), Workers: q.Workers,
	}
	retried := false
	for {
		target := c.epoch.Load()
		req.Epoch = target
		parts, errs := c.scatter(ctx, req)

		// A worker ahead of the tag means an Apply landed that this
		// coordinator has not folded in (e.g. a replica applied before a
		// torn barrier was reported). Adopt the highest epoch seen and
		// retry the whole fan-out once — every shard must answer from one
		// epoch or the merge is meaningless.
		var ahead uint64
		for _, err := range errs {
			var se *StaleEpochError
			if errors.As(err, &se) && se.Have > target {
				ahead = max(ahead, se.Have)
			}
		}
		if ahead > target && !retried {
			retried = true
			c.raiseEpoch(ahead)
			continue
		}

		// A caller error from any shard aborts the query: every replica
		// would reject the same request identically.
		for _, err := range errs {
			var re *RemoteError
			if errors.As(err, &re) && re.Status >= 400 && re.Status < 500 {
				return nil, nil, err
			}
		}

		stats := &QueryStats{Epoch: target, Engines: make(map[int]string), Retried: retried}
		for i, p := range parts {
			if p != nil {
				stats.Answered = append(stats.Answered, c.shards[i].id)
				stats.Engines[c.shards[i].id] = p.Engine
			}
		}
		res := mergeTopR(q.R, q.IncludeContexts, parts)
		if res != nil {
			res.Epoch = target
		}
		if len(errs) > 0 {
			perr := &PartialResultError{Answered: stats.Answered, Failed: make(map[int]error, len(errs))}
			for i, err := range errs {
				perr.Failed[c.shards[i].id] = err
			}
			return res, stats, perr
		}
		return res, stats, nil
	}
}

// scatter fans one tagged request to every shard. parts[i] is shard i's
// answer (nil on failure); errs maps failed shard indexes to their final
// error.
func (c *Coordinator) scatter(ctx context.Context, req shardTopRRequest) ([]*shardTopRResponse, map[int]error) {
	parts := make([]*shardTopRResponse, len(c.shards))
	errs := make(map[int]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			resp, err := c.queryShard(ctx, sh, req)
			mu.Lock()
			if err != nil {
				errs[i] = err
			} else {
				parts[i] = resp
			}
			mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	return parts, errs
}

// queryShard runs one shard's request with the full robustness policy:
// up to 1+retries attempts, exponential backoff between them, each
// attempt hedged across the shard's replicas. Stale-epoch and 4xx
// responses return immediately — retrying cannot change them here.
func (c *Coordinator) queryShard(ctx context.Context, sh *shard, req shardTopRRequest) (*shardTopRResponse, error) {
	sh.bump(&sh.requests)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.retries; attempt++ {
		if attempt > 0 {
			sh.bump(&sh.retries)
			backoff := c.cfg.backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				sh.bump(&sh.failures)
				return nil, lastErr
			case <-time.After(backoff):
			}
		}
		resp, err := c.attemptShard(ctx, sh, req, attempt)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var se *StaleEpochError
		var re *RemoteError
		if errors.As(err, &se) {
			sh.bump(&sh.staleHits)
			return nil, err
		}
		if errors.As(err, &re) && re.Status < 500 {
			return nil, err
		}
		if ctx.Err() != nil {
			break
		}
	}
	sh.bump(&sh.failures)
	return nil, lastErr
}

// attemptShard is one hedged attempt: fire the request at one replica,
// and if it stays silent past the hedge delay, fire the same request at
// the next replica too — first success wins, the loser is cancelled by
// the shared attempt context. Transport failures fail over to unsent
// replicas immediately. Attempts rotate their starting replica so a dead
// primary stops being the first hop on retries.
func (c *Coordinator) attemptShard(ctx context.Context, sh *shard, req shardTopRRequest, attempt int) (*shardTopRResponse, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.shardTimeout)
	defer cancel()
	n := len(sh.replicas)
	first := attempt % n
	type outcome struct {
		resp *shardTopRResponse
		err  error
		idx  int
	}
	ch := make(chan outcome, n)
	sent := 0
	launch := func() {
		idx := (first + sent) % n
		sent++
		hedged := idx != first
		rep := sh.replicas[idx]
		go func() {
			// Outcomes are recorded here, in the request goroutine, so a
			// hedge LOSER's result is captured too — the select loop below
			// may have returned with the winner long before the loser
			// finishes. The channel is buffered to n, so late sends never
			// leak the goroutine.
			start := time.Now()
			resp, err := rep.client.TopR(actx, req)
			d := time.Since(start)
			var se *StaleEpochError
			var re *RemoteError
			switch {
			case err == nil:
				sh.noteLatency(d)
				rep.observe(d, resp.Epoch, nil, hedged)
			case errors.As(err, &se):
				// The replica answered; it is just ahead of the tag. Its
				// reported epoch is fresher than ours — keep it.
				rep.note(true, se.Have, err)
			case errors.As(err, &re) && re.Status < 500:
				// A caller error: the replica is alive and the request was
				// the problem, not the worker.
				rep.note(true, 0, err)
			case errors.Is(err, context.Canceled) && ctx.Err() == nil:
				// The attempt context was cancelled because a sibling
				// already won (the caller's own ctx is still live): not an
				// outcome of this replica at all.
			default:
				rep.observe(d, 0, err, false)
			}
			ch <- outcome{resp, err, idx}
		}()
	}
	launch()
	hedge := time.NewTimer(c.cfg.hedgeDelay)
	defer hedge.Stop()
	inflight := 1
	var lastErr error
	for {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				return out.resp, nil
			}
			lastErr = out.err
			var se *StaleEpochError
			if errors.As(out.err, &se) {
				return nil, out.err
			}
			var re *RemoteError
			if errors.As(out.err, &re) && re.Status < 500 {
				return nil, out.err
			}
			if sent < n {
				// Fail over without waiting for the hedge timer.
				launch()
				inflight++
			} else if inflight == 0 {
				return nil, lastErr
			}
		case <-hedge.C:
			if sent < n {
				sh.bump(&sh.hedges)
				launch()
				inflight++
			}
		case <-actx.Done():
			if lastErr == nil {
				lastErr = fmt.Errorf("cluster: shard %d: %w", sh.id, actx.Err())
			}
			return nil, lastErr
		}
	}
}

// mergeTopR k-way-merges the per-shard canonical answers (each sorted by
// score desc, id asc) into the global top r under the same order. parts
// entries may be nil (failed shards); with every part nil the merge is
// nil too.
func mergeTopR(r int, includeContexts bool, parts []*shardTopRResponse) *trussdiv.Result {
	any := false
	for _, p := range parts {
		if p != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	res := &trussdiv.Result{}
	if includeContexts {
		res.Contexts = make(map[int32][][]int32)
	}
	heads := make([]int, len(parts))
	for len(res.TopR) < r {
		best := -1
		for i, p := range parts {
			if p == nil || heads[i] >= len(p.Entries) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			a, b := p.Entries[heads[i]], parts[best].Entries[heads[best]]
			if a.Score > b.Score || (a.Score == b.Score && a.V < b.V) {
				best = i
			}
		}
		if best == -1 {
			break
		}
		e := parts[best].Entries[heads[best]]
		heads[best]++
		res.TopR = append(res.TopR, trussdiv.VertexScore{V: e.V, Score: e.Score})
		if includeContexts {
			res.Contexts[e.V] = e.Contexts
		}
	}
	return res
}

// Apply streams one edge batch to every replica of every shard behind
// the epoch barrier: all replicas must acknowledge the new epoch before
// it becomes the tag queries carry. Apply calls serialize. A batch every
// replica rejects as invalid leaves the cluster untouched and returns
// the rejection; a batch that lands on some replicas but not others
// returns a *PartialApplyError, raises the cluster epoch anyway (the
// healthy majority serves the new state), and leaves the torn replicas
// to fail typed at query time until repaired.
func (c *Coordinator) Apply(ctx context.Context, ins, del []trussdiv.Edge) (uint64, error) {
	c.applyMu.Lock()
	defer c.applyMu.Unlock()

	var targets []*replica
	for _, sh := range c.shards {
		targets = append(targets, sh.replicas...)
	}
	epochs := make([]uint64, len(targets))
	applyErrs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, rep := range targets {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			epoch, err := rep.client.Apply(ctx, ins, del)
			epochs[i], applyErrs[i] = epoch, err
			rep.note(err == nil, epoch, err)
		}(i, rep)
	}
	wg.Wait()

	var newEpoch uint64
	failed := make(map[string]error)
	var firstReject error
	for i, err := range applyErrs {
		if err == nil {
			newEpoch = max(newEpoch, epochs[i])
			continue
		}
		var re *RemoteError
		if errors.As(err, &re) && re.Code == "bad_update" && firstReject == nil {
			firstReject = err
		}
		failed[targets[i].client.Addr()] = err
	}
	if len(failed) == 0 {
		c.raiseEpoch(newEpoch)
		return newEpoch, nil
	}
	if len(failed) == len(targets) && firstReject != nil {
		// Deterministic validation rejected the batch everywhere: the
		// cluster is untouched and still consistent. Surface the
		// rejection itself, not a partial-apply.
		return c.epoch.Load(), firstReject
	}
	if newEpoch != 0 {
		c.raiseEpoch(newEpoch)
	}
	return newEpoch, &PartialApplyError{Epoch: newEpoch, Failed: failed}
}

// Score answers a single-vertex diversity query by routing to the shard
// owning v, tagged with the cluster epoch.
func (c *Coordinator) Score(ctx context.Context, v, k int32, m trussdiv.Measure) (int, uint64, error) {
	sh, err := c.owner(v)
	if err != nil {
		return 0, 0, err
	}
	epoch := c.epoch.Load()
	resp, err := pointCall(ctx, c, sh, func(ctx context.Context, cl *Client) (shardScoreResponse, error) {
		return cl.Score(ctx, v, k, m, epoch)
	})
	if err != nil {
		return 0, 0, err
	}
	return resp.Score, resp.Epoch, nil
}

// Contexts answers a single-vertex contexts query via the owning shard.
func (c *Coordinator) Contexts(ctx context.Context, v, k int32, m trussdiv.Measure) ([][]int32, uint64, error) {
	sh, err := c.owner(v)
	if err != nil {
		return nil, 0, err
	}
	epoch := c.epoch.Load()
	resp, err := pointCall(ctx, c, sh, func(ctx context.Context, cl *Client) (shardContextsResponse, error) {
		return cl.Contexts(ctx, v, k, m, epoch)
	})
	if err != nil {
		return nil, 0, err
	}
	return resp.Contexts, resp.Epoch, nil
}

// owner finds the shard whose range contains v.
func (c *Coordinator) owner(v int32) (*shard, error) {
	i := sort.Search(len(c.shards), func(i int) bool { return c.shards[i].hi > v })
	if v < 0 || i == len(c.shards) {
		return nil, fmt.Errorf("cluster: vertex %d outside [0,%d)", v, c.vertices)
	}
	return c.shards[i], nil
}

// pointCall runs one point query against a shard's replicas with simple
// failover (first healthy answer wins; point queries are cheap enough
// that hedging is not worth the duplicate load).
func pointCall[T any](ctx context.Context, c *Coordinator, sh *shard, call func(context.Context, *Client) (T, error)) (T, error) {
	var lastErr error
	var zero T
	for _, rep := range sh.replicas {
		actx, cancel := context.WithTimeout(ctx, c.cfg.shardTimeout)
		resp, err := call(actx, rep.client)
		cancel()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var re *RemoteError
		if errors.As(err, &re) && re.Status < 500 {
			return zero, err
		}
		var se *StaleEpochError
		if errors.As(err, &se) {
			return zero, err
		}
	}
	return zero, lastErr
}

// --- Cluster status (/cluster) ---

// ReplicaStatus is one worker's health as the coordinator sees it,
// including its per-replica fan-out outcomes: every completed attempt is
// recorded (success AND failure), HedgedWins counts the times this
// replica won an attempt it was not the first hop of, and the latency
// EWMA covers failed attempts too — a replica that times out reads slow,
// not absent.
type ReplicaStatus struct {
	Addr       string `json:"addr"`
	Healthy    bool   `json:"healthy"`
	Epoch      uint64 `json:"epoch"`
	Error      string `json:"error,omitempty"`
	Successes  uint64 `json:"successes,omitempty"`
	Failures   uint64 `json:"failures,omitempty"`
	HedgedWins uint64 `json:"hedged_wins,omitempty"`
	LatencyUS  int64  `json:"latency_ewma_us,omitempty"`
	LastUS     int64  `json:"latency_last_us,omitempty"`
}

// status snapshots the replica's mutable state.
func (r *replica) status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStatus{
		Addr: r.client.Addr(), Healthy: r.healthy,
		Epoch: r.epoch, Error: r.lastErr,
		Successes: r.successes, Failures: r.failures, HedgedWins: r.hedgedWins,
		LatencyUS: int64(r.ewmaNS) / 1e3, LastUS: r.lastNS / 1e3,
	}
}

// ShardStatus is one shard's range, replica set, and fan-out stats.
type ShardStatus struct {
	ID        int             `json:"id"`
	Lo        int32           `json:"lo"`
	Hi        int32           `json:"hi"`
	Requests  uint64          `json:"requests"`
	Failures  uint64          `json:"failures,omitempty"`
	Hedges    uint64          `json:"hedges,omitempty"`
	Retries   uint64          `json:"retries,omitempty"`
	StaleHits uint64          `json:"stale_hits,omitempty"`
	LatencyUS int64           `json:"latency_ewma_us"`
	LastUS    int64           `json:"latency_last_us"`
	Replicas  []ReplicaStatus `json:"replicas"`
}

// ClusterStatus is the GET /cluster body.
type ClusterStatus struct {
	Epoch    uint64        `json:"epoch"`
	Vertices int           `json:"vertices"`
	Shards   []ShardStatus `json:"shards"`
}

// Status probes every replica live (bounded by the probe timeout) and
// reports per-shard health, epochs, and accumulated fan-out stats.
func (c *Coordinator) Status(ctx context.Context) ClusterStatus {
	st := ClusterStatus{Epoch: c.epoch.Load(), Vertices: c.vertices}
	for _, sh := range c.shards {
		sh.mu.Lock()
		ss := ShardStatus{
			ID: sh.id, Lo: sh.lo, Hi: sh.hi,
			Requests: sh.requests, Failures: sh.failures,
			Hedges: sh.hedges, Retries: sh.retries, StaleHits: sh.staleHits,
			LatencyUS: int64(sh.ewmaNS) / 1e3, LastUS: sh.lastNS / 1e3,
		}
		sh.mu.Unlock()
		for _, rep := range sh.replicas {
			pctx, cancel := context.WithTimeout(ctx, c.cfg.probeTimeout)
			h, err := rep.client.Health(pctx)
			cancel()
			rep.note(err == nil, h.Epoch, err)
			ss.Replicas = append(ss.Replicas, rep.status())
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// FanoutStats reports the accumulated per-shard fan-out counters —
// including the per-replica outcome records — without probing (the
// /metrics summary; replica health/epoch fields are as-last-observed).
func (c *Coordinator) FanoutStats() []ShardStatus {
	out := make([]ShardStatus, 0, len(c.shards))
	for _, sh := range c.shards {
		sh.mu.Lock()
		ss := ShardStatus{
			ID: sh.id, Lo: sh.lo, Hi: sh.hi,
			Requests: sh.requests, Failures: sh.failures,
			Hedges: sh.hedges, Retries: sh.retries, StaleHits: sh.staleHits,
			LatencyUS: int64(sh.ewmaNS) / 1e3, LastUS: sh.lastNS / 1e3,
		}
		sh.mu.Unlock()
		for _, rep := range sh.replicas {
			ss.Replicas = append(ss.Replicas, rep.status())
		}
		out = append(out, ss)
	}
	return out
}
