package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"trussdiv"
	"trussdiv/internal/metrics"
)

// Worker is one shard of the cluster: it serves partial top-r, score,
// and contexts queries for the contiguous vertex range [lo, hi) of the
// shared graph, and applies replicated edge batches. The worker holds a
// full DB (whole graph + indexes) — the partition restricts which
// vertices it scores, not what it knows — so any shard can recover the
// social contexts of its own answer vertices without cross-shard talk.
//
// Epoch discipline: a query tagged with an epoch ahead of the worker's
// state parks on DB.WaitEpoch for up to the catch-up window (the
// replicated Apply is presumably in flight) and then answers from
// exactly the requested epoch; a tag the worker cannot serve — catch-up
// expired, or the worker has already moved past it — fails with a typed
// stale-epoch error (HTTP 409, code "stale_epoch").
type Worker struct {
	db      *trussdiv.DB
	lo, hi  int32
	catchup time.Duration
	delay   time.Duration
	metrics *metrics.Registry
}

// WorkerOption configures NewWorker.
type WorkerOption func(*Worker)

// WithCatchup bounds how long a query tagged ahead of the worker's epoch
// waits for the replicated Apply to land before failing stale (default
// 2s).
func WithCatchup(d time.Duration) WorkerOption {
	return func(w *Worker) { w.catchup = d }
}

// WithDelay makes the worker sleep before answering every top-r request.
// It exists for fault-injection tests and latency experiments (a slow
// shard triggers the coordinator's hedged read); production workers do
// not set it.
func WithDelay(d time.Duration) WorkerOption {
	return func(w *Worker) { w.delay = d }
}

// NewWorker wraps db as the shard owning [lo, hi). The range must be
// non-empty and inside the graph's vertex space.
func NewWorker(db *trussdiv.DB, lo, hi int32, opts ...WorkerOption) (*Worker, error) {
	if db == nil {
		return nil, errors.New("cluster: NewWorker: nil DB")
	}
	n := int32(db.Graph().N())
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("cluster: NewWorker: range [%d,%d) invalid for %d vertices", lo, hi, n)
	}
	w := &Worker{db: db, lo: lo, hi: hi, catchup: 2 * time.Second, metrics: metrics.New()}
	for _, opt := range opts {
		opt(w)
	}
	return w, nil
}

// Range reports the vertex range this worker owns.
func (w *Worker) Range() (lo, hi int32) { return w.lo, w.hi }

// DB exposes the underlying facade (tests, embedding servers).
func (w *Worker) DB() *trussdiv.DB { return w.db }

// Handler returns the worker's HTTP surface.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	instr := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, w.metrics.Instrument(route, h))
	}
	instr("GET /shard/health", "/shard/health", w.handleHealth)
	instr("POST /shard/topr", "/shard/topr", w.handleTopR)
	instr("POST /shard/apply", "/shard/apply", w.handleApply)
	instr("GET /shard/score", "/shard/score", w.handleScore)
	instr("GET /shard/contexts", "/shard/contexts", w.handleContexts)
	mux.HandleFunc("GET /metrics", w.metrics.Handler())
	return mux
}

func writeWireJSON(rw http.ResponseWriter, status int, body any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(body)
}

func writeWireError(rw http.ResponseWriter, status int, code, format string, args ...any) {
	writeWireJSON(rw, status, wireError{Error: fmt.Sprintf(format, args...), Code: code})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	snap := w.db.Snapshot()
	writeWireJSON(rw, http.StatusOK, shardHealth{
		Lo:       w.lo,
		Hi:       w.hi,
		Epoch:    uint64(snap.Epoch()),
		Vertices: snap.Graph().N(),
		Edges:    snap.Graph().M(),
	})
}

// snapshotAt resolves the snapshot a query tagged with epoch must run
// against: the current one for an untagged query, the exact epoch after
// a bounded catch-up wait otherwise.
func (w *Worker) snapshotAt(ctx context.Context, epoch uint64) (*trussdiv.Snapshot, *StaleEpochError) {
	snap := w.db.Snapshot()
	if epoch == 0 || uint64(snap.Epoch()) == epoch {
		return snap, nil
	}
	if uint64(snap.Epoch()) < epoch {
		wctx, cancel := context.WithTimeout(ctx, w.catchup)
		caught, err := w.db.WaitEpoch(wctx, trussdiv.Epoch(epoch))
		cancel()
		if err != nil {
			return nil, &StaleEpochError{Want: epoch, Have: uint64(w.db.Epoch())}
		}
		snap = caught
	}
	if uint64(snap.Epoch()) != epoch {
		// The worker moved past the tag (Have > Want): answering would mix
		// epochs across shards, so fail typed and let the coordinator
		// re-read the cluster epoch.
		return nil, &StaleEpochError{Want: epoch, Have: uint64(snap.Epoch())}
	}
	return snap, nil
}

func writeStale(rw http.ResponseWriter, se *StaleEpochError) {
	writeWireJSON(rw, http.StatusConflict, wireError{
		Error: se.Error(), Code: "stale_epoch", Epoch: se.Have, Want: se.Want,
	})
}

func (w *Worker) handleTopR(rw http.ResponseWriter, r *http.Request) {
	var req shardTopRRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20)).Decode(&req); err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "topr body: %v", err)
		return
	}
	if w.delay > 0 {
		select {
		case <-time.After(w.delay):
		case <-r.Context().Done():
			return
		}
	}
	measure, err := trussdiv.ParseMeasure(req.Measure)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	snap, stale := w.snapshotAt(r.Context(), req.Epoch)
	if stale != nil {
		writeStale(rw, stale)
		return
	}
	q := trussdiv.Query{
		K:               req.K,
		R:               req.R,
		IncludeContexts: req.Contexts,
		Engine:          req.Engine,
		Measure:         measure,
		Workers:         clampShardWorkers(req.Workers),
	}
	res, stats, err := snap.TopRRange(r.Context(), q, w.lo, w.hi)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeWireError(rw, http.StatusGatewayTimeout, "timeout", "%v", err)
			return
		}
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	resp := shardTopRResponse{Epoch: uint64(snap.Epoch())}
	if stats != nil {
		resp.Engine = stats.Engine
	}
	resp.Entries = make([]shardEntry, len(res.TopR))
	for i, e := range res.TopR {
		resp.Entries[i] = shardEntry{V: e.V, Score: e.Score}
		if req.Contexts {
			resp.Entries[i].Contexts = res.Contexts[e.V]
		}
	}
	writeWireJSON(rw, http.StatusOK, resp)
}

// clampShardWorkers mirrors the single-node HTTP clamp: the per-shard
// scan must not spawn unbounded goroutine pools on worker machines.
func clampShardWorkers(n int) int {
	if n < 1 {
		return 0
	}
	return min(n, runtime.GOMAXPROCS(0))
}

func (w *Worker) handleApply(rw http.ResponseWriter, r *http.Request) {
	var req shardApplyRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 4<<20)).Decode(&req); err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "apply body: %v", err)
		return
	}
	u := trussdiv.Updates{
		Insert: make([]trussdiv.Edge, len(req.Insert)),
		Delete: make([]trussdiv.Edge, len(req.Delete)),
	}
	for i, e := range req.Insert {
		u.Insert[i] = trussdiv.Edge{U: e.U, V: e.V}
	}
	for i, e := range req.Delete {
		u.Delete[i] = trussdiv.Edge{U: e.U, V: e.V}
	}
	epoch, err := w.db.Apply(r.Context(), u)
	if err != nil {
		if errors.Is(err, trussdiv.ErrBadUpdate) {
			writeWireError(rw, http.StatusConflict, "bad_update", "%v", err)
			return
		}
		writeWireError(rw, http.StatusInternalServerError, "apply_failed", "%v", err)
		return
	}
	writeWireJSON(rw, http.StatusOK, shardApplyResponse{Epoch: uint64(epoch)})
}

// pointParams parses the shared v/k/measure/epoch parameters of the
// point-query endpoints and checks shard ownership of v.
func (w *Worker) pointParams(r *http.Request) (v, k int32, m trussdiv.Measure, epoch uint64, err error) {
	vi, err := strconv.Atoi(r.URL.Query().Get("v"))
	if err != nil {
		return 0, 0, "", 0, fmt.Errorf("parameter \"v\": %v", err)
	}
	// k=0 (or absent) is the parameter-free point query; the coordinator
	// forwards whatever the client sent.
	ki := 0
	if raw := r.URL.Query().Get("k"); raw != "" {
		if ki, err = strconv.Atoi(raw); err != nil {
			return 0, 0, "", 0, fmt.Errorf("parameter \"k\": %v", err)
		}
	}
	m, err = trussdiv.ParseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		return 0, 0, "", 0, err
	}
	if raw := r.URL.Query().Get("epoch"); raw != "" {
		e, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return 0, 0, "", 0, fmt.Errorf("parameter \"epoch\": %v", err)
		}
		epoch = e
	}
	v, k = int32(vi), int32(ki)
	if v < w.lo || v >= w.hi {
		return 0, 0, "", 0, fmt.Errorf("vertex %d outside this shard's range [%d,%d)", v, w.lo, w.hi)
	}
	return v, k, m, epoch, nil
}

func (w *Worker) handleScore(rw http.ResponseWriter, r *http.Request) {
	v, k, m, epoch, err := w.pointParams(r)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	snap, stale := w.snapshotAt(r.Context(), epoch)
	if stale != nil {
		writeStale(rw, stale)
		return
	}
	var score int
	if k == 0 {
		score, err = snap.ScorePFree(r.Context(), v, m)
	} else {
		score, err = snap.ScoreMeasure(r.Context(), v, k, m)
	}
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	writeWireJSON(rw, http.StatusOK, shardScoreResponse{
		V: v, K: k, Measure: string(m.Normalize()), Score: score, Epoch: uint64(snap.Epoch()),
	})
}

func (w *Worker) handleContexts(rw http.ResponseWriter, r *http.Request) {
	v, k, m, epoch, err := w.pointParams(r)
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	snap, stale := w.snapshotAt(r.Context(), epoch)
	if stale != nil {
		writeStale(rw, stale)
		return
	}
	var contexts [][]int32
	if k == 0 {
		contexts, err = snap.ContextsPFree(r.Context(), v, m)
	} else {
		contexts, err = snap.ContextsMeasure(r.Context(), v, k, m)
	}
	if err != nil {
		writeWireError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	writeWireJSON(rw, http.StatusOK, shardContextsResponse{
		V: v, K: k, Measure: string(m.Normalize()), Score: len(contexts),
		Epoch: uint64(snap.Epoch()), Contexts: contexts,
	})
}
