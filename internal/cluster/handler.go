package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"trussdiv"
	"trussdiv/internal/metrics"
)

// CoordinatorServer is the coordinator's HTTP surface. It mirrors the
// single-node server's query API (same /topr, /score, /contexts, /edges
// shapes, so tsdsearch and existing clients work unchanged against a
// cluster) and adds GET /cluster for per-shard health and fan-out stats.
// A degraded scatter-gather (some shard down) answers 206 Partial
// Content with the shards that failed named in the body.
type CoordinatorServer struct {
	coord   *Coordinator
	timeout time.Duration
	started time.Time
}

// NewCoordinatorServer wraps coord. timeout bounds every client request
// end to end (0 = no deadline beyond the client's own).
func NewCoordinatorServer(coord *Coordinator, timeout time.Duration) *CoordinatorServer {
	return &CoordinatorServer{coord: coord, timeout: timeout, started: time.Now()}
}

// Handler returns the coordinator's routing.
func (s *CoordinatorServer) Handler() http.Handler {
	mux := http.NewServeMux()
	instr := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.coord.metrics.Instrument(route, h))
	}
	instr("GET /healthz", "/healthz", s.handleHealth)
	instr("GET /cluster", "/cluster", s.handleCluster)
	instr("GET /topr", "/topr", s.handleTopR)
	instr("POST /edges", "/edges", s.handleEdges)
	instr("GET /score", "/score", s.handleScore)
	instr("GET /contexts", "/contexts", s.handleContexts)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// requestContext derives the per-request deadline context.
func (s *CoordinatorServer) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

type coordErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func coordJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func coordBadRequest(w http.ResponseWriter, format string, args ...any) {
	coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *CoordinatorServer) handleHealth(w http.ResponseWriter, _ *http.Request) {
	coordJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"role":   "coordinator",
		"shards": s.coord.Shards(),
		"epoch":  s.coord.Epoch(),
	})
}

func (s *CoordinatorServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	coordJSON(w, http.StatusOK, s.coord.Status(r.Context()))
}

// handleMetrics reports the coordinator's own endpoint histograms plus
// the per-shard fan-out counters.
func (s *CoordinatorServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	coordJSON(w, http.StatusOK, map[string]any{
		"endpoints": s.coord.metrics.Snapshot(),
		"shards":    s.coord.FanoutStats(),
	})
}

// clusterTopRResponse is the single-node topRResponse shape plus the
// cluster fields: which shards answered and, on 206, which failed.
type clusterTopRResponse struct {
	Engine       string           `json:"engine"`
	Routed       bool             `json:"routed"`
	Measure      trussdiv.Measure `json:"measure"`
	Epoch        uint64           `json:"epoch"`
	K            int              `json:"k"`
	R            int              `json:"r"`
	TookUS       int64            `json:"took_us"`
	Shards       int              `json:"shards"`
	Answered     []int            `json:"answered_shards"`
	FailedShards []int            `json:"failed_shards,omitempty"`
	Retried      bool             `json:"epoch_retry,omitempty"`
	Error        string           `json:"error,omitempty"`
	Results      []clusterResult  `json:"results"`
}

type clusterResult struct {
	Vertex   int32     `json:"vertex"`
	Score    int       `json:"score"`
	Contexts [][]int32 `json:"contexts,omitempty"`
}

func (s *CoordinatorServer) handleTopR(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	// k is optional, matching the single-node server: absent means a
	// parameter-free query, which every shard routes to its pfree engine.
	k := 0
	if raw := qp.Get("k"); raw != "" {
		var err error
		if k, err = strconv.Atoi(raw); err != nil {
			coordBadRequest(w, "parameter \"k\": %v", err)
			return
		}
	}
	rr, err := strconv.Atoi(qp.Get("r"))
	if err != nil {
		coordBadRequest(w, "parameter \"r\": %v", err)
		return
	}
	workers := 0
	if raw := qp.Get("workers"); raw != "" {
		if workers, err = strconv.Atoi(raw); err != nil {
			coordBadRequest(w, "parameter \"workers\": %v", err)
			return
		}
	}
	measure, err := trussdiv.ParseMeasure(qp.Get("measure"))
	if err != nil {
		coordBadRequest(w, "%v", err)
		return
	}
	if qp.Get("candidates") != "" {
		coordBadRequest(w, "the cluster tier does not accept candidate subsets: the shard ranges are the candidate partition")
		return
	}
	q := trussdiv.Query{
		K:               int32(k),
		R:               rr,
		IncludeContexts: qp.Get("contexts") == "true",
		Engine:          qp.Get("engine"),
		Measure:         measure,
		Workers:         workers,
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	res, stats, qerr := s.coord.TopR(ctx, q)
	var perr *PartialResultError
	if qerr != nil && !errors.As(qerr, &perr) {
		var re *RemoteError
		if errors.As(qerr, &re) && re.Status >= 400 && re.Status < 500 {
			coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: qerr.Error(), Code: re.Code})
			return
		}
		coordJSON(w, http.StatusBadGateway, coordErrorBody{Error: qerr.Error()})
		return
	}
	body := clusterTopRResponse{
		Engine:  consensusEngine(stats),
		Routed:  q.Engine == "",
		Measure: measure.Normalize(),
		K:       k,
		R:       rr,
		TookUS:  time.Since(start).Microseconds(),
		Shards:  s.coord.Shards(),
	}
	if stats != nil {
		body.Epoch = stats.Epoch
		body.Answered = stats.Answered
		body.Retried = stats.Retried
	}
	if res != nil {
		for _, e := range res.TopR {
			out := clusterResult{Vertex: e.V, Score: e.Score}
			if q.IncludeContexts {
				out.Contexts = res.Contexts[e.V]
			}
			body.Results = append(body.Results, out)
		}
	}
	status := http.StatusOK
	if perr != nil {
		status = http.StatusPartialContent
		body.Error = perr.Error()
		for id := range perr.Failed {
			body.FailedShards = append(body.FailedShards, id)
		}
		sort.Ints(body.FailedShards)
	}
	coordJSON(w, status, body)
}

// consensusEngine names the engine the shards answered with: one name
// when they agree (the common case — the same cost model runs on each
// shard), a sorted comma join otherwise.
func consensusEngine(stats *QueryStats) string {
	if stats == nil || len(stats.Engines) == 0 {
		return ""
	}
	set := make(map[string]bool)
	for _, name := range stats.Engines {
		if name != "" {
			set[name] = true
		}
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func (s *CoordinatorServer) handleEdges(w http.ResponseWriter, r *http.Request) {
	var req shardApplyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		coordBadRequest(w, "edges body: %v", err)
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		coordBadRequest(w, "edges body: no edits")
		return
	}
	ins := make([]trussdiv.Edge, len(req.Insert))
	for i, e := range req.Insert {
		ins[i] = trussdiv.Edge{U: e.U, V: e.V}
	}
	del := make([]trussdiv.Edge, len(req.Delete))
	for i, e := range req.Delete {
		del[i] = trussdiv.Edge{U: e.U, V: e.V}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	epoch, err := s.coord.Apply(ctx, ins, del)
	if err != nil {
		var pae *PartialApplyError
		if errors.As(err, &pae) {
			// The batch landed on the healthy replicas; report the torn ones
			// without pretending the whole write failed.
			coordJSON(w, http.StatusPartialContent, map[string]any{
				"epoch":    epoch,
				"inserted": len(req.Insert),
				"deleted":  len(req.Delete),
				"took_us":  time.Since(start).Microseconds(),
				"error":    pae.Error(),
				"code":     "partial_apply",
			})
			return
		}
		var re *RemoteError
		if errors.As(err, &re) && re.Code == "bad_update" {
			coordJSON(w, http.StatusConflict, coordErrorBody{Error: err.Error(), Code: "bad_update"})
			return
		}
		coordJSON(w, http.StatusBadGateway, coordErrorBody{Error: err.Error()})
		return
	}
	coordJSON(w, http.StatusOK, map[string]any{
		"epoch":    epoch,
		"inserted": len(req.Insert),
		"deleted":  len(req.Delete),
		"took_us":  time.Since(start).Microseconds(),
	})
}

// pointRequest parses the shared v/k/measure parameters of /score and
// /contexts. k is optional: absent (or 0) asks the owning shard for the
// parameter-free score, matching the single-node server.
func pointRequest(r *http.Request) (v, k int32, m trussdiv.Measure, err error) {
	vi, err := strconv.Atoi(r.URL.Query().Get("v"))
	if err != nil {
		return 0, 0, "", fmt.Errorf("parameter \"v\": %v", err)
	}
	ki := 0
	if raw := r.URL.Query().Get("k"); raw != "" {
		if ki, err = strconv.Atoi(raw); err != nil {
			return 0, 0, "", fmt.Errorf("parameter \"k\": %v", err)
		}
	}
	m, err = trussdiv.ParseMeasure(r.URL.Query().Get("measure"))
	if err != nil {
		return 0, 0, "", err
	}
	return int32(vi), int32(ki), m, nil
}

// routeError maps a coordinator point-query failure onto the client
// response: remote 4xx pass through as 400, everything else is 502.
func routeError(w http.ResponseWriter, err error) {
	var re *RemoteError
	if errors.As(err, &re) && re.Status >= 400 && re.Status < 500 {
		coordJSON(w, http.StatusBadRequest, coordErrorBody{Error: err.Error(), Code: re.Code})
		return
	}
	coordJSON(w, http.StatusBadGateway, coordErrorBody{Error: err.Error()})
}

func (s *CoordinatorServer) handleScore(w http.ResponseWriter, r *http.Request) {
	v, k, m, err := pointRequest(r)
	if err != nil {
		coordBadRequest(w, "%v", err)
		return
	}
	score, epoch, err := s.coord.Score(r.Context(), v, k, m)
	if err != nil {
		routeError(w, err)
		return
	}
	coordJSON(w, http.StatusOK, map[string]any{
		"vertex": v, "k": k, "measure": m.Normalize(), "score": score, "epoch": epoch,
	})
}

func (s *CoordinatorServer) handleContexts(w http.ResponseWriter, r *http.Request) {
	v, k, m, err := pointRequest(r)
	if err != nil {
		coordBadRequest(w, "%v", err)
		return
	}
	contexts, epoch, err := s.coord.Contexts(r.Context(), v, k, m)
	if err != nil {
		routeError(w, err)
		return
	}
	coordJSON(w, http.StatusOK, map[string]any{
		"vertex": v, "k": k, "measure": m.Normalize(), "score": len(contexts),
		"epoch": epoch, "contexts": contexts,
	})
}

// Metrics exposes the coordinator's endpoint registry (tests).
func (s *CoordinatorServer) Metrics() *metrics.Registry { return s.coord.metrics }
