package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"trussdiv"
)

// Client is the typed HTTP client for one shard worker. It performs no
// retries itself — the coordinator owns the retry/backoff/hedging policy
// — and maps the worker's wire errors back to the package's typed ones
// (*StaleEpochError for code "stale_epoch", *RemoteError otherwise).
// Deadlines come from the caller's context.
type Client struct {
	addr string // as configured, for error messages
	base string // http://addr
	hc   *http.Client
}

// NewClient returns a client for the worker at addr ("host:port" or a
// full http:// URL).
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{addr: addr, base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Addr reports the configured address.
func (c *Client) Addr() string { return c.addr }

// do runs one JSON round trip. in == nil sends no body; out == nil skips
// decoding.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", c.addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var we wireError
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(blob, &we) != nil || we.Error == "" {
			we.Error = strings.TrimSpace(string(blob))
		}
		if we.Code == "stale_epoch" {
			return &StaleEpochError{Addr: c.addr, Want: we.Want, Have: we.Epoch}
		}
		return &RemoteError{Addr: c.addr, Status: resp.StatusCode, Code: we.Code, Msg: we.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s: decode %s: %w", c.addr, path, err)
	}
	return nil
}

// Health fetches the worker's identity card.
func (c *Client) Health(ctx context.Context) (shardHealth, error) {
	var h shardHealth
	err := c.do(ctx, http.MethodGet, "/shard/health", nil, &h)
	return h, err
}

// TopR runs one partial top-r query on the worker.
func (c *Client) TopR(ctx context.Context, req shardTopRRequest) (*shardTopRResponse, error) {
	var resp shardTopRResponse
	if err := c.do(ctx, http.MethodPost, "/shard/topr", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Apply streams one edge batch to the worker and returns its new epoch.
func (c *Client) Apply(ctx context.Context, ins, del []trussdiv.Edge) (uint64, error) {
	req := shardApplyRequest{
		Insert: make([]wireEdge, len(ins)),
		Delete: make([]wireEdge, len(del)),
	}
	for i, e := range ins {
		req.Insert[i] = wireEdge{U: e.U, V: e.V}
	}
	for i, e := range del {
		req.Delete[i] = wireEdge{U: e.U, V: e.V}
	}
	var resp shardApplyResponse
	if err := c.do(ctx, http.MethodPost, "/shard/apply", req, &resp); err != nil {
		return 0, err
	}
	return resp.Epoch, nil
}

// pointQuery formats the shared query string of the point endpoints.
func pointQuery(v, k int32, m trussdiv.Measure, epoch uint64) string {
	q := url.Values{}
	q.Set("v", fmt.Sprint(v))
	q.Set("k", fmt.Sprint(k))
	if m != "" {
		q.Set("measure", string(m))
	}
	if epoch != 0 {
		q.Set("epoch", fmt.Sprint(epoch))
	}
	return "?" + q.Encode()
}

// Score fetches one vertex's diversity score from the shard owning it.
func (c *Client) Score(ctx context.Context, v, k int32, m trussdiv.Measure, epoch uint64) (shardScoreResponse, error) {
	var resp shardScoreResponse
	err := c.do(ctx, http.MethodGet, "/shard/score"+pointQuery(v, k, m, epoch), nil, &resp)
	return resp, err
}

// Contexts fetches one vertex's social contexts from the shard owning it.
func (c *Client) Contexts(ctx context.Context, v, k int32, m trussdiv.Measure, epoch uint64) (shardContextsResponse, error) {
	var resp shardContextsResponse
	err := c.do(ctx, http.MethodGet, "/shard/contexts"+pointQuery(v, k, m, epoch), nil, &resp)
	return resp, err
}
