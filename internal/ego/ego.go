// Package ego extracts ego-networks (paper Def. 1): for a vertex v, the
// subgraph of G induced by N(v), excluding v itself.
//
// Two strategies are provided, mirroring the paper's two pipelines:
//
//   - ExtractOne performs local triangle listing around a single vertex
//     (the path used by the online algorithms and TSD-index construction,
//     §3.2/§5.1). Each triangle through v is touched while building one
//     ego-network.
//   - ExtractAll performs one-shot global triangle listing and distributes
//     each triangle to the three ego-networks it belongs to (the GCT
//     pipeline, §6.2). Each triangle is enumerated once instead of being
//     rediscovered by every endpoint, which the paper credits for roughly
//     halving extraction work.
package ego

import (
	"sort"

	"trussdiv/internal/graph"
)

// Network is the ego-network of Center: a local graph over the neighbors
// of Center, relabeled 0..len(Verts)-1 in ascending global-ID order.
type Network struct {
	Center int32
	Verts  []int32      // local ID -> global ID (sorted); aliases g's storage
	G      *graph.Graph // the induced local graph
}

// Global maps a local vertex ID back to the global ID.
func (n *Network) Global(local int32) int32 { return n.Verts[local] }

// Local maps a global vertex ID to the local ID, or -1 if the vertex is
// not a neighbor of the center.
func (n *Network) Local(global int32) int32 {
	i := sort.Search(len(n.Verts), func(i int) bool { return n.Verts[i] >= global })
	if i < len(n.Verts) && n.Verts[i] == global {
		return int32(i)
	}
	return -1
}

// GlobalSets converts local vertex groups (e.g. social contexts) to global
// vertex IDs. All groups share one flat backing array (each capped with a
// three-index subslice), so the conversion costs two allocations total
// instead of one per group.
func (n *Network) GlobalSets(local [][]int32) [][]int32 {
	total := 0
	for _, grp := range local {
		total += len(grp)
	}
	flat := make([]int32, 0, total)
	out := make([][]int32, len(local))
	for i, grp := range local {
		start := len(flat)
		for _, lv := range grp {
			flat = append(flat, n.Verts[lv])
		}
		out[i] = flat[start:len(flat):len(flat)]
	}
	return out
}

// Scratch owns the reusable storage one worker needs to extract
// ego-networks without allocating in steady state: the builder's edge
// slab, the local graph's CSR slabs, and the Network header itself. The
// zero value is ready to use. A Scratch is not safe for concurrent use —
// each worker owns exactly one — and the Network returned by
// ExtractOneInto or All.NetworkInto (plus everything reachable from it)
// is a view over the Scratch, valid only until the next extraction into
// the same Scratch. See DESIGN.md "Scratch ownership contract".
type Scratch struct {
	b   graph.Builder
	csr graph.Scratch
	net Network
}

// ExtractOneInto is ExtractOne into recycled storage: the returned
// Network aliases s and is invalidated by the next extraction into s.
func ExtractOneInto(s *Scratch, g *graph.Graph, v int32) *Network {
	verts := g.Neighbors(v)
	s.b.Reset(len(verts))
	for lu, u := range verts {
		// Merge N(u) with verts, tracking the local index of matches.
		nu := g.Neighbors(u)
		i, j := 0, 0
		for i < len(nu) && j < len(verts) {
			switch {
			case nu[i] < verts[j]:
				i++
			case nu[i] > verts[j]:
				j++
			default:
				if verts[j] > u { // count each ego edge once
					s.b.AddEdge(int32(lu), int32(j))
				}
				i++
				j++
			}
		}
	}
	s.net.Center = v
	s.net.Verts = verts
	s.net.G = s.b.BuildInto(&s.csr)
	return &s.net
}

// ExtractOne builds the ego-network of v by local triangle listing: for
// every neighbor u of v, the edge (u,w) is added for each w in
// N(u) ∩ N(v) with w > u, via a merge of the sorted adjacency lists.
// It extracts into a private one-shot Scratch, so the result is never
// invalidated; loops over many vertices should reuse one Scratch via
// ExtractOneInto instead.
func ExtractOne(g *graph.Graph, v int32) *Network {
	return ExtractOneInto(new(Scratch), g, v)
}

// All holds the materialized ego-network edge lists of every vertex,
// produced by one global triangle-listing pass.
type All struct {
	g     *graph.Graph
	off   []int64      // per-vertex slice boundaries into edges
	edges []graph.Edge // global endpoint pairs of ego edges, grouped by center
}

// ExtractAll lists each triangle of g exactly once and assigns each of its
// three edges to the opposite endpoint's ego-network (paper Alg. 7 lines
// 1-4). Memory is Θ(3T) edge records, allocated exactly via a counting
// pre-pass.
func ExtractAll(g *graph.Graph) *All {
	n := g.N()
	counts := g.TrianglesPerVertex() // m_v per vertex
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int64(counts[v])
	}
	edges := make([]graph.Edge, off[n])
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	put := func(center int32, a, b int32) {
		if a > b {
			a, b = b, a
		}
		edges[cursor[center]] = graph.Edge{U: a, V: b}
		cursor[center]++
	}
	g.ForEachTriangle(func(t graph.Triangle) bool {
		put(t.U, t.V, t.W)
		put(t.V, t.U, t.W)
		put(t.W, t.U, t.V)
		return true
	})
	return &All{g: g, off: off, edges: edges}
}

// EdgeCount returns m_v, the number of edges of v's ego-network (equal to
// the number of triangles through v).
func (a *All) EdgeCount(v int32) int { return int(a.off[v+1] - a.off[v]) }

// Network materializes the ego-network of v from the precollected edges.
// Like ExtractOne it uses a private one-shot Scratch, so the result is
// never invalidated.
func (a *All) Network(v int32) *Network {
	return a.NetworkInto(new(Scratch), v)
}

// NetworkInto is Network into recycled storage: the returned Network
// aliases s and is invalidated by the next extraction into s.
func (a *All) NetworkInto(s *Scratch, v int32) *Network {
	verts := a.g.Neighbors(v)
	s.b.Reset(len(verts))
	lookup := func(global int32) int32 {
		i := sort.Search(len(verts), func(i int) bool { return verts[i] >= global })
		return int32(i) // caller guarantees membership
	}
	for _, e := range a.edges[a.off[v]:a.off[v+1]] {
		s.b.AddEdge(lookup(e.U), lookup(e.V))
	}
	s.net.Center = v
	s.net.Verts = verts
	s.net.G = s.b.BuildInto(&s.csr)
	return &s.net
}
