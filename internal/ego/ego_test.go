package ego

import (
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

func randomGraph(tb testing.TB, n, extra int, seed int64) *graph.Graph {
	rng := testutil.Rand(tb, seed)
	b := graph.NewBuilder(n)
	for i := 0; i < extra; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// egoViaInduced is the reference: Def. 1 literally, via InducedSubgraph.
func egoViaInduced(g *graph.Graph, v int32) (*graph.Graph, []int32) {
	return g.InducedSubgraph(g.Neighbors(v))
}

func sameGraph(t *testing.T, got, want *graph.Graph, label string) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("%s: N,M = %d,%d want %d,%d", label, got.N(), got.M(), want.N(), want.M())
	}
	for id := int32(0); int(id) < want.M(); id++ {
		e := want.Edge(id)
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("%s: missing edge (%d,%d)", label, e.U, e.V)
		}
	}
}

func TestExtractOneMatchesInduced(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(t, 30, 140, seed)
		for v := int32(0); int(v) < g.N(); v++ {
			net := ExtractOne(g, v)
			want, l2g := egoViaInduced(g, v)
			if len(net.Verts) != len(l2g) {
				t.Fatalf("seed %d v %d: vertex count mismatch", seed, v)
			}
			sameGraph(t, net.G, want, "ExtractOne")
		}
	}
}

func TestExtractAllMatchesExtractOne(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(t, 35, 180, seed+50)
		all := ExtractAll(g)
		for v := int32(0); int(v) < g.N(); v++ {
			one := ExtractOne(g, v)
			batch := all.Network(v)
			if all.EdgeCount(v) != one.G.M() {
				t.Fatalf("seed %d v %d: EdgeCount %d != m_v %d",
					seed, v, all.EdgeCount(v), one.G.M())
			}
			sameGraph(t, batch.G, one.G, "ExtractAll")
		}
	}
}

func TestFig1EgoOfV(t *testing.T) {
	g := gen.Fig1Graph()
	net := ExtractOne(g, gen.Fig1V)
	if len(net.Verts) != 14 {
		t.Fatalf("|N(v)| = %d, want 14", len(net.Verts))
	}
	// 6 + 6 clique edges + 2 bridges + 12 octahedron edges.
	if net.G.M() != 26 {
		t.Fatalf("ego edges = %d, want 26", net.G.M())
	}
	// s1, s2 are not neighbors of v.
	if net.Local(gen.Fig1S1) != -1 || net.Local(gen.Fig1S2) != -1 {
		t.Fatal("outsiders leaked into the ego-network")
	}
	// Local/Global round-trip.
	for l := int32(0); int(l) < len(net.Verts); l++ {
		if net.Local(net.Global(l)) != l {
			t.Fatalf("Local(Global(%d)) != %d", l, l)
		}
	}
}

func TestFig1EgoOfX1(t *testing.T) {
	g := gen.Fig1Graph()
	net := ExtractOne(g, gen.Fig1X1)
	// N(x1) = {v, x2, x3, x4, s1}.
	if len(net.Verts) != 5 {
		t.Fatalf("|N(x1)| = %d, want 5", len(net.Verts))
	}
	// Edges: v-x2, v-x3, v-x4, x2-x3, x2-x4, x3-x4, s1-x3.
	if net.G.M() != 7 {
		t.Fatalf("ego edges = %d, want 7", net.G.M())
	}
}

func TestGlobalSets(t *testing.T) {
	g := gen.Fig1Graph()
	net := ExtractOne(g, gen.Fig1V)
	lx1 := net.Local(gen.Fig1X1)
	ly1 := net.Local(gen.Fig1Y1)
	out := net.GlobalSets([][]int32{{lx1, ly1}})
	if len(out) != 1 || out[0][0] != gen.Fig1X1 || out[0][1] != gen.Fig1Y1 {
		t.Fatalf("GlobalSets = %v", out)
	}
}

func TestEgoOfIsolatedAndLeaf(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // 2, 3 isolated... 3 isolated
	b.AddEdge(1, 2)
	g := b.Build()
	net := ExtractOne(g, 3)
	if len(net.Verts) != 0 || net.G.M() != 0 {
		t.Fatal("isolated vertex should have empty ego-network")
	}
	net = ExtractOne(g, 0)
	if len(net.Verts) != 1 || net.G.M() != 0 {
		t.Fatal("leaf ego-network should be a single isolated vertex")
	}
}

// TestExtractOneIntoMatchesExtractOne pins the scratch contract: one
// Scratch reused across every vertex (with stale state from prior,
// larger ego-networks) extracts networks identical to the fresh
// allocate-path extraction.
func TestExtractOneIntoMatchesExtractOne(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(t, 30, 140, seed+100)
		var s Scratch
		// Two sweeps: descending then ascending, so the reused scratch
		// shrinks and grows across calls.
		order := make([]int32, 0, 2*g.N())
		for v := int32(g.N()) - 1; v >= 0; v-- {
			order = append(order, v)
		}
		for v := int32(0); int(v) < g.N(); v++ {
			order = append(order, v)
		}
		for _, v := range order {
			got := ExtractOneInto(&s, g, v)
			want := ExtractOne(g, v)
			if got.Center != want.Center || len(got.Verts) != len(want.Verts) {
				t.Fatalf("seed %d v %d: header mismatch", seed, v)
			}
			for i := range want.Verts {
				if got.Verts[i] != want.Verts[i] {
					t.Fatalf("seed %d v %d: Verts[%d] = %d, want %d",
						seed, v, i, got.Verts[i], want.Verts[i])
				}
			}
			sameGraph(t, got.G, want.G, "ExtractOneInto")
			if got.G.Fingerprint() != want.G.Fingerprint() {
				t.Fatalf("seed %d v %d: fingerprint of reused-scratch graph diverges", seed, v)
			}
		}
	}
}

// TestNetworkIntoMatchesNetwork pins the batch-extraction scratch path
// the same way.
func TestNetworkIntoMatchesNetwork(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(t, 35, 180, seed+200)
		all := ExtractAll(g)
		var s Scratch
		for v := int32(0); int(v) < g.N(); v++ {
			got := all.NetworkInto(&s, v)
			want := all.Network(v)
			if len(got.Verts) != len(want.Verts) {
				t.Fatalf("seed %d v %d: vertex count mismatch", seed, v)
			}
			sameGraph(t, got.G, want.G, "NetworkInto")
		}
	}
}

// TestGlobalSetsFlatBacking pins the flat-buffer conversion: group
// values identical to a per-group conversion, and writes into one
// returned group can never bleed into a sibling (full-capacity
// subslices).
func TestGlobalSetsFlatBacking(t *testing.T) {
	g := randomGraph(t, 25, 120, 7)
	var v int32 = -1
	for u := int32(0); int(u) < g.N(); u++ {
		if g.Degree(u) >= 4 {
			v = u
			break
		}
	}
	if v < 0 {
		t.Skip("no vertex with degree >= 4")
	}
	net := ExtractOne(g, v)
	n := int32(len(net.Verts))
	local := [][]int32{{0, 1}, {2}, {n - 1, n - 2, 0}, {}}
	out := net.GlobalSets(local)
	if len(out) != len(local) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(local))
	}
	for i, grp := range local {
		if len(out[i]) != len(grp) {
			t.Fatalf("group %d: len %d, want %d", i, len(out[i]), len(grp))
		}
		for j, lv := range grp {
			if out[i][j] != net.Verts[lv] {
				t.Fatalf("group %d[%d] = %d, want %d", i, j, out[i][j], net.Verts[lv])
			}
		}
	}
	// Appending through one group must not overwrite the next group's
	// first element (three-index subslices cap each group).
	first := out[1][0]
	_ = append(out[0], -1) //nolint:staticcheck // probing capacity on purpose
	if out[1][0] != first {
		t.Fatal("append to one group clobbered its sibling: groups share spare capacity")
	}
}

// TestExtractOneIntoAllocFree pins the tentpole: steady-state extraction
// through a reused Scratch performs zero allocations.
func TestExtractOneIntoAllocFree(t *testing.T) {
	g := randomGraph(t, 60, 600, 11)
	var s Scratch
	// Warm the scratch to the largest ego-network first.
	for v := int32(0); int(v) < g.N(); v++ {
		ExtractOneInto(&s, g, v)
	}
	v := int32(0)
	allocs := testing.AllocsPerRun(200, func() {
		ExtractOneInto(&s, g, v)
		v = (v + 1) % int32(g.N())
	})
	if allocs != 0 {
		t.Fatalf("ExtractOneInto allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
