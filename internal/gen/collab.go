package gen

import (
	"math/rand"

	"trussdiv/internal/graph"
)

// CollabConfig parameterizes Collaboration, the substitute for the paper's
// DBLP case-study network (§7.3: 234,879 authors, 542,814 edges, an edge
// meaning >= 3 co-authored papers).
//
// Three author classes reproduce the case study's contrast (paper Figs.
// 16-17, Table 5):
//
//   - Truss hubs publish densely with several research groups AND write
//     occasional bridge papers that weakly tie consecutive groups together.
//     Their ego-networks are one connected blob (defeating Comp-Div), whose
//     bridged dense blocks merge under the core model (defeating Core-Div),
//     yet split cleanly into one maximal connected k-truss per group.
//   - Core hubs publish densely with a few groups, without bridges: their
//     ego-networks decompose under every model, but into fewer contexts.
//   - Fragmented hubs co-author thin "chains" of pair papers across many
//     groups: many size->=5 sparse components (high Comp-Div score) with no
//     dense structure at all (zero Core-Div and Truss-Div score).
type CollabConfig struct {
	Authors        int // total number of authors
	GroupSize      int // authors per research group
	PapersPerGroup int // background papers inside each group
	PaperMin       int // minimum authors on a paper
	PaperMax       int // maximum authors on a paper
	MinCoauthors   int // co-authorship count needed for an edge (DBLP: 3)

	TrussHubs      int // authors of the first class
	TrussHubGroups int // groups each truss hub publishes with
	TrussHubPapers int // papers per (truss hub, group) pair

	CoreHubs      int // authors of the second class
	CoreHubGroups int // groups each core hub publishes with
	CoreHubPapers int // papers per (core hub, group) pair

	FragHubs      int // authors of the third class
	FragHubGroups int // chain-components per fragmented hub
	ChainLength   int // authors per sparse chain (component size)

	Seed int64
}

// DefaultCollabConfig reproduces the case-study phenomenon at laptop
// scale. With k = 5 the expected top-1 context counts mirror the paper's
// Table 5: Comp-Div 8, Core-Div 3, Truss-Div 6.
func DefaultCollabConfig() CollabConfig {
	return CollabConfig{
		Authors:        4000,
		GroupSize:      25,
		PapersPerGroup: 40,
		PaperMin:       3,
		PaperMax:       6,
		MinCoauthors:   2,
		TrussHubs:      6,
		TrussHubGroups: 6,
		TrussHubPapers: 12,
		CoreHubs:       6,
		CoreHubGroups:  3,
		CoreHubPapers:  8,
		FragHubs:       6,
		FragHubGroups:  8,
		ChainLength:    5,
		Seed:           42,
	}
}

// hubClass identifies which class a vertex ID falls into, for tests and
// the case-study harness.
func (c CollabConfig) hubs() (truss, core, frag int) {
	return c.TrussHubs, c.CoreHubs, c.FragHubs
}

// TrussHubIDs returns the vertex IDs of the truss-hub authors.
func (c CollabConfig) TrussHubIDs() []int32 { return idRange(0, c.TrussHubs) }

// CoreHubIDs returns the vertex IDs of the core-hub authors.
func (c CollabConfig) CoreHubIDs() []int32 {
	return idRange(c.TrussHubs, c.CoreHubs)
}

// FragHubIDs returns the vertex IDs of the fragmented-hub authors.
func (c CollabConfig) FragHubIDs() []int32 {
	return idRange(c.TrussHubs+c.CoreHubs, c.FragHubs)
}

func idRange(start, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(start + i)
	}
	return out
}

// Collaboration generates the co-authorship graph. Authors beyond the hub
// classes are partitioned into consecutive research groups; papers are
// author subsets (cliques in the co-authorship multigraph); an edge
// survives once two authors share at least MinCoauthors papers.
func Collaboration(cfg CollabConfig) *graph.Graph {
	if cfg.PaperMin < 2 {
		cfg.PaperMin = 2
	}
	if cfg.PaperMax < cfg.PaperMin {
		cfg.PaperMax = cfg.PaperMin
	}
	if cfg.MinCoauthors < 1 {
		cfg.MinCoauthors = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	nTruss, nCore, nFrag := cfg.hubs()
	hubTotal := nTruss + nCore + nFrag
	regular := cfg.Authors - hubTotal
	groups := regular / cfg.GroupSize
	if groups < 1 {
		groups = 1
	}
	groupMembers := func(gi int) (lo, hi int32) {
		lo = int32(hubTotal + gi*cfg.GroupSize)
		hi = lo + int32(cfg.GroupSize)
		if hi > int32(cfg.Authors) {
			hi = int32(cfg.Authors)
		}
		return lo, hi
	}

	coauth := map[int64]int{}
	pairKey := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	addPaper := func(authors []int32) {
		for i := 0; i < len(authors); i++ {
			for j := i + 1; j < len(authors); j++ {
				coauth[pairKey(authors[i], authors[j])]++
			}
		}
	}

	// Background papers inside every group.
	var buf []int32
	for gi := 0; gi < groups; gi++ {
		lo, hi := groupMembers(gi)
		span := int(hi - lo)
		if span < 2 {
			continue
		}
		for p := 0; p < cfg.PapersPerGroup; p++ {
			size := cfg.PaperMin + rng.Intn(cfg.PaperMax-cfg.PaperMin+1)
			if size > span {
				size = span
			}
			buf = sampleDistinct(rng, buf[:0], lo, span, size)
			addPaper(buf)
		}
	}

	// sampleCore picks a stable collaborator subset of a group.
	sampleCore := func(gi, size int) []int32 {
		lo, hi := groupMembers(gi)
		span := int(hi - lo)
		if size > span {
			size = span
		}
		return sampleDistinct(rng, nil, lo, span, size)
	}
	// densePapers makes `papers` papers among hub + rotating core subsets.
	densePapers := func(hub int32, core []int32, papers int) {
		for p := 0; p < papers; p++ {
			size := cfg.PaperMin + rng.Intn(cfg.PaperMax-cfg.PaperMin+1)
			buf = buf[:0]
			buf = append(buf, hub)
			perm := rng.Perm(len(core))
			for _, idx := range perm {
				if len(buf) > size {
					break
				}
				buf = append(buf, core[idx])
			}
			addPaper(buf)
		}
	}

	// Truss hubs: dense cores per group plus bridge papers between
	// consecutive group cores (the paper's "weak ties").
	for h := 0; h < nTruss; h++ {
		hub := int32(h)
		cores := make([][]int32, cfg.TrussHubGroups)
		for gj := 0; gj < cfg.TrussHubGroups; gj++ {
			gi := (h*cfg.TrussHubGroups + gj) % groups
			cores[gj] = sampleCore(gi, cfg.PaperMax+2)
			densePapers(hub, cores[gj], cfg.TrussHubPapers)
		}
		// Bridge papers: hub + one member of group j + one of group j+1,
		// repeated MinCoauthors times so the weak edge materializes. The
		// bridge edge has almost no triangles inside the hub's ego, so it
		// connects components without forming any 5-truss.
		for gj := 0; gj+1 < len(cores); gj++ {
			a := cores[gj][rng.Intn(len(cores[gj]))]
			b := cores[gj+1][rng.Intn(len(cores[gj+1]))]
			for rep := 0; rep < cfg.MinCoauthors; rep++ {
				addPaper([]int32{hub, a, b})
			}
		}
	}

	// Core hubs: dense cores, fewer groups, no bridges.
	for h := 0; h < nCore; h++ {
		hub := int32(nTruss + h)
		for gj := 0; gj < cfg.CoreHubGroups; gj++ {
			gi := (groups/2 + h*cfg.CoreHubGroups + gj) % groups
			densePapers(hub, sampleCore(gi, cfg.PaperMax+2), cfg.CoreHubPapers)
		}
	}

	// Fragmented hubs: sparse chains of pair papers in many groups. Each
	// chain becomes one size-ChainLength path component in the hub's
	// ego-network: great Comp-Div scores, nothing for core or truss.
	for h := 0; h < nFrag; h++ {
		hub := int32(nTruss + nCore + h)
		for gj := 0; gj < cfg.FragHubGroups; gj++ {
			gi := (groups/3 + h*cfg.FragHubGroups + gj) % groups
			chain := sampleCore(gi, cfg.ChainLength)
			for i := 0; i+1 < len(chain); i++ {
				for rep := 0; rep < cfg.MinCoauthors; rep++ {
					addPaper([]int32{hub, chain[i], chain[i+1]})
				}
			}
		}
	}

	b := graph.NewBuilder(cfg.Authors)
	for key, count := range coauth {
		if count >= cfg.MinCoauthors {
			b.AddEdge(int32(key>>32), int32(key&0xffffffff))
		}
	}
	return b.Build()
}

// sampleDistinct appends `size` distinct values from [lo, lo+span) to dst.
func sampleDistinct(rng *rand.Rand, dst []int32, lo int32, span, size int) []int32 {
	if size > span {
		size = span
	}
	seen := make(map[int32]struct{}, size)
	for len(dst) < size {
		v := lo + int32(rng.Intn(span))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		dst = append(dst, v)
	}
	return dst
}
