package gen

import (
	"testing"

	"trussdiv/internal/graph"
)

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 1)
	if g.N() != 2000 {
		t.Fatalf("N = %d, want 2000", g.N())
	}
	// m ≈ attach * n (minus the seed clique adjustment, minus collisions).
	if g.M() < 7500 || g.M() > 8100 {
		t.Fatalf("M = %d, want ≈ 8000", g.M())
	}
	// Determinism.
	g2 := BarabasiAlbert(2000, 4, 1)
	if g2.M() != g.M() {
		t.Fatal("same seed produced different graphs")
	}
	// Heavy tail: max degree far above the mean.
	mean := 2.0 * float64(g.M()) / float64(g.N())
	if float64(g.MaxDegree()) < 5*mean {
		t.Fatalf("max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
	if exp := PowerLawDegreeExponent(g); exp < 1.2 || exp > 4.5 {
		t.Fatalf("degree exponent %.2f outside plausible power-law range", exp)
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	g := ErdosRenyiGNM(100, 300, 2)
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("N=%d M=%d, want 100,300", g.N(), g.M())
	}
	// Cap at complete graph.
	g = ErdosRenyiGNM(5, 100, 2)
	if g.M() != 10 {
		t.Fatalf("capped M = %d, want 10", g.M())
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 8, 3)
	if g.N() != 1024 {
		t.Fatalf("N = %d, want 1024", g.N())
	}
	if g.M() < 4000 || g.M() > 8192 {
		t.Fatalf("M = %d, want within (4000, 8192]", g.M())
	}
}

func TestCommunityOverlayTriangleRich(t *testing.T) {
	plain := BarabasiAlbert(3000, 3, 5)
	overlay := CommunityOverlay(OverlayConfig{
		N: 3000, Attach: 3, Cliques: 400, MinSize: 4, MaxSize: 12, Seed: 5,
	})
	if overlay.CountTriangles() <= 3*plain.CountTriangles() {
		t.Fatalf("overlay triangles %d not >> backbone %d",
			overlay.CountTriangles(), plain.CountTriangles())
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(4, 20, 0.8, 0.01, 9)
	if g.N() != 80 {
		t.Fatalf("N = %d, want 80", g.N())
	}
	// Intra edges should dominate: expected intra ≈ 4*190*0.8 = 608,
	// expected inter ≈ 2400*0.01 = 24.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/20 == int(e.V)/20 {
			intra++
		} else {
			inter++
		}
	}
	if intra < 500 || inter > 100 {
		t.Fatalf("intra=%d inter=%d, want clear community structure", intra, inter)
	}
}

func TestFixtures(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		n, m int
	}{
		{"K5", Clique(5), 5, 10},
		{"C6", Cycle(6), 6, 6},
		{"P4", Path(4), 4, 3},
		{"Star7", Star(7), 7, 6},
		{"W5", Wheel(6), 6, 10},
	}
	for _, tc := range tests {
		if tc.g.N() != tc.n || tc.g.M() != tc.m {
			t.Errorf("%s: N=%d M=%d, want %d,%d", tc.name, tc.g.N(), tc.g.M(), tc.n, tc.m)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	g := DisjointUnion(Clique(4), Cycle(5))
	if g.N() != 9 || g.M() != 11 {
		t.Fatalf("N=%d M=%d, want 9,11", g.N(), g.M())
	}
	_, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
}

func TestFig1GraphShape(t *testing.T) {
	g := Fig1Graph()
	if g.N() != 17 {
		t.Fatalf("|V| = %d, want 17 (paper Example 2)", g.N())
	}
	// 14 spokes + 6 + 6 clique edges + 2 bridges + 12 octahedron + 3 outsiders.
	if g.M() != 43 {
		t.Fatalf("|E| = %d, want 43", g.M())
	}
	if g.Degree(Fig1V) != 14 {
		t.Fatalf("d(v) = %d, want 14", g.Degree(Fig1V))
	}
	// Octahedron: each r vertex has degree 4 within H2, +1 for v.
	for u := Fig1R1; u <= Fig1R6; u++ {
		if g.Degree(u) != 5 {
			t.Fatalf("d(r%d) = %d, want 5", u-Fig1R1+1, g.Degree(u))
		}
	}
	// Antipodal pairs absent.
	for _, p := range [][2]int32{{Fig1R1, Fig1R4}, {Fig1R2, Fig1R5}, {Fig1R3, Fig1R6}} {
		if g.HasEdge(p[0], p[1]) {
			t.Fatalf("antipodal edge (%d,%d) present", p[0], p[1])
		}
	}
	if len(Fig1Names()) != 17 {
		t.Fatal("Fig1Names length mismatch")
	}
}

func TestCollaborationCaseStudyShape(t *testing.T) {
	cfg := DefaultCollabConfig()
	cfg.Authors = 1500
	cfg.PapersPerGroup = 25
	g := Collaboration(cfg)
	if g.N() != 1500 {
		t.Fatalf("N = %d, want 1500", g.N())
	}
	if g.M() == 0 {
		t.Fatal("collaboration graph has no edges")
	}
	// Truss hubs should be high-degree bridging vertices.
	hubDeg := 0
	for _, h := range cfg.TrussHubIDs() {
		hubDeg += g.Degree(h)
	}
	meanHub := float64(hubDeg) / float64(cfg.TrussHubs)
	meanAll := 2 * float64(g.M()) / float64(g.N())
	if meanHub < 1.5*meanAll {
		t.Fatalf("truss hub mean degree %.1f not above population mean %.1f", meanHub, meanAll)
	}
	// The three ID ranges are disjoint and consecutive.
	ids := append(append(cfg.TrussHubIDs(), cfg.CoreHubIDs()...), cfg.FragHubIDs()...)
	for i, id := range ids {
		if id != int32(i) {
			t.Fatalf("hub IDs not consecutive: %v", ids)
		}
	}
}

// TestGeneratorsDeterministic pins same-seed reproducibility: the
// persistent index store fingerprints graphs, so a generator that lets
// Go's randomized map iteration order leak into its RNG stream (as
// BarabasiAlbert's target loop once did) breaks every cross-process
// warm start on the synthetic datasets.
func TestGeneratorsDeterministic(t *testing.T) {
	sameEdges := func(name string, a, b *graph.Graph) {
		t.Helper()
		if a.M() != b.M() {
			t.Fatalf("%s: same seed produced %d vs %d edges", name, a.M(), b.M())
		}
		for id, e := range a.Edges() {
			if e != b.Edge(int32(id)) {
				t.Fatalf("%s: edge %d differs: %v vs %v", name, id, e, b.Edge(int32(id)))
			}
		}
	}
	sameEdges("BarabasiAlbert",
		BarabasiAlbert(2000, 4, 42), BarabasiAlbert(2000, 4, 42))
	cfg := OverlayConfig{
		N: 2000, Attach: 4, Cliques: 300, MinSize: 4, MaxSize: 10,
		Window: 100, AnchorBias: 0.5, Diffuse: 40, Seed: 42,
	}
	sameEdges("CommunityOverlay", CommunityOverlay(cfg), CommunityOverlay(cfg))
}
