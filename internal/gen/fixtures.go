package gen

import "trussdiv/internal/graph"

// Vertex IDs of the paper's running example (Fig. 1). The graph has 17
// vertices: the query vertex v, two 4-cliques {x1..x4} and {y1..y4} joined
// by the bridge edges (x2,y1) and (x4,y1), an octahedron {r1..r6}, and two
// outsiders s1, s2 that are not neighbors of v.
const (
	Fig1V  int32 = 0
	Fig1X1 int32 = 1
	Fig1X2 int32 = 2
	Fig1X3 int32 = 3
	Fig1X4 int32 = 4
	Fig1Y1 int32 = 5
	Fig1Y2 int32 = 6
	Fig1Y3 int32 = 7
	Fig1Y4 int32 = 8
	Fig1R1 int32 = 9
	Fig1R2 int32 = 10
	Fig1R3 int32 = 11
	Fig1R4 int32 = 12
	Fig1R5 int32 = 13
	Fig1R6 int32 = 14
	Fig1S1 int32 = 15
	Fig1S2 int32 = 16
)

// Fig1Names maps the fixture's vertex IDs to the paper's labels.
func Fig1Names() []string {
	return []string{
		"v", "x1", "x2", "x3", "x4",
		"y1", "y2", "y3", "y4",
		"r1", "r2", "r3", "r4", "r5", "r6",
		"s1", "s2",
	}
}

// Fig1Graph reconstructs the running example of the paper's Figure 1.
// Every number the paper derives from it is reproduced by this fixture:
//
//   - the ego-network of v is H1 ∪ H2 where H1 = two 4-cliques bridged by
//     (x2,y1) and (x4,y1), and H2 = the octahedron on r1..r6;
//   - in H1, sup(x2,y1) = sup(x4,y1) = 1, sup(x2,x4) = 3, all other
//     supports are 2 (paper Fig. 2a);
//   - τ_H1 of the bridges is 3 and of the clique edges 4 (paper Fig. 2b);
//   - with k = 4, SC(v) = {{x1..x4}, {y1..y4}, {r1..r6}}, score(v) = 3;
//   - non-symmetry (paper Obs. 1): τ_{G_N(v)}(r1,r2) = 4 while
//     τ_{G_N(r1)}(v,r2) = 3.
func Fig1Graph() *graph.Graph {
	b := graph.NewBuilder(17)
	// v adjacent to all of x1..x4, y1..y4, r1..r6.
	for u := Fig1X1; u <= Fig1R6; u++ {
		b.AddEdge(Fig1V, u)
	}
	// 4-clique on x1..x4.
	for u := Fig1X1; u <= Fig1X4; u++ {
		for w := u + 1; w <= Fig1X4; w++ {
			b.AddEdge(u, w)
		}
	}
	// 4-clique on y1..y4.
	for u := Fig1Y1; u <= Fig1Y4; u++ {
		for w := u + 1; w <= Fig1Y4; w++ {
			b.AddEdge(u, w)
		}
	}
	// Bridges between the cliques.
	b.AddEdge(Fig1X2, Fig1Y1)
	b.AddEdge(Fig1X4, Fig1Y1)
	// Octahedron on r1..r6: complete except the three "antipodal" pairs
	// (r1,r4), (r2,r5), (r3,r6). Every edge sits in exactly two triangles,
	// so H2 is one maximal connected 4-truss.
	for u := Fig1R1; u <= Fig1R6; u++ {
		for w := u + 1; w <= Fig1R6; w++ {
			if w-u == 3 {
				continue // antipodal pair
			}
			b.AddEdge(u, w)
		}
	}
	// Outsiders keep G connected beyond N(v) as in Fig. 1(a).
	b.AddEdge(Fig1S1, Fig1X1)
	b.AddEdge(Fig1S1, Fig1X3)
	b.AddEdge(Fig1S2, Fig1Y2)
	return b.Build()
}

// Vertex IDs of the paper's Figure 18 fixture (the TSD-index vs TCP-index
// comparison of §8.2).
const (
	Fig18Q1 int32 = 0
	Fig18Q2 int32 = 1
	Fig18Q3 int32 = 2
	Fig18Z1 int32 = 3
	Fig18Z2 int32 = 4
	Fig18Z3 int32 = 5
	Fig18Z4 int32 = 6
	Fig18Z5 int32 = 7
	Fig18Z6 int32 = 8
)

// Fig18Names maps the fixture's vertex IDs to the paper's labels.
func Fig18Names() []string {
	return []string{"q1", "q2", "q3", "z1", "z2", "z3", "z4", "z5", "z6"}
}

// Fig18Graph reconstructs the comparison example of the paper's Figure 18:
// a 9-vertex graph where, for the ego vertex q1,
//
//   - the TCP-index of q1 carries weight 4 on every forest edge (each ego
//     edge participates in a global 4-truss community), while
//   - the TSD-index of q1 carries weights {3,3,3,3,2}: the two triangles
//     inside the ego are only 3-trusses locally, and (q2,q3) — globally a
//     4-truss edge via z5, z6 — has no triangle inside the ego at all, so
//     its local trussness is 2.
//
// Structure: q1,q2,q3 form a triangle; {q1,q2,z1,z2} and {q1,q3,z3,z4} are
// K4s; {q2,q3,z5,z6} is a K4 whose z-vertices are NOT neighbors of q1.
func Fig18Graph() *graph.Graph {
	b := graph.NewBuilder(9)
	// Central triangle.
	b.AddEdge(Fig18Q1, Fig18Q2)
	b.AddEdge(Fig18Q1, Fig18Q3)
	b.AddEdge(Fig18Q2, Fig18Q3)
	// K4 {q1,q2,z1,z2}.
	b.AddEdge(Fig18Q1, Fig18Z1)
	b.AddEdge(Fig18Q1, Fig18Z2)
	b.AddEdge(Fig18Q2, Fig18Z1)
	b.AddEdge(Fig18Q2, Fig18Z2)
	b.AddEdge(Fig18Z1, Fig18Z2)
	// K4 {q1,q3,z3,z4}.
	b.AddEdge(Fig18Q1, Fig18Z3)
	b.AddEdge(Fig18Q1, Fig18Z4)
	b.AddEdge(Fig18Q3, Fig18Z3)
	b.AddEdge(Fig18Q3, Fig18Z4)
	b.AddEdge(Fig18Z3, Fig18Z4)
	// K4 {q2,q3,z5,z6} outside N(q1).
	b.AddEdge(Fig18Q2, Fig18Z5)
	b.AddEdge(Fig18Q2, Fig18Z6)
	b.AddEdge(Fig18Q3, Fig18Z5)
	b.AddEdge(Fig18Q3, Fig18Z6)
	b.AddEdge(Fig18Z5, Fig18Z6)
	return b.Build()
}

// Clique returns the complete graph K_k.
func Clique(k int) *graph.Graph {
	b := graph.NewBuilder(k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Path returns the path graph P_n (n vertices, n-1 edges).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// Wheel returns the wheel W_{n-1}: center 0 joined to a cycle on 1..n-1.
func Wheel(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
		next := i + 1
		if next == n {
			next = 1
		}
		b.AddEdge(int32(i), int32(next))
	}
	return b.Build()
}

// DisjointUnion returns the disjoint union of the given graphs, relabeling
// the vertices of each block after the previous one.
func DisjointUnion(gs ...*graph.Graph) *graph.Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	b := graph.NewBuilder(total)
	base := int32(0)
	for _, g := range gs {
		for _, e := range g.Edges() {
			b.AddEdge(base+e.U, base+e.V)
		}
		base += int32(g.N())
	}
	return b.Build()
}
