// Package gen generates the synthetic graphs used throughout the
// reproduction. The paper (§7) evaluates on eight SNAP social networks, a
// DBLP collaboration network, and a series of power-law graphs from the
// PythonWeb generator; none of those are redistributable here, so this
// package provides seeded generators whose outputs match the *structural
// properties* the algorithms are sensitive to: heavy-tailed degrees,
// triangle-rich communities, and a power-law edge-trussness distribution
// (paper Fig. 3).
//
// Every generator is deterministic given its seed.
package gen

import (
	"math"
	"math/rand"

	"trussdiv/internal/graph"
)

// BarabasiAlbert returns a preferential-attachment power-law graph with n
// vertices where each arriving vertex attaches to `attach` existing
// vertices. This is the substitute for the PythonWeb power-law generator
// used in the paper's scalability experiment (Fig. 12).
func BarabasiAlbert(n, attach int, seed int64) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	if n < attach+1 {
		n = attach + 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Seed clique of attach+1 vertices.
	for u := 0; u <= attach; u++ {
		for v := u + 1; v <= attach; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	// repeated holds one entry per endpoint, so sampling uniformly from it
	// is degree-proportional sampling.
	repeated := make([]int32, 0, 2*attach*n)
	for u := 0; u <= attach; u++ {
		for i := 0; i < attach; i++ {
			repeated = append(repeated, int32(u))
		}
	}
	// Picks are kept in selection order (the map only deduplicates):
	// iterating the map here would feed Go's randomized map order back
	// into `repeated`, making the graph differ across processes despite
	// the fixed seed — which breaks anything fingerprinting the output,
	// like the index store.
	targets := make(map[int32]struct{}, attach)
	picked := make([]int32, 0, attach)
	for v := attach + 1; v < n; v++ {
		clear(targets)
		picked = picked[:0]
		for len(picked) < attach {
			u := repeated[rng.Intn(len(repeated))]
			if _, dup := targets[u]; dup {
				continue
			}
			targets[u] = struct{}{}
			picked = append(picked, u)
		}
		for _, u := range picked {
			b.AddEdge(int32(v), u)
			repeated = append(repeated, u, int32(v))
		}
	}
	return b.Build()
}

// ErdosRenyiGNM returns a uniform random graph with n vertices and m
// distinct edges (or the maximum possible if m exceeds it).
func ErdosRenyiGNM(n, m int, seed int64) *graph.Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for len(seen) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RMAT returns a recursive-matrix power-law graph with 2^scale vertices and
// approximately edgeFactor * 2^scale edges (duplicates collapse). The
// quadrant probabilities follow the classic Graph500 parameters.
func RMAT(scale, edgeFactor int, seed int64) *graph.Graph {
	const a, b, c = 0.57, 0.19, 0.19 // d = 0.05
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		bld.AddEdge(int32(u), int32(v))
	}
	return bld.Build()
}

// OverlayConfig parameterizes CommunityOverlay.
type OverlayConfig struct {
	N          int     // vertex count
	Attach     int     // Barabási–Albert attachment for the backbone
	Cliques    int     // number of planted cliques
	MinSize    int     // minimum clique size (>= 3)
	MaxSize    int     // maximum clique size
	Window     int     // clique members are drawn from a random window this wide
	AnchorBias float64 // fraction of cliques anchored on a degree-biased hub
	Diffuse    int     // vertices given sparse chain-shaped ego components
	Chains     int     // chains per diffuse vertex (default 6)
	ChainLen   int     // vertices per chain (default 5)
	Seed       int64   // RNG seed
}

// CommunityOverlay returns a Barabási–Albert backbone overlaid with planted
// cliques whose sizes follow a heavy-tailed distribution. This is the
// substitute for the SNAP social networks: the backbone gives the power-law
// degree distribution and the clique overlay gives the triangle-rich,
// power-law edge-trussness profile (paper Fig. 3) that truss decomposition
// and structural-diversity search exercise.
func CommunityOverlay(cfg OverlayConfig) *graph.Graph {
	if cfg.MinSize < 3 {
		cfg.MinSize = 3
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	if cfg.Window < cfg.MaxSize {
		cfg.Window = cfg.MaxSize * 4
	}
	backbone := BarabasiAlbert(cfg.N, cfg.Attach, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	b := graph.NewBuilder(cfg.N)
	for _, e := range backbone.Edges() {
		b.AddEdge(e.U, e.V)
	}
	// Degree-proportional anchor sampling: one entry per backbone edge
	// endpoint. Real social networks concentrate community memberships on
	// hubs; anchored cliques reproduce that, which is what gives the top
	// truss-diversity scores their long tail (paper Fig. 13 intervals).
	anchors := make([]int32, 0, 2*backbone.M())
	for _, e := range backbone.Edges() {
		anchors = append(anchors, e.U, e.V)
	}
	members := make([]int32, 0, cfg.MaxSize)
	for c := 0; c < cfg.Cliques; c++ {
		// Cube a uniform sample so small cliques dominate and large ones
		// form a heavy tail, mirroring the trussness histogram's shape.
		u := rng.Float64()
		size := cfg.MinSize + int(float64(cfg.MaxSize-cfg.MinSize+1)*u*u*u)
		if size > cfg.MaxSize {
			size = cfg.MaxSize
		}
		members = members[:0]
		seen := map[int32]struct{}{}
		base := rng.Intn(cfg.N)
		if cfg.AnchorBias > 0 && rng.Float64() < cfg.AnchorBias {
			// The anchor joins a community placed elsewhere in the graph,
			// so a hub's communities stay distinct in its ego-network.
			anchor := anchors[rng.Intn(len(anchors))]
			seen[anchor] = struct{}{}
			members = append(members, anchor)
		}
		for len(members) < size {
			v := int32((base + rng.Intn(cfg.Window)) % cfg.N)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			members = append(members, v)
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	// Diffuse vertices: sparse chain-shaped ego components. Real social
	// networks are full of users whose neighborhoods fragment into sizable
	// but loosely-knit pieces; these give the component-based diversity
	// model high scores without any dense (trussed) structure, which is
	// exactly the contrast the paper's effectiveness experiments probe.
	if cfg.Chains <= 0 {
		cfg.Chains = 6
	}
	if cfg.ChainLen <= 1 {
		cfg.ChainLen = 5
	}
	for d := 0; d < cfg.Diffuse; d++ {
		center := int32(rng.Intn(cfg.N))
		for c := 0; c < cfg.Chains; c++ {
			prev := int32(-1)
			for l := 0; l < cfg.ChainLen; l++ {
				w := int32(rng.Intn(cfg.N))
				if w == center {
					continue
				}
				b.AddEdge(center, w)
				if prev >= 0 && prev != w {
					b.AddEdge(prev, w)
				}
				prev = w
			}
		}
	}
	return b.Build()
}

// PlantedPartition returns a stochastic block model graph with `communities`
// communities of `size` vertices each, intra-community edge probability pIn
// and inter-community probability pOut.
func PlantedPartition(communities, size int, pIn, pOut float64, seed int64) *graph.Graph {
	n := communities * size
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Intra-community: iterate pairs directly (communities are small).
	for c := 0; c < communities; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < pIn {
					b.AddEdge(int32(base+i), int32(base+j))
				}
			}
		}
	}
	// Inter-community: geometric skipping over the cross-pair count.
	if pOut > 0 {
		crossPairs := float64(n*(n-1)/2 - communities*size*(size-1)/2)
		expected := int(crossPairs * pOut)
		for k := 0; k < expected; k++ {
			for {
				u := int32(rng.Intn(n))
				v := int32(rng.Intn(n))
				if u == v || int(u)/size == int(v)/size {
					continue
				}
				b.AddEdge(u, v)
				break
			}
		}
	}
	return b.Build()
}

// PowerLawDegreeExponent estimates the degree-distribution exponent of g by
// a log-log least-squares fit over degrees >= 2. It exists so tests can
// assert the generators actually produce heavy-tailed graphs.
func PowerLawDegreeExponent(g *graph.Graph) float64 {
	counts := map[int]int{}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(int32(v)); d >= 2 {
			counts[d]++
		}
	}
	var sx, sy, sxx, sxy float64
	var k int
	for d, c := range counts {
		x := math.Log(float64(d))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		k++
	}
	if k < 2 {
		return 0
	}
	fk := float64(k)
	slope := (fk*sxy - sx*sy) / (fk*sxx - sx*sx)
	return -slope
}
