package core

import "trussdiv/internal/graph"

// In-place repair of the per-k ranking tables after an edit batch. The
// rankings (hybrid truss rankings and the per-measure rankings) are global
// orderings, but every entry is a per-vertex score computed from that
// vertex's ego-network alone — so an edit batch can only move the vertices
// in AffectedVertices. Patching removes those vertices from each ranking,
// re-scores them against the repaired index (or the edited graph), and
// merges them back in canonical order. The result is byte-identical to a
// fresh BuildHybrid/BuildMeasureRankings over the edited graph at a cost
// proportional to copying the tables plus re-scoring the affected set,
// instead of re-scoring every vertex.

// PatchHybrid derives the hybrid per-k rankings for the edited graph from
// the previous snapshot's rankings: only the affected vertices (sorted,
// from AffectedVertices) are re-scored against the repaired GCT index idx,
// which must already describe the edited graph. old stays fully usable
// (copy-on-write, like the index UpdateOnto repairs).
func PatchHybrid(old *Hybrid, idx *GCTIndex, affected []int32) *Hybrid {
	g := idx.Graph()
	// The meaningful k range can shrink or grow only through affected
	// vertices, but recomputing it exactly costs one cheap pass over the
	// supernode tops — the same pass BuildHybrid makes.
	maxK := int32(2)
	for v := int32(0); int(v) < g.N(); v++ {
		taus, _ := idx.Supernodes(v)
		if len(taus) > 0 && taus[0] > maxK {
			maxK = taus[0]
		}
	}
	h := &Hybrid{
		g:      g,
		scorer: NewScorer(g),
		perK:   make([][]VertexScore, maxK+1),
		maxK:   maxK,
	}
	aff := make(map[int32]bool, len(affected))
	for _, v := range affected {
		aff[v] = true
	}
	for k := int32(2); k <= maxK; k++ {
		var oldList []VertexScore
		if int(k) < len(old.perK) {
			oldList = old.perK[k]
		}
		fresh := make([]VertexScore, 0, len(affected))
		for _, v := range affected {
			if s := idx.Score(v, k); s > 0 {
				fresh = append(fresh, VertexScore{V: v, Score: s})
			}
		}
		sortAnswer(fresh)
		// BuildHybrid always allocates (possibly empty, never nil) lists,
		// so the merge does too — patched rankings must round-trip through
		// the store identically to built ones.
		h.perK[k] = mergeRanked(oldList, fresh, aff)
	}
	return h
}

// PatchMeasureRankings derives measure m's per-k rankings for the edited
// graph g from the previous snapshot's rankings, re-scoring only the
// affected vertices (one ego decomposition each). The output matches
// BuildMeasureRankings(g, m) exactly: zero scores omitted, perK[k] in
// canonical order, nil for entries below k=2 and for empty lists, and the
// table trimmed to the true maximum k.
func PatchMeasureRankings(g *graph.Graph, m Measure, old [][]VertexScore, affected []int32) [][]VertexScore {
	aff := make(map[int32]bool, len(affected))
	freshScores := make(map[int32][]int, len(affected))
	maxK := int32(len(old)) - 1
	if maxK < 2 {
		maxK = 2
	}
	scorer := NewVertexScorer(g, m)
	for _, v := range affected {
		aff[v] = true
		// ScoresAllK hands back scratch-owned storage; copy before the
		// next iteration reuses it.
		s := append([]int(nil), scorer.ScoresAllK(v)...)
		freshScores[v] = s
		if top := int32(len(s)) - 1; top > maxK {
			maxK = top
		}
	}
	perK := make([][]VertexScore, maxK+1)
	for k := int32(2); k <= maxK; k++ {
		var oldList []VertexScore
		if int(k) < len(old) {
			oldList = old[k]
		}
		var fresh []VertexScore
		for _, v := range affected {
			if s := freshScores[v]; int(k) < len(s) && s[k] > 0 {
				fresh = append(fresh, VertexScore{V: v, Score: s[k]})
			}
		}
		sortAnswer(fresh)
		// BuildMeasureRankings leaves empty lists nil; mirror that so
		// patched tables are indistinguishable from built ones.
		if merged := mergeRanked(oldList, fresh, aff); len(merged) > 0 {
			perK[k] = merged
		}
	}
	// An affected vertex may have held the only entries at the top ks;
	// trim the table to the true maximum exactly as a fresh build sizes it.
	top := int32(2)
	for k := int32(2); k <= maxK; k++ {
		if len(perK[k]) > 0 {
			top = k
		}
	}
	return perK[:top+1]
}

// mergeRanked merges the surviving old entries (old minus the affected
// vertices, already in canonical order) with the freshly re-scored ones
// (also canonical) into one canonically ordered list: score descending,
// vertex ascending. The result never aliases either input.
func mergeRanked(oldList, fresh []VertexScore, aff map[int32]bool) []VertexScore {
	out := make([]VertexScore, 0, len(oldList)+len(fresh))
	ranksBefore := func(a, b VertexScore) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.V < b.V
	}
	i := 0
	for _, e := range oldList {
		if aff[e.V] {
			continue
		}
		for i < len(fresh) && ranksBefore(fresh[i], e) {
			out = append(out, fresh[i])
			i++
		}
		out = append(out, e)
	}
	return append(out, fresh[i:]...)
}
