package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// Cross-engine conformance: every engine must return the *identical*
// Result — same vertices, same order, same scores, same contexts — for
// the same Query, serially and for every worker count. The canonical
// tie order (score desc, vertex asc) is what makes this a meaningful
// byte-equality check rather than a multiset comparison.

// conformanceWorkerCounts are the pool sizes every engine is exercised
// with; 1 is the serial reference path.
func conformanceWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

type conformanceGraph struct {
	name string
	g    *graph.Graph
}

func conformanceGraphs(t *testing.T) []conformanceGraph {
	rng := testutil.Rand(t, 777)
	return []conformanceGraph{
		{"fig1", gen.Fig1Graph()},
		{"star", gen.Star(40)},
		{"overlay", gen.CommunityOverlay(gen.OverlayConfig{
			N: 240, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 9, Seed: rng.Int63(),
		})},
		{"ba", gen.BarabasiAlbert(200, 4, rng.Int63())},
		{"er", gen.ErdosRenyiGNM(150, 900, rng.Int63())},
	}
}

// conformanceEngines builds the five paper engines over one graph.
func conformanceEngines(g *graph.Graph) map[string]searcher {
	gctIdx := BuildGCTIndex(g)
	return map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	}
}

// candidateSets returns the candidate variants each configuration runs
// with: the full range, a shuffled subset, a descending subset (order
// must not matter), and a single vertex.
func candidateSets(rng interface{ Perm(int) []int }, n int) map[string][]int32 {
	perm := rng.Perm(n)
	subset := make([]int32, 0, n/3+1)
	for _, v := range perm[:n/3+1] {
		subset = append(subset, int32(v))
	}
	desc := make([]int32, n/4+1)
	for i := range desc {
		desc[i] = int32(n - 1 - i)
	}
	return map[string][]int32{
		"all":    nil,
		"subset": subset,
		"desc":   desc,
		"single": {int32(n / 2)},
	}
}

func TestEngineConformance(t *testing.T) {
	ctx := context.Background()
	workerCounts := conformanceWorkerCounts()
	for _, cg := range conformanceGraphs(t) {
		engines := conformanceEngines(cg.g)
		online := engines["online"]
		n := cg.g.N()
		rng := testutil.Rand(t, 778)
		for candName, cands := range candidateSets(rng, n) {
			for _, k := range []int32{2, 3, 4} {
				for _, r := range []int{1, 7, n + 13} {
					base := Params{K: k, R: r, Candidates: cands, Workers: 1}
					ref, refStats, err := online.Search(ctx, base)
					if err != nil {
						t.Fatalf("%s/%s k=%d r=%d: online reference: %v", cg.name, candName, k, r, err)
					}
					for name, s := range engines {
						for _, workers := range workerCounts {
							p := base
							p.Workers = workers
							res, stats, err := s.Search(ctx, p)
							if err != nil {
								t.Fatalf("%s/%s k=%d r=%d w=%d %s: %v",
									cg.name, candName, k, r, workers, name, err)
							}
							if !reflect.DeepEqual(res.TopR, ref.TopR) {
								t.Fatalf("%s/%s k=%d r=%d w=%d: %s answer\n%v\nwant (online serial)\n%v",
									cg.name, candName, k, r, workers, name, res.TopR, ref.TopR)
							}
							if !reflect.DeepEqual(res.Contexts, ref.Contexts) {
								t.Fatalf("%s/%s k=%d r=%d w=%d: %s contexts differ from online serial",
									cg.name, candName, k, r, workers, name)
							}
							// The scan engines visit every candidate, so their
							// search-space accounting must not depend on the
							// worker count.
							if name == "online" || name == "gct" {
								if stats.ScoreComputations != refStats.ScoreComputations {
									t.Fatalf("%s/%s k=%d r=%d w=%d: %s scored %d, serial scored %d",
										cg.name, candName, k, r, workers, name,
										stats.ScoreComputations, refStats.ScoreComputations)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestEngineConformanceEdgeCases pins the shared precondition behavior:
// k below 2 and r below 1 fail identically everywhere (including k=0),
// r beyond n clamps, and an empty candidate subset yields an empty
// answer rather than an error.
func TestEngineConformanceEdgeCases(t *testing.T) {
	ctx := context.Background()
	g := gen.Fig1Graph()
	engines := conformanceEngines(g)
	for name, s := range engines {
		for _, workers := range conformanceWorkerCounts() {
			for _, bad := range []Params{
				{K: 0, R: 5, Workers: workers},
				{K: 1, R: 5, Workers: workers},
				{K: 3, R: 0, Workers: workers},
				{K: 3, R: -2, Workers: workers},
				{K: 3, R: 1, Candidates: []int32{int32(g.N())}, Workers: workers},
			} {
				if _, _, err := s.Search(ctx, bad); err == nil {
					t.Fatalf("%s w=%d: Params %+v accepted, want error", name, workers, bad)
				}
			}
			// r > n clamps to n for the full range.
			res, _, err := s.Search(ctx, Params{K: 3, R: 10 * g.N(), Workers: workers})
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, workers, err)
			}
			if len(res.TopR) != g.N() {
				t.Fatalf("%s w=%d: r>n answer size %d, want %d", name, workers, len(res.TopR), g.N())
			}
			// Empty (non-nil) candidate set: nothing to rank.
			res, _, err = s.Search(ctx, Params{K: 3, R: 4, Candidates: []int32{}, Workers: workers})
			if err != nil {
				t.Fatalf("%s w=%d empty candidates: %v", name, workers, err)
			}
			if len(res.TopR) != 0 {
				t.Fatalf("%s w=%d: empty candidates answered %v", name, workers, res.TopR)
			}
		}
	}
}

// TestPadAnswerCanonicalOrder is the regression test for the padAnswer
// ordering fix: when fewer than r candidates carry a positive score, the
// zero-score slots must go to the smallest unused vertex IDs, matching
// the online engine byte for byte — even when the pruning engines never
// scored those vertices.
func TestPadAnswerCanonicalOrder(t *testing.T) {
	// A triangle-free star: every score is 0, so the whole answer is
	// zero-score padding.
	g := gen.Star(9)
	engines := conformanceEngines(g)
	want := []VertexScore{{V: 0}, {V: 1}, {V: 2}, {V: 3}}
	// Candidates listed backwards: the answer must still come out in
	// ascending ID order.
	cands := []int32{8, 7, 6, 5, 4, 3, 2, 1, 0}
	for name, s := range engines {
		for _, p := range []Params{
			{K: 3, R: 4},
			{K: 3, R: 4, Candidates: cands},
		} {
			res, _, err := s.Search(context.Background(), p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(res.TopR, want) {
				t.Fatalf("%s (cands=%v): answer %v, want %v", name, p.Candidates != nil, res.TopR, want)
			}
		}
	}
}

// TestCanonicalTieBreak pins the tie rule itself: with more equal-score
// vertices than answer slots, the smaller IDs win on every engine,
// whatever order candidates arrive in.
func TestCanonicalTieBreak(t *testing.T) {
	// Two disjoint K4s: all eight vertices have score 1 at k=3.
	b := graph.NewBuilder(8)
	for _, quad := range [][4]int32{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				b.AddEdge(quad[i], quad[j])
			}
		}
	}
	g := b.Build()
	want := []VertexScore{{V: 0, Score: 1}, {V: 1, Score: 1}, {V: 2, Score: 1}}
	for name, s := range conformanceEngines(g) {
		for _, cands := range [][]int32{nil, {7, 5, 3, 1, 6, 4, 2, 0}} {
			res, _, err := s.Search(context.Background(),
				Params{K: 3, R: 3, Candidates: cands, SkipContexts: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(res.TopR, want) {
				t.Fatalf("%s (cands %v): answer %v, want %v", name, cands, res.TopR, want)
			}
		}
	}
}

// TestShardRange checks the contiguous shard split covers [0, count)
// exactly once for awkward worker/count combinations.
func TestShardRange(t *testing.T) {
	for _, tc := range []struct{ count, workers int }{
		{10, 3}, {3, 10}, {1, 1}, {7, 7}, {100, 16}, {5, 2},
	} {
		covered := 0
		prevHi := 0
		for w := 0; w < tc.workers; w++ {
			lo, hi := shardRange(tc.count, tc.workers, w)
			if lo != prevHi {
				t.Fatalf("count=%d workers=%d shard %d: lo %d, want %d", tc.count, tc.workers, w, lo, prevHi)
			}
			if hi < lo || hi > tc.count {
				t.Fatalf("count=%d workers=%d shard %d: bad range [%d,%d)", tc.count, tc.workers, w, lo, hi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.count || prevHi != tc.count {
			t.Fatalf("count=%d workers=%d: covered %d ending at %d", tc.count, tc.workers, covered, prevHi)
		}
	}
}
