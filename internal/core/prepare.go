package core

import (
	"runtime"
	"sync"

	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/kcore"
	"trussdiv/internal/truss"
)

// Single-pass multi-structure construction. Every accelerator this
// package builds — the TSD forests, the GCT supernode structures, the
// hybrid per-k truss rankings, and the per-measure rankings — starts
// from the same two per-vertex steps: extract the ego-network and
// decompose it. Building the structures one at a time repeats those
// steps once per structure; BuildAll walks each vertex exactly once and
// feeds the shared extraction (and, for the truss-derived structures,
// the shared decomposition) to every requested consumer, so preparing N
// structures pays for one extraction pass instead of N.

// BuildTargets selects which structures one BuildAll pass produces.
type BuildTargets struct {
	// TSD requests the per-vertex maximum spanning forests (BuildTSDIndex).
	TSD bool
	// GCT requests the compressed supernode structures (BuildGCTIndex).
	GCT bool
	// TrussRanks requests the hybrid engine's per-k truss rankings,
	// byte-identical to BuildHybrid(BuildGCTIndex(g)).Rankings(): by
	// Lemma 3, the supernode/superedge count N_k - M_k a GCT index scores
	// with equals the k-truss component count read straight off the shared
	// decomposition.
	TrussRanks bool
	// Measures requests per-k rankings for the named non-truss measures,
	// byte-identical to BuildMeasureRankings. MeasureTruss entries are
	// ignored (truss rankings are TrussRanks).
	Measures []Measure
}

// BuildProducts carries the structures one BuildAll pass produced;
// fields for unrequested targets stay zero.
type BuildProducts struct {
	TSD          *TSDIndex
	GCT          *GCTIndex
	TrussRanks   [][]VertexScore // feed NewHybridFromRankings
	MeasureRanks map[Measure][][]VertexScore
}

// BuildAll builds every requested structure in one pass over the
// vertices, sharded across `workers` goroutines (0 or negative =
// GOMAXPROCS). Each worker owns one extraction/decomposition scratch
// set and writes per-vertex results into disjoint slots, so the
// assembled products are byte-identical to the dedicated builders'
// regardless of worker count.
func BuildAll(g *graph.Graph, t BuildTargets, workers int) *BuildProducts {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	p := &BuildProducts{}

	var tsd *TSDIndex
	if t.TSD {
		tsd = &TSDIndex{
			g:     g,
			edges: make([][]TSDEdge, n),
			mv:    make([]int32, n),
			vtCum: make([][]int32, n),
		}
	}
	var gct *GCTIndex
	if t.GCT {
		gct = &GCTIndex{g: g, verts: make([]gctVertex, n)}
	}
	var trussVec [][]int32 // per-vertex all-k truss score vectors
	if t.TrussRanks {
		trussVec = make([][]int32, n)
	}
	var compVec, coreVec [][]int32
	for _, m := range t.Measures {
		switch m.Normalize() {
		case MeasureComponent:
			compVec = make([][]int32, n)
		case MeasureCore:
			coreVec = make([][]int32, n)
		}
	}
	needTruss := tsd != nil || gct != nil || trussVec != nil

	const block = 256
	blocks := make(chan int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var es ego.Scratch // per-worker scratch, reused across vertices
			var ts truss.Scratch
			var ks kcore.Scratch
			var cs compScratch
			var allk []int
			for lo := range blocks {
				hi := lo + block
				if hi > int32(n) {
					hi = int32(n)
				}
				for v := lo; v < hi; v++ {
					net := ego.ExtractOneInto(&es, g, v)
					if tsd != nil {
						tsd.mv[v] = int32(net.G.M())
					}
					if net.G.M() == 0 {
						// No triangles through v: every consumer records
						// "no structure" for it, exactly as the dedicated
						// builders do.
						continue
					}
					if needTruss {
						tau := ts.DecomposeInto(net.G)
						if tsd != nil {
							tsd.edges[v] = maxSpanningForest(net.G, tau)
							tsd.vtCum[v] = cumulativeVertexTrussness(net.G, tau)
						}
						if gct != nil {
							gct.verts[v] = buildGCTVertex(net.G, tau)
						}
						if trussVec != nil {
							allk = trussAllK(&ts, net.G, tau, allk)
							trussVec[v] = copyAllK(allk)
						}
					}
					if compVec != nil {
						allk = compAllK(&cs, net.G, allk)
						compVec[v] = copyAllK(allk)
					}
					if coreVec != nil {
						allk = coreAllK(&ks, net.G, allk)
						coreVec[v] = copyAllK(allk)
					}
				}
			}
		}()
	}
	for lo := int32(0); lo < int32(n); lo += block {
		blocks <- lo
	}
	close(blocks)
	wg.Wait()

	p.TSD = tsd
	p.GCT = gct
	if trussVec != nil {
		p.TrussRanks = assembleTrussRanks(trussVec, n)
	}
	if compVec != nil || coreVec != nil {
		p.MeasureRanks = make(map[Measure][][]VertexScore, 2)
		if compVec != nil {
			p.MeasureRanks[MeasureComponent] = assembleMeasureRanks(compVec, n)
		}
		if coreVec != nil {
			p.MeasureRanks[MeasureCore] = assembleMeasureRanks(coreVec, n)
		}
	}
	return p
}

// copyAllK snapshots a scratch-owned all-k vector (indexed by k, entries
// 0 and 1 unused) so it survives the worker's next vertex.
func copyAllK(allk []int) []int32 {
	if len(allk) == 0 {
		return nil
	}
	out := make([]int32, len(allk))
	for i, s := range allk {
		out[i] = int32(s)
	}
	return out
}

// assembleTrussRanks shapes the per-vertex truss vectors into the hybrid
// engine's per-k rankings, matching BuildHybrid byte for byte: perK[k]
// non-nil for every k in [2, maxK] (even when empty), entries in
// canonical order, maxK clamped to at least 2.
func assembleTrussRanks(vecs [][]int32, n int) [][]VertexScore {
	maxK := 2
	for _, vec := range vecs {
		if top := len(vec) - 1; top > maxK {
			maxK = top
		}
	}
	perK := make([][]VertexScore, maxK+1)
	for k := 2; k <= maxK; k++ {
		perK[k] = make([]VertexScore, 0)
	}
	for v := int32(0); int(v) < n; v++ {
		vec := vecs[v]
		for k := 2; k < len(vec); k++ {
			if s := vec[k]; s > 0 {
				perK[k] = append(perK[k], VertexScore{V: v, Score: int(s)})
			}
		}
	}
	for k := 2; k <= maxK; k++ {
		sortAnswer(perK[k])
	}
	return perK
}

// assembleMeasureRanks shapes the per-vertex measure vectors into per-k
// rankings, matching BuildMeasureRankings byte for byte: minimum table
// length 3, empty entries nil, canonical order per k.
func assembleMeasureRanks(vecs [][]int32, n int) [][]VertexScore {
	perK := make([][]VertexScore, 3)
	for v := int32(0); int(v) < n; v++ {
		vec := vecs[v]
		for len(perK) < len(vec) {
			perK = append(perK, nil)
		}
		for k := 2; k < len(vec); k++ {
			if s := vec[k]; s > 0 {
				perK[k] = append(perK[k], VertexScore{V: v, Score: int(s)})
			}
		}
	}
	for k := 2; k < len(perK); k++ {
		sortAnswer(perK[k])
	}
	return perK
}
