package core

import (
	"sort"
	"testing"

	"trussdiv/internal/dsu"
	"trussdiv/internal/gen"
)

// BenchmarkTSDContexts measures TSDIndex.Contexts — the per-answer cost
// of every TSD query with contexts enabled. Its sort-free dense grouping
// replaced a map[int32][]int32 keyed by DSU root; the *MapGrouping
// variant below preserves that original implementation so the win stays
// measurable (on the 2k-vertex overlay: ~2x faster, one alloc fewer,
// and no map iteration whose order needs sorting away).

func benchContextsGraph() *TSDIndex {
	return BuildTSDIndex(gen.CommunityOverlay(gen.OverlayConfig{
		N: 2000, Attach: 4, Cliques: 400, MinSize: 4, MaxSize: 9, Seed: 42,
	}))
}

func BenchmarkTSDContexts(b *testing.B) {
	idx := benchContextsGraph()
	n := int32(idx.Graph().N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Contexts(int32(i)%n, 3)
	}
}

// contextsMapGrouping is the pre-refactor implementation of
// TSDIndex.Contexts (map keyed by DSU root), kept verbatim as the
// benchmark baseline.
func contextsMapGrouping(idx *TSDIndex, v int32, k int32) [][]int32 {
	p := idx.prefixLen(v, k)
	if p == 0 {
		return nil
	}
	verts := idx.g.Neighbors(v)
	d := dsu.New(len(verts))
	for _, e := range idx.edges[v][:p] {
		d.Union(e.U, e.W)
	}
	groups := map[int32][]int32{}
	for _, e := range idx.edges[v][:p] {
		for _, lv := range [2]int32{e.U, e.W} {
			r := d.Find(lv)
			members := groups[r]
			if len(members) == 0 || members[len(members)-1] != verts[lv] {
				groups[r] = append(members, verts[lv])
			}
		}
	}
	out := make([][]int32, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		dedup := members[:0]
		for i, m := range members {
			if i > 0 && m == members[i-1] {
				continue
			}
			dedup = append(dedup, m)
		}
		out = append(out, dedup)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func BenchmarkTSDContextsMapGrouping(b *testing.B) {
	idx := benchContextsGraph()
	n := int32(idx.Graph().N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		contextsMapGrouping(idx, int32(i)%n, 3)
	}
}

// TestContextsMatchesMapGrouping ties the benchmark baseline to the live
// implementation: both groupings must produce identical output on every
// vertex, so the benchmark comparison stays apples-to-apples.
func TestContextsMatchesMapGrouping(t *testing.T) {
	idx := BuildTSDIndex(gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 8, Seed: 7,
	}))
	for _, k := range []int32{2, 3, 5} {
		for v := int32(0); int(v) < idx.Graph().N(); v++ {
			got := idx.Contexts(v, k)
			want := contextsMapGrouping(idx, v, k)
			if len(got) != len(want) {
				t.Fatalf("v=%d k=%d: %d groups, want %d", v, k, len(got), len(want))
			}
			for i := range got {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("v=%d k=%d group %d: size %d, want %d", v, k, i, len(got[i]), len(want[i]))
				}
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("v=%d k=%d group %d member %d: %d, want %d",
							v, k, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}
