package core

import (
	"bytes"
	"testing"

	"trussdiv/internal/gen"
)

func TestTSDIndexRoundTrip(t *testing.T) {
	g := randomGraph(t, 40, 200, 5)
	idx := BuildTSDIndex(g)
	var buf bytes.Buffer
	written, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, buffer has %d", written, buf.Len())
	}
	back, err := ReadTSDIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for k := int32(2); k <= 6; k++ {
		for v := int32(0); int(v) < g.N(); v++ {
			if idx.Score(v, k) != back.Score(v, k) {
				t.Fatalf("k=%d v=%d: score differs after round trip", k, v)
			}
			if idx.ScoreUpperBound(v, k) != back.ScoreUpperBound(v, k) {
				t.Fatalf("k=%d v=%d: bound differs after round trip", k, v)
			}
		}
	}
}

func TestGCTIndexRoundTrip(t *testing.T) {
	g := randomGraph(t, 40, 200, 6)
	idx := BuildGCTIndex(g)
	var buf bytes.Buffer
	written, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, buffer has %d", written, buf.Len())
	}
	back, err := ReadGCTIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	for k := int32(2); k <= 6; k++ {
		for v := int32(0); int(v) < g.N(); v++ {
			if idx.Score(v, k) != back.Score(v, k) {
				t.Fatalf("k=%d v=%d: score differs after round trip", k, v)
			}
		}
	}
}

func TestIndexReadRejectsWrongGraph(t *testing.T) {
	g := randomGraph(t, 30, 120, 7)
	other := gen.Clique(5)
	idx := BuildTSDIndex(g)
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTSDIndex(&buf, other); err == nil {
		t.Fatal("want vertex-count mismatch error")
	}
	gct := BuildGCTIndex(g)
	buf.Reset()
	if _, err := gct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGCTIndex(&buf, other); err == nil {
		t.Fatal("want vertex-count mismatch error")
	}
}

func TestIndexReadRejectsBadMagic(t *testing.T) {
	junk := bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})
	if _, err := ReadTSDIndex(junk, gen.Clique(3)); err == nil {
		t.Fatal("want bad magic error")
	}
	junk = bytes.NewReader([]byte{9, 9, 9, 9, 0, 0, 0, 0})
	if _, err := ReadGCTIndex(junk, gen.Clique(3)); err == nil {
		t.Fatal("want bad magic error")
	}
}

func TestGCTSmallerThanTSD(t *testing.T) {
	// Table 3's headline: the GCT compression is smaller than TSD on
	// triangle-rich graphs (supernode members replace intra-context edges).
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 800, Attach: 3, Cliques: 200, MinSize: 4, MaxSize: 10, Seed: 11,
	})
	tsd := BuildTSDIndex(g)
	gct := BuildGCTIndex(g)
	var tsdBuf, gctBuf bytes.Buffer
	if _, err := tsd.WriteTo(&tsdBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := gct.WriteTo(&gctBuf); err != nil {
		t.Fatal(err)
	}
	if gctBuf.Len() >= tsdBuf.Len() {
		t.Fatalf("GCT on-disk %d >= TSD %d; compression lost", gctBuf.Len(), tsdBuf.Len())
	}
}

// Corrupt serialized headers must be rejected before any oversized
// allocation is honored.
func TestIndexReadRejectsCorruptCounts(t *testing.T) {
	g := randomGraph(t, 20, 70, 31)
	tsd := BuildTSDIndex(g)
	var buf bytes.Buffer
	if _, err := tsd.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The first per-vertex record starts after the 8-byte header plus the
	// n*4-byte mv array; smash its edge count to a huge value.
	off := 8 + g.N()*4
	for i := 0; i < 4; i++ {
		data[off+i] = 0xff
	}
	if _, err := ReadTSDIndex(bytes.NewReader(data), g); err == nil {
		t.Fatal("corrupt TSD edge count accepted")
	}

	gct := BuildGCTIndex(g)
	buf.Reset()
	if _, err := gct.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data = buf.Bytes()
	for i := 0; i < 4; i++ {
		data[8+i] = 0xff // first vertex's supernode count
	}
	if _, err := ReadGCTIndex(bytes.NewReader(data), g); err == nil {
		t.Fatal("corrupt GCT supernode count accepted")
	}
}
