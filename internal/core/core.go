// Package core implements the paper's contribution: truss-based structural
// diversity search. The structural diversity score(v) of a vertex is the
// number of maximal connected k-trusses (social contexts) in its
// ego-network (paper Def. 3); the top-r search problem returns the r
// vertices with the highest scores plus their social contexts (paper §2.3).
//
// Four searchers of increasing sophistication are provided, matching the
// paper's evaluation:
//
//   - Online (Algorithm 3): compute score(v) for every vertex from scratch.
//   - Bound (Algorithm 4): graph sparsification (Property 1) plus the
//     degree/triangle upper bound (Lemma 2) with early termination.
//   - TSD (Algorithms 5-6): a per-vertex maximum-spanning-forest index over
//     trussness-weighted ego-networks; answers any (k, r) in O(m).
//   - GCT (Algorithms 7-8): a supernode/superedge compression of TSD built
//     with one-shot global triangle listing and bitmap truss
//     decomposition; score(v) = N_k - M_k (Lemma 3).
//
// A fifth Hybrid searcher (paper Exp-4) precomputes per-k answer lists but
// recovers social contexts online.
package core

import "sort"

// VertexScore pairs a vertex with its structural diversity score.
type VertexScore struct {
	V     int32
	Score int
}

// Result is a top-r answer: the chosen vertices with their scores, sorted
// by score descending (ties by ascending vertex ID), and the social
// contexts of each chosen vertex as sorted global-vertex lists.
type Result struct {
	TopR     []VertexScore
	Contexts map[int32][][]int32
	// Epoch identifies the graph snapshot that answered, for mutable-graph
	// deployments. Searchers leave it zero; the trussdiv.DB facade stamps
	// it with the epoch of the snapshot the query ran against.
	Epoch uint64
}

// Stats reports search effort. ScoreComputations is the paper's "search
// space" metric (Table 2): the number of vertices whose structural
// diversity was actually computed. Candidates counts vertices that
// survived pruning and entered the candidate order. Engine is filled by
// the routing facade with the name of the engine that answered.
type Stats struct {
	ScoreComputations int
	Candidates        int
	Engine            string
}

// ScoreMultiset returns the sorted (descending) multiset of scores in the
// answer. Two correct searchers must agree on this multiset even when tie
// vertices at the boundary differ (the paper's problem statement permits
// any r vertices attaining the top-r scores).
func (r *Result) ScoreMultiset() []int {
	out := make([]int, len(r.TopR))
	for i, e := range r.TopR {
		out[i] = e.Score
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// sortAnswer orders entries by score descending, vertex ID ascending.
func sortAnswer(entries []VertexScore) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		return entries[i].V < entries[j].V
	})
}

// topRHeap maintains the r best (score, vertex) pairs seen so far as a
// min-heap keyed by score (ties: larger vertex ID is "worse", so answers
// prefer smaller IDs deterministically). The paper's frameworks replace
// the minimum only on strictly larger scores (Algorithm 3 lines 4-7); we
// additionally replace on an equal score with a smaller vertex ID, which
// makes the heap's final contents the r best entries under the total
// order (score desc, vertex asc) regardless of offer order. That
// order-independence is what lets a sharded parallel scan merge
// per-worker heaps into an answer byte-identical to the serial scan's,
// and makes every engine's answer canonical on score ties.
type topRHeap struct {
	r       int
	entries []VertexScore
}

func newTopRHeap(r int) *topRHeap {
	return &topRHeap{r: r, entries: make([]VertexScore, 0, r)}
}

func (h *topRHeap) worse(a, b VertexScore) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.V > b.V
}

func (h *topRHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(h.entries[i], h.entries[parent]) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

func (h *topRHeap) down(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.worse(h.entries[l], h.entries[min]) {
			min = l
		}
		if r < n && h.worse(h.entries[r], h.entries[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.entries[i], h.entries[min] = h.entries[min], h.entries[i]
		i = min
	}
}

// Offer considers (v, score) for the answer set and reports whether it was
// admitted. An entry is admitted while the heap is below capacity, or when
// it beats the current minimum under (score desc, vertex asc) — so equal
// scores resolve to the smaller vertex ID no matter the offer order.
func (h *topRHeap) Offer(v int32, score int) bool {
	if h.r == 0 {
		return false // R capped to an empty candidate set
	}
	e := VertexScore{V: v, Score: score}
	if len(h.entries) < h.r {
		h.entries = append(h.entries, e)
		h.up(len(h.entries) - 1)
		return true
	}
	if h.worse(h.entries[0], e) {
		h.entries[0] = e
		h.down(0)
		return true
	}
	return false
}

// Full reports whether r entries have been collected.
func (h *topRHeap) Full() bool { return len(h.entries) >= h.r }

// MinScore returns the smallest admitted score, or -1 while not full.
func (h *topRHeap) MinScore() int {
	if !h.Full() {
		return -1
	}
	return h.entries[0].Score
}

// Answer extracts the sorted answer list.
func (h *topRHeap) Answer() []VertexScore {
	out := make([]VertexScore, len(h.entries))
	copy(out, h.entries)
	sortAnswer(out)
	return out
}
