package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"trussdiv/internal/graph"
)

// Measure names one structural diversity definition — the axis the
// paper's §7 varies when it compares the truss-based model against the
// component-based (Comp-Div) and core-based (Core-Div) alternatives.
// The generic engines (Online, Bound) serve every measure; the
// truss-index engines (TSD, GCT, Hybrid) serve only MeasureTruss and
// reject other measures with an *UnsupportedMeasureError.
type Measure string

const (
	// MeasureTruss counts maximal connected k-trusses of the ego-network
	// (the paper's model, Def. 3). It is the default: an empty Measure
	// normalizes to it.
	MeasureTruss Measure = "truss"
	// MeasureComponent counts connected components of the ego-network
	// with at least k vertices (Huang et al. / Chang et al. [7, 21]).
	MeasureComponent Measure = "component"
	// MeasureCore counts maximal connected k-cores of the ego-network
	// (Huang et al. [20]).
	MeasureCore Measure = "core"
)

// AllMeasures lists every supported measure, default first.
func AllMeasures() []Measure {
	return []Measure{MeasureTruss, MeasureComponent, MeasureCore}
}

// Normalize maps the empty measure to the truss default.
func (m Measure) Normalize() Measure {
	if m == "" {
		return MeasureTruss
	}
	return m
}

// Valid reports whether m (after normalization) names a known measure.
func (m Measure) Valid() bool {
	switch m.Normalize() {
	case MeasureTruss, MeasureComponent, MeasureCore:
		return true
	}
	return false
}

// ParseMeasure resolves a user-supplied measure name ("" = truss).
func ParseMeasure(s string) (Measure, error) {
	m := Measure(s)
	if !m.Valid() {
		return "", fmt.Errorf("core: unknown measure %q (known: truss|component|core)", s)
	}
	return m.Normalize(), nil
}

// ErrUnsupportedMeasure is the sentinel matched by errors.Is when a
// query names a measure the chosen engine cannot compute (the TSD, GCT,
// and Hybrid structures encode truss decompositions only); the concrete
// error is *UnsupportedMeasureError.
var ErrUnsupportedMeasure = errors.New("core: engine does not support the requested measure")

// UnsupportedMeasureError reports a (engine, measure) pair outside the
// routing matrix: the engine exists and the measure exists, but that
// engine cannot compute that measure.
type UnsupportedMeasureError struct {
	Engine  string
	Measure Measure
}

func (e *UnsupportedMeasureError) Error() string {
	return fmt.Sprintf("core: engine %q does not support measure %q", e.Engine, e.Measure)
}

// Is makes errors.Is(err, ErrUnsupportedMeasure) match.
func (e *UnsupportedMeasureError) Is(target error) bool { return target == ErrUnsupportedMeasure }

// DivScorer is the per-vertex interface a measure provides to the
// generic engines: an exact score and the social contexts behind it.
// Implementations must be safe for concurrent use (the stock scorers
// pool per-worker scratch internally).
type DivScorer interface {
	Score(v int32, k int32) int
	Contexts(v int32, k int32) [][]int32
}

// NewMeasureScorer returns the shared, concurrency-safe scorer computing
// measure m over g: the truss Scorer (Algorithm 2) or a pooled scratch
// scorer byte-identical to the baseline Comp-Div / Core-Div models. Scan
// loops that own their workers should hold a NewVertexScorer per worker
// instead of sharing one of these.
func NewMeasureScorer(g *graph.Graph, m Measure) DivScorer {
	switch m := m.Normalize(); m {
	case MeasureComponent:
		p := &pooledScorer{name: "Comp-Div"}
		p.pool.New = func() any { return NewVertexScorer(g, m) }
		return p
	case MeasureCore:
		p := &pooledScorer{name: "Core-Div"}
		p.pool.New = func() any { return NewVertexScorer(g, m) }
		return p
	default:
		return NewScorer(g)
	}
}

// pooledScorer adapts the single-worker VertexScorer to the shared
// DivScorer contract by borrowing one per call from a sync.Pool. It keeps
// the baseline model name so it still satisfies baseline.Model, which the
// parity tests (and report labels) rely on.
type pooledScorer struct {
	name string
	pool sync.Pool
}

// Name identifies the measure's model in reports, matching the
// internal/baseline naming.
func (p *pooledScorer) Name() string { return p.name }

func (p *pooledScorer) Score(v int32, k int32) int {
	vs := p.pool.Get().(*VertexScorer)
	score := vs.Score(v, k)
	p.pool.Put(vs)
	return score
}

func (p *pooledScorer) Contexts(v int32, k int32) [][]int32 {
	vs := p.pool.Get().(*VertexScorer)
	out := vs.Contexts(v, k)
	p.pool.Put(vs)
	return out
}

// MeasureUpperBound bounds score(v) under measure m from two quantities
// every measure shares: the degree d(v) and the ego-network edge count
// m_v (= the number of triangles through v). Each measure's contexts
// have a minimum size, which caps how many can fit in the ego-network:
//
//   - truss: Lemma 2 — a k-truss has >= k vertices and >= k(k-1)/2 edges.
//   - component: a connected component with >= k vertices has >= k-1 edges.
//   - core: a connected k-core has >= k+1 vertices (every member needs k
//     neighbors inside it) and therefore >= k(k+1)/2 edges — Lemma 2
//     evaluated at k+1.
func MeasureUpperBound(m Measure, degree int, egoEdges int32, k int32) int {
	switch m.Normalize() {
	case MeasureComponent:
		byVerts := degree / int(k)
		byEdges := int(egoEdges) / int(k-1)
		return min(byVerts, byEdges)
	case MeasureCore:
		return UpperBound(degree, egoEdges, k+1)
	default:
		return UpperBound(degree, egoEdges, k)
	}
}

// BuildMeasureRankings precomputes, for every k, the complete vertex
// ranking of g under measure m — the same per-k artifact the Hybrid
// engine holds for the truss measure, generalized to the alternative
// models. One ego decomposition per vertex yields the scores for every
// k at once (components expose their sizes; cores their full core
// numbers), so the build costs one online scan, after which any top-r
// query under m is an O(r) prefix read. perK[k] is sorted by score
// descending then vertex ascending and omits zero scores; entries below
// k=2 are nil. MeasureTruss rankings come from BuildHybrid instead.
func BuildMeasureRankings(g *graph.Graph, m Measure) [][]VertexScore {
	scorer := NewVertexScorer(g, m)
	// Stream each vertex's all-k vector straight into the per-k lists
	// (ascending v, so each list is already vertex-ordered before the
	// canonical sort) instead of materializing an n × maxK table.
	perK := make([][]VertexScore, 3) // grown on demand; entries below k=2 stay nil
	for v := int32(0); int(v) < g.N(); v++ {
		scores := scorer.ScoresAllK(v)
		for len(perK) < len(scores) {
			perK = append(perK, nil)
		}
		for k := 2; k < len(scores); k++ {
			if s := scores[k]; s > 0 {
				perK[k] = append(perK[k], VertexScore{V: v, Score: s})
			}
		}
	}
	for k := 2; k < len(perK); k++ {
		sortAnswer(perK[k])
	}
	return perK
}

// Ranked serves top-r queries of one measure from its precomputed per-k
// rankings — the Hybrid strategy generalized beyond the truss model.
// Reading the ranking is an O(r) prefix scan; the social contexts of the
// answer vertices are recovered online with the measure's own scorer
// (sharded across p.Workers, the dominant per-answer cost).
type Ranked struct {
	g      *graph.Graph
	m      Measure
	scorer DivScorer
	perK   [][]VertexScore
}

// NewRanked returns a rankings-backed searcher for measure m over g.
// perK must come from BuildMeasureRankings(g, m) (or an index store that
// persisted it): perK[k] sorted by score descending, vertex ascending,
// zero scores omitted. The rankings are adopted, not copied.
func NewRanked(g *graph.Graph, m Measure, perK [][]VertexScore) *Ranked {
	return &Ranked{g: g, m: m.Normalize(), scorer: NewMeasureScorer(g, m), perK: perK}
}

// Measure returns the measure the rankings were scored under.
func (r *Ranked) Measure() Measure { return r.m }

// Search answers a top-r query of r.Measure() from the rankings; a
// Params.Measure naming any other measure is rejected with an
// *UnsupportedMeasureError.
func (r *Ranked) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	p, err := p.normalized(r.g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != r.m {
		return nil, nil, &UnsupportedMeasureError{Engine: "ranked[" + string(r.m) + "]", Measure: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var ranked []VertexScore
	if int(p.K) < len(r.perK) {
		ranked = r.perK[p.K]
	}
	answer, candidates := rankedAnswer(ranked, r.g.N(), p)
	stats := &Stats{Candidates: candidates}
	res, err := finishResult(ctx, answer, p, func(v int32) [][]int32 {
		return r.scorer.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	if !p.SkipContexts {
		// One online recovery per answer vertex, same accounting as Hybrid.
		stats.ScoreComputations = len(answer)
	}
	return res, exportStats(stats, p), nil
}
