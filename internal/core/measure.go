package core

import (
	"context"
	"errors"
	"fmt"

	"trussdiv/internal/baseline"
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/kcore"
)

// Measure names one structural diversity definition — the axis the
// paper's §7 varies when it compares the truss-based model against the
// component-based (Comp-Div) and core-based (Core-Div) alternatives.
// The generic engines (Online, Bound) serve every measure; the
// truss-index engines (TSD, GCT, Hybrid) serve only MeasureTruss and
// reject other measures with an *UnsupportedMeasureError.
type Measure string

const (
	// MeasureTruss counts maximal connected k-trusses of the ego-network
	// (the paper's model, Def. 3). It is the default: an empty Measure
	// normalizes to it.
	MeasureTruss Measure = "truss"
	// MeasureComponent counts connected components of the ego-network
	// with at least k vertices (Huang et al. / Chang et al. [7, 21]).
	MeasureComponent Measure = "component"
	// MeasureCore counts maximal connected k-cores of the ego-network
	// (Huang et al. [20]).
	MeasureCore Measure = "core"
)

// AllMeasures lists every supported measure, default first.
func AllMeasures() []Measure {
	return []Measure{MeasureTruss, MeasureComponent, MeasureCore}
}

// Normalize maps the empty measure to the truss default.
func (m Measure) Normalize() Measure {
	if m == "" {
		return MeasureTruss
	}
	return m
}

// Valid reports whether m (after normalization) names a known measure.
func (m Measure) Valid() bool {
	switch m.Normalize() {
	case MeasureTruss, MeasureComponent, MeasureCore:
		return true
	}
	return false
}

// ParseMeasure resolves a user-supplied measure name ("" = truss).
func ParseMeasure(s string) (Measure, error) {
	m := Measure(s)
	if !m.Valid() {
		return "", fmt.Errorf("core: unknown measure %q (known: truss|component|core)", s)
	}
	return m.Normalize(), nil
}

// ErrUnsupportedMeasure is the sentinel matched by errors.Is when a
// query names a measure the chosen engine cannot compute (the TSD, GCT,
// and Hybrid structures encode truss decompositions only); the concrete
// error is *UnsupportedMeasureError.
var ErrUnsupportedMeasure = errors.New("core: engine does not support the requested measure")

// UnsupportedMeasureError reports a (engine, measure) pair outside the
// routing matrix: the engine exists and the measure exists, but that
// engine cannot compute that measure.
type UnsupportedMeasureError struct {
	Engine  string
	Measure Measure
}

func (e *UnsupportedMeasureError) Error() string {
	return fmt.Sprintf("core: engine %q does not support measure %q", e.Engine, e.Measure)
}

// Is makes errors.Is(err, ErrUnsupportedMeasure) match.
func (e *UnsupportedMeasureError) Is(target error) bool { return target == ErrUnsupportedMeasure }

// DivScorer is the per-vertex interface a measure provides to the
// generic engines: an exact score and the social contexts behind it.
// Implementations must be safe for concurrent use (the stock scorers
// carry no mutable state beyond the graph reference).
type DivScorer interface {
	Score(v int32, k int32) int
	Contexts(v int32, k int32) [][]int32
}

// NewMeasureScorer returns the scorer computing measure m over g: the
// truss Scorer (Algorithm 2), or the baseline Comp-Div / Core-Div
// models promoted to first-class measures.
func NewMeasureScorer(g *graph.Graph, m Measure) DivScorer {
	switch m.Normalize() {
	case MeasureComponent:
		return baseline.NewCompDiv(g)
	case MeasureCore:
		return baseline.NewCoreDiv(g)
	default:
		return NewScorer(g)
	}
}

// MeasureUpperBound bounds score(v) under measure m from two quantities
// every measure shares: the degree d(v) and the ego-network edge count
// m_v (= the number of triangles through v). Each measure's contexts
// have a minimum size, which caps how many can fit in the ego-network:
//
//   - truss: Lemma 2 — a k-truss has >= k vertices and >= k(k-1)/2 edges.
//   - component: a connected component with >= k vertices has >= k-1 edges.
//   - core: a connected k-core has >= k+1 vertices (every member needs k
//     neighbors inside it) and therefore >= k(k+1)/2 edges — Lemma 2
//     evaluated at k+1.
func MeasureUpperBound(m Measure, degree int, egoEdges int32, k int32) int {
	switch m.Normalize() {
	case MeasureComponent:
		byVerts := degree / int(k)
		byEdges := int(egoEdges) / int(k-1)
		return min(byVerts, byEdges)
	case MeasureCore:
		return UpperBound(degree, egoEdges, k+1)
	default:
		return UpperBound(degree, egoEdges, k)
	}
}

// BuildMeasureRankings precomputes, for every k, the complete vertex
// ranking of g under measure m — the same per-k artifact the Hybrid
// engine holds for the truss measure, generalized to the alternative
// models. One ego decomposition per vertex yields the scores for every
// k at once (components expose their sizes; cores their full core
// numbers), so the build costs one online scan, after which any top-r
// query under m is an O(r) prefix read. perK[k] is sorted by score
// descending then vertex ascending and omits zero scores; entries below
// k=2 are nil. MeasureTruss rankings come from BuildHybrid instead.
func BuildMeasureRankings(g *graph.Graph, m Measure) [][]VertexScore {
	perVertex := make([][]int, g.N()) // perVertex[v][k] = score(v, k), index 0/1 unused
	maxK := int32(2)
	for v := int32(0); int(v) < g.N(); v++ {
		scores := measureScoresAllK(g, v, m)
		perVertex[v] = scores
		if top := int32(len(scores)) - 1; top > maxK {
			maxK = top
		}
	}
	perK := make([][]VertexScore, maxK+1)
	for k := int32(2); k <= maxK; k++ {
		var list []VertexScore
		for v := int32(0); int(v) < g.N(); v++ {
			if int(k) < len(perVertex[v]) {
				if s := perVertex[v][k]; s > 0 {
					list = append(list, VertexScore{V: v, Score: s})
				}
			}
		}
		sortAnswer(list)
		perK[k] = list
	}
	return perK
}

// Ranked serves top-r queries of one measure from its precomputed per-k
// rankings — the Hybrid strategy generalized beyond the truss model.
// Reading the ranking is an O(r) prefix scan; the social contexts of the
// answer vertices are recovered online with the measure's own scorer
// (sharded across p.Workers, the dominant per-answer cost).
type Ranked struct {
	g      *graph.Graph
	m      Measure
	scorer DivScorer
	perK   [][]VertexScore
}

// NewRanked returns a rankings-backed searcher for measure m over g.
// perK must come from BuildMeasureRankings(g, m) (or an index store that
// persisted it): perK[k] sorted by score descending, vertex ascending,
// zero scores omitted. The rankings are adopted, not copied.
func NewRanked(g *graph.Graph, m Measure, perK [][]VertexScore) *Ranked {
	return &Ranked{g: g, m: m.Normalize(), scorer: NewMeasureScorer(g, m), perK: perK}
}

// Measure returns the measure the rankings were scored under.
func (r *Ranked) Measure() Measure { return r.m }

// Search answers a top-r query of r.Measure() from the rankings; a
// Params.Measure naming any other measure is rejected with an
// *UnsupportedMeasureError.
func (r *Ranked) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	p, err := p.normalized(r.g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != r.m {
		return nil, nil, &UnsupportedMeasureError{Engine: "ranked[" + string(r.m) + "]", Measure: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var ranked []VertexScore
	if int(p.K) < len(r.perK) {
		ranked = r.perK[p.K]
	}
	answer, candidates := rankedAnswer(ranked, r.g.N(), p)
	stats := &Stats{Candidates: candidates}
	res, err := finishResult(ctx, answer, p, func(v int32) [][]int32 {
		return r.scorer.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	if !p.SkipContexts {
		// One online recovery per answer vertex, same accounting as Hybrid.
		stats.ScoreComputations = len(answer)
	}
	return res, exportStats(stats, p), nil
}

// measureScoresAllK computes score(v, k) for every k >= 2 with a
// positive score, from one ego-network decomposition. The returned
// slice is indexed by k (length maxK+1, entries 0 and 1 unused).
func measureScoresAllK(g *graph.Graph, v int32, m Measure) []int {
	net := ego.ExtractOne(g, v)
	if net.G.M() == 0 {
		return nil
	}
	switch m.Normalize() {
	case MeasureComponent:
		// Component sizes give every threshold at once: a size-s component
		// counts toward score(v, k) for every k <= s.
		labels, count := net.G.ConnectedComponents()
		sizes := make([]int32, count)
		for _, lbl := range labels {
			sizes[lbl]++
		}
		maxS := int32(0)
		for _, s := range sizes {
			if s > maxS {
				maxS = s
			}
		}
		if maxS < 2 {
			return nil
		}
		scores := make([]int, maxS+1)
		for _, s := range sizes {
			for k := int32(2); k <= s; k++ {
				scores[k]++
			}
		}
		return scores
	case MeasureCore:
		core := kcore.Decompose(net.G)
		maxC := kcore.Degeneracy(core)
		if maxC < 2 {
			return nil
		}
		scores := make([]int, maxC+1)
		for k := int32(2); k <= maxC; k++ {
			scores[k] = kcore.CountComponents(net.G, core, k)
		}
		return scores
	default:
		panic("core: BuildMeasureRankings is for the non-truss measures; use BuildHybrid")
	}
}
