package core

import (
	"fmt"

	"trussdiv/internal/graph"
)

// This file is the bridge between the in-memory index structures and the
// store's format-v3 flat slabs: each ragged per-vertex structure becomes a
// handful of flat arrays plus int64 offset tables, so the store can write
// them as fixed-width little-endian sections and a reader can reconstruct
// the index over zero-copy views of an mmap'd file. Reconstruction is O(n)
// slice-header surgery — no per-element decode — and the resulting index
// aliases the caller's arrays, which therefore must stay immutable (and
// mapped) for the life of the index.

// TSDFlat is the flat-slab form of a TSDIndex. ForestOff and CumOff have
// len n+1; vertex v's forest is Forest[ForestOff[v]:ForestOff[v+1]] and its
// cumulative vertex-trussness histogram is Cum[CumOff[v]:CumOff[v+1]].
type TSDFlat struct {
	Mv        []int32
	ForestOff []int64
	Forest    []TSDEdge
	CumOff    []int64
	Cum       []int32
}

// Flatten exports the index as flat slabs. Mv aliases index storage; the
// ragged structures are concatenated into fresh arrays. Callers may
// serialize the result without further copying but must not modify it.
func (idx *TSDIndex) Flatten() TSDFlat {
	n := len(idx.edges)
	f := TSDFlat{
		Mv:        idx.mv,
		ForestOff: make([]int64, n+1),
		CumOff:    make([]int64, n+1),
	}
	var nf, nc int64
	for v := 0; v < n; v++ {
		f.ForestOff[v] = nf
		f.CumOff[v] = nc
		nf += int64(len(idx.edges[v]))
		nc += int64(len(idx.vtCum[v]))
	}
	f.ForestOff[n], f.CumOff[n] = nf, nc
	f.Forest = make([]TSDEdge, 0, nf)
	f.Cum = make([]int32, 0, nc)
	for v := 0; v < n; v++ {
		f.Forest = append(f.Forest, idx.edges[v]...)
		f.Cum = append(f.Cum, idx.vtCum[v]...)
	}
	return f
}

// NewTSDIndexFromFlat reconstructs a TSDIndex whose per-vertex slices alias
// the flat arrays in f. Offset tables and per-vertex counts are validated
// structurally in O(n); element-level integrity is the storage layer's job
// (checksums). The arrays must stay immutable while the index is in use.
func NewTSDIndexFromFlat(g *graph.Graph, f TSDFlat) (*TSDIndex, error) {
	n := g.N()
	if len(f.Mv) != n || len(f.ForestOff) != n+1 || len(f.CumOff) != n+1 {
		return nil, fmt.Errorf("core: tsd flat: table lengths %d/%d/%d for %d vertices",
			len(f.Mv), len(f.ForestOff), len(f.CumOff), n)
	}
	if f.ForestOff[n] != int64(len(f.Forest)) || f.CumOff[n] != int64(len(f.Cum)) {
		return nil, fmt.Errorf("core: tsd flat: offset totals %d/%d, want %d/%d",
			f.ForestOff[n], f.CumOff[n], len(f.Forest), len(f.Cum))
	}
	idx := &TSDIndex{
		g:     g,
		edges: make([][]TSDEdge, n),
		mv:    f.Mv,
		vtCum: make([][]int32, n),
	}
	for v := 0; v < n; v++ {
		flo, fhi := f.ForestOff[v], f.ForestOff[v+1]
		clo, chi := f.CumOff[v], f.CumOff[v+1]
		if flo > fhi || clo > chi {
			return nil, fmt.Errorf("core: tsd flat: offsets decrease at vertex %d", v)
		}
		// A spanning forest of the ego-network has < deg(v) edges and the
		// histogram at most deg(v)+1 levels; larger counts mean corruption.
		deg := int64(g.Degree(int32(v)))
		if fhi-flo > deg || chi-clo > deg+2 {
			return nil, fmt.Errorf("core: tsd flat: vertex %d has %d forest edges / %d levels for degree %d",
				v, fhi-flo, chi-clo, deg)
		}
		if fhi > flo {
			idx.edges[v] = f.Forest[flo:fhi:fhi]
		}
		if chi > clo {
			idx.vtCum[v] = f.Cum[clo:chi:chi]
		}
	}
	return idx, nil
}

// GCTFlat is the flat-slab form of a GCTIndex. All *Off tables have len
// n+1. Bounds holds the per-vertex memberOff arrays back to back (each has
// one more entry than the vertex's supernode count, or zero entries for a
// vertex with no ego edges); Edges and EdgeW are parallel and share EdgeOff.
type GCTFlat struct {
	NodeOff   []int64
	NodeTau   []int32
	BoundOff  []int64
	Bounds    []int32
	MemberOff []int64
	Members   []int32
	EdgeOff   []int64
	Edges     []GCTSuperEdge
	EdgeW     []int32
}

// Flatten exports the index as flat slabs.
func (idx *GCTIndex) Flatten() GCTFlat {
	n := len(idx.verts)
	f := GCTFlat{
		NodeOff:   make([]int64, n+1),
		BoundOff:  make([]int64, n+1),
		MemberOff: make([]int64, n+1),
		EdgeOff:   make([]int64, n+1),
	}
	var nn, nb, nm, ne int64
	for v := 0; v < n; v++ {
		gv := &idx.verts[v]
		f.NodeOff[v], f.BoundOff[v], f.MemberOff[v], f.EdgeOff[v] = nn, nb, nm, ne
		nn += int64(len(gv.nodeTau))
		nb += int64(len(gv.memberOff))
		nm += int64(len(gv.members))
		ne += int64(len(gv.edges))
	}
	f.NodeOff[n], f.BoundOff[n], f.MemberOff[n], f.EdgeOff[n] = nn, nb, nm, ne
	f.NodeTau = make([]int32, 0, nn)
	f.Bounds = make([]int32, 0, nb)
	f.Members = make([]int32, 0, nm)
	f.Edges = make([]GCTSuperEdge, 0, ne)
	f.EdgeW = make([]int32, 0, ne)
	for v := 0; v < n; v++ {
		gv := &idx.verts[v]
		f.NodeTau = append(f.NodeTau, gv.nodeTau...)
		f.Bounds = append(f.Bounds, gv.memberOff...)
		f.Members = append(f.Members, gv.members...)
		f.Edges = append(f.Edges, gv.edges...)
		f.EdgeW = append(f.EdgeW, gv.edgeW...)
	}
	return f
}

// NewGCTIndexFromFlat reconstructs a GCTIndex whose per-vertex slices alias
// the flat arrays in f, under the same contract as NewTSDIndexFromFlat.
func NewGCTIndexFromFlat(g *graph.Graph, f GCTFlat) (*GCTIndex, error) {
	n := g.N()
	if len(f.NodeOff) != n+1 || len(f.BoundOff) != n+1 || len(f.MemberOff) != n+1 || len(f.EdgeOff) != n+1 {
		return nil, fmt.Errorf("core: gct flat: offset tables sized %d/%d/%d/%d for %d vertices",
			len(f.NodeOff), len(f.BoundOff), len(f.MemberOff), len(f.EdgeOff), n)
	}
	if f.NodeOff[n] != int64(len(f.NodeTau)) || f.BoundOff[n] != int64(len(f.Bounds)) ||
		f.MemberOff[n] != int64(len(f.Members)) || f.EdgeOff[n] != int64(len(f.Edges)) ||
		len(f.EdgeW) != len(f.Edges) {
		return nil, fmt.Errorf("core: gct flat: offset totals do not match array lengths")
	}
	idx := &GCTIndex{g: g, verts: make([]gctVertex, n)}
	for v := 0; v < n; v++ {
		nlo, nhi := f.NodeOff[v], f.NodeOff[v+1]
		blo, bhi := f.BoundOff[v], f.BoundOff[v+1]
		mlo, mhi := f.MemberOff[v], f.MemberOff[v+1]
		elo, ehi := f.EdgeOff[v], f.EdgeOff[v+1]
		if nlo > nhi || blo > bhi || mlo > mhi || elo > ehi {
			return nil, fmt.Errorf("core: gct flat: offsets decrease at vertex %d", v)
		}
		nodes := nhi - nlo
		switch {
		case nodes == 0:
			if bhi != blo || mhi != mlo || ehi != elo {
				return nil, fmt.Errorf("core: gct flat: vertex %d has data but no supernodes", v)
			}
			continue
		case bhi-blo != nodes+1:
			return nil, fmt.Errorf("core: gct flat: vertex %d has %d member bounds for %d supernodes",
				v, bhi-blo, nodes)
		case int64(g.Degree(int32(v))) < nodes:
			return nil, fmt.Errorf("core: gct flat: vertex %d has %d supernodes for degree %d",
				v, nodes, g.Degree(int32(v)))
		}
		bounds := f.Bounds[blo:bhi:bhi]
		if bounds[0] != 0 || int64(bounds[nodes]) != mhi-mlo {
			return nil, fmt.Errorf("core: gct flat: vertex %d member bounds span [%d,%d], want [0,%d]",
				v, bounds[0], bounds[nodes], mhi-mlo)
		}
		gv := &idx.verts[v]
		gv.nodeTau = f.NodeTau[nlo:nhi:nhi]
		gv.memberOff = bounds
		gv.members = f.Members[mlo:mhi:mhi]
		if ehi > elo {
			gv.edges = f.Edges[elo:ehi:ehi]
			gv.edgeW = f.EdgeW[elo:ehi:ehi]
		}
	}
	return idx, nil
}
