package core

import (
	"context"
	"sort"

	"trussdiv/internal/dsu"
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// TSDEdge is one edge of a vertex's TSD forest: endpoints are local
// indices into the neighbor list N(v), and T is the trussness of the edge
// inside the ego-network G_N(v).
type TSDEdge struct {
	U, W int32
	T    int32
}

// TSDIndex is the paper's truss-based structural diversity index (§5): for
// every vertex v it stores a maximum spanning forest of v's ego-network
// weighted by edge trussness. Observation 2 shows a tree suffices to
// represent membership of a maximal connected k-truss; Observation 3 shows
// the forest must be maximum-weight to avoid losing diversity information.
//
// The index is independent of k and r: one construction answers all
// queries. Index size is O(Σ_v |N(v)|) = O(m).
type TSDIndex struct {
	g     *graph.Graph
	edges [][]TSDEdge // per vertex, sorted by T descending
	mv    []int32     // ego-network edge counts, recorded during the build
	// vtCum[v][w-2] = number of neighbors of v whose ego vertex-trussness
	// is >= w. By the maximum-spanning-forest property this equals the
	// number of vertices touched by the weight->=w forest prefix, giving
	// the O(log) vertex-count bound ⌊t_k/k⌋ used alongside s̃core.
	vtCum [][]int32

	// scratch backing the convenience Score method; parallel searches use
	// one private TSDScorer per worker instead (see Scorer).
	scratch TSDScorer
}

// BuildTSDIndex runs Algorithm 5: per-vertex ego-network extraction, truss
// decomposition, then Kruskal's maximum spanning forest over the
// trussness-weighted ego-network. One extraction and one decomposition
// scratch serve every vertex, so the build allocates only the index
// storage itself.
func BuildTSDIndex(g *graph.Graph) *TSDIndex {
	n := g.N()
	idx := &TSDIndex{
		g:     g,
		edges: make([][]TSDEdge, n),
		mv:    make([]int32, n),
		vtCum: make([][]int32, n),
	}
	var es ego.Scratch
	var ts truss.Scratch
	for v := int32(0); int(v) < n; v++ {
		net := ego.ExtractOneInto(&es, g, v)
		idx.mv[v] = int32(net.G.M())
		if net.G.M() == 0 {
			continue
		}
		tau := ts.DecomposeInto(net.G)
		idx.edges[v] = maxSpanningForest(net.G, tau)
		idx.vtCum[v] = cumulativeVertexTrussness(net.G, tau)
	}
	return idx
}

// cumulativeVertexTrussness returns cum[w-2] = |{u : vt(u) >= w}| for
// w = 2..maxTrussness over the ego-network's vertex trussnesses.
func cumulativeVertexTrussness(local *graph.Graph, tau []int32) []int32 {
	vt := truss.VertexTrussness(local, tau)
	maxT := truss.MaxTrussness(tau)
	if maxT < 2 {
		return nil
	}
	cum := make([]int32, maxT-1)
	for _, t := range vt {
		if t >= 2 {
			cum[t-2]++
		}
	}
	for i := len(cum) - 2; i >= 0; i-- {
		cum[i] += cum[i+1]
	}
	return cum
}

// maxSpanningForest runs Kruskal over the ego-network with edges binned by
// trussness (weights are small integers, so the "sort" is a linear bin
// pass in descending order). The returned forest edges are sorted by
// weight descending, which Score exploits as a prefix filter.
func maxSpanningForest(local *graph.Graph, tau []int32) []TSDEdge {
	m := local.M()
	maxT := truss.MaxTrussness(tau)
	// Bin edge IDs by trussness.
	count := make([]int32, maxT+1)
	for _, t := range tau {
		count[t]++
	}
	start := make([]int32, maxT+2)
	// Descending order: bin maxT first.
	acc := int32(0)
	for t := maxT; t >= 0; t-- {
		start[t] = acc
		acc += count[t]
	}
	byDesc := make([]int32, m)
	cursor := make([]int32, maxT+1)
	copy(cursor, start[:maxT+1])
	for id := int32(0); int(id) < m; id++ {
		t := tau[id]
		byDesc[cursor[t]] = id
		cursor[t]++
	}
	d := dsu.New(local.N())
	forest := make([]TSDEdge, 0, local.N()-1)
	for _, id := range byDesc {
		e := local.Edge(id)
		if d.Union(e.U, e.V) {
			forest = append(forest, TSDEdge{U: e.U, W: e.V, T: tau[id]})
			if len(forest) == local.N()-1 {
				break
			}
		}
	}
	return forest
}

// Graph returns the graph the index was built over.
func (idx *TSDIndex) Graph() *graph.Graph { return idx.g }

// Forest returns v's TSD forest edges (weight-descending). The slice
// aliases index storage.
func (idx *TSDIndex) Forest(v int32) []TSDEdge { return idx.edges[v] }

// prefixLen returns the number of forest edges of v with weight >= k,
// by binary search over the descending weight order.
func (idx *TSDIndex) prefixLen(v int32, k int32) int {
	edges := idx.edges[v]
	return sort.Search(len(edges), func(i int) bool { return edges[i].T < k })
}

// ForestBound is the paper's s̃core(v) = ⌊|{e ∈ TSD_v : w(e) >= k}| /
// (k-1)⌋ (§5.2): a maximal connected k-truss occupies at least k-1 forest
// edges of weight >= k.
func (idx *TSDIndex) ForestBound(v int32, k int32) int {
	return idx.prefixLen(v, k) / int(k-1)
}

// QualifyingNeighbors returns t_k: how many neighbors of v have ego
// vertex-trussness >= k — exactly the vertices the weight->=k forest
// prefix touches.
func (idx *TSDIndex) QualifyingNeighbors(v int32, k int32) int {
	cum := idx.vtCum[v]
	if k < 2 {
		k = 2
	}
	if int(k-2) >= len(cum) {
		return 0
	}
	return int(cum[k-2])
}

// ScoreUpperBound combines every O(log)-computable bound the index offers:
// the paper's s̃core forest-edge bound, the vertex-count bound ⌊t_k/k⌋
// (each context needs k qualifying vertices), and Lemma 2's ego-edge bound
// from the recorded m_v. The combination dominates each term, which keeps
// the TSD search space at or below the bound framework's — the
// relationship Table 2 reports.
func (idx *TSDIndex) ScoreUpperBound(v int32, k int32) int {
	ub := idx.ForestBound(v, k)
	if t := idx.QualifyingNeighbors(v, k) / int(k); t < ub {
		ub = t
	}
	if l2 := UpperBound(idx.g.Degree(v), idx.mv[v], k); l2 < ub {
		ub = l2
	}
	return ub
}

// Score runs Algorithm 6: count the connected components formed by forest
// edges with weight >= k. Because the stored forest is acyclic, the count
// is (#touched vertices) - (#prefix edges); touched vertices are tracked
// with a stamped mark array reused across calls.
//
// Score is not safe for concurrent use (shared scratch); use one Scorer
// per goroutine instead.
func (idx *TSDIndex) Score(v int32, k int32) int {
	idx.scratch.idx = idx
	return idx.scratch.Score(v, k)
}

// TSDScorer answers exact-score queries from a TSDIndex with private
// visit-mark scratch. The index itself is read-only under query load, so
// any number of Scorers may run concurrently over one index — that is how
// parallel searches shard score computations across workers.
type TSDScorer struct {
	idx     *TSDIndex
	stamp   []int32
	stampID int32
}

// Scorer returns a new goroutine-private scorer over the index.
func (idx *TSDIndex) Scorer() *TSDScorer { return &TSDScorer{idx: idx} }

// Score is Algorithm 6 (identical to TSDIndex.Score) against this
// scorer's private scratch.
func (s *TSDScorer) Score(v int32, k int32) int {
	idx := s.idx
	p := idx.prefixLen(v, k)
	if p == 0 {
		return 0
	}
	deg := idx.g.Degree(v)
	if cap(s.stamp) < deg {
		s.stamp = make([]int32, deg)
		s.stampID = 0
	}
	s.stamp = s.stamp[:deg]
	s.stampID++
	touched := 0
	for _, e := range idx.edges[v][:p] {
		if s.stamp[e.U] != s.stampID {
			s.stamp[e.U] = s.stampID
			touched++
		}
		if s.stamp[e.W] != s.stampID {
			s.stamp[e.W] = s.stampID
			touched++
		}
	}
	return touched - p
}

// Contexts reconstructs the social contexts SC(v) from the forest: the
// components of the weight->=k prefix, mapped back to global vertex IDs.
// Grouping walks the local vertex range in ascending order — which is
// ascending global order, because neighbor lists are sorted — assigning
// each touched vertex to its component's slice via a dense root->group
// table. No map (so no nondeterministic iteration to sort away) and no
// sort at all: members come out ascending and groups ordered by first
// member by construction. See BenchmarkTSDContexts for the win over the
// original map[root][]member grouping.
func (idx *TSDIndex) Contexts(v int32, k int32) [][]int32 {
	p := idx.prefixLen(v, k)
	if p == 0 {
		return nil
	}
	verts := idx.g.Neighbors(v)
	deg := len(verts)
	d := dsu.New(deg)
	touched := make([]bool, deg)
	for _, e := range idx.edges[v][:p] {
		d.Union(e.U, e.W)
		touched[e.U] = true
		touched[e.W] = true
	}
	groupOf := make([]int32, deg) // DSU root -> 1-based group index
	groups := make([][]int32, 0, 4)
	for lv := 0; lv < deg; lv++ {
		if !touched[lv] {
			continue
		}
		r := d.Find(int32(lv))
		gi := groupOf[r]
		if gi == 0 {
			groups = append(groups, nil)
			gi = int32(len(groups))
			groupOf[r] = gi
		}
		groups[gi-1] = append(groups[gi-1], verts[lv])
	}
	return groups
}

// SizeBytes returns the in-memory footprint of the stored forests (12
// bytes per forest edge plus slice headers), the quantity reported as
// "index size" in Table 3.
func (idx *TSDIndex) SizeBytes() int64 {
	var b int64
	for _, edges := range idx.edges {
		b += int64(len(edges))*12 + 24
	}
	return b
}

// TSD is the index-based searcher (paper §5.2): candidates are ordered by
// the s̃core bound and pruned with early termination, and exact scores come
// from the forest prefix count in O(|N(v)|).
type TSD struct {
	idx *TSDIndex
}

// NewTSD returns a TSD searcher over a built index.
func NewTSD(idx *TSDIndex) *TSD { return &TSD{idx: idx} }

// Index returns the underlying TSD index.
func (t *TSD) Index() *TSDIndex { return t.idx }

// TopR answers the top-r query from the index alone.
func (t *TSD) TopR(k int32, r int) (*Result, *Stats, error) {
	return t.Search(context.Background(), Params{K: k, R: r})
}

// Search answers the top-r query from the index alone (paper §5.2):
// candidates are ordered by the s̃core bound and pruned with early
// termination; exact scores come from the forest prefix count, computed
// by one private TSDScorer per worker when p.Workers shards the scan
// (Search itself is therefore safe for concurrent use). The bound pass
// polls the context every few hundred vertices, the exact-score pass on
// every candidate.
func (t *TSD) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	g := t.idx.g
	p, err := p.normalized(g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != MeasureTruss {
		// The forest encodes trussness weights; it cannot answer the
		// component or core measures.
		return nil, nil, &UnsupportedMeasureError{Engine: "tsd", Measure: m}
	}
	stats := &Stats{}
	cands := make([]rankedCand, 0, g.N())
	err = forEachCandidate(ctx, g.N(), p.Candidates, false, func(v int32) {
		if ub := t.idx.ScoreUpperBound(v, p.K); ub > 0 {
			cands = append(cands, rankedCand{v, ub})
		}
	})
	if err != nil {
		return nil, nil, err
	}
	stats.Candidates = len(cands)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ub != cands[j].ub {
			return cands[i].ub > cands[j].ub
		}
		return cands[i].v < cands[j].v
	})
	heap, scored, err := scanRanked(ctx, cands, p.R, p.workers(),
		func() func(v int32) int {
			sc := t.idx.Scorer()
			return func(v int32) int { return sc.Score(v, p.K) }
		})
	if err != nil {
		return nil, nil, err
	}
	stats.ScoreComputations = scored
	padAnswer(heap, g.N(), p.Candidates)
	res, err := finishResult(ctx, heap.Answer(), p, func(v int32) [][]int32 {
		return t.idx.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, exportStats(stats, p), nil
}
