package core

import (
	"sync"
	"testing"

	"trussdiv/internal/gen"
)

// Scorer documents itself as safe for concurrent use; GCT queries are
// read-only. Run both under -race.
func TestScorerConcurrentUse(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 500, Attach: 3, Cliques: 100, MinSize: 4, MaxSize: 8, Seed: 5,
	})
	scorer := NewScorer(g)
	want := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = scorer.Score(int32(v), 4)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for v := offset; v < g.N(); v += 8 {
				if got := scorer.Score(int32(v), 4); got != want[v] {
					t.Errorf("concurrent score(%d) = %d, want %d", v, got, want[v])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestGCTConcurrentQueries(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 500, Attach: 3, Cliques: 100, MinSize: 4, MaxSize: 8, Seed: 6,
	})
	idx := BuildGCTIndex(g)
	want := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = idx.Score(int32(v), 4)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			for v := offset; v < g.N(); v += 8 {
				if got := idx.Score(int32(v), 4); got != want[v] {
					t.Errorf("concurrent GCT score(%d) = %d, want %d", v, got, want[v])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
