package core

import (
	"context"
	"sort"

	"trussdiv/internal/dsu"
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// GCTSuperEdge connects two supernodes of a vertex's GCT structure; A and B
// are supernode indices and W is the trussness of the underlying ego edge.
type GCTSuperEdge struct {
	A, B int32
	W    int32
}

// gctVertex is the per-vertex compressed structure (paper Fig. 7): a forest
// of supernodes. Supernodes are stored with trussness descending so that
// N_k = |{S : τ(S) >= k}| is a binary search; superedge weights likewise.
type gctVertex struct {
	nodeTau   []int32 // per supernode, descending
	memberOff []int32 // supernode i owns members[memberOff[i]:memberOff[i+1]]
	members   []int32 // local vertex IDs grouped by supernode
	edges     []GCTSuperEdge
	edgeW     []int32 // superedge weights, descending (same order as edges)
}

// GCTIndex is the compressed truss-based diversity index (paper §6): per
// vertex, supernodes group the members of each same-trussness block of a
// social context, and superedges record the maximum-spanning-forest links
// between blocks. Queries use Lemma 3: score(v) = N_k - M_k.
type GCTIndex struct {
	g     *graph.Graph
	verts []gctVertex
}

// BuildGCTIndex runs Algorithm 7: one-shot global triangle listing to
// extract every ego-network, bitmap-based truss decomposition per
// ego-network, then Algorithm 8 to compress each into supernodes and
// superedges.
func BuildGCTIndex(g *graph.Graph) *GCTIndex {
	n := g.N()
	idx := &GCTIndex{g: g, verts: make([]gctVertex, n)}
	all := ego.ExtractAll(g)
	var es ego.Scratch
	var decomposer truss.BitmapDecomposer
	for v := int32(0); int(v) < n; v++ {
		if all.EdgeCount(v) == 0 {
			continue
		}
		net := all.NetworkInto(&es, v)
		tau := decomposer.Decompose(net.G)
		idx.verts[v] = buildGCTVertex(net.G, tau)
	}
	return idx
}

// buildGCTVertex is Algorithm 8 for one ego-network: initialize one
// supernode per vertex with its vertex trussness, walk ego edges in
// descending trussness, merge equal-trussness supernodes joined by an edge
// of that same trussness, and record a superedge otherwise. Acyclicity is
// enforced by a connectivity DSU (the result is the maximum spanning
// forest of the TSD structure, compressed).
func buildGCTVertex(local *graph.Graph, tau []int32) gctVertex {
	nv, m := local.N(), local.M()
	vt := truss.VertexTrussness(local, tau)

	// Descending-trussness edge order via bin sort.
	maxT := truss.MaxTrussness(tau)
	count := make([]int32, maxT+1)
	for _, t := range tau {
		count[t]++
	}
	start := make([]int32, maxT+1)
	acc := int32(0)
	for t := maxT; t >= 0; t-- {
		start[t] = acc
		acc += count[t]
	}
	byDesc := make([]int32, m)
	cursor := make([]int32, maxT+1)
	copy(cursor, start)
	for id := int32(0); int(id) < m; id++ {
		t := tau[id]
		byDesc[cursor[t]] = id
		cursor[t]++
	}

	node := dsu.New(nv) // supernode membership
	conn := dsu.New(nv) // forest connectivity (supernodes + superedges)
	snTau := make([]int32, nv)
	copy(snTau, vt)
	type rawEdge struct {
		u, w int32 // local vertices; resolved to supernodes afterwards
		t    int32
	}
	var raw []rawEdge
	for _, id := range byDesc {
		e := local.Edge(id)
		if conn.Same(e.U, e.V) {
			continue // already connected in the GCT forest
		}
		ru, rw := node.Find(e.U), node.Find(e.V)
		t := tau[id]
		if snTau[ru] == t && snTau[rw] == t {
			// Same-trussness blocks joined by an edge of that trussness:
			// they belong to one supernode.
			node.Union(ru, rw)
			snTau[node.Find(ru)] = t
		} else {
			raw = append(raw, rawEdge{e.U, e.V, t})
		}
		conn.Union(e.U, e.V)
	}

	// Finalize: index supernodes (skip isolated ego vertices, which belong
	// to no k-truss for any k >= 2), group members, resolve superedges.
	snIndex := make(map[int32]int32)
	var order []int32 // supernode roots
	for u := int32(0); u < int32(nv); u++ {
		if local.Degree(u) == 0 {
			continue
		}
		r := node.Find(u)
		if _, ok := snIndex[r]; !ok {
			snIndex[r] = int32(len(order))
			order = append(order, r)
		}
	}
	// Sort supernodes by trussness descending (ties: root ascending) so
	// N_k is a prefix count.
	sort.Slice(order, func(i, j int) bool {
		ti, tj := snTau[order[i]], snTau[order[j]]
		if ti != tj {
			return ti > tj
		}
		return order[i] < order[j]
	})
	for i, r := range order {
		snIndex[r] = int32(i)
	}
	gv := gctVertex{
		nodeTau:   make([]int32, len(order)),
		memberOff: make([]int32, len(order)+1),
	}
	for i, r := range order {
		gv.nodeTau[i] = snTau[r]
	}
	// Count members per supernode, then fill.
	memberCount := make([]int32, len(order))
	for u := int32(0); u < int32(nv); u++ {
		if local.Degree(u) == 0 {
			continue
		}
		memberCount[snIndex[node.Find(u)]]++
	}
	for i := range order {
		gv.memberOff[i+1] = gv.memberOff[i] + memberCount[i]
	}
	gv.members = make([]int32, gv.memberOff[len(order)])
	fill := make([]int32, len(order))
	copy(fill, gv.memberOff[:len(order)])
	for u := int32(0); u < int32(nv); u++ {
		if local.Degree(u) == 0 {
			continue
		}
		si := snIndex[node.Find(u)]
		gv.members[fill[si]] = u
		fill[si]++
	}
	// Superedges: resolve endpoints to final supernode indices; sort by
	// weight descending for the M_k prefix count.
	gv.edges = make([]GCTSuperEdge, len(raw))
	for i, re := range raw {
		gv.edges[i] = GCTSuperEdge{
			A: snIndex[node.Find(re.u)],
			B: snIndex[node.Find(re.w)],
			W: re.t,
		}
	}
	sort.Slice(gv.edges, func(i, j int) bool { return gv.edges[i].W > gv.edges[j].W })
	gv.edgeW = make([]int32, len(gv.edges))
	for i, e := range gv.edges {
		gv.edgeW[i] = e.W
	}
	return gv
}

// Graph returns the graph the index was built over.
func (idx *GCTIndex) Graph() *graph.Graph { return idx.g }

// Supernodes returns (trussness, member count) pairs of v's supernodes in
// descending trussness order; used by analysis tools and tests.
func (idx *GCTIndex) Supernodes(v int32) (taus []int32, sizes []int32) {
	gv := &idx.verts[v]
	sizes = make([]int32, len(gv.nodeTau))
	for i := range gv.nodeTau {
		sizes[i] = gv.memberOff[i+1] - gv.memberOff[i]
	}
	return gv.nodeTau, sizes
}

// SuperEdges returns v's superedges (weight descending). Aliases storage.
func (idx *GCTIndex) SuperEdges(v int32) []GCTSuperEdge { return idx.verts[v].edges }

// Score applies Lemma 3: score(v) = N_k - M_k, where N_k counts supernodes
// with trussness >= k and M_k counts superedges with weight >= k. Both are
// binary searches over descending arrays, so a query costs O(log d(v)).
func (idx *GCTIndex) Score(v int32, k int32) int {
	gv := &idx.verts[v]
	nk := sort.Search(len(gv.nodeTau), func(i int) bool { return gv.nodeTau[i] < k })
	mk := sort.Search(len(gv.edgeW), func(i int) bool { return gv.edgeW[i] < k })
	return nk - mk
}

// Contexts reconstructs SC(v): union the qualifying supernodes across
// qualifying superedges and emit each component's member vertices as
// global IDs.
func (idx *GCTIndex) Contexts(v int32, k int32) [][]int32 {
	gv := &idx.verts[v]
	nk := sort.Search(len(gv.nodeTau), func(i int) bool { return gv.nodeTau[i] < k })
	if nk == 0 {
		return nil
	}
	d := dsu.New(nk)
	for _, e := range gv.edges {
		if e.W < k {
			break
		}
		d.Union(e.A, e.B) // qualifying superedges always join qualifying nodes
	}
	verts := idx.g.Neighbors(v)
	groups := map[int32][]int32{}
	for si := int32(0); si < int32(nk); si++ {
		r := d.Find(si)
		for _, lv := range gv.members[gv.memberOff[si]:gv.memberOff[si+1]] {
			groups[r] = append(groups[r], verts[lv])
		}
	}
	out := make([][]int32, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SizeBytes returns the in-memory footprint of the compressed structures
// (Table 3's "index size" for GCT).
func (idx *GCTIndex) SizeBytes() int64 {
	var b int64
	for i := range idx.verts {
		gv := &idx.verts[i]
		b += int64(len(gv.nodeTau))*4 + int64(len(gv.memberOff))*4 +
			int64(len(gv.members))*4 + int64(len(gv.edges))*12 +
			int64(len(gv.edgeW))*4 + 5*24
	}
	return b
}

// GCT is the index-based searcher of §6: exact scores for every vertex are
// O(log) reads, so the search computes them all, bin-sorts, and retrieves
// contexts only for the answers.
type GCT struct {
	idx *GCTIndex
}

// NewGCT returns a GCT searcher over a built index.
func NewGCT(idx *GCTIndex) *GCT { return &GCT{idx: idx} }

// Index returns the underlying GCT index.
func (s *GCT) Index() *GCTIndex { return s.idx }

// TopR answers the top-r query in O(m) total time.
func (s *GCT) TopR(k int32, r int) (*Result, *Stats, error) {
	return s.Search(context.Background(), Params{K: k, R: r})
}

// Search answers the top-r query from the compressed index. Per-vertex
// scores are O(log) binary searches over read-only arrays — safe from any
// number of workers — so the candidate range shards directly across
// p.Workers goroutines, each polling the context every few hundred
// vertices rather than on every iteration.
func (s *GCT) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	g := s.idx.g
	p, err := p.normalized(g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != MeasureTruss {
		// The supernode/superedge compression encodes truss decompositions;
		// it cannot answer the component or core measures.
		return nil, nil, &UnsupportedMeasureError{Engine: "gct", Measure: m}
	}
	heap, scored, err := scanTopR(ctx, g.N(), p.Candidates, p.R, p.workers(), false,
		func() func(v int32) int {
			return func(v int32) int { return s.idx.Score(v, p.K) }
		})
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{ScoreComputations: scored, Candidates: scored}
	res, err := finishResult(ctx, heap.Answer(), p, func(v int32) [][]int32 {
		return s.idx.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, exportStats(stats, p), nil
}
