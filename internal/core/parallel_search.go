package core

import (
	"context"
	"sort"
	"sync"
)

// Parallel query execution. The per-vertex score computations that
// dominate every engine's search are independent, so the candidate range
// is cut into contiguous shards handed to a worker pool — the same
// vertex-sharding strategy the parallel index builders in parallel.go
// use. Each worker scores its shard into a private top-r heap with its
// own context polling; because the heap admits entries under the total
// order (score desc, vertex asc), merging the private heaps in any order
// reproduces exactly the serial answer, so parallel output is
// byte-identical to serial for every worker count.

// shardRange returns the half-open range [lo, hi) of shard w when count
// items are split into `workers` balanced contiguous shards.
func shardRange(count, workers, w int) (lo, hi int) {
	base, rem := count/workers, count%workers
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// forEachSharded runs f(i) for every i in [0, count) across `workers`
// goroutines (1 = the caller's goroutine), polling ctx with the same
// cadence as forEachCandidate. f must be safe for concurrent calls on
// distinct indices. On cancellation the already-running iterations finish
// and the first observed context error is returned.
func forEachSharded(ctx context.Context, count, workers int, everyIter bool, f func(i int)) error {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := 0; i < count; i++ {
			if everyIter || i%pollEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			f(i)
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo, hi := shardRange(count, workers, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if everyIter || (i-lo)%pollEvery == 0 {
					if err := ctx.Err(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// scanAt scores every candidate position in [0, count) — vertex IDs come
// from at(i) — into a merged top-r heap using `workers` goroutines.
// newScore is called once per worker to produce that worker's scoring
// function, so scorers that carry scratch state stay goroutine-private.
// The returned count is the number of score computations (== count unless
// cancelled).
func scanAt(ctx context.Context, count int, at func(i int) int32, r, workers int, everyIter bool, newScore func() func(v int32) int) (*topRHeap, int, error) {
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	scorers := make([]func(v int32) int, workers)
	for i := range scorers {
		scorers[i] = newScore()
	}
	return scanWith(ctx, count, at, r, everyIter, scorers)
}

// scanWith is scanAt over pre-built per-worker scoring functions
// (len(scorers) bounds the pool size); scanRanked uses it to reuse one
// scorer set across every chunk instead of rebuilding scratch state per
// round.
func scanWith(ctx context.Context, count int, at func(i int) int32, r int, everyIter bool, scorers []func(v int32) int) (*topRHeap, int, error) {
	workers := len(scorers)
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		heap := newTopRHeap(r)
		score := scorers[0]
		for i := 0; i < count; i++ {
			if everyIter || i%pollEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, err
				}
			}
			v := at(i)
			heap.Offer(v, score(v))
		}
		return heap, count, nil
	}
	heaps := make([]*topRHeap, workers)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo, hi := shardRange(count, workers, w)
		heaps[w] = newTopRHeap(r)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			score := scorers[w]
			heap := heaps[w]
			for i := lo; i < hi; i++ {
				if everyIter || (i-lo)%pollEvery == 0 {
					if err := ctx.Err(); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				v := at(i)
				heap.Offer(v, score(v))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	merged := heaps[0]
	for _, h := range heaps[1:] {
		for _, e := range h.entries {
			merged.Offer(e.V, e.Score)
		}
	}
	return merged, count, nil
}

// scanTopR is scanAt over a candidate set in Params form: nil candidates
// mean the whole vertex range [0, n).
func scanTopR(ctx context.Context, n int, cands []int32, r, workers int, everyIter bool, newScore func() func(v int32) int) (*topRHeap, int, error) {
	count, at := n, func(i int) int32 { return int32(i) }
	if cands != nil {
		count, at = len(cands), func(i int) int32 { return cands[i] }
	}
	return scanAt(ctx, count, at, r, workers, everyIter, newScore)
}

// rankedCand pairs a candidate with its score upper bound; the bound and
// tsd engines order candidates by descending bound for early termination.
type rankedCand struct {
	v  int32
	ub int
}

// rankedChunkPerWorker sizes the chunks of the parallel ranked scan:
// each round scores up to workers*rankedChunkPerWorker candidates before
// re-checking the termination bound.
const rankedChunkPerWorker = 32

// scanRanked consumes candidates sorted by descending upper bound,
// stopping as soon as no remaining bound can reach the heap minimum
// (candidates whose bound equals the minimum are still scored — they can
// displace an equal-score entry with a larger vertex ID, and skipping
// them would break the canonical tie order). With workers > 1 the scan
// proceeds in chunks scored concurrently; the chunk tail below the
// current minimum is trimmed, so at most one chunk of extra score
// computations happens relative to the serial scan — the answer itself is
// identical because those extras cannot enter the heap.
func scanRanked(ctx context.Context, cands []rankedCand, r, workers int, newScore func() func(v int32) int) (*topRHeap, int, error) {
	if workers <= 1 {
		heap := newTopRHeap(r)
		score := newScore()
		scored := 0
		for _, c := range cands {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			if heap.Full() && c.ub < heap.MinScore() {
				break // no remaining candidate can change the answer
			}
			heap.Offer(c.v, score(c.v))
			scored++
		}
		return heap, scored, nil
	}
	heap := newTopRHeap(r)
	scored := 0
	chunk := workers * rankedChunkPerWorker
	// One scorer per worker, reused across every chunk (scratch state like
	// the TSD visit marks is built once, not once per round).
	scorers := make([]func(v int32) int, workers)
	for i := range scorers {
		scorers[i] = newScore()
	}
	for lo := 0; lo < len(cands); lo += chunk {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		hi := min(lo+chunk, len(cands))
		part := cands[lo:hi]
		if heap.Full() {
			m := heap.MinScore()
			if part[0].ub < m {
				break
			}
			// Bounds are descending: drop the tail that can no longer win.
			part = part[:sort.Search(len(part), func(i int) bool { return part[i].ub < m })]
		}
		sub, n, err := scanWith(ctx, len(part), func(i int) int32 { return part[i].v }, r, true, scorers)
		if err != nil {
			return nil, 0, err
		}
		scored += n
		for _, e := range sub.entries {
			heap.Offer(e.V, e.Score)
		}
	}
	return heap, scored, nil
}
