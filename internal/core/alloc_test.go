package core

import (
	"reflect"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// The zero-allocation contract of the scoring hot path: once a
// VertexScorer has seen its graph's largest ego-network, Score and
// ScoresAllK run without touching the heap, for every measure. The
// engine conformance suites pin that the scratch path answers exactly
// like the allocate path; this file pins that it also stops paying for
// it.

func allocTestGraph(t *testing.T) *graph.Graph {
	rng := testutil.Rand(t, 779)
	return gen.CommunityOverlay(gen.OverlayConfig{
		N: 400, Attach: 3, Cliques: 80, MinSize: 4, MaxSize: 9, Seed: rng.Int63(),
	})
}

func TestVertexScorerScoreAllocFree(t *testing.T) {
	g := allocTestGraph(t)
	n := int32(g.N())
	for _, m := range AllMeasures() {
		s := NewVertexScorer(g, m)
		// One full sweep grows every scratch slab to its high-water mark.
		for v := int32(0); v < n; v++ {
			s.Score(v, 3)
		}
		var v int32
		if got := testing.AllocsPerRun(300, func() {
			s.Score(v%n, 3)
			v++
		}); got != 0 {
			t.Errorf("%s: Score allocates %.1f/op in steady state, want 0", m, got)
		}
	}
}

func TestVertexScorerScoresAllKAllocFree(t *testing.T) {
	g := allocTestGraph(t)
	n := int32(g.N())
	for _, m := range AllMeasures() {
		s := NewVertexScorer(g, m)
		for v := int32(0); v < n; v++ {
			s.ScoresAllK(v)
		}
		var v int32
		if got := testing.AllocsPerRun(300, func() {
			s.ScoresAllK(v % n)
			v++
		}); got != 0 {
			t.Errorf("%s: ScoresAllK allocates %.1f/op in steady state, want 0", m, got)
		}
	}
}

// TestVertexScorerMatchesOneShot sweeps the scratch path against the
// allocate path directly: a single VertexScorer reused across every
// vertex of every graph must return exactly what a freshly allocated
// scorer (whose scratch is never reused) returns per call — scores,
// all-k vectors, and contexts.
func TestVertexScorerMatchesOneShot(t *testing.T) {
	for _, tc := range conformanceGraphs(t) {
		for _, m := range AllMeasures() {
			reused := NewVertexScorer(tc.g, m)
			for v := int32(0); int(v) < tc.g.N(); v++ {
				for _, k := range []int32{2, 3, 4} {
					if got, want := reused.Score(v, k), NewVertexScorer(tc.g, m).Score(v, k); got != want {
						t.Fatalf("%s/%s: Score(%d, %d) = %d via reused scratch, %d one-shot",
							tc.name, m, v, k, got, want)
					}
					got := reused.Contexts(v, k)
					want := NewVertexScorer(tc.g, m).Contexts(v, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s: Contexts(%d, %d) diverge:\n got %v\nwant %v",
							tc.name, m, v, k, got, want)
					}
				}
				gotAll := append([]int(nil), reused.ScoresAllK(v)...)
				wantAll := append([]int(nil), ScoresAllK(tc.g, v, m)...)
				if !reflect.DeepEqual(gotAll, wantAll) {
					t.Fatalf("%s/%s: ScoresAllK(%d) diverges:\n got %v\nwant %v",
						tc.name, m, v, gotAll, wantAll)
				}
			}
		}
	}
}
