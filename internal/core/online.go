package core

import (
	"context"

	"trussdiv/internal/graph"
)

// Online is the baseline searcher (paper Algorithm 3): it computes the
// structural diversity of every candidate vertex from scratch and keeps
// the best r.
type Online struct {
	scorer *Scorer
}

// NewOnline returns an Online searcher over g.
func NewOnline(g *graph.Graph) *Online { return &Online{scorer: NewScorer(g)} }

// Graph returns the underlying graph.
func (o *Online) Graph() *graph.Graph { return o.scorer.Graph() }

// TopR returns the r vertices with the highest truss-based structural
// diversity w.r.t. k, together with their social contexts.
func (o *Online) TopR(k int32, r int) (*Result, *Stats, error) {
	return o.Search(context.Background(), Params{K: k, R: r})
}

// Search runs Algorithm 3 over the candidate set, sharded across
// p.Workers goroutines; every worker owns one VertexScorer, so the scan
// is allocation-free in steady state and byte-identical to the serial
// order. Each candidate costs one ego-network decomposition, so
// cancellation is checked before every score computation. The search is
// measure-generic: p.Measure swaps the truss scorer for the
// component-based or core-based one, same scan either way.
func (o *Online) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	g := o.scorer.Graph()
	p, err := p.normalized(g.N())
	if err != nil {
		return nil, nil, err
	}
	m := p.Measure.Normalize()
	scorer := DivScorer(o.scorer)
	if m != MeasureTruss {
		scorer = NewMeasureScorer(g, m)
	}
	heap, scored, err := scanTopR(ctx, g.N(), p.Candidates, p.R, p.workers(), true,
		func() func(v int32) int {
			vs := NewVertexScorer(g, m)
			return func(v int32) int { return vs.Score(v, p.K) }
		})
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{ScoreComputations: scored, Candidates: scored}
	res, err := finishResult(ctx, heap.Answer(), p, func(v int32) [][]int32 {
		return scorer.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, exportStats(stats, p), nil
}
