package core

import (
	"fmt"

	"trussdiv/internal/graph"
)

// validate checks the common (k, r) preconditions of the problem statement
// (paper §2.3: 1 <= r <= n, k >= 2).
func validate(n int, k int32, r int) (int, error) {
	if k < 2 {
		return 0, fmt.Errorf("core: trussness threshold k = %d, must be >= 2", k)
	}
	if r < 1 {
		return 0, fmt.Errorf("core: r = %d, must be >= 1", r)
	}
	if r > n {
		r = n
	}
	return r, nil
}

// Online is the baseline searcher (paper Algorithm 3): it computes the
// structural diversity of every vertex from scratch and keeps the best r.
type Online struct {
	scorer *Scorer
}

// NewOnline returns an Online searcher over g.
func NewOnline(g *graph.Graph) *Online { return &Online{scorer: NewScorer(g)} }

// TopR returns the r vertices with the highest truss-based structural
// diversity w.r.t. k, together with their social contexts.
func (o *Online) TopR(k int32, r int) (*Result, *Stats, error) {
	g := o.scorer.Graph()
	r, err := validate(g.N(), k, r)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{Candidates: g.N()}
	heap := newTopRHeap(r)
	for v := int32(0); int(v) < g.N(); v++ {
		score := o.scorer.Score(v, k)
		stats.ScoreComputations++
		heap.Offer(v, score)
	}
	return buildResult(heap.Answer(), k, o.scorer), stats, nil
}

// buildResult attaches the social contexts of every answer vertex.
func buildResult(answer []VertexScore, k int32, scorer *Scorer) *Result {
	res := &Result{TopR: answer, Contexts: make(map[int32][][]int32, len(answer))}
	for _, e := range answer {
		res.Contexts[e.V] = scorer.Contexts(e.V, k)
	}
	return res
}
