package core

import (
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/kcore"
	"trussdiv/internal/truss"
)

// VertexScorer is the allocation-free per-vertex scoring pipeline: one
// ego-extraction scratch plus the decomposition scratch of its measure,
// reused across calls so a steady-state Score costs zero allocations.
// It computes exactly what the measure's shared scorer (Scorer, or the
// baseline Comp-Div / Core-Div models) computes — the conformance and
// allocation suites pin both.
//
// A VertexScorer is NOT safe for concurrent use: each scan worker owns
// exactly one (see DESIGN.md "Scratch ownership contract"). For a
// shared, concurrency-safe scorer use NewMeasureScorer, which pools
// VertexScorers per call.
type VertexScorer struct {
	g *graph.Graph
	m Measure

	ego  ego.Scratch
	tr   truss.Scratch
	kc   kcore.Scratch
	cc   compScratch
	allk []int
}

// NewVertexScorer returns a single-worker scorer computing measure m
// over g.
func NewVertexScorer(g *graph.Graph, m Measure) *VertexScorer {
	return &VertexScorer{g: g, m: m.Normalize()}
}

// Graph returns the underlying graph.
func (s *VertexScorer) Graph() *graph.Graph { return s.g }

// Measure returns the measure this scorer computes.
func (s *VertexScorer) Measure() Measure { return s.m }

// Score returns score(v) w.r.t. threshold k under the scorer's measure.
func (s *VertexScorer) Score(v int32, k int32) int {
	net := ego.ExtractOneInto(&s.ego, s.g, v)
	switch s.m {
	case MeasureComponent:
		if len(net.Verts) == 0 {
			return 0
		}
		count := s.cc.label(net.G)
		score := 0
		for _, sz := range s.cc.sizes[:count] {
			if sz >= k {
				score++
			}
		}
		return score
	case MeasureCore:
		if net.G.M() == 0 {
			return 0
		}
		core := s.kc.DecomposeInto(net.G)
		return s.kc.CountComponents(net.G, core, k)
	default:
		if net.G.M() == 0 {
			return 0
		}
		tau := s.tr.DecomposeInto(net.G)
		return s.tr.CountComponents(net.G, tau, k)
	}
}

// Contexts returns the social contexts of v w.r.t. k as global vertex
// sets: canonical group order (by first member), members ascending —
// byte-identical to the measure's shared scorer. The returned groups are
// freshly allocated (they escape the scratch); the transients are not.
func (s *VertexScorer) Contexts(v int32, k int32) [][]int32 {
	net := ego.ExtractOneInto(&s.ego, s.g, v)
	switch s.m {
	case MeasureComponent:
		return s.compContexts(net, k)
	case MeasureCore:
		if net.G.M() == 0 {
			return nil
		}
		core := s.kc.DecomposeInto(net.G)
		return net.GlobalSets(s.kc.Components(net.G, core, k))
	default:
		if net.G.M() == 0 {
			return nil
		}
		tau := s.tr.DecomposeInto(net.G)
		return net.GlobalSets(s.tr.Components(net.G, tau, k))
	}
}

// compContexts is the component measure's contexts: the size->=k
// components of the ego-network in label order (ascending first member),
// already in global IDs — the Comp-Div model's exact output, flat-backed.
func (s *VertexScorer) compContexts(net *ego.Network, k int32) [][]int32 {
	if len(net.Verts) == 0 {
		return nil
	}
	count := s.cc.label(net.G)
	s.cc.qidx = growInt32(s.cc.qidx, count)
	total, nq := 0, 0
	for lbl, sz := range s.cc.sizes[:count] {
		if sz >= k {
			s.cc.qidx[lbl] = int32(nq)
			nq++
			total += int(sz)
		} else {
			s.cc.qidx[lbl] = -1
		}
	}
	flat := make([]int32, 0, total)
	out := make([][]int32, 0, nq)
	for lbl, sz := range s.cc.sizes[:count] {
		if s.cc.qidx[lbl] >= 0 {
			start := len(flat)
			out = append(out, flat[start:start:start+int(sz)])
			flat = flat[:start+int(sz)]
		}
	}
	for lv, lbl := range s.cc.labels[:net.G.N()] {
		if qi := s.cc.qidx[lbl]; qi >= 0 {
			out[qi] = append(out[qi], net.Verts[lv])
		}
	}
	return out
}

// ScoresAllK computes score(v, k) for every k >= 2 from one ego
// decomposition, like the package-level ScoresAllK but over recycled
// storage: the returned slice is owned by s and valid only until the
// next call. nil when no threshold scores.
func (s *VertexScorer) ScoresAllK(v int32) []int {
	net := ego.ExtractOneInto(&s.ego, s.g, v)
	if net.G.M() == 0 {
		return nil
	}
	switch s.m {
	case MeasureComponent:
		s.allk = compAllK(&s.cc, net.G, s.allk)
	case MeasureCore:
		s.allk = coreAllK(&s.kc, net.G, s.allk)
	default:
		tau := s.tr.DecomposeInto(net.G)
		s.allk = trussAllK(&s.tr, net.G, tau, s.allk)
	}
	if len(s.allk) == 0 {
		return nil
	}
	return s.allk
}

// trussAllK fills dst[:0] with the truss measure's per-k score vector of
// the (already decomposed) local graph: dst[k] = k-truss component
// count, indexed 2..MaxTrussness. Empty when the decomposition reaches
// no threshold.
func trussAllK(ts *truss.Scratch, lg *graph.Graph, tau []int32, dst []int) []int {
	maxK := truss.MaxTrussness(tau)
	if maxK < 2 {
		return dst[:0]
	}
	dst = growInts(dst, int(maxK)+1)
	dst[0], dst[1] = 0, 0
	for k := int32(2); k <= maxK; k++ {
		dst[k] = ts.CountComponents(lg, tau, k)
	}
	return dst
}

// compAllK fills dst[:0] with the component measure's per-k vector: a
// size-s component counts toward every k <= s.
func compAllK(cs *compScratch, lg *graph.Graph, dst []int) []int {
	count := cs.label(lg)
	maxS := int32(0)
	for _, sz := range cs.sizes[:count] {
		if sz > maxS {
			maxS = sz
		}
	}
	if maxS < 2 {
		return dst[:0]
	}
	dst = growInts(dst, int(maxS)+1)
	for i := range dst {
		dst[i] = 0
	}
	for _, sz := range cs.sizes[:count] {
		for k := int32(2); k <= sz; k++ {
			dst[k]++
		}
	}
	return dst
}

// coreAllK fills dst[:0] with the core measure's per-k vector:
// dst[k] = maximal connected k-core count, indexed 2..degeneracy.
func coreAllK(ks *kcore.Scratch, lg *graph.Graph, dst []int) []int {
	core := ks.DecomposeInto(lg)
	maxC := kcore.Degeneracy(core)
	if maxC < 2 {
		return dst[:0]
	}
	dst = growInts(dst, int(maxC)+1)
	dst[0], dst[1] = 0, 0
	for k := int32(2); k <= maxC; k++ {
		dst[k] = ks.CountComponents(lg, core, k)
	}
	return dst
}

// compScratch labels the connected components of a local graph into
// recycled storage: labels[v] in 0..count-1 assigned in ascending order
// of each component's smallest vertex (the ConnectedComponents order),
// sizes[c] the member count.
type compScratch struct {
	labels []int32
	sizes  []int32
	stack  []int32
	qidx   []int32
}

func (s *compScratch) label(lg *graph.Graph) int {
	n := lg.N()
	s.labels = growInt32(s.labels, n)
	labels := s.labels
	for i := range labels {
		labels[i] = -1
	}
	s.sizes = s.sizes[:0]
	count := 0
	for v := int32(0); int(v) < n; v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = int32(count)
		size := int32(1)
		s.stack = append(s.stack[:0], v)
		for len(s.stack) > 0 {
			u := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			for _, w := range lg.Neighbors(u) {
				if labels[w] < 0 {
					labels[w] = int32(count)
					size++
					s.stack = append(s.stack, w)
				}
			}
		}
		s.sizes = append(s.sizes, size)
		count++
	}
	return count
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
