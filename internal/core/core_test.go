package core

import (
	"reflect"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

func randomGraph(tb testing.TB, n, extra int, seed int64) *graph.Graph {
	rng := testutil.Rand(tb, seed)
	b := graph.NewBuilder(n)
	for i := 0; i < extra; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

// --- The paper's worked example (Fig. 1, Examples 2-4) ---

func TestFig1ScoreOfV(t *testing.T) {
	g := gen.Fig1Graph()
	scorer := NewScorer(g)
	if got := scorer.Score(gen.Fig1V, 4); got != 3 {
		t.Fatalf("score(v) = %d, want 3 (paper Def. 3 example)", got)
	}
	contexts := scorer.Contexts(gen.Fig1V, 4)
	want := [][]int32{
		{gen.Fig1X1, gen.Fig1X2, gen.Fig1X3, gen.Fig1X4},
		{gen.Fig1Y1, gen.Fig1Y2, gen.Fig1Y3, gen.Fig1Y4},
		{gen.Fig1R1, gen.Fig1R2, gen.Fig1R3, gen.Fig1R4, gen.Fig1R5, gen.Fig1R6},
	}
	if !reflect.DeepEqual(contexts, want) {
		t.Fatalf("SC(v) = %v, want %v", contexts, want)
	}
	// k=3: H1 merges into one context, H2 stays: score = 2.
	if got := scorer.Score(gen.Fig1V, 3); got != 2 {
		t.Fatalf("score(v) @k=3 = %d, want 2", got)
	}
}

func TestFig1NonSymmetry(t *testing.T) {
	// Paper Observation 1: tau_{G_N(v)}(r1,r2) = 4 but tau_{G_N(r1)}(v,r2) = 3.
	g := gen.Fig1Graph()
	scorer := NewScorer(g)
	if got := scorer.EgoTrussness(gen.Fig1V, gen.Fig1R1, gen.Fig1R2); got != 4 {
		t.Fatalf("tau in ego(v) of (r1,r2) = %d, want 4", got)
	}
	if got := scorer.EgoTrussness(gen.Fig1R1, gen.Fig1V, gen.Fig1R2); got != 3 {
		t.Fatalf("tau in ego(r1) of (v,r2) = %d, want 3", got)
	}
}

func TestFig1AllSearchersTop1(t *testing.T) {
	g := gen.Fig1Graph()
	tsdIdx := BuildTSDIndex(g)
	gctIdx := BuildGCTIndex(g)
	searchers := map[string]interface {
		TopR(int32, int) (*Result, *Stats, error)
	}{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(tsdIdx),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	}
	for name, s := range searchers {
		res, _, err := s.TopR(4, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.TopR) != 1 || res.TopR[0].V != gen.Fig1V || res.TopR[0].Score != 3 {
			t.Fatalf("%s: top-1 = %+v, want v with score 3", name, res.TopR)
		}
		if len(res.Contexts[gen.Fig1V]) != 3 {
			t.Fatalf("%s: %d contexts, want 3", name, len(res.Contexts[gen.Fig1V]))
		}
	}
}

func TestFig1BoundPruning(t *testing.T) {
	// Paper Example 3: the bound framework computes score for v only —
	// all other vertices have upper bound <= 1 < 3 and are pruned.
	g := gen.Fig1Graph()
	res, stats, err := NewBound(g).TopR(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopR[0].V != gen.Fig1V {
		t.Fatalf("top-1 = %+v", res.TopR)
	}
	if stats.ScoreComputations != 1 {
		t.Fatalf("search space = %d, want 1 (paper Example 3)", stats.ScoreComputations)
	}
	// Online must compute all 17 (paper Example 2).
	_, ostats, err := NewOnline(g).TopR(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ostats.ScoreComputations != 17 {
		t.Fatalf("online search space = %d, want 17", ostats.ScoreComputations)
	}
}

func TestFig1TSDForestShape(t *testing.T) {
	// Paper Fig. 6(c): TSD_v has 11 weight-4 edges and 1 weight-3 edge.
	idx := BuildTSDIndex(gen.Fig1Graph())
	forest := idx.Forest(gen.Fig1V)
	if len(forest) != 12 {
		t.Fatalf("forest edges = %d, want 12", len(forest))
	}
	w4, w3 := 0, 0
	for _, e := range forest {
		switch e.T {
		case 4:
			w4++
		case 3:
			w3++
		default:
			t.Fatalf("unexpected forest weight %d", e.T)
		}
	}
	if w4 != 11 || w3 != 1 {
		t.Fatalf("weights: %d fours, %d threes; want 11 and 1", w4, w3)
	}
	// Pure s̃core bound: k=4 -> ⌊11/3⌋ = 3; k=3 -> ⌊12/2⌋ = 6.
	if ub := idx.ForestBound(gen.Fig1V, 4); ub != 3 {
		t.Fatalf("s̃core @4 = %d, want 3", ub)
	}
	if ub := idx.ForestBound(gen.Fig1V, 3); ub != 6 {
		t.Fatalf("s̃core @3 = %d, want 6", ub)
	}
	// All 14 ego vertices qualify at k=4 (every neighbor is in a 4-truss).
	if got := idx.QualifyingNeighbors(gen.Fig1V, 4); got != 14 {
		t.Fatalf("t_4 = %d, want 14", got)
	}
	// Combined bound stays valid and tight: min(3, ⌊14/4⌋, ⌊52/12⌋) = 3.
	if ub := idx.ScoreUpperBound(gen.Fig1V, 4); ub != 3 {
		t.Fatalf("combined bound @4 = %d, want 3", ub)
	}
}

func TestFig1GCTStructure(t *testing.T) {
	// Paper Fig. 7(b): three supernodes of trussness 4 with member sets
	// {x1..x4}, {y1..y4}, {r1..r6}, one superedge of weight 3.
	idx := BuildGCTIndex(gen.Fig1Graph())
	taus, sizes := idx.Supernodes(gen.Fig1V)
	if len(taus) != 3 {
		t.Fatalf("supernodes = %d, want 3", len(taus))
	}
	for i, tau := range taus {
		if tau != 4 {
			t.Fatalf("supernode %d trussness = %d, want 4", i, tau)
		}
	}
	gotSizes := map[int32]int{}
	for _, s := range sizes {
		gotSizes[s]++
	}
	if gotSizes[4] != 2 || gotSizes[6] != 1 {
		t.Fatalf("supernode sizes = %v, want two 4s and one 6", sizes)
	}
	edges := idx.SuperEdges(gen.Fig1V)
	if len(edges) != 1 || edges[0].W != 3 {
		t.Fatalf("superedges = %+v, want one of weight 3", edges)
	}
	// Lemma 3: k=4 -> 3-0 = 3; k=3 -> 3-1 = 2; k=2 -> 3-1 = 2; k=5 -> 0.
	for _, tc := range []struct {
		k    int32
		want int
	}{{4, 3}, {3, 2}, {2, 2}, {5, 0}} {
		if got := idx.Score(gen.Fig1V, tc.k); got != tc.want {
			t.Fatalf("GCT score @k=%d = %d, want %d", tc.k, got, tc.want)
		}
	}
}

// --- Cross-validation: all engines agree on every vertex and every k ---

func TestAllEnginesAgreeOnScores(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := randomGraph(t, 28, 130, seed)
		scorer := NewScorer(g)
		tsdIdx := BuildTSDIndex(g)
		gctIdx := BuildGCTIndex(g)
		for k := int32(2); k <= 6; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				online := scorer.Score(v, k)
				tsd := tsdIdx.Score(v, k)
				gct := gctIdx.Score(v, k)
				if online != tsd || online != gct {
					t.Fatalf("seed %d k=%d v=%d: online=%d tsd=%d gct=%d",
						seed, k, v, online, tsd, gct)
				}
				if ub := tsdIdx.ScoreUpperBound(v, k); ub < online {
					t.Fatalf("seed %d k=%d v=%d: s̃core %d < score %d", seed, k, v, ub, online)
				}
			}
		}
	}
}

func TestAllEnginesAgreeOnContexts(t *testing.T) {
	for seed := int64(20); seed < 26; seed++ {
		g := randomGraph(t, 24, 110, seed)
		scorer := NewScorer(g)
		tsdIdx := BuildTSDIndex(g)
		gctIdx := BuildGCTIndex(g)
		for k := int32(3); k <= 5; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				want := scorer.Contexts(v, k)
				for name, got := range map[string][][]int32{
					"tsd": tsdIdx.Contexts(v, k),
					"gct": gctIdx.Contexts(v, k),
				} {
					if len(want) == 0 && len(got) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d k=%d v=%d %s contexts = %v, want %v",
							seed, k, v, name, got, want)
					}
				}
			}
		}
	}
}

func TestAllSearchersAgreeOnTopR(t *testing.T) {
	for seed := int64(40); seed < 46; seed++ {
		g := randomGraph(t, 40, 220, seed)
		tsdIdx := BuildTSDIndex(g)
		gctIdx := BuildGCTIndex(g)
		searchers := map[string]interface {
			TopR(int32, int) (*Result, *Stats, error)
		}{
			"online": NewOnline(g),
			"bound":  NewBound(g),
			"tsd":    NewTSD(tsdIdx),
			"gct":    NewGCT(gctIdx),
			"hybrid": BuildHybrid(gctIdx),
		}
		for k := int32(2); k <= 5; k++ {
			for _, r := range []int{1, 3, 10, 40} {
				var want []int
				for name, s := range searchers {
					res, _, err := s.TopR(k, r)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got := res.ScoreMultiset()
					if want == nil {
						want = got
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d k=%d r=%d: %s scores %v, want %v",
							seed, k, r, name, got, want)
					}
				}
			}
		}
	}
}

// --- Pruning machinery ---

func TestSparsifyPreservesScores(t *testing.T) {
	for seed := int64(60); seed < 66; seed++ {
		g := randomGraph(t, 30, 160, seed)
		for k := int32(3); k <= 5; k++ {
			sp := Sparsify(g, k)
			before := NewScorer(g)
			after := NewScorer(sp.Graph)
			for v := int32(0); int(v) < g.N(); v++ {
				if b, a := before.Score(v, k), after.Score(v, k); b != a {
					t.Fatalf("seed %d k=%d v=%d: score %d -> %d after sparsify",
						seed, k, v, b, a)
				}
			}
			if sp.OriginalEdges != g.M() || sp.Graph.M()+sp.EdgesRemoved != g.M() {
				t.Fatal("sparsify accounting wrong")
			}
		}
	}
}

func TestUpperBoundDominates(t *testing.T) {
	for seed := int64(70); seed < 76; seed++ {
		g := randomGraph(t, 26, 140, seed)
		scorer := NewScorer(g)
		mv := g.TrianglesPerVertex()
		for k := int32(2); k <= 5; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				ub := UpperBound(g.Degree(v), mv[v], k)
				if s := scorer.Score(v, k); s > ub {
					t.Fatalf("seed %d k=%d v=%d: score %d > bound %d", seed, k, v, s, ub)
				}
			}
		}
	}
}

func TestBoundSearchSpaceSmaller(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 600, Attach: 3, Cliques: 120, MinSize: 4, MaxSize: 9, Seed: 3,
	})
	_, onlineStats, err := NewOnline(g).TopR(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, boundStats, err := NewBound(g).TopR(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if boundStats.ScoreComputations >= onlineStats.ScoreComputations {
		t.Fatalf("bound search space %d not below online %d",
			boundStats.ScoreComputations, onlineStats.ScoreComputations)
	}
	tsdIdx := BuildTSDIndex(g)
	_, tsdStats, err := NewTSD(tsdIdx).TopR(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tsdStats.ScoreComputations > boundStats.ScoreComputations {
		t.Fatalf("tsd search space %d above bound %d (s̃core should prune harder)",
			tsdStats.ScoreComputations, boundStats.ScoreComputations)
	}
}

// --- Parameter validation ---

func TestValidation(t *testing.T) {
	g := gen.Clique(5)
	if _, _, err := NewOnline(g).TopR(1, 1); err == nil {
		t.Fatal("k=1 should be rejected")
	}
	if _, _, err := NewOnline(g).TopR(3, 0); err == nil {
		t.Fatal("r=0 should be rejected")
	}
	// r > n clamps to n.
	res, _, err := NewOnline(g).TopR(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopR) != 5 {
		t.Fatalf("answer size = %d, want clamp to 5", len(res.TopR))
	}
}

func TestEdgelessAndTinyGraphs(t *testing.T) {
	g := gen.Star(6) // triangle-free: every score is 0
	for _, s := range []interface {
		TopR(int32, int) (*Result, *Stats, error)
	}{NewOnline(g), NewBound(g), NewTSD(BuildTSDIndex(g)), NewGCT(BuildGCTIndex(g))} {
		res, _, err := s.TopR(3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.TopR) != 2 {
			t.Fatalf("answer size = %d, want 2", len(res.TopR))
		}
		for _, e := range res.TopR {
			if e.Score != 0 {
				t.Fatalf("score = %d, want 0 on a star", e.Score)
			}
		}
	}
}

// Score of the hub of a "flower" of c disjoint k-cliques all attached to a
// center: exactly c contexts at threshold k.
func TestFlowerScores(t *testing.T) {
	for _, tc := range []struct{ cliques, k int }{{2, 3}, {3, 4}, {5, 4}, {4, 5}} {
		b := graph.NewBuilder(1)
		next := int32(1)
		for c := 0; c < tc.cliques; c++ {
			members := make([]int32, tc.k)
			for i := range members {
				members[i] = next
				next++
				b.AddEdge(0, members[i])
			}
			for i := 0; i < tc.k; i++ {
				for j := i + 1; j < tc.k; j++ {
					b.AddEdge(members[i], members[j])
				}
			}
		}
		g := b.Build()
		scorer := NewScorer(g)
		if got := scorer.Score(0, int32(tc.k)); got != tc.cliques {
			t.Fatalf("flower(%d cliques of K%d): score = %d, want %d",
				tc.cliques, tc.k, got, tc.cliques)
		}
		if got := BuildGCTIndex(g).Score(0, int32(tc.k)); got != tc.cliques {
			t.Fatalf("flower GCT score = %d, want %d", got, tc.cliques)
		}
		if got := BuildTSDIndex(g).Score(0, int32(tc.k)); got != tc.cliques {
			t.Fatalf("flower TSD score = %d, want %d", got, tc.cliques)
		}
	}
}
