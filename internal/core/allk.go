package core

import (
	"context"

	"trussdiv/internal/graph"
)

// Exported hooks for the parameter-free search subsystem
// (internal/pfree). The parameter-free objective aggregates the per-k
// score vector of a vertex across every threshold at once, so it needs
// the all-k scorer for every measure — including truss, which
// BuildMeasureRankings deliberately excludes (the hybrid engine owns the
// truss per-k tables) — plus the canonical-order primitives every engine
// shares: the ranked prefix read, the padded scan, the sharded context
// recovery, and the patch merge. Exporting them here keeps internal/pfree
// byte-identical to the existing engines by construction instead of by
// re-implementation.

// ScoresAllK computes score(v, k) under measure m for every k >= 2 from
// one ego-network decomposition. The returned slice is indexed by k
// (length maxK+1, entries 0 and 1 unused); nil when the ego-network has
// no edges or no score reaches any threshold. For the non-truss measures
// this is exactly the per-vertex pass BuildMeasureRankings makes; the
// truss branch decomposes the ego-network once and counts the k-truss
// components at every threshold the decomposition reaches.
func ScoresAllK(g *graph.Graph, v int32, m Measure) []int {
	// A one-shot VertexScorer: the returned vector aliases its scratch,
	// which is never reused, so the slice is safe to keep. Loops should
	// hold one VertexScorer and call its ScoresAllK instead.
	return NewVertexScorer(g, m).ScoresAllK(v)
}

// SortCanonical orders entries under the library's total order: score
// descending, vertex ID ascending — the order every engine's answer (and
// every persisted ranking) is pinned to.
func SortCanonical(entries []VertexScore) { sortAnswer(entries) }

// MergeRanked merges the surviving old entries (old minus the affected
// vertices, already canonical) with the freshly re-scored ones (also
// canonical) into one canonically ordered list — the splice primitive of
// the ranking patch path (PatchHybrid, PatchMeasureRankings, and the
// pfree ranking patch). The result never aliases either input.
func MergeRanked(oldList, fresh []VertexScore, affected map[int32]bool) []VertexScore {
	return mergeRanked(oldList, fresh, affected)
}

// RankedAnswer selects the canonical top-r answer from one precomputed
// ranking (sorted canonically, zero scores omitted): an O(r) prefix read
// without a candidate subset, a filtered pass with one, and zero-score
// padding from the smallest unused IDs — byte-identical to what a full
// scan would answer. The second return is the number of ranked
// candidates considered.
func RankedAnswer(ranked []VertexScore, n int, p Params) ([]VertexScore, int) {
	return rankedAnswer(ranked, n, p)
}

// FinishResult assembles the Result for a canonical answer, recovering
// each answer vertex's contexts via the callback unless p.SkipContexts
// (sharded across p.Workers goroutines; contexts must be safe for
// concurrent calls).
func FinishResult(ctx context.Context, answer []VertexScore, p Params, contexts func(v int32) [][]int32) (*Result, error) {
	return finishResult(ctx, answer, p, contexts)
}

// ScanCanonical scores every candidate of p (all n vertices when
// p.Candidates is nil) with per-worker scoring functions from newScore,
// merging the per-worker heaps into the canonical top-r answer — the
// online-engine scan generalized over an arbitrary scorer. The context is
// polled on every iteration (one ego decomposition per score). The
// second return counts score computations.
func ScanCanonical(ctx context.Context, n int, p Params, newScore func() func(v int32) int) ([]VertexScore, int, error) {
	heap, scored, err := scanTopR(ctx, n, p.Candidates, p.R, p.workers(), true, newScore)
	if err != nil {
		return nil, 0, err
	}
	return heap.Answer(), scored, nil
}
