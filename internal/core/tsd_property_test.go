package core

import (
	"testing"
	"testing/quick"
)

// The QualifyingNeighbors shortcut relies on the maximum-spanning-forest
// property: a neighbor u is touched by the weight->=k forest prefix iff
// u's ego vertex-trussness is >= k. Verify t_k equals the actual touched
// count for every vertex and every k.
func TestQualifyingNeighborsMatchesPrefixTouch(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 30, 140, seed)
		idx := BuildTSDIndex(g)
		for v := int32(0); int(v) < g.N(); v++ {
			forest := idx.Forest(v)
			for k := int32(2); k <= 7; k++ {
				touched := map[int32]struct{}{}
				for _, e := range forest {
					if e.T >= k {
						touched[e.U] = struct{}{}
						touched[e.W] = struct{}{}
					}
				}
				if idx.QualifyingNeighbors(v, k) != len(touched) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The stored forest must be acyclic and spanning per threshold: at every
// k, (#touched vertices - #prefix edges) is non-negative and equals the
// component count, which Score reports.
func TestForestPrefixComponentIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 26, 120, seed+500)
		idx := BuildTSDIndex(g)
		scorer := NewScorer(g)
		for v := int32(0); int(v) < g.N(); v++ {
			for k := int32(2); k <= 6; k++ {
				if idx.Score(v, k) != scorer.Score(v, k) {
					return false
				}
				if idx.Score(v, k) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Forest weights are stored descending, and the number of forest edges is
// bounded by d(v)-1 (spanning forest of the ego vertices).
func TestForestInvariants(t *testing.T) {
	g := randomGraph(t, 40, 220, 9)
	idx := BuildTSDIndex(g)
	for v := int32(0); int(v) < g.N(); v++ {
		forest := idx.Forest(v)
		if len(forest) > 0 && len(forest) > g.Degree(v)-1 {
			t.Fatalf("v=%d: forest has %d edges for degree %d", v, len(forest), g.Degree(v))
		}
		for i := 1; i < len(forest); i++ {
			if forest[i-1].T < forest[i].T {
				t.Fatalf("v=%d: forest weights not descending", v)
			}
		}
		for _, e := range forest {
			if e.U == e.W || int(e.U) >= g.Degree(v) || int(e.W) >= g.Degree(v) {
				t.Fatalf("v=%d: bad forest edge %+v", v, e)
			}
		}
	}
}

func TestHybridAccessors(t *testing.T) {
	g := randomGraph(t, 30, 150, 11)
	gct := BuildGCTIndex(g)
	h := BuildHybrid(gct)
	if h.MaxK() < 2 {
		t.Fatalf("MaxK = %d", h.MaxK())
	}
	for k := int32(2); k <= h.MaxK(); k++ {
		ranking := h.Ranking(k)
		for i := 1; i < len(ranking); i++ {
			if ranking[i].Score > ranking[i-1].Score {
				t.Fatalf("k=%d: ranking not sorted", k)
			}
		}
		scores := h.ScoresAt(k)
		for _, e := range ranking {
			if scores[e.V] != e.Score {
				t.Fatalf("k=%d: ScoresAt mismatch at %d", k, e.V)
			}
		}
		// Every ranked score agrees with the GCT index.
		for _, e := range ranking {
			if gct.Score(e.V, k) != e.Score {
				t.Fatalf("k=%d v=%d: ranking %d != index %d",
					k, e.V, e.Score, gct.Score(e.V, k))
			}
		}
	}
	if h.Ranking(h.MaxK()+5) != nil {
		t.Fatal("out-of-range ranking should be nil")
	}
	if h.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestGCTSupernodeInvariants(t *testing.T) {
	g := randomGraph(t, 35, 180, 13)
	idx := BuildGCTIndex(g)
	for v := int32(0); int(v) < g.N(); v++ {
		taus, sizes := idx.Supernodes(v)
		var members int32
		for i := range taus {
			if i > 0 && taus[i] > taus[i-1] {
				t.Fatalf("v=%d: supernode trussness not descending", v)
			}
			if sizes[i] <= 0 {
				t.Fatalf("v=%d: empty supernode", v)
			}
			members += sizes[i]
		}
		// Members are exactly the non-isolated ego vertices: each belongs
		// to one supernode.
		if int(members) > g.Degree(v) {
			t.Fatalf("v=%d: %d members exceed degree %d", v, members, g.Degree(v))
		}
		for _, e := range idx.SuperEdges(v) {
			if e.A == e.B {
				t.Fatalf("v=%d: self-loop superedge", v)
			}
			if int(e.A) >= len(taus) || int(e.B) >= len(taus) {
				t.Fatalf("v=%d: superedge endpoint out of range", v)
			}
			// Superedge weight never exceeds either endpoint's trussness.
			if e.W > taus[e.A] || e.W > taus[e.B] {
				t.Fatalf("v=%d: superedge weight %d above endpoints (%d,%d)",
					v, e.W, taus[e.A], taus[e.B])
			}
		}
	}
}
