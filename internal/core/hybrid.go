package core

import (
	"context"

	"trussdiv/internal/graph"
)

// Hybrid is the competitor of paper Exp-4: it precomputes, for every
// possible k, the complete vertex ranking by structural diversity, so a
// top-r query reads the first r entries directly — but it must still
// recover the social contexts online with Algorithm 2, which is what makes
// it lose to GCT as r grows.
type Hybrid struct {
	g      *graph.Graph
	scorer *Scorer
	perK   [][]VertexScore // perK[k] sorted by score desc, vertex asc
	maxK   int32
}

// BuildHybrid precomputes the per-k rankings. Scores are read from a GCT
// index (cheap exact queries); the returned structure owns its rankings.
func BuildHybrid(idx *GCTIndex) *Hybrid {
	g := idx.Graph()
	// Maximum ego trussness bounds the meaningful k range.
	maxK := int32(2)
	for v := int32(0); int(v) < g.N(); v++ {
		taus, _ := idx.Supernodes(v)
		if len(taus) > 0 && taus[0] > maxK {
			maxK = taus[0]
		}
	}
	h := &Hybrid{
		g:      g,
		scorer: NewScorer(g),
		perK:   make([][]VertexScore, maxK+1),
		maxK:   maxK,
	}
	for k := int32(2); k <= maxK; k++ {
		list := make([]VertexScore, 0, g.N())
		for v := int32(0); int(v) < g.N(); v++ {
			if s := idx.Score(v, k); s > 0 {
				list = append(list, VertexScore{V: v, Score: s})
			}
		}
		sortAnswer(list)
		h.perK[k] = list
	}
	return h
}

// NewHybridFromRankings reconstructs a Hybrid from previously computed
// per-k rankings (e.g. ones loaded from an index store): perK[k] must be
// sorted by score descending then vertex ascending, exactly as Rankings
// returns them. The rankings are adopted, not copied.
func NewHybridFromRankings(g *graph.Graph, perK [][]VertexScore) *Hybrid {
	maxK := int32(len(perK)) - 1
	if maxK < 2 {
		maxK = 2
		perK = make([][]VertexScore, maxK+1)
	}
	return &Hybrid{g: g, scorer: NewScorer(g), perK: perK, maxK: maxK}
}

// MaxK returns the largest k with a non-trivial ranking.
func (h *Hybrid) MaxK() int32 { return h.maxK }

// TopR answers from the precomputed ranking, then computes the contexts of
// each answer vertex online (the dominant cost, per the paper).
func (h *Hybrid) TopR(k int32, r int) (*Result, *Stats, error) {
	return h.Search(context.Background(), Params{K: k, R: r})
}

// Search answers from the precomputed ranking. Reading the ranking is
// nearly free; the expensive part is the per-answer online context
// recovery (Algorithm 2), which finishResult polls on every vertex — so a
// Search with SkipContexts set is the cheapest query in the library.
func (h *Hybrid) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	p, err := p.normalized(h.g.N())
	if err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != MeasureTruss {
		// The per-k rankings were scored by the truss model; per-measure
		// rankings for the other models are served elsewhere.
		return nil, nil, &UnsupportedMeasureError{Engine: "hybrid", Measure: m}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var ranked []VertexScore
	if int(p.K) < len(h.perK) {
		ranked = h.perK[p.K]
	}
	answer, candidates := rankedAnswer(ranked, h.g.N(), p)
	stats := &Stats{Candidates: candidates}
	res, err := finishResult(ctx, answer, p, func(v int32) [][]int32 {
		// Online social-context recovery (Algorithm 2); finishResult shards
		// it across p.Workers goroutines — the dominant hybrid query cost.
		return h.scorer.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	if !p.SkipContexts {
		// Every answer vertex cost one online recovery (the hybrid's
		// "search space"); counted here so parallel recovery stays
		// race-free.
		stats.ScoreComputations = len(answer)
	}
	return res, exportStats(stats, p), nil
}

// rankedAnswer selects the canonical top-r answer from one precomputed
// per-k ranking (sorted by score descending, vertex ascending): an O(r)
// prefix read without a candidate subset, a filtered pass with one, and
// zero-score padding when fewer than r candidates have any social
// context — matching the scanning searchers' answer byte for byte. The
// second return is the number of ranked candidates considered (the
// Stats.Candidates of rankings-backed engines).
func rankedAnswer(ranked []VertexScore, n int, p Params) ([]VertexScore, int) {
	var answer []VertexScore
	var candidates int
	if p.Candidates == nil {
		candidates = len(ranked)
		answer = append(make([]VertexScore, 0, p.R), ranked[:min(p.R, len(ranked))]...)
	} else {
		inCand := make(map[int32]bool, len(p.Candidates))
		for _, v := range p.Candidates {
			inCand[v] = true
		}
		answer = make([]VertexScore, 0, p.R)
		for _, e := range ranked {
			if !inCand[e.V] {
				continue
			}
			candidates++
			if len(answer) < p.R {
				answer = append(answer, e)
			}
		}
	}
	if len(answer) < p.R {
		heap := newTopRHeap(p.R)
		for _, e := range answer {
			heap.Offer(e.V, e.Score)
		}
		padAnswer(heap, n, p.Candidates)
		answer = heap.Answer()
	}
	return answer, candidates
}

// SizeBytes reports the ranking storage footprint.
func (h *Hybrid) SizeBytes() int64 {
	var b int64
	for _, list := range h.perK {
		b += int64(len(list))*8 + 24
	}
	return b
}

// Rankings returns every per-k ranking indexed by k (entries below k=2
// are nil), the inverse of NewHybridFromRankings. The slices alias
// internal storage.
func (h *Hybrid) Rankings() [][]VertexScore { return h.perK }

// Ranking returns the full precomputed ranking for k (sorted by score
// descending). The slice aliases internal storage.
func (h *Hybrid) Ranking(k int32) []VertexScore {
	if int(k) >= len(h.perK) {
		return nil
	}
	return h.perK[k]
}

// ScoresAt returns a dense score vector for threshold k computed from a
// ranking, mainly for tests and the effectiveness experiments.
func (h *Hybrid) ScoresAt(k int32) []int {
	out := make([]int, h.g.N())
	for _, e := range h.Ranking(k) {
		out[e.V] = e.Score
	}
	return out
}
