package core

import (
	"sync"

	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
)

// Scorer computes truss-based structural diversity scores and social
// contexts online (paper Algorithm 2): extract the ego-network, truss-
// decompose it, drop edges below the threshold, and count the connected
// components that remain.
//
// A Scorer is safe for concurrent use: calls borrow a per-worker
// VertexScorer from an internal pool, so steady-state scoring stays
// allocation-free without giving up the shared-scorer contract. Scan
// loops that own their workers should hold a VertexScorer directly and
// skip the pool round-trip.
type Scorer struct {
	g    *graph.Graph
	pool sync.Pool // of *VertexScorer with the truss measure
}

// NewScorer returns a Scorer over g.
func NewScorer(g *graph.Graph) *Scorer {
	s := &Scorer{g: g}
	s.pool.New = func() any { return NewVertexScorer(g, MeasureTruss) }
	return s
}

// Graph returns the underlying graph.
func (s *Scorer) Graph() *graph.Graph { return s.g }

// Score returns score(v) w.r.t. trussness threshold k (paper Def. 3).
// k must be >= 2.
func (s *Scorer) Score(v int32, k int32) int {
	vs := s.pool.Get().(*VertexScorer)
	score := vs.Score(v, k)
	s.pool.Put(vs)
	return score
}

// Contexts returns the social contexts SC(v): the vertex sets (global IDs,
// each sorted) of the maximal connected k-trusses of v's ego-network
// (paper Def. 2).
func (s *Scorer) Contexts(v int32, k int32) [][]int32 {
	vs := s.pool.Get().(*VertexScorer)
	out := vs.Contexts(v, k)
	s.pool.Put(vs)
	return out
}

// ScoreAndContexts computes both in one ego decomposition.
func (s *Scorer) ScoreAndContexts(v int32, k int32) (int, [][]int32) {
	vs := s.pool.Get().(*VertexScorer)
	defer s.pool.Put(vs)
	net := ego.ExtractOneInto(&vs.ego, s.g, v)
	if net.G.M() == 0 {
		return 0, nil
	}
	tau := vs.tr.DecomposeInto(net.G)
	comps := vs.tr.Components(net.G, tau, k)
	return len(comps), net.GlobalSets(comps)
}

// EgoTrussness returns the trussness of the edge (a,b) inside the
// ego-network of v, or 0 when (a,b) is not an ego edge. It exposes the
// quantity τ_{G_N(v)}(a,b) from the paper's non-symmetry discussion
// (Observation 1) for analysis and tests.
func (s *Scorer) EgoTrussness(v, a, b int32) int32 {
	vs := s.pool.Get().(*VertexScorer)
	defer s.pool.Put(vs)
	net := ego.ExtractOneInto(&vs.ego, s.g, v)
	la, lb := net.Local(a), net.Local(b)
	if la < 0 || lb < 0 {
		return 0
	}
	id := net.G.EdgeID(la, lb)
	if id < 0 {
		return 0
	}
	return vs.tr.DecomposeInto(net.G)[id]
}
