package core

import (
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// Scorer computes truss-based structural diversity scores and social
// contexts online (paper Algorithm 2): extract the ego-network, truss-
// decompose it, drop edges below the threshold, and count the connected
// components that remain.
//
// A Scorer carries no mutable state beyond the graph reference and is safe
// for concurrent use.
type Scorer struct {
	g *graph.Graph
}

// NewScorer returns a Scorer over g.
func NewScorer(g *graph.Graph) *Scorer { return &Scorer{g: g} }

// Graph returns the underlying graph.
func (s *Scorer) Graph() *graph.Graph { return s.g }

// Score returns score(v) w.r.t. trussness threshold k (paper Def. 3).
// k must be >= 2.
func (s *Scorer) Score(v int32, k int32) int {
	net := ego.ExtractOne(s.g, v)
	if net.G.M() == 0 {
		return 0
	}
	tau := truss.Decompose(net.G)
	return truss.CountComponents(net.G, tau, k)
}

// Contexts returns the social contexts SC(v): the vertex sets (global IDs,
// each sorted) of the maximal connected k-trusses of v's ego-network
// (paper Def. 2).
func (s *Scorer) Contexts(v int32, k int32) [][]int32 {
	net := ego.ExtractOne(s.g, v)
	if net.G.M() == 0 {
		return nil
	}
	tau := truss.Decompose(net.G)
	return net.GlobalSets(truss.Components(net.G, tau, k))
}

// ScoreAndContexts computes both in one ego decomposition.
func (s *Scorer) ScoreAndContexts(v int32, k int32) (int, [][]int32) {
	net := ego.ExtractOne(s.g, v)
	if net.G.M() == 0 {
		return 0, nil
	}
	tau := truss.Decompose(net.G)
	comps := truss.Components(net.G, tau, k)
	return len(comps), net.GlobalSets(comps)
}

// EgoTrussness returns the trussness of the edge (a,b) inside the
// ego-network of v, or 0 when (a,b) is not an ego edge. It exposes the
// quantity τ_{G_N(v)}(a,b) from the paper's non-symmetry discussion
// (Observation 1) for analysis and tests.
func (s *Scorer) EgoTrussness(v, a, b int32) int32 {
	net := ego.ExtractOne(s.g, v)
	la, lb := net.Local(a), net.Local(b)
	if la < 0 || lb < 0 {
		return 0
	}
	id := net.G.EdgeID(la, lb)
	if id < 0 {
		return 0
	}
	return truss.Decompose(net.G)[id]
}
