package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"trussdiv/internal/gen"
)

// Race coverage for the parallel execution layer: the worker-pool scans
// and the per-worker TSD scorers must stay data-race-free while many
// searches run concurrently over shared indexes. Run with
// `make check-race` (go test -race ./...) to arm the detector.

func TestParallelSearchRace(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 400, Attach: 3, Cliques: 80, MinSize: 4, MaxSize: 8, Seed: 9,
	})
	gctIdx := BuildGCTIndex(g)
	engines := map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	}
	ctx := context.Background()
	p := Params{K: 3, R: 10, Workers: 4}
	want := map[string]*Result{}
	for name, s := range engines {
		res, _, err := s.Search(ctx, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = res
	}

	// Every engine searched concurrently with itself and the others, each
	// search internally sharded: workers share the graph and the indexes
	// but nothing mutable.
	var wg sync.WaitGroup
	errs := make(chan error, len(engines)*4)
	for name, s := range engines {
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(name string, s searcher) {
				defer wg.Done()
				res, _, err := s.Search(ctx, p)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want[name]) {
					t.Errorf("%s: concurrent result differs from serial-time result", name)
				}
			}(name, s)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTSDScorersConcurrent drives many private scorers over one shared
// TSD index — the exact access pattern of the sharded tsd search.
func TestTSDScorersConcurrent(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 300, Attach: 3, Cliques: 60, MinSize: 4, MaxSize: 8, Seed: 10,
	})
	idx := BuildTSDIndex(g)
	want := make([]int, g.N())
	ref := idx.Scorer()
	for v := 0; v < g.N(); v++ {
		want[v] = ref.Score(int32(v), 3)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(offset int) {
			defer wg.Done()
			sc := idx.Scorer()
			for v := offset; v < g.N(); v += 8 {
				if got := sc.Score(int32(v), 3); got != want[v] {
					t.Errorf("scorer %d: score(%d) = %d, want %d", offset, v, got, want[v])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
