package core

import (
	"reflect"
	"testing"
)

func TestPatchHybridMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(t, 30, 140, seed+700)
		idx := BuildGCTIndex(g)
		old := BuildHybrid(idx)
		oldCopy := make([][]VertexScore, len(old.perK))
		for k := range old.perK {
			oldCopy[k] = append([]VertexScore(nil), old.perK[k]...)
		}

		ins, del := randomEdits(t, g, 4, 4, seed+701)
		newG, err := ApplyEdits(g, ins, del)
		if err != nil {
			t.Fatal(err)
		}
		newIdx, _ := idx.UpdateOnto(newG, ins, del)
		affected := AffectedVertices(g, newG, ins, del)

		patched := PatchHybrid(old, newIdx, affected)
		fresh := BuildHybrid(newIdx)
		if patched.maxK != fresh.maxK {
			t.Fatalf("seed %d: patched maxK %d, fresh %d", seed, patched.maxK, fresh.maxK)
		}
		if !reflect.DeepEqual(patched.perK, fresh.perK) {
			t.Fatalf("seed %d: patched hybrid rankings diverge from rebuild\npatched: %v\nfresh:   %v",
				seed, patched.perK, fresh.perK)
		}
		// Copy-on-write contract: the previous snapshot's rankings survive.
		for k := range oldCopy {
			if !reflect.DeepEqual(old.perK[k], oldCopy[k]) {
				t.Fatalf("seed %d k=%d: PatchHybrid mutated the old rankings", seed, k)
			}
		}
	}
}

func TestPatchHybridNoAffected(t *testing.T) {
	g := randomGraph(t, 20, 80, 31)
	idx := BuildGCTIndex(g)
	old := BuildHybrid(idx)
	patched := PatchHybrid(old, idx, nil)
	if !reflect.DeepEqual(patched.perK, old.perK) {
		t.Fatal("empty affected set must reproduce the rankings unchanged")
	}
}

func TestPatchMeasureRankingsMatchesRebuild(t *testing.T) {
	// Truss rankings live in Hybrid (PatchHybrid above); the measure
	// ranking tables cover the other two measures.
	for _, m := range []Measure{MeasureComponent, MeasureCore} {
		for seed := int64(0); seed < 5; seed++ {
			g := randomGraph(t, 28, 130, seed+800)
			old := BuildMeasureRankings(g, m)
			oldCopy := make([][]VertexScore, len(old))
			for k := range old {
				oldCopy[k] = append([]VertexScore(nil), old[k]...)
			}

			ins, del := randomEdits(t, g, 3, 4, seed+801)
			newG, err := ApplyEdits(g, ins, del)
			if err != nil {
				t.Fatal(err)
			}
			affected := AffectedVertices(g, newG, ins, del)

			patched := PatchMeasureRankings(newG, m, old, affected)
			fresh := BuildMeasureRankings(newG, m)
			if !reflect.DeepEqual(patched, fresh) {
				t.Fatalf("measure %q seed %d: patched rankings diverge from rebuild\npatched: %v\nfresh:   %v",
					m, seed, patched, fresh)
			}
			for k := range oldCopy {
				if !reflect.DeepEqual(old[k], oldCopy[k]) {
					t.Fatalf("measure %q seed %d k=%d: patch mutated the old rankings", m, seed, k)
				}
			}
		}
	}
}
