package core

import (
	"runtime"
	"sync"

	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// Parallel index construction. The paper's implementation is
// single-threaded C++; per-vertex index construction is embarrassingly
// parallel (each vertex's forest/supernode structure depends only on its
// own ego-network), so we offer concurrent builders as an engineering
// extension. Workers write to disjoint slice entries, which is safe
// without locks; work is handed out via a shared atomic-free counter
// channeled in blocks to keep contention negligible.

// BuildTSDIndexParallel is BuildTSDIndex using `workers` goroutines
// (0 or negative = GOMAXPROCS). The result is identical to the serial
// build.
func BuildTSDIndexParallel(g *graph.Graph, workers int) *TSDIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	idx := &TSDIndex{
		g:     g,
		edges: make([][]TSDEdge, n),
		mv:    make([]int32, n),
		vtCum: make([][]int32, n),
	}
	const block = 256
	blocks := make(chan int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var es ego.Scratch // per-worker extraction + decomposition scratch
			var ts truss.Scratch
			for lo := range blocks {
				hi := lo + block
				if hi > int32(n) {
					hi = int32(n)
				}
				for v := lo; v < hi; v++ {
					net := ego.ExtractOneInto(&es, g, v)
					idx.mv[v] = int32(net.G.M())
					if net.G.M() == 0 {
						continue
					}
					tau := ts.DecomposeInto(net.G)
					idx.edges[v] = maxSpanningForest(net.G, tau)
					idx.vtCum[v] = cumulativeVertexTrussness(net.G, tau)
				}
			}
		}()
	}
	for lo := int32(0); lo < int32(n); lo += block {
		blocks <- lo
	}
	close(blocks)
	wg.Wait()
	return idx
}

// BuildGCTIndexParallel is BuildGCTIndex using `workers` goroutines
// (0 or negative = GOMAXPROCS). The one-shot global extraction stays
// serial (it is a single triangle-listing pass); the per-vertex bitmap
// decompositions and compressions run concurrently, each worker with its
// own bitmap pool.
func BuildGCTIndexParallel(g *graph.Graph, workers int) *GCTIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	idx := &GCTIndex{g: g, verts: make([]gctVertex, n)}
	all := ego.ExtractAll(g)
	const block = 256
	blocks := make(chan int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var es ego.Scratch                    // per-worker CSR assembly scratch
			var decomposer truss.BitmapDecomposer // per-worker pool
			for lo := range blocks {
				hi := lo + block
				if hi > int32(n) {
					hi = int32(n)
				}
				for v := lo; v < hi; v++ {
					if all.EdgeCount(v) == 0 {
						continue
					}
					net := all.NetworkInto(&es, v)
					tau := decomposer.Decompose(net.G)
					idx.verts[v] = buildGCTVertex(net.G, tau)
				}
			}
		}()
	}
	for lo := int32(0); lo < int32(n); lo += block {
		blocks <- lo
	}
	close(blocks)
	wg.Wait()
	return idx
}
