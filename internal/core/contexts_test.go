package core

import (
	"testing"
	"testing/quick"
)

// Social contexts are, by Def. 2, vertex sets of maximal connected
// k-trusses of the ego-network. Structural invariants that must hold for
// every engine, every vertex, every k:
//
//  1. contexts are pairwise disjoint (maximal connected subgraphs of the
//     unique k-truss cannot overlap),
//  2. every context has at least k vertices (the smallest connected
//     k-truss is the k-clique),
//  3. every context member is a neighbor of the queried vertex,
//  4. the number of contexts equals score(v).
func TestContextInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 30, 150, seed+700)
		scorer := NewScorer(g)
		tsdIdx := BuildTSDIndex(g)
		gctIdx := BuildGCTIndex(g)
		for v := int32(0); int(v) < g.N(); v++ {
			nbrs := map[int32]bool{}
			for _, u := range g.Neighbors(v) {
				nbrs[u] = true
			}
			for k := int32(2); k <= 5; k++ {
				for _, contexts := range [][][]int32{
					scorer.Contexts(v, k),
					tsdIdx.Contexts(v, k),
					gctIdx.Contexts(v, k),
				} {
					seen := map[int32]bool{}
					for _, ctx := range contexts {
						if int32(len(ctx)) < k {
							return false // invariant 2
						}
						for _, u := range ctx {
							if seen[u] {
								return false // invariant 1
							}
							seen[u] = true
							if !nbrs[u] {
								return false // invariant 3
							}
						}
					}
					if len(contexts) != scorer.Score(v, k) {
						return false // invariant 4
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Every context must itself satisfy the k-truss definition: the subgraph
// of the ego-network induced by the context's vertices contains a
// spanning connected k-truss. We verify the defining edge-support
// condition directly on the induced subgraph restricted to qualifying
// edges.
func TestContextsAreKTrusses(t *testing.T) {
	g := randomGraph(t, 28, 140, 901)
	scorer := NewScorer(g)
	for v := int32(0); int(v) < g.N(); v++ {
		for k := int32(3); k <= 5; k++ {
			for _, ctx := range scorer.Contexts(v, k) {
				// All context members plus v span the context's edges; the
				// context itself lives inside the ego-network, so check
				// there: induced subgraph of the ego by ctx.
				verts := append([]int32{}, ctx...)
				sub, _ := g.InducedSubgraph(verts)
				// Context vertices must all touch triangles richly enough:
				// the k-truss of sub must span every context vertex.
				supports := sub.Supports()
				// Iteratively peel edges below k-2 support; whatever
				// remains must cover all vertices of ctx and be connected.
				alive := make([]bool, sub.M())
				for i := range alive {
					alive[i] = true
				}
				for changed := true; changed; {
					changed = false
					cur := sub.FilterEdges(func(id int32) bool { return alive[id] })
					supports = cur.Supports()
					for id := 0; id < cur.M(); id++ {
						if supports[id] < k-2 {
							e := cur.Edge(int32(id))
							gid := sub.EdgeID(e.U, e.V)
							if alive[gid] {
								alive[gid] = false
								changed = true
							}
						}
					}
				}
				covered := map[int32]struct{}{}
				for id := int32(0); int(id) < sub.M(); id++ {
					if alive[id] {
						e := sub.Edge(id)
						covered[e.U] = struct{}{}
						covered[e.V] = struct{}{}
					}
				}
				if len(covered) != len(ctx) {
					t.Fatalf("v=%d k=%d: context %v not spanned by its k-truss "+
						"(%d of %d vertices covered)", v, k, ctx, len(covered), len(ctx))
				}
			}
		}
	}
}
