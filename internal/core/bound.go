package core

import (
	"context"
	"sort"

	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// SparsifyResult reports what graph sparsification removed.
type SparsifyResult struct {
	Graph         *graph.Graph // edge-filtered graph, vertex IDs preserved
	EdgesRemoved  int
	IsolatedVerts int // vertices that lost all incident edges
	OriginalEdges int
	OriginalVerts int
}

// Sparsify removes from g every edge whose global trussness is below k+1.
// By Property 1 such edges belong to no maximal connected k-truss of any
// ego-network, so every score(v) is preserved. Vertex IDs are kept;
// vertices that become isolated are reported (and skipped by the search).
func Sparsify(g *graph.Graph, k int32) *SparsifyResult {
	return SparsifyWithTau(g, truss.Decompose(g), k)
}

// SparsifyWithTau is Sparsify with the global truss decomposition already
// in hand (cached across searches, or loaded from an index store), so the
// per-query cost drops to the edge filter.
func SparsifyWithTau(g *graph.Graph, tau []int32, k int32) *SparsifyResult {
	sub := g.FilterEdges(func(id int32) bool { return tau[id] >= k+1 })
	isolated := 0
	for v := 0; v < sub.N(); v++ {
		if sub.Degree(int32(v)) == 0 && g.Degree(int32(v)) > 0 {
			isolated++
		}
	}
	return &SparsifyResult{
		Graph:         sub,
		EdgesRemoved:  g.M() - sub.M(),
		IsolatedVerts: isolated,
		OriginalEdges: g.M(),
		OriginalVerts: g.N(),
	}
}

// UpperBound is Lemma 2: score(v) <= min{⌊d(v)/k⌋, ⌊2·m_v/(k(k-1))⌋},
// because every maximal connected k-truss has at least k vertices and at
// least k(k-1)/2 edges.
func UpperBound(degree int, egoEdges int32, k int32) int {
	byVerts := degree / int(k)
	byEdges := int(2*egoEdges) / int(int(k)*(int(k)-1))
	if byEdges < byVerts {
		return byEdges
	}
	return byVerts
}

// Bound is the pruned searcher (paper Algorithm 4): sparsify, compute the
// Lemma-2 upper bound for every surviving vertex, visit candidates in
// decreasing bound order, and stop as soon as the next bound cannot beat
// the current r-th best score.
type Bound struct {
	g *graph.Graph
	// tauFn, when set, supplies the global truss decomposition instead of
	// recomputing it inside every search (see NewBoundWithTau).
	tauFn func() []int32
}

// NewBound returns a Bound searcher over g.
func NewBound(g *graph.Graph) *Bound { return &Bound{g: g} }

// NewBoundWithTau returns a Bound searcher that obtains the global truss
// decomposition of g from fn — typically a cache backed by an index store
// — instead of recomputing it on every search. fn must return the exact
// decomposition of g (tau indexed by edge ID); the search results are
// identical either way.
func NewBoundWithTau(g *graph.Graph, fn func() []int32) *Bound {
	return &Bound{g: g, tauFn: fn}
}

// Graph returns the underlying graph.
func (b *Bound) Graph() *graph.Graph { return b.g }

// TopR runs Algorithm 4.
func (b *Bound) TopR(k int32, r int) (*Result, *Stats, error) {
	return b.Search(context.Background(), Params{K: k, R: r})
}

// Search runs Algorithm 4: sparsify, compute the Lemma-2 upper bound for
// every surviving candidate, visit candidates in decreasing bound order,
// and stop as soon as the next bound cannot beat the current r-th best
// score. The exact-score pass shards across p.Workers goroutines in
// chunks (see scanRanked). The context is checked before the
// sparsification and before every exact score computation.
//
// The search is measure-generic: for a non-truss p.Measure, trussness
// sparsification (Property 1 holds only for the truss model) is replaced
// by the measure's own upper bound over the unsparsified graph — see
// searchMeasure — while the ranked, early-terminating scan is shared.
func (b *Bound) Search(ctx context.Context, p Params) (*Result, *Stats, error) {
	p, err := p.normalized(b.g.N())
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if m := p.Measure.Normalize(); m != MeasureTruss {
		// The trussness sparsification lemma (Property 1) does not transfer
		// to the other models, so the non-truss bound pass prunes over the
		// original graph with the measure's own upper bound and scorer.
		mv := b.g.TrianglesPerVertex()
		return b.rankedSearch(ctx, p, b.g, m,
			func(v int32, d int) int { return MeasureUpperBound(m, d, mv[v], p.K) })
	}
	var sp *SparsifyResult
	if b.tauFn != nil {
		sp = SparsifyWithTau(b.g, b.tauFn(), p.K)
	} else {
		sp = Sparsify(b.g, p.K)
	}
	// Upper bounds on the sparsified graph (its ego-networks are subgraphs
	// of the originals, so the bound is valid and tighter). A vertex
	// isolated by the sparsification has score 0 and is skipped by the
	// degree check inside rankedSearch.
	sub := sp.Graph
	mv := sub.TrianglesPerVertex()
	return b.rankedSearch(ctx, p, sub, MeasureTruss,
		func(v int32, d int) int { return UpperBound(d, mv[v], p.K) })
}

// rankedSearch is the bound framework's shared skeleton, identical for
// every measure: collect each candidate's upper bound over candG (the
// sparsified graph for truss, the original otherwise), visit candidates
// in decreasing bound order with early termination (scanRanked, one
// VertexScorer per worker), pad to the canonical answer, and recover
// contexts with the measure's shared scorer over candG. Keeping one copy
// is what pins the measure paths to the truss path's tie-break and
// padding rules — the byte-parity contract.
func (b *Bound) rankedSearch(ctx context.Context, p Params, candG *graph.Graph, m Measure, ub func(v int32, d int) int) (*Result, *Stats, error) {
	scorer := NewMeasureScorer(candG, m)
	stats := &Stats{}
	cands := make([]rankedCand, 0, candG.N())
	err := forEachCandidate(ctx, candG.N(), p.Candidates, false, func(v int32) {
		d := candG.Degree(v)
		if d == 0 {
			return // no edges, no contexts: score is 0
		}
		if u := ub(v, d); u > 0 {
			cands = append(cands, rankedCand{v, u})
		}
	})
	if err != nil {
		return nil, nil, err
	}
	stats.Candidates = len(cands)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ub != cands[j].ub {
			return cands[i].ub > cands[j].ub
		}
		return cands[i].v < cands[j].v
	})
	heap, scored, err := scanRanked(ctx, cands, p.R, p.workers(),
		func() func(v int32) int {
			vs := NewVertexScorer(candG, m)
			return func(v int32) int { return vs.Score(v, p.K) }
		})
	if err != nil {
		return nil, nil, err
	}
	stats.ScoreComputations = scored
	// Vertices pruned away all have score 0 (or were dominated); if fewer
	// than r candidates existed, pad with zero-score vertices for parity
	// with the online answer size.
	padAnswer(heap, b.g.N(), p.Candidates)
	res, err := finishResult(ctx, heap.Answer(), p, func(v int32) [][]int32 {
		return scorer.Contexts(v, p.K)
	})
	if err != nil {
		return nil, nil, err
	}
	return res, exportStats(stats, p), nil
}
