package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"trussdiv/internal/graph"
)

// Binary serialization of the two indexes. The on-disk sizes are what
// Table 3 reports as "index size"; SizeBytes gives the in-memory figure.

const (
	tsdMagic = uint32(0x54534431) // "TSD1"
	gctMagic = uint32(0x47435431) // "GCT1"
)

// WriteTo serializes the TSD index (forest edges per vertex). The graph is
// not embedded; ReadTSDIndex must be given the same graph.
func (idx *TSDIndex) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put([2]uint32{tsdMagic, uint32(len(idx.edges))}); err != nil {
		return written, err
	}
	if len(idx.mv) > 0 {
		if err := put(idx.mv); err != nil {
			return written, err
		}
	}
	for v, edges := range idx.edges {
		cum := idx.vtCum[v]
		if err := put([2]uint32{uint32(len(edges)), uint32(len(cum))}); err != nil {
			return written, err
		}
		if len(edges) > 0 {
			if err := put(edges); err != nil {
				return written, err
			}
		}
		if len(cum) > 0 {
			if err := put(cum); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadTSDIndex deserializes a TSD index previously written by WriteTo,
// binding it to g (which must be the graph it was built from).
func ReadTSDIndex(r io.Reader, g *graph.Graph) (*TSDIndex, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: tsd header: %w", err)
	}
	if hdr[0] != tsdMagic {
		return nil, fmt.Errorf("core: bad TSD magic %#x", hdr[0])
	}
	if int(hdr[1]) != g.N() {
		return nil, fmt.Errorf("core: TSD index has %d vertices, graph has %d", hdr[1], g.N())
	}
	idx := &TSDIndex{
		g:     g,
		edges: make([][]TSDEdge, hdr[1]),
		mv:    make([]int32, hdr[1]),
		vtCum: make([][]int32, hdr[1]),
	}
	if hdr[1] > 0 {
		if err := binary.Read(br, binary.LittleEndian, idx.mv); err != nil {
			return nil, fmt.Errorf("core: tsd mv: %w", err)
		}
	}
	for v := range idx.edges {
		var counts [2]uint32
		if err := binary.Read(br, binary.LittleEndian, counts[:]); err != nil {
			return nil, fmt.Errorf("core: tsd vertex %d: %w", v, err)
		}
		// A forest over N(v) has at most deg(v)-1 edges and the trussness
		// histogram at most deg(v)+1 levels; larger counts mean a corrupt
		// or mismatched file, and honoring them would over-allocate.
		deg := uint32(g.Degree(int32(v)))
		if counts[0] > deg || counts[1] > deg+2 {
			return nil, fmt.Errorf("core: tsd vertex %d: corrupt counts %v for degree %d",
				v, counts, deg)
		}
		if counts[0] > 0 {
			edges := make([]TSDEdge, counts[0])
			if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
				return nil, fmt.Errorf("core: tsd vertex %d edges: %w", v, err)
			}
			idx.edges[v] = edges
		}
		if counts[1] > 0 {
			cum := make([]int32, counts[1])
			if err := binary.Read(br, binary.LittleEndian, cum); err != nil {
				return nil, fmt.Errorf("core: tsd vertex %d vtcum: %w", v, err)
			}
			idx.vtCum[v] = cum
		}
	}
	return idx, nil
}

// WriteTo serializes the GCT index.
func (idx *GCTIndex) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	if err := put([2]uint32{gctMagic, uint32(len(idx.verts))}); err != nil {
		return written, err
	}
	for i := range idx.verts {
		gv := &idx.verts[i]
		if err := put([3]uint32{
			uint32(len(gv.nodeTau)), uint32(len(gv.members)), uint32(len(gv.edges)),
		}); err != nil {
			return written, err
		}
		if len(gv.nodeTau) == 0 {
			continue
		}
		for _, part := range []any{gv.nodeTau, gv.memberOff, gv.members} {
			if err := put(part); err != nil {
				return written, err
			}
		}
		if len(gv.edges) > 0 {
			if err := put(gv.edges); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadGCTIndex deserializes a GCT index previously written by WriteTo,
// binding it to g.
func ReadGCTIndex(r io.Reader, g *graph.Graph) (*GCTIndex, error) {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: gct header: %w", err)
	}
	if hdr[0] != gctMagic {
		return nil, fmt.Errorf("core: bad GCT magic %#x", hdr[0])
	}
	if int(hdr[1]) != g.N() {
		return nil, fmt.Errorf("core: GCT index has %d vertices, graph has %d", hdr[1], g.N())
	}
	idx := &GCTIndex{g: g, verts: make([]gctVertex, hdr[1])}
	for i := range idx.verts {
		var sizes [3]uint32
		if err := binary.Read(br, binary.LittleEndian, sizes[:]); err != nil {
			return nil, fmt.Errorf("core: gct vertex %d: %w", i, err)
		}
		// Supernodes and members are bounded by deg(v); superedges by the
		// supernode count (forest). Reject corrupt headers before
		// allocating.
		deg := uint32(g.Degree(int32(i)))
		if sizes[0] > deg || sizes[1] > deg || sizes[2] > sizes[0] {
			return nil, fmt.Errorf("core: gct vertex %d: corrupt sizes %v for degree %d",
				i, sizes, deg)
		}
		if sizes[0] == 0 {
			continue
		}
		gv := gctVertex{
			nodeTau:   make([]int32, sizes[0]),
			memberOff: make([]int32, sizes[0]+1),
			members:   make([]int32, sizes[1]),
			edges:     make([]GCTSuperEdge, sizes[2]),
		}
		for _, part := range []any{gv.nodeTau, gv.memberOff, gv.members} {
			if err := binary.Read(br, binary.LittleEndian, part); err != nil {
				return nil, fmt.Errorf("core: gct vertex %d parts: %w", i, err)
			}
		}
		if sizes[2] > 0 {
			if err := binary.Read(br, binary.LittleEndian, gv.edges); err != nil {
				return nil, fmt.Errorf("core: gct vertex %d edges: %w", i, err)
			}
		}
		gv.edgeW = make([]int32, len(gv.edges))
		for j, e := range gv.edges {
			gv.edgeW[j] = e.W
		}
		idx.verts[i] = gv
	}
	return idx, nil
}
