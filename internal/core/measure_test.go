package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"trussdiv/internal/baseline"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// Measure parity: for the component and core measures, every generic
// engine (Online, Bound, Ranked) must produce byte-identical Results to
// the naive internal/baseline implementation — same vertices, same
// canonical order, same scores, same contexts — across seeded random
// graphs and worker counts {1, 4, GOMAXPROCS}.

// baselineTopR is the reference answer: the naive full sort of
// baseline.Search plus contexts from the model, shaped like a Result.
func baselineTopR(t *testing.T, g *graph.Graph, m Measure, k int32, r int) *Result {
	t.Helper()
	model := NewMeasureScorer(g, m).(baseline.Model)
	top, err := baseline.Search(context.Background(), model, g.N(), k, r)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{TopR: make([]VertexScore, len(top))}
	res.Contexts = make(map[int32][][]int32, len(top))
	for i, e := range top {
		res.TopR[i] = VertexScore{V: e.V, Score: e.Score}
		c := model.Contexts(e.V, k)
		if len(c) == 0 {
			c = nil
		}
		res.Contexts[e.V] = c
	}
	return res
}

func measureWorkerCounts() []int {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p != 1 {
		counts = append(counts, p)
	}
	return counts
}

func measureParityGraphs(t *testing.T) []conformanceGraph {
	rng := testutil.Rand(t, 4242)
	return []conformanceGraph{
		{"fig1", gen.Fig1Graph()},
		{"overlay", gen.CommunityOverlay(gen.OverlayConfig{
			N: 200, Attach: 3, Cliques: 50, MinSize: 4, MaxSize: 8, Seed: rng.Int63(),
		})},
		{"ba", gen.BarabasiAlbert(180, 4, rng.Int63())},
		{"er", gen.ErdosRenyiGNM(140, 800, rng.Int63())},
	}
}

func TestMeasureEnginesMatchBaseline(t *testing.T) {
	ctx := context.Background()
	for _, tc := range measureParityGraphs(t) {
		g := tc.g
		for _, m := range []Measure{MeasureComponent, MeasureCore} {
			engines := map[string]searcher{
				"online": NewOnline(g),
				"bound":  NewBound(g),
				"ranked": NewRanked(g, m, BuildMeasureRankings(g, m)),
			}
			for _, k := range []int32{2, 3, 5} {
				for _, r := range []int{1, 10, g.N()} {
					want := baselineTopR(t, g, m, k, r)
					for name, eng := range engines {
						for _, workers := range measureWorkerCounts() {
							p := Params{K: k, R: r, Measure: m, Workers: workers, SkipContexts: true}
							res, _, err := eng.Search(ctx, p)
							if err != nil {
								t.Fatalf("%s/%s/%s k=%d r=%d w=%d: %v",
									tc.name, m, name, k, r, workers, err)
							}
							if !reflect.DeepEqual(res.TopR, want.TopR) {
								t.Fatalf("%s/%s/%s k=%d r=%d w=%d: answer diverged from baseline\n got %v\nwant %v",
									tc.name, m, name, k, r, workers, res.TopR, want.TopR)
							}
							if res.Contexts != nil {
								t.Fatalf("%s/%s/%s: contexts returned without being requested",
									tc.name, m, name)
							}
							p.SkipContexts = false
							res, _, err = eng.Search(ctx, p)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(res.TopR, want.TopR) {
								t.Fatalf("%s/%s/%s k=%d r=%d w=%d: answer changed when contexts requested",
									tc.name, m, name, k, r, workers)
							}
							if !reflect.DeepEqual(res.Contexts, want.Contexts) {
								t.Fatalf("%s/%s/%s k=%d r=%d w=%d: contexts diverged from baseline",
									tc.name, m, name, k, r, workers)
							}
						}
					}
				}
			}
		}
	}
}

// TestMeasureUpperBoundIsSound: the bound engine's correctness hinges on
// MeasureUpperBound never under-estimating; check it directly against
// exact scores on random graphs.
func TestMeasureUpperBoundIsSound(t *testing.T) {
	for _, tc := range measureParityGraphs(t) {
		g := tc.g
		mv := g.TrianglesPerVertex()
		for _, m := range AllMeasures() {
			scorer := NewMeasureScorer(g, m)
			for _, k := range []int32{2, 3, 4, 6} {
				for v := int32(0); int(v) < g.N(); v++ {
					score := scorer.Score(v, k)
					ub := MeasureUpperBound(m, g.Degree(v), mv[v], k)
					if score > ub {
						t.Fatalf("%s/%s: v=%d k=%d score %d exceeds upper bound %d",
							tc.name, m, v, k, score, ub)
					}
				}
			}
		}
	}
}

// TestMeasureRankingsMatchScores: the per-k rankings must agree with the
// naive per-vertex scores for every k they cover (and cover every k with
// a positive score).
func TestMeasureRankingsMatchScores(t *testing.T) {
	for _, tc := range measureParityGraphs(t)[:2] {
		g := tc.g
		for _, m := range []Measure{MeasureComponent, MeasureCore} {
			perK := BuildMeasureRankings(g, m)
			scorer := NewMeasureScorer(g, m)
			maxK := int32(len(perK) + 2)
			for k := int32(2); k <= maxK; k++ {
				dense := make([]int, g.N())
				if int(k) < len(perK) {
					for i, e := range perK[k] {
						if e.Score <= 0 {
							t.Fatalf("%s/%s k=%d: ranking holds non-positive score %d", tc.name, m, k, e.Score)
						}
						if i > 0 {
							prev := perK[k][i-1]
							if prev.Score < e.Score || (prev.Score == e.Score && prev.V >= e.V) {
								t.Fatalf("%s/%s k=%d: ranking order broken at %d", tc.name, m, k, i)
							}
						}
						dense[e.V] = e.Score
					}
				}
				for v := int32(0); int(v) < g.N(); v++ {
					if want := scorer.Score(v, k); dense[v] != want {
						t.Fatalf("%s/%s: ranking score(%d, %d) = %d, want %d",
							tc.name, m, v, k, dense[v], want)
					}
				}
			}
		}
	}
}

// TestTrussOnlyEnginesRejectMeasures: the index engines must fail other
// measures with the typed error rather than silently answering with
// truss semantics.
func TestTrussOnlyEnginesRejectMeasures(t *testing.T) {
	g := gen.Fig1Graph()
	gctIdx := BuildGCTIndex(g)
	engines := map[string]searcher{
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	}
	for name, eng := range engines {
		for _, m := range []Measure{MeasureComponent, MeasureCore} {
			_, _, err := eng.Search(context.Background(), Params{K: 3, R: 5, Measure: m})
			if !errors.Is(err, ErrUnsupportedMeasure) {
				t.Fatalf("%s with measure %s: err = %v, want ErrUnsupportedMeasure", name, m, err)
			}
			var ue *UnsupportedMeasureError
			if !errors.As(err, &ue) || ue.Measure != m {
				t.Fatalf("%s: error %v does not carry the measure", name, err)
			}
		}
	}
	// Unknown measure names are a validation error on every engine.
	if _, _, err := NewOnline(g).Search(context.Background(), Params{K: 3, R: 5, Measure: "bogus"}); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

// TestParseMeasure pins the accepted names and the empty-string default.
func TestParseMeasure(t *testing.T) {
	for raw, want := range map[string]Measure{
		"": MeasureTruss, "truss": MeasureTruss,
		"component": MeasureComponent, "core": MeasureCore,
	} {
		got, err := ParseMeasure(raw)
		if err != nil || got != want {
			t.Fatalf("ParseMeasure(%q) = %v, %v; want %v", raw, got, err, want)
		}
	}
	if _, err := ParseMeasure("trussish"); err == nil {
		t.Fatal("bad measure name accepted")
	}
	if names := AllMeasures(); len(names) != 3 || names[0] != MeasureTruss {
		t.Fatalf("AllMeasures() = %v", names)
	}
}
