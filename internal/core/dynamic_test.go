package core

import (
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// randomEdits picks a batch of valid insertions (absent pairs) and
// deletions (present edges) from g.
func randomEdits(tb testing.TB, g *graph.Graph, nIns, nDel int, seed int64) (ins, del []graph.Edge) {
	rng := testutil.Rand(tb, seed)
	n := int32(g.N())
	chosen := map[graph.Edge]bool{}
	for len(ins) < nIns {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := graph.Edge{U: u, V: v}
		if g.HasEdge(u, v) || chosen[e] {
			continue
		}
		chosen[e] = true
		ins = append(ins, e)
	}
	edges := g.Edges()
	for len(del) < nDel && len(del) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		del = append(del, e)
	}
	return ins, del
}

func TestTSDUpdateMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(t, 35, 170, seed+300)
		idx := BuildTSDIndex(g)
		ins, del := randomEdits(t, g, 6, 6, seed+301)
		updated, stats, err := idx.Update(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Inserted != len(ins) || stats.Removed != len(del) {
			t.Fatalf("stats %+v", stats)
		}
		if stats.Affected == 0 {
			t.Fatal("no affected vertices reported")
		}
		fresh := BuildTSDIndex(updated.Graph())
		for k := int32(2); k <= 6; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				if updated.Score(v, k) != fresh.Score(v, k) {
					t.Fatalf("seed %d k=%d v=%d: incremental %d != rebuild %d",
						seed, k, v, updated.Score(v, k), fresh.Score(v, k))
				}
				if updated.ScoreUpperBound(v, k) != fresh.ScoreUpperBound(v, k) {
					t.Fatalf("seed %d k=%d v=%d: bounds diverge", seed, k, v)
				}
			}
		}
	}
}

func TestGCTUpdateMatchesRebuild(t *testing.T) {
	for seed := int64(10); seed < 18; seed++ {
		g := randomGraph(t, 35, 170, seed+400)
		idx := BuildGCTIndex(g)
		ins, del := randomEdits(t, g, 5, 5, seed+401)
		updated, _, err := idx.Update(ins, del)
		if err != nil {
			t.Fatal(err)
		}
		fresh := BuildGCTIndex(updated.Graph())
		for k := int32(2); k <= 6; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				if updated.Score(v, k) != fresh.Score(v, k) {
					t.Fatalf("seed %d k=%d v=%d: incremental %d != rebuild %d",
						seed, k, v, updated.Score(v, k), fresh.Score(v, k))
				}
			}
		}
	}
}

func TestUpdateValidation(t *testing.T) {
	g := gen.Clique(4)
	idx := BuildTSDIndex(g)
	// Inserting an existing edge fails.
	if _, _, err := idx.Update([]graph.Edge{{U: 0, V: 1}}, nil); err == nil {
		t.Fatal("want error inserting existing edge")
	}
	// Removing a missing edge fails.
	if _, _, err := idx.Update(nil, []graph.Edge{{U: 0, V: 9}}); err == nil {
		t.Fatal("want error removing out-of-range edge")
	}
	g2 := gen.Cycle(5)
	idx2 := BuildTSDIndex(g2)
	if _, _, err := idx2.Update(nil, []graph.Edge{{U: 0, V: 2}}); err == nil {
		t.Fatal("want error removing absent edge")
	}
	// Out-of-range insertion fails.
	if _, _, err := idx2.Update([]graph.Edge{{U: 0, V: 99}}, nil); err == nil {
		t.Fatal("want error inserting out-of-range edge")
	}
}

func TestUpdateAffectedSetIsLocal(t *testing.T) {
	// Two far-apart cliques: editing inside one must not touch the other.
	g := gen.DisjointUnion(gen.Clique(6), gen.Clique(6))
	idx := BuildTSDIndex(g)
	// Delete one edge inside the first clique.
	updated, stats, err := idx.Update(nil, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Affected = endpoints + their 4 common neighbors = 6 (first clique).
	if stats.Affected != 6 {
		t.Fatalf("affected = %d, want 6", stats.Affected)
	}
	// Second clique untouched: each vertex's ego is K5, one 5-truss.
	for v := int32(6); v < 12; v++ {
		if got := updated.Score(v, 5); got != 1 {
			t.Fatalf("clique-2 vertex %d score@5 = %d, want 1", v, got)
		}
	}
	// First clique: a non-endpoint's ego is K5 minus an edge, which is a
	// 4-truss but no longer a 5-truss.
	for v := int32(2); v < 6; v++ {
		if got := updated.Score(v, 4); got != 1 {
			t.Fatalf("clique-1 vertex %d score@4 = %d, want 1", v, got)
		}
		if got := updated.Score(v, 5); got != 0 {
			t.Fatalf("clique-1 vertex %d score@5 = %d, want 0", v, got)
		}
	}
	// The deleted edge's endpoint keeps a K4 ego: one 4-truss.
	if got := updated.Score(0, 4); got != 1 {
		t.Fatalf("endpoint score@4 = %d, want 1", got)
	}
}

func TestParallelBuildsMatchSerial(t *testing.T) {
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 1200, Attach: 4, Cliques: 250, MinSize: 4, MaxSize: 10, Diffuse: 20, Seed: 77,
	})
	serialTSD := BuildTSDIndex(g)
	serialGCT := BuildGCTIndex(g)
	for _, workers := range []int{1, 2, 4, 0} {
		parTSD := BuildTSDIndexParallel(g, workers)
		parGCT := BuildGCTIndexParallel(g, workers)
		for k := int32(2); k <= 6; k++ {
			for v := int32(0); int(v) < g.N(); v++ {
				if parTSD.Score(v, k) != serialTSD.Score(v, k) {
					t.Fatalf("workers=%d k=%d v=%d: parallel TSD diverges", workers, k, v)
				}
				if parGCT.Score(v, k) != serialGCT.Score(v, k) {
					t.Fatalf("workers=%d k=%d v=%d: parallel GCT diverges", workers, k, v)
				}
			}
		}
	}
}
