package core

import (
	"fmt"
	"sort"

	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// Dynamic index maintenance (paper §5.3 Remarks): an edge change touches
// only a bounded set of ego-networks, so the index can be repaired
// without a full rebuild.
//
// Inserting or deleting edge (u,v) changes:
//   - the ego-network of u (it gains/loses vertex v and v's links into
//     N(u) ∩ N(v)),
//   - the ego-network of v (symmetrically), and
//   - the ego-network of every common neighbor w ∈ N(u) ∩ N(v) (it
//     gains/loses the edge (u,v)).
//
// No other ego-network contains both endpoints of the changed edge, so
// rebuilding the per-vertex structures of that affected set — against the
// edited graph — restores the exact index.

// UpdateStats reports the work an incremental update performed.
type UpdateStats struct {
	Inserted, Removed int // edges actually changed
	Affected          int // vertices whose ego-networks were rebuilt
	// TrussRepaired reports that the global truss decomposition was
	// repaired in place rather than invalidated; TrussRegion is the number
	// of edges whose trussness the repair re-derived (the arXiv:1806.05523
	// locality bound realized — everything else was provably unchanged).
	TrussRepaired bool
	TrussRegion   int
	// RankingsPatched counts per-k ranking tables (hybrid plus per-measure)
	// that were patched in place instead of invalidated.
	RankingsPatched int
}

// AffectedVertices returns the sorted set of vertices whose ego-networks
// an edit batch touches: {u, v} ∪ (N(u) ∩ N(v)) per edit, with common
// neighbors taken in the graph where the edge exists (the new graph for
// insertions, the old one for deletions). No other vertex's ego-network
// contains both endpoints of a changed edge, so this is exactly the set
// whose per-vertex scores — and therefore ranking entries — can change.
func AffectedVertices(oldG, newG *graph.Graph, inserted, removed []graph.Edge) []int32 {
	return affectedVertices(oldG, newG, inserted, removed)
}

// affectedVertices collects {u, v} ∪ (N(u) ∩ N(v)) for each edit, taking
// common neighbors in the graph where the edge exists (the new graph for
// insertions, the old one for deletions).
func affectedVertices(oldG, newG *graph.Graph, inserted, removed []graph.Edge) []int32 {
	seen := map[int32]struct{}{}
	mark := func(v int32) { seen[v] = struct{}{} }
	var buf []int32
	for _, e := range inserted {
		mark(e.U)
		mark(e.V)
		buf = newG.CommonNeighbors(buf[:0], e.U, e.V)
		for _, w := range buf {
			mark(w)
		}
	}
	for _, e := range removed {
		mark(e.U)
		mark(e.V)
		buf = oldG.CommonNeighbors(buf[:0], e.U, e.V)
		for _, w := range buf {
			mark(w)
		}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyEdits builds the edited graph. The vertex count is preserved (new
// vertices are not supported: add them by rebuilding). Inserting an
// existing edge or removing a missing one is an error, so update stats
// stay meaningful. Given the same inputs, the result is deterministic —
// callers applying one batch to several indexes should build the edited
// graph once and hand it to the UpdateOnto variants, so every repaired
// index shares one canonical graph (and its edge-ID assignment).
func ApplyEdits(g *graph.Graph, insert, remove []graph.Edge) (*graph.Graph, error) {
	drop := make(map[graph.Edge]bool, len(remove))
	for _, e := range remove {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		if e.U < 0 || e.V >= int32(g.N()) || g.EdgeID(e.U, e.V) < 0 {
			return nil, fmt.Errorf("core: cannot remove missing edge (%d,%d)", e.U, e.V)
		}
		drop[e] = true
	}
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range insert {
		if e.U >= int32(g.N()) || e.V >= int32(g.N()) || e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("core: insert (%d,%d) out of range [0,%d)", e.U, e.V, g.N())
		}
		if g.EdgeID(e.U, e.V) >= 0 {
			return nil, fmt.Errorf("core: edge (%d,%d) already present", e.U, e.V)
		}
		b.AddEdge(e.U, e.V)
	}
	return b.Build(), nil
}

// Update applies edge insertions and deletions and repairs the TSD index
// incrementally, rebuilding only the affected ego-network forests. The
// repair is copy-on-write: the returned index shares unaffected per-vertex
// storage with the receiver, and the receiver stays fully usable — readers
// holding the old index keep seeing the pre-update answers.
func (idx *TSDIndex) Update(insert, remove []graph.Edge) (*TSDIndex, *UpdateStats, error) {
	newG, err := ApplyEdits(idx.g, insert, remove)
	if err != nil {
		return nil, nil, err
	}
	out, stats := idx.UpdateOnto(newG, insert, remove)
	return out, stats, nil
}

// UpdateOnto repairs the index against a pre-built edited graph (the
// result of ApplyEdits over the same insert/remove batch — UpdateOnto
// itself performs no validation). It exists so one batch applied to
// several indexes shares a single canonical new graph. Copy-on-write like
// Update: the receiver stays valid.
func (idx *TSDIndex) UpdateOnto(newG *graph.Graph, insert, remove []graph.Edge) (*TSDIndex, *UpdateStats) {
	oldG := idx.g
	affected := affectedVertices(oldG, newG, insert, remove)
	out := &TSDIndex{
		g: newG,
		// Fresh top-level slices, sharing unaffected per-vertex storage:
		// writes below never touch the receiver's view.
		edges: append([][]TSDEdge(nil), idx.edges...),
		mv:    append([]int32(nil), idx.mv...),
		vtCum: append([][]int32(nil), idx.vtCum...),
	}
	var es ego.Scratch // one scratch reused across the affected set
	var ts truss.Scratch
	for _, v := range affected {
		net := ego.ExtractOneInto(&es, newG, v)
		out.mv[v] = int32(net.G.M())
		if net.G.M() == 0 {
			out.edges[v] = nil
			out.vtCum[v] = nil
			continue
		}
		tau := ts.DecomposeInto(net.G)
		out.edges[v] = maxSpanningForest(net.G, tau)
		out.vtCum[v] = cumulativeVertexTrussness(net.G, tau)
	}
	return out, &UpdateStats{
		Inserted: len(insert),
		Removed:  len(remove),
		Affected: len(affected),
	}
}

// Update applies edge insertions and deletions and repairs the GCT index
// incrementally, rebuilding only the affected per-vertex structures.
// Copy-on-write: the receiver stays fully usable.
func (idx *GCTIndex) Update(insert, remove []graph.Edge) (*GCTIndex, *UpdateStats, error) {
	newG, err := ApplyEdits(idx.g, insert, remove)
	if err != nil {
		return nil, nil, err
	}
	out, stats := idx.UpdateOnto(newG, insert, remove)
	return out, stats, nil
}

// UpdateOnto repairs the GCT index against a pre-built edited graph; see
// TSDIndex.UpdateOnto for the contract.
func (idx *GCTIndex) UpdateOnto(newG *graph.Graph, insert, remove []graph.Edge) (*GCTIndex, *UpdateStats) {
	oldG := idx.g
	affected := affectedVertices(oldG, newG, insert, remove)
	out := &GCTIndex{g: newG, verts: append([]gctVertex(nil), idx.verts...)}
	var es ego.Scratch // one scratch reused across the affected set
	var decomposer truss.BitmapDecomposer
	for _, v := range affected {
		net := ego.ExtractOneInto(&es, newG, v)
		if net.G.M() == 0 {
			out.verts[v] = gctVertex{}
			continue
		}
		tau := decomposer.Decompose(net.G)
		out.verts[v] = buildGCTVertex(net.G, tau)
	}
	return out, &UpdateStats{
		Inserted: len(insert),
		Removed:  len(remove),
		Affected: len(affected),
	}
}
