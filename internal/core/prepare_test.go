package core

import (
	"reflect"
	"runtime"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/testutil"
)

// TestBuildAllMatchesDedicatedBuilders pins the single-pass driver's
// contract: every product of one BuildAll pass is deep-equal to the
// structure the dedicated builder produces, across worker counts. The
// truss rankings in particular must match BuildHybrid (scored through a
// GCT index via Lemma 3) even though BuildAll reads the component counts
// straight off the shared decomposition.
func TestBuildAllMatchesDedicatedBuilders(t *testing.T) {
	rng := testutil.Rand(t, 777)
	graphs := []conformanceGraph{
		{"fig1", gen.Fig1Graph()},
		{"overlay", gen.CommunityOverlay(gen.OverlayConfig{
			N: 200, Attach: 3, Cliques: 50, MinSize: 4, MaxSize: 8, Seed: rng.Int63(),
		})},
		{"ba", gen.BarabasiAlbert(150, 4, rng.Int63())},
		{"er", gen.ErdosRenyiGNM(120, 600, rng.Int63())},
		{"empty", gen.ErdosRenyiGNM(30, 0, 1)},
	}
	targets := BuildTargets{
		TSD:        true,
		GCT:        true,
		TrussRanks: true,
		Measures:   []Measure{MeasureComponent, MeasureCore},
	}
	for _, tc := range graphs {
		g := tc.g
		wantTSD := BuildTSDIndex(g)
		wantGCT := BuildGCTIndex(g)
		wantHybrid := BuildHybrid(wantGCT).Rankings()
		wantComp := BuildMeasureRankings(g, MeasureComponent)
		wantCore := BuildMeasureRankings(g, MeasureCore)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			p := BuildAll(g, targets, workers)
			if !reflect.DeepEqual(p.TSD, wantTSD) {
				t.Fatalf("%s/w=%d: BuildAll TSD index diverges from BuildTSDIndex", tc.name, workers)
			}
			if !reflect.DeepEqual(p.GCT, wantGCT) {
				t.Fatalf("%s/w=%d: BuildAll GCT index diverges from BuildGCTIndex", tc.name, workers)
			}
			if !reflect.DeepEqual(p.TrussRanks, wantHybrid) {
				t.Fatalf("%s/w=%d: BuildAll truss rankings diverge from BuildHybrid\n got %v\nwant %v",
					tc.name, workers, p.TrussRanks, wantHybrid)
			}
			if !reflect.DeepEqual(p.MeasureRanks[MeasureComponent], wantComp) {
				t.Fatalf("%s/w=%d: BuildAll component rankings diverge from BuildMeasureRankings",
					tc.name, workers)
			}
			if !reflect.DeepEqual(p.MeasureRanks[MeasureCore], wantCore) {
				t.Fatalf("%s/w=%d: BuildAll core rankings diverge from BuildMeasureRankings",
					tc.name, workers)
			}
		}
	}

	// Partial target sets leave the unrequested products zero.
	g := gen.Fig1Graph()
	p := BuildAll(g, BuildTargets{TrussRanks: true}, 0)
	if p.TSD != nil || p.GCT != nil || p.MeasureRanks != nil {
		t.Fatal("unrequested products were built")
	}
	if !reflect.DeepEqual(p.TrussRanks, BuildHybrid(BuildGCTIndex(g)).Rankings()) {
		t.Fatal("TrussRanks-only BuildAll diverges from BuildHybrid")
	}
}
