package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// trippingContext reports itself cancelled after a fixed number of Err
// polls, making mid-loop cancellation deterministic: the search must
// observe the cancellation at its next poll, wherever that poll sits.
// The counter is atomic because parallel searches poll from every worker.
type trippingContext struct {
	context.Context
	polls atomic.Int64
	trip  int64
}

func (c *trippingContext) Err() error {
	if c.polls.Add(1) > c.trip {
		return context.Canceled
	}
	return nil
}

type searcher interface {
	Search(ctx context.Context, p Params) (*Result, *Stats, error)
}

func TestSearchAlreadyCancelled(t *testing.T) {
	g := randomGraph(t, 60, 400, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gctIdx := BuildGCTIndex(g)
	for name, s := range map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	} {
		res, stats, err := s.Search(ctx, Params{K: 3, R: 5})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil || stats != nil {
			t.Fatalf("%s: non-nil result after cancellation", name)
		}
	}
}

func TestSearchCancelledMidLoop(t *testing.T) {
	g := randomGraph(t, 500, 3000, 6)
	gctIdx := BuildGCTIndex(g)
	for name, s := range map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	} {
		// Let a handful of polls pass, then trip: the search must stop at
		// its next context check instead of finishing the scan.
		ctx := &trippingContext{Context: context.Background(), trip: 3}
		_, _, err := s.Search(ctx, Params{K: 3, R: 5, SkipContexts: name == "hybrid"})
		if name == "hybrid" {
			// Ranking reads poll once up front; with contexts skipped the
			// remaining work is too cheap to guarantee another poll.
			ctx2 := &trippingContext{Context: context.Background(), trip: 0}
			_, _, err2 := s.Search(ctx2, Params{K: 3, R: 5})
			if !errors.Is(err2, context.Canceled) {
				t.Fatalf("hybrid: err = %v, want context.Canceled", err2)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestSearchDeadlineExceeded(t *testing.T) {
	g := randomGraph(t, 40, 200, 7)
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, _, err := NewOnline(g).Search(ctx, Params{K: 3, R: 5})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSearchCandidateSubset(t *testing.T) {
	g := randomGraph(t, 50, 300, 8)
	subset := []int32{3, 7, 11, 19, 23, 42}
	scorer := NewScorer(g)
	gctIdx := BuildGCTIndex(g)
	for name, s := range map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	} {
		res, _, err := s.Search(context.Background(), Params{K: 3, R: len(subset), Candidates: subset})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.TopR) != len(subset) {
			t.Fatalf("%s: answer size %d, want %d", name, len(res.TopR), len(subset))
		}
		in := map[int32]bool{}
		for _, v := range subset {
			in[v] = true
		}
		for _, e := range res.TopR {
			if !in[e.V] {
				t.Fatalf("%s: answer vertex %d outside candidate set", name, e.V)
			}
			if want := scorer.Score(e.V, 3); e.Score != want {
				t.Fatalf("%s: score(%d) = %d, want %d", name, e.V, e.Score, want)
			}
		}
	}
	// Out-of-range candidates are rejected.
	_, _, err := NewOnline(g).Search(context.Background(), Params{K: 3, R: 1, Candidates: []int32{99}})
	if err == nil {
		t.Fatal("want error for out-of-range candidate")
	}
}

func TestSearchDuplicateCandidatesDeduped(t *testing.T) {
	g := randomGraph(t, 30, 150, 10)
	gctIdx := BuildGCTIndex(g)
	for name, s := range map[string]searcher{
		"online": NewOnline(g),
		"bound":  NewBound(g),
		"tsd":    NewTSD(BuildTSDIndex(g)),
		"gct":    NewGCT(gctIdx),
		"hybrid": BuildHybrid(gctIdx),
	} {
		res, _, err := s.Search(context.Background(),
			Params{K: 3, R: 3, Candidates: []int32{5, 5, 9, 9, 5, 13}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.TopR) != 3 {
			t.Fatalf("%s: answer size %d, want 3", name, len(res.TopR))
		}
		seen := map[int32]bool{}
		for _, e := range res.TopR {
			if seen[e.V] {
				t.Fatalf("%s: vertex %d duplicated in answer %v", name, e.V, res.TopR)
			}
			seen[e.V] = true
		}
	}
}

func TestSearchSkipOptions(t *testing.T) {
	g := randomGraph(t, 40, 200, 9)
	res, stats, err := NewOnline(g).Search(context.Background(),
		Params{K: 3, R: 5, SkipContexts: true, SkipStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats != nil {
		t.Fatalf("stats = %+v, want nil with SkipStats", stats)
	}
	if res.Contexts != nil {
		t.Fatalf("contexts present despite SkipContexts")
	}
	if len(res.TopR) != 5 {
		t.Fatalf("answer size %d, want 5", len(res.TopR))
	}
}
