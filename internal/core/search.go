package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
)

// Params parameterizes one top-r search. The zero value is invalid: K and
// R carry the paper's preconditions (k >= 2, r >= 1). The remaining
// fields tune what the engines compute beyond the ranked answer.
type Params struct {
	// K is the trussness threshold of the social contexts (>= 2).
	K int32
	// R is the answer size (>= 1; capped at the candidate count).
	R int
	// Candidates restricts the search to a vertex subset; nil means every
	// vertex of the graph. Out-of-range IDs are an error.
	Candidates []int32
	// SkipContexts omits social-context recovery from the Result. For the
	// Hybrid engine context recovery is the dominant query cost, so
	// callers that only need the ranking should set it.
	SkipContexts bool
	// SkipStats suppresses the Stats return (the search still runs
	// identically; the *Stats result is nil).
	SkipStats bool
	// Workers is the number of goroutines that score candidates (and
	// recover answer contexts): 0 or negative means GOMAXPROCS, 1 forces
	// the serial path. Candidates are sharded across the pool, each worker
	// scores its shard into a private top-r heap, and the heaps merge into
	// one answer; score ties always resolve to the smaller vertex ID, so
	// the answer is byte-identical for every worker count. The bound and
	// tsd engines process their pruned candidate order in chunks when
	// parallel, so their Stats.ScoreComputations may exceed the serial
	// count by up to one chunk (the answer is still identical).
	Workers int
	// Measure selects the structural diversity definition ("" or
	// MeasureTruss = the paper's truss-based model). The Online and Bound
	// engines serve every measure; the index engines (TSD, GCT, Hybrid)
	// serve only the truss measure and fail other values with an
	// *UnsupportedMeasureError.
	Measure Measure
}

// maxWorkers is a safety bound on the per-search pool size: beyond it
// extra goroutines only add scheduling overhead (and shrink the ranked
// scan's early-termination granularity), so larger requests are clamped.
// Untrusted inputs should be clamped harder at the boundary (the HTTP
// layer caps at GOMAXPROCS).
const maxWorkers = 1024

// workers resolves the Workers field to a concrete pool size.
func (p Params) workers() int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return min(w, maxWorkers)
}

// normalized validates p against an n-vertex graph and caps R at the
// candidate count, mirroring the paper's §2.3 preconditions.
func (p Params) normalized(n int) (Params, error) {
	if p.K < 2 {
		return p, fmt.Errorf("core: trussness threshold k = %d, must be >= 2", p.K)
	}
	return p.normalizedNoK(n)
}

// NormalizedNoK validates p for a parameter-free search: identical to
// the fixed-k engines' validation except that K is ignored — the
// parameter-free objective has no trussness threshold.
func (p Params) NormalizedNoK(n int) (Params, error) {
	return p.normalizedNoK(n)
}

// normalizedNoK is the K-independent part of parameter validation: R,
// measure, and candidate checks, candidate dedup, and the R cap.
func (p Params) normalizedNoK(n int) (Params, error) {
	if p.R < 1 {
		return p, fmt.Errorf("core: r = %d, must be >= 1", p.R)
	}
	if !p.Measure.Valid() {
		return p, fmt.Errorf("core: unknown measure %q (known: truss|component|core)", p.Measure)
	}
	limit := n
	if p.Candidates != nil {
		// Validate and deduplicate (first occurrence wins): a duplicate ID
		// would otherwise occupy several answer slots. The caller's slice
		// is only copied when a duplicate actually exists.
		seen := make(map[int32]bool, len(p.Candidates))
		deduped := p.Candidates
		copied := false
		for i, v := range p.Candidates {
			if v < 0 || int(v) >= n {
				return p, fmt.Errorf("core: candidate vertex %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				if !copied {
					deduped = append([]int32{}, p.Candidates[:i]...)
					copied = true
				}
				continue
			}
			seen[v] = true
			if copied {
				deduped = append(deduped, v)
			}
		}
		p.Candidates = deduped
		limit = len(p.Candidates)
	}
	if p.R > limit {
		p.R = limit
	}
	return p, nil
}

// pollEvery is how many cheap loop iterations pass between context
// checks. Expensive loops (one ego decomposition per iteration) check on
// every iteration instead.
const pollEvery = 256

// forEachCandidate iterates the candidate set (all n vertices when cands
// is nil), polling ctx between iterations. everyIter selects per-iteration
// polling for loops whose body is expensive; otherwise the context is
// checked every pollEvery iterations.
func forEachCandidate(ctx context.Context, n int, cands []int32, everyIter bool, f func(v int32)) error {
	poll := func(i int) error {
		if everyIter || i%pollEvery == 0 {
			return ctx.Err()
		}
		return nil
	}
	if cands == nil {
		for v := int32(0); int(v) < n; v++ {
			if err := poll(int(v)); err != nil {
				return err
			}
			f(v)
		}
		return nil
	}
	for i, v := range cands {
		if err := poll(i); err != nil {
			return err
		}
		f(v)
	}
	return nil
}

// padAnswer offers every unscored candidate to the heap at score 0 so the
// answer stays canonical when pruning skipped part of the candidate set:
// zero-score slots must go to the smallest unused vertex IDs (the order the
// online engine would produce), not to whichever zero-score vertices
// happened to be scored. Candidates are offered in ascending ID order and
// the pass stops as soon as no zero-score entry can still be displaced.
func padAnswer(heap *topRHeap, n int, cands []int32) {
	if heap.r == 0 || (heap.Full() && heap.MinScore() > 0) {
		return
	}
	in := make(map[int32]bool, len(heap.entries))
	for _, e := range heap.entries {
		in[e.V] = true
	}
	if cands != nil {
		// The caller's candidate order is a search order, not an ID order;
		// pad from a sorted copy so ties at score 0 resolve by vertex ID.
		cands = append([]int32(nil), cands...)
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	}
	// In ascending order, the first rejected zero-score offer ends the
	// pass: every later candidate has a larger ID and loses the same tie.
	offer := func(v int32) bool {
		if in[v] {
			return true
		}
		return heap.Offer(v, 0) || !heap.Full()
	}
	if cands == nil {
		for v := int32(0); int(v) < n; v++ {
			if !offer(v) {
				return
			}
		}
		return
	}
	for _, v := range cands {
		if !offer(v) {
			return
		}
	}
}

// finishResult assembles the Result, recovering the social contexts of
// every answer vertex unless p.SkipContexts. Recovery is typically one ego
// decomposition per vertex — the dominant per-answer cost — so it is
// sharded across p.workers() goroutines (contexts must be safe for
// concurrent calls, which every engine's recovery is) and the context is
// polled on every iteration.
func finishResult(ctx context.Context, answer []VertexScore, p Params, contexts func(v int32) [][]int32) (*Result, error) {
	res := &Result{TopR: answer}
	if p.SkipContexts {
		return res, nil
	}
	recovered := make([][][]int32, len(answer))
	err := forEachSharded(ctx, len(answer), p.workers(), true, func(i int) {
		c := contexts(answer[i].V)
		if len(c) == 0 {
			c = nil // normalize: every engine reports "no contexts" as nil
		}
		recovered[i] = c
	})
	if err != nil {
		return nil, err
	}
	res.Contexts = make(map[int32][][]int32, len(answer))
	for i, e := range answer {
		res.Contexts[e.V] = recovered[i]
	}
	return res, nil
}

// exportStats applies the stats opt-out.
func exportStats(stats *Stats, p Params) *Stats {
	if p.SkipStats {
		return nil
	}
	return stats
}
