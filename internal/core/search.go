package core

import (
	"context"
	"fmt"
)

// Params parameterizes one top-r search. The zero value is invalid: K and
// R carry the paper's preconditions (k >= 2, r >= 1). The remaining
// fields tune what the engines compute beyond the ranked answer.
type Params struct {
	// K is the trussness threshold of the social contexts (>= 2).
	K int32
	// R is the answer size (>= 1; capped at the candidate count).
	R int
	// Candidates restricts the search to a vertex subset; nil means every
	// vertex of the graph. Out-of-range IDs are an error.
	Candidates []int32
	// SkipContexts omits social-context recovery from the Result. For the
	// Hybrid engine context recovery is the dominant query cost, so
	// callers that only need the ranking should set it.
	SkipContexts bool
	// SkipStats suppresses the Stats return (the search still runs
	// identically; the *Stats result is nil).
	SkipStats bool
}

// normalized validates p against an n-vertex graph and caps R at the
// candidate count, mirroring the paper's §2.3 preconditions.
func (p Params) normalized(n int) (Params, error) {
	if p.K < 2 {
		return p, fmt.Errorf("core: trussness threshold k = %d, must be >= 2", p.K)
	}
	if p.R < 1 {
		return p, fmt.Errorf("core: r = %d, must be >= 1", p.R)
	}
	limit := n
	if p.Candidates != nil {
		// Validate and deduplicate (first occurrence wins): a duplicate ID
		// would otherwise occupy several answer slots. The caller's slice
		// is only copied when a duplicate actually exists.
		seen := make(map[int32]bool, len(p.Candidates))
		deduped := p.Candidates
		copied := false
		for i, v := range p.Candidates {
			if v < 0 || int(v) >= n {
				return p, fmt.Errorf("core: candidate vertex %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				if !copied {
					deduped = append([]int32{}, p.Candidates[:i]...)
					copied = true
				}
				continue
			}
			seen[v] = true
			if copied {
				deduped = append(deduped, v)
			}
		}
		p.Candidates = deduped
		limit = len(p.Candidates)
	}
	if p.R > limit {
		p.R = limit
	}
	return p, nil
}

// pollEvery is how many cheap loop iterations pass between context
// checks. Expensive loops (one ego decomposition per iteration) check on
// every iteration instead.
const pollEvery = 256

// forEachCandidate iterates the candidate set (all n vertices when cands
// is nil), polling ctx between iterations. everyIter selects per-iteration
// polling for loops whose body is expensive; otherwise the context is
// checked every pollEvery iterations.
func forEachCandidate(ctx context.Context, n int, cands []int32, everyIter bool, f func(v int32)) error {
	poll := func(i int) error {
		if everyIter || i%pollEvery == 0 {
			return ctx.Err()
		}
		return nil
	}
	if cands == nil {
		for v := int32(0); int(v) < n; v++ {
			if err := poll(int(v)); err != nil {
				return err
			}
			f(v)
		}
		return nil
	}
	for i, v := range cands {
		if err := poll(i); err != nil {
			return err
		}
		f(v)
	}
	return nil
}

// padAnswer fills the heap with zero-score candidates when fewer than r
// vertices survived pruning, keeping the answer size consistent with the
// online engine's.
func padAnswer(heap *topRHeap, n int, cands []int32) {
	if heap.Full() {
		return
	}
	in := make(map[int32]bool, len(heap.entries))
	for _, e := range heap.entries {
		in[e.V] = true
	}
	if cands == nil {
		for v := int32(0); int(v) < n && !heap.Full(); v++ {
			if !in[v] {
				heap.Offer(v, 0)
			}
		}
		return
	}
	for _, v := range cands {
		if heap.Full() {
			return
		}
		if !in[v] {
			heap.Offer(v, 0)
		}
	}
}

// finishResult assembles the Result, recovering the social contexts of
// every answer vertex unless p.SkipContexts; recovery is one ego
// decomposition per vertex, so the context is polled on every iteration.
func finishResult(ctx context.Context, answer []VertexScore, p Params, contexts func(v int32) [][]int32) (*Result, error) {
	res := &Result{TopR: answer}
	if p.SkipContexts {
		return res, nil
	}
	res.Contexts = make(map[int32][][]int32, len(answer))
	for _, e := range answer {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Contexts[e.V] = contexts(e.V)
	}
	return res, nil
}

// exportStats applies the stats opt-out.
func exportStats(stats *Stats, p Params) *Stats {
	if p.SkipStats {
		return nil
	}
	return stats
}
