// Package testutil gives randomized tests reproducible, overridable
// randomness: every test logs the seed it ran with, and the TRUSSDIV_SEED
// environment variable re-runs the whole suite under different
// randomness —
//
//	TRUSSDIV_SEED=12345 go test ./...
//
// Tests stay deterministic by default (each passes its own fixed default
// seed and TRUSSDIV_SEED is treated as 0), and a failure under an
// override is reproducible from the logged effective seed alone. The
// override is an *offset* added to every default, so property-test loops
// that derive a family of seeds keep their per-iteration diversity.
package testutil

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
)

// SeedEnv is the environment variable that shifts every test seed.
const SeedEnv = "TRUSSDIV_SEED"

// Seed returns the RNG seed a randomized test should use: def plus the
// TRUSSDIV_SEED offset (0 when unset). The effective seed is logged so a
// failure names the randomness that reproduces it.
func Seed(tb testing.TB, def int64) int64 {
	tb.Helper()
	raw := os.Getenv(SeedEnv)
	if raw == "" {
		tb.Logf("random seed %d (shift with %s)", def, SeedEnv)
		return def
	}
	offset, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		tb.Fatalf("%s=%q: %v", SeedEnv, raw, err)
	}
	seed := def + offset
	tb.Logf("random seed %d (default %d + %s=%d)", seed, def, SeedEnv, offset)
	return seed
}

// Rand returns a *rand.Rand seeded by Seed(tb, def).
func Rand(tb testing.TB, def int64) *rand.Rand {
	tb.Helper()
	return rand.New(rand.NewSource(Seed(tb, def)))
}
