package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trussdiv/internal/gen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(gen.Fig1Graph())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("healthz = %v", body)
	}
	body = getJSON(t, ts.URL+"/stats", http.StatusOK)
	if body["vertices"].(float64) != 17 || body["edges"].(float64) != 43 {
		t.Fatalf("stats = %v", body)
	}
	if body["gct_index_bytes"].(float64) <= 0 {
		t.Fatal("index size missing from stats")
	}
}

func TestTopRAllEngines(t *testing.T) {
	ts := newTestServer(t)
	for _, engine := range []string{"tsd", "gct", "hybrid"} {
		body := getJSON(t, ts.URL+"/topr?k=4&r=1&engine="+engine, http.StatusOK)
		results := body["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("%s: results = %v", engine, results)
		}
		top := results[0].(map[string]any)
		if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
			t.Fatalf("%s: top-1 = %v, want vertex 0 score 3", engine, top)
		}
		if _, ok := top["contexts"]; ok {
			t.Fatalf("%s: contexts should be omitted by default", engine)
		}
	}
}

func TestTopRWithContexts(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1&contexts=true", http.StatusOK)
	top := body["results"].([]any)[0].(map[string]any)
	contexts := top["contexts"].([]any)
	if len(contexts) != 3 {
		t.Fatalf("contexts = %v, want 3 social contexts", contexts)
	}
}

func TestScoreAndContextsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/score?v=0&k=4", http.StatusOK)
	if body["score"].(float64) != 3 {
		t.Fatalf("score = %v", body)
	}
	body = getJSON(t, ts.URL+"/contexts?v=0&k=3", http.StatusOK)
	if body["score"].(float64) != 2 {
		t.Fatalf("contexts score = %v", body)
	}
	if len(body["contexts"].([]any)) != 2 {
		t.Fatalf("contexts = %v", body["contexts"])
	}
}

func TestValidationErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, url := range []string{
		"/topr?r=1",              // missing k
		"/topr?k=4",              // missing r
		"/topr?k=4&r=1&engine=x", // unknown engine
		"/topr?k=1&r=1",          // k too small
		"/score?v=99&k=4",        // vertex out of range
		"/score?v=0&k=1",         // k too small
		"/contexts?v=abc&k=4",    // non-integer
	} {
		body := getJSON(t, ts.URL+url, http.StatusBadRequest)
		if body["error"] == "" {
			t.Fatalf("%s: missing error body", url)
		}
	}
}

func TestTopRRoutedWhenEngineOmitted(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1", http.StatusOK)
	if body["routed"] != true {
		t.Fatalf("routed = %v, want true", body["routed"])
	}
	engine, _ := body["engine"].(string)
	if engine == "" {
		t.Fatalf("routed response missing engine name: %v", body)
	}
	top := body["results"].([]any)[0].(map[string]any)
	if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
		t.Fatalf("routed top-1 = %v, want vertex 0 score 3", top)
	}

	// An explicit engine passes through the registry and is not "routed".
	body = getJSON(t, ts.URL+"/topr?k=4&r=1&engine=online", http.StatusOK)
	if body["engine"] != "online" || body["routed"] != false {
		t.Fatalf("pinned response = %v", body)
	}
}

func TestEnginesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/engines", http.StatusOK)
	engines := body["engines"].([]any)
	if len(engines) != 7 {
		t.Fatalf("engines = %v, want 7 entries", engines)
	}
}

func TestUnknownEngineListsRegistry(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1&engine=zap", http.StatusBadRequest)
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "zap") || !strings.Contains(msg, "gct") {
		t.Fatalf("error %q does not identify the unknown engine and the registry", msg)
	}
}

func TestCandidatesParameter(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=3&engine=online&candidates=1,2,3", http.StatusOK)
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v, want 3", results)
	}
	for _, raw := range results {
		v := raw.(map[string]any)["vertex"].(float64)
		if v < 1 || v > 3 {
			t.Fatalf("vertex %v outside candidate set", v)
		}
	}
	getJSON(t, ts.URL+"/topr?k=4&r=1&candidates=1,x", http.StatusBadRequest)
}

func TestRequestTimeoutReturns504(t *testing.T) {
	// A deadline that has already passed when the search starts: every
	// engine observes it at its first context poll.
	srv := New(gen.Fig1Graph(), WithTimeout(time.Nanosecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/topr?k=4&r=1", "/topr?k=4&r=1&engine=online", "/score?v=0&k=4"} {
		body := getJSON(t, ts.URL+path, http.StatusGatewayTimeout)
		if body["error"] == "" {
			t.Fatalf("%s: missing error body", path)
		}
	}
}
