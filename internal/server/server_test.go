package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"trussdiv/internal/gen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(gen.Fig1Graph())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("healthz = %v", body)
	}
	body = getJSON(t, ts.URL+"/stats", http.StatusOK)
	if body["vertices"].(float64) != 17 || body["edges"].(float64) != 43 {
		t.Fatalf("stats = %v", body)
	}
	if body["gct_index_bytes"].(float64) <= 0 {
		t.Fatal("index size missing from stats")
	}
}

func TestTopRAllEngines(t *testing.T) {
	ts := newTestServer(t)
	for _, engine := range []string{"tsd", "gct", "hybrid"} {
		body := getJSON(t, ts.URL+"/topr?k=4&r=1&engine="+engine, http.StatusOK)
		results := body["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("%s: results = %v", engine, results)
		}
		top := results[0].(map[string]any)
		if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
			t.Fatalf("%s: top-1 = %v, want vertex 0 score 3", engine, top)
		}
		if _, ok := top["contexts"]; ok {
			t.Fatalf("%s: contexts should be omitted by default", engine)
		}
	}
}

func TestTopRWithContexts(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1&contexts=true", http.StatusOK)
	top := body["results"].([]any)[0].(map[string]any)
	contexts := top["contexts"].([]any)
	if len(contexts) != 3 {
		t.Fatalf("contexts = %v, want 3 social contexts", contexts)
	}
}

func TestScoreAndContextsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/score?v=0&k=4", http.StatusOK)
	if body["score"].(float64) != 3 {
		t.Fatalf("score = %v", body)
	}
	body = getJSON(t, ts.URL+"/contexts?v=0&k=3", http.StatusOK)
	if body["score"].(float64) != 2 {
		t.Fatalf("contexts score = %v", body)
	}
	if len(body["contexts"].([]any)) != 2 {
		t.Fatalf("contexts = %v", body["contexts"])
	}
}

func TestValidationErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, url := range []string{
		"/topr?r=1",              // missing k
		"/topr?k=4",              // missing r
		"/topr?k=4&r=1&engine=x", // unknown engine
		"/topr?k=1&r=1",          // k too small
		"/score?v=99&k=4",        // vertex out of range
		"/score?v=0&k=1",         // k too small
		"/contexts?v=abc&k=4",    // non-integer
	} {
		body := getJSON(t, ts.URL+url, http.StatusBadRequest)
		if body["error"] == "" {
			t.Fatalf("%s: missing error body", url)
		}
	}
}
