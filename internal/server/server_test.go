package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trussdiv/internal/gen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(gen.Fig1Graph())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Fatalf("healthz = %v", body)
	}
	body = getJSON(t, ts.URL+"/stats", http.StatusOK)
	if body["vertices"].(float64) != 17 || body["edges"].(float64) != 43 {
		t.Fatalf("stats = %v", body)
	}
	if body["gct_index_bytes"].(float64) <= 0 {
		t.Fatal("index size missing from stats")
	}
}

func TestTopRAllEngines(t *testing.T) {
	ts := newTestServer(t)
	for _, engine := range []string{"tsd", "gct", "hybrid"} {
		body := getJSON(t, ts.URL+"/topr?k=4&r=1&engine="+engine, http.StatusOK)
		results := body["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("%s: results = %v", engine, results)
		}
		top := results[0].(map[string]any)
		if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
			t.Fatalf("%s: top-1 = %v, want vertex 0 score 3", engine, top)
		}
		if _, ok := top["contexts"]; ok {
			t.Fatalf("%s: contexts should be omitted by default", engine)
		}
	}
}

func TestTopRWithContexts(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1&contexts=true", http.StatusOK)
	top := body["results"].([]any)[0].(map[string]any)
	contexts := top["contexts"].([]any)
	if len(contexts) != 3 {
		t.Fatalf("contexts = %v, want 3 social contexts", contexts)
	}
}

func TestScoreAndContextsEndpoints(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/score?v=0&k=4", http.StatusOK)
	if body["score"].(float64) != 3 {
		t.Fatalf("score = %v", body)
	}
	body = getJSON(t, ts.URL+"/contexts?v=0&k=3", http.StatusOK)
	if body["score"].(float64) != 2 {
		t.Fatalf("contexts score = %v", body)
	}
	if len(body["contexts"].([]any)) != 2 {
		t.Fatalf("contexts = %v", body["contexts"])
	}
}

func TestValidationErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, url := range []string{
		"/topr?k=4",                    // missing r
		"/topr?k=4&r=1&engine=x",       // unknown engine
		"/topr?k=1&r=1",                // k too small (and not parameter-free)
		"/topr?r=1&engine=gct",         // fixed-k engine pinned without k
		"/topr?k=4&r=1&engine=pfree",   // parameter-free engine pinned with k
		"/score?v=99&k=4",              // vertex out of range
		"/score?v=0&k=1",               // k too small
		"/score?v=0&k=4&engine=online", // only pfree has point semantics
		"/score?v=0&k=4&engine=pfree",  // pfree forbids a threshold
		"/contexts?v=abc&k=4",          // non-integer
	} {
		body := getJSON(t, ts.URL+url, http.StatusBadRequest)
		if body["error"] == "" {
			t.Fatalf("%s: missing error body", url)
		}
	}
}

// TestParameterFreeEndpoints drives the k-less paths: /topr without k
// routes to pfree, engine=pfree pins it, and /score answers the
// parameter-free point query when k is absent.
func TestParameterFreeEndpoints(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?r=3", http.StatusOK)
	if body["engine"] != "pfree" || body["routed"] != true {
		t.Fatalf("k-less /topr: engine=%v routed=%v, want pfree/true", body["engine"], body["routed"])
	}
	pinned := getJSON(t, ts.URL+"/topr?r=3&engine=pfree", http.StatusOK)
	if fmt.Sprint(pinned["results"]) != fmt.Sprint(body["results"]) {
		t.Fatalf("pinned pfree diverges from routed k-less query:\n got %v\nwant %v",
			pinned["results"], body["results"])
	}
	// The point path: absent k (or engine=pfree) means parameter-free.
	score := getJSON(t, ts.URL+"/score?v=0", http.StatusOK)
	if score["score"].(float64) < 1 {
		t.Fatalf("parameter-free score of a clique member = %v, want >= 1", score["score"])
	}
	explicit := getJSON(t, ts.URL+"/score?v=0&engine=pfree", http.StatusOK)
	if explicit["score"] != score["score"] {
		t.Fatalf("engine=pfree score %v != k-less score %v", explicit["score"], score["score"])
	}
	cx := getJSON(t, ts.URL+"/contexts?v=0", http.StatusOK)
	if cx["contexts"] == nil {
		t.Fatalf("parameter-free contexts missing: %v", cx)
	}
}

func TestTopRRoutedWhenEngineOmitted(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1", http.StatusOK)
	if body["routed"] != true {
		t.Fatalf("routed = %v, want true", body["routed"])
	}
	engine, _ := body["engine"].(string)
	if engine == "" {
		t.Fatalf("routed response missing engine name: %v", body)
	}
	top := body["results"].([]any)[0].(map[string]any)
	if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
		t.Fatalf("routed top-1 = %v, want vertex 0 score 3", top)
	}

	// An explicit engine passes through the registry and is not "routed".
	body = getJSON(t, ts.URL+"/topr?k=4&r=1&engine=online", http.StatusOK)
	if body["engine"] != "online" || body["routed"] != false {
		t.Fatalf("pinned response = %v", body)
	}
}

func TestEnginesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/engines", http.StatusOK)
	engines := body["engines"].([]any)
	if len(engines) != 8 {
		t.Fatalf("engines = %v, want 8 entries", engines)
	}
}

func TestUnknownEngineListsRegistry(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=1&engine=zap", http.StatusBadRequest)
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "zap") || !strings.Contains(msg, "gct") {
		t.Fatalf("error %q does not identify the unknown engine and the registry", msg)
	}
}

func TestCandidatesParameter(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=4&r=3&engine=online&candidates=1,2,3", http.StatusOK)
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %v, want 3", results)
	}
	for _, raw := range results {
		v := raw.(map[string]any)["vertex"].(float64)
		if v < 1 || v > 3 {
			t.Fatalf("vertex %v outside candidate set", v)
		}
	}
	getJSON(t, ts.URL+"/topr?k=4&r=1&candidates=1,x", http.StatusBadRequest)
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return out
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	body := postJSON(t, ts.URL+"/batch", `{"queries":[
		{"k":4,"r":1},
		{"k":4,"r":1,"engine":"tsd","workers":2},
		{"k":3,"r":2,"engine":"online","contexts":true},
		{"k":4,"r":2,"candidates":[0,1,2]}
	]}`, http.StatusOK)
	results := body["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("results = %v, want 4 entries", results)
	}
	// Both the routed and the pinned k=4 r=1 queries find the paper's
	// example vertex.
	for i := 0; i < 2; i++ {
		item := results[i].(map[string]any)
		top := item["results"].([]any)[0].(map[string]any)
		if top["vertex"].(float64) != 0 || top["score"].(float64) != 3 {
			t.Fatalf("batch item %d top-1 = %v, want vertex 0 score 3", i, top)
		}
	}
	if eng := results[1].(map[string]any)["engine"]; eng != "tsd" {
		t.Fatalf("pinned batch item engine = %v, want tsd", eng)
	}
	// Cost-routed items report the engine the batch router chose.
	routedItem := results[0].(map[string]any)
	if routedItem["routed"] != true {
		t.Fatalf("unpinned batch item not marked routed: %v", routedItem)
	}
	if eng, _ := routedItem["engine"].(string); eng == "" {
		t.Fatalf("routed batch item missing resolved engine: %v", routedItem)
	}
	// Contexts come back only where requested.
	withCtx := results[2].(map[string]any)["results"].([]any)[0].(map[string]any)
	if _, ok := withCtx["contexts"]; !ok {
		t.Fatalf("batch item 2 missing contexts: %v", withCtx)
	}
	noCtx := results[0].(map[string]any)["results"].([]any)[0].(map[string]any)
	if _, ok := noCtx["contexts"]; ok {
		t.Fatalf("batch item 0 has contexts without asking: %v", noCtx)
	}
	// Candidate subsets restrict the answers.
	for _, raw := range results[3].(map[string]any)["results"].([]any) {
		if v := raw.(map[string]any)["vertex"].(float64); v < 0 || v > 2 {
			t.Fatalf("batch item 3 vertex %v outside candidates", v)
		}
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, body := range []string{
		``,                            // empty body
		`{}`,                          // no queries
		`{"queries":[]}`,              // empty queries
		`{"queries":[{"k":1,"r":1}]}`, // k too small
		`{"queries":[{"k":4,"r":1,"engine":"nope"}]}`, // unknown engine
		`{"queries":[{"k":4}]}`,                       // missing r
	} {
		resp := postJSON(t, ts.URL+"/batch", body, http.StatusBadRequest)
		if resp["error"] == "" {
			t.Fatalf("%q: missing error body", body)
		}
	}

	// A batch that exceeds the query cap is rejected outright.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchQueries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"k":4,"r":1}`)
	}
	sb.WriteString(`]}`)
	postJSON(t, ts.URL+"/batch", sb.String(), http.StatusBadRequest)
}

func TestBatchTimeoutReturns504(t *testing.T) {
	srv := New(gen.Fig1Graph(), WithTimeout(time.Nanosecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body := postJSON(t, ts.URL+"/batch", `{"queries":[{"k":4,"r":1,"engine":"online"}]}`, http.StatusGatewayTimeout)
	if body["error"] == "" {
		t.Fatal("missing error body")
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	// A deadline that has already passed when the search starts: every
	// engine observes it at its first context poll.
	srv := New(gen.Fig1Graph(), WithTimeout(time.Nanosecond))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, path := range []string{"/topr?k=4&r=1", "/topr?k=4&r=1&engine=online", "/score?v=0&k=4"} {
		body := getJSON(t, ts.URL+path, http.StatusGatewayTimeout)
		if body["error"] == "" {
			t.Fatalf("%s: missing error body", path)
		}
	}
}

// TestWarmStartFromIndexDir boots one server cold (building and
// persisting its indexes) and a second against the same index directory:
// the second must report a warm start in /stats and answer identically.
func TestWarmStartFromIndexDir(t *testing.T) {
	g := gen.Fig1Graph()
	dir := t.TempDir()

	cold := New(g, WithIndexDir(dir))
	coldTS := httptest.NewServer(cold.Handler())
	t.Cleanup(coldTS.Close)
	coldStats := getJSON(t, coldTS.URL+"/stats", http.StatusOK)
	if got := coldStats["index_source"]; got != "cold" {
		t.Fatalf("first boot index_source = %v, want cold", got)
	}

	warm := New(g, WithIndexDir(dir))
	warmTS := httptest.NewServer(warm.Handler())
	t.Cleanup(warmTS.Close)
	warmStats := getJSON(t, warmTS.URL+"/stats", http.StatusOK)
	if got := warmStats["index_source"]; got != "warm" {
		t.Fatalf("second boot index_source = %v, want warm (stats: %v)", got, warmStats)
	}
	if _, loadFailed := warmStats["index_load_error"]; loadFailed {
		t.Fatalf("warm boot rejected the store: %v", warmStats["index_load_error"])
	}

	coldBody := getJSON(t, coldTS.URL+"/topr?k=4&r=5&engine=gct&contexts=true", http.StatusOK)
	warmBody := getJSON(t, warmTS.URL+"/topr?k=4&r=5&engine=gct&contexts=true", http.StatusOK)
	coldRes, _ := json.Marshal(coldBody["results"])
	warmRes, _ := json.Marshal(warmBody["results"])
	if string(coldRes) != string(warmRes) {
		t.Fatalf("warm answers differ from cold:\n%s\n%s", coldRes, warmRes)
	}
}

// TestEdgesEndpoint drives the live-update write path: a POST /edges
// batch advances the epoch, /stats and /topr report it, the edited graph
// answers subsequent queries, and a rejected batch is a 409 that leaves
// the graph untouched.
func TestEdgesEndpoint(t *testing.T) {
	ts := newTestServer(t)

	stats := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if stats["epoch"].(float64) != 1 {
		t.Fatalf("initial epoch = %v, want 1", stats["epoch"])
	}
	if stats["read_only"].(bool) {
		t.Fatal("server unexpectedly read-only")
	}
	edges := stats["edges"].(float64)

	body := postJSON(t, ts.URL+"/edges", `{"insert":[{"u":0,"v":15}],"delete":[{"u":0,"v":1}]}`, http.StatusOK)
	if body["epoch"].(float64) != 2 {
		t.Fatalf("epoch after apply = %v, want 2", body["epoch"])
	}
	if body["inserted"].(float64) != 1 || body["deleted"].(float64) != 1 {
		t.Fatalf("apply response = %v", body)
	}
	if body["edges"].(float64) != edges {
		t.Fatalf("edge count = %v after +1/-1, want %v", body["edges"], edges)
	}
	if body["repaired"].(float64) <= 0 {
		t.Fatalf("repaired = %v, want > 0 (the server prepares its indexes)", body["repaired"])
	}

	stats = getJSON(t, ts.URL+"/stats", http.StatusOK)
	if stats["epoch"].(float64) != 2 {
		t.Fatalf("stats epoch = %v, want 2", stats["epoch"])
	}
	topr := getJSON(t, ts.URL+"/topr?k=4&r=3&engine=tsd", http.StatusOK)
	if topr["epoch"].(float64) != 2 {
		t.Fatalf("topr epoch = %v, want 2", topr["epoch"])
	}
	batch := postJSON(t, ts.URL+"/batch", `{"queries":[{"k":4,"r":3}]}`, http.StatusOK)
	if batch["results"].([]any)[0].(map[string]any)["epoch"].(float64) != 2 {
		t.Fatalf("batch epoch = %v, want 2", batch)
	}

	// Conflicting batch: inserting a present edge is a 409, epoch frozen.
	body = postJSON(t, ts.URL+"/edges", `{"insert":[{"u":0,"v":15}]}`, http.StatusConflict)
	if body["error"] == "" {
		t.Fatal("409 without an error body")
	}
	stats = getJSON(t, ts.URL+"/stats", http.StatusOK)
	if stats["epoch"].(float64) != 2 {
		t.Fatalf("epoch after rejected batch = %v, want 2", stats["epoch"])
	}

	// Malformed bodies are 400s.
	postJSON(t, ts.URL+"/edges", `{`, http.StatusBadRequest)
	postJSON(t, ts.URL+"/edges", `{}`, http.StatusBadRequest)
}

// TestEdgesReadOnly pins the WithReadOnly contract: 403, nothing applied.
func TestEdgesReadOnly(t *testing.T) {
	srv := New(gen.Fig1Graph(), WithReadOnly())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	body := postJSON(t, ts.URL+"/edges", `{"insert":[{"u":0,"v":15}]}`, http.StatusForbidden)
	if body["error"] == "" {
		t.Fatal("403 without an error body")
	}
	stats := getJSON(t, ts.URL+"/stats", http.StatusOK)
	if stats["epoch"].(float64) != 1 || !stats["read_only"].(bool) {
		t.Fatalf("read-only stats = %v", stats)
	}
}

func TestMeasuresEndpoint(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/measures", http.StatusOK)
	measures, ok := body["measures"].([]any)
	if !ok || len(measures) != 3 {
		t.Fatalf("measures = %v, want 3 entries", body["measures"])
	}
	first := measures[0].(map[string]any)
	if first["measure"] != "truss" || first["default"] != true {
		t.Fatalf("first measure = %v, want the truss default", first)
	}
	engines := first["engines"].([]any)
	if len(engines) != 6 {
		t.Fatalf("truss engines = %v, want the five paper engines plus pfree", engines)
	}
}

func TestTopRMeasureParameter(t *testing.T) {
	ts := newTestServer(t)
	// Routed queries under each measure answer 200 and echo the measure;
	// the engine label must come from the measure's row of the matrix.
	allowed := map[string]map[string]bool{
		"truss":     {"online": true, "bound": true, "tsd": true, "gct": true, "hybrid": true},
		"component": {"online": true, "bound": true, "comp": true},
		"core":      {"online": true, "bound": true, "kcore": true},
	}
	for measure, engines := range allowed {
		body := getJSON(t, ts.URL+"/topr?k=3&r=5&measure="+measure, http.StatusOK)
		if body["measure"] != measure {
			t.Fatalf("measure %s echoed as %v", measure, body["measure"])
		}
		if eng := body["engine"].(string); !engines[eng] {
			t.Fatalf("measure %s answered by %q, outside %v", measure, eng, engines)
		}
	}
	// Omitted measure means truss.
	body := getJSON(t, ts.URL+"/topr?k=3&r=5", http.StatusOK)
	if body["measure"] != "truss" {
		t.Fatalf("default measure = %v, want truss", body["measure"])
	}
	// Engine x measure mismatches and unknown names are caller errors.
	getJSON(t, ts.URL+"/topr?k=3&r=5&engine=tsd&measure=component", http.StatusBadRequest)
	getJSON(t, ts.URL+"/topr?k=3&r=5&measure=bogus", http.StatusBadRequest)
	// score/contexts accept the measure too.
	body = getJSON(t, ts.URL+"/score?v=0&k=3&measure=component", http.StatusOK)
	if body["measure"] != "component" {
		t.Fatalf("score measure = %v", body["measure"])
	}
	getJSON(t, ts.URL+"/contexts?v=0&k=3&measure=core", http.StatusOK)
	getJSON(t, ts.URL+"/score?v=0&k=3&measure=nope", http.StatusBadRequest)
}

func TestBatchMeasureField(t *testing.T) {
	ts := newTestServer(t)
	body := `{"queries":[
		{"k":3,"r":4},
		{"k":3,"r":4,"measure":"component"},
		{"k":3,"r":4,"measure":"core","engine":"kcore"}
	]}`
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Engine  string `json:"engine"`
			Measure string `json:"measure"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("batch returned %d results", len(out.Results))
	}
	wantMeasures := []string{"truss", "component", "core"}
	for i, res := range out.Results {
		if res.Measure != wantMeasures[i] {
			t.Fatalf("batch result %d measure = %q, want %q", i, res.Measure, wantMeasures[i])
		}
	}
	if out.Results[2].Engine != "kcore" {
		t.Fatalf("pinned batch query answered by %q", out.Results[2].Engine)
	}
	// A bad measure inside the batch fails the whole request.
	resp2, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"k":3,"r":4,"measure":"nah"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad measure batch status = %d, want 400", resp2.StatusCode)
	}
}

// TestPinnedNativeEngineEchoesItsMeasure: engine=comp with no measure
// parameter answers under the component model (the pre-measure calling
// convention); the response must label it component, not truss.
func TestPinnedNativeEngineEchoesItsMeasure(t *testing.T) {
	ts := newTestServer(t)
	body := getJSON(t, ts.URL+"/topr?k=3&r=4&engine=comp", http.StatusOK)
	if body["measure"] != "component" {
		t.Fatalf("engine=comp echoed measure %v, want component", body["measure"])
	}
	body = getJSON(t, ts.URL+"/topr?k=3&r=4&engine=kcore", http.StatusOK)
	if body["measure"] != "core" {
		t.Fatalf("engine=kcore echoed measure %v, want core", body["measure"])
	}
	// Truss engines keep the truss label.
	body = getJSON(t, ts.URL+"/topr?k=3&r=4&engine=tsd", http.StatusOK)
	if body["measure"] != "truss" {
		t.Fatalf("engine=tsd echoed measure %v, want truss", body["measure"])
	}
	// Same rule inside a batch.
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"k":3,"r":4,"engine":"comp"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Measure string `json:"measure"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Measure != "component" {
		t.Fatalf("batch engine=comp echoed %+v, want component", out.Results)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Generate traffic on two routes, including a caller error.
	getJSON(t, ts.URL+"/topr?k=3&r=5", http.StatusOK)
	getJSON(t, ts.URL+"/topr?k=3&r=5", http.StatusOK)
	getJSON(t, ts.URL+"/topr?k=3", http.StatusBadRequest) // missing r
	getJSON(t, ts.URL+"/healthz", http.StatusOK)

	body := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	if got := body["requests"].(float64); got < 4 {
		t.Fatalf("metrics requests = %v, want >= 4", got)
	}
	eps, ok := body["endpoints"].([]any)
	if !ok || len(eps) < 2 {
		t.Fatalf("metrics endpoints = %v, want >= 2 routes", body["endpoints"])
	}
	var topr map[string]any
	for _, e := range eps {
		ep := e.(map[string]any)
		if ep["route"] == "/topr" {
			topr = ep
		}
	}
	if topr == nil {
		t.Fatalf("no /topr route in metrics: %v", eps)
	}
	if topr["count"].(float64) != 3 || topr["client_errors"].(float64) != 1 {
		t.Fatalf("topr metrics = %v, want count 3, client_errors 1", topr)
	}
	if _, ok := topr["latency"].([]any); !ok {
		t.Fatalf("topr metrics missing latency histogram: %v", topr)
	}

	// /stats summarizes the same counters per route.
	stats := getJSON(t, ts.URL+"/stats", http.StatusOK)
	reqs, ok := stats["requests"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing requests summary: %v", stats["requests"])
	}
	if reqs["/topr"].(float64) != 3 {
		t.Fatalf("stats requests[/topr] = %v, want 3", reqs["/topr"])
	}
}

// TestPprofOptIn: the profiling endpoints exist only under WithPprof —
// a default server must not leak them.
func TestPprofOptIn(t *testing.T) {
	get := func(ts *httptest.Server) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/pprof/heap?debug=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	off := newTestServer(t)
	if code := get(off); code != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/heap status %d, want 404", code)
	}

	on := httptest.NewServer(New(gen.Fig1Graph(), WithPprof()).Handler())
	t.Cleanup(on.Close)
	if code := get(on); code != http.StatusOK {
		t.Fatalf("pprof on: /debug/pprof/heap status %d, want 200", code)
	}
}
