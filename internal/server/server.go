// Package server exposes truss-based structural diversity search as a
// JSON HTTP service: build the indexes once at startup, answer any
// (k, r) query cheaply afterwards — the serving shape both paper indexes
// were designed for.
//
// Endpoints:
//
//	GET /healthz                         liveness probe
//	GET /stats                           graph and index statistics
//	GET /topr?k=4&r=10&engine=gct        top-r search (engine: tsd|gct|hybrid)
//	GET /score?v=17&k=4                  one vertex's diversity score
//	GET /contexts?v=17&k=4               one vertex's social contexts
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

// Server answers structural diversity queries over one graph.
type Server struct {
	g      *graph.Graph
	tsd    *core.TSD
	gct    *core.GCT
	hybrid *core.Hybrid
	built  time.Duration
}

// New builds the indexes for g and returns a ready Server.
func New(g *graph.Graph) *Server {
	start := time.Now()
	gctIdx := core.BuildGCTIndex(g)
	s := &Server{
		g:      g,
		tsd:    core.NewTSD(core.BuildTSDIndex(g)),
		gct:    core.NewGCT(gctIdx),
		hybrid: core.BuildHybrid(gctIdx),
	}
	s.built = time.Since(start)
	return s
}

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /topr", s.handleTopR)
	mux.HandleFunc("GET /score", s.handleScore)
	mux.HandleFunc("GET /contexts", s.handleContexts)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	idx := s.gct.Index()
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices":        s.g.N(),
		"edges":           s.g.M(),
		"max_degree":      s.g.MaxDegree(),
		"gct_index_bytes": idx.SizeBytes(),
		"tsd_index_bytes": s.tsd.Index().SizeBytes(),
		"index_build":     s.built.String(),
	})
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

type topRResponse struct {
	Engine   string       `json:"engine"`
	K        int          `json:"k"`
	R        int          `json:"r"`
	TookUS   int64        `json:"took_us"`
	Searched int          `json:"search_space"`
	Results  []topRResult `json:"results"`
}

type topRResult struct {
	Vertex   int32     `json:"vertex"`
	Score    int       `json:"score"`
	Contexts [][]int32 `json:"contexts,omitempty"`
}

func (s *Server) handleTopR(w http.ResponseWriter, r *http.Request) {
	k, err := intParam(r, "k")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	rr, err := intParam(r, "r")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	engine := r.URL.Query().Get("engine")
	if engine == "" {
		engine = "gct"
	}
	var searcher interface {
		TopR(int32, int) (*core.Result, *core.Stats, error)
	}
	switch engine {
	case "tsd":
		searcher = s.tsd
	case "gct":
		searcher = s.gct
	case "hybrid":
		searcher = s.hybrid
	default:
		badRequest(w, "unknown engine %q (tsd|gct|hybrid)", engine)
		return
	}
	withContexts := r.URL.Query().Get("contexts") == "true"

	start := time.Now()
	res, stats, err := searcher.TopR(int32(k), rr)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	body := topRResponse{
		Engine:   engine,
		K:        k,
		R:        rr,
		TookUS:   time.Since(start).Microseconds(),
		Searched: stats.ScoreComputations,
	}
	for _, e := range res.TopR {
		out := topRResult{Vertex: e.V, Score: e.Score}
		if withContexts {
			out.Contexts = res.Contexts[e.V]
		}
		body.Results = append(body.Results, out)
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) vertexParam(r *http.Request) (int32, int32, error) {
	v, err := intParam(r, "v")
	if err != nil {
		return 0, 0, err
	}
	if v < 0 || v >= s.g.N() {
		return 0, 0, fmt.Errorf("vertex %d out of range [0,%d)", v, s.g.N())
	}
	k, err := intParam(r, "k")
	if err != nil {
		return 0, 0, err
	}
	if k < 2 {
		return 0, 0, fmt.Errorf("k = %d, must be >= 2", k)
	}
	return int32(v), int32(k), nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	v, k, err := s.vertexParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex": v,
		"k":      k,
		"score":  s.gct.Index().Score(v, k),
	})
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	v, k, err := s.vertexParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	contexts := s.gct.Index().Contexts(v, k)
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":   v,
		"k":        k,
		"score":    len(contexts),
		"contexts": contexts,
	})
}
