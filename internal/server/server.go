// Package server exposes truss-based structural diversity search as a
// JSON HTTP service on top of the trussdiv.DB facade: indexes are built
// once at startup, every request runs under its own (optionally
// deadline-bounded) context, and the engine query parameter resolves
// through the DB's engine registry — omitted, the DB cost-routes.
//
// Endpoints:
//
//	GET  /healthz                        liveness probe
//	GET  /stats                          graph, index, and epoch statistics
//	GET  /metrics                        per-endpoint request counts + latency histograms
//	GET  /engines                        registered engine names
//	GET  /measures                       measure axis: each measure with its engines
//	GET  /topr?k=4&r=10&engine=gct       top-r search (engine optional: cost-routed)
//	POST /batch                          many top-r searches in one DB.Batch pass
//	POST /edges                          apply one edge insert/delete batch (DB.Apply)
//	GET  /score?v=17&k=4                 one vertex's diversity score
//	GET  /contexts?v=17&k=4              one vertex's social contexts
//
// k is optional everywhere it appears: a /topr request without k is a
// parameter-free query and routes to the pfree engine (engine=pfree pins
// it), which picks each vertex's own discriminating level instead of
// taking a threshold; /score and /contexts without k (or with
// engine=pfree) answer the parameter-free point query the same way.
//
// The topr endpoint accepts workers=N to shard the search across a
// worker pool; /batch accepts the same per query. Answers are identical
// for every worker count.
//
// The diversity measure is a query axis: /topr, /score, and /contexts
// accept measure=truss|component|core (omitted = truss, the paper's
// model), and each /batch query may carry a "measure" field. The DB
// routes a measure query to the cheapest engine serving that measure;
// pairing an explicit engine with a measure outside its row of the
// routing matrix (GET /measures) fails with 400.
//
// The graph is mutable: POST /edges applies an atomic batch of edge
// insertions and deletions, advancing the DB to its next epoch-numbered
// snapshot with the search indexes repaired incrementally. Every query
// response reports the epoch it was answered at; each request runs
// against one consistent snapshot, so an update concurrent with a search
// never changes that search's answer. WithReadOnly disables the endpoint.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"trussdiv"
	"trussdiv/internal/graph"
	"trussdiv/internal/metrics"
)

// Server answers structural diversity queries over one evolving graph.
type Server struct {
	db        *trussdiv.DB
	timeout   time.Duration
	indexDir  string
	storeMode trussdiv.StoreMode
	readOnly  bool
	pprof     bool
	built     time.Duration
	metrics   *metrics.Registry
}

// Option configures New.
type Option func(*Server)

// WithTimeout bounds every request by d: a search still running when the
// deadline passes is cancelled through its context and the request fails
// with 504. Zero (the default) means no per-request deadline beyond the
// client disconnecting.
func WithTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithIndexDir connects the server's DB to a persistent index store in
// dir: startup loads prebuilt indexes from dir/indexes.tdx when a valid
// one exists (warm start), and persists freshly built ones otherwise, so
// the next deploy skips the build. A stale or damaged file is rebuilt
// around; /stats reports the rejection.
func WithIndexDir(dir string) Option {
	return func(s *Server) { s.indexDir = dir }
}

// WithStoreMode selects how the index store configured with WithIndexDir
// is read — trussdiv.StoreMmap (the default, zero-copy views over a
// shared mapping) or trussdiv.StoreDecode (classic read-and-decode).
func WithStoreMode(m trussdiv.StoreMode) Option {
	return func(s *Server) { s.storeMode = m }
}

// WithReadOnly disables the POST /edges endpoint: every update request
// fails with 403 and the graph stays exactly as loaded.
func WithReadOnly() Option {
	return func(s *Server) { s.readOnly = true }
}

// WithPprof registers the net/http/pprof handlers under /debug/pprof/
// on the same mux as the query endpoints, so a CPU or heap profile can
// be pulled from a serving replica without a second listener. Off by
// default: the profile endpoints expose internals and cost CPU while
// sampling, so they are strictly opt-in (tsdserve -pprof).
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// New prepares the indexes for g — loading them from the index store
// when one is configured and warm — and returns a ready Server.
func New(g *graph.Graph, opts ...Option) *Server {
	s := &Server{metrics: metrics.New()}
	for _, opt := range opts {
		opt(s)
	}
	var dbOpts []trussdiv.Option
	if s.indexDir != "" {
		dbOpts = append(dbOpts, trussdiv.WithIndexDir(s.indexDir),
			trussdiv.WithStoreMode(s.storeMode))
	}
	db, err := trussdiv.Open(g, dbOpts...)
	if err != nil {
		panic(err) // unreachable: g is non-nil and no conflicting options
	}
	start := time.Now()
	if err := db.Prepare(context.Background()); err != nil {
		panic(err)
	}
	s.db = db
	s.built = time.Since(start)
	s.metrics.Gauge("result_cache", func() map[string]uint64 {
		rc := db.ResultCacheStats()
		out := map[string]uint64{
			"hits":        rc.Hits,
			"misses":      rc.Misses,
			"invalidated": rc.Invalidated,
			"size":        uint64(rc.Size),
			"capacity":    uint64(rc.Capacity),
		}
		// Per-engine split, flattened for the uint64 metrics map: which
		// engines the cache actually serves (pfree keys differently from the
		// fixed-k engines, so its hit rate is worth watching on its own).
		for name, n := range rc.HitsByEngine {
			out["hits_engine_"+name] = n
		}
		for name, n := range rc.MissesByEngine {
			out["misses_engine_"+name] = n
		}
		return out
	})
	return s
}

// DB exposes the underlying facade (used by tests and embedding servers).
func (s *Server) DB() *trussdiv.DB { return s.db }

// Handler returns the HTTP routing for the service. Every endpoint except
// the metrics read itself is instrumented: request counts and latency
// histograms land on GET /metrics, with per-route totals summarized in
// /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	instr := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.metrics.Instrument(route, h))
	}
	instr("GET /healthz", "/healthz", s.handleHealth)
	instr("GET /stats", "/stats", s.handleStats)
	instr("GET /engines", "/engines", s.handleEngines)
	instr("GET /measures", "/measures", s.handleMeasures)
	instr("GET /topr", "/topr", s.handleTopR)
	instr("POST /batch", "/batch", s.handleBatch)
	instr("POST /edges", "/edges", s.handleEdges)
	instr("GET /score", "/score", s.handleScore)
	instr("GET /contexts", "/contexts", s.handleContexts)
	mux.HandleFunc("GET /metrics", s.metrics.Handler())
	if s.pprof {
		// Deliberately uninstrumented: a 30s CPU profile pull would
		// dominate every latency histogram it lands in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// requestContext derives the per-request search context.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// searchError maps search failures to HTTP statuses: deadline and
// cancellation become 504, everything else is a caller error.
func searchError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		return
	}
	badRequest(w, "%v", err)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// One snapshot for the whole report, so the counts, epoch, and index
	// readiness describe a single graph version even mid-update.
	snap := s.db.Snapshot()
	idx := snap.IndexStats()
	g := snap.Graph()
	body := map[string]any{
		"vertices":        g.N(),
		"edges":           g.M(),
		"max_degree":      g.MaxDegree(),
		"epoch":           snap.Epoch(),
		"read_only":       s.readOnly,
		"engines":         snap.Engines(),
		"measures":        snap.Measures(),
		"gct_index_bytes": idx.GCTBytes,
		"tsd_index_bytes": idx.TSDBytes,
		"index_build":     s.built.String(),
		// Per-route request totals; GET /metrics has the full histograms.
		"requests": s.metrics.Totals(),
	}
	if rc := s.db.ResultCacheStats(); rc.Enabled {
		cache := map[string]any{
			"hits":        rc.Hits,
			"misses":      rc.Misses,
			"invalidated": rc.Invalidated,
			"size":        rc.Size,
			"capacity":    rc.Capacity,
		}
		if len(rc.HitsByEngine) > 0 {
			cache["hits_by_engine"] = rc.HitsByEngine
		}
		if len(rc.MissesByEngine) > 0 {
			cache["misses_by_engine"] = rc.MissesByEngine
		}
		body["result_cache"] = cache
	}
	if st := snap.StoreStatus(); st.Dir != "" {
		source := "cold"
		if st.Warm && idx.LoadTime > 0 {
			source = "warm"
		}
		body["index_dir"] = st.Dir
		body["index_source"] = source
		if st.LoadErr != nil {
			body["index_load_error"] = st.LoadErr.Error()
		}
		if st.SaveErr != nil {
			// Persisting failed (read-only dir, full disk, ...): the server
			// works but every future deploy will boot cold — surface it.
			body["index_save_error"] = st.SaveErr.Error()
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleEngines(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"engines": s.db.Engines()})
}

// handleMeasures reports the measure axis: every diversity measure the
// DB serves with the engines that can answer it (the routing matrix).
func (s *Server) handleMeasures(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"measures": s.db.Measures()})
}

// measureParam parses the optional measure= query parameter ("" = truss).
func measureParam(r *http.Request) (trussdiv.Measure, error) {
	raw := r.URL.Query().Get("measure")
	if raw == "" {
		return "", nil
	}
	return trussdiv.ParseMeasure(raw)
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing parameter %q", name)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// optionalIntParam parses an integer query parameter, 0 when absent.
func optionalIntParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// clampWorkers bounds a client-supplied worker count: non-positive falls
// back to the engine default, anything above GOMAXPROCS is clamped — one
// request must not be able to spawn an unbounded goroutine pool (or blow
// up the ranked scan's chunk size, which scales with the worker count).
func clampWorkers(n int) int {
	if n < 1 {
		return 0
	}
	return min(n, runtime.GOMAXPROCS(0))
}

// candidatesParam parses the optional comma-separated vertex subset.
func candidatesParam(r *http.Request) ([]int32, error) {
	raw := r.URL.Query().Get("candidates")
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("parameter \"candidates\": %v", err)
		}
		out = append(out, int32(v))
	}
	return out, nil
}

type topRResponse struct {
	Engine   string           `json:"engine"`
	Routed   bool             `json:"routed"`
	Measure  trussdiv.Measure `json:"measure"`
	Epoch    uint64           `json:"epoch"`
	K        int              `json:"k"`
	R        int              `json:"r"`
	TookUS   int64            `json:"took_us"`
	Searched int              `json:"search_space"`
	Results  []topRResult     `json:"results"`
}

type topRResult struct {
	Vertex   int32     `json:"vertex"`
	Score    int       `json:"score"`
	Contexts [][]int32 `json:"contexts,omitempty"`
}

func (s *Server) handleTopR(w http.ResponseWriter, r *http.Request) {
	// k is optional: absent (or 0) builds a parameter-free query, which
	// routes to the pfree engine — the objective picks each vertex's level.
	k, err := optionalIntParam(r, "k")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	rr, err := intParam(r, "r")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	cands, err := candidatesParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	workers, err := optionalIntParam(r, "workers")
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	measure, err := measureParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	q := trussdiv.Query{
		K:               int32(k),
		R:               rr,
		IncludeContexts: r.URL.Query().Get("contexts") == "true",
		Candidates:      cands,
		Workers:         clampWorkers(workers),
		Measure:         measure,
	}

	// Resolve the engine through one snapshot's registry and run the query
	// against that same snapshot, so routing and execution agree on the
	// graph version even when an update lands mid-request. An absent
	// parameter means the snapshot routes by cost among the engines
	// serving the query's measure; a named engine is checked against the
	// measure (tsd cannot answer measure=component).
	snap := s.db.Snapshot()
	q.Engine = r.URL.Query().Get("engine")
	routed := q.Engine == ""
	eng, err := snap.ResolveEngine(q)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	// snap.TopR re-resolves to the same engine (routing is deterministic
	// on one snapshot) and consults the result cache — eng is kept only
	// to label the response.
	res, stats, err := snap.TopR(ctx, q)
	if err != nil {
		searchError(w, err)
		return
	}
	body := topRResponse{
		Engine: eng.Name(),
		Routed: routed,
		// A pinned comp/kcore engine with no measure param answers under
		// its native definition; echo that, not the truss default.
		Measure: trussdiv.EffectiveMeasure(q, eng),
		Epoch:   uint64(snap.Epoch()),
		K:       k,
		R:       rr,
		TookUS:  time.Since(start).Microseconds(),
	}
	if stats != nil {
		body.Searched = stats.ScoreComputations
	}
	for _, e := range res.TopR {
		out := topRResult{Vertex: e.V, Score: e.Score}
		if q.IncludeContexts {
			out.Contexts = res.Contexts[e.V]
		}
		body.Results = append(body.Results, out)
	}
	writeJSON(w, http.StatusOK, body)
}

// batchQuery is the JSON shape of one query in a POST /batch body.
type batchQuery struct {
	K          int32   `json:"k"`
	R          int     `json:"r"`
	Engine     string  `json:"engine,omitempty"`
	Measure    string  `json:"measure,omitempty"`
	Contexts   bool    `json:"contexts,omitempty"`
	Candidates []int32 `json:"candidates,omitempty"`
	Workers    int     `json:"workers,omitempty"`
}

type batchRequest struct {
	Queries []batchQuery `json:"queries"`
}

type batchResponse struct {
	TookUS  int64          `json:"took_us"`
	Results []topRResponse `json:"results"`
}

const (
	// maxBatchQueries bounds one /batch request; larger workloads should
	// split into several requests so timeouts and backpressure stay sane.
	maxBatchQueries = 1024
	// maxBatchBody bounds the request body (candidate lists dominate).
	maxBatchBody = 8 << 20
)

// handleBatch answers many top-r queries in one DB.Batch pass: shared
// indexes are built once and the queries fan out across the worker pool.
// Each query routes by cost unless it names an engine.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, "batch body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		badRequest(w, "batch body: no queries")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		badRequest(w, "batch body: %d queries exceeds the limit of %d",
			len(req.Queries), maxBatchQueries)
		return
	}
	qs := make([]trussdiv.Query, len(req.Queries))
	for i, bq := range req.Queries {
		var measure trussdiv.Measure
		if bq.Measure != "" {
			m, err := trussdiv.ParseMeasure(bq.Measure)
			if err != nil {
				badRequest(w, "batch query %d: %v", i, err)
				return
			}
			measure = m
		}
		qs[i] = trussdiv.Query{
			K:               bq.K,
			R:               bq.R,
			Engine:          bq.Engine,
			Measure:         measure,
			IncludeContexts: bq.Contexts,
			Candidates:      bq.Candidates,
			Workers:         clampWorkers(bq.Workers),
			SkipStats:       true, // Batch drops stats anyway
		}
	}
	// One snapshot labels and answers the whole batch: every result shares
	// one epoch, never split across graph versions by a concurrent update.
	snap := s.db.Snapshot()
	engines, err := snap.BatchEngines(qs)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	results, err := snap.Batch(ctx, qs)
	if err != nil {
		searchError(w, err)
		return
	}
	resp := batchResponse{TookUS: time.Since(start).Microseconds()}
	resp.Results = make([]topRResponse, len(results))
	for i, res := range results {
		measure := qs[i].Measure.Normalize()
		if eng, err := snap.Engine(engines[i]); err == nil {
			// As in /topr: a pinned native engine with no measure field
			// answered under its own definition.
			measure = trussdiv.EffectiveMeasure(qs[i], eng)
		}
		item := topRResponse{
			Engine:  engines[i],
			Routed:  req.Queries[i].Engine == "",
			Measure: measure,
			Epoch:   res.Epoch,
			K:       int(qs[i].K),
			R:       qs[i].R,
		}
		for _, e := range res.TopR {
			out := topRResult{Vertex: e.V, Score: e.Score}
			if qs[i].IncludeContexts {
				out.Contexts = res.Contexts[e.V]
			}
			item.Results = append(item.Results, out)
		}
		resp.Results[i] = item
	}
	writeJSON(w, http.StatusOK, resp)
}

// edgeJSON is one edge in a POST /edges body.
type edgeJSON struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
}

type edgesRequest struct {
	Insert []edgeJSON `json:"insert,omitempty"`
	Delete []edgeJSON `json:"delete,omitempty"`
}

type edgesResponse struct {
	Epoch    uint64 `json:"epoch"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	TookUS   int64  `json:"took_us"`
	// Repaired counts the ego-network structures the incremental index
	// maintenance rebuilt (0 when no repairable index was in memory).
	Repaired int `json:"repaired"`
}

const (
	// maxEdgeBatch bounds one /edges request; the affected ego-network set
	// grows with the batch, so huge batches should go through a rebuild.
	maxEdgeBatch = 4096
	// maxEdgesBody bounds the request body.
	maxEdgesBody = 4 << 20
)

// handleEdges applies one atomic edge-update batch through DB.Apply: the
// response reports the new epoch, in-flight searches keep their snapshot,
// and subsequent requests see the edited graph with its indexes repaired
// incrementally. A batch the DB rejects (errors.Is ErrBadUpdate: duplicate
// edits, inserting a present edge, deleting an absent one, out-of-range
// endpoints) fails with 409 and leaves the graph untouched.
func (s *Server) handleEdges(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeJSON(w, http.StatusForbidden, errorBody{Error: "server is read-only (started with -readonly)"})
		return
	}
	var req edgesRequest
	body := http.MaxBytesReader(w, r.Body, maxEdgesBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, "edges body: %v", err)
		return
	}
	if len(req.Insert)+len(req.Delete) == 0 {
		badRequest(w, "edges body: no edits")
		return
	}
	if len(req.Insert)+len(req.Delete) > maxEdgeBatch {
		badRequest(w, "edges body: %d edits exceeds the limit of %d",
			len(req.Insert)+len(req.Delete), maxEdgeBatch)
		return
	}
	u := trussdiv.Updates{
		Insert: make([]trussdiv.Edge, len(req.Insert)),
		Delete: make([]trussdiv.Edge, len(req.Delete)),
	}
	for i, e := range req.Insert {
		u.Insert[i] = trussdiv.Edge{U: e.U, V: e.V}
	}
	for i, e := range req.Delete {
		u.Delete[i] = trussdiv.Edge{U: e.U, V: e.V}
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	if _, err := s.db.Apply(ctx, u); err != nil {
		switch {
		case errors.Is(err, trussdiv.ErrBadUpdate):
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: err.Error()})
		default:
			badRequest(w, "%v", err)
		}
		return
	}
	// Every derived field comes from one snapshot, keyed by its epoch. A
	// concurrent update may land between Apply and this read; the response
	// then describes that newer snapshot consistently (epoch included)
	// rather than mixing this batch's epoch with newer state.
	snap := s.db.Snapshot()
	resp := edgesResponse{
		Epoch:    uint64(snap.Epoch()),
		Inserted: len(req.Insert),
		Deleted:  len(req.Delete),
		Vertices: snap.Graph().N(),
		Edges:    snap.Graph().M(),
		TookUS:   time.Since(start).Microseconds(),
	}
	if st := snap.ApplyStats(); st != nil {
		resp.Repaired = st.Affected
	}
	writeJSON(w, http.StatusOK, resp)
}

// vertexParam parses the point-query axes: the vertex (required), the
// threshold k, and whether the request is parameter-free. k is optional
// — absent or 0 means pfree semantics (the objective chooses the
// level), matching /topr; engine=pfree makes that explicit and rejects
// a non-zero k with 400, mirroring the library's BadQueryError.
func (s *Server) vertexParam(r *http.Request) (v, k int32, pf bool, err error) {
	vi, err := intParam(r, "v")
	if err != nil {
		return 0, 0, false, err
	}
	ki, err := optionalIntParam(r, "k")
	if err != nil {
		return 0, 0, false, err
	}
	switch eng := r.URL.Query().Get("engine"); eng {
	case "", "pfree":
		// pfree is the only engine with point semantics of its own; any
		// other name would silently answer with default-path semantics, so
		// reject it rather than mislabel the response.
	default:
		return 0, 0, false, fmt.Errorf("parameter \"engine\": point queries accept only engine=pfree, got %q", eng)
	}
	pf = ki == 0
	if r.URL.Query().Get("engine") == "pfree" && ki != 0 {
		return 0, 0, false, fmt.Errorf("engine \"pfree\" is parameter-free: leave k unset, got k=%d", ki)
	}
	return int32(vi), int32(ki), pf, nil
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	v, k, pf, err := s.vertexParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	measure, err := measureParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var score int
	if pf {
		score, err = s.db.ScorePFree(ctx, v, measure)
	} else {
		score, err = s.db.ScoreMeasure(ctx, v, k, measure)
	}
	if err != nil {
		searchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":  v,
		"k":       k,
		"measure": measure.Normalize(),
		"score":   score,
	})
}

func (s *Server) handleContexts(w http.ResponseWriter, r *http.Request) {
	v, k, pf, err := s.vertexParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	measure, err := measureParam(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	var contexts [][]int32
	if pf {
		contexts, err = s.db.ContextsPFree(ctx, v, measure)
	} else {
		contexts, err = s.db.ContextsMeasure(ctx, v, k, measure)
	}
	if err != nil {
		searchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertex":   v,
		"k":        k,
		"measure":  measure.Normalize(),
		"score":    len(contexts),
		"contexts": contexts,
	})
}
