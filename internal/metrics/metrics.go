// Package metrics is the lightweight serving-telemetry layer shared by
// the single-node HTTP server and the cluster tier: per-route request
// counters and latency histograms, cheap enough to sit on every request
// path, exposed as JSON (GET /metrics) rather than a wire format that
// would pull in a dependency. Buckets are fixed log-spaced microsecond
// bounds so histograms from different processes (coordinator, shards)
// line up when compared side by side.
package metrics

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// bucketBoundsUS are the histogram upper bounds, in microseconds. The
// final implicit bucket is +Inf. Log-spaced 100µs..5s: index lookups land
// in the first buckets, online scans and fan-outs in the middle, and
// anything in the tail is a timeout candidate.
var bucketBoundsUS = []int64{100, 250, 500, 1000, 2500, 5000, 10_000, 25_000,
	50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000}

// endpoint accumulates one route's counters. Guarded by the Registry
// mutex — the critical section is a few integer adds, so a single mutex
// beats per-endpoint atomics in complexity and is nowhere near contended
// at the request rates one process serves.
type endpoint struct {
	count   uint64
	errors  uint64 // responses with status >= 500 (handler or upstream failures)
	clients uint64 // responses with status 4xx (caller errors, kept out of errors)
	totalNS int64
	maxNS   int64
	buckets []uint64 // len(bucketBoundsUS)+1, last = overflow
}

// Registry collects request metrics for one process.
type Registry struct {
	mu        sync.Mutex
	endpoints map[string]*endpoint
	started   time.Time
	gauges    map[string]func() map[string]uint64
}

// New returns an empty Registry.
func New() *Registry {
	return &Registry{endpoints: make(map[string]*endpoint), started: time.Now()}
}

// Observe records one request against route: its response status and wall
// duration.
func (r *Registry) Observe(route string, status int, d time.Duration) {
	if r == nil {
		return
	}
	us := d.Microseconds()
	slot := sort.Search(len(bucketBoundsUS), func(i int) bool { return us <= bucketBoundsUS[i] })
	r.mu.Lock()
	ep := r.endpoints[route]
	if ep == nil {
		ep = &endpoint{buckets: make([]uint64, len(bucketBoundsUS)+1)}
		r.endpoints[route] = ep
	}
	ep.count++
	switch {
	case status >= 500:
		ep.errors++
	case status >= 400:
		ep.clients++
	}
	ep.totalNS += d.Nanoseconds()
	ep.maxNS = max(ep.maxNS, d.Nanoseconds())
	ep.buckets[slot]++
	r.mu.Unlock()
}

// Bucket is one histogram cell: requests that took at most LEUS
// microseconds (and more than the previous bound). LEUS 0 marks the
// overflow bucket. Empty cells are omitted from reports.
type Bucket struct {
	LEUS  int64  `json:"le_us"`
	Count uint64 `json:"count"`
}

// EndpointStats is one route's JSON report.
type EndpointStats struct {
	Route        string   `json:"route"`
	Count        uint64   `json:"count"`
	Errors       uint64   `json:"errors,omitempty"`
	ClientErrors uint64   `json:"client_errors,omitempty"`
	MeanUS       int64    `json:"mean_us"`
	MaxUS        int64    `json:"max_us"`
	Latency      []Bucket `json:"latency"`
}

// Report is the GET /metrics body.
type Report struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Requests      uint64          `json:"requests"`
	Endpoints     []EndpointStats `json:"endpoints"`
	// Gauges carries point-in-time counter groups registered with Gauge
	// (e.g. result-cache hit/miss/size), sampled at Snapshot time.
	Gauges map[string]map[string]uint64 `json:"gauges,omitempty"`
}

// Gauge registers a named group of point-in-time counters that every
// Snapshot samples — for state that is not a request observation, like
// cache occupancy. The callback must be safe for concurrent use;
// re-registering a name replaces the callback.
func (r *Registry) Gauge(name string, sample func() map[string]uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]func() map[string]uint64)
	}
	r.gauges[name] = sample
	r.mu.Unlock()
}

// Snapshot returns a consistent copy of every counter, routes sorted.
func (r *Registry) Snapshot() Report {
	r.mu.Lock()
	var gauges map[string]func() map[string]uint64
	if len(r.gauges) > 0 {
		gauges = make(map[string]func() map[string]uint64, len(r.gauges))
		for name, fn := range r.gauges {
			gauges[name] = fn
		}
	}
	defer r.mu.Unlock()
	rep := Report{UptimeSeconds: time.Since(r.started).Seconds()}
	if gauges != nil {
		rep.Gauges = make(map[string]map[string]uint64, len(gauges))
		for name, fn := range gauges {
			rep.Gauges[name] = fn()
		}
	}
	routes := make([]string, 0, len(r.endpoints))
	for route := range r.endpoints {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	for _, route := range routes {
		ep := r.endpoints[route]
		st := EndpointStats{
			Route:        route,
			Count:        ep.count,
			Errors:       ep.errors,
			ClientErrors: ep.clients,
			MaxUS:        ep.maxNS / 1e3,
		}
		if ep.count > 0 {
			st.MeanUS = ep.totalNS / int64(ep.count) / 1e3
		}
		for i, c := range ep.buckets {
			if c == 0 {
				continue
			}
			le := int64(0) // overflow bucket
			if i < len(bucketBoundsUS) {
				le = bucketBoundsUS[i]
			}
			st.Latency = append(st.Latency, Bucket{LEUS: le, Count: c})
		}
		rep.Requests += ep.count
		rep.Endpoints = append(rep.Endpoints, st)
	}
	return rep
}

// Totals reports per-route request counts — the /stats summary, which
// wants the traffic shape without the histograms.
func (r *Registry) Totals() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.endpoints))
	for route, ep := range r.endpoints {
		out[route] = ep.count
	}
	return out
}

// Handler serves the Report as JSON (mount it on GET /metrics).
func (r *Registry) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	}
}

// statusRecorder captures the status a handler writes (200 when the
// handler never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(status int) {
	sr.status = status
	sr.ResponseWriter.WriteHeader(status)
}

// Instrument wraps a handler so every request is observed under route.
func (r *Registry) Instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if r == nil {
		return h
	}
	return func(w http.ResponseWriter, req *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sr, req)
		r.Observe(route, sr.status, time.Since(start))
	}
}
