package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestObserveAndSnapshot(t *testing.T) {
	r := New()
	r.Observe("/topr", 200, 90*time.Microsecond)
	r.Observe("/topr", 200, 200*time.Microsecond)
	r.Observe("/topr", 504, 2*time.Second)
	r.Observe("/topr", 400, time.Millisecond)
	r.Observe("/edges", 200, 10*time.Millisecond)

	rep := r.Snapshot()
	if rep.Requests != 5 {
		t.Fatalf("requests = %d, want 5", rep.Requests)
	}
	if len(rep.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(rep.Endpoints))
	}
	// Sorted by route: /edges first.
	topr := rep.Endpoints[1]
	if topr.Route != "/topr" || topr.Count != 4 || topr.Errors != 1 || topr.ClientErrors != 1 {
		t.Fatalf("topr stats = %+v", topr)
	}
	if topr.MaxUS < 2_000_000 {
		t.Fatalf("max_us = %d, want >= 2s", topr.MaxUS)
	}
	var total uint64
	for _, b := range topr.Latency {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("histogram total = %d, want 4", total)
	}
	// 90µs lands in the first bucket (le 100).
	if topr.Latency[0].LEUS != 100 || topr.Latency[0].Count != 1 {
		t.Fatalf("first bucket = %+v", topr.Latency[0])
	}
}

func TestOverflowBucket(t *testing.T) {
	r := New()
	r.Observe("/slow", 200, time.Hour)
	ep := r.Snapshot().Endpoints[0]
	if len(ep.Latency) != 1 || ep.Latency[0].LEUS != 0 {
		t.Fatalf("want single overflow bucket (le_us 0), got %+v", ep.Latency)
	}
}

func TestInstrumentCapturesStatus(t *testing.T) {
	r := New()
	h := r.Instrument("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	if _, err := http.Get(ts.URL); err != nil {
		t.Fatal(err)
	}
	ep := r.Snapshot().Endpoints[0]
	if ep.Count != 1 || ep.Errors != 1 {
		t.Fatalf("stats = %+v, want count 1 errors 1", ep)
	}
}

func TestHandlerServesJSON(t *testing.T) {
	r := New()
	r.Observe("/x", 200, time.Millisecond)
	rec := httptest.NewRecorder()
	r.Handler()(rec, httptest.NewRequest("GET", "/metrics", nil))
	var rep Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("metrics body not JSON: %v", err)
	}
	if rep.Requests != 1 {
		t.Fatalf("requests = %d, want 1", rep.Requests)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Observe("/topr", 200, time.Microsecond*time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Requests; got != 1600 {
		t.Fatalf("requests = %d, want 1600", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Observe("/x", 200, time.Second) // must not panic
	h := r.Instrument("/x", func(w http.ResponseWriter, _ *http.Request) {})
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}
