// Package equitruss implements the Equi-Truss index of Akbas & Zhao,
// PVLDB 2017 — the second k-truss community index the paper's §8.2
// comparison discusses (it compresses the TCP-index the same way the
// paper's GCT-index compresses TSD, which is why the paper cites it as
// the inspiration for GCT).
//
// Edges are partitioned into truss-equivalence classes: e1 ≡ e2 iff
// τ(e1) = τ(e2) = k and the two edges are triangle-connected within the
// k-truss. Each class becomes a supernode; a superedge links a class to
// every higher-trussness class it touches through a shared triangle. A
// k-truss community is then a connected set of supernodes with trussness
// >= k — found on the (much smaller) supergraph without touching the
// original edges.
package equitruss

import (
	"sort"

	"trussdiv/internal/dsu"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// SuperNode is one truss-equivalence class.
type SuperNode struct {
	K     int32   // common trussness of the class edges
	Edges int32   // number of member edges
	Verts []int32 // sorted vertices spanned by the member edges
}

// Index is the Equi-Truss summary of a graph.
type Index struct {
	g         *graph.Graph
	tau       []int32
	edgeClass []int32     // edge ID -> supernode ID
	nodes     []SuperNode // supernode ID -> class
	adj       [][]int32   // supernode adjacency (superedges)
	byVertex  [][]int32   // vertex -> sorted supernode IDs it appears in
}

// Build constructs the index: one truss decomposition, then one
// triangle-connectivity BFS per equivalence class, processing trussness
// levels in descending order so that superedges always point at
// already-built higher classes.
func Build(g *graph.Graph) *Index {
	tau := truss.Decompose(g)
	m := g.M()
	idx := &Index{
		g:         g,
		tau:       tau,
		edgeClass: make([]int32, m),
	}
	for i := range idx.edgeClass {
		idx.edgeClass[i] = -1
	}

	// Edge IDs sorted by trussness descending.
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return tau[order[i]] > tau[order[j]] })

	stamp := make([]int32, m)
	stampID := int32(0)
	queue := make([]int32, 0, 256)
	superAdj := map[[2]int32]struct{}{}

	for _, start := range order {
		if idx.edgeClass[start] >= 0 || tau[start] < 3 {
			// Trussness-2 edges sit in no triangle: each is its own
			// community seed but has no triangle connectivity; give each
			// a singleton class below.
			continue
		}
		k := tau[start]
		classID := int32(len(idx.nodes))
		idx.edgeClass[start] = classID
		verts := map[int32]struct{}{}
		edgeCount := int32(0)

		stampID++
		stamp[start] = stampID
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if tau[x] == k {
				e := g.Edge(x)
				verts[e.U] = struct{}{}
				verts[e.V] = struct{}{}
				edgeCount++
				if idx.edgeClass[x] < 0 {
					idx.edgeClass[x] = classID
				}
			} else {
				// Higher class touched through a triangle: superedge, and
				// keep traversing — triangle-connectivity chains between
				// level-k edges may pass through higher-trussness regions.
				other := idx.edgeClass[x]
				if other >= 0 && other != classID {
					a, b := classID, other
					if a > b {
						a, b = b, a
					}
					superAdj[[2]int32{a, b}] = struct{}{}
				}
			}
			ed := g.Edge(x)
			an, ai := g.Arcs(ed.U)
			bn, bi := g.Arcs(ed.V)
			i, j := 0, 0
			for i < len(an) && j < len(bn) {
				switch {
				case an[i] < bn[j]:
					i++
				case an[i] > bn[j]:
					j++
				default:
					e1, e2 := ai[i], bi[j]
					if tau[e1] >= k && tau[e2] >= k {
						for _, y := range [2]int32{e1, e2} {
							if stamp[y] != stampID {
								stamp[y] = stampID
								queue = append(queue, y)
							}
						}
					}
					i++
					j++
				}
			}
		}
		vs := make([]int32, 0, len(verts))
		for v := range verts {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		idx.nodes = append(idx.nodes, SuperNode{K: k, Edges: edgeCount, Verts: vs})
	}

	// Singleton classes for triangle-free edges (trussness 2).
	for id := int32(0); int(id) < m; id++ {
		if idx.edgeClass[id] >= 0 {
			continue
		}
		e := g.Edge(id)
		idx.edgeClass[id] = int32(len(idx.nodes))
		idx.nodes = append(idx.nodes, SuperNode{
			K: tau[id], Edges: 1, Verts: []int32{e.U, e.V},
		})
	}
	// Connect trussness-2 classes to nothing (they share no triangle).

	idx.adj = make([][]int32, len(idx.nodes))
	for pair := range superAdj {
		idx.adj[pair[0]] = append(idx.adj[pair[0]], pair[1])
		idx.adj[pair[1]] = append(idx.adj[pair[1]], pair[0])
	}
	for _, nbrs := range idx.adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}

	// Vertex -> supernodes.
	idx.byVertex = make([][]int32, g.N())
	for sid, node := range idx.nodes {
		for _, v := range node.Verts {
			idx.byVertex[v] = append(idx.byVertex[v], int32(sid))
		}
	}
	return idx
}

// Graph returns the indexed graph.
func (idx *Index) Graph() *graph.Graph { return idx.g }

// NumSuperNodes returns the size of the summary.
func (idx *Index) NumSuperNodes() int { return len(idx.nodes) }

// SuperNodeOf returns the supernode ID of edge (u,v), or -1 when absent.
func (idx *Index) SuperNodeOf(u, v int32) int32 {
	id := idx.g.EdgeID(u, v)
	if id < 0 {
		return -1
	}
	return idx.edgeClass[id]
}

// Node returns a supernode by ID.
func (idx *Index) Node(id int32) SuperNode { return idx.nodes[id] }

// CommunitiesOf returns the k-truss communities containing vertex v as
// sorted vertex sets, computed entirely on the supergraph: BFS from v's
// qualifying supernodes across superedges between qualifying supernodes.
func (idx *Index) CommunitiesOf(v int32, k int32) [][]int32 {
	var out [][]int32
	visited := map[int32]bool{}
	for _, sid := range idx.byVertex[v] {
		if visited[sid] || idx.nodes[sid].K < k {
			continue
		}
		verts := map[int32]struct{}{}
		queue := []int32{sid}
		visited[sid] = true
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range idx.nodes[cur].Verts {
				verts[u] = struct{}{}
			}
			for _, nb := range idx.adj[cur] {
				if !visited[nb] && idx.nodes[nb].K >= k {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		vs := make([]int32, 0, len(verts))
		for u := range verts {
			vs = append(vs, u)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		out = append(out, vs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CommunityCount returns how many distinct k-truss communities contain v,
// without materializing the vertex sets.
func (idx *Index) CommunityCount(v int32, k int32) int {
	qualifying := make([]int32, 0, len(idx.byVertex[v]))
	for _, sid := range idx.byVertex[v] {
		if idx.nodes[sid].K >= k {
			qualifying = append(qualifying, sid)
		}
	}
	if len(qualifying) == 0 {
		return 0
	}
	// Union qualifying supernodes through qualifying superedge paths.
	// BFS per unvisited root over the supergraph.
	count := 0
	visited := map[int32]bool{}
	for _, root := range qualifying {
		if visited[root] {
			continue
		}
		count++
		queue := []int32{root}
		visited[root] = true
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nb := range idx.adj[cur] {
				if !visited[nb] && idx.nodes[nb].K >= k {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return count
}

// SizeBytes returns the in-memory footprint of the summary (Table-3-style
// accounting: supernode headers, vertex lists, superedges).
func (idx *Index) SizeBytes() int64 {
	var b int64
	b += int64(len(idx.edgeClass)) * 4
	for _, n := range idx.nodes {
		b += 8 + int64(len(n.Verts))*4
	}
	for _, a := range idx.adj {
		b += int64(len(a)) * 4
	}
	return b
}

// componentsSanity is used by tests: number of supernode-connected
// components at level k among ALL supernodes (not just v's).
func (idx *Index) componentsSanity(k int32) int {
	d := dsu.New(len(idx.nodes))
	member := make([]bool, len(idx.nodes))
	count := 0
	for sid, n := range idx.nodes {
		if n.K >= k {
			member[sid] = true
			count++
		}
	}
	for sid := range idx.nodes {
		if !member[sid] {
			continue
		}
		for _, nb := range idx.adj[sid] {
			if member[nb] && d.Union(int32(sid), nb) {
				count--
			}
		}
	}
	return count
}
