package equitruss

import (
	"reflect"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/tcp"
	"trussdiv/internal/testutil"
)

func TestCliqueSingleClass(t *testing.T) {
	g := gen.Clique(6)
	idx := Build(g)
	// All 15 edges have trussness 6 and are mutually triangle-connected:
	// one supernode.
	if idx.NumSuperNodes() != 1 {
		t.Fatalf("K6 supernodes = %d, want 1", idx.NumSuperNodes())
	}
	n := idx.Node(0)
	if n.K != 6 || n.Edges != 15 || len(n.Verts) != 6 {
		t.Fatalf("K6 class = %+v", n)
	}
	comms := idx.CommunitiesOf(0, 6)
	if len(comms) != 1 || len(comms[0]) != 6 {
		t.Fatalf("K6 communities = %v", comms)
	}
}

func TestDisjointCliques(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(5), gen.Clique(4), gen.Cycle(4))
	idx := Build(g)
	// K5 class (tau 5), K4 class (tau 4), and 4 singleton tau-2 classes.
	byK := map[int32]int{}
	for sid := 0; sid < idx.NumSuperNodes(); sid++ {
		byK[idx.Node(int32(sid)).K]++
	}
	if byK[5] != 1 || byK[4] != 1 || byK[2] != 4 {
		t.Fatalf("class histogram = %v", byK)
	}
	if got := idx.CommunityCount(0, 5); got != 1 {
		t.Fatalf("K5 member communities = %d, want 1", got)
	}
	if got := idx.CommunityCount(0, 6); got != 0 {
		t.Fatalf("communities above max = %d, want 0", got)
	}
}

func TestFig18Classes(t *testing.T) {
	g := gen.Fig18Graph()
	idx := Build(g)
	// All three K4s have trussness-4 edges; the central triangle's edges
	// have trussness 4 too (each K4 contains two of them... verify via
	// membership queries instead of hardcoding class counts).
	comms := idx.CommunitiesOf(gen.Fig18Q1, 4)
	if len(comms) == 0 {
		t.Fatal("q1 should be in at least one 4-truss community")
	}
	// Agreement with the TCP reconstruction for every vertex and k.
	tcpIdx := tcp.Build(g)
	for v := int32(0); int(v) < g.N(); v++ {
		for k := int32(3); k <= 5; k++ {
			want := tcpIdx.CommunitiesOf(v, k)
			got := idx.CommunitiesOf(v, k)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("v=%d k=%d: equitruss %v, tcp %v", v, k, got, want)
			}
		}
	}
}

// Equi-Truss and TCP must reconstruct identical k-truss communities on
// random graphs — they are two indexes of the same object.
func TestCommunitiesMatchTCP(t *testing.T) {
	rng := testutil.Rand(t, 17)
	for trial := 0; trial < 10; trial++ {
		n := 20 + trial*2
		b := graph.NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		eq := Build(g)
		tc := tcp.Build(g)
		for v := int32(0); int(v) < g.N(); v++ {
			for k := int32(3); k <= 5; k++ {
				want := tc.CommunitiesOf(v, k)
				got := eq.CommunitiesOf(v, k)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d v=%d k=%d:\n equitruss %v\n tcp       %v",
						trial, v, k, got, want)
				}
			}
		}
	}
}

func TestSuperNodeOfAndSize(t *testing.T) {
	g := gen.Clique(4)
	idx := Build(g)
	sid := idx.SuperNodeOf(0, 1)
	if sid != idx.SuperNodeOf(2, 3) {
		t.Fatal("K4 edges should share a class")
	}
	if idx.SuperNodeOf(0, 0) != -1 {
		t.Fatal("absent edge should map to -1")
	}
	if idx.SizeBytes() <= 0 {
		t.Fatal("SizeBytes should be positive")
	}
}

func TestSummaryCompression(t *testing.T) {
	// On a community-rich graph the supergraph must be much smaller than
	// the edge set — the entire point of the index.
	g := gen.CommunityOverlay(gen.OverlayConfig{
		N: 2000, Attach: 3, Cliques: 300, MinSize: 4, MaxSize: 10, Seed: 5,
	})
	idx := Build(g)
	// Exclude trussness-2 singletons from the comparison: they mirror
	// triangle-free edges one-to-one.
	nontrivial := 0
	for sid := 0; sid < idx.NumSuperNodes(); sid++ {
		if idx.Node(int32(sid)).K >= 3 {
			nontrivial++
		}
	}
	trussEdges := 0
	for _, tv := range idx.tau {
		if tv >= 3 {
			trussEdges++
		}
	}
	if nontrivial*4 > trussEdges {
		t.Fatalf("summary not compressing: %d classes for %d truss edges",
			nontrivial, trussEdges)
	}
	if idx.componentsSanity(3) <= 0 {
		t.Fatal("sanity components should be positive")
	}
}
