package truss

import (
	"trussdiv/internal/bitset"
	"trussdiv/internal/graph"
)

// BitmapDecomposer performs truss decomposition using per-vertex adjacency
// bitmaps (paper §6.2): edge support is the popcount of the AND of the two
// endpoint bitmaps, and removing an edge is two bit-clears, after which
// common-neighbor enumeration automatically skips deleted edges. Bitmaps
// are recycled across calls, which matters when decomposing millions of
// small ego-networks during GCT-index construction.
//
// A BitmapDecomposer is not safe for concurrent use.
type BitmapDecomposer struct {
	pool bitset.Pool
	bits []*bitset.Set
}

// Decompose returns tau[e] for every edge of g, like Decompose, but with
// the bitmap engine. Intended for small, dense graphs such as
// ego-networks, where popcount intersection beats merge intersection.
func (d *BitmapDecomposer) Decompose(g *graph.Graph) []int32 {
	n, m := g.N(), g.M()
	tau := make([]int32, m)
	if m == 0 {
		return tau
	}
	if cap(d.bits) < n {
		d.bits = make([]*bitset.Set, n)
	}
	d.bits = d.bits[:n]
	for v := 0; v < n; v++ {
		d.bits[v] = d.pool.Get(n)
	}
	defer func() {
		for v := 0; v < n; v++ {
			d.pool.Put(d.bits[v])
			d.bits[v] = nil
		}
	}()
	for _, e := range g.Edges() {
		d.bits[e.U].Set(int(e.V))
		d.bits[e.V].Set(int(e.U))
	}

	// Bitmap support computation: sup(e) = |Bits_u AND Bits_v|.
	sup := make([]int32, m)
	maxSup := int32(0)
	for id, e := range g.Edges() {
		s := int32(d.bits[e.U].AndCount(d.bits[e.V]))
		sup[id] = s
		if s > maxSup {
			maxSup = s
		}
	}

	binStart := make([]int32, maxSup+2)
	for _, s := range sup {
		binStart[s]++
	}
	start := int32(0)
	for s := int32(0); s <= maxSup; s++ {
		c := binStart[s]
		binStart[s] = start
		start += c
	}
	binStart[maxSup+1] = start
	sorted := make([]int32, m)
	pos := make([]int32, m)
	cursor := make([]int32, maxSup+1)
	copy(cursor, binStart[:maxSup+1])
	for e := int32(0); int(e) < m; e++ {
		s := sup[e]
		sorted[cursor[s]] = e
		pos[e] = cursor[s]
		cursor[s]++
	}
	dec := func(e, floor int32) {
		s := sup[e]
		if s <= floor {
			return
		}
		p, q := pos[e], binStart[s]
		if p != q {
			other := sorted[q]
			sorted[p], sorted[q] = other, e
			pos[e], pos[other] = q, p
		}
		binStart[s]++
		sup[e] = s - 1
	}

	k := int32(2)
	for i := 0; int(i) < m; i++ {
		e := sorted[i]
		if sup[e] > k-2 {
			k = sup[e] + 2
		}
		tau[e] = k
		ed := g.Edge(e)
		// Bitmap-based peeling: clear the edge's bits first so the AND
		// below enumerates only still-live triangles through (u,v).
		d.bits[ed.U].Clear(int(ed.V))
		d.bits[ed.V].Clear(int(ed.U))
		d.bits[ed.U].ForEachAnd(d.bits[ed.V], func(w int) bool {
			dec(g.EdgeID(ed.U, int32(w)), k-2)
			dec(g.EdgeID(ed.V, int32(w)), k-2)
			return true
		})
	}
	return tau
}
