package truss

import (
	"trussdiv/internal/graph"
)

// Components returns the vertex sets of the maximal connected k-trusses of
// g: the connected components of the subgraph formed by edges with
// trussness >= k (paper Def. 2 applies this to ego-networks). Each
// component is a sorted vertex list; components are sorted by their first
// vertex. Vertices incident to no qualifying edge appear in no component.
// All groups share one flat backing array; loops should reuse a Scratch
// via Scratch.Components instead.
func Components(g *graph.Graph, tau []int32, k int32) [][]int32 {
	return new(Scratch).Components(g, tau, k)
}

// CountComponents returns only the number of maximal connected k-trusses,
// without materializing the vertex sets. This is the quantity score(v)
// measures on ego-networks (paper Def. 3). Loops should reuse a Scratch
// via Scratch.CountComponents instead.
func CountComponents(g *graph.Graph, tau []int32, k int32) int {
	return new(Scratch).CountComponents(g, tau, k)
}
