package truss

import (
	"sort"

	"trussdiv/internal/dsu"
	"trussdiv/internal/graph"
)

// Components returns the vertex sets of the maximal connected k-trusses of
// g: the connected components of the subgraph formed by edges with
// trussness >= k (paper Def. 2 applies this to ego-networks). Each
// component is a sorted vertex list; components are sorted by their first
// vertex. Vertices incident to no qualifying edge appear in no component.
func Components(g *graph.Graph, tau []int32, k int32) [][]int32 {
	d := dsu.New(g.N())
	touched := make([]int32, 0, 64)
	seen := make(map[int32]struct{}, 64)
	for id, e := range g.Edges() {
		if tau[id] < k {
			continue
		}
		d.Union(e.U, e.V)
		for _, v := range [2]int32{e.U, e.V} {
			if _, dup := seen[v]; !dup {
				seen[v] = struct{}{}
				touched = append(touched, v)
			}
		}
	}
	groups := map[int32][]int32{}
	for _, v := range touched {
		r := d.Find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([][]int32, 0, len(groups))
	for _, members := range groups {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CountComponents returns only the number of maximal connected k-trusses,
// without materializing the vertex sets. This is the quantity score(v)
// measures on ego-networks (paper Def. 3).
func CountComponents(g *graph.Graph, tau []int32, k int32) int {
	// In the edge-induced subgraph every component is a connected set of
	// edges, so components = touchedVertices - effectiveMerges.
	seen := make([]bool, g.N())
	touched := 0
	d := dsu.New(g.N())
	merges := 0
	for id, e := range g.Edges() {
		if tau[id] < k {
			continue
		}
		if !seen[e.U] {
			seen[e.U] = true
			touched++
		}
		if !seen[e.V] {
			seen[e.V] = true
			touched++
		}
		if d.Union(e.U, e.V) {
			merges++
		}
	}
	return touched - merges
}
