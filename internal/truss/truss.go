// Package truss implements truss decomposition and k-truss extraction
// (paper §3.1, Algorithm 1), including the bitmap-based variant used for
// fast ego-network decomposition (paper §6.2).
//
// The k-truss of a graph G is the largest subgraph in which every edge is
// contained in at least k-2 triangles. The trussness τ(e) of an edge is the
// largest k such that a connected k-truss contains e. Decompose computes
// τ(e) for every edge by the standard peeling algorithm: repeatedly remove
// the edge of minimum support, updating the supports of the edges that
// shared a triangle with it. Bin sorting by support keeps the whole
// procedure at O(ρ·m) after triangle counting.
package truss

import (
	"trussdiv/internal/graph"
)

// Decompose returns tau[e] = trussness of edge e for every edge of g,
// indexed by edge ID. Trussness values start at 2 (an edge in no triangle
// has trussness 2).
func Decompose(g *graph.Graph) []int32 {
	return decompose(g, g.Supports())
}

// DecomposeWithSupports is Decompose for callers that already computed the
// edge supports. sup is left untouched: the peeling works on a private
// copy, so supports can be cached across calls (the incremental repair
// path keeps them alive between applies).
func DecomposeWithSupports(g *graph.Graph, sup []int32) []int32 {
	return decompose(g, append([]int32(nil), sup...))
}

// decompose peels edges in ascending support order using a bin sort,
// exactly Algorithm 1 of the paper.
func decompose(g *graph.Graph, sup []int32) []int32 {
	m := g.M()
	tau := make([]int32, m)
	if m == 0 {
		return tau
	}
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	// Bin sort edges by support: sorted is ascending by sup, pos[e] is the
	// index of e in sorted, binStart[s] is the first index of support s.
	binStart := make([]int32, maxSup+2)
	for _, s := range sup {
		binStart[s]++
	}
	start := int32(0)
	for s := int32(0); s <= maxSup; s++ {
		c := binStart[s]
		binStart[s] = start
		start += c
	}
	binStart[maxSup+1] = start
	sorted := make([]int32, m)
	pos := make([]int32, m)
	cursor := make([]int32, maxSup+1)
	copy(cursor, binStart[:maxSup+1])
	for e := int32(0); int(e) < m; e++ {
		s := sup[e]
		sorted[cursor[s]] = e
		pos[e] = cursor[s]
		cursor[s]++
	}

	removed := make([]bool, m)
	// dec moves edge e one support bin down, unless it is already at the
	// current peeling floor.
	dec := func(e, floor int32) {
		s := sup[e]
		if s <= floor {
			return
		}
		p, q := pos[e], binStart[s]
		if p != q {
			other := sorted[q]
			sorted[p], sorted[q] = other, e
			pos[e], pos[other] = q, p
		}
		binStart[s]++
		sup[e] = s - 1
	}

	k := int32(2)
	for i := 0; int(i) < m; i++ {
		e := sorted[i]
		if sup[e] > k-2 {
			k = sup[e] + 2
		}
		tau[e] = k
		removed[e] = true
		ed := g.Edge(e)
		forEachCommonArc(g, ed.U, ed.V, func(_ int32, euw, evw int32) {
			if removed[euw] || removed[evw] {
				return
			}
			dec(euw, k-2)
			dec(evw, k-2)
		})
	}
	return tau
}

// forEachCommonArc calls fn(w, id(u,w), id(v,w)) for every common neighbor
// w of u and v, merging the two sorted adjacency lists.
func forEachCommonArc(g *graph.Graph, u, v int32, fn func(w, euw, evw int32)) {
	an, ai := g.Arcs(u)
	bn, bi := g.Arcs(v)
	i, j := 0, 0
	for i < len(an) && j < len(bn) {
		switch {
		case an[i] < bn[j]:
			i++
		case an[i] > bn[j]:
			j++
		default:
			fn(an[i], ai[i], bi[j])
			i++
			j++
		}
	}
}

// MaxTrussness returns the largest trussness in tau, or 0 for an edgeless
// graph. The paper reports this as τ*_G in Table 1.
func MaxTrussness(tau []int32) int32 {
	best := int32(0)
	for _, t := range tau {
		if t > best {
			best = t
		}
	}
	return best
}

// VertexTrussness returns per-vertex trussness: the maximum trussness of
// any incident edge, 0 for isolated vertices. (Def. 4 extends trussness to
// vertices; the maximum over incident edges is equivalent because any
// k-truss containing v contains an incident edge of v.)
func VertexTrussness(g *graph.Graph, tau []int32) []int32 {
	vt := make([]int32, g.N())
	for id, e := range g.Edges() {
		t := tau[id]
		if t > vt[e.U] {
			vt[e.U] = t
		}
		if t > vt[e.V] {
			vt[e.V] = t
		}
	}
	return vt
}

// Distribution returns hist[t] = the number of edges with trussness t
// (paper Fig. 3's edge-trussness histogram).
func Distribution(tau []int32) []int64 {
	hist := make([]int64, MaxTrussness(tau)+1)
	for _, t := range tau {
		hist[t]++
	}
	return hist
}

// KTruss returns the k-truss of g as an edge-filtered subgraph (vertex IDs
// preserved; vertices outside the k-truss become isolated).
func KTruss(g *graph.Graph, tau []int32, k int32) *graph.Graph {
	return g.FilterEdges(func(id int32) bool { return tau[id] >= k })
}
