package truss

import (
	"trussdiv/internal/graph"
)

// Incremental repair of a truss decomposition after a batch of edge edits,
// following the locality bounds of arXiv:1806.05523 §5: a single insertion
// raises any τ(e) by at most one and a deletion lowers it by at most one,
// and — more importantly — the set of edges whose trussness can change at
// all is confined to a triangle-connected neighborhood of the edits:
//
//   - If τ(g) increased, the connected (τ_new(g))-truss certifying the new
//     value must contain an inserted edge (otherwise it existed before the
//     batch and certified the same value then), and every edge of that
//     truss had old trussness >= τ_new(g) − I for a batch of I insertions.
//     So g is triangle-connected to an inserted edge through edges whose
//     old level is >= level(g) + 1 − I.
//   - If τ(g) decreased, the old connected (τ_old(g))-truss certifying the
//     old value must contain a deleted edge (otherwise it survives intact
//     and still certifies), and every edge on the old-graph triangle path
//     had old level >= level(g).
//
// ("level" is the h-space value τ−2 throughout.) Repair discovers both
// regions with a bottleneck (maximin) traversal over triangle adjacency,
// seeds every region edge at the provable upper bound min(sup_new,
// h_old + I), pins everything outside the region at its old (provably
// unchanged) value, and runs the h-index descent of DecomposeParallel to
// the fixpoint. The descent can only terminate at the true decomposition:
// it stays >= τ−2 because the boundary equals the truth and the operator
// is monotone, and it cannot stay above it because any level set of a
// fixpoint is itself a truss certifying its level.

// RepairResult is a successfully repaired decomposition.
type RepairResult struct {
	Tau []int32 // trussness per new-graph edge ID, byte-equal to Decompose(newG)
	Sup []int32 // pristine supports of the new graph (input to the next Repair)
	// Region counts the edges whose trussness the repair re-derived (the
	// locality bound realized); Evals the h-index evaluations the descent
	// spent on them.
	Region int
	Evals  int
}

// repairInf is the level assigned to inserted edges during region
// discovery: a new edge constrains no triangle path, since it had no old
// trussness to certify.
const repairInf = int32(1) << 30

// Repair derives the truss decomposition of newG from the decomposition
// (oldTau) and supports (oldSup) of oldG, where newG is the result of
// applying the canonical (U < V, validated) insertion and deletion batches
// to oldG — exactly the contract of core.ApplyEdits. budget caps the
// repairable region size per step (and, scaled, the traversal and descent
// work); 0 picks a default proportional to the graph. When the region the
// edits can influence exceeds the budget, Repair returns (nil, false) and
// the caller falls back to a full (parallel) rebuild — the returned bool
// is the size-cutoff policy, not an error.
//
// Internally a batch is repaired in stages: all deletions in one step
// (the decrease region needs no batch slack — its certificate lives
// entirely in the old graph), then each insertion individually, chaining
// exact repairs through intermediate graphs. A single insertion raises
// any trussness by at most one, which keeps the admission threshold of
// the increase traversal tight; repairing an I-insertion batch in one
// step would widen it by I−1 levels and balloon the region past the
// budget for even small batches. The intermediate graphs cost O(I·m) to
// build — far below the decomposition work the repair avoids.
//
// On success the tau array is byte-identical to Decompose(newG): the
// repair is exact, not approximate.
func Repair(oldG, newG *graph.Graph, oldTau, oldSup []int32, ins, del []graph.Edge, budget int) (*RepairResult, bool) {
	mOld, mNew := oldG.M(), newG.M()
	if len(oldTau) != mOld || len(oldSup) != mOld || mNew != mOld+len(ins)-len(del) {
		return nil, false
	}
	if len(ins) == 0 && len(del) == 0 {
		return &RepairResult{
			Tau: append([]int32(nil), oldTau...),
			Sup: append([]int32(nil), oldSup...),
		}, true
	}
	total := &RepairResult{}
	g, tau, sup := oldG, oldTau, oldSup
	step := func(next *graph.Graph, ins, del []graph.Edge) bool {
		rr, ok := repairStep(g, next, tau, sup, ins, del, budget)
		if !ok {
			return false
		}
		total.Region += rr.Region
		total.Evals += rr.Evals
		g, tau, sup = next, rr.Tau, rr.Sup
		return true
	}
	if len(del) > 0 {
		next := newG
		if len(ins) > 0 {
			next = buildEdited(g, nil, del)
		}
		if !step(next, nil, del) {
			return nil, false
		}
	}
	for i := range ins {
		next := newG
		if i < len(ins)-1 {
			next = buildEdited(g, ins[i:i+1], nil)
		}
		if !step(next, ins[i:i+1], nil) {
			return nil, false
		}
	}
	total.Tau, total.Sup = tau, sup
	return total, true
}

// buildEdited constructs an intermediate edited graph with the same
// deterministic edge-ID assignment (ascending U, then V) the final newG
// has, so chained repair steps line up with the caller's edge IDs.
func buildEdited(g *graph.Graph, ins, del []graph.Edge) *graph.Graph {
	drop := make(map[graph.Edge]bool, len(del))
	for _, e := range del {
		drop[e] = true
	}
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range ins {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// repairStep repairs one stage of a batch: either the whole deletion set
// or a single insertion. See Repair for the region theorems; the batch
// slack below (I−1 for I insertions) is kept general but is always 0 in
// the staged calls Repair makes.
func repairStep(oldG, newG *graph.Graph, oldTau, oldSup []int32, ins, del []graph.Edge, budget int) (*RepairResult, bool) {
	mOld, mNew := oldG.M(), newG.M()
	if len(oldTau) != mOld || len(oldSup) != mOld || mNew != mOld+len(ins)-len(del) {
		return nil, false
	}
	if budget <= 0 {
		// Default cutoff: repair while the affected region stays under half
		// the graph. The descent costs O(region · triangles-per-edge), so
		// even at the cutoff the repair is well below a full decomposition;
		// past it, the parallel rebuild's better constants win. Deletions
		// need the headroom — a deleted edge's certificate region is the
		// whole triangle-connected truss community at each level below it,
		// which for low levels can span a sizable fraction of a sparse graph.
		budget = mNew/2 + 64
	}

	// Carry the old values onto the new edge IDs. Both graphs assign IDs
	// in sorted (U,V) order, so one merge pass lines them up; the old
	// edges skipped are the deletions, the new edges unmatched are the
	// insertions.
	sup := make([]int32, mNew)
	h := make([]int32, mNew)   // working values, seeded at the old h
	lvl := make([]int32, mNew) // old level for carried edges, inf for inserted
	oldEdges, newEdges := oldG.Edges(), newG.Edges()
	var inserted []int32
	j := 0
	for i, e := range newEdges {
		for j < mOld && (oldEdges[j].U < e.U || (oldEdges[j].U == e.U && oldEdges[j].V < e.V)) {
			j++ // a deleted edge
		}
		if j < mOld && oldEdges[j] == e {
			sup[i] = oldSup[j]
			h[i] = oldTau[j] - 2
			lvl[i] = h[i]
			j++
		} else {
			inserted = append(inserted, int32(i))
			lvl[i] = repairInf
		}
	}
	if len(inserted) != len(ins) {
		return nil, false // newG does not match (oldG, ins, del)
	}

	// Recompute supports exactly for every edge sharing a triangle with an
	// edit. Counting common neighbors afresh sidesteps the bookkeeping of
	// triangles formed by several edits at once.
	dirty := make([]bool, mNew)
	var dirtyList []int32
	markDirty := func(e int32) {
		if e >= 0 && !dirty[e] {
			dirty[e] = true
			dirtyList = append(dirtyList, e)
		}
	}
	for _, id := range inserted {
		markDirty(id)
		ed := newG.Edge(id)
		forEachCommonArc(newG, ed.U, ed.V, func(_, euw, evw int32) {
			markDirty(euw)
			markDirty(evw)
		})
	}
	for _, e := range del {
		forEachCommonArc(oldG, e.U, e.V, func(w, _, _ int32) {
			// Either side edge may itself be deleted (EdgeID then -1).
			markDirty(newG.EdgeID(e.U, w))
			markDirty(newG.EdgeID(e.V, w))
		})
	}
	for _, e := range dirtyList {
		ed := newG.Edge(e)
		n := int32(0)
		forEachCommonArc(newG, ed.U, ed.V, func(_, _, _ int32) { n++ })
		sup[e] = n
	}

	region := make([]bool, mNew)
	var regionList []int32
	addRegion := func(e int32) {
		if !region[e] {
			region[e] = true
			regionList = append(regionList, e)
		}
	}
	for _, e := range dirtyList {
		addRegion(e)
	}

	maxScans := 32*budget + 4096

	// Increase candidates: bottleneck traversal from the inserted edges in
	// the new graph. The batch slack I−1 widens the admission threshold —
	// I insertions can lift a trussness by up to I.
	if len(inserted) > 0 {
		slack := int32(len(ins)) - 1
		dist, ok := bottleneckFrom(newG, lvl, inserted, maxScans)
		if !ok {
			return nil, false
		}
		for e, d := range dist {
			if d >= 0 && d >= lvl[e]-slack {
				addRegion(int32(e))
			}
		}
	}

	// Decrease candidates: bottleneck traversal from the deleted edges in
	// the old graph, at old levels throughout (no slack — the certificate
	// lives entirely in the old graph).
	if len(del) > 0 {
		lvlOld := make([]int32, mOld)
		for i := range lvlOld {
			lvlOld[i] = oldTau[i] - 2
		}
		srcOld := make([]int32, 0, len(del))
		for _, e := range del {
			if id := oldG.EdgeID(e.U, e.V); id >= 0 {
				srcOld = append(srcOld, id)
			}
		}
		dist, ok := bottleneckFrom(oldG, lvlOld, srcOld, maxScans)
		if !ok {
			return nil, false
		}
		for e, d := range dist {
			if d >= 0 && d >= lvlOld[e] {
				ed := oldG.Edge(int32(e))
				if id := newG.EdgeID(ed.U, ed.V); id >= 0 {
					addRegion(id)
				}
			}
		}
	}

	if len(regionList) > budget {
		return nil, false
	}

	// Seed every region edge at its provable cap and descend. Edges
	// outside the region keep their old value — the region theorems above
	// guarantee it is still exact — and serve as the fixed boundary that
	// stops the descent from undershooting.
	ii := int32(len(ins))
	for _, e := range regionList {
		c := sup[e]
		if lvl[e] != repairInf && h[e]+ii < c {
			c = h[e] + ii
		}
		h[e] = c
	}
	evals, ok := hIndexDescent(newG, h, append([]int32(nil), regionList...), region, 1, 16*budget+1024)
	if !ok {
		return nil, false
	}
	tau := h
	for i := range tau {
		tau[i] += 2
	}
	return &RepairResult{Tau: tau, Sup: sup, Region: len(regionList), Evals: evals}, true
}

// bottleneckFrom computes, for every edge of g, the best bottleneck over
// triangle paths from any source edge: dist(f) = max over paths of the
// minimum level among all path edges except f itself (sources included,
// the target excluded — its own level never constrains its candidacy).
// Unreached edges stay at −1. Levels above the graph's maximum finite
// level are clamped to maxLvl+1, which preserves every >= comparison the
// caller makes. Processing buckets from high to low makes each relaxation
// final (the maximin analogue of Dijkstra); ok=false reports the scan
// budget blew before the traversal finished.
func bottleneckFrom(g *graph.Graph, lvl []int32, sources []int32, maxScans int) (dist []int32, ok bool) {
	m := g.M()
	top := int32(0)
	for _, l := range lvl {
		if l != repairInf && l > top {
			top = l
		}
	}
	top++
	clamp := func(l int32) int32 {
		if l > top {
			return top
		}
		return l
	}
	dist = make([]int32, m)
	for i := range dist {
		dist[i] = -1
	}
	buckets := make([][]int32, top+1)
	for _, s := range sources {
		if dist[s] < top {
			dist[s] = top
			buckets[top] = append(buckets[top], s)
		}
	}
	scans := 0
	for d := top; d >= 0; d-- {
		// Relaxations at level d may append to buckets[d]; the index loop
		// picks the growth up in the same sweep.
		for i := 0; i < len(buckets[d]); i++ {
			e := buckets[d][i]
			if dist[e] != d {
				continue // superseded entry (lazy deletion)
			}
			base := clamp(lvl[e])
			if d < base {
				base = d
			}
			ed := g.Edge(e)
			forEachCommonArc(g, ed.U, ed.V, func(_, euw, evw int32) {
				scans++
				if nb := min(base, clamp(lvl[evw])); nb > dist[euw] {
					dist[euw] = nb
					buckets[nb] = append(buckets[nb], euw)
				}
				if nb := min(base, clamp(lvl[euw])); nb > dist[evw] {
					dist[evw] = nb
					buckets[nb] = append(buckets[nb], evw)
				}
			})
			if scans > maxScans {
				return nil, false
			}
		}
	}
	return dist, true
}
