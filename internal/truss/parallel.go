package truss

import (
	"runtime"
	"sync"

	"trussdiv/internal/graph"
)

// Parallel truss decomposition by iterated triangle h-indexes ("Bounds and
// algorithms for graph trusses", arXiv:1806.05523). Instead of peeling
// edges one at a time in a global order (Decompose), every edge starts at
// its support and repeatedly replaces its value with the h-index of the
// multiset {min(h(e1), h(e2)) : triangle (e, e1, e2)}. The operator is
// monotone non-increasing from the support seed, every intermediate value
// stays an upper bound on τ(e)−2, and the greatest fixpoint reached is
// exactly τ(e)−2 — independent of update order, so the result is
// byte-identical to the serial peeling. Rounds are synchronous (Jacobi):
// workers read a stable value array and stage their updates in private
// change lists that are applied after a barrier, which keeps the whole
// pass race-free; only edges with a changed triangle neighborhood are
// re-evaluated in the next round.

// hBlock is the work-stealing granularity of a parallel evaluation round,
// matching the per-vertex builders' sharding (core.BuildTSDIndexParallel).
const hBlock = 256

// DecomposeParallel returns the same tau array as Decompose, computed by
// h-index iteration sharded across the given number of workers (0 or
// negative = GOMAXPROCS). With one worker it falls back to the serial
// bin-sort peeling, which does strictly less work per edge.
func DecomposeParallel(g *graph.Graph, workers int) []int32 {
	tau, _ := DecomposeFull(g, workers)
	return tau
}

// DecomposeFull is DecomposeParallel returning the edge supports as well,
// unconsumed — callers that maintain the decomposition incrementally
// (Repair) need the pristine supports of the graph the tau array
// describes.
func DecomposeFull(g *graph.Graph, workers int) (tau, sup []int32) {
	sup = g.Supports()
	if g.M() == 0 {
		return []int32{}, sup
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return decompose(g, append([]int32(nil), sup...)), sup
	}
	h := append([]int32(nil), sup...)
	hIndexDescent(g, h, nil, nil, workers, 0)
	for e := range h {
		h[e] += 2
	}
	return h, sup
}

// hEval computes the constrained triangle h-index of edge e: the largest
// t <= h[e] such that at least t triangles through e have both partner
// edges valued >= t. Capping at the current value loses nothing (the
// uncapped h-index can only confirm the cap) and bounds the counting
// buffer. cnt needs length >= h[e]+1.
func hEval(g *graph.Graph, h []int32, e int32, cnt []int32) int32 {
	c := h[e]
	if c <= 0 {
		return 0
	}
	for i := int32(1); i <= c; i++ {
		cnt[i] = 0
	}
	ed := g.Edge(e)
	forEachCommonArc(g, ed.U, ed.V, func(_, euw, evw int32) {
		m := h[euw]
		if h[evw] < m {
			m = h[evw]
		}
		if m > c {
			m = c
		}
		if m > 0 {
			cnt[m]++
		}
	})
	cum := int32(0)
	for t := c; t >= 1; t-- {
		cum += cnt[t]
		if cum >= t {
			return t
		}
	}
	return 0
}

// hChange stages one staged value drop of a synchronous round.
type hChange struct{ e, v int32 }

// hIndexDescent runs the h-index iteration to its fixpoint, mutating h in
// place. frontier is the initial set of edges to evaluate (nil = every
// edge); when region is non-nil, only edges marked in it are ever
// re-evaluated — the containment guarantee the incremental repair relies
// on. maxEvals > 0 aborts the descent (returning ok=false, h partially
// lowered) once that many evaluations have run; the evaluation count is
// returned either way.
func hIndexDescent(g *graph.Graph, h []int32, frontier []int32, region []bool, workers, maxEvals int) (evals int, ok bool) {
	m := g.M()
	if frontier == nil {
		frontier = make([]int32, m)
		for i := range frontier {
			frontier[i] = int32(i)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxH := int32(0)
	for _, v := range h {
		if v > maxH {
			maxH = v
		}
	}
	scratch := make([][]int32, workers)
	for w := range scratch {
		scratch[w] = make([]int32, maxH+1)
	}
	queued := make([]int32, m) // generation stamps dedupe the next frontier
	round := int32(0)
	next := make([]int32, 0, len(frontier))
	for len(frontier) > 0 {
		round++
		evals += len(frontier)
		if maxEvals > 0 && evals > maxEvals {
			return evals, false
		}
		var changes []hChange
		if workers == 1 || len(frontier) < 2*hBlock {
			cnt := scratch[0]
			for _, e := range frontier {
				if nv := hEval(g, h, e, cnt); nv < h[e] {
					changes = append(changes, hChange{e, nv})
				}
			}
		} else {
			// Jacobi round: workers only read h and write private lists,
			// so concurrent evaluation needs no synchronization beyond the
			// end-of-round barrier.
			staged := make([][]hChange, workers)
			blocks := make(chan int, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cnt := scratch[w]
					var out []hChange
					for start := range blocks {
						end := min(start+hBlock, len(frontier))
						for _, e := range frontier[start:end] {
							if nv := hEval(g, h, e, cnt); nv < h[e] {
								out = append(out, hChange{e, nv})
							}
						}
					}
					staged[w] = out
				}(w)
			}
			for start := 0; start < len(frontier); start += hBlock {
				blocks <- start
			}
			close(blocks)
			wg.Wait()
			for _, out := range staged {
				changes = append(changes, out...)
			}
		}
		next = next[:0]
		for _, ch := range changes {
			h[ch.e] = ch.v
		}
		// An edge f needs re-evaluation only when some triangle partner
		// dropped below f's current value: pairs whose min stays >= h[f]
		// contribute to f's capped counts exactly as before.
		for _, ch := range changes {
			ed := g.Edge(ch.e)
			forEachCommonArc(g, ed.U, ed.V, func(_, euw, evw int32) {
				if h[euw] > ch.v && queued[euw] != round && (region == nil || region[euw]) {
					queued[euw] = round
					next = append(next, euw)
				}
				if h[evw] > ch.v && queued[evw] != round && (region == nil || region[evw]) {
					queued[evw] = round
					next = append(next, evw)
				}
			})
		}
		frontier, next = next, frontier
	}
	return evals, true
}
