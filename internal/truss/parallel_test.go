package truss

import (
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

func TestDecomposeParallelMatchesSerial(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Clique(7),
		gen.Cycle(9),
		gen.Star(8),
	}
	for seed := int64(0); seed < 15; seed++ {
		graphs = append(graphs, randomGraph(t, 18+int(seed)*2, 50+6*int(seed), seed+400))
	}
	for gi, g := range graphs {
		want := Decompose(g)
		for _, workers := range []int{0, 1, 2, 3, 4, 8} {
			got := DecomposeParallel(g, workers)
			if len(got) != len(want) {
				t.Fatalf("graph %d workers %d: %d taus, want %d", gi, workers, len(got), len(want))
			}
			for id := range want {
				if got[id] != want[id] {
					e := g.Edge(int32(id))
					t.Fatalf("graph %d workers %d: edge (%d,%d) tau = %d, serial = %d",
						gi, workers, e.U, e.V, got[id], want[id])
				}
			}
		}
	}
}

func TestDecomposeFullReturnsPristineSupports(t *testing.T) {
	for _, workers := range []int{1, 4} {
		g := randomGraph(t, 30, 120, 7)
		tau, sup := DecomposeFull(g, workers)
		wantTau := Decompose(g)
		wantSup := g.Supports()
		for id := range wantTau {
			if tau[id] != wantTau[id] {
				t.Fatalf("workers %d: edge %d tau = %d, want %d", workers, id, tau[id], wantTau[id])
			}
			if sup[id] != wantSup[id] {
				t.Fatalf("workers %d: edge %d sup = %d, want %d (supports must survive)",
					workers, id, sup[id], wantSup[id])
			}
		}
	}
}

func TestDecomposeFullEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	tau, sup := DecomposeFull(g, 4)
	if len(tau) != 0 || len(sup) != 0 {
		t.Fatalf("edgeless graph: got %d taus, %d sups", len(tau), len(sup))
	}
}

// Regression for the "sup is consumed" bug: DecomposeWithSupports must not
// scribble over the caller's support slice — the incremental repair path
// caches supports across applies.
func TestDecomposeWithSupportsLeavesInputIntact(t *testing.T) {
	g := randomGraph(t, 25, 100, 11)
	sup := g.Supports()
	before := append([]int32(nil), sup...)
	tau := DecomposeWithSupports(g, sup)
	for id := range sup {
		if sup[id] != before[id] {
			t.Fatalf("edge %d: sup mutated from %d to %d by DecomposeWithSupports",
				id, before[id], sup[id])
		}
	}
	want := Decompose(g)
	for id := range want {
		if tau[id] != want[id] {
			t.Fatalf("edge %d: tau = %d, want %d", id, tau[id], want[id])
		}
	}
}
