package truss

import (
	"testing"
	"testing/quick"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// naiveDecompose is an independent reference implementation: repeatedly
// recompute supports from scratch and strip minimum-support edges,
// following Definition 4 literally. O(m^2) but trustworthy.
func naiveDecompose(g *graph.Graph) []int32 {
	tau := make([]int32, g.M())
	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = true
	}
	remaining := g.M()
	k := int32(2)
	for remaining > 0 {
		for {
			// Recompute supports of the surviving subgraph.
			sub := g.FilterEdges(func(id int32) bool { return alive[id] })
			// Map sub's edge IDs back to g's IDs via endpoints.
			peeled := false
			subSup := sub.Supports()
			for id := 0; id < sub.M(); id++ {
				if subSup[id] <= k-2 {
					e := sub.Edge(int32(id))
					gid := g.EdgeID(e.U, e.V)
					if alive[gid] {
						alive[gid] = false
						tau[gid] = k
						remaining--
						peeled = true
					}
				}
			}
			if !peeled {
				break
			}
		}
		k++
	}
	return tau
}

func randomGraph(tb testing.TB, n, extra int, seed int64) *graph.Graph {
	rng := testutil.Rand(tb, seed)
	b := graph.NewBuilder(n)
	for i := 0; i < extra; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestDecomposeClique(t *testing.T) {
	for k := 3; k <= 8; k++ {
		g := gen.Clique(k)
		tau := Decompose(g)
		for id, tv := range tau {
			if tv != int32(k) {
				t.Fatalf("K%d edge %d trussness = %d, want %d", k, id, tv, k)
			}
		}
	}
}

func TestDecomposeTriangleFree(t *testing.T) {
	for _, g := range []*graph.Graph{gen.Cycle(8), gen.Path(6), gen.Star(9)} {
		for id, tv := range Decompose(g) {
			if tv != 2 {
				t.Fatalf("triangle-free edge %d trussness = %d, want 2", id, tv)
			}
		}
	}
}

func TestDecomposeOctahedron(t *testing.T) {
	// Octahedron = K_{2,2,2}: every edge in exactly 2 triangles => 4-truss.
	b := graph.NewBuilder(6)
	for u := int32(0); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if v-u == 3 {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	for id, tv := range Decompose(g) {
		if tv != 4 {
			t.Fatalf("octahedron edge %d trussness = %d, want 4", id, tv)
		}
	}
}

func TestDecomposeMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(t, 14+int(seed), 40+3*int(seed), seed)
		want := naiveDecompose(g)
		got := Decompose(g)
		for id := range want {
			if got[id] != want[id] {
				e := g.Edge(int32(id))
				t.Fatalf("seed %d: edge (%d,%d) trussness = %d, naive = %d",
					seed, e.U, e.V, got[id], want[id])
			}
		}
	}
}

func TestBitmapDecomposeMatchesPeeling(t *testing.T) {
	var bd BitmapDecomposer
	for seed := int64(0); seed < 25; seed++ {
		g := randomGraph(t, 20+int(seed)*2, 60+5*int(seed), seed+100)
		want := Decompose(g)
		got := bd.Decompose(g) // reuse the same decomposer across graphs
		for id := range want {
			if got[id] != want[id] {
				e := g.Edge(int32(id))
				t.Fatalf("seed %d: edge (%d,%d) bitmap = %d, peeling = %d",
					seed, e.U, e.V, got[id], want[id])
			}
		}
	}
}

// Property: in the k-truss (edges with tau >= k), every edge has at least
// k-2 triangles whose other two edges are also in the k-truss. This is the
// defining invariant of the decomposition.
func TestKTrussSupportInvariant(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 24, 90, seed)
		tau := Decompose(g)
		maxT := MaxTrussness(tau)
		for k := int32(3); k <= maxT; k++ {
			sub := KTruss(g, tau, k)
			for id, s := range sub.Supports() {
				_ = id
				if s < k-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-trusses are nested — the (k+1)-truss is a subgraph of the
// k-truss, i.e. trussness thresholds shrink edge sets monotonically.
func TestKTrussNesting(t *testing.T) {
	g := randomGraph(t, 30, 140, 7)
	tau := Decompose(g)
	prev := g.M() + 1
	for k := int32(2); k <= MaxTrussness(tau)+1; k++ {
		count := 0
		for _, tv := range tau {
			if tv >= k {
				count++
			}
		}
		if count > prev {
			t.Fatalf("k=%d edge count %d grew beyond %d", k, count, prev)
		}
		prev = count
	}
}

func TestFig1Supports(t *testing.T) {
	g := gen.Fig1Graph()
	// H1 is the induced subgraph on x1..x4, y1..y4 (paper Fig. 2a).
	h1, l2g := g.InducedSubgraph([]int32{
		gen.Fig1X1, gen.Fig1X2, gen.Fig1X3, gen.Fig1X4,
		gen.Fig1Y1, gen.Fig1Y2, gen.Fig1Y3, gen.Fig1Y4,
	})
	if h1.M() != 14 {
		t.Fatalf("H1 edges = %d, want 14", h1.M())
	}
	local := func(global int32) int32 {
		for l, gv := range l2g {
			if gv == global {
				return int32(l)
			}
		}
		t.Fatalf("vertex %d not in H1", global)
		return -1
	}
	sup := h1.Supports()
	check := func(u, v int32, want int32, label string) {
		id := h1.EdgeID(local(u), local(v))
		if id < 0 {
			t.Fatalf("edge %s missing in H1", label)
		}
		if sup[id] != want {
			t.Errorf("sup(%s) = %d, want %d", label, sup[id], want)
		}
	}
	// Paper: sup(x2,y1) = 1 (only triangle x2-x4-y1), sup(x4,y1) = 1,
	// sup(x2,x4) = 3, every other edge 2.
	check(gen.Fig1X2, gen.Fig1Y1, 1, "(x2,y1)")
	check(gen.Fig1X4, gen.Fig1Y1, 1, "(x4,y1)")
	check(gen.Fig1X2, gen.Fig1X4, 3, "(x2,x4)")
	check(gen.Fig1X1, gen.Fig1X2, 2, "(x1,x2)")
	check(gen.Fig1Y1, gen.Fig1Y2, 2, "(y1,y2)")
	check(gen.Fig1Y3, gen.Fig1Y4, 2, "(y3,y4)")

	// Paper Fig. 2b: trussness 3 on the bridges, 4 elsewhere.
	tau := Decompose(h1)
	wantTau := func(u, v int32, want int32, label string) {
		id := h1.EdgeID(local(u), local(v))
		if tau[id] != want {
			t.Errorf("tau(%s) = %d, want %d", label, tau[id], want)
		}
	}
	wantTau(gen.Fig1X2, gen.Fig1Y1, 3, "(x2,y1)")
	wantTau(gen.Fig1X4, gen.Fig1Y1, 3, "(x4,y1)")
	wantTau(gen.Fig1X2, gen.Fig1X4, 4, "(x2,x4)")
	wantTau(gen.Fig1X1, gen.Fig1X3, 4, "(x1,x3)")
	wantTau(gen.Fig1Y1, gen.Fig1Y4, 4, "(y1,y4)")
}

func TestComponentsAndCount(t *testing.T) {
	// Two disjoint K4s plus a path: at k=4 there are 2 components.
	g := gen.DisjointUnion(gen.Clique(4), gen.Clique(4), gen.Path(5))
	tau := Decompose(g)
	comps := Components(g, tau, 4)
	if len(comps) != 2 {
		t.Fatalf("4-truss components = %d, want 2", len(comps))
	}
	for _, c := range comps {
		if len(c) != 4 {
			t.Fatalf("component size = %d, want 4", len(c))
		}
	}
	if got := CountComponents(g, tau, 4); got != 2 {
		t.Fatalf("CountComponents = %d, want 2", got)
	}
	// k=2: K4, K4 and the path are each one edge-connected component.
	if got := CountComponents(g, tau, 2); got != 3 {
		t.Fatalf("CountComponents(k=2) = %d, want 3", got)
	}
	// Above the max trussness: none.
	if got := CountComponents(g, tau, 5); got != 0 {
		t.Fatalf("CountComponents(k=5) = %d, want 0", got)
	}
}

func TestCountMatchesComponents(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, 26, 100, seed)
		tau := Decompose(g)
		for k := int32(2); k <= MaxTrussness(tau); k++ {
			if CountComponents(g, tau, k) != len(Components(g, tau, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVertexTrussness(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(5), gen.Path(3))
	tau := Decompose(g)
	vt := VertexTrussness(g, tau)
	for v := 0; v < 5; v++ {
		if vt[v] != 5 {
			t.Fatalf("clique vertex trussness = %d, want 5", vt[v])
		}
	}
	for v := 5; v < 8; v++ {
		if vt[v] != 2 {
			t.Fatalf("path vertex trussness = %d, want 2", vt[v])
		}
	}
}

func TestDistribution(t *testing.T) {
	g := gen.DisjointUnion(gen.Clique(4), gen.Path(4))
	tau := Decompose(g)
	hist := Distribution(tau)
	if hist[2] != 3 || hist[4] != 6 {
		t.Fatalf("hist = %v, want 3 edges at tau=2 and 6 at tau=4", hist)
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != int64(g.M()) {
		t.Fatalf("histogram total %d != m %d", total, g.M())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := gen.Path(1)
	tau := Decompose(g)
	if len(tau) != 0 {
		t.Fatal("expected no edges")
	}
	if MaxTrussness(tau) != 0 {
		t.Fatal("MaxTrussness of empty should be 0")
	}
	var bd BitmapDecomposer
	if got := bd.Decompose(g); len(got) != 0 {
		t.Fatal("bitmap decompose of empty should be empty")
	}
}

// TestScratchMatchesAllocatePath pins the reusable-Scratch contract: one
// Scratch reused across many graphs (carrying stale state from larger
// earlier ones) produces decompositions, component counts, and component
// groupings identical to the allocate-path package functions.
func TestScratchMatchesAllocatePath(t *testing.T) {
	var s Scratch
	graphs := []*graph.Graph{
		gen.Fig1Graph(),
		randomGraph(t, 40, 300, 31),
		randomGraph(t, 12, 40, 32), // shrink: stale slabs larger than needed
		randomGraph(t, 60, 500, 33),
		randomGraph(t, 5, 0, 34), // edgeless
	}
	for gi, g := range graphs {
		wantTau := Decompose(g)
		gotTau := s.DecomposeInto(g)
		for id := range wantTau {
			if gotTau[id] != wantTau[id] {
				t.Fatalf("graph %d: tau[%d] = %d, want %d", gi, id, gotTau[id], wantTau[id])
			}
		}
		maxK := MaxTrussness(wantTau)
		for k := int32(2); k <= maxK+1; k++ {
			// A fresh Scratch per call is the allocate path by definition.
			want := new(Scratch).Components(g, wantTau, k)
			got := s.Components(g, gotTau, k)
			if len(got) != len(want) {
				t.Fatalf("graph %d k=%d: %d components, want %d", gi, k, len(got), len(want))
			}
			for ci := range want {
				if len(got[ci]) != len(want[ci]) {
					t.Fatalf("graph %d k=%d comp %d: size mismatch", gi, k, ci)
				}
				for vi := range want[ci] {
					if got[ci][vi] != want[ci][vi] {
						t.Fatalf("graph %d k=%d comp %d[%d]: %d want %d",
							gi, k, ci, vi, got[ci][vi], want[ci][vi])
					}
				}
			}
			if n := s.CountComponents(g, gotTau, k); n != len(want) {
				t.Fatalf("graph %d k=%d: CountComponents = %d, want %d", gi, k, n, len(want))
			}
		}
	}
}
