package truss

import (
	"math"

	"trussdiv/internal/dsu"
	"trussdiv/internal/graph"
)

// Scratch owns the reusable peeling and counting state one worker needs
// to decompose and score ego-network-sized graphs without allocating in
// steady state. The zero value is ready to use. A Scratch is not safe
// for concurrent use — each worker owns exactly one — and the slices
// returned by DecomposeInto are views over the Scratch, valid only
// until its next use. See DESIGN.md "Scratch ownership contract".
type Scratch struct {
	// peeling state (DecomposeInto)
	sup      []int32
	tau      []int32
	binStart []int32
	sorted   []int32
	pos      []int32
	cursor   []int32
	removed  []bool

	// component state (CountComponents / Components)
	d         dsu.DSU
	seen      []int32 // stamped membership marks
	stamp     int32
	rootGroup []int32 // stamped root vertex -> dense group index
	rootStamp []int32
	groupLen  []int32
}

// DecomposeInto is Decompose over s's recycled storage: supports are
// counted by merging each edge's two sorted adjacency lists (the local
// equivalent of the global triangle pass, suited to ego-network-sized
// inputs) and the peel runs in the scratch bins. The returned tau is
// owned by s and valid only until the next DecomposeInto.
func (s *Scratch) DecomposeInto(g *graph.Graph) []int32 {
	m := g.M()
	s.sup = growI32(s.sup, m)
	for id := range s.sup {
		s.sup[id] = 0
	}
	for id, e := range g.Edges() {
		c := int32(0)
		forEachCommonArc(g, e.U, e.V, func(_, _, _ int32) { c++ })
		s.sup[id] = c
	}
	return s.peel(g)
}

// peel is Algorithm 1 over scratch storage. It consumes s.sup.
func (s *Scratch) peel(g *graph.Graph) []int32 {
	m := g.M()
	s.tau = growI32(s.tau, m)
	if m == 0 {
		return s.tau
	}
	sup := s.sup
	maxSup := int32(0)
	for _, v := range sup {
		if v > maxSup {
			maxSup = v
		}
	}
	// Bin sort edges by support: sorted is ascending by sup, pos[e] is the
	// index of e in sorted, binStart[x] is the first index of support x.
	s.binStart = growI32(s.binStart, int(maxSup)+2)
	binStart := s.binStart
	for i := range binStart {
		binStart[i] = 0
	}
	for _, v := range sup {
		binStart[v]++
	}
	start := int32(0)
	for x := int32(0); x <= maxSup; x++ {
		c := binStart[x]
		binStart[x] = start
		start += c
	}
	binStart[maxSup+1] = start
	s.sorted = growI32(s.sorted, m)
	s.pos = growI32(s.pos, m)
	s.cursor = growI32(s.cursor, int(maxSup)+1)
	sorted, pos, cursor := s.sorted, s.pos, s.cursor
	copy(cursor, binStart[:maxSup+1])
	for e := int32(0); int(e) < m; e++ {
		x := sup[e]
		sorted[cursor[x]] = e
		pos[e] = cursor[x]
		cursor[x]++
	}

	s.removed = growBool(s.removed, m)
	removed := s.removed
	for i := range removed {
		removed[i] = false
	}
	tau := s.tau
	// dec moves edge e one support bin down, unless it is already at the
	// current peeling floor.
	dec := func(e, floor int32) {
		x := sup[e]
		if x <= floor {
			return
		}
		p, q := pos[e], binStart[x]
		if p != q {
			other := sorted[q]
			sorted[p], sorted[q] = other, e
			pos[e], pos[other] = q, p
		}
		binStart[x]++
		sup[e] = x - 1
	}

	k := int32(2)
	for i := 0; i < m; i++ {
		e := sorted[i]
		if sup[e] > k-2 {
			k = sup[e] + 2
		}
		tau[e] = k
		removed[e] = true
		ed := g.Edge(e)
		forEachCommonArc(g, ed.U, ed.V, func(_ int32, euw, evw int32) {
			if removed[euw] || removed[evw] {
				return
			}
			dec(euw, k-2)
			dec(evw, k-2)
		})
	}
	return tau
}

// CountComponents is the package-level CountComponents over scratch
// storage: zero allocations in steady state.
func (s *Scratch) CountComponents(g *graph.Graph, tau []int32, k int32) int {
	n := g.N()
	s.d.Init(n)
	stamp := s.nextStamp(n)
	touched, merges := 0, 0
	for id, e := range g.Edges() {
		if tau[id] < k {
			continue
		}
		if s.seen[e.U] != stamp {
			s.seen[e.U] = stamp
			touched++
		}
		if s.seen[e.V] != stamp {
			s.seen[e.V] = stamp
			touched++
		}
		if s.d.Union(e.U, e.V) {
			merges++
		}
	}
	return touched - merges
}

// Components is the package-level Components with scratch-backed
// transients: only the returned groups (one flat member array plus the
// group headers) are allocated. Groups come out sorted by first member
// with ascending members, identical to Components.
func (s *Scratch) Components(g *graph.Graph, tau []int32, k int32) [][]int32 {
	n := g.N()
	s.d.Init(n)
	stamp := s.nextStamp(n)
	members := 0
	for id, e := range g.Edges() {
		if tau[id] < k {
			continue
		}
		if s.seen[e.U] != stamp {
			s.seen[e.U] = stamp
			members++
		}
		if s.seen[e.V] != stamp {
			s.seen[e.V] = stamp
			members++
		}
		s.d.Union(e.U, e.V)
	}
	return s.groupMembers(n, members, stamp, func(v int32) bool { return s.seen[v] == stamp })
}

// groupMembers assembles the component groups of every vertex accepted
// by member, scanning ascending so groups appear in order of their first
// (smallest) member with members ascending — the canonical component
// order. members is the accepted-vertex count; the union-find in s.d
// must already reflect the qualifying edges.
func (s *Scratch) groupMembers(n, members int, stamp int32, member func(v int32) bool) [][]int32 {
	s.rootGroup = growI32(s.rootGroup, n)
	s.rootStamp = growI32(s.rootStamp, n)
	s.groupLen = s.groupLen[:0]
	for v := int32(0); int(v) < n; v++ {
		if !member(v) {
			continue
		}
		r := s.d.Find(v)
		if s.rootStamp[r] != stamp {
			s.rootStamp[r] = stamp
			s.rootGroup[r] = int32(len(s.groupLen))
			s.groupLen = append(s.groupLen, 0)
		}
		s.groupLen[s.rootGroup[r]]++
	}
	flat := make([]int32, 0, members)
	out := make([][]int32, 0, len(s.groupLen))
	for _, l := range s.groupLen {
		start := len(flat)
		out = append(out, flat[start:start:start+int(l)])
		flat = flat[:start+int(l)]
	}
	for v := int32(0); int(v) < n; v++ {
		if !member(v) {
			continue
		}
		gi := s.rootGroup[s.d.Find(v)]
		out[gi] = append(out[gi], v)
	}
	return out
}

// nextStamp sizes the stamped membership array for n vertices and
// returns a fresh stamp value. The stamp trick replaces clearing the
// array on every call; on (astronomically rare) wraparound the arrays
// are cleared for real.
func (s *Scratch) nextStamp(n int) int32 {
	if cap(s.seen) < n {
		s.seen = make([]int32, n)
	}
	s.seen = s.seen[:n]
	if cap(s.rootStamp) >= n {
		s.rootStamp = s.rootStamp[:n]
	}
	if s.stamp == math.MaxInt32 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		for i := range s.rootStamp {
			s.rootStamp[i] = 0
		}
		s.stamp = 0
	}
	s.stamp++
	return s.stamp
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
