package truss

import (
	"math/rand"
	"testing"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/testutil"
)

// applyEdits rebuilds g with the canonical (U < V) batches applied — the
// same deterministic edge-ID assignment core.ApplyEdits produces (that
// package cannot be imported here without a cycle).
func applyEdits(g *graph.Graph, ins, del []graph.Edge) *graph.Graph {
	drop := make(map[graph.Edge]bool, len(del))
	for _, e := range del {
		drop[e] = true
	}
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range ins {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// checkRepair runs Repair over (g, ins, del) and asserts exactness against
// a cold decomposition of the edited graph. Returns the repair result for
// callers asserting on the locality stats.
func checkRepair(t *testing.T, g *graph.Graph, ins, del []graph.Edge, budget int) *RepairResult {
	t.Helper()
	newG := applyEdits(g, ins, del)
	oldTau, oldSup := Decompose(g), g.Supports()
	rr, ok := Repair(g, newG, oldTau, oldSup, ins, del, budget)
	if !ok {
		t.Fatalf("Repair declined (ins=%d del=%d budget=%d)", len(ins), len(del), budget)
	}
	wantTau := Decompose(newG)
	wantSup := newG.Supports()
	for id := range wantTau {
		if rr.Tau[id] != wantTau[id] {
			e := newG.Edge(int32(id))
			t.Fatalf("edge (%d,%d): repaired tau = %d, cold = %d (ins=%v del=%v)",
				e.U, e.V, rr.Tau[id], wantTau[id], ins, del)
		}
		if rr.Sup[id] != wantSup[id] {
			e := newG.Edge(int32(id))
			t.Fatalf("edge (%d,%d): repaired sup = %d, cold = %d", e.U, e.V, rr.Sup[id], wantSup[id])
		}
	}
	return rr
}

// The adversarial case for any purely ascending repair: inserting the
// missing edge of K5−e lifts the trussness of every edge — including the
// three edges not touching the insertion, whose supports are unchanged and
// which certify each other's new level only mutually. The region traversal
// must pull them in and the seeded descent must settle them at 5.
func TestRepairK5MissingEdge(t *testing.T) {
	b := graph.NewBuilder(5)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if u == 2 && v == 3 {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	rr := checkRepair(t, g, []graph.Edge{{U: 2, V: 3}}, nil, 0)
	newG := applyEdits(g, []graph.Edge{{U: 2, V: 3}}, nil)
	for id, tau := range rr.Tau {
		if tau != 5 {
			e := newG.Edge(int32(id))
			t.Fatalf("K5 edge (%d,%d): tau = %d, want 5", e.U, e.V, tau)
		}
	}
}

// Deleting that same edge again must walk the region back down to 4.
func TestRepairK5EdgeDeletion(t *testing.T) {
	g := gen.Clique(5)
	del := []graph.Edge{{U: 2, V: 3}}
	rr := checkRepair(t, g, nil, del, 10*g.M())
	for id, tau := range rr.Tau {
		if tau != 4 {
			t.Fatalf("edge %d: tau = %d, want 4 after deletion", id, tau)
		}
	}
}

func TestRepairRandomizedBatches(t *testing.T) {
	rng := testutil.Rand(t, 31)
	for trial := 0; trial < 60; trial++ {
		n := 14 + rng.Intn(18)
		g := randomGraph(t, n, 3*n+rng.Intn(4*n), int64(500+trial))
		ins, del := randomBatch(rng, g, 1+rng.Intn(6), rng.Intn(5))
		if len(ins) == 0 && len(del) == 0 {
			continue
		}
		checkRepair(t, g, ins, del, 10*g.M())
	}
}

func TestRepairDeleteOnlyBatches(t *testing.T) {
	rng := testutil.Rand(t, 77)
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(t, 20, 90, int64(900+trial))
		_, del := randomBatch(rng, g, 0, 1+rng.Intn(6))
		if len(del) == 0 {
			continue
		}
		checkRepair(t, g, nil, del, 10*g.M())
	}
}

// A stream of small batches, each repaired from the previous repair's own
// output — the exact usage pattern of DB.Apply, where supports and taus
// must stay valid inputs across generations.
func TestRepairStream(t *testing.T) {
	rng := testutil.Rand(t, 55)
	g := randomGraph(t, 40, 220, 123)
	tau, sup := Decompose(g), g.Supports()
	for step := 0; step < 25; step++ {
		ins, del := randomBatch(rng, g, 1+rng.Intn(3), rng.Intn(3))
		if len(ins) == 0 && len(del) == 0 {
			continue
		}
		newG := applyEdits(g, ins, del)
		rr, ok := Repair(g, newG, tau, sup, ins, del, 10*g.M())
		if !ok {
			t.Fatalf("step %d: Repair declined", step)
		}
		want := Decompose(newG)
		for id := range want {
			if rr.Tau[id] != want[id] {
				t.Fatalf("step %d edge %d: tau = %d, cold = %d", step, id, rr.Tau[id], want[id])
			}
		}
		g, tau, sup = newG, rr.Tau, rr.Sup
	}
}

// The cutoff contract: an impossible budget makes Repair decline instead
// of degrading, and a normal budget on a clique insertion (whose region is
// the whole clique) still succeeds.
func TestRepairBudgetCutoff(t *testing.T) {
	g := gen.Clique(10)
	del := []graph.Edge{{U: 0, V: 1}}
	newG := applyEdits(g, nil, del)
	tau, sup := Decompose(g), g.Supports()
	if _, ok := Repair(g, newG, tau, sup, nil, del, 1); ok {
		t.Fatal("Repair accepted a budget of 1 edge on a clique deletion")
	}
	if _, ok := Repair(g, newG, tau, sup, nil, del, g.M()); !ok {
		t.Fatal("Repair declined a budget covering the whole graph")
	}
}

// Mismatched inputs (a new graph that is not oldG+ins−del) must be
// rejected, not silently mis-repaired.
func TestRepairRejectsMismatchedGraphs(t *testing.T) {
	g := gen.Clique(6)
	other := gen.Clique(6)
	otherPlus := applyEdits(other, nil, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	tau, sup := Decompose(g), g.Supports()
	if _, ok := Repair(g, otherPlus, tau, sup, nil, []graph.Edge{{U: 0, V: 1}}, 0); ok {
		t.Fatal("Repair accepted a new graph inconsistent with the batch")
	}
	if _, ok := Repair(g, otherPlus, tau[:3], sup, nil, []graph.Edge{{U: 0, V: 1}}, 0); ok {
		t.Fatal("Repair accepted a truncated tau array")
	}
}

// randomBatch samples up to nIns absent edges and nDel present edges from
// g, canonical and duplicate-free.
func randomBatch(rng *rand.Rand, g *graph.Graph, nIns, nDel int) (ins, del []graph.Edge) {
	n := int32(g.N())
	seen := make(map[graph.Edge]bool)
	for len(ins) < nIns {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := graph.Edge{U: u, V: v}
		if seen[e] || g.HasEdge(u, v) {
			continue
		}
		seen[e] = true
		ins = append(ins, e)
	}
	edges := g.Edges()
	for attempts := 0; len(del) < nDel && attempts < 50*nDel+50; attempts++ {
		if len(edges) == 0 {
			break
		}
		e := edges[rng.Intn(len(edges))]
		if seen[e] {
			continue
		}
		seen[e] = true
		del = append(del, e)
	}
	return ins, del
}
