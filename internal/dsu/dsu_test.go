package dsu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(6)
	if d.Sets() != 6 {
		t.Fatalf("Sets = %d, want 6", d.Sets())
	}
	if !d.Union(0, 1) {
		t.Fatal("first union reported no-op")
	}
	if d.Union(1, 0) {
		t.Fatal("repeat union reported a merge")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if !d.Same(1, 2) {
		t.Fatal("1 and 2 should be connected")
	}
	if d.Same(1, 4) {
		t.Fatal("1 and 4 should not be connected")
	}
	if d.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", d.Sets())
	}
	if d.SizeOf(2) != 4 {
		t.Fatalf("SizeOf(2) = %d, want 4", d.SizeOf(2))
	}
	d.Reset()
	if d.Sets() != 6 || d.Same(0, 1) {
		t.Fatal("Reset did not restore singletons")
	}
}

// Property: after any union sequence, Sets() == n - (number of effective
// merges), and Same agrees with a naive component labeling.
func TestAgainstNaiveLabels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		d := New(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < 100; op++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			merged := d.Union(x, y)
			if merged == (labels[x] == labels[y]) {
				return false
			}
			if merged {
				relabel(labels[x], labels[y])
			}
		}
		distinct := map[int]struct{}{}
		for _, l := range labels {
			distinct[l] = struct{}{}
		}
		if len(distinct) != d.Sets() {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(int32(i), int32(j)) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
