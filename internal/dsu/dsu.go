// Package dsu implements a disjoint-set union (union-find) structure with
// path halving and union by size.
//
// It is used for Kruskal's maximum-spanning-forest construction of the
// TSD-index (paper §5.1), for supernode merging during GCT-index
// construction (paper §6.3), and for connected-component identification
// when counting social contexts.
package dsu

// DSU is a disjoint-set forest over elements 0..n-1. The zero value is an
// empty structure; use New.
type DSU struct {
	parent []int32
	size   []int32
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n), sets: n}
	d.Reset()
	return d
}

// Init resets d to n singleton sets, reusing (and growing only when
// needed) its storage — the allocation-free counterpart of New for
// scratch structures that are re-targeted at graphs of varying size.
func (d *DSU) Init(n int) {
	if cap(d.parent) < n {
		d.parent = make([]int32, n)
		d.size = make([]int32, n)
	}
	d.parent = d.parent[:n]
	d.size = d.size[:n]
	d.Reset()
}

// Reset returns every element to its own singleton set.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	d.sets = len(d.parent)
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set, compressing the path.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened
// (false when they were already in the same set).
func (d *DSU) Union(x, y int32) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int32) bool { return d.Find(x) == d.Find(y) }

// SizeOf returns the number of elements in x's set.
func (d *DSU) SizeOf(x int32) int32 { return d.size[d.Find(x)] }
