package bench

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"time"

	"trussdiv"
	"trussdiv/internal/cluster"
)

// runCluster measures the distributed serving tier against a single
// node: the same top-r query through 1, 2, and 4 local shard workers
// (in-process HTTP, so the numbers isolate the scatter-gather protocol
// rather than the network), with answers asserted byte-equal to the
// single-node result — the cluster tier's exactness guarantee, measured
// rather than assumed. The merge overhead is the coordinator wall time
// minus the slowest shard's own latency: what the fan-out, decode, and
// k-way merge cost on top of the partial searches themselves.

// ClusterShardSample is one shard-count configuration's measurement.
type ClusterShardSample struct {
	Shards          int     `json:"shards"`
	WallNS          int64   `json:"wall_ns"`           // coordinator wall time per query
	MaxShardNS      int64   `json:"max_shard_ns"`      // slowest shard's own latency
	MergeOverheadNS int64   `json:"merge_overhead_ns"` // wall - max shard
	Speedup         float64 `json:"speedup_vs_single"` // single-node wall / cluster wall
}

// ClusterDatasetReport groups one dataset's samples.
type ClusterDatasetReport struct {
	Name     string               `json:"name"`
	Vertices int                  `json:"vertices"`
	Edges    int                  `json:"edges"`
	SingleNS int64                `json:"single_node_ns"`
	Configs  []ClusterShardSample `json:"configs"`
}

// ClusterReport is the schema of BENCH_cluster.json.
type ClusterReport struct {
	GOMAXPROCS int                    `json:"gomaxprocs"`
	K          int32                  `json:"k"`
	R          int                    `json:"r"`
	Iterations int                    `json:"iterations"`
	Datasets   []ClusterDatasetReport `json:"datasets"`
}

// ClusterReportFile is the artifact runCluster writes.
const ClusterReportFile = "BENCH_cluster.json"

func runCluster(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	iters := 5
	if cfg.Quick {
		iters = 3
	}
	ctx := context.Background()
	report := ClusterReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		K:          k, R: r, Iterations: iters,
	}
	t := &Table{
		Title:   fmt.Sprintf("Single node vs 1/2/4 local shards, k=%d r=%d (extension)", k, r),
		Headers: []string{"Network", "shards", "wall", "max shard", "merge overhead", "speedup"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		// One index build shared by the single node and every worker: the
		// experiment times serving, not index construction.
		tsdIdx := trussdiv.BuildTSDIndex(g)
		gctIdx := trussdiv.BuildGCTIndex(g)
		newDB := func() (*trussdiv.DB, error) {
			return trussdiv.Open(g, trussdiv.WithTSDIndex(tsdIdx), trussdiv.WithGCTIndex(gctIdx))
		}
		single, err := newDB()
		if err != nil {
			return err
		}
		q := trussdiv.Query{K: k, R: r}
		var want *trussdiv.Result
		singleTime, err := timedQueries(iters, func() error {
			res, _, err := single.TopR(ctx, q)
			want = res
			return err
		})
		if err != nil {
			return fmt.Errorf("%s: single node: %v", name, err)
		}
		ds := ClusterDatasetReport{
			Name: name, Vertices: g.N(), Edges: g.M(),
			SingleNS: singleTime.Nanoseconds(),
		}
		t.AddRow(name, "single", singleTime, "-", "-", "1.00x")

		for _, count := range []int{1, 2, 4} {
			var servers []*httptest.Server
			var groups [][]string
			for i := 0; i < count; i++ {
				db, err := newDB()
				if err != nil {
					return err
				}
				lo, hi := int32(i*g.N()/count), int32((i+1)*g.N()/count)
				worker, err := cluster.NewWorker(db, lo, hi)
				if err != nil {
					return err
				}
				srv := httptest.NewServer(worker.Handler())
				servers = append(servers, srv)
				groups = append(groups, []string{strings.TrimPrefix(srv.URL, "http://")})
			}
			coord, err := cluster.NewCoordinator(ctx, groups)
			if err != nil {
				return err
			}
			// The merge overhead pairs one fan-out's wall time with that
			// same fan-out's slowest shard, so it never mixes iterations.
			var got *trussdiv.Result
			var total, lastWall time.Duration
			var maxShardUS int64
			var qerr error
			for i := 0; i < iters; i++ {
				lastWall = Timed(func() {
					got, _, qerr = coord.TopR(ctx, q)
				})
				total += lastWall
				if qerr != nil {
					break
				}
				maxShardUS = 0
				for _, sh := range coord.FanoutStats() {
					maxShardUS = max(maxShardUS, sh.LastUS)
				}
			}
			for _, srv := range servers {
				srv.Close()
			}
			if qerr != nil {
				return fmt.Errorf("%s: %d shards: %v", name, count, qerr)
			}
			if err := sameClusterAnswer(got, want); err != nil {
				return fmt.Errorf("%s: %d shards: cluster answer differs from single node: %w", name, count, err)
			}
			wall := total / time.Duration(iters)
			maxShard := time.Duration(maxShardUS) * time.Microsecond
			overhead := lastWall - maxShard
			speedup := float64(singleTime) / float64(max(wall, time.Nanosecond))
			ds.Configs = append(ds.Configs, ClusterShardSample{
				Shards:          count,
				WallNS:          wall.Nanoseconds(),
				MaxShardNS:      maxShard.Nanoseconds(),
				MergeOverheadNS: overhead.Nanoseconds(),
				Speedup:         speedup,
			})
			t.AddRow(name, fmt.Sprint(count), wall, maxShard, overhead, fmt.Sprintf("%.2fx", speedup))
		}
		report.Datasets = append(report.Datasets, ds)
	}
	t.Fprint(w)

	path, err := writeArtifact(cfg, ClusterReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// timedQueries runs fn iters times and returns the mean wall time.
func timedQueries(iters int, fn func() error) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < iters; i++ {
		var err error
		total += Timed(func() { err = fn() })
		if err != nil {
			return 0, err
		}
	}
	return total / time.Duration(iters), nil
}

// sameClusterAnswer checks the byte-exactness guarantee on the ranked
// answer.
func sameClusterAnswer(got, want *trussdiv.Result) error {
	if got == nil || want == nil {
		return fmt.Errorf("missing result (%v, %v)", got == nil, want == nil)
	}
	if len(got.TopR) != len(want.TopR) {
		return fmt.Errorf("answer sizes %d vs %d", len(got.TopR), len(want.TopR))
	}
	for i := range got.TopR {
		if got.TopR[i] != want.TopR[i] {
			return fmt.Errorf("position %d: %+v vs %+v", i, got.TopR[i], want.TopR[i])
		}
	}
	return nil
}
