package bench

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"trussdiv"
)

// runPFree benchmarks the parameter-free engine's two execution paths
// (the ISSUE-9 extension): for every dataset and measure it times the
// online fallback (a cold pfree query scores each candidate's full all-k
// vector on the fly) against the prepared path (an O(r) prefix read of
// the pfree ranking after one Prepare), and verifies both answer
// byte-identically. The DB runs with the result cache disabled so the
// numbers measure execution, not cache hits. Results land in
// BENCH_pfree.json, tracking the k-less serving cost from PR to PR.

// PFreeRow is one (dataset, measure) timing.
type PFreeRow struct {
	Dataset string `json:"dataset"`
	Measure string `json:"measure"`
	// OnlineNS is the per-query wall time of the online fallback (no
	// ranking present); PrepareNS what Prepare("pfree") cost; RankedNS
	// the per-query time of the prepared prefix read.
	OnlineNS  int64 `json:"online_ns"`
	PrepareNS int64 `json:"prepare_ns"`
	RankedNS  int64 `json:"ranked_ns"`
	// Speedup is OnlineNS / RankedNS: what the prepared ranking buys over
	// re-scoring every candidate's all-k vector per query.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp and BytesPerOp are the mean heap allocations and bytes
	// of one online (cold) pfree query — the all-k scoring hot path.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Verified records that the online and prepared answers matched.
	Verified bool `json:"verified"`
}

// PFreeReport is the schema of BENCH_pfree.json.
type PFreeReport struct {
	R    int        `json:"r"`
	Rows []PFreeRow `json:"rows"`
	// PrepareAll compares the cold Prepare("pfree") — one shared
	// extraction pass building every measure's tables at once — against
	// preparing the same end state one structure at a time.
	PrepareAll []PrepareAllRow `json:"prepare_all,omitempty"`
}

// PFreeReportFile is the artifact runPFree writes.
const PFreeReportFile = "BENCH_pfree.json"

func runPFree(w io.Writer, cfg Config) error {
	const r = 100
	ctx := context.Background()
	measures, err := measuresUnderTest(cfg)
	if err != nil {
		return err
	}
	queryReps := 5
	if cfg.Quick {
		queryReps = 3
	}
	report := PFreeReport{R: r}
	t := &Table{
		Title:   fmt.Sprintf("Parameter-free top-r serving cost, r=%d (extension)", r),
		Headers: []string{"Network", "measure", "online", "prepare", "ranked", "speedup", "allocs/op"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		for _, m := range measures {
			// A fresh DB per cell so the online fallback is really cold: no
			// per-k tables to derive the ranking from, no result cache to
			// serve repeats for free.
			db, err := trussdiv.Open(g, trussdiv.WithResultCache(0))
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			q := trussdiv.NewQuery(0, r, trussdiv.WithMeasure(m), trussdiv.ViaEngine("pfree"))
			var onlineRes, rankedRes *trussdiv.Result
			online := timePerQuery(queryReps, func() error {
				onlineRes, _, err = db.TopR(ctx, q)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s online: %w", name, m, err)
			}

			var prepare time.Duration
			prepare += Timed(func() {
				err = db.Prepare(ctx, "pfree")
			})
			if err != nil {
				return fmt.Errorf("%s/%s prepare(pfree): %w", name, m, err)
			}
			ranked := timePerQuery(queryReps, func() error {
				rankedRes, _, err = db.TopR(ctx, q)
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s ranked: %w", name, m, err)
			}

			// The speedup must measure the same answers, faster.
			if err := sameAnswer(onlineRes, rankedRes); err != nil {
				return fmt.Errorf("%s/%s: prepared diverged from online: %w", name, m, err)
			}
			if !reflect.DeepEqual(onlineRes.TopR, rankedRes.TopR) {
				return fmt.Errorf("%s/%s: prepared answer not byte-identical", name, m)
			}
			// Allocation profile of the cold path, on its own fresh DB so
			// the prepared ranking above cannot serve the scan.
			coldDB, err := trussdiv.Open(g, trussdiv.WithResultCache(0))
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			allocs, bytes := allocsPerOp(queryReps, func() error {
				_, _, err := coldDB.TopR(ctx, q)
				return err
			})

			speedup := float64(online) / float64(max(ranked, time.Nanosecond))
			report.Rows = append(report.Rows, PFreeRow{
				Dataset:     name,
				Measure:     string(m),
				OnlineNS:    online.Nanoseconds(),
				PrepareNS:   prepare.Nanoseconds(),
				RankedNS:    ranked.Nanoseconds(),
				Speedup:     speedup,
				AllocsPerOp: allocs,
				BytesPerOp:  bytes,
				Verified:    true,
			})
			t.AddRow(name, string(m), online, prepare, ranked,
				fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", allocs))
		}
		if len(measures) == len(trussdiv.AllMeasures()) {
			// Prepare("pfree") needs every measure's tables, so one call is
			// the shared pass; the split path builds the same end state one
			// structure at a time before the O(table) pfree derivation.
			row, err := timePrepareAll(ctx, g,
				[]string{"pfree"}, []string{"hybrid", "comp", "kcore", "pfree"})
			if err != nil {
				return fmt.Errorf("%s prepare-all: %w", name, err)
			}
			row.Dataset = name
			report.PrepareAll = append(report.PrepareAll, row)
		}
	}
	t.Fprint(w)
	for _, row := range report.PrepareAll {
		fmt.Fprintf(w, "prepare-all %-12s pfree: one pass %v vs one-at-a-time %v (%.2fx)\n",
			row.Dataset, time.Duration(row.PrepareAllNS), time.Duration(row.PrepareSumNS), row.Speedup)
	}
	path, err := writeArtifact(cfg, PFreeReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}
