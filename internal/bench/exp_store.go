package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"trussdiv"
)

// runStore measures what the persistent index store buys a serving
// process: the cold path (build every index from the raw edge list and
// persist it) versus the two warm paths a format v3 store offers — the
// classic read-and-decode reload and the zero-copy mmap open. Both warm
// DBs' answers are asserted identical to the cold DB's on every engine,
// so no speedup column ever comes at the price of a different result.
// Numbers land in BENCH_store.json so the startup-cost trajectory is
// tracked from PR to PR.

// StoreDatasetReport is one dataset's cold-vs-warm measurement.
type StoreDatasetReport struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// ColdStartNS is Open + Prepare against an empty index directory:
	// every index is built from the graph and persisted.
	ColdStartNS int64 `json:"cold_start_ns"`
	// WarmStartNS is Open + Prepare against the directory the cold run
	// populated, forced through the decode path (the pre-v3 behavior, kept
	// under this name so the series stays comparable across format
	// versions). Warm numbers are the best of warmRuns attempts so a stray
	// GC pause in one run does not masquerade as startup cost.
	WarmStartNS int64 `json:"warm_start_ns"`
	// WarmMmapNS is the same warm start through the default mmap path:
	// the file is mapped once and sections are served as zero-copy views,
	// structurally validated as they are parsed (no payload checksum pass
	// on the warm path — store.File.VerifySections is the explicit check).
	WarmMmapNS int64 `json:"warm_mmap_ns"`
	FileBytes  int64 `json:"file_bytes"`
	// Speedup is cold / decode-warm startup wall time.
	Speedup float64 `json:"speedup"`
	// MmapSpeedup is decode-warm / mmap-warm startup wall time.
	MmapSpeedup float64 `json:"mmap_speedup"`
	// WarmAllocBytes / WarmMmapAllocBytes are the heap bytes allocated
	// during each warm start — the marginal per-replica memory cost of
	// another process serving the same store (mmap pages are shared and
	// file-backed, so they are missing from the mmap number by design).
	WarmAllocBytes     int64 `json:"warm_alloc_bytes"`
	WarmMmapAllocBytes int64 `json:"warm_mmap_alloc_bytes"`
}

// StoreReport is the schema of BENCH_store.json.
type StoreReport struct {
	Datasets []StoreDatasetReport `json:"datasets"`
}

// StoreReportFile is the artifact runStore writes (into cfg.OutDir,
// default the working directory).
const StoreReportFile = "BENCH_store.json"

// timedAlloc runs f and reports its wall time plus the heap bytes it
// allocated (monotonic TotalAlloc delta, so concurrent GC does not hide
// allocations).
func timedAlloc(f func()) (time.Duration, int64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	d := Timed(f)
	runtime.ReadMemStats(&after)
	return d, int64(after.TotalAlloc - before.TotalAlloc)
}

// warmRuns is how many times each warm start is repeated; the fastest run
// is reported. Warm starts are millisecond-scale, so a single GC assist or
// scheduler hiccup inside one run would otherwise dominate the number.
const warmRuns = 3

// bestWarm repeats f warmRuns times with a GC between attempts and returns
// the fastest wall time with that run's allocation delta.
func bestWarm(f func()) (time.Duration, int64) {
	best, bestAlloc := time.Duration(0), int64(0)
	for i := 0; i < warmRuns; i++ {
		runtime.GC()
		d, alloc := timedAlloc(f)
		if i == 0 || d < best {
			best, bestAlloc = d, alloc
		}
	}
	return best, bestAlloc
}

// runStore times cold and warm startup per dataset and emits both a
// table and BENCH_store.json.
func runStore(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	scratch, err := os.MkdirTemp("", "tsd-store-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	var report StoreReport
	t := &Table{
		Title:   "Cold build vs warm load startup (persistent index store)",
		Headers: []string{"Network", "cold start", "warm decode", "warm mmap", "file size", "cold/decode", "decode/mmap"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		dir := filepath.Join(scratch, name)

		var coldDB, warmDB, mmapDB *trussdiv.DB
		var coldErr, warmErr, mmapErr error
		cold := Timed(func() {
			coldDB, coldErr = trussdiv.Open(g, trussdiv.WithIndexDir(dir))
			if coldErr == nil {
				coldErr = coldDB.Prepare(ctx)
			}
		})
		if coldErr != nil {
			return fmt.Errorf("%s: cold start: %w", name, coldErr)
		}
		if st := coldDB.StoreStatus(); st.SaveErr != nil {
			return fmt.Errorf("%s: persist: %w", name, st.SaveErr)
		}
		warm, warmAlloc := bestWarm(func() {
			warmDB, warmErr = trussdiv.Open(g, trussdiv.WithIndexDir(dir),
				trussdiv.WithStoreMode(trussdiv.StoreDecode))
			if warmErr == nil {
				warmErr = warmDB.Prepare(ctx)
			}
		})
		if warmErr != nil {
			return fmt.Errorf("%s: warm start: %w", name, warmErr)
		}
		if st := warmDB.StoreStatus(); !st.Warm || st.LoadErr != nil {
			return fmt.Errorf("%s: warm open did not trust the store (warm=%v, err=%v)",
				name, st.Warm, st.LoadErr)
		}
		warmMmap, mmapAlloc := bestWarm(func() {
			mmapDB, mmapErr = trussdiv.Open(g, trussdiv.WithIndexDir(dir))
			if mmapErr == nil {
				mmapErr = mmapDB.Prepare(ctx)
			}
		})
		if mmapErr != nil {
			return fmt.Errorf("%s: mmap warm start: %w", name, mmapErr)
		}
		if st := mmapDB.StoreStatus(); !st.Warm || st.LoadErr != nil {
			return fmt.Errorf("%s: mmap warm open did not trust the store (warm=%v, err=%v)",
				name, st.Warm, st.LoadErr)
		}
		// The paper's correctness bar for the store: a loaded index must
		// answer every engine's query exactly like a built one — through
		// either read mode.
		for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
			q := trussdiv.NewQuery(k, r, trussdiv.WithContexts(), trussdiv.ViaEngine(engine))
			coldRes, _, err := coldDB.TopR(ctx, q)
			if err != nil {
				return fmt.Errorf("%s/%s: cold query: %w", name, engine, err)
			}
			warmRes, _, err := warmDB.TopR(ctx, q)
			if err != nil {
				return fmt.Errorf("%s/%s: warm query: %w", name, engine, err)
			}
			if err := sameAnswer(coldRes, warmRes); err != nil {
				return fmt.Errorf("%s/%s: loaded index answers differ from built: %w", name, engine, err)
			}
			mmapRes, _, err := mmapDB.TopR(ctx, q)
			if err != nil {
				return fmt.Errorf("%s/%s: mmap query: %w", name, engine, err)
			}
			if err := sameAnswer(coldRes, mmapRes); err != nil {
				return fmt.Errorf("%s/%s: mmap-served answers differ from built: %w", name, engine, err)
			}
		}
		info, err := os.Stat(mmapDB.StoreStatus().Path)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		speedup := float64(cold) / float64(max(warm, time.Nanosecond))
		mmapSpeedup := float64(warm) / float64(max(warmMmap, time.Nanosecond))
		report.Datasets = append(report.Datasets, StoreDatasetReport{
			Name:               name,
			Vertices:           g.N(),
			Edges:              g.M(),
			ColdStartNS:        cold.Nanoseconds(),
			WarmStartNS:        warm.Nanoseconds(),
			WarmMmapNS:         warmMmap.Nanoseconds(),
			FileBytes:          info.Size(),
			Speedup:            speedup,
			MmapSpeedup:        mmapSpeedup,
			WarmAllocBytes:     warmAlloc,
			WarmMmapAllocBytes: mmapAlloc,
		})
		t.AddRow(name, cold, warm, warmMmap, fmt.Sprintf("%d B", info.Size()),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.2fx", mmapSpeedup))
	}
	t.Fprint(w)
	path, err := writeArtifact(cfg, StoreReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}
