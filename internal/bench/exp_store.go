package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"trussdiv"
)

// runStore measures what the persistent index store buys a serving
// process: the cold path (build every index from the raw edge list and
// persist it) versus the warm path (reload the same indexes from disk on
// the next boot). The warm DB's answers are asserted identical to the
// cold DB's on every engine, so the speedup column never comes at the
// price of a different result. Numbers land in BENCH_store.json so the
// startup-cost trajectory is tracked from PR to PR.

// StoreDatasetReport is one dataset's cold-vs-warm measurement.
type StoreDatasetReport struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// ColdStartNS is Open + Prepare against an empty index directory:
	// every index is built from the graph and persisted.
	ColdStartNS int64 `json:"cold_start_ns"`
	// WarmStartNS is Open + Prepare against the directory the cold run
	// populated: every index loads from the store.
	WarmStartNS int64 `json:"warm_start_ns"`
	FileBytes   int64 `json:"file_bytes"`
	// Speedup is cold / warm startup wall time.
	Speedup float64 `json:"speedup"`
}

// StoreReport is the schema of BENCH_store.json.
type StoreReport struct {
	Datasets []StoreDatasetReport `json:"datasets"`
}

// StoreReportFile is the artifact runStore writes (into cfg.OutDir,
// default the working directory).
const StoreReportFile = "BENCH_store.json"

// runStore times cold and warm startup per dataset and emits both a
// table and BENCH_store.json.
func runStore(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	scratch, err := os.MkdirTemp("", "tsd-store-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	var report StoreReport
	t := &Table{
		Title:   "Cold build vs warm load startup (persistent index store)",
		Headers: []string{"Network", "cold start", "warm start", "file size", "speedup"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		dir := filepath.Join(scratch, name)

		var coldDB, warmDB *trussdiv.DB
		var coldErr, warmErr error
		cold := Timed(func() {
			coldDB, coldErr = trussdiv.Open(g, trussdiv.WithIndexDir(dir))
			if coldErr == nil {
				coldErr = coldDB.Prepare(ctx)
			}
		})
		if coldErr != nil {
			return fmt.Errorf("%s: cold start: %w", name, coldErr)
		}
		if st := coldDB.StoreStatus(); st.SaveErr != nil {
			return fmt.Errorf("%s: persist: %w", name, st.SaveErr)
		}
		warm := Timed(func() {
			warmDB, warmErr = trussdiv.Open(g, trussdiv.WithIndexDir(dir))
			if warmErr == nil {
				warmErr = warmDB.Prepare(ctx)
			}
		})
		if warmErr != nil {
			return fmt.Errorf("%s: warm start: %w", name, warmErr)
		}
		if st := warmDB.StoreStatus(); !st.Warm || st.LoadErr != nil {
			return fmt.Errorf("%s: warm open did not trust the store (warm=%v, err=%v)",
				name, st.Warm, st.LoadErr)
		}
		// The paper's correctness bar for the store: a loaded index must
		// answer every engine's query exactly like a built one.
		for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
			q := trussdiv.NewQuery(k, r, trussdiv.WithContexts(), trussdiv.ViaEngine(engine))
			coldRes, _, err := coldDB.TopR(ctx, q)
			if err != nil {
				return fmt.Errorf("%s/%s: cold query: %w", name, engine, err)
			}
			warmRes, _, err := warmDB.TopR(ctx, q)
			if err != nil {
				return fmt.Errorf("%s/%s: warm query: %w", name, engine, err)
			}
			if err := sameAnswer(coldRes, warmRes); err != nil {
				return fmt.Errorf("%s/%s: loaded index answers differ from built: %w", name, engine, err)
			}
		}
		info, err := os.Stat(warmDB.StoreStatus().Path)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		speedup := float64(cold) / float64(max(warm, time.Nanosecond))
		report.Datasets = append(report.Datasets, StoreDatasetReport{
			Name:        name,
			Vertices:    g.N(),
			Edges:       g.M(),
			ColdStartNS: cold.Nanoseconds(),
			WarmStartNS: warm.Nanoseconds(),
			FileBytes:   info.Size(),
			Speedup:     speedup,
		})
		t.AddRow(name, cold, warm, fmt.Sprintf("%d B", info.Size()), fmt.Sprintf("%.2fx", speedup))
	}
	t.Fprint(w)
	path, err := writeArtifact(cfg, StoreReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}
