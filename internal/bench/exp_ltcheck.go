package bench

import (
	"fmt"
	"io"

	"trussdiv/internal/cascade"
	"trussdiv/internal/core"
)

// runLTCheck is an extension experiment (not in the paper): rerun the
// Fig. 14 effectiveness comparison under the Linear Threshold model to
// check that the truss-diversity advantage is not an artifact of the
// Independent Cascade mechanics. Same seeds, same target selections.
func runLTCheck(w io.Writer, cfg Config) error {
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		gctIdx := core.BuildGCTIndex(g)
		seeds := pickSeeds(g, cfg)
		mc := cascade.NewLT(g).MonteCarlo(seeds, cfg.runs(), cfg.seed()+61)
		t := &Table{
			Title:   fmt.Sprintf("Expected activated among top-r on %s under Linear Threshold (extension)", name),
			Headers: []string{"r", "Truss-Div", "Core-Div", "Comp-Div", "Random"},
		}
		for _, r := range []int{50, 100} {
			targets, err := modelTargets(g, gctIdx, r, seeds, cfg.seed()+int64(r))
			if err != nil {
				return err
			}
			t.AddRow(r,
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Truss-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Core-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Comp-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Random"])))
		}
		t.Fprint(w)
	}
	return nil
}
