package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Config controls experiment scale.
type Config struct {
	Quick    bool     // small datasets, fewer Monte-Carlo runs
	Seed     int64    // base RNG seed for simulations
	MCRuns   int      // Monte-Carlo cascades (0 = default)
	Datasets []string // override the per-figure dataset choice (tests)
	Workers  int      // worker-pool size for the parallel experiment (0 = GOMAXPROCS)
	Updates  int      // edits per Apply batch for the dynamic experiment (0 = default)
	Measure  string   // restrict the measures experiment to one measure ("" = all)
	OutDir   string   // where machine-readable artifacts land ("" = working dir)
	Force    bool     // overwrite guarded baselines (e.g. a single-core BENCH_parallel.json)
}

func (c Config) tier() int {
	if c.Quick {
		return 1
	}
	return 2
}

func (c Config) runs() int {
	if c.MCRuns > 0 {
		return c.MCRuns
	}
	if c.Quick {
		return 300
	}
	return 2000
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

// perfDatasets picks the three networks the paper's Fig. 8-11 use
// (Gowalla, LiveJournal, Orkut) or their small-tier stand-ins, unless the
// caller overrode the choice.
func (c Config) perfDatasets() []string {
	if len(c.Datasets) > 0 {
		return c.Datasets
	}
	if c.Quick {
		return []string{"wiki-sim", "enron-sim", "gowalla-sim"}
	}
	return []string{"gowalla-sim", "livejournal-sim", "orkut-sim"}
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID          string
	Paper       string // which artifact this reproduces
	Description string
	Run         func(w io.Writer, cfg Config) error
}

var experiments = []Experiment{
	{"table1", "Table 1", "network statistics of every dataset", runTable1},
	{"fig3", "Figure 3", "edge-trussness distribution on four networks", runFig3},
	{"table2", "Table 2", "runtime and search space of baseline/bound/TSD (k=3, r=100)", runTable2},
	{"fig8", "Figure 8", "runtime vs k for all six methods", runFig8},
	{"fig9", "Figure 9", "search space vs k for baseline/bound/TSD", runFig9},
	{"table3", "Table 3", "index size, construction time, query time: TSD vs GCT", runTable3},
	{"table4", "Table 4", "ego-network extraction and decomposition time: TSD vs GCT", runTable4},
	{"fig10", "Figure 10", "TSD runtime varying k and r", runFig10},
	{"fig11", "Figure 11", "Hybrid vs GCT varying r", runFig11},
	{"fig12", "Figure 12", "scalability on power-law graphs", runFig12},
	{"fig13", "Figure 13", "activation rate vs truss-diversity score interval", runFig13},
	{"fig14", "Figure 14", "activated count among top-r per diversity model", runFig14},
	{"fig15", "Figure 15", "activation latency of top-100 results per model", runFig15},
	{"fig18", "Figure 18", "TCP-index vs TSD-index comparison on the paper's example", runFig18},
	{"exp10", "Figure 16", "case study: Truss-Div top-1 ego-network on DBLP-sim", runExp10},
	{"exp11", "Figure 17", "case study: Comp-Div and Core-Div top-1 on DBLP-sim", runExp11},
	{"table5", "Table 5", "ego-network quality statistics of the top-1 results", runTable5},
	{"ltcheck", "extension", "Fig. 14 robustness check under the Linear Threshold model", runLTCheck},
	{"parallel", "extension", "serial vs parallel TopR per engine; writes BENCH_parallel.json", runParallel},
	{"store", "extension", "cold build vs warm index-store load at startup; writes BENCH_store.json", runStore},
	{"dynamic", "extension", "incremental DB.Apply vs cold rebuild under edge updates; writes BENCH_dynamic.json", runDynamic},
	{"measures", "extension", "per-measure top-r serving: online vs bound vs prepared rankings; writes BENCH_measures.json", runMeasures},
	{"cluster", "extension", "sharded scatter-gather vs single node (1/2/4 local shards); writes BENCH_cluster.json", runCluster},
	{"pfree", "extension", "parameter-free top-r: online fallback vs prepared ranking; writes BENCH_pfree.json", runPFree},
}

// All returns every registered experiment in paper order.
func All() []Experiment { return experiments }

// ByID looks an experiment up by its identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order, writing to w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range experiments {
		fmt.Fprintf(w, "### %s (%s): %s\n\n", e.ID, e.Paper, e.Description)
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("bench: %s: %w", e.ID, err)
		}
	}
	return nil
}

// writeArtifact marshals a machine-readable report into cfg.OutDir
// (created if missing) and returns the path written.
func writeArtifact(cfg Config, file string, report any) (string, error) {
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return "", fmt.Errorf("bench: %w", err)
		}
	}
	path := filepath.Join(cfg.OutDir, file)
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return path, nil
}

// IDs returns the sorted experiment identifiers (for CLI help).
func IDs() []string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
