package bench

import (
	"fmt"
	"io"
	"time"

	"trussdiv/internal/baseline"
	"trussdiv/internal/core"
	"trussdiv/internal/ego"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

// runTable1 reproduces Table 1: |V|, |E|, d_max, τ*_G, τ*_ego, T.
func runTable1(w io.Writer, cfg Config) error {
	t := &Table{
		Title:   "Network statistics (paper Table 1)",
		Headers: []string{"Name", "stands for", "|V|", "|E|", "dmax", "tau*_G", "tau*_ego", "T"},
	}
	for _, d := range Datasets(cfg.tier()) {
		g := MustLoad(d.Name)
		tau := truss.Decompose(g)
		tauG := truss.MaxTrussness(tau)
		tauEgo := maxEgoTrussness(g)
		t.AddRow(d.Name, d.PaperName, g.N(), g.M(), g.MaxDegree(), tauG, tauEgo, g.CountTriangles())
	}
	t.Fprint(w)
	return nil
}

// maxEgoTrussness computes τ*_ego = max over vertices of the maximum edge
// trussness inside the ego-network.
func maxEgoTrussness(g *graph.Graph) int32 {
	all := ego.ExtractAll(g)
	var bd truss.BitmapDecomposer
	best := int32(0)
	for v := int32(0); int(v) < g.N(); v++ {
		if all.EdgeCount(v) == 0 {
			continue
		}
		net := all.Network(v)
		if t := truss.MaxTrussness(bd.Decompose(net.G)); t > best {
			best = t
		}
	}
	return best
}

// runFig3 reproduces Figure 3: the number of edges per trussness value on
// the four small networks; the tail should decay like a power law.
func runFig3(w io.Writer, cfg Config) error {
	for _, name := range []string{"wiki-sim", "enron-sim", "epinions-sim", "gowalla-sim"} {
		g := MustLoad(name)
		hist := truss.Distribution(truss.Decompose(g))
		t := &Table{
			Title:   fmt.Sprintf("Edge trussness distribution: %s (paper Fig. 3)", name),
			Headers: []string{"trussness", "#edges"},
		}
		for tv := 2; tv < len(hist); tv++ {
			if hist[tv] > 0 {
				t.AddRow(tv, hist[tv])
			}
		}
		t.Fprint(w)
	}
	return nil
}

// runTable2 reproduces Table 2: running time and search space of baseline,
// bound and TSD at k=3, r=100, with speedup ratio Rt and pruning ratio Rs.
func runTable2(w io.Writer, cfg Config) error {
	const k, r = 3, 100
	t := &Table{
		Title: "Runtime and search space, k=3 r=100 (paper Table 2)",
		Headers: []string{"Network", "baseline", "bound", "TSD", "Rt",
			"sp.base", "sp.bound", "sp.TSD", "Rs"},
	}
	for _, d := range Datasets(cfg.tier()) {
		g := MustLoad(d.Name)
		var baseStats, boundStats, tsdStats *core.Stats
		baseTime := Timed(func() { _, baseStats, _ = core.NewOnline(g).TopR(k, r) })
		boundTime := Timed(func() { _, boundStats, _ = core.NewBound(g).TopR(k, r) })
		idx := core.BuildTSDIndex(g) // index construction excluded, as in the paper
		tsdTime := Timed(func() { _, tsdStats, _ = core.NewTSD(idx).TopR(k, r) })
		rt := float64(baseTime) / float64(tsdTime)
		rs := float64(baseStats.ScoreComputations) / float64(max(tsdStats.ScoreComputations, 1))
		t.AddRow(d.Name, baseTime, boundTime, tsdTime, fmt.Sprintf("%.0f", rt),
			baseStats.ScoreComputations, boundStats.ScoreComputations,
			tsdStats.ScoreComputations, fmt.Sprintf("%.1f", rs))
	}
	t.Fprint(w)
	return nil
}

// runFig8 reproduces Figure 8: runtime of baseline, bound, TSD, GCT,
// Comp-Div and Core-Div for k in 2..6 (r=100).
func runFig8(w io.Writer, cfg Config) error {
	const r = 100
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		tsdIdx := core.BuildTSDIndex(g)
		gctIdx := core.BuildGCTIndex(g)
		t := &Table{
			Title:   fmt.Sprintf("Runtime vs k on %s, r=%d (paper Fig. 8)", name, r),
			Headers: []string{"k", "baseline", "bound", "TSD", "GCT", "Comp-Div", "Core-Div"},
		}
		for k := int32(2); k <= 6; k++ {
			baseTime := Timed(func() { _, _, _ = core.NewOnline(g).TopR(k, r) })
			boundTime := Timed(func() { _, _, _ = core.NewBound(g).TopR(k, r) })
			tsdTime := Timed(func() { _, _, _ = core.NewTSD(tsdIdx).TopR(k, r) })
			gctTime := Timed(func() { _, _, _ = core.NewGCT(gctIdx).TopR(k, r) })
			compTime := Timed(func() { _, _ = baseline.TopR(baseline.NewCompDiv(g), g.N(), k, r) })
			coreTime := Timed(func() { _, _ = baseline.TopR(baseline.NewCoreDiv(g), g.N(), k, r) })
			t.AddRow(k, baseTime, boundTime, tsdTime, gctTime, compTime, coreTime)
		}
		t.Fprint(w)
	}
	return nil
}

// runFig9 reproduces Figure 9: search space (score computations) of
// baseline, bound and TSD for k in 2..6.
func runFig9(w io.Writer, cfg Config) error {
	const r = 100
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		tsdIdx := core.BuildTSDIndex(g)
		t := &Table{
			Title:   fmt.Sprintf("Search space vs k on %s, r=%d (paper Fig. 9)", name, r),
			Headers: []string{"k", "baseline", "bound", "TSD"},
		}
		for k := int32(2); k <= 6; k++ {
			_, boundStats, err := core.NewBound(g).TopR(k, r)
			if err != nil {
				return err
			}
			_, tsdStats, err := core.NewTSD(tsdIdx).TopR(k, r)
			if err != nil {
				return err
			}
			t.AddRow(k, g.N(), boundStats.ScoreComputations, tsdStats.ScoreComputations)
		}
		t.Fprint(w)
	}
	return nil
}

// runTable3 reproduces Table 3: index size (serialized), construction time
// and query time (k=3, r=100) for TSD vs GCT.
func runTable3(w io.Writer, cfg Config) error {
	const k, r = 3, 100
	t := &Table{
		Title: "Indexing comparison (paper Table 3)",
		Headers: []string{"Network", "graph", "TSD size", "GCT size",
			"TSD build", "GCT build", "TSD query", "GCT query"},
	}
	for _, d := range Datasets(cfg.tier()) {
		g := MustLoad(d.Name)
		var tsdIdx *core.TSDIndex
		var gctIdx *core.GCTIndex
		tsdBuild := Timed(func() { tsdIdx = core.BuildTSDIndex(g) })
		gctBuild := Timed(func() { gctIdx = core.BuildGCTIndex(g) })
		tsdQuery := Timed(func() { _, _, _ = core.NewTSD(tsdIdx).TopR(k, r) })
		gctQuery := Timed(func() { _, _, _ = core.NewGCT(gctIdx).TopR(k, r) })
		t.AddRow(d.Name,
			FormatBytes(int64(g.M())*8), // binary edge list
			FormatBytes(serializedSize(tsdIdx.WriteTo)),
			FormatBytes(serializedSize(gctIdx.WriteTo)),
			tsdBuild, gctBuild, tsdQuery, gctQuery)
	}
	t.Fprint(w)
	return nil
}

// serializedSize measures an index's on-disk footprint via its WriteTo.
func serializedSize(writeTo func(io.Writer) (int64, error)) int64 {
	n, err := writeTo(io.Discard)
	if err != nil {
		return -1
	}
	return n
}

// runTable4 reproduces Table 4: time spent in ego-network extraction and
// in ego-network truss decomposition by the TSD pipeline (per-vertex
// extraction, merge-based peeling) vs the GCT pipeline (one-shot global
// extraction, bitmap peeling).
func runTable4(w io.Writer, cfg Config) error {
	t := &Table{
		Title: "Ego-network extraction / decomposition time (paper Table 4)",
		Headers: []string{"Network", "TSD extract", "GCT extract",
			"TSD decompose", "GCT decompose"},
	}
	for _, d := range Datasets(cfg.tier()) {
		g := MustLoad(d.Name)
		n := int32(g.N())

		// TSD pipeline: per-vertex local triangle listing + peeling.
		var tsdExtract, tsdDecompose time.Duration
		for v := int32(0); v < n; v++ {
			start := time.Now()
			net := ego.ExtractOne(g, v)
			tsdExtract += time.Since(start)
			if net.G.M() == 0 {
				continue
			}
			start = time.Now()
			truss.Decompose(net.G)
			tsdDecompose += time.Since(start)
		}

		// GCT pipeline: one-shot global listing + bitmap peeling.
		var gctExtract, gctDecompose time.Duration
		var all *ego.All
		gctExtract = Timed(func() { all = ego.ExtractAll(g) })
		var bd truss.BitmapDecomposer
		for v := int32(0); v < n; v++ {
			if all.EdgeCount(v) == 0 {
				continue
			}
			start := time.Now()
			net := all.Network(v)
			gctExtract += time.Since(start)
			start = time.Now()
			bd.Decompose(net.G)
			gctDecompose += time.Since(start)
		}
		t.AddRow(d.Name, tsdExtract, gctExtract, tsdDecompose, gctDecompose)
	}
	t.Fprint(w)
	return nil
}

// runFig10 reproduces Figure 10: TSD query time varying k (3..5) and r
// (50..300).
func runFig10(w io.Writer, cfg Config) error {
	names := cfg.perfDatasets()
	for _, name := range names {
		g := MustLoad(name)
		idx := core.BuildTSDIndex(g)
		searcher := core.NewTSD(idx)
		t := &Table{
			Title:   fmt.Sprintf("TSD runtime varying k and r on %s (paper Fig. 10)", name),
			Headers: []string{"r", "k=3", "k=4", "k=5"},
		}
		for _, r := range []int{50, 100, 150, 200, 250, 300} {
			row := []any{r}
			for k := int32(3); k <= 5; k++ {
				row = append(row, Timed(func() { _, _, _ = searcher.TopR(k, r) }))
			}
			t.AddRow(row...)
		}
		t.Fprint(w)
	}
	return nil
}

// runFig11 reproduces Figure 11: Hybrid vs GCT query time as r grows
// (k=3). Hybrid reads precomputed answers but recovers contexts online.
func runFig11(w io.Writer, cfg Config) error {
	const k = 3
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		gctIdx := core.BuildGCTIndex(g)
		gct := core.NewGCT(gctIdx)
		hybrid := core.BuildHybrid(gctIdx)
		t := &Table{
			Title:   fmt.Sprintf("Hybrid vs GCT varying r on %s, k=%d (paper Fig. 11)", name, k),
			Headers: []string{"r", "Hybrid", "GCT"},
		}
		for _, r := range []int{1, 60, 120, 180, 240, 300} {
			hTime := Timed(func() { _, _, _ = hybrid.TopR(k, r) })
			gTime := Timed(func() { _, _, _ = gct.TopR(k, r) })
			t.AddRow(r, hTime, gTime)
		}
		t.Fprint(w)
	}
	return nil
}

// runFig12 reproduces Figure 12: TSD-index construction time and TSD query
// time on synthetic power-law graphs with |E| = 5|V| as |V| grows.
func runFig12(w io.Writer, cfg Config) error {
	sizes := []int{50000, 100000, 200000, 400000}
	if cfg.Quick {
		sizes = []int{20000, 40000, 80000}
	}
	t := &Table{
		Title:   "Scalability on power-law graphs, |E|=5|V| (paper Fig. 12)",
		Headers: []string{"|V|", "|E|", "index build", "TSD query (k=3,r=100)"},
	}
	for _, n := range sizes {
		g := gen.BarabasiAlbert(n, 5, 1000+int64(n))
		var idx *core.TSDIndex
		build := Timed(func() { idx = core.BuildTSDIndex(g) })
		query := Timed(func() { _, _, _ = core.NewTSD(idx).TopR(3, 100) })
		t.AddRow(n, g.M(), build, query)
	}
	t.Fprint(w)
	return nil
}
