package bench

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"time"

	"trussdiv"
)

// runMeasures benchmarks the measure axis (the §7 model comparison made
// a servable workload): for every dataset and every diversity measure it
// times the three routes a measure query can take — the generic online
// scan, the generic bound search, and the measure's rankings-backed fast
// engine (hybrid for truss, comp/kcore for the alternatives) after one
// Prepare — and verifies all three return identical answers. Numbers
// land in BENCH_measures.json, tracking the per-measure serving cost
// from PR to PR.

// MeasureRow is one (dataset, measure) timing.
type MeasureRow struct {
	Dataset string `json:"dataset"`
	Measure string `json:"measure"`
	// OnlineNS and BoundNS are per-query wall times of the generic
	// engines; RankedNS is the per-query time of the rankings-backed
	// engine once prepared, and PrepareNS what that preparation cost.
	OnlineNS  int64 `json:"online_ns"`
	BoundNS   int64 `json:"bound_ns"`
	PrepareNS int64 `json:"prepare_ns"`
	RankedNS  int64 `json:"ranked_ns"`
	// Speedup is OnlineNS / RankedNS: what the prepared fast path buys
	// over recomputing the measure from scratch per query.
	Speedup float64 `json:"speedup"`
	// Verified records that online, bound, and ranked answers matched.
	Verified bool `json:"verified"`
}

// MeasuresReport is the schema of BENCH_measures.json.
type MeasuresReport struct {
	K    int          `json:"k"`
	R    int          `json:"r"`
	Rows []MeasureRow `json:"rows"`
}

// MeasuresReportFile is the artifact runMeasures writes.
const MeasuresReportFile = "BENCH_measures.json"

// fastEngineFor names the rankings-backed engine of each measure.
func fastEngineFor(m trussdiv.Measure) string {
	switch m {
	case trussdiv.MeasureComponent:
		return "comp"
	case trussdiv.MeasureCore:
		return "kcore"
	default:
		return "hybrid"
	}
}

// measuresUnderTest honors the -measure flag (cfg.Measure): one measure
// when set, all three otherwise.
func measuresUnderTest(cfg Config) ([]trussdiv.Measure, error) {
	if cfg.Measure == "" {
		return trussdiv.AllMeasures(), nil
	}
	m, err := trussdiv.ParseMeasure(cfg.Measure)
	if err != nil {
		return nil, err
	}
	return []trussdiv.Measure{m}, nil
}

func runMeasures(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	measures, err := measuresUnderTest(cfg)
	if err != nil {
		return err
	}
	queryReps := 5
	if cfg.Quick {
		queryReps = 3
	}
	report := MeasuresReport{K: int(k), R: r}
	t := &Table{
		Title:   fmt.Sprintf("Per-measure top-r serving cost, k=%d r=%d (extension)", k, r),
		Headers: []string{"Network", "measure", "online", "bound", "prepare", "ranked", "speedup"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		for _, m := range measures {
			db, err := trussdiv.Open(g)
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			var onlineRes, boundRes, rankedRes *trussdiv.Result
			online := timePerQuery(queryReps, func() error {
				onlineRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine("online")))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s online: %w", name, m, err)
			}
			bound := timePerQuery(queryReps, func() error {
				boundRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine("bound")))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s bound: %w", name, m, err)
			}

			fast := fastEngineFor(m)
			var prepare time.Duration
			prepare += Timed(func() {
				err = db.Prepare(ctx, fast)
			})
			if err != nil {
				return fmt.Errorf("%s/%s prepare(%s): %w", name, m, fast, err)
			}
			ranked := timePerQuery(queryReps, func() error {
				rankedRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine(fast)))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s ranked(%s): %w", name, m, fast, err)
			}

			// The speedup must measure the same answers, faster.
			if err := sameAnswer(onlineRes, boundRes); err != nil {
				return fmt.Errorf("%s/%s: bound diverged from online: %w", name, m, err)
			}
			if err := sameAnswer(onlineRes, rankedRes); err != nil {
				return fmt.Errorf("%s/%s: %s diverged from online: %w", name, m, fast, err)
			}
			if !reflect.DeepEqual(onlineRes.TopR, rankedRes.TopR) {
				return fmt.Errorf("%s/%s: ranked answer not byte-identical", name, m)
			}
			speedup := float64(online) / float64(max(ranked, time.Nanosecond))
			report.Rows = append(report.Rows, MeasureRow{
				Dataset:   name,
				Measure:   string(m),
				OnlineNS:  online.Nanoseconds(),
				BoundNS:   bound.Nanoseconds(),
				PrepareNS: prepare.Nanoseconds(),
				RankedNS:  ranked.Nanoseconds(),
				Speedup:   speedup,
				Verified:  true,
			})
			t.AddRow(name, string(m), online, bound, prepare, ranked,
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	t.Fprint(w)
	path, err := writeArtifact(cfg, MeasuresReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// timePerQuery runs f reps times and returns the mean duration; the
// first error aborts (the caller inspects the captured err).
func timePerQuery(reps int, f func() error) time.Duration {
	var total time.Duration
	for i := 0; i < reps; i++ {
		var err error
		total += Timed(func() { err = f() })
		if err != nil {
			return total / time.Duration(i+1)
		}
	}
	return total / time.Duration(reps)
}
