package bench

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"trussdiv"
	"trussdiv/internal/graph"
)

// runMeasures benchmarks the measure axis (the §7 model comparison made
// a servable workload): for every dataset and every diversity measure it
// times the three routes a measure query can take — the generic online
// scan, the generic bound search, and the measure's rankings-backed fast
// engine (hybrid for truss, comp/kcore for the alternatives) after one
// Prepare — and verifies all three return identical answers. The DB runs
// with the result cache disabled so repeated queries measure execution,
// not cache hits. Numbers land in BENCH_measures.json, tracking the
// per-measure serving cost from PR to PR.

// MeasureRow is one (dataset, measure) timing.
type MeasureRow struct {
	Dataset string `json:"dataset"`
	Measure string `json:"measure"`
	// OnlineNS and BoundNS are per-query wall times of the generic
	// engines; RankedNS is the per-query time of the rankings-backed
	// engine once prepared, and PrepareNS what that preparation cost.
	OnlineNS  int64 `json:"online_ns"`
	BoundNS   int64 `json:"bound_ns"`
	PrepareNS int64 `json:"prepare_ns"`
	RankedNS  int64 `json:"ranked_ns"`
	// Speedup is OnlineNS / RankedNS: what the prepared fast path buys
	// over recomputing the measure from scratch per query.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp and BytesPerOp are the mean heap allocations and bytes
	// of one online query — the scratch-reuse hot path this table tracks
	// from PR to PR alongside its wall time.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Verified records that online, bound, and ranked answers matched.
	Verified bool `json:"verified"`
}

// PrepareAllRow compares one shared multi-structure Prepare (a single
// extraction pass feeds every requested structure) against preparing
// the same names one at a time, each paying its own ego sweep.
type PrepareAllRow struct {
	Dataset      string   `json:"dataset"`
	Names        []string `json:"names"`
	PrepareAllNS int64    `json:"prepare_all_ns"`
	PrepareSumNS int64    `json:"prepare_sum_ns"`
	Speedup      float64  `json:"speedup"`
}

// MeasuresReport is the schema of BENCH_measures.json.
type MeasuresReport struct {
	K          int             `json:"k"`
	R          int             `json:"r"`
	Rows       []MeasureRow    `json:"rows"`
	PrepareAll []PrepareAllRow `json:"prepare_all,omitempty"`
}

// MeasuresReportFile is the artifact runMeasures writes.
const MeasuresReportFile = "BENCH_measures.json"

// fastEngineFor names the rankings-backed engine of each measure.
func fastEngineFor(m trussdiv.Measure) string {
	switch m {
	case trussdiv.MeasureComponent:
		return "comp"
	case trussdiv.MeasureCore:
		return "kcore"
	default:
		return "hybrid"
	}
}

// measuresUnderTest honors the -measure flag (cfg.Measure): one measure
// when set, all three otherwise.
func measuresUnderTest(cfg Config) ([]trussdiv.Measure, error) {
	if cfg.Measure == "" {
		return trussdiv.AllMeasures(), nil
	}
	m, err := trussdiv.ParseMeasure(cfg.Measure)
	if err != nil {
		return nil, err
	}
	return []trussdiv.Measure{m}, nil
}

func runMeasures(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	measures, err := measuresUnderTest(cfg)
	if err != nil {
		return err
	}
	queryReps := 5
	if cfg.Quick {
		queryReps = 3
	}
	report := MeasuresReport{K: int(k), R: r}
	t := &Table{
		Title:   fmt.Sprintf("Per-measure top-r serving cost, k=%d r=%d (extension)", k, r),
		Headers: []string{"Network", "measure", "online", "bound", "prepare", "ranked", "speedup", "allocs/op"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		for _, m := range measures {
			// Result cache off: repeated identical queries would otherwise
			// be served from the cache, diluting every per-query mean (and
			// zeroing the allocation column) after the first reps.
			db, err := trussdiv.Open(g, trussdiv.WithResultCache(0))
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			var onlineRes, boundRes, rankedRes *trussdiv.Result
			online := timePerQuery(queryReps, func() error {
				onlineRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine("online")))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s online: %w", name, m, err)
			}
			bound := timePerQuery(queryReps, func() error {
				boundRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine("bound")))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s bound: %w", name, m, err)
			}

			fast := fastEngineFor(m)
			var prepare time.Duration
			prepare += Timed(func() {
				err = db.Prepare(ctx, fast)
			})
			if err != nil {
				return fmt.Errorf("%s/%s prepare(%s): %w", name, m, fast, err)
			}
			ranked := timePerQuery(queryReps, func() error {
				rankedRes, _, err = db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine(fast)))
				return err
			})
			if err != nil {
				return fmt.Errorf("%s/%s ranked(%s): %w", name, m, fast, err)
			}

			// The speedup must measure the same answers, faster.
			if err := sameAnswer(onlineRes, boundRes); err != nil {
				return fmt.Errorf("%s/%s: bound diverged from online: %w", name, m, err)
			}
			if err := sameAnswer(onlineRes, rankedRes); err != nil {
				return fmt.Errorf("%s/%s: %s diverged from online: %w", name, m, fast, err)
			}
			if !reflect.DeepEqual(onlineRes.TopR, rankedRes.TopR) {
				return fmt.Errorf("%s/%s: ranked answer not byte-identical", name, m)
			}
			allocs, bytes := allocsPerOp(queryReps, func() error {
				_, _, err := db.TopR(ctx, trussdiv.NewQuery(k, r,
					trussdiv.WithMeasure(m), trussdiv.ViaEngine("online")))
				return err
			})

			speedup := float64(online) / float64(max(ranked, time.Nanosecond))
			report.Rows = append(report.Rows, MeasureRow{
				Dataset:     name,
				Measure:     string(m),
				OnlineNS:    online.Nanoseconds(),
				BoundNS:     bound.Nanoseconds(),
				PrepareNS:   prepare.Nanoseconds(),
				RankedNS:    ranked.Nanoseconds(),
				Speedup:     speedup,
				AllocsPerOp: allocs,
				BytesPerOp:  bytes,
				Verified:    true,
			})
			t.AddRow(name, string(m), online, bound, prepare, ranked,
				fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", allocs))
		}
		if len(measures) >= 2 {
			var names []string
			for _, m := range measures {
				names = append(names, fastEngineFor(m))
			}
			row, err := timePrepareAll(ctx, g, names, names)
			if err != nil {
				return fmt.Errorf("%s prepare-all: %w", name, err)
			}
			row.Dataset = name
			report.PrepareAll = append(report.PrepareAll, row)
		}
	}
	t.Fprint(w)
	for _, row := range report.PrepareAll {
		fmt.Fprintf(w, "prepare-all %-12s %v: one pass %v vs one-at-a-time %v (%.2fx)\n",
			row.Dataset, row.Names,
			time.Duration(row.PrepareAllNS), time.Duration(row.PrepareSumNS), row.Speedup)
	}
	path, err := writeArtifact(cfg, MeasuresReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// timePrepareAll times one multi-structure Prepare (allNames in a single
// call, so the shared extraction pass serves them together) against
// reaching the same end state one name at a time (splitNames
// sequentially on a second DB, every singleton paying its own ego
// sweep). The caller fills in Dataset.
func timePrepareAll(ctx context.Context, g *graph.Graph, allNames, splitNames []string) (PrepareAllRow, error) {
	shared, err := trussdiv.Open(g)
	if err != nil {
		return PrepareAllRow{}, err
	}
	all := Timed(func() { err = shared.Prepare(ctx, allNames...) })
	if err != nil {
		return PrepareAllRow{}, fmt.Errorf("Prepare(%v): %w", allNames, err)
	}
	split, err := trussdiv.Open(g)
	if err != nil {
		return PrepareAllRow{}, err
	}
	var sum time.Duration
	for _, n := range splitNames {
		sum += Timed(func() { err = split.Prepare(ctx, n) })
		if err != nil {
			return PrepareAllRow{}, fmt.Errorf("Prepare(%s): %w", n, err)
		}
	}
	return PrepareAllRow{
		Names:        splitNames,
		PrepareAllNS: all.Nanoseconds(),
		PrepareSumNS: sum.Nanoseconds(),
		Speedup:      float64(sum) / float64(max(all, time.Nanosecond)),
	}, nil
}

// allocsPerOp reports the mean heap allocations and bytes of one run of
// f, from runtime.MemStats deltas across reps runs. The numbers include
// whatever the query path really does — worker goroutines, result
// assembly — not just the scorer, so they track the serving cost a
// replica pays per request.
func allocsPerOp(reps int, f func() error) (allocs, bytes int64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		if f() != nil {
			return 0, 0 // caller already surfaced the error on the timed path
		}
	}
	runtime.ReadMemStats(&after)
	return int64(after.Mallocs-before.Mallocs) / int64(reps),
		int64(after.TotalAlloc-before.TotalAlloc) / int64(reps)
}

// timePerQuery runs f reps times and returns the mean duration; the
// first error aborts (the caller inspects the captured err).
func timePerQuery(reps int, f func() error) time.Duration {
	var total time.Duration
	for i := 0; i < reps; i++ {
		var err error
		total += Timed(func() { err = f() })
		if err != nil {
			return total / time.Duration(i+1)
		}
	}
	return total / time.Duration(reps)
}
