package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"trussdiv/internal/baseline"
	"trussdiv/internal/core"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"a", "bb"},
	}
	tb.AddRow("x", 12)
	tb.AddRow("longer", 3.5)
	tb.AddRow("dur", 1500*time.Millisecond)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "longer", "3.50", "1.50s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Microsecond, "0.50ms"},
		{42 * time.Millisecond, "42.0ms"},
		{2500 * time.Millisecond, "2.50s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
	if got := FormatBytes(2 << 20); got != "2.0MB" {
		t.Errorf("FormatBytes = %q", got)
	}
	if got := FormatBytes(1536); got != "1.5KB" {
		t.Errorf("FormatBytes = %q", got)
	}
	if got := FormatBytes(12); got != "12B" {
		t.Errorf("FormatBytes = %q", got)
	}
}

func TestDatasetRegistry(t *testing.T) {
	small := Datasets(1)
	all := Datasets(2)
	if len(small) == 0 || len(all) <= len(small) {
		t.Fatalf("tiering wrong: %d small, %d all", len(small), len(all))
	}
	g1, err := Load("wiki-sim")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := Load("wiki-sim")
	if g1 != g2 {
		t.Fatal("dataset cache not reused")
	}
	if _, err := Load("no-such-dataset"); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if len(DatasetNames()) != len(all) {
		t.Fatal("DatasetNames length mismatch")
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Paper == "" || e.Description == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("table2"); !ok {
		t.Fatal("table2 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID resolved")
	}
	if len(IDs()) != len(All()) {
		t.Fatal("IDs length mismatch")
	}
}

// TestCaseStudyShape locks in the paper's Table 5 phenomenon on the
// deterministic dblp-sim graph: the three models choose different top-1
// authors with context counts 8 (Comp), 3 (Core), 6 (Truss); the Truss-Div
// winner's ego-network is ONE connected component that only the truss model
// decomposes; and it is the densest of the three.
func TestCaseStudyShape(t *testing.T) {
	g := Collab()
	trussV, compV, coreV, err := caseStudyTop1(g)
	if err != nil {
		t.Fatal(err)
	}
	if trussV == compV || trussV == coreV || compV == coreV {
		t.Fatalf("winners should differ: truss=%d comp=%d core=%d", trussV, compV, coreV)
	}
	const k = 5
	scorer := core.NewScorer(g)
	if got := scorer.Score(trussV, k); got != 6 {
		t.Fatalf("Truss-Div winner score = %d, want 6", got)
	}
	if got := baseline.NewCompDiv(g).Score(compV, k); got != 8 {
		t.Fatalf("Comp-Div winner score = %d, want 8", got)
	}
	if got := baseline.NewCoreDiv(g).Score(coreV, k); got != 3 {
		t.Fatalf("Core-Div winner score = %d, want 3", got)
	}
	// The truss winner's ego is connected, yet Comp/Core see one context.
	if got := baseline.NewCompDiv(g).Score(trussV, k); got != 1 {
		t.Fatalf("Comp-Div on truss winner = %d, want 1 (bridged blob)", got)
	}
	if got := baseline.NewCoreDiv(g).Score(trussV, k); got != 1 {
		t.Fatalf("Core-Div on truss winner = %d, want 1 (bridged 5-cores)", got)
	}
	// Density ordering: truss winner densest (paper Table 5).
	_, _, dTruss := egoStats(g, trussV)
	_, _, dComp := egoStats(g, compV)
	_, _, dCore := egoStats(g, coreV)
	if !(dTruss > dCore && dCore > dComp) {
		t.Fatalf("density ordering wrong: truss %.2f, core %.2f, comp %.2f",
			dTruss, dCore, dComp)
	}
}

func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, Config{Quick: true, Seed: 1, MCRuns: 120}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return buf.String()
}

func TestRunTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments skipped in -short")
	}
	out := runQuick(t, "table1")
	for _, name := range []string{"wiki-sim", "gowalla-sim", "tau*_G"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table1 output missing %q", name)
		}
	}
}

func TestRunTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments skipped in -short")
	}
	out := runQuick(t, "table2")
	if !strings.Contains(out, "Rt") || !strings.Contains(out, "sp.TSD") {
		t.Fatalf("table2 output malformed:\n%s", out)
	}
}

func TestRunFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments skipped in -short")
	}
	out := runQuick(t, "fig3")
	if !strings.Contains(out, "trussness") {
		t.Fatal("fig3 output malformed")
	}
}

func TestRunFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments skipped in -short")
	}
	out := runQuick(t, "fig11")
	if !strings.Contains(out, "Hybrid") || !strings.Contains(out, "GCT") {
		t.Fatal("fig11 output malformed")
	}
}

func TestRunCaseStudyExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments skipped in -short")
	}
	out := runQuick(t, "exp10")
	if !strings.Contains(out, "score(v*) = 6") {
		t.Fatalf("exp10 output missing expected score:\n%s", out)
	}
	out = runQuick(t, "exp11")
	if !strings.Contains(out, "Comp-Div top-1") || !strings.Contains(out, "Core-Div top-1") {
		t.Fatal("exp11 output malformed")
	}
	out = runQuick(t, "table5")
	if !strings.Contains(out, "Act.Prob") {
		t.Fatal("table5 output malformed")
	}
}

// runTiny exercises an experiment runner on the smallest dataset with a
// minimal cascade budget, covering the heavy per-figure code paths.
func runTiny(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, MCRuns: 40, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return buf.String()
}

func TestRunFigureExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiments skipped in -short")
	}
	for _, id := range []string{"fig9", "fig10", "fig13", "fig14", "fig15"} {
		out := runTiny(t, id)
		if !strings.Contains(out, "wiki-sim") {
			t.Fatalf("%s ignored the dataset override:\n%s", id, out)
		}
	}
}

func TestRunFig8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiments skipped in -short")
	}
	out := runTiny(t, "fig8")
	for _, col := range []string{"baseline", "bound", "TSD", "GCT", "Comp-Div", "Core-Div"} {
		if !strings.Contains(out, col) {
			t.Fatalf("fig8 output missing %s column", col)
		}
	}
}

func TestRunFig18(t *testing.T) {
	out := runTiny(t, "fig18")
	for _, want := range []string{"TCP-index of q1", "TSD-index of q1", "(q2,q3)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig18 output missing %q", want)
		}
	}
}

// TestParallelExperimentEmitsJSON runs the quick-mode parallel
// experiment and checks the machine-readable BENCH_parallel.json
// artifact: complete per-engine samples with positive wall times, so the
// perf trajectory has a baseline to diff against from this PR on.
func TestParallelExperimentEmitsJSON(t *testing.T) {
	e, ok := ByID("parallel")
	if !ok {
		t.Fatal("parallel experiment not registered")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, Workers: 4, OutDir: dir, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, ParallelReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var report ParallelReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_parallel.json is not valid JSON: %v", err)
	}
	if report.Workers != 4 || report.GOMAXPROCS < 1 {
		t.Fatalf("report header = %+v", report)
	}
	if len(report.Datasets) != 1 || report.Datasets[0].Name != "wiki-sim" {
		t.Fatalf("datasets = %+v", report.Datasets)
	}
	engines := map[string]bool{}
	for _, s := range report.Datasets[0].Engines {
		if s.SerialNS <= 0 || s.ParallelNS <= 0 || s.Speedup <= 0 {
			t.Fatalf("sample %+v has non-positive timings", s)
		}
		engines[s.Engine] = true
	}
	for _, name := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
		if !engines[name] {
			t.Fatalf("engine %s missing from report (got %v)", name, engines)
		}
	}
}

func TestFig13Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	// With the seeded protocol the activation gradient across score
	// intervals must be increasing on gowalla-sim (the Fig. 13 claim).
	e, _ := ByID("fig13")
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, MCRuns: 300, Datasets: []string{"gowalla-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	var rates []float64
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && strings.HasPrefix(fields[0], "[") {
			var r float64
			if _, err := fmt.Sscanf(fields[2], "%f", &r); err == nil {
				rates = append(rates, r)
			}
		}
	}
	if len(rates) < 2 {
		t.Fatalf("could not parse interval rates from:\n%s", buf.String())
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatalf("activation rates not increasing: %v", rates)
		}
	}
}

// TestStoreExperimentEmitsJSON runs the quick-mode store experiment on
// one small dataset and checks the BENCH_store.json artifact: the warm
// path must have been measured (and implicitly, its answers verified
// against the cold path — the experiment fails otherwise).
func TestStoreExperimentEmitsJSON(t *testing.T) {
	e, ok := ByID("store")
	if !ok {
		t.Fatal("store experiment not registered")
	}
	// A nested, not-yet-existing outdir doubles as the regression test for
	// artifact writes creating their target directory.
	dir := filepath.Join(t.TempDir(), "nested", "out")
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, OutDir: dir, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, StoreReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var report StoreReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_store.json is not valid JSON: %v", err)
	}
	if len(report.Datasets) != 1 || report.Datasets[0].Name != "wiki-sim" {
		t.Fatalf("report datasets = %+v", report.Datasets)
	}
	ds := report.Datasets[0]
	if ds.ColdStartNS <= 0 || ds.WarmStartNS <= 0 || ds.FileBytes <= 0 {
		t.Fatalf("implausible sample %+v", ds)
	}
	if ds.Speedup <= 0 {
		t.Fatalf("speedup %v not positive", ds.Speedup)
	}
}

// TestDynamicExperimentEmitsJSON runs the quick-mode dynamic experiment
// on one small dataset and checks the BENCH_dynamic.json artifact: every
// apply-vs-rebuild sample must have been measured (and implicitly, the
// five engines verified against a cold rebuild after every batch — the
// experiment fails otherwise).
func TestDynamicExperimentEmitsJSON(t *testing.T) {
	e, ok := ByID("dynamic")
	if !ok {
		t.Fatal("dynamic experiment not registered")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, Updates: 8, OutDir: dir, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, DynamicReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var report DynamicReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_dynamic.json is not valid JSON: %v", err)
	}
	if report.BatchEdges != 8 {
		t.Fatalf("batch_edges = %d, want the -updates override of 8", report.BatchEdges)
	}
	if len(report.Datasets) != 1 || report.Datasets[0].Name != "wiki-sim" {
		t.Fatalf("report datasets = %+v", report.Datasets)
	}
	ds := report.Datasets[0]
	if ds.Batches <= 0 || ds.ApplyNS <= 0 || ds.RebuildNS <= 0 || ds.Repaired <= 0 {
		t.Fatalf("implausible sample %+v", ds)
	}
	if ds.Speedup <= 0 {
		t.Fatalf("speedup %v not positive", ds.Speedup)
	}
}

// TestMeasuresExperimentEmitsJSON runs the quick-mode measures
// experiment on one small dataset and checks the BENCH_measures.json
// artifact: every (dataset, measure) row must carry positive timings and
// the Verified flag — the experiment itself fails when any engine's
// answer diverges from the online reference, so a written artifact means
// the parity held.
func TestMeasuresExperimentEmitsJSON(t *testing.T) {
	e, ok := ByID("measures")
	if !ok {
		t.Fatal("measures experiment not registered")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, OutDir: dir, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, MeasuresReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var report MeasuresReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_measures.json is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, row := range report.Rows {
		if row.Dataset != "wiki-sim" {
			t.Fatalf("unexpected dataset %q", row.Dataset)
		}
		if row.OnlineNS <= 0 || row.BoundNS <= 0 || row.RankedNS <= 0 || row.PrepareNS <= 0 {
			t.Fatalf("row %+v has non-positive timings", row)
		}
		if !row.Verified {
			t.Fatalf("row %+v not verified", row)
		}
		seen[row.Measure] = true
	}
	for _, m := range []string{"truss", "component", "core"} {
		if !seen[m] {
			t.Fatalf("measure %s missing from the report (rows: %+v)", m, report.Rows)
		}
	}
	// The -measure flag narrows the run to one measure.
	one := Config{Quick: true, Seed: 1, OutDir: t.TempDir(), Datasets: []string{"wiki-sim"}, Measure: "core"}
	if err := e.Run(&buf, one); err != nil {
		t.Fatal(err)
	}
	blob, err = os.ReadFile(filepath.Join(one.OutDir, MeasuresReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var narrowed MeasuresReport
	if err := json.Unmarshal(blob, &narrowed); err != nil {
		t.Fatal(err)
	}
	if len(narrowed.Rows) != 1 || narrowed.Rows[0].Measure != "core" {
		t.Fatalf("-measure core produced rows %+v", narrowed.Rows)
	}
	if _, err := measuresUnderTest(Config{Measure: "bogus"}); err == nil {
		t.Fatal("bad -measure value accepted")
	}
}

// TestPFreeExperimentEmitsJSON runs the quick-mode pfree experiment on
// one small dataset and checks the BENCH_pfree.json artifact: every
// (dataset, measure) row must carry positive timings and the Verified
// flag — the experiment fails when the prepared path's answer diverges
// from the online fallback, so a written artifact means the parity held.
func TestPFreeExperimentEmitsJSON(t *testing.T) {
	e, ok := ByID("pfree")
	if !ok {
		t.Fatal("pfree experiment not registered")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Quick: true, Seed: 1, OutDir: dir, Datasets: []string{"wiki-sim"}}
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, PFreeReportFile))
	if err != nil {
		t.Fatal(err)
	}
	var report PFreeReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("BENCH_pfree.json is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, row := range report.Rows {
		if row.Dataset != "wiki-sim" {
			t.Fatalf("unexpected dataset %q", row.Dataset)
		}
		if row.OnlineNS <= 0 || row.RankedNS <= 0 || row.PrepareNS <= 0 {
			t.Fatalf("row %+v has non-positive timings", row)
		}
		if !row.Verified {
			t.Fatalf("row %+v not verified", row)
		}
		seen[row.Measure] = true
	}
	for _, m := range []string{"truss", "component", "core"} {
		if !seen[m] {
			t.Fatalf("measure %s missing from the report (rows: %+v)", m, report.Rows)
		}
	}
}
