package bench

import (
	"fmt"
	"io"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/tcp"
)

// runFig18 reproduces the index comparison of paper §8.2 / Figure 18: the
// TCP-index of q1 (global k-truss community weights) against the
// TSD-index of q1 (ego-local trussness weights) on the same 9-vertex
// graph.
func runFig18(w io.Writer, cfg Config) error {
	g := gen.Fig18Graph()
	names := gen.Fig18Names()
	tcpIdx := tcp.Build(g)
	tsdIdx := core.BuildTSDIndex(g)

	fmt.Fprintf(w, "Graph G of paper Fig. 18(a): %d vertices, %d edges\n\n", g.N(), g.M())

	t1 := &Table{
		Title:   "TCP-index of q1 (paper Fig. 18b) — weights are global community levels",
		Headers: []string{"edge", "weight"},
	}
	for _, e := range tcpIdx.Forest(gen.Fig18Q1) {
		t1.AddRow(fmt.Sprintf("(%s,%s)", names[e.U], names[e.W]), e.Wt)
	}
	t1.Fprint(w)

	t2 := &Table{
		Title:   "TSD-index of q1 (paper Fig. 18c) — weights are ego-local trussness",
		Headers: []string{"edge", "weight"},
	}
	nbr := g.Neighbors(gen.Fig18Q1)
	for _, e := range tsdIdx.Forest(gen.Fig18Q1) {
		t2.AddRow(fmt.Sprintf("(%s,%s)", names[nbr[e.U]], names[nbr[e.W]]), e.T)
	}
	t2.Fprint(w)

	scorer := core.NewScorer(g)
	fmt.Fprintf(w, "Contrast on edge (q2,q3): global trussness %d (4-truss community via z5,z6),\n",
		tcpIdx.Trussness(gen.Fig18Q2, gen.Fig18Q3))
	fmt.Fprintf(w, "but trussness %d inside the ego-network of q1 (no shared triangle there).\n\n",
		scorer.EgoTrussness(gen.Fig18Q1, gen.Fig18Q2, gen.Fig18Q3))
	return nil
}
