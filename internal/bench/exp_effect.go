package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"trussdiv/internal/baseline"
	"trussdiv/internal/cascade"
	"trussdiv/internal/core"
	"trussdiv/internal/ego"
	"trussdiv/internal/graph"
)

// effectProbability is the uniform IC edge probability of the
// effectiveness experiments. The paper uses 0.01 on multi-million-edge
// networks; on our ~20x smaller substitutes we use 0.05 so cascades reach
// comparable relative spread (dense-neighborhood amplification, the effect
// Fig. 13-15 measure, needs non-vanishing within-community percolation).
const effectProbability = 0.05

// caseStudyProbability is the edge probability of the Table 5 case study.
const caseStudyProbability = 0.05

// seedCount matches the paper: 50 influence-maximization seeds.
const seedCount = 50

// seedProbability is the IC probability used only for seed *selection*.
// The paper runs IMM at p = 0.01; keeping selection at 0.01 also keeps the
// reverse-reachable sets small enough for the greedy cover to stay fast,
// while the cascades themselves run at effectProbability.
const seedProbability = 0.01

// pickSeeds selects influential seeds the way the paper does (IMM [37]);
// we use RIS greedy coverage, IMM's core technique.
func pickSeeds(g *graph.Graph, cfg Config) []int32 {
	samples := 1500
	if cfg.Quick {
		samples = 400
	}
	return cascade.MaxInfluenceRIS(g, seedProbability, seedCount, samples, cfg.seed())
}

// runFig13 reproduces Figure 13: partition vertices into four score
// intervals (k=4) and show that higher truss-based diversity predicts a
// higher activation rate.
func runFig13(w io.Writer, cfg Config) error {
	const k = 4
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		idx := core.BuildGCTIndex(g)
		seeds := pickSeeds(g, cfg)
		mc := cascade.NewIC(g, effectProbability).MonteCarlo(seeds, cfg.runs(), cfg.seed()+7)

		// Positive-score vertices, bucketed into four quartile intervals.
		type vs struct {
			v     int32
			score int
		}
		var scored []vs
		for v := int32(0); int(v) < g.N(); v++ {
			if s := idx.Score(v, k); s > 0 {
				scored = append(scored, vs{v, s})
			}
		}
		if len(scored) < 4 {
			fmt.Fprintf(w, "%s: too few scored vertices for Fig. 13\n\n", name)
			continue
		}
		sort.Slice(scored, func(i, j int) bool { return scored[i].score < scored[j].score })
		t := &Table{
			Title:   fmt.Sprintf("Activation rate per score interval on %s, k=%d (paper Fig. 13)", name, k),
			Headers: []string{"interval", "#vertices", "mean act. prob"},
		}
		// Paper-style doubling score bands: [1,2], [3,4], [5,8], [9,max].
		maxScore := scored[len(scored)-1].score
		bands := [][2]int{{1, 2}, {3, 4}, {5, 8}, {9, maxScore}}
		idx2 := 0
		for _, band := range bands {
			lo, hi := band[0], band[1]
			if lo > maxScore {
				break
			}
			var sum float64
			count := 0
			for idx2 < len(scored) && scored[idx2].score <= hi {
				sum += mc.Activation[scored[idx2].v]
				count++
				idx2++
			}
			if count == 0 {
				continue
			}
			t.AddRow(
				fmt.Sprintf("[%d,%d]", lo, min(hi, maxScore)),
				count,
				fmt.Sprintf("%.4f", sum/float64(count)),
			)
		}
		t.Fprint(w)
	}
	return nil
}

// modelTargets returns the top-r vertex sets of the four selectors used in
// Figures 14-15 (Random, Comp-Div, Core-Div, Truss-Div) at the paper's
// k=4 setting. The influence seeds are excluded from every target set —
// a seed is activated by definition, so including one would measure seed
// overlap rather than contagion susceptibility.
func modelTargets(g *graph.Graph, gctIdx *core.GCTIndex, r int, seeds []int32, seed int64) (map[string][]int32, error) {
	const k = 4
	isSeed := make(map[int32]bool, len(seeds))
	for _, s := range seeds {
		isSeed[s] = true
	}
	take := func(vs []int32) []int32 {
		out := make([]int32, 0, r)
		for _, v := range vs {
			if !isSeed[v] && len(out) < r {
				out = append(out, v)
			}
		}
		return out
	}
	vsOf := func(list []baseline.VertexScore) []int32 {
		out := make([]int32, len(list))
		for i, e := range list {
			out[i] = e.V
		}
		return out
	}

	targets := map[string][]int32{}
	over := r + len(seeds) // rank deep enough to fill r after exclusions
	comp, err := baseline.TopR(baseline.NewCompDiv(g), g.N(), k, over)
	if err != nil {
		return nil, err
	}
	targets["Comp-Div"] = take(vsOf(comp))
	coreTop, err := baseline.TopR(baseline.NewCoreDiv(g), g.N(), k, over)
	if err != nil {
		return nil, err
	}
	targets["Core-Div"] = take(vsOf(coreTop))
	res, _, err := core.NewGCT(gctIdx).TopR(k, over)
	if err != nil {
		return nil, err
	}
	truss := make([]int32, len(res.TopR))
	for i, e := range res.TopR {
		truss[i] = e.V
	}
	targets["Truss-Div"] = take(truss)
	targets["Random"] = take(vsOf(baseline.Random(g.N(), over, seed)))
	return targets, nil
}

// runFig14 reproduces Figure 14: expected number of activated vertices
// among the top-r selections of each model, r in 50..100.
func runFig14(w io.Writer, cfg Config) error {
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		gctIdx := core.BuildGCTIndex(g)
		seeds := pickSeeds(g, cfg)
		mc := cascade.NewIC(g, effectProbability).MonteCarlo(seeds, cfg.runs(), cfg.seed()+11)
		t := &Table{
			Title:   fmt.Sprintf("Expected activated among top-r on %s (paper Fig. 14)", name),
			Headers: []string{"r", "Truss-Div", "Core-Div", "Comp-Div", "Random"},
		}
		for _, r := range []int{50, 60, 70, 80, 90, 100} {
			targets, err := modelTargets(g, gctIdx, r, seeds, cfg.seed()+int64(r))
			if err != nil {
				return err
			}
			t.AddRow(r,
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Truss-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Core-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Comp-Div"])),
				fmt.Sprintf("%.2f", mc.ExpectedActivated(targets["Random"])))
		}
		t.Fprint(w)
	}
	return nil
}

// runFig15 reproduces Figure 15: how many activation rounds it takes to
// reach the top-100 vertices of each model (cumulative activated per
// round).
func runFig15(w io.Writer, cfg Config) error {
	const r = 100
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		gctIdx := core.BuildGCTIndex(g)
		seeds := pickSeeds(g, cfg)
		targets, err := modelTargets(g, gctIdx, r, seeds, cfg.seed()+21)
		if err != nil {
			return err
		}
		ic := cascade.NewIC(g, effectProbability)
		curves := map[string][]float64{}
		maxLen := 0
		for _, model := range []string{"Truss-Div", "Core-Div", "Comp-Div"} {
			c := ic.LatencyCurve(seeds, targets[model], cfg.runs(), cfg.seed()+33)
			curves[model] = c
			if len(c) > maxLen {
				maxLen = len(c)
			}
		}
		t := &Table{
			Title:   fmt.Sprintf("Cumulative activated top-100 per round on %s (paper Fig. 15)", name),
			Headers: []string{"round", "Truss-Div", "Core-Div", "Comp-Div"},
		}
		at := func(c []float64, i int) string {
			if i < len(c) {
				return fmt.Sprintf("%.2f", c[i])
			}
			if len(c) == 0 {
				return "0.00"
			}
			return fmt.Sprintf("%.2f", c[len(c)-1])
		}
		for round := 0; round < maxLen; round++ {
			t.AddRow(round,
				at(curves["Truss-Div"], round),
				at(curves["Core-Div"], round),
				at(curves["Comp-Div"], round))
		}
		t.Fprint(w)
	}
	return nil
}

// caseStudyTop1 returns the top-1 vertex of each model on the DBLP
// substitute at the paper's case-study setting k=5.
func caseStudyTop1(g *graph.Graph) (trussV, compV, coreV int32, err error) {
	const k = 5
	res, _, err := core.NewGCT(core.BuildGCTIndex(g)).TopR(k, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	trussV = res.TopR[0].V
	comp, err := baseline.TopR(baseline.NewCompDiv(g), g.N(), k, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	compV = comp[0].V
	coreTop, err := baseline.TopR(baseline.NewCoreDiv(g), g.N(), k, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	coreV = coreTop[0].V
	return trussV, compV, coreV, nil
}

// runExp10 reproduces the Figure 16 case study: the Truss-Div top-1 author
// on the DBLP substitute and its social contexts, contrasted with what the
// other two models see in the same ego-network.
func runExp10(w io.Writer, cfg Config) error {
	const k = 5
	g := Collab()
	scorer := core.NewScorer(g)
	trussV, _, _, err := caseStudyTop1(g)
	if err != nil {
		return err
	}
	score, contexts := scorer.ScoreAndContexts(trussV, k)
	fmt.Fprintf(w, "Truss-Div top-1 on dblp-sim (k=%d): author %d, score(v*) = %d\n",
		k, trussV, score)
	for i, ctx := range contexts {
		fmt.Fprintf(w, "  context %d (%d members): %v\n", i+1, len(ctx), ctx)
	}
	// The paper's contrast on the same ego-network:
	compScore := baseline.NewCompDiv(g).Score(trussV, k)
	coreScore := baseline.NewCoreDiv(g).Score(trussV, k)
	fmt.Fprintf(w, "Same ego-network under Comp-Div: %d context(s); under Core-Div: %d context(s)\n",
		compScore, coreScore)
	net := ego.ExtractOne(g, trussV)
	_, comps := net.G.ConnectedComponents()
	fmt.Fprintf(w, "Ego-network: |V|=%d |E|=%d, %d connected component(s)\n\n",
		len(net.Verts), net.G.M(), comps)
	return nil
}

// runExp11 reproduces Figure 17: the top-1 answers of Comp-Div and
// Core-Div on the same network, whose contexts are isolated blocks.
func runExp11(w io.Writer, cfg Config) error {
	const k = 5
	g := Collab()
	_, compV, coreV, err := caseStudyTop1(g)
	if err != nil {
		return err
	}
	for _, tc := range []struct {
		model baseline.Model
		v     int32
	}{
		{baseline.NewCompDiv(g), compV},
		{baseline.NewCoreDiv(g), coreV},
	} {
		ctx := tc.model.Contexts(tc.v, k)
		fmt.Fprintf(w, "%s top-1 (k=%d): author %d with %d context(s); sizes:",
			tc.model.Name(), k, tc.v, len(ctx))
		for _, c := range ctx {
			fmt.Fprintf(w, " %d", len(c))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	return nil
}

// runTable5 reproduces Table 5: ego-network statistics and the activated
// probability of each model's top-1 vertex.
func runTable5(w io.Writer, cfg Config) error {
	const k = 5
	g := Collab()
	trussV, compV, coreV, err := caseStudyTop1(g)
	if err != nil {
		return err
	}
	t := &Table{
		Title:   "Top-1 ego-network quality on dblp-sim, k=5 (paper Table 5)",
		Headers: []string{"Method", "v*", "|V|(ego)", "|E|(ego)", "Density", "|SC(v)|", "Act.Prob"},
	}
	rows := []struct {
		method string
		v      int32
		sc     int
	}{
		{"Comp-Div", compV, baseline.NewCompDiv(g).Score(compV, k)},
		{"Core-Div", coreV, baseline.NewCoreDiv(g).Score(coreV, k)},
		{"Truss-Div", trussV, core.NewScorer(g).Score(trussV, k)},
	}
	for _, row := range rows {
		nv, mv, density := egoStats(g, row.v)
		prob := centerActivationProbability(g, row.v, cfg)
		t.AddRow(row.method, row.v, nv, mv, fmt.Sprintf("%.2f", density),
			row.sc, fmt.Sprintf("%.2f", prob))
	}
	t.Fprint(w)
	return nil
}

// egoStats returns |V|, |E| and density |E|/|V| of v's ego-network.
func egoStats(g *graph.Graph, v int32) (int, int, float64) {
	net := ego.ExtractOne(g, v)
	nv, mv := len(net.Verts), net.G.M()
	if nv == 0 {
		return 0, 0, 0
	}
	return nv, mv, float64(mv) / float64(nv)
}

// centerActivationProbability follows the Table 5 protocol: form H* (the
// ego-network plus the center and its spokes), set p = 0.05, seed with 10
// random neighbors, and estimate how often the center activates.
func centerActivationProbability(g *graph.Graph, v int32, cfg Config) float64 {
	nbrs := g.Neighbors(v)
	if len(nbrs) == 0 {
		return 0
	}
	verts := make([]int32, 0, len(nbrs)+1)
	verts = append(verts, nbrs...)
	verts = append(verts, v)
	sub, l2g := g.InducedSubgraph(verts)
	local := func(global int32) int32 {
		for l, gv := range l2g {
			if gv == global {
				return int32(l)
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(cfg.seed() + 55))
	seeds := make([]int32, 0, 10)
	perm := rng.Perm(len(nbrs))
	for _, i := range perm[:min(10, len(nbrs))] {
		seeds = append(seeds, local(nbrs[i]))
	}
	mc := cascade.NewIC(sub, caseStudyProbability).MonteCarlo(seeds, cfg.runs(), cfg.seed()+56)
	return mc.Activation[local(v)]
}
