package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a plain-text table shaped like the paper's artifacts.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// FormatDuration renders a duration the way the paper's tables do:
// milliseconds below a second, seconds above.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// FormatBytes renders byte counts as KB/MB like Table 3.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Timed runs f and returns its wall-clock duration.
func Timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
