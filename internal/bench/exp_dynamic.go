package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"time"

	"trussdiv"
)

// runDynamic measures the mutable-graph write path (paper §5.3 made a
// public API): batches of edge insertions and deletions stream into a
// DB.Apply loop, and each apply's latency — incremental TSD/GCT repair
// plus the snapshot swap — is compared against the cost of rebuilding a
// fresh DB on the mutated graph (the only option the frozen API offered).
// After every batch, all five engines of the updated DB are asserted to
// answer exactly like a cold rebuild, so the speedup column measures the
// same answers, faster. Numbers land in BENCH_dynamic.json, tracking the
// apply-vs-rebuild trajectory from PR to PR.

// DynamicDatasetReport is one dataset's apply-vs-rebuild measurement,
// averaged over the update batches.
type DynamicDatasetReport struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Batches is the number of update batches applied; BatchEdges the
	// edits per batch (half insertions, half deletions).
	Batches    int `json:"batches"`
	BatchEdges int `json:"batch_edges"`
	// ApplyNS is the mean DB.Apply wall time per batch; RebuildNS the
	// mean cost of Open + Prepare(tsd, gct) on the mutated graph.
	ApplyNS   int64 `json:"apply_ns"`
	RebuildNS int64 `json:"rebuild_ns"`
	// Repaired is the mean number of ego-network structures rebuilt per
	// apply (the incremental repair's working set).
	Repaired float64 `json:"repaired"`
	// TrussRepairs counts the batches whose global truss decomposition was
	// repaired in place (vs falling back to a rebuild); TrussRegion is the
	// mean number of edges the repair re-derived per repaired batch — the
	// arXiv:1806.05523 locality bound realized against |E|.
	TrussRepairs int     `json:"truss_repairs"`
	TrussRegion  float64 `json:"truss_region"`
	// RankingsPatched is the mean number of per-k ranking tables (hybrid
	// plus per-measure) patched in place per batch.
	RankingsPatched float64 `json:"rankings_patched"`
	// Speedup is rebuild / apply wall time.
	Speedup float64 `json:"speedup"`
}

// DynamicReport is the schema of BENCH_dynamic.json.
type DynamicReport struct {
	BatchEdges int                    `json:"batch_edges"`
	Datasets   []DynamicDatasetReport `json:"datasets"`
}

// DynamicReportFile is the artifact runDynamic writes (into cfg.OutDir,
// default the working directory).
const DynamicReportFile = "BENCH_dynamic.json"

// runDynamic streams update batches through DB.Apply, times each against
// a cold rebuild, verifies all five engines agree with the rebuild, and
// emits both a table and BENCH_dynamic.json.
func runDynamic(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	batchEdges := cfg.Updates
	if batchEdges <= 0 {
		batchEdges = 16
	}
	batches := 5
	if cfg.Quick {
		batches = 3
	}
	report := DynamicReport{BatchEdges: batchEdges}
	t := &Table{
		Title: fmt.Sprintf("Incremental Apply vs cold rebuild, %d-edge batches (extension)",
			batchEdges),
		Headers: []string{"Network", "apply", "rebuild", "repaired", "truss repair", "speedup"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		db, err := trussdiv.Open(g)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		// Ready everything Apply now repairs incrementally: the ego-network
		// indexes, the truss decomposition behind hybrid's rankings, and
		// the per-measure rankings. The rebuild side prepares the same set,
		// so the speedup prices repair-vs-rebuild for truss+rankings too.
		prepared := []string{"tsd", "gct", "hybrid", "comp", "kcore"}
		if err := db.Prepare(ctx, prepared...); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rng := rand.New(rand.NewSource(cfg.seed()))
		var applyTotal, rebuildTotal time.Duration
		var repairedTotal, trussRepairs, trussRegionTotal, rankingsTotal int
		for batch := 0; batch < batches; batch++ {
			u := RandomUpdates(db.Graph(), rng, batchEdges/2, batchEdges-batchEdges/2)
			var epoch trussdiv.Epoch
			var applyErr error
			applyTotal += Timed(func() {
				epoch, applyErr = db.Apply(ctx, u)
			})
			if applyErr != nil {
				return fmt.Errorf("%s: apply batch %d: %w", name, batch, applyErr)
			}
			snap := db.Snapshot()
			if snap.Epoch() != epoch {
				return fmt.Errorf("%s: snapshot epoch %d, apply returned %d", name, snap.Epoch(), epoch)
			}
			if st := snap.ApplyStats(); st != nil {
				repairedTotal += st.Affected
				if st.TrussRepaired {
					trussRepairs++
					trussRegionTotal += st.TrussRegion
				}
				rankingsTotal += st.RankingsPatched
			}

			var rebuilt *trussdiv.DB
			var rebuildErr error
			rebuildTotal += Timed(func() {
				rebuilt, rebuildErr = trussdiv.Open(db.Graph())
				if rebuildErr == nil {
					rebuildErr = rebuilt.Prepare(ctx, prepared...)
				}
			})
			if rebuildErr != nil {
				return fmt.Errorf("%s: rebuild batch %d: %w", name, batch, rebuildErr)
			}
			// The correctness bar: the incrementally maintained DB must
			// answer every engine's query — ranked answers and recovered
			// social contexts both — exactly like the cold rebuild.
			for _, engine := range []string{"online", "bound", "tsd", "gct", "hybrid"} {
				q := trussdiv.NewQuery(k, r, trussdiv.WithContexts(), trussdiv.ViaEngine(engine))
				appliedRes, _, err := db.TopR(ctx, q)
				if err != nil {
					return fmt.Errorf("%s/%s: applied query: %w", name, engine, err)
				}
				rebuiltRes, _, err := rebuilt.TopR(ctx, q)
				if err != nil {
					return fmt.Errorf("%s/%s: rebuilt query: %w", name, engine, err)
				}
				if err := sameAnswer(appliedRes, rebuiltRes); err != nil {
					return fmt.Errorf("%s/%s: incremental apply diverged from rebuild: %w",
						name, engine, err)
				}
				if !reflect.DeepEqual(appliedRes.Contexts, rebuiltRes.Contexts) {
					return fmt.Errorf("%s/%s: incremental apply's contexts diverged from rebuild",
						name, engine)
				}
			}
		}
		apply := applyTotal / time.Duration(batches)
		rebuild := rebuildTotal / time.Duration(batches)
		speedup := float64(rebuild) / float64(max(apply, time.Nanosecond))
		repaired := float64(repairedTotal) / float64(batches)
		var region float64
		if trussRepairs > 0 {
			region = float64(trussRegionTotal) / float64(trussRepairs)
		}
		report.Datasets = append(report.Datasets, DynamicDatasetReport{
			Name:            name,
			Vertices:        g.N(),
			Edges:           g.M(),
			Batches:         batches,
			BatchEdges:      batchEdges,
			ApplyNS:         apply.Nanoseconds(),
			RebuildNS:       rebuild.Nanoseconds(),
			Repaired:        repaired,
			TrussRepairs:    trussRepairs,
			TrussRegion:     region,
			RankingsPatched: float64(rankingsTotal) / float64(batches),
			Speedup:         speedup,
		})
		t.AddRow(name, apply, rebuild, fmt.Sprintf("%.0f", repaired),
			fmt.Sprintf("%d/%d (%.0f edges)", trussRepairs, batches, region),
			fmt.Sprintf("%.2fx", speedup))
	}
	t.Fprint(w)
	path, err := writeArtifact(cfg, DynamicReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// RandomUpdates picks a valid update batch for g: insertions among absent
// vertex pairs, deletions among present edges, no overlaps. It is shared
// with the root package's apply tests — one copy of the sampling logic.
func RandomUpdates(g *trussdiv.Graph, rng *rand.Rand, nIns, nDel int) trussdiv.Updates {
	n := int32(g.N())
	var u trussdiv.Updates
	chosen := map[trussdiv.Edge]bool{}
	for len(u.Insert) < nIns {
		a, b := rng.Int31n(n), rng.Int31n(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		e := trussdiv.Edge{U: a, V: b}
		if g.HasEdge(a, b) || chosen[e] {
			continue
		}
		chosen[e] = true
		u.Insert = append(u.Insert, e)
	}
	edges := g.Edges()
	for len(u.Delete) < nDel && len(u.Delete) < len(edges) {
		e := edges[rng.Intn(len(edges))]
		if chosen[e] {
			continue
		}
		chosen[e] = true
		u.Delete = append(u.Delete, e)
	}
	return u
}
