package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"trussdiv/internal/core"
	"trussdiv/internal/truss"
)

// runParallel is the engineering extension behind the ROADMAP's "fast as
// the hardware allows" axis: it times every engine's top-r search serial
// (Workers=1) versus sharded across a worker pool, and records the
// numbers in a machine-readable BENCH_parallel.json so the performance
// trajectory of the parallel execution layer is tracked from PR to PR.
// Answers are asserted byte-equal between the two runs — the parallel
// scan's determinism guarantee, measured rather than assumed.

// ParallelEngineSample is one engine's serial-vs-parallel measurement.
type ParallelEngineSample struct {
	Engine     string  `json:"engine"`
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"` // serial / parallel wall time
}

// ParallelDecomposeSample times the cold truss decomposition serial
// (Decompose) versus sharded h-index peeling (DecomposeParallel), the
// build-time half of the parallel layer. Tau arrays are asserted
// byte-equal before the sample is recorded.
type ParallelDecomposeSample struct {
	SerialNS   int64   `json:"serial_ns"`
	ParallelNS int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"` // serial / parallel wall time
}

// ParallelDatasetReport groups the samples of one dataset.
type ParallelDatasetReport struct {
	Name      string                  `json:"name"`
	Vertices  int                     `json:"vertices"`
	Edges     int                     `json:"edges"`
	Decompose ParallelDecomposeSample `json:"decompose"`
	Engines   []ParallelEngineSample  `json:"engines"`
}

// ParallelReport is the schema of BENCH_parallel.json.
type ParallelReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	// SingleCoreWarning flags a run that measured "parallelism" on one
	// core: every speedup in the file is then noise around 1.0x and must
	// not be read as a regression or an improvement.
	SingleCoreWarning bool                    `json:"single_core_warning,omitempty"`
	Workers           int                     `json:"workers"`
	K                 int32                   `json:"k"`
	R                 int                     `json:"r"`
	Contexts          bool                    `json:"contexts"`
	Datasets          []ParallelDatasetReport `json:"datasets"`
}

// ParallelReportFile is the artifact runParallel writes (into cfg.OutDir,
// default the working directory).
const ParallelReportFile = "BENCH_parallel.json"

// runParallel measures serial vs parallel TopR per engine and emits both
// a table and BENCH_parallel.json.
func runParallel(w io.Writer, cfg Config) error {
	const k, r = int32(4), 100
	ctx := context.Background()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := ParallelReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		SingleCoreWarning: runtime.GOMAXPROCS(0) == 1,
		Workers:           workers,
		K:                 k,
		R:                 r,
		Contexts:          true,
	}
	if report.SingleCoreWarning {
		fmt.Fprintf(w, "WARNING: GOMAXPROCS=1 — the parallel measurements below ran on a single core;\n"+
			"every speedup is noise around 1.0x. Re-run with GOMAXPROCS set to the machine's\n"+
			"core count before reading anything into these numbers.\n\n")
	}
	t := &Table{
		Title:   fmt.Sprintf("Serial vs parallel TopR, k=%d r=%d, %d workers (extension)", k, r, workers),
		Headers: []string{"Network", "engine", "serial", "parallel", "speedup"},
	}
	for _, name := range cfg.perfDatasets() {
		g := MustLoad(name)
		var serialTau, parallelTau []int32
		decomposeSerial := Timed(func() { serialTau = truss.Decompose(g) })
		decomposeParallel := Timed(func() { parallelTau = truss.DecomposeParallel(g, workers) })
		if !slices.Equal(serialTau, parallelTau) {
			return fmt.Errorf("%s: parallel decomposition diverges from serial tau", name)
		}
		tsdIdx := core.BuildTSDIndexParallel(g, workers)
		gctIdx := core.BuildGCTIndexParallel(g, workers)
		searchers := []struct {
			name string
			s    interface {
				Search(ctx context.Context, p core.Params) (*core.Result, *core.Stats, error)
			}
		}{
			{"online", core.NewOnline(g)},
			{"bound", core.NewBound(g)},
			{"tsd", core.NewTSD(tsdIdx)},
			{"gct", core.NewGCT(gctIdx)},
			{"hybrid", core.BuildHybrid(gctIdx)},
		}
		ds := ParallelDatasetReport{
			Name: name, Vertices: g.N(), Edges: g.M(),
			Decompose: ParallelDecomposeSample{
				SerialNS:   decomposeSerial.Nanoseconds(),
				ParallelNS: decomposeParallel.Nanoseconds(),
				Speedup:    float64(decomposeSerial) / float64(max(decomposeParallel, time.Nanosecond)),
			},
		}
		t.AddRow(name, "decompose", decomposeSerial, decomposeParallel,
			fmt.Sprintf("%.2fx", ds.Decompose.Speedup))
		for _, eng := range searchers {
			var serialRes, parallelRes *core.Result
			var serialErr, parallelErr error
			serial := Timed(func() {
				serialRes, _, serialErr = eng.s.Search(ctx, core.Params{K: k, R: r, Workers: 1})
			})
			parallel := Timed(func() {
				parallelRes, _, parallelErr = eng.s.Search(ctx, core.Params{K: k, R: r, Workers: workers})
			})
			if serialErr != nil || parallelErr != nil {
				return fmt.Errorf("%s/%s: search failed (serial: %v, parallel: %v)",
					name, eng.name, serialErr, parallelErr)
			}
			if err := sameAnswer(serialRes, parallelRes); err != nil {
				return fmt.Errorf("%s/%s: serial and parallel answers differ: %w", name, eng.name, err)
			}
			speedup := float64(serial) / float64(max(parallel, time.Nanosecond))
			ds.Engines = append(ds.Engines, ParallelEngineSample{
				Engine:     eng.name,
				SerialNS:   serial.Nanoseconds(),
				ParallelNS: parallel.Nanoseconds(),
				Speedup:    speedup,
			})
			t.AddRow(name, eng.name, serial, parallel, fmt.Sprintf("%.2fx", speedup))
		}
		report.Datasets = append(report.Datasets, ds)
	}
	t.Fprint(w)

	// Guard the committed baseline: a single-core run must never silently
	// replace an existing BENCH_parallel.json — its speedups are noise and
	// would read as a perf regression of the parallel layer. -force opts
	// into the overwrite (and the file still carries single_core_warning).
	target := filepath.Join(cfg.OutDir, ParallelReportFile)
	if report.SingleCoreWarning && !cfg.Force {
		if _, statErr := os.Stat(target); statErr == nil {
			return fmt.Errorf("refusing to overwrite %s with a single-core run "+
				"(GOMAXPROCS=1): re-run on a multicore machine, or pass -force "+
				"to record it anyway with single_core_warning=true", target)
		}
	}
	path, err := writeArtifact(cfg, ParallelReportFile, report)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n\n", path)
	return nil
}

// sameAnswer verifies the determinism guarantee the parallel layer makes:
// identical ranked answers (the paper's §2.3 output) for any worker count.
func sameAnswer(a, b *core.Result) error {
	if a == nil || b == nil {
		return fmt.Errorf("missing result (%v, %v)", a == nil, b == nil)
	}
	if len(a.TopR) != len(b.TopR) {
		return fmt.Errorf("answer sizes %d vs %d", len(a.TopR), len(b.TopR))
	}
	for i := range a.TopR {
		if a.TopR[i] != b.TopR[i] {
			return fmt.Errorf("position %d: %+v vs %+v", i, a.TopR[i], b.TopR[i])
		}
	}
	return nil
}
