// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§7) on seeded synthetic substitutes of
// the SNAP/DBLP datasets (see DESIGN.md §3 for the substitution rationale).
//
// Each experiment prints rows/series shaped like the paper's artifact; the
// reproduction target is the qualitative shape (who wins, by what ratio,
// where crossovers fall), not absolute times.
package bench

import (
	"fmt"
	"sort"
	"sync"

	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
)

// Dataset is a named synthetic substitute for one of the paper's networks.
type Dataset struct {
	Name      string // our name
	PaperName string // the network it stands in for (Table 1)
	Tier      int    // 1 = small/fast, 2 = large (skipped in -quick mode)
	Build     func() *graph.Graph
}

// registry mirrors the paper's Table 1 line-up at laptop scale. Overlay
// parameters are tuned so the small networks have maximum trussness in the
// teens and socfb-sim stays truss-poor (socfb-konect has τ*_G = 7).
var registry = []Dataset{
	{"wiki-sim", "Wiki-Vote", 1, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 4000, Attach: 5, Cliques: 700, MinSize: 4, MaxSize: 14, Window: 120, AnchorBias: 0.5, Diffuse: 80, Seed: 101,
		})
	}},
	{"enron-sim", "Email-Enron", 1, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 8000, Attach: 4, Cliques: 1200, MinSize: 4, MaxSize: 12, Window: 150, AnchorBias: 0.5, Diffuse: 160, Seed: 102,
		})
	}},
	{"epinions-sim", "Epinions", 1, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 15000, Attach: 5, Cliques: 2000, MinSize: 4, MaxSize: 16, Window: 200, AnchorBias: 0.5, Diffuse: 300, Seed: 103,
		})
	}},
	{"gowalla-sim", "Gowalla", 1, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 25000, Attach: 4, Cliques: 3000, MinSize: 4, MaxSize: 14, Window: 250, AnchorBias: 0.5, Diffuse: 500, Seed: 104,
		})
	}},
	{"notredame-sim", "NotreDame", 2, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 40000, Attach: 3, Cliques: 5000, MinSize: 4, MaxSize: 18, Window: 300, AnchorBias: 0.5, Diffuse: 600, Seed: 105,
		})
	}},
	{"livejournal-sim", "LiveJournal", 2, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 60000, Attach: 5, Cliques: 8000, MinSize: 4, MaxSize: 20, Window: 400, AnchorBias: 0.5, Diffuse: 800, Seed: 106,
		})
	}},
	{"socfb-sim", "socfb-konect", 2, func() *graph.Graph {
		// Pure preferential attachment: few triangles, shallow trussness,
		// mirroring socfb-konect's τ*_G = 7 despite its size.
		return gen.BarabasiAlbert(100000, 3, 107)
	}},
	{"orkut-sim", "Orkut", 2, func() *graph.Graph {
		return gen.CommunityOverlay(gen.OverlayConfig{
			N: 50000, Attach: 8, Cliques: 9000, MinSize: 4, MaxSize: 18, Window: 350, AnchorBias: 0.5, Diffuse: 600, Seed: 108,
		})
	}},
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Datasets returns the registered datasets up to the given tier (1 = small
// only, 2 = all).
func Datasets(maxTier int) []Dataset {
	var out []Dataset
	for _, d := range registry {
		if d.Tier <= maxTier {
			out = append(out, d)
		}
	}
	return out
}

// DatasetNames lists registered dataset names in registry order.
func DatasetNames() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return names
}

// Load builds (or returns the cached) graph for a dataset name.
func Load(name string) (*graph.Graph, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[name]; ok {
		return g, nil
	}
	for _, d := range registry {
		if d.Name == name {
			g := d.Build()
			cache[name] = g
			return g, nil
		}
	}
	known := DatasetNames()
	sort.Strings(known)
	return nil, fmt.Errorf("bench: unknown dataset %q (known: %v)", name, known)
}

// MustLoad is Load for the harness's own experiments, which only reference
// registered names.
func MustLoad(name string) *graph.Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Collab returns the cached DBLP-substitute collaboration network used by
// the case study (Exp-10/11/12).
func Collab() *graph.Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	const key = "dblp-sim"
	if g, ok := cache[key]; ok {
		return g
	}
	g := gen.Collaboration(gen.DefaultCollabConfig())
	cache[key] = g
	return g
}
