package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/pfree"
	"trussdiv/internal/truss"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden index-store file")

// bothModes runs a subtest under each read mode, so every behavioral
// contract is pinned through the mmap path and the decode path alike.
func bothModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	t.Helper()
	for _, mode := range []Mode{ModeMmap, ModeDecode} {
		t.Run(mode.String(), func(t *testing.T) { f(t, mode) })
	}
}

// buildIndexes constructs every truss-measure section for g, the way
// cmd/tsdindex does.
func buildIndexes(g *graph.Graph) Indexes {
	tau, sup := truss.DecomposeFull(g, 1)
	gct := core.BuildGCTIndex(g)
	return Indexes{
		Tau:      tau,
		Sup:      sup,
		TSD:      core.BuildTSDIndex(g),
		GCT:      gct,
		Rankings: core.BuildHybrid(gct).Rankings(),
	}
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Fig1Graph()
}

// saveTo writes a full index file into a temp dir and returns its path.
func saveTo(t *testing.T, g *graph.Graph, ix Indexes) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), FileName)
	if err := Save(path, g, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

func tsdBytes(t *testing.T, idx *core.TSDIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func gctBytes(t *testing.T, idx *core.GCTIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripAllSections(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	path := saveTo(t, g, ix)

	bothModes(t, func(t *testing.T, mode Mode) {
		f, err := OpenFile(path, g, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		want := []SectionRef{
			{SecTruss, core.MeasureTruss}, {SecSupports, core.MeasureTruss},
			{SecTSD, core.MeasureTruss}, {SecGCT, core.MeasureTruss},
			{SecRankings, core.MeasureTruss}, {SecGraph, core.MeasureTruss},
		}
		if got := f.Sections(); !reflect.DeepEqual(got, want) {
			t.Fatalf("sections = %v, want %v", got, want)
		}

		tau, err := f.Tau()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tau, ix.Tau) {
			t.Errorf("truss decomposition changed across the round trip")
		}
		sup, err := f.Sup()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sup, ix.Sup) {
			t.Errorf("supports changed across the round trip")
		}
		rankings, err := f.Rankings()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rankings, ix.Rankings) {
			t.Errorf("rankings changed across the round trip")
		}
		// The index structures have unexported scratch; compare through
		// their serialized forms, which cover every searchable field.
		tsd, err := f.TSD()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tsdBytes(t, tsd), tsdBytes(t, ix.TSD)) {
			t.Errorf("TSD index changed across the round trip")
		}
		gct, err := f.GCT()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gctBytes(t, gct), gctBytes(t, ix.GCT)) {
			t.Errorf("GCT index changed across the round trip")
		}
		gg, err := f.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if gg.N() != g.N() || gg.M() != g.M() || !reflect.DeepEqual(gg.Edges(), g.Edges()) {
			t.Errorf("graph section changed across the round trip")
		}
	})

	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tau, ix.Tau) || !reflect.DeepEqual(back.Sup, ix.Sup) {
		t.Errorf("ReadAll lost the truss arrays")
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Errorf("ReadAll lost the rankings")
	}
}

func TestPartialFileOnlyHasWrittenSections(t *testing.T) {
	g := testGraph(t)
	ix := Indexes{Tau: truss.Decompose(g)}
	path := saveTo(t, g, ix)
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tau == nil || back.Sup != nil || back.TSD != nil || back.GCT != nil || back.Rankings != nil {
		t.Fatalf("partial file round-tripped to %+v", back)
	}
}

// TestV3OffsetsAligned pins the mmap precondition: every payload in a v3
// file starts on an 8-byte file offset, and a v3 reader refuses a file
// where one does not.
func TestV3OffsetsAligned(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, buildIndexes(g))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := int(binary.LittleEndian.Uint32(blob[40:44]))
	for i := 0; i < count; i++ {
		e := blob[headerSize+tocEntrySize*i:]
		if off := binary.LittleEndian.Uint64(e[12:20]); off%8 != 0 {
			t.Fatalf("TOC entry %d: offset %d not 8-byte aligned", i, off)
		}
	}

	// Mis-align the first payload by pointing its entry one byte late (the
	// payload bytes no longer matter: alignment is checked before the CRC).
	off := binary.LittleEndian.Uint64(blob[headerSize+12:])
	binary.LittleEndian.PutUint64(blob[headerSize+12:], off+1)
	length := binary.LittleEndian.Uint64(blob[headerSize+20:])
	binary.LittleEndian.PutUint64(blob[headerSize+20:], length-1)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for an unaligned v3 offset", err)
	}
}

// TestGoldenFormat pins the byte-exact on-disk layout of a fully
// populated version-3 file (truss sections, supports, graph CSR, plus one
// measure-tagged rankings section per alternative measure): any change to
// the header, TOC, or a slab codec fails here and must come with a
// format-version bump (see the package comment's compatibility policy).
// Regenerate deliberately with
// `go test ./internal/store -run TestGoldenFormat -update`.
func TestGoldenFormat(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, g, ix); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_fig1_v3.tdx")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized store (%d bytes) differs from golden file (%d bytes); "+
			"a format change needs a Version bump and -update", buf.Len(), len(want))
	}
}

// TestGoldenFormatPFree pins the byte-exact layout of a v3 file that
// additionally carries the parameter-free rankings (one measure-tagged
// pfree section per measure). The plain-v3 golden above is untouched —
// pfree sections are only emitted when present, so pre-pfree files stay
// byte-identical. Regenerate deliberately with
// `go test ./internal/store -run TestGoldenFormatPFree -update`.
func TestGoldenFormatPFree(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	ix.PFree = map[core.Measure][]core.VertexScore{}
	for _, m := range core.AllMeasures() {
		ix.PFree[m] = pfree.BuildRanking(g, m)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, g, ix); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_fig1_v3_pfree.tdx")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized store (%d bytes) differs from golden file (%d bytes); "+
			"a pfree slab layout change needs a Version bump and -update", buf.Len(), len(want))
	}
	// And the golden keeps loading: every pfree section decodes to what
	// a fresh build produces.
	f, err := OpenFile(golden, g)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, m := range core.AllMeasures() {
		ranked, err := f.PFreeRanking(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !reflect.DeepEqual(ranked, ix.PFree[m]) {
			t.Fatalf("%s pfree ranking in the golden diverges from a fresh build", m)
		}
	}
}

// TestV1GoldenStillLoads is the backward-compatibility gate: the
// checked-in golden_fig1.tdx was written by the version-1 writer (before
// the measure axis existed) and must keep loading — every section
// interpreted as measure=truss — for as long as minVersion stays 1. It
// is deliberately never regenerated.
func TestV1GoldenStillLoads(t *testing.T) {
	g := testGraph(t)
	f, err := OpenFile(filepath.Join("testdata", "golden_fig1.tdx"), g)
	if err != nil {
		t.Fatalf("v1 golden no longer opens: %v", err)
	}
	defer f.Close()
	if f.Version() != 1 {
		t.Fatalf("golden_fig1.tdx reports version %d, want 1 (file overwritten?)", f.Version())
	}
	if f.Mode() != ModeDecode {
		t.Fatalf("v1 file served in %v mode; pre-v3 files must decode", f.Mode())
	}
	for _, s := range []Section{SecTruss, SecTSD, SecGCT, SecRankings} {
		if !f.Has(s) {
			t.Fatalf("v1 golden lost section %v", s)
		}
		if !f.HasMeasure(s, core.MeasureTruss) {
			t.Fatalf("v1 section %v not visible under measure=truss", s)
		}
	}
	if f.HasMeasure(SecRankings, core.MeasureComponent) || f.HasMeasure(SecRankings, core.MeasureCore) {
		t.Fatal("v1 file claims measure-tagged sections it cannot contain")
	}
	// The payloads must decode to exactly what a fresh build produces.
	ix := buildIndexes(g)
	tau, err := f.Tau()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tau, ix.Tau) {
		t.Fatal("v1 truss section decodes differently from a fresh build")
	}
	rankings, err := f.Rankings()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rankings, ix.Rankings) {
		t.Fatal("v1 rankings section decodes differently from a fresh build")
	}
}

// TestV2GoldenStillLoads is the same gate for format v2: the checked-in
// golden_fig1_v2.tdx (measure-tagged TOC, stream-serialized payloads) must
// keep loading through the decode path. It is deliberately never
// regenerated.
func TestV2GoldenStillLoads(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join("testdata", "golden_fig1_v2.tdx")
	f, err := OpenFile(path, g)
	if err != nil {
		t.Fatalf("v2 golden no longer opens: %v", err)
	}
	defer f.Close()
	if f.Version() != 2 {
		t.Fatalf("golden_fig1_v2.tdx reports version %d, want 2 (file overwritten?)", f.Version())
	}
	if f.Mode() != ModeDecode {
		t.Fatalf("v2 file served in %v mode; pre-v3 files must decode", f.Mode())
	}
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tau, ix.Tau) {
		t.Fatal("v2 truss section decodes differently from a fresh build")
	}
	if back.Sup != nil {
		t.Fatal("v2 file cannot contain a supports section")
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Fatal("v2 rankings section decodes differently from a fresh build")
	}
	for _, m := range []core.Measure{core.MeasureComponent, core.MeasureCore} {
		if !reflect.DeepEqual(back.MeasureRankings[m], ix.MeasureRankings[m]) {
			t.Fatalf("v2 %s rankings decode differently from a fresh build", m)
		}
	}
	if !bytes.Equal(tsdBytes(t, back.TSD), tsdBytes(t, ix.TSD)) {
		t.Fatal("v2 TSD section decodes differently from a fresh build")
	}
	if !bytes.Equal(gctBytes(t, back.GCT), gctBytes(t, ix.GCT)) {
		t.Fatal("v2 GCT section decodes differently from a fresh build")
	}
}

// TestMeasureRankingsRoundTrip exercises the measure-tagged sections:
// per-k rankings of the component and core measures survive a save/load
// cycle and stay isolated from the truss rankings.
func TestMeasureRankingsRoundTrip(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	path := saveTo(t, g, ix)
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Measure{core.MeasureComponent, core.MeasureCore} {
		if !reflect.DeepEqual(back.MeasureRankings[m], ix.MeasureRankings[m]) {
			t.Errorf("%s rankings changed across the round trip", m)
		}
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Error("truss rankings polluted by measure-tagged sections")
	}
	bothModes(t, func(t *testing.T, mode Mode) {
		f, err := OpenFile(path, g, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if got := len(f.Sections()); got != 8 {
			t.Fatalf("file holds %d sections, want 8 (6 truss + 2 measure rankings)", got)
		}
		for _, m := range []core.Measure{core.MeasureComponent, core.MeasureCore} {
			perK, err := f.MeasureRankings(m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(perK, ix.MeasureRankings[m]) {
				t.Errorf("%s rankings changed through the %v handle", m, mode)
			}
		}
	})
}

// TestPFreeRankingRoundTrip pins the parameter-free slab: one
// measure-tagged pfree section per measure survives the round trip
// intact through both read modes, without polluting the truss sections,
// and an empty-but-present ranking stays non-nil (present ≠ absent).
func TestPFreeRankingRoundTrip(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.PFree = map[core.Measure][]core.VertexScore{
		core.MeasureTruss:     pfree.BuildRanking(g, core.MeasureTruss),
		core.MeasureComponent: pfree.BuildRanking(g, core.MeasureComponent),
		core.MeasureCore:      {},
	}
	path := saveTo(t, g, ix)
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range core.AllMeasures() {
		if !reflect.DeepEqual(back.PFree[m], ix.PFree[m]) {
			t.Errorf("%s pfree ranking changed across the round trip", m)
		}
	}
	if back.PFree[core.MeasureCore] == nil {
		t.Error("empty pfree ranking decoded to nil; empty must stay distinct from absent")
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Error("truss rankings polluted by pfree sections")
	}
	bothModes(t, func(t *testing.T, mode Mode) {
		f, err := OpenFile(path, g, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for _, m := range core.AllMeasures() {
			if !f.HasMeasure(SecPFree, m) {
				t.Fatalf("%s pfree section missing from the TOC", m)
			}
			ranked, err := f.PFreeRanking(m)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ranked, ix.PFree[m]) {
				t.Errorf("%s pfree ranking changed through the %v handle", m, mode)
			}
		}
	})
}

// TestPFreeSlabRejectsCorruption walks the pfree slab's structural
// validation: a count above the vertex budget and an out-of-range
// vertex id both surface as ErrCorrupt (the mmap path relies on these
// checks, its CRC pass being deferred).
func TestPFreeSlabRejectsCorruption(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.PFree = map[core.Measure][]core.VertexScore{
		core.MeasureTruss: pfree.BuildRanking(g, core.MeasureTruss),
	}
	path := saveTo(t, g, ix)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pfreeOffset := func(b []byte) uint64 {
		count := int(binary.LittleEndian.Uint32(b[40:44]))
		for i := 0; i < count; i++ {
			e := b[headerSize+tocEntrySize*i:]
			if Section(binary.LittleEndian.Uint32(e[0:4])) == SecPFree {
				return binary.LittleEndian.Uint64(e[12:20])
			}
		}
		t.Fatal("no pfree section in the file")
		return 0
	}
	damage := []struct {
		name string
		mut  func(payload []byte)
	}{
		{"count above budget", func(p []byte) {
			binary.LittleEndian.PutUint64(p, uint64(g.N())+1)
		}},
		{"vertex out of range", func(p []byte) {
			binary.LittleEndian.PutUint32(p[8:], uint32(g.N())) // first pair's vertex
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			bad := append([]byte(nil), blob...)
			d.mut(bad[pfreeOffset(bad):])
			badPath := filepath.Join(t.TempDir(), FileName)
			if err := os.WriteFile(badPath, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			bothModes(t, func(t *testing.T, mode Mode) {
				f, err := OpenFile(badPath, g, WithMode(mode))
				if err != nil {
					if errors.Is(err, ErrCorrupt) {
						return // decode mode may reject at open via the CRC pass
					}
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.PFreeRanking(core.MeasureTruss); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("err = %v, want ErrCorrupt", err)
				}
			})
		})
	}
}

// TestMmapMatchesDecode is the mode-equivalence gate: every section of a
// fully populated file must deserialize to identical values through the
// zero-copy mmap views and the classic decode path.
func TestMmapMatchesDecode(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.Epoch = 7
	path := saveTo(t, g, ix)

	mm, err := OpenFile(path, g, WithMode(ModeMmap))
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	dec, err := OpenFile(path, g, WithMode(ModeDecode))
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	if !mmapSupported || !hostLittleEndian {
		t.Skipf("platform cannot mmap (mmapSupported=%v, littleEndian=%v)", mmapSupported, hostLittleEndian)
	}
	if mm.Mode() != ModeMmap || dec.Mode() != ModeDecode {
		t.Fatalf("modes = %v/%v, want mmap/decode", mm.Mode(), dec.Mode())
	}

	tauM, err1 := mm.Tau()
	tauD, err2 := dec.Tau()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(tauM, tauD) {
		t.Error("tau differs between modes")
	}
	supM, err1 := mm.Sup()
	supD, err2 := dec.Sup()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(supM, supD) {
		t.Error("supports differ between modes")
	}
	tsdM, err1 := mm.TSD()
	tsdD, err2 := dec.TSD()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(tsdBytes(t, tsdM), tsdBytes(t, tsdD)) {
		t.Error("TSD differs between modes")
	}
	gctM, err1 := mm.GCT()
	gctD, err2 := dec.GCT()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(gctBytes(t, gctM), gctBytes(t, gctD)) {
		t.Error("GCT differs between modes")
	}
	rkM, err1 := mm.Rankings()
	rkD, err2 := dec.Rankings()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(rkM, rkD) {
		t.Error("rankings differ between modes")
	}
	epM, err1 := mm.Epoch()
	epD, err2 := dec.Epoch()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if epM != 7 || epD != 7 {
		t.Errorf("epochs = %d/%d, want 7/7", epM, epD)
	}
	gM, err1 := mm.Graph()
	gD, err2 := dec.Graph()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(gM.Edges(), gD.Edges()) {
		t.Error("graph section differs between modes")
	}

	// The mmap handle must not have decoded anything: all of the above were
	// served as views over the mapping.
	if n := mm.PayloadReads(); n != 0 {
		t.Errorf("mmap handle performed %d payload reads, want 0", n)
	}
	if n := dec.PayloadReads(); n == 0 {
		t.Error("decode handle reports 0 payload reads; counter broken")
	}
}

// TestOpenGraph boots from the store alone: no prior graph needed, the
// CSR section materializes one, and the fingerprint self-check binds the
// remaining sections to it.
func TestOpenGraph(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	path := saveTo(t, g, ix)

	bothModes(t, func(t *testing.T, mode Mode) {
		f, err := OpenGraph(path, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		gg, err := f.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if gg.N() != g.N() || gg.M() != g.M() || !reflect.DeepEqual(gg.Edges(), g.Edges()) {
			t.Fatal("OpenGraph materialized a different graph")
		}
		tau, err := f.Tau()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tau, ix.Tau) {
			t.Fatal("tau through OpenGraph differs from the build")
		}
	})

	// A file without a graph section (v2 and earlier) cannot self-boot.
	if _, err := OpenGraph(filepath.Join("testdata", "golden_fig1_v2.tdx")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenGraph on a graphless file: err = %v, want ErrCorrupt", err)
	}
}

// TestFileRefcount pins the Retain/Close lifecycle that lets superseded
// snapshots release a mapping only after its last user is gone.
func TestFileRefcount(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, buildIndexes(g))
	f, err := OpenFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Refs(); got != 1 {
		t.Fatalf("fresh handle Refs() = %d, want 1", got)
	}
	if f.Retain() != f {
		t.Fatal("Retain did not return the receiver")
	}
	if got := f.Refs(); got != 2 {
		t.Fatalf("after Retain Refs() = %d, want 2", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Tau(); err != nil {
		t.Fatalf("handle with live reference failed: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("over-close succeeded")
	}
}

func TestOpenMissingFileIsNotExist(t *testing.T) {
	g := testGraph(t)
	_, err := OpenFile(filepath.Join(t.TempDir(), FileName), g)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestOpenRejectsNonIndexFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), FileName)
	if err := os.WriteFile(path, []byte("not an index file at all, just text"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFile(path, g)
	if !errors.Is(err, ErrNotIndexFile) {
		t.Fatalf("err = %v, want ErrNotIndexFile", err)
	}
}

func TestOpenRejectsTruncatedHeader(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), FileName)
	if err := os.WriteFile(path, []byte{0x54, 0x44}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFile(path, g)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CorruptError", err)
	}
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(blob[4:8], Version+1)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenFile(path, g)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("version error = %+v", err)
	}
}

func TestOpenRejectsWrongFingerprint(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})

	// A graph with one extra edge must be refused.
	other := gen.BarabasiAlbert(g.N(), 3, 7)
	_, err := OpenFile(path, other)
	if !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("err = %v, want ErrStaleIndex", err)
	}
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T, want *FingerprintError", err)
	}
	if fe.Got == fe.Want {
		t.Fatal("fingerprint error carries identical fingerprints")
	}
}

// corruptSection flips one payload byte of the named section in place.
func corruptSection(t *testing.T, path string, target Section) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := int(binary.LittleEndian.Uint32(blob[40:44]))
	for i := 0; i < count; i++ {
		e := blob[headerSize+tocEntrySize*i:]
		if Section(binary.LittleEndian.Uint32(e[0:4])) != target {
			continue
		}
		off := binary.LittleEndian.Uint64(e[12:20])
		blob[off+3] ^= 0xFF
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("section %v not found in %s", target, path)
}

// TestSectionChecksumDetectsCorruption pins the per-section damage
// contract of the decode path: the file still opens, the damaged section's
// accessor returns a typed *CorruptError, and its siblings keep serving.
func TestSectionChecksumDetectsCorruption(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)

	path := saveTo(t, g, ix)
	corruptSection(t, path, SecTruss)
	f, err := OpenFile(path, g, WithMode(ModeDecode)) // header is intact, so open succeeds
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Tau(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Tau() err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if err2 := func() error { _, err := f.Tau(); return err }(); !errors.As(err2, &ce) || ce.Section != SecTruss {
		t.Fatalf("corrupt error = %+v, want Section=truss", err2)
	}
	// Siblings still serve: checksums are per section.
	if !f.Has(SecTruss) {
		t.Fatal("damaged section vanished from the listing")
	}
	if _, err := f.Sup(); err != nil {
		t.Fatalf("sibling supports section failed: %v", err)
	}
	if _, err := f.TSD(); err != nil {
		t.Fatalf("sibling tsd section failed: %v", err)
	}
}

// TestVerifySectionsFindsMmapDamage pins the mmap-mode integrity contract:
// the warm path trusts the page cache (no checksum pass at open — that is
// what keeps warm starts O(TOC)), structural validation still rejects
// damage that breaks a section's layout, and VerifySections is the
// explicit full-CRC pass that flags any flipped payload byte, naming the
// section it lives in.
func TestVerifySectionsFindsMmapDamage(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)

	path := saveTo(t, g, ix)
	f, err := OpenFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode() == ModeMmap {
		if err := f.VerifySections(); err != nil {
			t.Fatalf("VerifySections on a pristine file: %v", err)
		}
	}
	f.Close()

	corruptSection(t, path, SecTruss) // flips a tau value: structurally silent
	f, err = OpenFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mode() != ModeMmap {
		t.Skip("mmap unsupported on this platform")
	}
	err = f.VerifySections()
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Section != SecTruss {
		t.Fatalf("VerifySections = %v, want *CorruptError for the truss section", err)
	}
	// A structurally damaged section is caught on access even without the
	// explicit pass: flip a slab count field rather than an array element.
	path2 := saveTo(t, g, ix)
	corruptSection(t, path2, SecTSD) // byte 3 of the slab's first count word
	f2, err := OpenFile(path2, g)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.TSD(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("TSD() on structurally damaged slab = %v, want ErrCorrupt", err)
	}
	if _, err := f2.Tau(); err != nil {
		t.Fatalf("sibling truss section failed: %v", err)
	}
}

func TestTruncatedPayloadIsCorrupt(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, buildIndexes(g))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file in half: the TOC still points past the new EOF.
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	bothModes(t, func(t *testing.T, mode Mode) {
		if _, err := OpenFile(path, g, WithMode(mode)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}

func TestRankingsRejectOutOfRangeVertex(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	// Poison one ranking entry with a vertex the graph does not have.
	ix.Rankings[2] = append([]core.VertexScore(nil), ix.Rankings[2]...)
	ix.Rankings[2][0].V = int32(g.N() + 100)
	path := saveTo(t, g, ix)
	bothModes(t, func(t *testing.T, mode Mode) {
		f, err := OpenFile(path, g, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.Rankings(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Rankings() err = %v, want ErrCorrupt", err)
		}
	})
}

func TestSaveIsAtomicAndCreatesDirs(t *testing.T) {
	g := testGraph(t)
	dir := filepath.Join(t.TempDir(), "a", "b")
	path := filepath.Join(dir, FileName)
	if err := Save(path, g, Indexes{Tau: truss.Decompose(g)}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("directory holds %v, want only %s (no temp leftovers)", entries, FileName)
	}
	f, err := OpenFile(path, g)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestFingerprintSensitivity(t *testing.T) {
	g := testGraph(t)
	same := testGraph(t)
	if Fingerprint(g) != Fingerprint(same) {
		t.Fatal("identical graphs fingerprint differently")
	}
	if Fingerprint(g) == Fingerprint(gen.BarabasiAlbert(200, 2, 1)) {
		t.Fatal("different graphs share a fingerprint")
	}
}

// TestTOCOffsetOverflowIsCorrupt crafts a TOC entry whose offset+length
// wraps around uint64: the sum is small, but honoring it would hand a
// huge length to make([]byte, n). Open must call it corrupt up front.
func TestTOCOffsetOverflowIsCorrupt(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First TOC entry: offset at +12, length at +20 (v2+ layout).
	binary.LittleEndian.PutUint64(blob[headerSize+12:], 1<<63)
	binary.LittleEndian.PutUint64(blob[headerSize+20:], 1<<63+100)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
