package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"trussdiv/internal/core"
	"trussdiv/internal/gen"
	"trussdiv/internal/graph"
	"trussdiv/internal/truss"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden index-store file")

// buildIndexes constructs every section for g, the way cmd/tsdindex does.
func buildIndexes(g *graph.Graph) Indexes {
	gct := core.BuildGCTIndex(g)
	return Indexes{
		Tau:      truss.Decompose(g),
		TSD:      core.BuildTSDIndex(g),
		GCT:      gct,
		Rankings: core.BuildHybrid(gct).Rankings(),
	}
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.Fig1Graph()
}

// saveTo writes a full index file into a temp dir and returns its path.
func saveTo(t *testing.T, g *graph.Graph, ix Indexes) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), FileName)
	if err := Save(path, g, ix); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTripAllSections(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	path := saveTo(t, g, ix)

	f, err := Open(path, g)
	if err != nil {
		t.Fatal(err)
	}
	want := []SectionRef{
		{SecTruss, core.MeasureTruss}, {SecTSD, core.MeasureTruss},
		{SecGCT, core.MeasureTruss}, {SecRankings, core.MeasureTruss},
	}
	if got := f.Sections(); !reflect.DeepEqual(got, want) {
		t.Fatalf("sections = %v, want %v", got, want)
	}

	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tau, ix.Tau) {
		t.Errorf("truss decomposition changed across the round trip")
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Errorf("rankings changed across the round trip")
	}
	// The index structures have unexported scratch; compare through their
	// serialized forms, which cover every searchable field.
	var a, b bytes.Buffer
	if _, err := ix.TSD.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := back.TSD.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("TSD index changed across the round trip")
	}
	a.Reset()
	b.Reset()
	if _, err := ix.GCT.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := back.GCT.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("GCT index changed across the round trip")
	}
}

func TestPartialFileOnlyHasWrittenSections(t *testing.T) {
	g := testGraph(t)
	ix := Indexes{Tau: truss.Decompose(g)}
	path := saveTo(t, g, ix)
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tau == nil || back.TSD != nil || back.GCT != nil || back.Rankings != nil {
		t.Fatalf("partial file round-tripped to %+v", back)
	}
}

// TestGoldenFormat pins the byte-exact on-disk layout of a fully
// populated version-2 file (truss sections plus one measure-tagged
// rankings section per alternative measure): any change to the header,
// TOC, or a section codec fails here and must come with a format-version
// bump (see the package comment's compatibility policy). Regenerate
// deliberately with `go test ./internal/store -run TestGoldenFormat -update`.
func TestGoldenFormat(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, g, ix); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_fig1_v2.tdx")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized store (%d bytes) differs from golden file (%d bytes); "+
			"a format change needs a Version bump and -update", buf.Len(), len(want))
	}
}

// TestV1GoldenStillLoads is the backward-compatibility gate: the
// checked-in golden_fig1.tdx was written by the version-1 writer (before
// the measure axis existed) and must keep loading — every section
// interpreted as measure=truss — for as long as minVersion stays 1. It
// is deliberately never regenerated.
func TestV1GoldenStillLoads(t *testing.T) {
	g := testGraph(t)
	f, err := Open(filepath.Join("testdata", "golden_fig1.tdx"), g)
	if err != nil {
		t.Fatalf("v1 golden no longer opens: %v", err)
	}
	if f.Version() != 1 {
		t.Fatalf("golden_fig1.tdx reports version %d, want 1 (file overwritten?)", f.Version())
	}
	for _, s := range []Section{SecTruss, SecTSD, SecGCT, SecRankings} {
		if !f.Has(s) {
			t.Fatalf("v1 golden lost section %v", s)
		}
		if !f.HasMeasure(s, core.MeasureTruss) {
			t.Fatalf("v1 section %v not visible under measure=truss", s)
		}
	}
	if f.HasMeasure(SecRankings, core.MeasureComponent) || f.HasMeasure(SecRankings, core.MeasureCore) {
		t.Fatal("v1 file claims measure-tagged sections it cannot contain")
	}
	// The payloads must decode to exactly what a fresh build produces.
	ix := buildIndexes(g)
	tau, err := f.Tau()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tau, ix.Tau) {
		t.Fatal("v1 truss section decodes differently from a fresh build")
	}
	rankings, err := f.Rankings()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rankings, ix.Rankings) {
		t.Fatal("v1 rankings section decodes differently from a fresh build")
	}
}

// TestMeasureRankingsRoundTrip exercises the v2-only sections: per-k
// rankings of the component and core measures survive a save/load cycle
// and stay isolated from the truss rankings.
func TestMeasureRankingsRoundTrip(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	ix.MeasureRankings = map[core.Measure][][]core.VertexScore{
		core.MeasureComponent: core.BuildMeasureRankings(g, core.MeasureComponent),
		core.MeasureCore:      core.BuildMeasureRankings(g, core.MeasureCore),
	}
	path := saveTo(t, g, ix)
	back, err := ReadAll(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Measure{core.MeasureComponent, core.MeasureCore} {
		if !reflect.DeepEqual(back.MeasureRankings[m], ix.MeasureRankings[m]) {
			t.Errorf("%s rankings changed across the round trip", m)
		}
	}
	if !reflect.DeepEqual(back.Rankings, ix.Rankings) {
		t.Error("truss rankings polluted by measure-tagged sections")
	}
	f, err := Open(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Sections()); got != 6 {
		t.Fatalf("file holds %d sections, want 6 (4 truss + 2 measure rankings)", got)
	}
}

func TestOpenMissingFileIsNotExist(t *testing.T) {
	g := testGraph(t)
	_, err := Open(filepath.Join(t.TempDir(), FileName), g)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestOpenRejectsNonIndexFile(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), FileName)
	if err := os.WriteFile(path, []byte("not an index file at all, just text"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, g)
	if !errors.Is(err, ErrNotIndexFile) {
		t.Fatalf("err = %v, want ErrNotIndexFile", err)
	}
}

func TestOpenRejectsTruncatedHeader(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), FileName)
	if err := os.WriteFile(path, []byte{0x54, 0x44}, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, g)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CorruptError", err)
	}
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(blob[4:8], Version+1)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, g)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != Version+1 || ve.Want != Version {
		t.Fatalf("version error = %+v", err)
	}
}

func TestOpenRejectsWrongFingerprint(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})

	// A graph with one extra edge must be refused.
	other := gen.BarabasiAlbert(g.N(), 3, 7)
	_, err := Open(path, other)
	if !errors.Is(err, ErrStaleIndex) {
		t.Fatalf("err = %v, want ErrStaleIndex", err)
	}
	var fe *FingerprintError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %T, want *FingerprintError", err)
	}
	if fe.Got == fe.Want {
		t.Fatal("fingerprint error carries identical fingerprints")
	}
}

func TestSectionChecksumDetectsCorruption(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, buildIndexes(g))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte past the header and TOC (4 sections).
	blob[headerSize+4*tocEntrySize+10] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path, g) // header is intact, so Open succeeds
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Tau(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Tau() err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedPayloadIsCorrupt(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, buildIndexes(g))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file in half: the TOC still points past the new EOF.
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestRankingsRejectOutOfRangeVertex(t *testing.T) {
	g := testGraph(t)
	ix := buildIndexes(g)
	// Poison one ranking entry with a vertex the graph does not have.
	ix.Rankings[2] = append([]core.VertexScore(nil), ix.Rankings[2]...)
	ix.Rankings[2][0].V = int32(g.N() + 100)
	path := saveTo(t, g, ix)
	f, err := Open(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Rankings(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Rankings() err = %v, want ErrCorrupt", err)
	}
}

func TestSaveIsAtomicAndCreatesDirs(t *testing.T) {
	g := testGraph(t)
	dir := filepath.Join(t.TempDir(), "a", "b")
	path := filepath.Join(dir, FileName)
	if err := Save(path, g, Indexes{Tau: truss.Decompose(g)}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("directory holds %v, want only %s (no temp leftovers)", entries, FileName)
	}
	if _, err := Open(path, g); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	g := testGraph(t)
	same := testGraph(t)
	if Fingerprint(g) != Fingerprint(same) {
		t.Fatal("identical graphs fingerprint differently")
	}
	if Fingerprint(g) == Fingerprint(gen.BarabasiAlbert(200, 2, 1)) {
		t.Fatal("different graphs share a fingerprint")
	}
}

// TestTOCOffsetOverflowIsCorrupt crafts a TOC entry whose offset+length
// wraps around uint64: the sum is small, but honoring it would hand a
// huge length to make([]byte, n). Open must call it corrupt up front.
func TestTOCOffsetOverflowIsCorrupt(t *testing.T) {
	g := testGraph(t)
	path := saveTo(t, g, Indexes{Tau: truss.Decompose(g)})
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First TOC entry: offset at byte 56, length at byte 64 (v2 layout).
	binary.LittleEndian.PutUint64(blob[headerSize+12:], 1<<63)
	binary.LittleEndian.PutUint64(blob[headerSize+20:], 1<<63+100)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
