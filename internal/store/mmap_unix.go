//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported gates the default open mode: on platforms without a mmap
// shim OpenFile silently serves every file through the decode path.
const mmapSupported = true

// mmapFile maps the whole file read-only. The returned mapping is
// independent of fd (the caller may close it) and of later renames over
// the path (Save replaces the inode, never rewrites it), so views stay
// valid until munmap.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error { return syscall.Munmap(data) }
