package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

// Mode selects how an opened File serves section payloads.
type Mode int

const (
	// ModeMmap (the default) maps the whole file read-only once and serves
	// format-v3 sections as zero-copy views into the page cache. Integrity
	// in this mode is structural: the header, fingerprint, and TOC are fully
	// validated at open, and each section's layout is validated as it is
	// parsed, but payload checksums are not recomputed on the warm path —
	// that would fault every page of the mapping and erase the point of
	// mmap. Call VerifySections to check every stored CRC on demand. Files
	// in older formats — and any file on a platform without mmap or with
	// big-endian byte order — transparently fall back to ModeDecode;
	// File.Mode reports the mode actually in effect.
	ModeMmap Mode = iota
	// ModeDecode reads each requested section from disk, verifies its CRC,
	// and decodes it into fresh heap memory, holding no mapping and no
	// descriptor between calls.
	ModeDecode
)

// String names the mode for status output.
func (m Mode) String() string {
	if m == ModeDecode {
		return "decode"
	}
	return "mmap"
}

// OpenOption configures OpenFile/OpenGraph.
type OpenOption func(*openConfig)

type openConfig struct {
	mode Mode
}

// WithMode overrides the default (ModeMmap) open mode.
func WithMode(m Mode) OpenOption {
	return func(c *openConfig) { c.mode = m }
}

type tocEntry struct {
	crc    uint32
	offset uint64
	length uint64
}

// File is an opened, header-validated index file whose sections load on
// demand; obtain one with OpenFile (or OpenGraph) and release it with
// Close. In mmap mode the File owns a read-only mapping that section
// accessors return views into, guarded by a reference count: Retain/Close
// pair around every owner of such views, and the mapping is unmapped only
// when the last reference closes. In decode mode section reads reopen the
// file, so the File holds no descriptor between calls. Both modes are safe
// for concurrent use.
type File struct {
	path    string
	g       *graph.Graph
	version uint32
	size    int64
	toc     map[SectionRef]tocEntry
	data    []byte // the mapping; nil in decode mode
	refs    atomic.Int64
	reads   atomic.Int64 // decode-path payload reads, a test tripwire
}

// OpenFile validates the file at path against g — magic, format version,
// graph fingerprint, TOC sanity — and returns a handle whose sections load
// on demand. A missing file surfaces as fs.ErrNotExist; a file built from
// a different graph fails with *FingerprintError (ErrStaleIndex). All
// format versions 1..3 are accepted; see Mode for how payloads are served.
//
// Opening is O(header + TOC) in mmap mode: no payload byte is read or
// checksummed until a section accessor asks for it, and a section that then
// fails validation errors alone — one rotten section never takes down its
// siblings. Decode-mode accessors additionally verify the stored CRC on
// every read; in mmap mode use VerifySections for an explicit full check.
func OpenFile(path string, g *graph.Graph, opts ...OpenOption) (*File, error) {
	if g == nil {
		return nil, fmt.Errorf("store: OpenFile requires a graph; use OpenGraph to boot from the file alone")
	}
	return open(path, g, opts)
}

// OpenGraph opens an index file standalone — no pre-loaded graph — by
// materializing the graph from the file's own CSR section (format v3+) and
// verifying the header fingerprint against it. The returned handle serves
// the graph via Graph() and every other section exactly like OpenFile.
func OpenGraph(path string, opts ...OpenOption) (*File, error) {
	return open(path, nil, opts)
}

func open(path string, g *graph.Graph, opts []OpenOption) (*File, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	n, readErr := io.ReadFull(fd, hdr[:])
	// Judge the magic before a short read: a random small file is "not an
	// index", while a file that starts like one but ends early is corrupt.
	if n >= 4 {
		if magic := binary.LittleEndian.Uint32(hdr[0:4]); magic != Magic {
			return nil, fmt.Errorf("%w (magic %#x)", ErrNotIndexFile, magic)
		}
	}
	if readErr != nil {
		return nil, &CorruptError{Reason: "truncated header", Err: readErr}
	}
	version := binary.LittleEndian.Uint32(hdr[4:8])
	if version < minVersion || version > Version {
		return nil, &VersionError{Got: version, Want: Version}
	}
	var fp [32]byte
	copy(fp[:], hdr[8:40])
	if g != nil {
		if want := Fingerprint(g); fp != want {
			return nil, &FingerprintError{Got: fp, Want: want}
		}
	}
	count := binary.LittleEndian.Uint32(hdr[40:44])
	if count > maxSections {
		return nil, &CorruptError{Reason: fmt.Sprintf("implausible section count %d", count)}
	}
	entrySize := tocEntrySize
	if version == 1 {
		entrySize = tocEntrySizeV1
	}
	tocBytes := make([]byte, entrySize*int(count))
	if _, err := io.ReadFull(fd, tocBytes); err != nil {
		return nil, &CorruptError{Reason: "truncated table of contents", Err: err}
	}
	toc := make(map[SectionRef]tocEntry, count)
	for i := 0; i < int(count); i++ {
		e := tocBytes[entrySize*i:]
		id := Section(binary.LittleEndian.Uint32(e[0:4]))
		mcode := measureCodeTruss // v1 entries carry no tag: truss by definition
		if version >= 2 {
			mcode = binary.LittleEndian.Uint32(e[4:8])
			e = e[4:] // the remaining fields line up with the v1 layout
		}
		entry := tocEntry{
			crc:    binary.LittleEndian.Uint32(e[4:8]),
			offset: binary.LittleEndian.Uint64(e[8:16]),
			length: binary.LittleEndian.Uint64(e[16:24]),
		}
		// Compare without summing: offset+length can wrap in uint64, and a
		// wrapped sum would wave a huge length through to make([]byte, n).
		size := uint64(st.Size())
		if entry.length > size || entry.offset > size-entry.length || entry.offset < headerSize {
			return nil, &CorruptError{Section: id,
				Reason: fmt.Sprintf("section extends beyond the file (offset %d, length %d, file %d)",
					entry.offset, entry.length, st.Size())}
		}
		if version >= 3 && entry.offset%8 != 0 {
			// Alignment is a v3 format invariant; an unaligned offset means
			// a corrupt TOC, and views built over it would fault on
			// alignment-sensitive hosts.
			return nil, &CorruptError{Section: id,
				Reason: fmt.Sprintf("section offset %d not 8-byte aligned", entry.offset)}
		}
		measure, knownMeasure := measureFromCode(mcode)
		if !knownMeasure {
			// A measure tag from a newer writer: skip the section, keep the
			// file, same policy as unknown section IDs.
			continue
		}
		switch id {
		case SecTruss, SecTSD, SecGCT, SecRankings, SecEpoch, SecSupports, SecGraph, SecPFree:
			ref := SectionRef{Section: id, Measure: measure}
			if _, dup := toc[ref]; dup {
				return nil, &CorruptError{Section: id, Reason: "duplicate section"}
			}
			toc[ref] = entry
		default:
			// Unknown sections within a known version are additions from a
			// newer writer; skip them rather than failing the whole file.
		}
	}

	f := &File{path: path, g: g, version: version, size: st.Size(), toc: toc}
	f.refs.Store(1)

	// Map. Only v3 files have mmap-able payloads; older formats and mmap
	// failures fall back to the decode path silently — the mode is an
	// optimization, not a contract about file contents.
	if cfg.mode == ModeMmap && version >= 3 && mmapSupported && hostLittleEndian && st.Size() > 0 {
		if data, err := mmapFile(fd, st.Size()); err == nil {
			f.data = data
		}
	}

	if g == nil {
		// OpenGraph: materialize the graph from the file itself, then close
		// the trust loop by recomputing the fingerprint over it.
		gv, err := f.Graph()
		if err == nil && gv == nil {
			err = &CorruptError{Section: SecGraph, Reason: "file has no graph section (format v3+ required)"}
		}
		if err == nil && Fingerprint(gv) != fp {
			err = &CorruptError{Section: SecGraph, Reason: "graph section does not match the header fingerprint"}
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		f.g = gv
	}
	return f, nil
}

// Version reports the format version the file was written with.
func (f *File) Version() uint32 { return f.version }

// Path returns the file's location on disk.
func (f *File) Path() string { return f.path }

// Mode reports how this handle serves sections: ModeMmap only when a
// mapping is actually live (requested mmap opens of v1/v2 files report
// ModeDecode).
func (f *File) Mode() Mode {
	if f.data != nil {
		return ModeMmap
	}
	return ModeDecode
}

// Retain adds a reference and returns f, for handing the mapping to an
// additional owner; every Retain needs a matching Close.
func (f *File) Retain() *File {
	f.refs.Add(1)
	return f
}

// Refs reports the current reference count (diagnostics and tests).
func (f *File) Refs() int64 { return f.refs.Load() }

// PayloadReads counts section payload reads served through the decode
// path. In mmap mode it stays zero — the warm-start tripwire tests assert
// exactly that.
func (f *File) PayloadReads() int64 { return f.reads.Load() }

// Close drops one reference; the last Close unmaps the file. Views served
// from a mapped File (tau/support arrays, TSD/GCT structures, the graph)
// alias the mapping and die with it: callers must not touch them after
// their reference is gone.
func (f *File) Close() error {
	switch n := f.refs.Add(-1); {
	case n > 0:
		return nil
	case n < 0:
		return fmt.Errorf("store: File %s closed more times than retained", f.path)
	}
	if f.data != nil {
		data := f.data
		f.data = nil
		return munmapFile(data)
	}
	return nil
}

// Has reports whether the file contains the truss-measure section s
// (the v1 notion of presence); use HasMeasure for tagged sections.
func (f *File) Has(s Section) bool {
	return f.HasMeasure(s, core.MeasureTruss)
}

// HasMeasure reports whether the file contains section s tagged with
// measure m.
func (f *File) HasMeasure(s Section, m core.Measure) bool {
	_, ok := f.toc[SectionRef{Section: s, Measure: m.Normalize()}]
	return ok
}

// Sections lists the recognized section instances present in the file:
// truss sections in canonical order first (the v1 listing), then the
// tagged sections of the other measures in measure order.
func (f *File) Sections() []SectionRef {
	var out []SectionRef
	for _, m := range core.AllMeasures() {
		for _, s := range knownSections {
			if f.HasMeasure(s, m) {
				out = append(out, SectionRef{Section: s, Measure: m})
			}
		}
	}
	return out
}

// Section returns the payload of one section instance, or (nil, nil) when
// absent. In mmap mode the bytes are a read-only view into the mapping
// (valid while the caller's reference is held, never modify); in decode
// mode they are a fresh checksummed copy.
func (f *File) Section(s Section, m core.Measure) ([]byte, error) {
	payload, _, err := f.payload(s, m)
	return payload, err
}

// VerifySections recomputes every section's CRC against the value stored
// in the TOC and returns the first mismatch as a *CorruptError naming the
// section, checking in canonical section order. This is the explicit
// integrity pass mmap mode defers at open: it faults and reads every
// payload page, so it costs a full-file scan. Decode-mode handles verify
// too (each section is read back once).
func (f *File) VerifySections() error {
	for _, ref := range f.Sections() {
		entry := f.toc[SectionRef{Section: ref.Section, Measure: ref.Measure.Normalize()}]
		var payload []byte
		if f.data != nil {
			payload = f.data[entry.offset : entry.offset+entry.length]
		} else {
			fd, err := os.Open(f.path)
			if err != nil {
				return err
			}
			payload = make([]byte, entry.length)
			_, err = fd.ReadAt(payload, int64(entry.offset))
			fd.Close()
			if err != nil {
				return &CorruptError{Section: ref.Section, Reason: "truncated payload", Err: err}
			}
		}
		if crc := crc32.Checksum(payload, crcTable); crc != entry.crc {
			return &CorruptError{Section: ref.Section,
				Reason: fmt.Sprintf("checksum mismatch (file %#x, computed %#x)", entry.crc, crc)}
		}
	}
	return nil
}

// payload fetches one section's verified bytes; zeroCopy reports that the
// bytes alias the mapping (little-endian, 8-byte aligned — safe to view in
// place).
func (f *File) payload(s Section, m core.Measure) (payload []byte, zeroCopy bool, err error) {
	entry, ok := f.toc[SectionRef{Section: s, Measure: m.Normalize()}]
	if !ok {
		return nil, false, nil
	}
	if f.data != nil {
		return f.data[entry.offset : entry.offset+entry.length], true, nil
	}
	fd, err := os.Open(f.path)
	if err != nil {
		return nil, false, err
	}
	defer fd.Close()
	f.reads.Add(1)
	payload = make([]byte, entry.length)
	if _, err := fd.ReadAt(payload, int64(entry.offset)); err != nil {
		return nil, false, &CorruptError{Section: s, Reason: "truncated payload", Err: err}
	}
	if crc := crc32.Checksum(payload, crcTable); crc != entry.crc {
		return nil, false, &CorruptError{Section: s,
			Reason: fmt.Sprintf("checksum mismatch (file %#x, computed %#x)", entry.crc, crc)}
	}
	return payload, false, nil
}

// edgeArray loads a 4-bytes-per-edge int32 section (tau, supports).
func (f *File) edgeArray(s Section) ([]int32, error) {
	payload, zeroCopy, err := f.payload(s, core.MeasureTruss)
	if payload == nil || err != nil {
		return nil, err
	}
	if len(payload) != 4*f.g.M() {
		return nil, &CorruptError{Section: s,
			Reason: fmt.Sprintf("%d payload bytes for %d edges", len(payload), f.g.M())}
	}
	return i32sFromPayload(payload, zeroCopy), nil
}

// Tau loads the global truss decomposition, or (nil, nil) when absent.
func (f *File) Tau() ([]int32, error) { return f.edgeArray(SecTruss) }

// Sup loads the global edge support array, or (nil, nil) when absent
// (always absent in v1/v2 files).
func (f *File) Sup() ([]int32, error) { return f.edgeArray(SecSupports) }

// TSD loads the TSD index bound to the file's graph, or (nil, nil) when
// absent.
func (f *File) TSD() (*core.TSDIndex, error) {
	payload, zeroCopy, err := f.payload(SecTSD, core.MeasureTruss)
	if payload == nil || err != nil {
		return nil, err
	}
	if f.version >= 3 {
		return decodeTSDSlab(payload, f.g, zeroCopy)
	}
	idx, err := core.ReadTSDIndex(bytes.NewReader(payload), f.g)
	if err != nil {
		return nil, &CorruptError{Section: SecTSD, Reason: "decode failed", Err: err}
	}
	return idx, nil
}

// GCT loads the GCT index bound to the file's graph, or (nil, nil) when
// absent.
func (f *File) GCT() (*core.GCTIndex, error) {
	payload, zeroCopy, err := f.payload(SecGCT, core.MeasureTruss)
	if payload == nil || err != nil {
		return nil, err
	}
	if f.version >= 3 {
		return decodeGCTSlab(payload, f.g, zeroCopy)
	}
	idx, err := core.ReadGCTIndex(bytes.NewReader(payload), f.g)
	if err != nil {
		return nil, &CorruptError{Section: SecGCT, Reason: "decode failed", Err: err}
	}
	return idx, nil
}

// Graph materializes the graph recorded in the file's CSR section, or
// (nil, nil) when the file predates it. In mmap mode all four arrays are
// views into the mapping.
func (f *File) Graph() (*graph.Graph, error) {
	payload, zeroCopy, err := f.payload(SecGraph, core.MeasureTruss)
	if payload == nil || err != nil {
		return nil, err
	}
	return decodeGraphSlab(payload, zeroCopy)
}

// Epoch loads the recorded snapshot epoch, or (0, nil) when absent.
func (f *File) Epoch() (uint64, error) {
	payload, _, err := f.payload(SecEpoch, core.MeasureTruss)
	if payload == nil || err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		return 0, &CorruptError{Section: SecEpoch,
			Reason: fmt.Sprintf("%d payload bytes, want 8", len(payload))}
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// Rankings loads the truss-measure (hybrid) per-k rankings, or
// (nil, nil) when absent.
func (f *File) Rankings() ([][]core.VertexScore, error) {
	return f.MeasureRankings(core.MeasureTruss)
}

// MeasureRankings loads the per-k rankings of measure m, or (nil, nil)
// when the file has no rankings section tagged with m. Rankings always
// materialize on the heap — scores are platform-width — so both modes pay
// one widening pass here; every other array-shaped section stays zero-copy
// in mmap mode.
func (f *File) MeasureRankings(m core.Measure) ([][]core.VertexScore, error) {
	payload, _, err := f.payload(SecRankings, m)
	if payload == nil || err != nil {
		return nil, err
	}
	if f.version >= 3 {
		return decodeRankingsSlab(payload, f.g.N())
	}
	return decodeRankings(payload, f.g.N())
}

// PFreeRanking loads the parameter-free engine's ranking for measure m,
// or (nil, nil) when the file has no pfree section tagged with m. Like
// the per-k rankings it materializes on the heap (platform-width
// scores) with one widening pass; a present-but-empty ranking loads as
// an empty non-nil slice.
func (f *File) PFreeRanking(m core.Measure) ([]core.VertexScore, error) {
	payload, _, err := f.payload(SecPFree, m)
	if payload == nil || err != nil {
		return nil, err
	}
	return decodePFreeSlab(payload, f.g.N())
}

// ReadAll opens path against g through the decode path and loads every
// section it contains; the thin whole-file wrapper around the File handle
// API for callers that want plain heap-backed structures and no lifecycle.
func ReadAll(path string, g *graph.Graph) (*Indexes, error) {
	f, err := OpenFile(path, g, WithMode(ModeDecode))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ix Indexes
	if ix.Tau, err = f.Tau(); err != nil {
		return nil, err
	}
	if ix.Sup, err = f.Sup(); err != nil {
		return nil, err
	}
	if ix.TSD, err = f.TSD(); err != nil {
		return nil, err
	}
	if ix.GCT, err = f.GCT(); err != nil {
		return nil, err
	}
	if ix.Rankings, err = f.Rankings(); err != nil {
		return nil, err
	}
	for _, m := range core.AllMeasures() {
		if m == core.MeasureTruss || !f.HasMeasure(SecRankings, m) {
			continue
		}
		perK, err := f.MeasureRankings(m)
		if err != nil {
			return nil, err
		}
		if ix.MeasureRankings == nil {
			ix.MeasureRankings = make(map[core.Measure][][]core.VertexScore)
		}
		ix.MeasureRankings[m] = perK
	}
	for _, m := range core.AllMeasures() {
		if !f.HasMeasure(SecPFree, m) {
			continue
		}
		ranked, err := f.PFreeRanking(m)
		if err != nil {
			return nil, err
		}
		if ix.PFree == nil {
			ix.PFree = make(map[core.Measure][]core.VertexScore)
		}
		ix.PFree[m] = ranked
	}
	if ix.Epoch, err = f.Epoch(); err != nil {
		return nil, err
	}
	return &ix, nil
}
