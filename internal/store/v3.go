package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"trussdiv/internal/core"
	"trussdiv/internal/graph"
)

// Format v3 section payloads are "slabs": sequences of fixed-width
// little-endian arrays, each starting on an 8-byte boundary relative to the
// payload start (the writer places every payload 8-byte aligned in the
// file, so slab alignment composes with file alignment). A reader that has
// mmap'd the file can therefore reinterpret each array in place as
// []int32/[]int64/[]struct-of-int32 with no decode; a portable reader
// walks the same layout and copies instead.
//
// The element types viewed in place are pinned to their on-disk width at
// compile time; a struct gaining padding or a field would silently corrupt
// the format otherwise.
const (
	_ = uint(unsafe.Sizeof(core.TSDEdge{}) - 12)
	_ = uint(12 - unsafe.Sizeof(core.TSDEdge{}))
	_ = uint(unsafe.Sizeof(core.GCTSuperEdge{}) - 12)
	_ = uint(12 - unsafe.Sizeof(core.GCTSuperEdge{}))
	_ = uint(unsafe.Sizeof(graph.Edge{}) - 8)
	_ = uint(8 - unsafe.Sizeof(graph.Edge{}))
)

// hostLittleEndian gates the zero-copy views: on a big-endian host the
// raw bytes do not match the in-memory representation, so every access
// falls back to the portable copying decoder.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func align8(n int) int { return (n + 7) &^ 7 }

// i32sFromPayload returns a raw int32-array payload (tau, supports) as a
// zero-copy view when the bytes alias an aligned little-endian mapping, or
// as a decoded copy otherwise.
func i32sFromPayload(payload []byte, zeroCopy bool) []int32 {
	if len(payload) == 0 {
		return nil
	}
	if zeroCopy && hostLittleEndian {
		return unsafe.Slice((*int32)(unsafe.Pointer(&payload[0])), len(payload)/4)
	}
	return decodeInt32s(payload)
}

// --- slab writer ---

type slabW struct{ buf []byte }

func (s *slabW) pad8() {
	for len(s.buf)%8 != 0 {
		s.buf = append(s.buf, 0)
	}
}

func (s *slabW) u64(v uint64) {
	s.pad8()
	s.buf = binary.LittleEndian.AppendUint64(s.buf, v)
}

func (s *slabW) i64s(vs []int64) {
	s.pad8()
	for _, v := range vs {
		s.buf = binary.LittleEndian.AppendUint64(s.buf, uint64(v))
	}
}

func (s *slabW) i32s(vs []int32) {
	s.pad8()
	for _, v := range vs {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(v))
	}
}

func (s *slabW) tsdEdges(vs []core.TSDEdge) {
	s.pad8()
	for _, e := range vs {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.U))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.W))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.T))
	}
}

func (s *slabW) gctEdges(vs []core.GCTSuperEdge) {
	s.pad8()
	for _, e := range vs {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.A))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.B))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.W))
	}
}

func (s *slabW) edges(vs []graph.Edge) {
	s.pad8()
	for _, e := range vs {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.U))
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(e.V))
	}
}

// --- slab reader ---

// slabR walks a slab payload mirroring the writer's layout. With zeroCopy
// set (mmap'd little-endian data) the array readers return views that alias
// the payload; otherwise they decode into fresh heap arrays. Errors latch:
// after the first failure every reader returns nil.
type slabR struct {
	sec      Section
	b        []byte
	pos      int
	zeroCopy bool
	err      error
}

func newSlabR(sec Section, payload []byte, zeroCopy bool) *slabR {
	return &slabR{sec: sec, b: payload, zeroCopy: zeroCopy && hostLittleEndian}
}

func (r *slabR) fail(format string, args ...any) {
	if r.err == nil {
		r.err = &CorruptError{Section: r.sec, Reason: fmt.Sprintf(format, args...)}
	}
}

// window aligns to 8, bounds-checks an upcoming array of count elements of
// elemSize bytes, and returns its byte window (nil after any error). The
// check runs before any allocation, so corrupt counts cannot balloon memory.
func (r *slabR) window(count, elemSize int) []byte {
	if r.err != nil {
		return nil
	}
	r.pos = align8(r.pos)
	if count < 0 || count > (len(r.b)-min(r.pos, len(r.b)))/elemSize || r.pos > len(r.b) {
		r.fail("array of %d x %d bytes exceeds payload (%d of %d bytes consumed)",
			count, elemSize, r.pos, len(r.b))
		return nil
	}
	w := r.b[r.pos : r.pos+count*elemSize]
	r.pos += count * elemSize
	return w
}

func (r *slabR) u64() uint64 {
	w := r.window(1, 8)
	if w == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(w)
}

// count reads a u64 element count and rejects values that cannot index a
// slice on this platform.
func (r *slabR) count() int {
	v := r.u64()
	if v > math.MaxInt32 && uint64(int(v)) != v {
		r.fail("implausible element count %d", v)
		return 0
	}
	return int(v)
}

func (r *slabR) i32s(count int) []int32 {
	w := r.window(count, 4)
	if w == nil || count == 0 {
		return nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*int32)(unsafe.Pointer(&w[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(w[4*i:]))
	}
	return out
}

func (r *slabR) i64s(count int) []int64 {
	w := r.window(count, 8)
	if w == nil || count == 0 {
		return nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*int64)(unsafe.Pointer(&w[0])), count)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(w[8*i:]))
	}
	return out
}

func (r *slabR) tsdEdges(count int) []core.TSDEdge {
	w := r.window(count, 12)
	if w == nil || count == 0 {
		return nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*core.TSDEdge)(unsafe.Pointer(&w[0])), count)
	}
	out := make([]core.TSDEdge, count)
	for i := range out {
		out[i] = core.TSDEdge{
			U: int32(binary.LittleEndian.Uint32(w[12*i:])),
			W: int32(binary.LittleEndian.Uint32(w[12*i+4:])),
			T: int32(binary.LittleEndian.Uint32(w[12*i+8:])),
		}
	}
	return out
}

func (r *slabR) gctEdges(count int) []core.GCTSuperEdge {
	w := r.window(count, 12)
	if w == nil || count == 0 {
		return nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*core.GCTSuperEdge)(unsafe.Pointer(&w[0])), count)
	}
	out := make([]core.GCTSuperEdge, count)
	for i := range out {
		out[i] = core.GCTSuperEdge{
			A: int32(binary.LittleEndian.Uint32(w[12*i:])),
			B: int32(binary.LittleEndian.Uint32(w[12*i+4:])),
			W: int32(binary.LittleEndian.Uint32(w[12*i+8:])),
		}
	}
	return out
}

func (r *slabR) edges(count int) []graph.Edge {
	w := r.window(count, 8)
	if w == nil || count == 0 {
		return nil
	}
	if r.zeroCopy {
		return unsafe.Slice((*graph.Edge)(unsafe.Pointer(&w[0])), count)
	}
	out := make([]graph.Edge, count)
	for i := range out {
		out[i] = graph.Edge{
			U: int32(binary.LittleEndian.Uint32(w[8*i:])),
			V: int32(binary.LittleEndian.Uint32(w[8*i+4:])),
		}
	}
	return out
}

// done reports any latched error; trailing bytes beyond the final array
// (at most the writer's 8-byte padding) are tolerated.
func (r *slabR) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b)-r.pos >= 8 {
		return &CorruptError{Section: r.sec,
			Reason: fmt.Sprintf("%d trailing bytes", len(r.b)-r.pos)}
	}
	return nil
}

// --- TSD slab: n, nForest, nCum, mv[n], foff[n+1], forest[nForest],
//     coff[n+1], cum[nCum] ---

func encodeTSDSlab(idx *core.TSDIndex) []byte {
	f := idx.Flatten()
	var s slabW
	s.u64(uint64(len(f.Mv)))
	s.u64(uint64(len(f.Forest)))
	s.u64(uint64(len(f.Cum)))
	s.i32s(f.Mv)
	s.i64s(f.ForestOff)
	s.tsdEdges(f.Forest)
	s.i64s(f.CumOff)
	s.i32s(f.Cum)
	return s.buf
}

func decodeTSDSlab(payload []byte, g *graph.Graph, zeroCopy bool) (*core.TSDIndex, error) {
	r := newSlabR(SecTSD, payload, zeroCopy)
	n, nForest, nCum := r.count(), r.count(), r.count()
	var f core.TSDFlat
	f.Mv = r.i32s(n)
	f.ForestOff = r.i64s(n + 1)
	f.Forest = r.tsdEdges(nForest)
	f.CumOff = r.i64s(n + 1)
	f.Cum = r.i32s(nCum)
	if err := r.done(); err != nil {
		return nil, err
	}
	idx, err := core.NewTSDIndexFromFlat(g, f)
	if err != nil {
		return nil, &CorruptError{Section: SecTSD, Reason: "structure does not describe the graph", Err: err}
	}
	return idx, nil
}

// --- GCT slab: n, nNode, nBound, nMember, nEdge, noff[n+1], nodeTau[nNode],
//     boff[n+1], bounds[nBound], moff[n+1], members[nMember], eoff[n+1],
//     edges[nEdge], edgeW[nEdge] ---

func encodeGCTSlab(idx *core.GCTIndex) []byte {
	f := idx.Flatten()
	var s slabW
	s.u64(uint64(len(f.NodeOff) - 1))
	s.u64(uint64(len(f.NodeTau)))
	s.u64(uint64(len(f.Bounds)))
	s.u64(uint64(len(f.Members)))
	s.u64(uint64(len(f.Edges)))
	s.i64s(f.NodeOff)
	s.i32s(f.NodeTau)
	s.i64s(f.BoundOff)
	s.i32s(f.Bounds)
	s.i64s(f.MemberOff)
	s.i32s(f.Members)
	s.i64s(f.EdgeOff)
	s.gctEdges(f.Edges)
	s.i32s(f.EdgeW)
	return s.buf
}

func decodeGCTSlab(payload []byte, g *graph.Graph, zeroCopy bool) (*core.GCTIndex, error) {
	r := newSlabR(SecGCT, payload, zeroCopy)
	n, nNode, nBound, nMember, nEdge := r.count(), r.count(), r.count(), r.count(), r.count()
	var f core.GCTFlat
	f.NodeOff = r.i64s(n + 1)
	f.NodeTau = r.i32s(nNode)
	f.BoundOff = r.i64s(n + 1)
	f.Bounds = r.i32s(nBound)
	f.MemberOff = r.i64s(n + 1)
	f.Members = r.i32s(nMember)
	f.EdgeOff = r.i64s(n + 1)
	f.Edges = r.gctEdges(nEdge)
	f.EdgeW = r.i32s(nEdge)
	if err := r.done(); err != nil {
		return nil, err
	}
	idx, err := core.NewGCTIndexFromFlat(g, f)
	if err != nil {
		return nil, &CorruptError{Section: SecGCT, Reason: "structure does not describe the graph", Err: err}
	}
	return idx, nil
}

// --- rankings slab: maxK, koff[maxK+2], pairs[2*nPairs] (interleaved
//     vertex, score) ---
//
// Rankings are the one section that cannot be served zero-copy:
// core.VertexScore holds a platform-width score, so both modes widen the
// int32 pairs into fresh []core.VertexScore — a single branch-free pass,
// not a per-element decode.

func encodeRankingsSlab(perK [][]core.VertexScore, n int) ([]byte, error) {
	maxK := len(perK) - 1
	if maxK < 2 {
		maxK = 2
	}
	koff := make([]int64, maxK+2)
	var total int64
	for k := 0; k <= maxK; k++ {
		koff[k] = total
		if k >= 2 && k < len(perK) {
			if len(perK[k]) > n {
				return nil, fmt.Errorf("store: ranking for k=%d has %d entries, graph has %d vertices",
					k, len(perK[k]), n)
			}
			total += int64(len(perK[k]))
		}
	}
	koff[maxK+1] = total
	pairs := make([]int32, 0, 2*total)
	for k := 2; k <= maxK && k < len(perK); k++ {
		for _, e := range perK[k] {
			pairs = append(pairs, e.V, int32(e.Score))
		}
	}
	var s slabW
	s.u64(uint64(maxK))
	s.i64s(koff)
	s.i32s(pairs)
	return s.buf, nil
}

func decodeRankingsSlab(payload []byte, n int) ([][]core.VertexScore, error) {
	// Zero-copy never applies here (see above), but reading the koff table
	// and pair array as views avoids an intermediate copy of the slab.
	r := newSlabR(SecRankings, payload, true)
	maxK := r.count()
	if r.err == nil && (maxK < 2 || maxK > n+2) {
		r.fail("implausible maxK %d for %d vertices", maxK, n)
	}
	var koff []int64
	if r.err == nil {
		koff = r.i64s(maxK + 2)
	}
	if r.err != nil {
		return nil, r.err
	}
	total := koff[maxK+1]
	pairs := r.i32s(2 * int(total))
	if err := r.done(); err != nil {
		return nil, err
	}
	perK := make([][]core.VertexScore, maxK+1)
	for k := 2; k <= maxK; k++ {
		lo, hi := koff[k], koff[k+1]
		if lo < 0 || lo > hi || hi > total || hi-lo > int64(n) {
			return nil, &CorruptError{Section: SecRankings,
				Reason: fmt.Sprintf("ranking k=%d spans [%d,%d] for %d vertices", k, lo, hi, n)}
		}
		if lo == hi {
			continue
		}
		list := make([]core.VertexScore, hi-lo)
		for i := range list {
			v := pairs[2*(lo+int64(i))]
			if v < 0 || int(v) >= n {
				return nil, &CorruptError{Section: SecRankings,
					Reason: fmt.Sprintf("ranking k=%d entry %d: vertex %d out of range", k, i, v)}
			}
			list[i] = core.VertexScore{V: v, Score: int(pairs[2*(lo+int64(i))+1])}
		}
		perK[k] = list
	}
	return perK, nil
}

// --- pfree slab: count, interleaved (vertex, score) pairs[2*count] ---
//
// The parameter-free engine's ranking for one measure: the canonical
// score list (score descending, vertex ascending), zero scores omitted.
// Like the rankings slab it is widened into []core.VertexScore on read
// (platform-width scores), so both modes share one branch-free pass.

func encodePFreeSlab(ranked []core.VertexScore, n int) ([]byte, error) {
	if len(ranked) > n {
		return nil, fmt.Errorf("store: pfree ranking has %d entries, graph has %d vertices",
			len(ranked), n)
	}
	pairs := make([]int32, 0, 2*len(ranked))
	for _, e := range ranked {
		pairs = append(pairs, e.V, int32(e.Score))
	}
	var s slabW
	s.u64(uint64(len(ranked)))
	s.i32s(pairs)
	return s.buf, nil
}

func decodePFreeSlab(payload []byte, n int) ([]core.VertexScore, error) {
	r := newSlabR(SecPFree, payload, true)
	count := r.count()
	if r.err == nil && count > n {
		r.fail("pfree ranking of %d entries for %d vertices", count, n)
	}
	pairs := r.i32s(2 * count)
	if err := r.done(); err != nil {
		return nil, err
	}
	// Non-nil even when empty: an empty ranking is still a prepared
	// ranking, and readers distinguish "prepared, nobody scores" from
	// "section absent" by nilness.
	ranked := make([]core.VertexScore, count)
	for i := range ranked {
		v := pairs[2*i]
		if v < 0 || int(v) >= n {
			return nil, &CorruptError{Section: SecPFree,
				Reason: fmt.Sprintf("pfree entry %d: vertex %d out of range", i, v)}
		}
		ranked[i] = core.VertexScore{V: v, Score: int(pairs[2*i+1])}
	}
	return ranked, nil
}

// --- graph slab: n, m, off[n+1], adj[2m], eid[2m], edges[m] ---

func encodeGraphSlab(g *graph.Graph) []byte {
	off, adj, eid, edges := g.CSR()
	var s slabW
	s.u64(uint64(g.N()))
	s.u64(uint64(g.M()))
	s.i64s(off)
	s.i32s(adj)
	s.i32s(eid)
	s.edges(edges)
	return s.buf
}

func decodeGraphSlab(payload []byte, zeroCopy bool) (*graph.Graph, error) {
	r := newSlabR(SecGraph, payload, zeroCopy)
	n, m := r.count(), r.count()
	off := r.i64s(n + 1)
	adj := r.i32s(2 * m)
	eid := r.i32s(2 * m)
	edges := r.edges(m)
	if err := r.done(); err != nil {
		return nil, err
	}
	g, err := graph.FromCSR(off, adj, eid, edges)
	if err != nil {
		return nil, &CorruptError{Section: SecGraph, Reason: "invalid CSR arrays", Err: err}
	}
	return g, nil
}
